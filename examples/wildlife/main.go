// Wildlife analyses a cattle-herd style dataset: few animals, very long
// 1 Hz trajectories — the shape where trajectory simplification pays off
// most. The example walks through the Section 7.4 parameter guidelines
// (automatic δ and λ), shows the vertex reduction of the three
// simplification methods, and discovers sub-herd convoys.
//
//	go run ./examples/wildlife
package main

import (
	"context"
	"fmt"
	"log"

	convoys "repro"
)

func main() {
	prof := convoys.CattleProfile(0.05, 11)
	db := prof.Generate()
	st := db.Stats()
	fmt.Printf("herd: %d animals, %d ticks of 1 Hz GPS, %d points\n",
		st.NumObjects, st.TimeDomainLength, st.TotalPoints)

	// Step 1: the δ guideline inspects the Douglas-Peucker split profile.
	delta := convoys.ComputeDelta(db, prof.Eps)
	fmt.Printf("\nSection 7.4 guideline: δ = %.1f (e = %g)\n", delta, prof.Eps)

	// Step 2: how much do the three methods shrink the data at this δ?
	fmt.Println("simplification at the chosen δ:")
	for _, m := range []convoys.SimplifyMethod{convoys.DP, convoys.DPPlus, convoys.DPStar} {
		kept, total := 0, 0
		maxTol := 0.0
		for _, tr := range db.Trajectories() {
			s := convoys.Simplify(tr, delta, m)
			kept += s.Len()
			total += tr.Len()
			if s.Tolerance > maxTol {
				maxTol = s.Tolerance
			}
		}
		fmt.Printf("  %-4v keeps %6d of %d points (%.2f%% reduction), max actual tolerance %.1f\n",
			m, kept, total, 100*(1-float64(kept)/float64(total)), maxTol)
	}

	// Step 3: discover sub-herds. CuTS* computes λ automatically too.
	params := convoys.Params{M: prof.M, K: prof.K, Eps: prof.Eps}
	var rs convoys.Stats
	res, err := convoys.NewQuery(
		convoys.WithParams(params),
		convoys.WithVariant(convoys.CuTSStarVariant),
		convoys.WithStats(&rs),
	).Run(context.Background(), db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery m=%d k=%d e=%g (auto λ=%d): %d sub-herd convoy(s), total %v\n",
		params.M, params.K, params.Eps, rs.Lambda, len(res), rs.TotalTime().Round(100_000))
	shown := 0
	for _, c := range res {
		if shown == 6 {
			fmt.Printf("  … and %d more\n", len(res)-shown)
			break
		}
		fmt.Printf("  animals %v grazed together for %d ticks [%d–%d]\n",
			c.Objects, c.Lifetime(), c.Start, c.End)
		shown++
	}
	fmt.Printf("\nthe filter handled %.1f%% fewer vertices than the raw data — that is why\n", rs.VertexReduction()*100)
	fmt.Println("the paper simplifies before clustering on long histories like this one.")
}
