// Lossyflock reproduces the paper's Figure 1 motivation: a natural group in
// an elongated formation is clipped by a fixed-radius flock disc but fully
// captured by the density-based convoy query.
//
//	go run ./examples/lossyflock
package main

import (
	"fmt"
	"log"

	convoys "repro"
)

func main() {
	const ticks = 12

	// Four vehicles driving in a line formation (a platoon on a road):
	// lanes 1.1 apart, so the group spans 3.3 — wider than the flock disc.
	db := convoys.NewDB()
	for i, lane := range []float64{0, 1.1, 2.2, 3.3} {
		var samples []convoys.Sample
		for t := convoys.Tick(0); t < ticks; t++ {
			samples = append(samples, convoys.S(t, 2*float64(t), lane))
		}
		tr, err := convoys.NewTrajectory(fmt.Sprintf("o%d", i+1), samples)
		if err != nil {
			log.Fatal(err)
		}
		db.Add(tr)
	}

	// Flock query: everyone must fit in a disc of radius 1.2.
	flocks, err := convoys.FindFlocks(db, convoys.FlockParams{M: 3, K: ticks, R: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flock query (disc radius 1.2):")
	if len(flocks) == 0 {
		fmt.Println("  no flock found")
	}
	for _, f := range flocks {
		fmt.Printf("  flock of %d: %v — object o4 is LOST (lossy-flock problem)\n",
			len(f.Objects), names(db, f.Objects))
	}

	// Convoy query: density connection with the same distance scale chains
	// the lanes together, so the whole platoon is one answer.
	result, err := convoys.Discover(db, convoys.Params{M: 3, K: ticks, Eps: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("convoy query (density connection, e = 1.2):")
	for _, c := range result {
		fmt.Printf("  convoy of %d: %v — the whole group, arbitrary extent\n",
			c.Size(), names(db, c.Objects))
	}
}

func names(db *convoys.DB, ids []convoys.ObjectID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = db.Traj(id).Label
	}
	return out
}
