// Carpool scans a synthetic commuter-car dataset for ride-sharing
// opportunities — the paper's carpooling motivation: cars that follow the
// same route at the same time are candidates to share one vehicle.
//
// The example also shows how the distance threshold e shapes the answer
// set: small e finds only tight platoons, larger e also groups cars on
// parallel lanes.
//
//	go run ./examples/carpool
package main

import (
	"context"
	"fmt"
	"log"

	convoys "repro"
)

func main() {
	// A Car-profile world at 1/20 of the paper's time scale: 183 commuter
	// cars with staggered trips, a handful of them sharing routes.
	prof := convoys.CarProfile(0.05, 42)
	db := prof.Generate()
	st := db.Stats()
	fmt.Printf("dataset: %d cars, %d ticks, %d GPS points\n",
		st.NumObjects, st.TimeDomainLength, st.TotalPoints)

	// Commute window to qualify for a carpool suggestion: the profile's k.
	k := prof.K
	for _, e := range []float64{prof.Eps / 2, prof.Eps, prof.Eps * 2} {
		var stats convoys.Stats
		result, err := convoys.NewQuery(
			convoys.M(2), convoys.K(k), convoys.Eps(e),
			convoys.WithVariant(convoys.CuTSStarVariant),
			convoys.WithStats(&stats),
		).Run(context.Background(), db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ne = %-5g → %d carpool group(s) (discovered in %v)\n",
			e, len(result), stats.TotalTime().Round(100_000))
		for i, c := range result {
			if i == 5 {
				fmt.Printf("  … and %d more\n", len(result)-5)
				break
			}
			fmt.Printf("  group %v rides together for %d ticks [%d–%d] — %d seat(s) saved\n",
				c.Objects, c.Lifetime(), c.Start, c.End, c.Size()-1)
		}
	}

	fmt.Println("\nnote: growing e merges nearby groups (density connection has no fixed shape);")
	fmt.Println("the convoy count is not monotone in e — exactly the sensitivity Figure 1 discusses for discs.")
}
