// Livemonitor shows the online API: a dispatcher watches a live GPS feed
// and is alerted the moment a convoy dissolves (e.g., a platoon of delivery
// vans splits up). The Streamer consumes one snapshot per tick and emits a
// convoy as soon as it closes — no batch re-computation.
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"

	convoys "repro"
)

func main() {
	// Simulated feed: vans 0 and 1 drive together from tick 0; van 2 joins
	// them at tick 6; the whole platoon splits at tick 14.
	feed := func(t convoys.Tick) ([]convoys.ObjectID, []convoys.Point) {
		x := float64(t) * 2
		switch {
		case t < 6:
			return []convoys.ObjectID{0, 1, 2},
				[]convoys.Point{convoys.Pt(x, 0), convoys.Pt(x, 0.8), convoys.Pt(x-40, 30)}
		case t < 14:
			return []convoys.ObjectID{0, 1, 2},
				[]convoys.Point{convoys.Pt(x, 0), convoys.Pt(x, 0.8), convoys.Pt(x, 1.6)}
		default:
			return []convoys.ObjectID{0, 1, 2},
				[]convoys.Point{convoys.Pt(x, 0), convoys.Pt(x, 40), convoys.Pt(x, 80)}
		}
	}

	monitor, err := convoys.NewStreamer(convoys.Params{M: 2, K: 5, Eps: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("monitoring feed (m=2, k=5, e=1)…")
	for t := convoys.Tick(0); t < 20; t++ {
		ids, pts := feed(t)
		closed, err := monitor.Advance(t, ids, pts)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range closed {
			fmt.Printf("  tick %2d: ALERT — convoy %v dissolved after %d ticks together [%d–%d]\n",
				t, c.Objects, c.Lifetime(), c.Start, c.End)
		}
	}
	for _, c := range monitor.Close() {
		fmt.Printf("  feed end: convoy %v still open, together since tick %d (%d ticks)\n",
			c.Objects, c.Start, c.Lifetime())
	}
	fmt.Println("done — 0 batch recomputations, state carried tick to tick")
}
