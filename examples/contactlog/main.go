// Contactlog: convoy discovery without coordinates. A warehouse's badge
// readers log which workers' radios hear each other every minute — no
// positions, just weighted contacts. The proximity-graph backend finds the
// crews that stay connected (directly or through a chain of contacts) for
// a sustained stretch.
//
//	go run ./examples/contactlog
package main

import (
	"context"
	"fmt"
	"log"

	convoys "repro"
)

func main() {
	contacts := convoys.NewProximityLog()

	// Ticks 0–9: a picking crew. dora–eli are side by side the whole time;
	// fay is only ever near eli, yet belongs to the same convoy — graph
	// connectivity is transitive, exactly like density connection.
	for t := convoys.Tick(0); t < 10; t++ {
		add(contacts, "dora", "eli", t, 0.9)
		add(contacts, "eli", "fay", t, 0.8)
	}
	// gus walks past at tick 3: one weak, short contact. Below the weight
	// threshold, it never enters the graph.
	add(contacts, "gus", "dora", 3, 0.2)
	// hana and ivan pair up late (ticks 6–9): connected, but for only four
	// ticks — under the k=5 lifetime bound.
	for t := convoys.Tick(6); t < 10; t++ {
		add(contacts, "hana", "ivan", t, 0.9)
	}

	// The log synthesizes a stand-in database (its objects and life spans;
	// the clusterer never looks at the fake coordinates), and its Clusterer
	// replaces DBSCAN for the per-tick grouping. Eps is reinterpreted as
	// the minimum contact weight; the graph backend runs under CMC.
	db, err := contacts.DB()
	if err != nil {
		log.Fatal(err)
	}
	q := convoys.NewQuery(convoys.M(3), convoys.K(5), convoys.Eps(0.5),
		convoys.WithCMC(), convoys.WithClusterer(contacts.Clusterer()))
	result, err := q.Run(context.Background(), db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d crew(s) of ≥3 connected for ≥5 minutes:\n", len(result))
	for _, c := range result {
		fmt.Print("  crew:")
		for _, id := range c.Objects {
			fmt.Print(" ", contacts.Label(id))
		}
		fmt.Printf("  minutes [%d, %d]\n", c.Start, c.End)
	}
}

// add appends one contact, failing loudly on malformed input (empty
// labels, self-loops, bad weights).
func add(l *convoys.ProximityLog, a, b string, t convoys.Tick, w float64) {
	if err := l.Add(a, b, t, w); err != nil {
		log.Fatal(err)
	}
}
