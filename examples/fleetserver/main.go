// Fleetserver shows the serving layer end to end: it embeds a convoyd
// server in-process, then acts as HTTP clients against it — a tracker
// pushing per-tick GPS batches into one feed, and a dispatcher tailing the
// feed's NDJSON event stream for dissolved-convoy alerts. Two standing
// queries (monitors) with different lifetime bounds watch the same feed:
// because they share the clustering key (e, m), the server runs ONE DBSCAN
// pass per tick and fans the clusters out to both — the multi-monitor
// streaming engine. The same requests work against a standalone `convoyd`
// daemon; see the package comment of cmd/convoyd for the curl equivalents.
//
//	go run ./examples/fleetserver
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	convoys "repro"
)

func main() {
	// Host the server in-process on a loopback port, with its instrument
	// registry mounted as /metrics next to the API — the same layout
	// `convoyd` serves by default.
	reg := convoys.NewMetricsRegistry()
	srv := convoys.NewServer(convoys.ServeConfig{Metrics: reg})
	defer srv.Close()
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("GET /metrics", reg.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, mux)
	base := "http://" + ln.Addr().String()
	fmt.Println("convoyd serving on", base)

	decode := func(r io.Reader, v any) {
		if err := json.NewDecoder(r).Decode(v); err != nil {
			log.Fatal(err)
		}
	}
	post := func(path string, body any) *http.Response {
		data, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			log.Fatalf("POST %s: %s", path, resp.Status)
		}
		return resp
	}

	// Create a feed whose default monitor watches for pairs that stay
	// within distance 1 for five consecutive ticks...
	post("/v1/feeds", convoys.FeedSpec{
		Name:   "vans",
		Params: convoys.ParamsJSON{M: 2, K: 5, Eps: 1},
	}).Body.Close()
	// ...and register a second, more patient standing query on the same
	// feed: same (e, m) — so it shares the per-tick clustering pass with
	// the default monitor — but a 12-tick lifetime bound.
	post("/v1/feeds/vans/monitors", convoys.MonitorSpec{
		ID:     "long-haul",
		Params: convoys.ParamsJSON{M: 2, K: 12, Eps: 1},
	}).Body.Close()

	// Dispatcher: tail the event stream and print alerts as they happen,
	// labeled by the monitor whose query closed.
	events, err := http.Get(base + "/v1/feeds/vans/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	alerts := make(chan convoys.FeedEvent)
	go func() {
		defer close(alerts)
		sc := bufio.NewScanner(events.Body)
		for sc.Scan() {
			var ev convoys.FeedEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				alerts <- ev
			}
		}
	}()

	// Tracker: vans 0 and 1 drive together from tick 0; van 2 joins at
	// tick 6; the platoon splits at tick 14 (the livemonitor scenario,
	// now over the wire).
	for t := convoys.Tick(0); t < 20; t++ {
		x := float64(t) * 2
		var pos []convoys.Position
		switch {
		case t < 6:
			pos = []convoys.Position{{ID: "van1", X: x, Y: 0}, {ID: "van2", X: x, Y: 0.8}, {ID: "van3", X: x - 40, Y: 30}}
		case t < 14:
			pos = []convoys.Position{{ID: "van1", X: x, Y: 0}, {ID: "van2", X: x, Y: 0.8}, {ID: "van3", X: x, Y: 1.6}}
		default:
			pos = []convoys.Position{{ID: "van1", X: x, Y: 0}, {ID: "van2", X: x, Y: 40}, {ID: "van3", X: x, Y: 80}}
		}
		resp := post("/v1/feeds/vans/ticks", convoys.TickBatch{T: t, Positions: pos})
		var tr struct {
			Closed []convoys.ConvoyJSON `json:"closed"`
		}
		decode(resp.Body, &tr)
		resp.Body.Close()
		for range tr.Closed {
			ev := <-alerts
			fmt.Printf("  tick %2d: ALERT [%s] — convoy %v dissolved after %d ticks together [%d–%d]\n",
				t, ev.Monitor, ev.Convoy.Objects, ev.Convoy.Lifetime, ev.Convoy.Start, ev.Convoy.End)
		}
	}

	// One clustering pass per tick served both standing queries.
	status, err := http.Get(base + "/v1/feeds/vans")
	if err != nil {
		log.Fatal(err)
	}
	var st convoys.FeedStatus
	decode(status.Body, &st)
	status.Body.Close()
	fmt.Printf("shared clustering: %d monitors, %d ticks, %d DBSCAN passes (%d key group)\n",
		len(st.Monitors), st.Ticks, st.ClusterPasses, st.ClusterGroups)

	// Tear the feed down; still-open convoys of every monitor are drained,
	// not lost.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/feeds/vans", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var del struct {
		Drained []convoys.ConvoyJSON `json:"drained"`
	}
	decode(resp.Body, &del)
	resp.Body.Close()
	for _, c := range del.Drained {
		fmt.Printf("  feed end: convoy %v still open, together since tick %d (%d ticks)\n",
			c.Objects, c.Start, c.Lifetime)
	}
	// Finally, read the same story off the observability surface: the
	// exported snapshot and a real /metrics scrape agree on the shared
	// clustering saving.
	snap := srv.Snapshot()
	fmt.Printf("snapshot: %d ticks, %d events, %d passes run vs %d naive (saved %d)\n",
		snap.Ticks, snap.Events, snap.ClusterPasses, snap.ClusterPassesNaive,
		snap.ClusterPassesNaive-snap.ClusterPasses)
	scrape, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	sc2 := bufio.NewScanner(scrape.Body)
	for sc2.Scan() {
		if line := sc2.Text(); strings.HasPrefix(line, "convoyd_feed_cluster_passes") {
			fmt.Println("  " + line)
		}
	}
	scrape.Body.Close()
	fmt.Println("done — one feed, one clustering pass per tick, any number of standing queries")
}
