// Fleetserver shows the serving layer end to end: it embeds a convoyd
// server in-process, then acts as two HTTP clients against it — a tracker
// pushing per-tick GPS batches into a feed, and a dispatcher tailing the
// feed's NDJSON event stream for dissolved-convoy alerts. The same requests
// work against a standalone `convoyd` daemon; see the package comment of
// cmd/convoyd for the curl equivalents.
//
//	go run ./examples/fleetserver
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	convoys "repro"
)

func main() {
	// Host the server in-process on a loopback port.
	srv := convoys.NewServer(convoys.ServeConfig{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Println("convoyd serving on", base)

	post := func(path string, body any) *http.Response {
		data, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			log.Fatalf("POST %s: %s", path, resp.Status)
		}
		return resp
	}

	// Create a feed watching for pairs that stay within distance 1 for
	// five consecutive ticks.
	post("/v1/feeds", convoys.FeedSpec{
		Name:   "vans",
		Params: convoys.ParamsJSON{M: 2, K: 5, Eps: 1},
	}).Body.Close()

	// Dispatcher: tail the event stream and print alerts as they happen.
	events, err := http.Get(base + "/v1/feeds/vans/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	alerts := make(chan convoys.FeedEvent)
	go func() {
		defer close(alerts)
		sc := bufio.NewScanner(events.Body)
		for sc.Scan() {
			var ev convoys.FeedEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				alerts <- ev
			}
		}
	}()

	// Tracker: vans 0 and 1 drive together from tick 0; van 2 joins at
	// tick 6; the platoon splits at tick 14 (the livemonitor scenario,
	// now over the wire).
	for t := convoys.Tick(0); t < 20; t++ {
		x := float64(t) * 2
		var pos []convoys.Position
		switch {
		case t < 6:
			pos = []convoys.Position{{ID: "van1", X: x, Y: 0}, {ID: "van2", X: x, Y: 0.8}, {ID: "van3", X: x - 40, Y: 30}}
		case t < 14:
			pos = []convoys.Position{{ID: "van1", X: x, Y: 0}, {ID: "van2", X: x, Y: 0.8}, {ID: "van3", X: x, Y: 1.6}}
		default:
			pos = []convoys.Position{{ID: "van1", X: x, Y: 0}, {ID: "van2", X: x, Y: 40}, {ID: "van3", X: x, Y: 80}}
		}
		resp := post("/v1/feeds/vans/ticks", convoys.TickBatch{T: t, Positions: pos})
		var tr struct {
			Closed []convoys.ConvoyJSON `json:"closed"`
		}
		json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		for range tr.Closed {
			ev := <-alerts
			fmt.Printf("  tick %2d: ALERT — convoy %v dissolved after %d ticks together [%d–%d]\n",
				t, ev.Convoy.Objects, ev.Convoy.Lifetime, ev.Convoy.Start, ev.Convoy.End)
		}
	}

	// Tear the feed down; still-open convoys are drained, not lost.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/feeds/vans", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var del struct {
		Drained []convoys.ConvoyJSON `json:"drained"`
	}
	json.NewDecoder(resp.Body).Decode(&del)
	resp.Body.Close()
	for _, c := range del.Drained {
		fmt.Printf("  feed end: convoy %v still open, together since tick %d (%d ticks)\n",
			c.Objects, c.Start, c.Lifetime)
	}
	fmt.Println("done — one server, any number of feeds and watchers")
}
