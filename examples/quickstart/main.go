// Quickstart: build a tiny trajectory database by hand, run a convoy query
// with the default algorithm (CuTS*), and print the answers.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	convoys "repro"
)

func main() {
	db := convoys.NewDB()

	// Three delivery scooters. Scooters "ann" and "bob" ride together for
	// the first eight minutes (ticks 0–7), then split; "cat" rides alone.
	tracks := map[string][]convoys.Sample{
		"ann": path(0, 0, 0, 1, 0, 12),
		"bob": path(0, 0, 0.4, 1, 0, 8), // same route, 0.4 to the side…
		"cat": path(0, 50, 50, -1, 0.5, 12),
	}
	// …until bob turns off at tick 8.
	tracks["bob"] = append(tracks["bob"],
		convoys.S(8, 8, 5), convoys.S(9, 8, 10), convoys.S(10, 8, 15), convoys.S(11, 8, 20))

	for _, name := range []string{"ann", "bob", "cat"} {
		tr, err := convoys.NewTrajectory(name, tracks[name])
		if err != nil {
			log.Fatalf("bad trajectory %s: %v", name, err)
		}
		db.Add(tr)
	}

	// A convoy = at least 2 objects within distance 1 of each other
	// (density-connected) for at least 5 consecutive ticks. NewQuery is
	// the context-first form — cancel the ctx and the run aborts mid-scan.
	params := convoys.Params{M: 2, K: 5, Eps: 1}
	q := convoys.NewQuery(convoys.M(2), convoys.K(5), convoys.Eps(1))
	result, err := q.Run(context.Background(), db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d convoy(s) with m=%d k=%d e=%g:\n", len(result), params.M, params.K, params.Eps)
	for _, c := range result {
		fmt.Print("  objects:")
		for _, id := range c.Objects {
			fmt.Printf(" %s", db.Traj(id).Label)
		}
		fmt.Printf("  during ticks [%d, %d] (%d time points)\n", c.Start, c.End, c.Lifetime())
	}

	// The same query through the CMC baseline returns the same answer.
	ref, err := convoys.CMC(db, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CMC agrees: %v\n", result.Equal(ref))
}

// path emits n samples starting at (x0, y0), moving by (dx, dy) per tick.
func path(t0 convoys.Tick, x0, y0, dx, dy float64, n int) []convoys.Sample {
	out := make([]convoys.Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, convoys.S(t0+convoys.Tick(i), x0+dx*float64(i), y0+dy*float64(i)))
	}
	return out
}
