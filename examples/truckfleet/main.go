// Truckfleet runs the paper's throughput-planning scenario: find delivery
// trucks with coherent trajectory patterns. It compares all four algorithms
// on a Truck-profile dataset, verifies they agree, and prints the phase
// breakdown that makes the CuTS family fast.
//
//	go run ./examples/truckfleet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	convoys "repro"
)

func main() {
	prof := convoys.TruckProfile(0.1, 7)
	db := prof.Generate()
	st := db.Stats()
	fmt.Printf("fleet: %d truck trips, %d ticks, %d GPS points (avg trip %0.f points)\n",
		st.NumObjects, st.TimeDomainLength, st.TotalPoints, st.AvgTrajLen)

	params := convoys.Params{M: prof.M, K: prof.K, Eps: prof.Eps}
	fmt.Printf("query: m=%d k=%d e=%g\n\n", params.M, params.K, params.Eps)

	// Baseline.
	t0 := time.Now()
	ref, err := convoys.CMC(db, params)
	if err != nil {
		log.Fatal(err)
	}
	cmcTime := time.Since(t0)
	fmt.Printf("%-6s total=%8v  (snapshot clustering at every tick)\n", "CMC", cmcTime.Round(100_000))

	// The filter-refinement family.
	for _, variant := range []convoys.Variant{convoys.CuTSVariant, convoys.CuTSPlusVariant, convoys.CuTSStarVariant} {
		var rs convoys.Stats
		res, err := convoys.NewQuery(
			convoys.WithParams(params), convoys.WithVariant(variant), convoys.WithStats(&rs),
		).Run(context.Background(), db)
		if err != nil {
			log.Fatal(err)
		}
		agree := "AGREES"
		if !res.Equal(ref) {
			agree = "DISAGREES (bug!)"
		}
		fmt.Printf("%-6v total=%8v  simplify=%v filter=%v refine=%v  δ=%.2f λ=%d candidates=%d  %s\n",
			variant, rs.TotalTime().Round(100_000),
			rs.SimplifyTime.Round(100_000), rs.FilterTime.Round(100_000), rs.RefineTime.Round(100_000),
			rs.Delta, rs.Lambda, rs.NumCandidates, agree)
	}

	fmt.Printf("\n%d coherent fleet group(s):\n", len(ref))
	shown := 0
	for _, c := range ref {
		if shown == 8 {
			fmt.Printf("  … and %d more\n", len(ref)-shown)
			break
		}
		fmt.Printf("  %d trucks together for %d ticks [%d–%d] — schedule these as one dispatch wave\n",
			c.Size(), c.Lifetime(), c.Start, c.End)
		shown++
	}
}
