package convoys_test

import (
	"context"
	"fmt"

	convoys "repro"
)

// Two scooters ride together for eight ticks, a third rides alone.
func ExampleDiscover() {
	db := convoys.NewDB()
	for i, y := range []float64{0, 0.4, 99} {
		var samples []convoys.Sample
		for t := convoys.Tick(0); t < 8; t++ {
			samples = append(samples, convoys.S(t, float64(t), y))
		}
		tr, _ := convoys.NewTrajectory(fmt.Sprintf("scooter-%d", i+1), samples)
		db.Add(tr)
	}
	result, _ := convoys.Discover(db, convoys.Params{M: 2, K: 5, Eps: 1})
	for _, c := range result {
		fmt.Println(c)
	}
	// Output:
	// ⟨o0,o1,[0,7]⟩
}

// The context-first form of the same query: build it from options, run it
// under a cancellable context, and read the run's statistics.
func ExampleNewQuery() {
	db := convoys.NewDB()
	for i, y := range []float64{0, 0.4, 99} {
		var samples []convoys.Sample
		for t := convoys.Tick(0); t < 8; t++ {
			samples = append(samples, convoys.S(t, float64(t), y))
		}
		tr, _ := convoys.NewTrajectory(fmt.Sprintf("scooter-%d", i+1), samples)
		db.Add(tr)
	}
	var st convoys.Stats
	q := convoys.NewQuery(convoys.M(2), convoys.K(5), convoys.Eps(1), convoys.WithStats(&st))
	result, _ := q.Run(context.Background(), db)
	fmt.Println(result[0], "candidates:", st.NumCandidates > 0)
	// Output:
	// ⟨o0,o1,[0,7]⟩ candidates: true
}

// Seq yields convoys as they close instead of materializing the full
// result; breaking out of the loop abandons the remaining clustering work
// (so does cancelling the context — the error arrives as the final yield).
func ExampleQuery_Seq() {
	db := convoys.NewDB()
	for i, y := range []float64{0, 0.4} {
		var samples []convoys.Sample
		for t := convoys.Tick(0); t < 12; t++ {
			x, yy := float64(t), y
			if t >= 6 && i == 1 {
				yy += 500 // the pair separates at tick 6, closing the convoy
			}
			samples = append(samples, convoys.S(t, x, yy))
		}
		tr, _ := convoys.NewTrajectory("", samples)
		db.Add(tr)
	}
	q := convoys.NewQuery(convoys.M(2), convoys.K(3), convoys.Eps(1), convoys.WithCMC())
	for c, err := range q.Seq(context.Background(), db) {
		if err != nil {
			fmt.Println("aborted:", err)
			break
		}
		fmt.Println("closed:", c)
		break // stop the scan after the first answer
	}
	// Output:
	// closed: ⟨o0,o1,[0,5]⟩
}

func ExampleCMC() {
	db := convoys.NewDB()
	a, _ := convoys.NewTrajectory("a", []convoys.Sample{
		convoys.S(0, 0, 0), convoys.S(1, 1, 0), convoys.S(2, 2, 0),
	})
	b, _ := convoys.NewTrajectory("b", []convoys.Sample{
		convoys.S(0, 0, 0.5), convoys.S(1, 1, 0.5), convoys.S(2, 2, 0.5),
	})
	db.Add(a)
	db.Add(b)
	result, _ := convoys.CMC(db, convoys.Params{M: 2, K: 3, Eps: 1})
	fmt.Println(len(result), "convoy, lifetime", result[0].Lifetime())
	// Output:
	// 1 convoy, lifetime 3
}

func ExampleStreamer() {
	monitor, _ := convoys.NewStreamer(convoys.Params{M: 2, K: 2, Eps: 1})
	// Two objects together at ticks 0-2, apart at tick 3.
	for t := convoys.Tick(0); t < 3; t++ {
		monitor.Advance(t,
			[]convoys.ObjectID{0, 1},
			[]convoys.Point{convoys.Pt(float64(t), 0), convoys.Pt(float64(t), 0.5)})
	}
	closed, _ := monitor.Advance(3,
		[]convoys.ObjectID{0, 1},
		[]convoys.Point{convoys.Pt(3, 0), convoys.Pt(3, 50)})
	for _, c := range closed {
		fmt.Println("dissolved:", c)
	}
	// Output:
	// dissolved: ⟨o0,o1,[0,2]⟩
}

// Convoy discovery over a coordinate-free contact log: three radios hear
// each other (pairwise or transitively) for five ticks; a weak contact and
// a short trailing one don't qualify. No positions exist anywhere.
func ExampleWithClusterer() {
	log := convoys.NewProximityLog()
	for t := convoys.Tick(1); t <= 5; t++ {
		log.Add("alpha", "bravo", t, 1)
		log.Add("bravo", "charlie", t, 1)
	}
	log.Add("delta", "alpha", 1, 0.25) // below the e=1 threshold
	log.Add("alpha", "bravo", 6, 1)    // only two objects: below m=3

	db, _ := log.DB() // stand-in database carrying the log's objects
	q := convoys.NewQuery(convoys.M(3), convoys.K(3), convoys.Eps(1),
		convoys.WithCMC(), convoys.WithClusterer(log.Clusterer()))
	result, _ := q.Run(context.Background(), db)
	for _, c := range result {
		objs := make([]string, len(c.Objects))
		for i, id := range c.Objects {
			objs[i] = log.Label(id)
		}
		fmt.Println(objs, "ticks", c.Start, "to", c.End)
	}
	// Output:
	// [alpha bravo charlie] ticks 1 to 5
}

func ExampleCloseSelfJoin() {
	db := convoys.NewDB()
	a, _ := convoys.NewTrajectory("a", []convoys.Sample{convoys.S(0, 0, 0), convoys.S(1, 5, 0)})
	b, _ := convoys.NewTrajectory("b", []convoys.Sample{convoys.S(0, 9, 0), convoys.S(1, 5.4, 0)})
	db.Add(a)
	db.Add(b)
	pairs, _ := convoys.CloseSelfJoin(db, 1, convoys.JoinWindow{})
	fmt.Println(pairs)
	// Output:
	// [(o0,o1)@1]
}

func ExampleSimplify() {
	tr, _ := convoys.NewTrajectory("t", []convoys.Sample{
		convoys.S(0, 0, 0), convoys.S(1, 1, 0.05), convoys.S(2, 2, 0), convoys.S(3, 3, 2), convoys.S(4, 4, 0),
	})
	st := convoys.Simplify(tr, 2.5, convoys.DP)
	fmt.Println("kept", st.Len(), "of", tr.Len(), "points")
	// Output:
	// kept 2 of 5 points
}
