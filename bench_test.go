// Benchmarks regenerating every table and figure of the paper's evaluation
// section (Table 3, Figures 12–17, Figure 19). Each BenchmarkTableX /
// BenchmarkFigureX times the corresponding experiment end to end on the
// synthetic dataset profiles at a reduced time scale; BenchmarkFigure12 and
// BenchmarkFigure15 additionally expose per-dataset / per-method
// sub-benchmarks so `-bench` output shows the paper's series directly.
//
// To print the paper-style tables (rather than time them), run
//
//	go run ./cmd/benchrunner -exp all -scale 0.1
package convoys_test

import (
	"io"
	"testing"

	convoys "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/simplify"
)

// benchScale keeps the full `go test -bench=.` run in the minutes range
// while preserving every experiment's relative shape.
const benchScale = 0.02

const benchSeed = 1

func benchOptions() expr.Options {
	return expr.Options{Scale: benchScale, Seed: benchSeed, Out: io.Discard}
}

func BenchmarkTable3(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := expr.Table3(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 times each discovery algorithm on each dataset profile
// (the paper's total-query-time comparison). Data generation is excluded
// from the timing.
func BenchmarkFigure12(b *testing.B) {
	for _, prof := range datagen.AllProfiles(benchScale, benchSeed) {
		db := prof.Generate()
		p := core.Params{M: prof.M, K: prof.K, Eps: prof.Eps}
		b.Run(prof.Name+"/CMC", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CMC(db, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, variant := range []core.Variant{core.VariantCuTS, core.VariantCuTSPlus, core.VariantCuTSStar} {
			variant := variant
			b.Run(prof.Name+"/"+variant.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Run(db, p, core.Config{Variant: variant}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := expr.Figure13(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := expr.Figure14(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure15 times each simplification method on the Cattle profile
// (the paper's vertex-reduction/time comparison), one sub-benchmark per
// method at the profile's tuned δ.
func BenchmarkFigure15(b *testing.B) {
	prof := datagen.Cattle(benchScale, benchSeed+100)
	db := prof.Generate()
	delta := core.ComputeDelta(db, prof.Eps)
	for _, m := range []simplify.Method{simplify.DP, simplify.DPPlus, simplify.DPStar} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simplify.SimplifyAll(db, delta, m)
			}
		})
	}
	b.Run("harness", func(b *testing.B) {
		o := benchOptions()
		for i := 0; i < b.N; i++ {
			if err := expr.Figure15(o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFigure16(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := expr.Figure16(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure17(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := expr.Figure17(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure19(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := expr.Figure19(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscover measures the façade's one-call path on a mid-size
// planted scenario — the number a library user would care about first.
func BenchmarkDiscover(b *testing.B) {
	sc := convoys.Scenario{
		Seed: 5, T: 400, World: 800, Speed: 3,
		Groups: []convoys.GroupSpec{
			{Size: 4, Start: 20, End: 250, Spacing: 2},
			{Size: 3, Start: 150, End: 390, Spacing: 2},
		},
		Background: 40,
		KeepProb:   0.9,
		SpanFrac:   [2]float64{0.4, 1},
		Jitter:     0.3,
	}
	db := sc.Generate()
	p := convoys.Params{M: 3, K: 50, Eps: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := convoys.Discover(db, p); err != nil {
			b.Fatal(err)
		}
	}
}
