// Package convoys discovers convoys — groups of objects that travel
// together for some minimum time — in trajectory databases. It is a
// from-scratch Go implementation of
//
//	Jeung, Yiu, Zhou, Jensen, Shen:
//	"Discovery of Convoys in Trajectory Databases", VLDB 2008.
//
// A convoy query takes three parameters: a group size m, a lifetime k (in
// time points) and a distance e. It returns every maximal group of at least
// m objects that are density-connected (DBSCAN sense) with respect to e at
// each of at least k consecutive time points — unlike disc-based flocks,
// density connection captures groups of arbitrary shape and extent.
//
// # Quick start
//
//	db := convoys.NewDB()
//	for _, object := range objects {
//	    tr, err := convoys.NewTrajectory(object.Name, object.Samples)
//	    // handle err
//	    db.Add(tr)
//	}
//	result, err := convoys.Discover(db, convoys.Params{M: 3, K: 180, Eps: 8})
//	for _, c := range result {
//	    fmt.Println(c) // ⟨o1,o4,o9,[120,431]⟩
//	}
//
// Discover uses CuTS* — the paper's best algorithm (filter-refinement over
// DP*-simplified trajectories with CPA distance bounds) — with the paper's
// automatic δ/λ parameter guidelines. All four algorithms of the paper
// (CMC, CuTS, CuTS+, CuTS*) are exposed and return identical answers; they
// differ only in speed.
//
// # Cancellation and streaming results
//
// NewQuery is the context-first form of the same query — the one to reach
// for in servers and pipelines. A Query is built from functional options
// and executed with Run (the batch answer, honoring ctx at tick, partition
// and candidate granularity) or Seq (an iterator yielding convoys as the
// scan closes them; breaking out stops the remaining clustering work):
//
//	q := convoys.NewQuery(convoys.M(3), convoys.K(180), convoys.Eps(8),
//	    convoys.WithWorkers(convoys.DefaultWorkers()))
//	for c, err := range q.Seq(ctx, db) {
//	    if err != nil { ... } // ctx cancellation arrives here
//	    fmt.Println(c)        // delivered the moment it is final
//	}
//
// Discover, DiscoverWith, CMC and CMCWith are thin wrappers over Query and
// return identical answers.
//
// # Pluggable clustering backends
//
// The per-tick density-connection stage is a Clusterer. The default is the
// paper's grid-indexed DBSCAN over positions; GraphClusterer instead takes
// connected components of a weighted proximity graph, so convoys can be
// discovered in coordinate-free contact logs (Bluetooth sightings, radio
// contacts) where no positions exist at all:
//
//	log, err := convoys.LoadProximityLog("contacts.csv") // a,b,t,w rows
//	db, err := log.DB()                                  // stand-in database
//	q := convoys.NewQuery(convoys.M(3), convoys.K(180), convoys.Eps(1),
//	    convoys.WithCMC(), convoys.WithClusterer(log.Clusterer()))
//	result, err := q.Run(ctx, db)
//
// Custom backends plug in the same way (WithClusterer, or
// NewClusterSourceWith for the streaming engine); only CMC accepts them —
// the CuTS filter bounds are DBSCAN-specific theorems.
//
// # Serving
//
// The serve entry points turn the library into a long-running system: a
// Server hosts named live feeds — each a table of standing convoy queries
// (monitors) behind its own goroutine, sharing one clustering pass per
// distinct (e, m, backend) per tick — and a batch query engine with caching, all
// behind an HTTP/JSON API. NewServer builds one for embedding; the convoyd
// command wraps it as a standalone daemon:
//
//	srv := convoys.NewServer(convoys.ServeConfig{})
//	defer srv.Close() // drains every feed
//	http.ListenAndServe(":8764", srv)
//
// The subpackages' functionality is re-exported here so that downstream
// users need a single import.
package convoys

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/flock"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/proxgraph"
	"repro/internal/serve"
	"repro/internal/simplify"
	"repro/internal/stjoin"
	"repro/internal/trace"
	"repro/internal/tsio"
	"repro/internal/wal"
)

// Core model types.
type (
	// DB is a trajectory database with dense object IDs.
	DB = model.DB
	// Trajectory is one object's time-stamped movement history.
	Trajectory = model.Trajectory
	// Sample is a single timestamped location.
	Sample = model.Sample
	// Tick is a discrete time point.
	Tick = model.Tick
	// ObjectID identifies an object within a DB.
	ObjectID = model.ObjectID
	// Point is a planar location.
	Point = geom.Point
	// DBStats summarises a database (Table 3 quantities).
	DBStats = model.Stats
)

// Query and result types.
type (
	// Params are the convoy query parameters (m, k, e).
	Params = core.Params
	// Convoy is one answer: a group of objects and its time interval.
	Convoy = core.Convoy
	// Result is a canonical (maximal, sorted) set of convoys.
	Result = core.Result
	// Config selects a CuTS variant and its internal parameters.
	Config = core.Config
	// Variant names a CuTS family member.
	Variant = core.Variant
	// Stats reports phase timings and filter statistics of a CuTS run.
	Stats = core.Stats
	// Candidate is a filter-step convoy candidate.
	Candidate = core.Candidate
	// AccuracyReport compares an answer set against a reference.
	AccuracyReport = core.AccuracyReport
)

// CuTS variants.
const (
	// CuTSVariant is the base filter-refinement algorithm (DP + Lemma 1).
	CuTSVariant = core.VariantCuTS
	// CuTSPlusVariant accelerates simplification (DP+ + Lemma 1).
	CuTSPlusVariant = core.VariantCuTSPlus
	// CuTSStarVariant tightens the filter bounds (DP* + Lemma 3); the
	// paper's overall winner and this package's default.
	CuTSStarVariant = core.VariantCuTSStar
)

// Simplification methods (Section 2.2, 5.1, 6).
type SimplifyMethod = simplify.Method

const (
	// DP is the classic Douglas–Peucker algorithm.
	DP = simplify.DP
	// DPPlus splits at the tolerance-exceeding point nearest the middle.
	DPPlus = simplify.DPPlus
	// DPStar measures deviation synchronously in time (Meratnia/de By).
	DPStar = simplify.DPStar
)

// SimplifiedTrajectory is the result of trajectory simplification,
// carrying per-segment actual tolerances (Definition 4).
type SimplifiedTrajectory = simplify.Trajectory

// NewDB returns an empty trajectory database.
func NewDB() *DB { return model.NewDB() }

// NewTrajectory validates samples (strictly increasing time, non-empty) and
// builds a trajectory; add it to a DB to assign its ObjectID.
func NewTrajectory(label string, samples []Sample) (*Trajectory, error) {
	return model.NewTrajectory(label, samples)
}

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// S constructs a Sample at tick t.
func S(t Tick, x, y float64) Sample { return Sample{T: t, P: geom.Pt(x, y)} }

// Context-first query API.
type (
	// Query is one convoy discovery question — parameters, algorithm,
	// worker count, optional result limit — built with NewQuery and
	// executed with Run (batch) or Seq (streaming). Both honor their
	// context at tick/partition/candidate granularity, so cancelling a
	// query aborts its clustering pipeline within about one unit of work
	// per worker.
	Query = core.Query
	// QueryOption configures a Query under construction.
	QueryOption = core.Option
)

// NewQuery builds a convoy query from options:
//
//	q := convoys.NewQuery(convoys.M(3), convoys.K(180), convoys.Eps(8),
//	    convoys.WithVariant(convoys.CuTSStarVariant),
//	    convoys.WithWorkers(convoys.DefaultWorkers()))
//	result, err := q.Run(ctx, db)
//
// The m, k and e parameters are mandatory (Run/Seq fail validation
// otherwise); the algorithm defaults to CuTS* with the automatic δ/λ
// guidelines, running serially.
func NewQuery(opts ...QueryOption) *Query { return core.NewQuery(opts...) }

// M sets the minimum number of objects in a convoy.
func M(m int) QueryOption { return core.M(m) }

// K sets the minimum convoy lifetime in consecutive time points.
func K(k int64) QueryOption { return core.K(k) }

// Eps sets the density-connection distance threshold e.
func Eps(e float64) QueryOption { return core.Eps(e) }

// WithParams sets all three convoy query parameters at once.
func WithParams(p Params) QueryOption { return core.WithParams(p) }

// WithVariant selects a CuTS family member (default CuTS*).
func WithVariant(v Variant) QueryOption { return core.WithVariant(v) }

// WithCMC selects the Coherent Moving Cluster baseline instead of the
// CuTS filter-refinement family.
func WithCMC() QueryOption { return core.WithCMC() }

// WithDelta overrides the automatic simplification-tolerance guideline.
func WithDelta(delta float64) QueryOption { return core.WithDelta(delta) }

// WithLambda overrides the automatic time-partition-length guideline.
func WithLambda(lambda int64) QueryOption { return core.WithLambda(lambda) }

// WithWorkers sets the goroutines per pipeline stage (≤ 1 = serial); the
// answer set is identical for every worker count.
func WithWorkers(n int) QueryOption { return core.WithWorkers(n) }

// WithLimit stops discovery after n convoys have been delivered,
// abandoning the remaining clustering work.
func WithLimit(n int) QueryOption { return core.WithLimit(n) }

// WithPartitions splits the database's time range into n overlapping
// windows (overlap k−1 ticks), mines each independently on the query's
// worker pool and merges the partial answers — the same partition/merge a
// convoyd coordinator runs across shard processes, here in one process.
// The answer set is identical to the single-pass run for every n; n ≤ 1
// disables partitioning.
func WithPartitions(n int) QueryOption { return core.WithPartitions(n) }

// WithStats directs run statistics (phase timings, candidate counts,
// clustering passes) into st, written once per Run/Seq completion.
func WithStats(st *Stats) QueryOption { return core.WithStats(st) }

// WithIncremental tunes the CMC scan's incremental clustering fast path.
// A threshold in (0, 1] re-clusters only the neighborhoods disturbed since
// the previous tick whenever the churned fraction of objects stays under
// it; threshold ≤ 0 disables the fast path entirely. The default (option
// absent) is DefaultChurnThreshold for serial CMC scans on the default
// DBSCAN backend. Answers are identical either way — the option trades
// memory (carried per-tick state) for per-tick clustering time.
func WithIncremental(threshold float64) QueryOption { return core.WithIncremental(threshold) }

// DefaultChurnThreshold is the churn fraction above which an incremental
// clustering pass falls back to a from-scratch one.
const DefaultChurnThreshold = core.DefaultChurnThreshold

// WithClusterer swaps the per-tick clustering backend of a CMC query (nil
// restores the default DBSCAN backend). The CuTS family's filter bounds are
// DBSCAN-specific theorems, so a non-default backend requires WithCMC;
// Run/Seq fail otherwise. See GraphClusterer for the bundled
// graph-connectivity backend.
func WithClusterer(c Clusterer) QueryOption { return core.WithClusterer(c) }

// WithConfig applies a legacy Config wholesale — the bridge from
// DiscoverWith-style configuration to the Query API.
func WithConfig(cfg Config) QueryOption { return core.WithConfig(cfg) }

// Discover answers the convoy query with the paper's best algorithm
// (CuTS*) using the automatic δ/λ guidelines of Section 7.4. It is the
// uncancellable one-liner; use NewQuery for contexts, streaming and
// limits.
func Discover(db *DB, p Params) (Result, error) {
	return core.NewQuery(core.WithParams(p)).Run(context.Background(), db)
}

// DiscoverWith answers the convoy query with an explicit algorithm
// configuration and returns run statistics alongside the result.
//
// Deprecated: build a Query instead — NewQuery(WithParams(p),
// WithConfig(cfg), WithStats(&st)).Run(ctx, db) is the same discovery
// with cancellation, streaming (Seq) and result limits. DiscoverWith
// remains answer-for-answer identical and is kept for compatibility.
func DiscoverWith(db *DB, p Params, cfg Config) (Result, Stats, error) {
	var st Stats
	res, err := core.NewQuery(core.WithParams(p), core.WithConfig(cfg), core.WithStats(&st)).
		Run(context.Background(), db)
	return res, st, err
}

// CMC answers the convoy query with the Coherent Moving Cluster baseline
// (Algorithm 1): snapshot DBSCAN at every tick, no filter step. Slower but
// useful as a reference.
func CMC(db *DB, p Params) (Result, error) { return CMCWith(db, p, 1) }

// CMCWith is CMC on a bounded worker pool: snapshots cluster concurrently
// while candidate chaining folds them in tick order, so the answer set is
// identical to the serial run for every worker count. workers ≤ 1 runs
// serially; DefaultWorkers() uses every core.
//
// Deprecated: build a Query instead — NewQuery(WithParams(p), WithCMC(),
// WithWorkers(n)).Run(ctx, db) is the same scan with cancellation and
// streaming. CMCWith remains answer-for-answer identical and is kept for
// compatibility.
func CMCWith(db *DB, p Params, workers int) (Result, error) {
	return core.NewQuery(core.WithParams(p), core.WithCMC(), core.WithWorkers(workers)).
		Run(context.Background(), db)
}

// DefaultWorkers returns the natural per-stage worker count for this
// machine (GOMAXPROCS), for use in Config.Workers and CMCWith.
func DefaultWorkers() int { return core.DefaultWorkers() }

// Streamer discovers convoys incrementally over a live position feed: push
// per-tick snapshots with Advance, receive convoys as they close, flush the
// rest with Close. Replaying a database through a Streamer and
// canonicalizing the emissions equals the batch CMC answer. A Streamer is
// the 1-monitor special case of the ClusterSource/Monitor streaming engine.
type Streamer = core.Streamer

// NewStreamer returns an online convoy discoverer for the given parameters.
func NewStreamer(p Params) (*Streamer, error) { return core.NewStreamer(p) }

// Multi-monitor streaming engine: many standing convoy queries over one
// position feed, sharing clustering work per tick.
type (
	// Monitor maintains one standing convoy query over per-tick cluster
	// lists — the chaining stage of the streaming engine. Feed N monitors
	// sharing a ClusterKey from one ClusterSource and each tick costs one
	// DBSCAN pass, not N.
	Monitor = core.Monitor
	// ClusterKey is the clustering configuration (e, m, backend) that
	// determines snapshot clusters; monitors sharing a key can share a
	// source. The zero Backend means the default DBSCAN backend.
	ClusterKey = core.ClusterKey
	// ClusterSource computes per-tick snapshot clusters at one ClusterKey
	// and counts its clustering passes.
	ClusterSource = core.ClusterSource
)

// Pluggable per-tick clustering backends (the density-connection stage of
// convoy discovery, swappable under CMC and the streaming engine).
type (
	// Clusterer is a per-tick clustering backend: it partitions one tick's
	// snapshot into candidate groups of at least ClusterKey.M members.
	// DefaultClusterer is the paper's grid-indexed DBSCAN over positions;
	// GraphClusterer clusters the snapshot's proximity edges instead.
	Clusterer = core.Clusterer
	// TickSnapshot is one tick's input to a Clusterer: object IDs with
	// their positions, plus optional proximity edges.
	TickSnapshot = core.TickSnapshot
	// ProxEdge is one weighted proximity observation between two objects
	// within a TickSnapshot.
	ProxEdge = core.ProxEdge
	// ProximityLog is a coordinate-free contact log: timestamped weighted
	// edges between labeled objects (read from "a,b,t,w" CSV). Its
	// Clusterer method yields a graph-connectivity backend over the log,
	// and DB synthesizes the stand-in trajectory database that carries the
	// log's objects through a Query.
	ProximityLog = proxgraph.Log
)

// DefaultClusterer returns the default backend: the paper's grid-indexed
// snapshot DBSCAN over object positions.
func DefaultClusterer() Clusterer { return core.DefaultClusterer }

// GraphClusterer returns the graph-connectivity backend: clusters are
// connected components of the snapshot's proximity edges with weight ≥ e,
// ignoring positions entirely. A nil log clusters only the edges carried in
// each TickSnapshot (the streaming form); a non-nil log supplies edges for
// snapshots that carry none (the batch form — pair it with log.DB()).
func GraphClusterer(log *ProximityLog) Clusterer { return proxgraph.Clusterer{Log: log} }

// NewProximityLog returns an empty contact log; fill it with Add.
func NewProximityLog() *ProximityLog { return proxgraph.NewLog() }

// ReadProximityLog parses a contact log from "a,b,t,w" CSV.
func ReadProximityLog(r io.Reader) (*ProximityLog, error) { return proxgraph.ReadLog(r) }

// LoadProximityLog reads a contact log from a CSV file.
func LoadProximityLog(path string) (*ProximityLog, error) { return proxgraph.LoadLog(path) }

// ProximityLogFromDB derives a contact log from a trajectory database: one
// weight-1 edge per object pair within distance r at each tick. At m=2 the
// graph backend over this log answers exactly like DBSCAN over the
// positions; at larger m the two notions of density diverge.
func ProximityLogFromDB(db *DB, r float64) (*ProximityLog, error) {
	return proxgraph.FromDB(db, r)
}

// NewMonitor returns a standing convoy query consuming per-tick cluster
// lists (see Monitor.AdvanceClusters); pair it with a ClusterSource at
// Params.ClusterKey().
func NewMonitor(p Params) (*Monitor, error) { return core.NewMonitor(p) }

// NewClusterSource returns a per-tick snapshot clustering stage for the
// key, shareable by every Monitor whose parameters have that ClusterKey.
// The key's backend must be the default; pass custom backends to
// NewClusterSourceWith.
func NewClusterSource(key ClusterKey) (*ClusterSource, error) { return core.NewClusterSource(key) }

// NewClusterSourceWith returns a clustering stage running the given
// backend (nil = default DBSCAN). The key's Backend must name c — sources
// are shared by key, so the key must pin the backend that computes it.
func NewClusterSourceWith(key ClusterKey, c Clusterer) (*ClusterSource, error) {
	return core.NewClusterSourceWith(key, c)
}

// ReplayTicks walks a stored database tick by tick, calling fn with every
// interpolated snapshot — the bridge from batch storage to the online
// interfaces (drive a Streamer, or a convoyd feed, from a file).
func ReplayTicks(db *DB, fn func(t Tick, ids []ObjectID, pts []Point) error) error {
	return core.ReplayTicks(db, fn)
}

// Serving layer (the convoyd subsystem; see the serve package).
type (
	// Server is the convoy-monitoring HTTP handler: live feeds plus a
	// batch query engine. Close it to drain every feed.
	Server = serve.Server
	// ServeConfig tunes a Server; the zero value is production-ready.
	ServeConfig = serve.Config
	// ConvoyJSON is the wire form of one convoy, shared by the server
	// and `convoyfind -format json`.
	ConvoyJSON = serve.ConvoyJSON
	// ParamsJSON is the wire form of the query parameters (m, k, e).
	ParamsJSON = serve.ParamsJSON
	// TickBatch is one tick's positions and/or proximity edges, the feed
	// ingestion unit.
	TickBatch = serve.TickBatch
	// Position is one object's location within a TickBatch.
	Position = serve.Position
	// EdgeJSON is one proximity observation within a TickBatch, feeding
	// graph-connectivity ("proxgraph") monitors.
	EdgeJSON = serve.EdgeJSON
	// FeedSpec names a feed and its parameters (feed creation body).
	FeedSpec = serve.FeedSpec
	// FeedStatus describes one live feed, including its monitor table.
	FeedStatus = serve.FeedStatus
	// FeedEvent is one closed convoy on a feed's event log, tagged with
	// the monitor that closed it.
	FeedEvent = serve.Event
	// MonitorSpec registers a standing convoy query on a feed
	// (POST /v1/feeds/{name}/monitors body).
	MonitorSpec = serve.MonitorSpec
	// MonitorStatus describes one monitor of a feed.
	MonitorStatus = serve.MonitorStatus
	// QueryResponse is the batch query answer.
	QueryResponse = serve.QueryResponse
	// ServerStats is the read-only counter snapshot returned by
	// Server.Snapshot and GET /v1/stats.
	ServerStats = serve.ServerStats
	// HistoryQueryRequest is a batch convoy query over the tick window a
	// durable feed's write-ahead log retains
	// (POST /v1/feeds/{name}/query body).
	HistoryQueryRequest = serve.HistoryQueryRequest
	// HistoryQueryResponse is the historical-query answer.
	HistoryQueryResponse = serve.HistoryQueryResponse
	// WALStatusJSON describes a durable feed's write-ahead log — segments,
	// bytes, tick span, fsync time and recovery stats
	// (GET /v1/feeds/{name}/wal).
	WALStatusJSON = serve.WALStatusJSON
	// WALRecoveryJSON summarizes the replay that resurrected a feed after
	// a restart (nested in WALStatusJSON).
	WALRecoveryJSON = serve.WALRecoveryJSON
	// FsyncPolicy says when write-ahead-log appends are forced to stable
	// storage (ServeConfig.WALFsync; convoyd -wal-fsync).
	FsyncPolicy = wal.FsyncPolicy
	// MetricsRegistry holds metric instruments and renders them in the
	// Prometheus text format (mount its Handler as /metrics). Pass one in
	// ServeConfig.Metrics to receive the server's convoyd_* families.
	MetricsRegistry = metrics.Registry
)

// NewServer builds a convoy-monitoring server; mount it on any mux (it is
// an http.Handler) and Close it on the way out.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// NewMetricsRegistry returns an empty metrics registry to hand to
// ServeConfig.Metrics; srv.MetricsRegistry().Handler() serves the
// exposition (cmd/convoyd wires this up behind -metrics-addr).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Write-ahead-log fsync policies for ServeConfig.WALFsync. FsyncAlways
// (the zero value) syncs every append; FsyncInterval batches syncs on a
// timer; FsyncNever leaves flushing to the OS.
const (
	FsyncAlways   = wal.FsyncAlways
	FsyncInterval = wal.FsyncInterval
	FsyncNever    = wal.FsyncNever
)

// ParseFsyncPolicy resolves an fsync policy name ("always", "interval",
// "never"; "" = always) — the convoyd -wal-fsync values.
func ParseFsyncPolicy(name string) (FsyncPolicy, error) { return wal.ParseFsyncPolicy(name) }

// Request-scoped tracing and query explain profiles (the trace package;
// see README "Tracing, explain & logging"). A Server traces through
// ServeConfig.Tracer; library users can trace any Query.Run by starting
// a span on the context they pass in.
type (
	// Tracer samples operations into spans and keeps a bounded ring of
	// recent completed traces (mount Handler as /debug/traces). The zero
	// sample ratio never samples on its own; Forced starts and
	// continued remote traces still record.
	Tracer = trace.Tracer
	// TracerOption configures a Tracer under construction.
	TracerOption = trace.Option
	// SpanOption configures one Tracer.Start call.
	SpanOption = trace.StartOption
	// Span is one timed, attributed operation within a trace. All of its
	// methods are nil-safe, so unsampled code paths need no branches.
	Span = trace.Span
	// TraceJSON is a completed trace: summary fields plus the span tree.
	TraceJSON = trace.TraceJSON
	// SpanJSON is the wire form of one span within a TraceJSON tree.
	SpanJSON = trace.SpanJSON
	// ExplainJSON is the per-stage timing profile attached to a
	// QueryResponse when the query asked for explain=true.
	ExplainJSON = serve.ExplainJSON
	// ExplainStageJSON is one pipeline stage of an ExplainJSON profile.
	ExplainStageJSON = serve.ExplainStageJSON
)

// NewTracer builds a Tracer; with no options it records only forced and
// remotely-sampled traces (WithTraceSampleRatio adds probabilistic ones).
func NewTracer(opts ...TracerOption) *Tracer { return trace.NewTracer(opts...) }

// WithTraceSampleRatio samples the given fraction of ordinary
// (non-forced) Tracer.Start calls into the ring.
func WithTraceSampleRatio(r float64) TracerOption { return trace.WithSampleRatio(r) }

// ForcedTrace makes one Tracer.Start call record regardless of the
// sample ratio — the hook behind explain=true and slow-query tracing.
func ForcedTrace() SpanOption { return trace.Forced() }

// StartSpan opens a child span of the context's active span (the query
// pipeline's own stages are created this way); when the context carries
// no sampled span it returns (ctx, nil) at zero cost.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return trace.StartSpan(ctx, name)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span { return trace.FromContext(ctx) }

// ExplainFromTrace distills a collected trace into the wire-schema stage
// profile (the "run" span's direct children); ok is false when the trace
// holds no run span.
func ExplainFromTrace(tj TraceJSON) (ExplainJSON, bool) { return serve.ExplainFromTrace(tj) }

// ConvoyToJSON renders a convoy in the wire schema, resolving member
// labels from the database (falling back to "o<ID>").
func ConvoyToJSON(c Convoy, db *DB) ConvoyJSON {
	return serve.ConvoyToJSON(c, serve.DBLabels(db))
}

// MC2 runs the moving-cluster baseline with overlap threshold theta and
// returns its answers cast as convoys (no correctness guarantee — this is
// the method the paper shows to be unreliable in Figure 19).
func MC2(db *DB, p Params, theta float64) ([]Convoy, error) {
	return core.MC2(db, p, theta)
}

// CompareAnswers computes false-positive/negative percentages of an answer
// set against a reference result (the appendix's accuracy metrics).
func CompareAnswers(reported []Convoy, reference Result) AccuracyReport {
	return core.CompareAnswers(reported, reference)
}

// Simplify reduces a trajectory with the chosen method and tolerance,
// recording per-segment actual tolerances.
func Simplify(tr *Trajectory, delta float64, m SimplifyMethod) *SimplifiedTrajectory {
	return simplify.Simplify(tr, delta, m)
}

// ComputeDelta derives a simplification tolerance δ from the data
// (Section 7.4 guideline).
func ComputeDelta(db *DB, e float64) float64 { return core.ComputeDelta(db, e) }

// Canonicalize deduplicates convoys and removes non-maximal answers.
func Canonicalize(convoys []Convoy) Result { return core.Canonicalize(convoys) }

// Flock discovery (the disc-based baseline the paper's introduction
// contrasts with convoys; see the lossyflock example).
type (
	// FlockParams are the flock query parameters (m, k, disc radius r).
	FlockParams = flock.Params
	// Flock is one flock answer.
	Flock = flock.Flock
)

// FindFlocks answers the disc-based flock query.
func FindFlocks(db *DB, p FlockParams) ([]Flock, error) { return flock.Discover(db, p) }

// DBSCAN clusters a point snapshot with radius eps and density threshold
// minPts (neighborhoods include the point itself); the label slice is
// parallel to pts with -1 marking noise. It is the default Clusterer
// flattened to per-point labels; a border point density-reachable from
// several clusters gets the lowest-numbered one.
func DBSCAN(pts []Point, eps float64, minPts int) []int {
	ids := make([]ObjectID, len(pts))
	for i := range ids {
		ids[i] = i
	}
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = -1
	}
	clusters := core.DefaultClusterer.Clusters(
		core.ClusterKey{Eps: eps, M: minPts},
		core.TickSnapshot{IDs: ids, Pts: pts})
	for ci := len(clusters) - 1; ci >= 0; ci-- {
		for _, id := range clusters[ci] {
			labels[id] = ci
		}
	}
	return labels
}

// Close-pair spatio-temporal join (Section 2.3's pairwise primitive).
type (
	// JoinPair is one close-pair join answer.
	JoinPair = stjoin.Pair
	// JoinWindow restricts a join to a tick interval.
	JoinWindow = stjoin.Window
)

// JoinBetween returns the join window [lo, hi].
func JoinBetween(lo, hi Tick) JoinWindow { return stjoin.Between(lo, hi) }

// CloseJoin reports every pair (a ∈ left, b ∈ right) within distance e at
// some tick of the window (zero window = whole common domain).
func CloseJoin(left, right *DB, e float64, w JoinWindow) ([]JoinPair, error) {
	return stjoin.CloseJoin(left, right, e, w)
}

// CloseSelfJoin reports every unordered object pair of db within e at some
// tick of the window.
func CloseSelfJoin(db *DB, e float64, w JoinWindow) ([]JoinPair, error) {
	return stjoin.CloseSelfJoin(db, e, w)
}

// CSV I/O (format: "obj,t,x,y" with header).

// ReadCSV parses a trajectory database from CSV.
func ReadCSV(r io.Reader) (*DB, error) { return tsio.ReadCSV(r) }

// WriteCSV writes a trajectory database as CSV.
func WriteCSV(w io.Writer, db *DB) error { return tsio.WriteCSV(w, db) }

// LoadCSV reads a database from a CSV file.
func LoadCSV(path string) (*DB, error) { return tsio.LoadCSV(path) }

// SaveCSV writes a database to a CSV file.
func SaveCSV(path string, db *DB) error { return tsio.SaveCSV(path, db) }

// Edge CSV I/O (format: "a,b,t,w" with header — the contact-log wire
// format behind ProximityLog).

// EdgeRecord is one contact observation of an edge CSV: objects a and b in
// proximity at tick t with weight w.
type EdgeRecord = tsio.EdgeRecord

// ReadEdgeCSV parses contact records from "a,b,t,w" CSV, preserving file
// order. ReadProximityLog both parses and indexes.
func ReadEdgeCSV(r io.Reader) ([]EdgeRecord, error) { return tsio.ReadEdgeCSV(r) }

// WriteEdgeCSV writes contact records as "a,b,t,w" CSV.
func WriteEdgeCSV(w io.Writer, edges []EdgeRecord) error { return tsio.WriteEdgeCSV(w, edges) }

// LoadEdgeCSV reads contact records from a CSV file.
func LoadEdgeCSV(path string) ([]EdgeRecord, error) { return tsio.LoadEdgeCSV(path) }

// SaveEdgeCSV writes contact records to a CSV file.
func SaveEdgeCSV(path string, edges []EdgeRecord) error { return tsio.SaveEdgeCSV(path, edges) }

// Binary I/O (compact exact-precision "CTB" format for large databases).

// ReadBinary parses a CTB stream into a database.
func ReadBinary(r io.Reader) (*DB, error) { return tsio.ReadBinary(r) }

// WriteBinary writes a database in CTB format.
func WriteBinary(w io.Writer, db *DB) error { return tsio.WriteBinary(w, db) }

// LoadBinary reads a database from a CTB file.
func LoadBinary(path string) (*DB, error) { return tsio.LoadBinary(path) }

// SaveBinary writes a database to a CTB file.
func SaveBinary(path string, db *DB) error { return tsio.SaveBinary(path, db) }

// Synthetic dataset generation (the paper's four datasets are proprietary;
// these seeded profiles match their Table 3 shape — see DESIGN.md §3).
type (
	// Profile is a synthetic dataset profile with its query parameters.
	Profile = datagen.Profile
	// Scenario is a custom synthetic world description.
	Scenario = datagen.Scenario
	// GroupSpec plants one co-traveling group in a Scenario.
	GroupSpec = datagen.GroupSpec
)

// TruckProfile emulates the Athens trucks dataset at the given time scale.
func TruckProfile(scale float64, seed int64) Profile { return datagen.Truck(scale, seed) }

// CattleProfile emulates the CSIRO cattle dataset at the given time scale.
func CattleProfile(scale float64, seed int64) Profile { return datagen.Cattle(scale, seed) }

// CarProfile emulates the Copenhagen cars dataset at the given time scale.
func CarProfile(scale float64, seed int64) Profile { return datagen.Car(scale, seed) }

// TaxiProfile emulates the Beijing taxis dataset at the given time scale.
func TaxiProfile(scale float64, seed int64) Profile { return datagen.Taxi(scale, seed) }

// ContactProfile is a synthetic close-encounter world for the
// proximity-graph backend: thresholding pairwise distance at the profile's
// Eps (ProximityLogFromDB) turns each tick into a contact graph.
func ContactProfile(scale float64, seed int64) Profile { return datagen.Contact(scale, seed) }
