// Command trajgen generates synthetic trajectory datasets as CSV.
//
// Usage:
//
//	trajgen -profile truck -scale 0.1 -seed 1 -out truck.csv
//	trajgen -profile custom -objects 20 -ticks 500 -groups 3 -groupsize 4 -out custom.csv
//
// The four named profiles (truck, cattle, car, taxi) emulate the paper's
// Table 3 datasets at the given time scale; "custom" builds a simple world
// with planted co-traveling groups plus background walkers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	convoys "repro"
)

func main() {
	var (
		profile   = flag.String("profile", "truck", "dataset profile: truck, cattle, car, taxi or custom")
		scale     = flag.Float64("scale", 0.1, "time-domain scale for the named profiles (1 = paper size)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		objects   = flag.Int("objects", 20, "custom: number of background objects")
		ticks     = flag.Int64("ticks", 500, "custom: time-domain length")
		groups    = flag.Int("groups", 2, "custom: number of planted groups")
		groupSize = flag.Int("groupsize", 3, "custom: objects per planted group")
		spacing   = flag.Float64("spacing", 2, "custom: chain spacing within groups")
		world     = flag.Float64("world", 500, "custom: world side length")
		speed     = flag.Float64("speed", 3, "custom: walker speed per tick")
		keep      = flag.Float64("keep", 1, "custom: per-tick sampling probability")
	)
	flag.Parse()

	var db *convoys.DB
	switch *profile {
	case "truck":
		db = convoys.TruckProfile(*scale, *seed).Generate()
	case "cattle":
		db = convoys.CattleProfile(*scale, *seed).Generate()
	case "car":
		db = convoys.CarProfile(*scale, *seed).Generate()
	case "taxi":
		db = convoys.TaxiProfile(*scale, *seed).Generate()
	case "custom":
		var gs []convoys.GroupSpec
		for g := 0; g < *groups; g++ {
			span := *ticks * 3 / 4
			start := convoys.Tick(int64(g) * (*ticks - span) / int64(maxInt(*groups, 2)-1+1))
			gs = append(gs, convoys.GroupSpec{
				Size:    *groupSize,
				Start:   start,
				End:     start + convoys.Tick(span) - 1,
				Spacing: *spacing,
			})
		}
		db = convoys.Scenario{
			Seed:       *seed,
			T:          *ticks,
			World:      *world,
			Speed:      *speed,
			Groups:     gs,
			Background: *objects,
			KeepProb:   *keep,
			SpanFrac:   [2]float64{0.5, 1},
			Jitter:     *spacing / 10,
		}.Generate()
	default:
		fmt.Fprintf(os.Stderr, "trajgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	st := db.Stats()
	fmt.Fprintf(os.Stderr, "trajgen: %d objects, %d ticks, %d points (%.1f%% missing)\n",
		st.NumObjects, st.TimeDomainLength, st.TotalPoints, st.MissingFraction*100)

	// Output format: .ctb extension selects the compact binary encoding.
	binaryOut := strings.HasSuffix(strings.ToLower(*out), ".ctb")
	var err error
	switch {
	case *out == "":
		err = convoys.WriteCSV(os.Stdout, db)
	case binaryOut:
		err = convoys.SaveBinary(*out, db)
	default:
		err = convoys.SaveCSV(*out, db)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "trajgen: wrote %s\n", *out)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
