// Command convoyd serves convoy discovery over HTTP: live feeds hosting
// concurrent standing queries (monitors) plus a batch query engine over
// uploaded or on-disk databases (see the serve package for the API).
//
// Usage:
//
//	convoyd -addr :8764 [-data dir] [-idle 10m] [-query-workers 8] [-cache 64] [-max-monitors 64] [-max-edges-per-tick 65536] [-request-timeout 30s]
//	        [-data-dir dir] [-no-wal] [-wal-fsync always|interval|never] [-wal-fsync-interval 100ms]
//	        [-wal-segment-bytes 4194304] [-wal-segment-age 0] [-wal-retain-ticks 0]
//	        [-shard | -shards host:port,host:port,...]
//	        [-metrics-addr :9090] [-pprof] [-log-format text|json] [-log-level info] [-slow-query 250ms] [-trace-sample 0.01]
//
// Quick start against a running server:
//
//	curl -X POST localhost:8764/v1/feeds -d '{"name":"fleet","params":{"m":2,"k":3,"e":1}}'
//	curl -X POST localhost:8764/v1/feeds/fleet/ticks \
//	     -d '{"ticks":[{"t":0,"positions":[{"id":"van1","x":0,"y":0},{"id":"van2","x":0.5,"y":0}]}]}'
//	curl localhost:8764/v1/feeds/fleet/convoys
//	curl -X POST 'localhost:8764/v1/query?m=3&k=180&e=8' --data-binary @trucks.csv
//
// Any number of standing queries can watch one feed; monitors sharing
// (e, m) and a clustering backend share one clustering pass per tick, and
// events are tagged with the monitor that closed them:
//
//	curl -X POST localhost:8764/v1/feeds/fleet/monitors \
//	     -d '{"id":"long-haul","params":{"m":2,"k":30,"e":1}}'
//	curl 'localhost:8764/v1/feeds/fleet/convoys?monitor=long-haul'
//	curl -X DELETE localhost:8764/v1/feeds/fleet/monitors/long-haul
//
// Feeds and monitors created with "clusterer":"proxgraph" cluster per-tick
// proximity edges instead of positions — tick batches then carry
// "edges":[{"a":...,"b":...,"w":...}] (capped by -max-edges-per-tick), so
// coordinate-free contact streams work end to end. Batch queries take the
// same backend with ?clusterer=proxgraph over an "a,b,t,w" contact CSV.
//
// # Durable feeds
//
// With -data-dir set, feeds survive restarts and crashes: every accepted
// tick batch is written ahead to a per-feed log under <dir>/feeds before
// any monitor advances, monitor registrations are journaled, and startup
// replays the logs so the feed table comes back state-identical —
// including after a SIGKILL mid-append (the torn final record is
// truncated away). Durability costs what -wal-fsync says: "always" syncs
// every batch (crash-proof, slowest), "interval" syncs on a -wal-fsync-
// interval timer (the default; a crash loses at most the last interval),
// "never" leaves it to the OS. -wal-retain-ticks bounds the log (and the
// historical-query window); -no-wal keeps feeds in-memory even with a
// -data-dir. Two endpoints ride on the log:
//
//	curl -X POST localhost:8764/v1/feeds/fleet/query -d '{"params":{"m":2,"k":3,"e":1},"from":0,"to":500}'
//	curl localhost:8764/v1/feeds/fleet/wal
//
// # Distributed queries
//
// A convoyd fleet splits batch queries across machines. Start shards with
// -shard (enabling POST /v1/shard/query, the versioned window RPC) and a
// coordinator pointing at them:
//
//	convoyd -addr :8765 -shard &
//	convoyd -addr :8766 -shard &
//	convoyd -addr :8764 -shards localhost:8765,localhost:8766
//
// The coordinator answers POST /v1/query exactly like a single node — it
// splits the database's time range into overlapping windows (overlap k−1,
// so convoys crossing a boundary are seen whole by at least one side),
// assigns one window per shard, and merges the partial answers into the
// exact global result. Caching, in-flight dedup of identical queries and
// the query-worker bound all apply to the fan-out as a unit. -shard and
// -shards are mutually exclusive: a process is a shard or a coordinator.
//
// # Observability
//
// The server meters itself (see internal/serve's metric catalogue) and
// exposes:
//
//	GET /metrics       Prometheus text exposition (convoyd_* and go_*
//	                   families; Accept: application/openmetrics-text or
//	                   ?exemplars=1 adds trace-ID exemplars on the latency
//	                   histograms)
//	GET /debug/vars    expvar mirror of the same instruments
//	GET /debug/traces  recent request/query traces, newest first (?min_ms=)
//	GET /v1/stats      read-only JSON counter snapshot
//
// By default /metrics, /debug/vars and /debug/traces are mounted on the
// main address; -metrics-addr moves them (plus -pprof's /debug/pprof/*)
// onto a separate listener, the usual arrangement when the API port is
// public:
//
//	convoyd -addr :8764 -metrics-addr 127.0.0.1:9090 -pprof
//	curl 127.0.0.1:9090/metrics
//
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level the threshold. Every record emitted while serving a request
// carries that request's request_id (and trace_id when traced).
// -slow-query 250ms traces every request and logs one record with the
// full span tree for each request slower than the threshold;
// -trace-sample 0.01 additionally samples 1% of ordinary requests into
// /debug/traces. Clients get per-query stage timings with
// POST /v1/query?...&explain=true, no server flags required.
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish and every
// feed is drained, flushing still-open convoys to its event log.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/wal"
)

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8764", "listen address")
		dataDir     = flag.String("data", "", "directory of databases available to path-referencing /v1/query (empty = uploads only)")
		idle        = flag.Duration("idle", 0, "evict feeds idle for this long (0 = never)")
		workers     = flag.Int("query-workers", 0, "max concurrent batch queries (0 = GOMAXPROCS)")
		cache       = flag.Int("cache", 0, "batch-query LRU cache entries (0 = default 64, negative = off)")
		history     = flag.Int("history", 0, "closed-convoy events retained per feed (0 = default 1024)")
		monitors    = flag.Int("max-monitors", 0, "standing queries allowed per feed (0 = default 64)")
		maxEdges    = flag.Int("max-edges-per-tick", 0, "proximity edges allowed in one tick batch (0 = default 65536)")
		reqTimeout  = flag.Duration("request-timeout", 0, "server-side cap on one batch query's wall time; queries past it abort mid-run and answer 504 (0 = uncapped)")
		metricsAddr = flag.String("metrics-addr", "", "separate listen address for /metrics, /debug/vars, /debug/traces and -pprof (empty = mount them on the main address)")
		pprofOn     = flag.Bool("pprof", false, "also serve /debug/pprof/* on the metrics address (or the main address when -metrics-addr is empty)")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowQuery   = flag.Duration("slow-query", 0, "trace every request and log a structured record with the full span tree for any request slower than this (0 = off)")
		traceSample = flag.Float64("trace-sample", 0, "probability in [0,1] of tracing an ordinary request into /debug/traces (explain and slow-query tracing work regardless)")
		noIncr      = flag.Bool("no-incremental", false, "force every clustering pass (feeds and batch queries) onto the from-scratch path; answers are identical, the incremental reuse is just disabled")
		shardMode   = flag.Bool("shard", false, "serve as a distributed-query shard: enable POST /v1/shard/query, the RPC a coordinator assigns time windows over (mutually exclusive with -shards)")
		shardList   = flag.String("shards", "", "comma-separated shard base URLs (host:port or http://host:port); serve as a distributed-query coordinator fanning every batch query out over these shards (mutually exclusive with -shard)")

		walDir           = flag.String("data-dir", "", "durable-feed directory: per-feed write-ahead logs live under <dir>/feeds and are replayed on start (empty = feeds are in-memory)")
		noWAL            = flag.Bool("no-wal", false, "kill switch: keep feeds in-memory even when -data-dir is set")
		walFsync         = flag.String("wal-fsync", "interval", "WAL tick durability: always (sync every batch), interval (timer) or never")
		walFsyncInterval = flag.Duration("wal-fsync-interval", 100*time.Millisecond, "fsync timer period under -wal-fsync=interval")
		walSegBytes      = flag.Int64("wal-segment-bytes", 4<<20, "rotate a feed's active WAL segment beyond this size")
		walSegAge        = flag.Duration("wal-segment-age", 0, "also rotate a feed's active WAL segment after this long (0 = size-only rotation)")
		walRetain        = flag.Int64("wal-retain-ticks", 0, "compact WAL segments wholly older than the last tick minus this many ticks; bounds disk and the historical-query window (0 = retain everything)")
	)
	flag.Parse()

	var shards []string
	if *shardList != "" {
		if *shardMode {
			fmt.Fprintln(os.Stderr, "convoyd: -shard and -shards are mutually exclusive (a server is a shard or a coordinator, not both)")
			os.Exit(2)
		}
		for _, s := range strings.Split(*shardList, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if !strings.Contains(s, "://") {
				s = "http://" + s
			}
			shards = append(shards, s)
		}
		if len(shards) == 0 {
			fmt.Fprintln(os.Stderr, "convoyd: -shards lists no shard addresses")
			os.Exit(2)
		}
	}

	fsync, err := wal.ParseFsyncPolicy(*walFsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convoyd:", err)
		os.Exit(2)
	}
	feedDir := *walDir
	if *noWAL {
		feedDir = ""
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convoyd:", err)
		os.Exit(2)
	}
	tracer := trace.NewTracer(trace.WithSampleRatio(*traceSample))

	reg := metrics.NewRegistry()
	srv := serve.New(serve.Config{
		DataDir:            *dataDir,
		WALDir:             feedDir,
		WALFsync:           fsync,
		WALFsyncInterval:   *walFsyncInterval,
		WALSegmentBytes:    *walSegBytes,
		WALSegmentAge:      *walSegAge,
		WALRetainTicks:     *walRetain,
		IdleTimeout:        *idle,
		QueryWorkers:       *workers,
		CacheEntries:       *cache,
		HistoryLimit:       *history,
		MaxMonitorsPerFeed: *monitors,
		MaxEdgesPerTick:    *maxEdges,
		QueryTimeout:       *reqTimeout,
		DisableIncremental: *noIncr,
		Metrics:            reg,
		Logger:             logger,
		Tracer:             tracer,
		SlowQuery:          *slowQuery,
		Shards:             shards,
		ShardMode:          *shardMode,
	})
	reg.PublishExpvar("convoyd")
	if feedDir != "" {
		logger.Info("durable feeds enabled", "data_dir", feedDir, "fsync", fsync.String())
	}
	if *shardMode {
		logger.Info("shard mode: serving POST /v1/shard/query")
	}
	if len(shards) > 0 {
		logger.Info("coordinator mode: fanning batch queries out", "shards", strings.Join(shards, ","))
	}

	// The API mux: everything the serve package routes lives under /v1,
	// so the observability endpoints can share the listener without the
	// request-metering middleware counting scrapes as API traffic.
	apiMux := http.NewServeMux()
	apiMux.Handle("/v1/", srv)

	obsMux := apiMux // default: observability on the main address
	if *metricsAddr != "" {
		obsMux = http.NewServeMux()
	}
	obsMux.Handle("GET /metrics", reg.Handler())
	obsMux.Handle("GET /debug/vars", expvar.Handler())
	obsMux.Handle("GET /debug/traces", tracer.Handler())
	if *pprofOn {
		obsMux.HandleFunc("/debug/pprof/", pprof.Index)
		obsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		obsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		obsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		obsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: apiMux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "slow_query", slowQuery.String(), "trace_sample", *traceSample)

	var obsSrv *http.Server
	if *metricsAddr != "" {
		obsSrv = &http.Server{Addr: *metricsAddr, Handler: obsMux}
		go func() { errc <- obsSrv.ListenAndServe() }()
		logger.Info("metrics listener up", "addr", *metricsAddr)
	}

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if obsSrv != nil {
			if err := obsSrv.Shutdown(shutdownCtx); err != nil {
				logger.Error("metrics shutdown", "err", err)
			}
		}
		srv.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "convoyd:", err)
			os.Exit(1)
		}
	}
}
