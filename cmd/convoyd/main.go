// Command convoyd serves convoy discovery over HTTP: live feeds hosting
// concurrent standing queries (monitors) plus a batch query engine over
// uploaded or on-disk databases (see the serve package for the API).
//
// Usage:
//
//	convoyd -addr :8764 [-data dir] [-idle 10m] [-query-workers 8] [-cache 64] [-max-monitors 64] [-request-timeout 30s]
//
// Quick start against a running server:
//
//	curl -X POST localhost:8764/v1/feeds -d '{"name":"fleet","params":{"m":2,"k":3,"e":1}}'
//	curl -X POST localhost:8764/v1/feeds/fleet/ticks \
//	     -d '{"ticks":[{"t":0,"positions":[{"id":"van1","x":0,"y":0},{"id":"van2","x":0.5,"y":0}]}]}'
//	curl localhost:8764/v1/feeds/fleet/convoys
//	curl -X POST 'localhost:8764/v1/query?m=3&k=180&e=8' --data-binary @trucks.csv
//
// Any number of standing queries can watch one feed; monitors sharing
// (e, m) share one clustering pass per tick, and events are tagged with
// the monitor that closed them:
//
//	curl -X POST localhost:8764/v1/feeds/fleet/monitors \
//	     -d '{"id":"long-haul","params":{"m":2,"k":30,"e":1}}'
//	curl 'localhost:8764/v1/feeds/fleet/convoys?monitor=long-haul'
//	curl -X DELETE localhost:8764/v1/feeds/fleet/monitors/long-haul
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish and every
// feed is drained, flushing still-open convoys to its event log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8764", "listen address")
		dataDir    = flag.String("data", "", "directory of databases available to path-referencing /v1/query (empty = uploads only)")
		idle       = flag.Duration("idle", 0, "evict feeds idle for this long (0 = never)")
		workers    = flag.Int("query-workers", 0, "max concurrent batch queries (0 = GOMAXPROCS)")
		cache      = flag.Int("cache", 0, "batch-query LRU cache entries (0 = default 64, negative = off)")
		history    = flag.Int("history", 0, "closed-convoy events retained per feed (0 = default 1024)")
		monitors   = flag.Int("max-monitors", 0, "standing queries allowed per feed (0 = default 64)")
		reqTimeout = flag.Duration("request-timeout", 0, "server-side cap on one batch query's wall time; queries past it abort mid-run and answer 504 (0 = uncapped)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		DataDir:            *dataDir,
		IdleTimeout:        *idle,
		QueryWorkers:       *workers,
		CacheEntries:       *cache,
		HistoryLimit:       *history,
		MaxMonitorsPerFeed: *monitors,
		QueryTimeout:       *reqTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("convoyd: listening on %s", *addr)

	select {
	case <-ctx.Done():
		log.Print("convoyd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("convoyd: shutdown: %v", err)
		}
		srv.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "convoyd:", err)
			os.Exit(1)
		}
	}
}
