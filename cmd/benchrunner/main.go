// Command benchrunner regenerates the paper's evaluation tables and
// figures on the synthetic dataset profiles.
//
// Usage:
//
//	benchrunner -exp all -scale 0.05            # every experiment, small scale
//	benchrunner -exp fig12 -scale 1             # Figure 12 at full Table 3 scale
//	benchrunner -list                           # list experiment ids
//
// Experiment ids follow the paper: table3, fig12 … fig17, fig19. Scale
// multiplies the time-domain length of every dataset (1 reproduces the
// Table 3 sizes; expect minutes of runtime at full scale).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expr"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (table3, fig12..fig17, fig19) or 'all'")
		scale = flag.Float64("scale", 0.05, "time-domain scale (1 = paper's Table 3 sizes)")
		seed  = flag.Int64("seed", 1, "random seed for data generation")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range expr.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	opts := expr.Options{Scale: *scale, Seed: *seed, Out: os.Stdout}
	var err error
	if *exp == "all" {
		err = expr.RunAll(opts)
	} else {
		run, ok := expr.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		err = run(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}
