// Command benchrunner regenerates the paper's evaluation tables and
// figures on the synthetic dataset profiles.
//
// Usage:
//
//	benchrunner -exp all -scale 0.05            # every experiment, small scale
//	benchrunner -exp fig12 -scale 1             # Figure 12 at full Table 3 scale
//	benchrunner -exp fig12 -json out/           # also write out/BENCH_fig12.json
//	benchrunner -exp scaling -json out/         # worker-count scaling sweep
//	benchrunner -exp monitors -json out/        # standing-query fan-out sweep
//	benchrunner -list                           # list experiment ids
//
// Experiment ids follow the paper — table3, fig12 … fig17, fig19 — plus
// the repository's own "scaling" sweep (workers ∈ {1,2,4,NumCPU}) and
// "monitors" sweep (1..64 standing queries over one feed, shared vs
// distinct clustering keys). Scale
// multiplies the time-domain length of every dataset (1 reproduces the
// Table 3 sizes; expect minutes of runtime at full scale).
//
// -json <dir> additionally writes one BENCH_<exp>.json per experiment run:
// the machine-readable measurement rows behind the printed tables, tagged
// with scale and seed — the perf-trajectory files that later runs compare
// against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/expr"
)

// benchFile is the BENCH_<exp>.json schema.
type benchFile struct {
	Exp     string        `json:"exp"`
	Scale   float64       `json:"scale"`
	Seed    int64         `json:"seed"`
	Workers int           `json:"workers,omitempty"`
	Records []expr.Record `json:"records"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table3, fig12..fig17, fig19, scaling, monitors) or 'all'")
		scale   = flag.Float64("scale", 0.05, "time-domain scale (1 = paper's Table 3 sizes)")
		seed    = flag.Int64("seed", 1, "random seed for data generation")
		workers = flag.Int("workers", 1, "goroutines per discovery stage for the experiments (scaling sweeps its own counts)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		jsonDir = flag.String("json", "", "directory to write BENCH_<exp>.json measurement files into")
	)
	flag.Parse()

	if *list {
		for _, e := range expr.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range expr.Experiments {
			ids = append(ids, e.ID)
		}
	} else {
		if _, ok := expr.Lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		run, _ := expr.Lookup(id)
		opts := expr.Options{Scale: *scale, Seed: *seed, Out: os.Stdout, Workers: *workers}
		var records []expr.Record
		if *jsonDir != "" {
			opts.Record = func(r expr.Record) { records = append(records, r) }
		}
		if err := run(opts); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Println()
		if *jsonDir != "" {
			if err := writeBench(*jsonDir, benchFile{Exp: id, Scale: *scale, Seed: *seed, Workers: *workers, Records: records}); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				os.Exit(1)
			}
		}
	}
}

// writeBench writes one experiment's measurement file.
func writeBench(dir string, bf benchFile) error {
	path := filepath.Join(dir, "BENCH_"+bf.Exp+".json")
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
