// Command benchrunner regenerates the paper's evaluation tables and
// figures on the synthetic dataset profiles.
//
// Usage:
//
//	benchrunner -exp all -scale 0.05            # every experiment, small scale
//	benchrunner -exp fig12 -scale 1             # Figure 12 at full Table 3 scale
//	benchrunner -exp fig12 -json out/           # also write out/BENCH_fig12.json
//	benchrunner -exp scaling -json out/         # worker-count scaling sweep
//	benchrunner -exp monitors -json out/        # standing-query fan-out sweep
//	benchrunner -list                           # list experiment ids
//
// Experiment ids follow the paper — table3, fig12 … fig17, fig19 — plus
// the repository's own "scaling" sweep (workers ∈ {1,2,4,NumCPU}),
// "monitors" sweep (1..64 standing queries over one feed, shared vs
// distinct clustering keys) and "soak" (HTTP load scenarios against an
// in-process convoyd). Scale
// multiplies the time-domain length of every dataset (1 reproduces the
// Table 3 sizes; expect minutes of runtime at full scale).
//
// -json <dir> additionally writes one BENCH_<exp>.json per experiment run:
// the machine-readable measurement rows behind the printed tables, tagged
// with scale and seed — the perf-trajectory files that later runs compare
// against.
//
// -check-regression compares two scaling bench files by their
// machine-independent key ratios (parallel speedup per dataset, method
// and worker count) and exits 1 when the candidate regressed more than
// -tolerance below the baseline — the CI perf gate:
//
//	benchrunner -exp scaling -scale 0.02 -json /tmp/bench
//	benchrunner -check-regression -baseline bench/BENCH_scaling.json \
//	    -candidate /tmp/bench/BENCH_scaling.json -tolerance 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/expr"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (table3, fig12..fig17, fig19, scaling, monitors, cancel, soak, clusterers, increment, wal, distributed) or 'all'")
		scale     = flag.Float64("scale", 0.05, "time-domain scale (1 = paper's Table 3 sizes)")
		seed      = flag.Int64("seed", 1, "random seed for data generation")
		workers   = flag.Int("workers", 1, "goroutines per discovery stage for the experiments (scaling sweeps its own counts)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		jsonDir   = flag.String("json", "", "directory to write BENCH_<exp>.json measurement files into")
		check     = flag.Bool("check-regression", false, "compare -candidate against -baseline instead of running experiments")
		baseline  = flag.String("baseline", "bench/BENCH_scaling.json", "committed scaling bench file (with -check-regression)")
		candidate = flag.String("candidate", "", "freshly measured scaling bench file (with -check-regression)")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional speedup regression before failing (with -check-regression)")
	)
	flag.Parse()

	if *check {
		os.Exit(checkRegression(*baseline, *candidate, *tolerance))
	}

	if *list {
		for _, e := range expr.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range expr.Experiments {
			ids = append(ids, e.ID)
		}
	} else {
		if _, ok := expr.Lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		run, _ := expr.Lookup(id)
		opts := expr.Options{Scale: *scale, Seed: *seed, Out: os.Stdout, Workers: *workers}
		var records []expr.Record
		if *jsonDir != "" {
			opts.Record = func(r expr.Record) { records = append(records, r) }
		}
		if err := run(opts); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Println()
		if *jsonDir != "" {
			if err := writeBench(*jsonDir, expr.BenchFile{Exp: id, Scale: *scale, Seed: *seed, Workers: *workers, Records: records}); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				os.Exit(1)
			}
		}
	}
}

// checkRegression loads both scaling bench files, compares their key
// ratios and reports; exit status 1 flags a regression, 2 a usage error.
func checkRegression(baselinePath, candidatePath string, tol float64) int {
	if candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchrunner: -check-regression needs -candidate")
		return 2
	}
	base, err := expr.ReadBenchFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		return 2
	}
	cand, err := expr.ReadBenchFile(candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		return 2
	}
	regs := expr.CompareScaling(base, cand, tol)
	if len(regs) == 0 {
		fmt.Printf("benchrunner: no speedup regressions beyond %.0f%% (%s vs %s)\n",
			tol*100, candidatePath, baselinePath)
		return 0
	}
	fmt.Fprintf(os.Stderr, "benchrunner: %d speedup regression(s) beyond %.0f%%:\n", len(regs), tol*100)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "  "+r.String())
	}
	return 1
}

// writeBench writes one experiment's measurement file.
func writeBench(dir string, bf expr.BenchFile) error {
	path := filepath.Join(dir, "BENCH_"+bf.Exp+".json")
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
