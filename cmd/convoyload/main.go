// Command convoyload drives a live convoyd server with scripted traffic
// and reports what both sides measured: client-observed latency
// percentiles per operation, the server's own /metrics counters scraped
// after the run (Report.ServerMatch confirms the two request counts
// agree), and the per-stage profile of one sampled explain=true query.
// Against a server that predates /v1/stats the server-side view degrades
// to a clear Report.ServerError instead of zeroed counters.
//
// Usage:
//
//	convoyload -addr http://127.0.0.1:8764 -scenario mixed -duration 10s -c 8
//	convoyload -addr http://127.0.0.1:8764 -scenario all -report report.json
//	convoyload -addr http://127.0.0.1:8764 -scenario batch -rate 500   # open loop
//	convoyload -list
//
// Scenario presets:
//
//	batch    batch-query firehose (rotating uploads/algorithms, cache mix)
//	monitor  standing-query fan-out (one tracker, dashboard pollers)
//	mixed    ingest + query interleaved over per-worker feeds
//	churn    feed create → ingest → delete lifecycle cycles
//	cancel   tiny timeout_ms deadlines forcing mid-run aborts
//
// With -rate 0 (default) the run is a closed loop: -c workers issue
// requests back-to-back. With -rate > 0 requests start on a fixed
// schedule (open loop), measuring behavior at an arrival rate the server
// does not control.
//
// The JSON report (-report, "-" for stdout) is an array of
// loadgen.Report, one element per scenario run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8764", "convoyd base URL")
		metrics  = flag.String("metrics", "", `exposition URL to scrape after the run ("" = <addr>/metrics, "-" = skip scraping)`)
		scenario = flag.String("scenario", "mixed", `traffic preset (see -list), or "all"`)
		duration = flag.Duration("duration", 10*time.Second, "load window per scenario")
		conc     = flag.Int("c", 8, "workers (closed loop) / serialized states (open loop)")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
		seed     = flag.Int64("seed", 1, "payload generation seed")
		scale    = flag.Float64("scale", 1, "payload size multiplier")
		report   = flag.String("report", "", `write the JSON report here ("-" = stdout)`)
		list     = flag.Bool("list", false, "list scenario presets and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range loadgen.ScenarioNames() {
			fmt.Printf("%-8s %s\n", name, loadgen.ScenarioDesc(name))
		}
		return
	}

	names := []string{*scenario}
	if *scenario == "all" {
		names = loadgen.ScenarioNames()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reports []loadgen.Report
	for _, name := range names {
		rep, err := loadgen.Run(ctx, loadgen.Options{
			BaseURL:     *addr,
			MetricsURL:  *metrics,
			Scenario:    name,
			Duration:    *duration,
			Concurrency: *conc,
			Rate:        *rate,
			Seed:        *seed,
			Scale:       *scale,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "convoyload:", err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		printSummary(rep)
		if ctx.Err() != nil {
			break
		}
	}

	if *report != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "convoyload:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *report == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*report, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "convoyload:", err)
			os.Exit(1)
		}
	}
}

func printSummary(rep loadgen.Report) {
	match := "n/a"
	if rep.ServerRequests > 0 || rep.ServerMatch {
		match = fmt.Sprintf("%v (server saw %d)", rep.ServerMatch, rep.ServerRequests)
	}
	fmt.Printf("%s [%s, c=%d]: %d requests (%d errors) in %.1fs — %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms, accounting match: %s\n",
		rep.Scenario, rep.Mode, rep.Concurrency, rep.Requests, rep.Errors,
		rep.DurationMS/1000, rep.ThroughputRPS, rep.P50MS, rep.P95MS, rep.P99MS, match)
	for _, op := range rep.Ops {
		fmt.Printf("  %-14s %7d reqs  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms\n",
			op.Op, op.Requests, op.P50MS, op.P95MS, op.P99MS)
	}
	if saved := rep.Server["convoyd_feed_cluster_passes_naive_total"] - rep.Server["convoyd_feed_cluster_passes_total"]; saved > 0 {
		fmt.Printf("  shared clustering saved %.0f DBSCAN passes server-side\n", saved)
	}
	if ex := rep.Explain; ex != nil {
		fmt.Printf("  sampled query profile: total %.3fms (trace %s)\n", ex.TotalMS, ex.TraceID)
		for _, s := range ex.Stages {
			fmt.Printf("    %-8s %10.3fms\n", s.Name, s.DurationMS)
		}
	}
	if rep.ServerError != "" {
		fmt.Printf("  server-side view degraded: %s\n", rep.ServerError)
	}
}
