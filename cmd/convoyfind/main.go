// Command convoyfind discovers convoys in a CSV trajectory file.
//
// Usage:
//
//	convoyfind -input traj.csv -m 3 -k 180 -e 8 [-algo cuts*] [-delta δ] [-lambda λ]
//	           [-clusterer dbscan|proxgraph] [-workers N] [-partitions N] [-limit N] [-timeout 30s]
//	           [-stats] [-explain] [-format text|json|jsonl|json-array]
//
// The input format is "obj,t,x,y" with a header line (see the tsio
// package). The convoy parameters follow the paper: m is the minimum group
// size, k the minimum lifetime in time points, e the density-connection
// distance. The algorithm defaults to CuTS*, the paper's fastest; δ and λ
// default to the automatic guidelines of Section 7.4.
//
// -clusterer proxgraph swaps the per-tick clustering backend: the input is
// then an "a,b,t,w" contact log (weighted proximity edges, no coordinates)
// and a convoy is a group staying graph-connected at weight ≥ e for k
// consecutive ticks. The graph backend runs under CMC only — the CuTS
// filter bounds are DBSCAN-specific — so -algo defaults to cmc and any
// other explicit -algo is rejected.
//
// -format json emits one JSON object per convoy (NDJSON) in the same wire
// schema the convoyd server speaks (objects, start, end, lifetime), so
// pipelines can mix CLI and server output; -format jsonl is the streaming
// variant, printing each convoy the moment the scan closes it instead of
// waiting for the full answer (with -limit the scan stops after that many).
// -format json-array (and its older spelling, the -json flag) wraps the
// same objects in one indented JSON array.
//
// -explain traces the discovery and prints the per-stage timing profile
// (the same stage breakdown POST /v1/query?...&explain=true returns) to
// stderr after the results, so it composes with every -format.
//
// -timeout bounds the whole discovery; SIGINT (Ctrl-C) aborts it the same
// way. Both cancel the clustering pipeline mid-run — with -format jsonl
// the convoys already printed remain valid answers — and exit nonzero.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"

	convoys "repro"
)

func main() {
	var (
		input     = flag.String("input", "", "input file: CSV (obj,t,x,y with header) or binary .ctb; required")
		m         = flag.Int("m", 2, "minimum number of objects in a convoy")
		k         = flag.Int64("k", 2, "minimum convoy lifetime in time points")
		e         = flag.Float64("e", 1, "density-connection distance threshold")
		algo      = flag.String("algo", "cuts*", "algorithm: cmc, cuts, cuts+ or cuts* (defaults to cmc under -clusterer proxgraph)")
		clusterer = flag.String("clusterer", "dbscan", "clustering backend: dbscan (positions) or proxgraph (input is an a,b,t,w contact log)")
		delta     = flag.Float64("delta", 0, "simplification tolerance δ (0 = automatic guideline)")
		lambda    = flag.Int64("lambda", 0, "time-partition length λ (0 = automatic guideline)")
		stats     = flag.Bool("stats", false, "print phase timings and filter statistics")
		explain   = flag.Bool("explain", false, "print the per-stage timing profile to stderr after the results")
		format    = flag.String("format", "text", "output format: text, json (NDJSON), jsonl (NDJSON, streamed as found) or json-array")
		asJSON    = flag.Bool("json", false, "deprecated alias for -format json-array (ignored when -format is given)")
		workers   = flag.Int("workers", 0, "goroutines per discovery stage (0 = all CPU cores, 1 = serial)")
		limit     = flag.Int("limit", 0, "stop after this many convoys, abandoning the remaining scan (0 = all)")
		parts     = flag.Int("partitions", 0, "split the time range into this many overlapping windows, mine them independently and merge — the answer is identical, the scan parallelises (0/1 = single pass)")
		timeout   = flag.Duration("timeout", 0, "abort discovery after this long (0 = no deadline)")
		noIncr    = flag.Bool("no-incremental", false, "force from-scratch clustering every tick (disables the incremental fast path; answers are identical)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "convoyfind: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		// Honor an explicit -format over the deprecated alias.
		formatSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "format" {
				formatSet = true
			}
		})
		if !formatSet {
			*format = "json-array"
		}
	}
	if *workers <= 0 {
		*workers = convoys.DefaultWorkers()
	}
	if strings.EqualFold(*clusterer, "proxgraph") {
		// The graph backend runs under CMC only; an untouched -algo follows
		// the backend rather than fighting it, an explicit one is honored
		// (and rejected below if it names a CuTS variant).
		algoSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if !algoSet {
			*algo = "cmc"
		}
	}

	// Ctrl-C cancels the discovery pipeline (the run returns ctx.Err()
	// within about one clustering pass per worker); a second Ctrl-C kills
	// the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := options{
		input: *input, m: *m, k: *k, e: *e, algo: *algo, clusterer: *clusterer,
		delta: *delta, lambda: *lambda, workers: *workers,
		limit: *limit, partitions: *parts, stats: *stats, explain: *explain, format: *format,
		noIncremental: *noIncr,
	}
	if err := run(ctx, os.Stdout, opts); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "convoyfind: interrupted")
		} else if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "convoyfind: timed out after %v\n", *timeout)
		} else {
			fmt.Fprintln(os.Stderr, "convoyfind:", err)
		}
		os.Exit(1)
	}
}

// options carries one invocation's settings.
type options struct {
	input     string
	m         int
	k         int64
	e         float64
	algo      string
	clusterer string
	delta     float64
	lambda    int64
	workers   int
	limit     int
	// partitions splits the scan into overlapping time windows mined
	// independently and merged (-partitions); the answer never depends
	// on it.
	partitions int
	stats      bool
	explain    bool
	format     string
	// noIncremental pins every CMC clustering pass to the from-scratch
	// path (-no-incremental); the answers never depend on it.
	noIncremental bool
}

// loadDB picks the reader by file extension.
func loadDB(input string) (*convoys.DB, error) {
	if strings.HasSuffix(strings.ToLower(input), ".ctb") {
		return convoys.LoadBinary(input)
	}
	return convoys.LoadCSV(input)
}

// load reads the input for the selected backend: a trajectory database for
// dbscan, a contact log (plus its synthesized stand-in database) for
// proxgraph.
func load(o options) (*convoys.DB, *convoys.ProximityLog, error) {
	switch strings.ToLower(o.clusterer) {
	case "", "dbscan":
		db, err := loadDB(o.input)
		return db, nil, err
	case "proxgraph":
		log, err := convoys.LoadProximityLog(o.input)
		if err != nil {
			return nil, nil, err
		}
		db, err := log.DB()
		return db, log, err
	default:
		return nil, nil, fmt.Errorf("unknown clusterer %q (want dbscan or proxgraph)", o.clusterer)
	}
}

// buildQuery assembles the Query for the options, directing statistics
// into st. A non-nil log swaps in the graph-connectivity backend.
func buildQuery(o options, st *convoys.Stats, log *convoys.ProximityLog) (*convoys.Query, error) {
	opts := []convoys.QueryOption{
		convoys.M(o.m), convoys.K(o.k), convoys.Eps(o.e),
		convoys.WithDelta(o.delta), convoys.WithLambda(o.lambda),
		convoys.WithWorkers(o.workers), convoys.WithStats(st),
	}
	if o.limit > 0 {
		opts = append(opts, convoys.WithLimit(o.limit))
	}
	if o.partitions > 1 {
		opts = append(opts, convoys.WithPartitions(o.partitions))
	}
	if o.noIncremental {
		opts = append(opts, convoys.WithIncremental(-1))
	}
	if log != nil {
		if !strings.EqualFold(o.algo, "cmc") {
			return nil, fmt.Errorf("clusterer proxgraph requires -algo cmc (the CuTS filter bounds are DBSCAN-specific; got %q)", o.algo)
		}
		opts = append(opts, convoys.WithClusterer(log.Clusterer()))
	}
	switch strings.ToLower(o.algo) {
	case "cmc":
		opts = append(opts, convoys.WithCMC())
	case "cuts":
		opts = append(opts, convoys.WithVariant(convoys.CuTSVariant))
	case "cuts+":
		opts = append(opts, convoys.WithVariant(convoys.CuTSPlusVariant))
	case "cuts*":
		opts = append(opts, convoys.WithVariant(convoys.CuTSStarVariant))
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want cmc, cuts, cuts+ or cuts*)", o.algo)
	}
	return convoys.NewQuery(opts...), nil
}

func run(ctx context.Context, out io.Writer, o options) error {
	switch strings.ToLower(o.format) {
	case "text", "json", "jsonl", "json-array":
	default:
		return fmt.Errorf("unknown format %q (want text, json, jsonl or json-array)", o.format)
	}
	db, log, err := load(o)
	if err != nil {
		return err
	}
	var st convoys.Stats
	q, err := buildQuery(o, &st, log)
	if err != nil {
		return err
	}

	if !o.explain {
		return discover(ctx, out, o, q, db, &st)
	}
	// -explain: run the same discovery under a private forced trace and
	// print the stage breakdown (the server's explain=true profile) to
	// stderr once the results are out.
	ctx, root := convoys.NewTracer().Start(ctx, "convoyfind", convoys.ForcedTrace())
	err = discover(ctx, out, o, q, db, &st)
	root.End()
	if err != nil {
		return err
	}
	if tj, ok := root.Collect(); ok {
		if ex, ok := convoys.ExplainFromTrace(tj); ok {
			printExplain(os.Stderr, ex)
		}
	}
	return nil
}

// printExplain renders a query profile the way the text formats do:
// one line per pipeline stage, attributes appended.
func printExplain(w io.Writer, ex convoys.ExplainJSON) {
	fmt.Fprintf(w, "query profile: total %.3fms (trace %s)\n", ex.TotalMS, ex.TraceID)
	for _, s := range ex.Stages {
		fmt.Fprintf(w, "  %-8s %10.3fms", s.Name, s.DurationMS)
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, s.Attrs[k])
		}
		fmt.Fprintln(w)
	}
}

// discover executes the query and writes the results in o.format.
func discover(ctx context.Context, out io.Writer, o options, q *convoys.Query, db *convoys.DB, st *convoys.Stats) error {
	if strings.ToLower(o.format) == "jsonl" {
		// Streaming: print each convoy the moment the scan closes it.
		// Breaking on a write error (or the -limit inside the query)
		// abandons the remaining clustering work.
		enc := json.NewEncoder(out)
		for c, serr := range q.Seq(ctx, db) {
			if serr != nil {
				return serr
			}
			if err := enc.Encode(convoys.ConvoyToJSON(c, db)); err != nil {
				return err
			}
		}
		return nil
	}

	res, err := q.Run(ctx, db)
	if err != nil {
		return err
	}

	switch strings.ToLower(o.format) {
	case "json":
		// One wire-schema object per line, like a feed's event payloads.
		enc := json.NewEncoder(out)
		for _, c := range res {
			if err := enc.Encode(convoys.ConvoyToJSON(c, db)); err != nil {
				return err
			}
		}
		return nil
	case "json-array":
		// The historical -json shape: one indented array.
		payload := make([]convoys.ConvoyJSON, 0, len(res))
		for _, c := range res {
			payload = append(payload, convoys.ConvoyToJSON(c, db))
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	}

	fmt.Fprintf(out, "%d convoy(s) with m=%d k=%d e=%g in %s (%d objects)\n",
		len(res), o.m, o.k, o.e, o.input, db.Len())
	for _, c := range res {
		fmt.Fprintf(out, "  {%s} ticks [%d, %d] (%d points)\n",
			strings.Join(convoys.ConvoyToJSON(c, db).Objects, ", "), c.Start, c.End, c.Lifetime())
	}
	if o.stats && strings.ToLower(o.algo) != "cmc" {
		fmt.Fprintf(out, "algorithm %v: δ=%.3g λ=%d workers=%d partitions=%d candidates=%d refinement-units=%.0f\n",
			st.Variant, st.Delta, st.Lambda, st.Workers, st.NumPartitions, st.NumCandidates, st.RefineUnits)
		fmt.Fprintf(out, "timings: simplify=%v filter=%v refine=%v total=%v (vertex reduction %.1f%%)\n",
			st.SimplifyTime, st.FilterTime, st.RefineTime, st.TotalTime(), st.VertexReduction()*100)
	}
	return nil
}
