// Command convoyfind discovers convoys in a CSV trajectory file.
//
// Usage:
//
//	convoyfind -input traj.csv -m 3 -k 180 -e 8 [-algo cuts*] [-delta δ] [-lambda λ] [-workers N] [-stats] [-format text|json]
//
// The input format is "obj,t,x,y" with a header line (see the tsio
// package). The convoy parameters follow the paper: m is the minimum group
// size, k the minimum lifetime in time points, e the density-connection
// distance. The algorithm defaults to CuTS*, the paper's fastest; δ and λ
// default to the automatic guidelines of Section 7.4.
//
// -format json emits one JSON object per convoy (NDJSON) in the same wire
// schema the convoyd server speaks (objects, start, end, lifetime), so
// pipelines can mix CLI and server output. -format json-array (and its
// older spelling, the -json flag) wraps the same objects in one indented
// JSON array.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	convoys "repro"
)

func main() {
	var (
		input   = flag.String("input", "", "input file: CSV (obj,t,x,y with header) or binary .ctb; required")
		m       = flag.Int("m", 2, "minimum number of objects in a convoy")
		k       = flag.Int64("k", 2, "minimum convoy lifetime in time points")
		e       = flag.Float64("e", 1, "density-connection distance threshold")
		algo    = flag.String("algo", "cuts*", "algorithm: cmc, cuts, cuts+ or cuts*")
		delta   = flag.Float64("delta", 0, "simplification tolerance δ (0 = automatic guideline)")
		lambda  = flag.Int64("lambda", 0, "time-partition length λ (0 = automatic guideline)")
		stats   = flag.Bool("stats", false, "print phase timings and filter statistics")
		format  = flag.String("format", "text", "output format: text, json (NDJSON, server wire schema) or json-array")
		asJSON  = flag.Bool("json", false, "deprecated alias for -format json-array (ignored when -format is given)")
		workers = flag.Int("workers", 0, "goroutines per discovery stage (0 = all CPU cores, 1 = serial)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "convoyfind: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		// Honor an explicit -format over the deprecated alias.
		formatSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "format" {
				formatSet = true
			}
		})
		if !formatSet {
			*format = "json-array"
		}
	}
	if *workers <= 0 {
		*workers = convoys.DefaultWorkers()
	}
	if err := run(os.Stdout, *input, *m, *k, *e, *algo, *delta, *lambda, *workers, *stats, *format); err != nil {
		fmt.Fprintln(os.Stderr, "convoyfind:", err)
		os.Exit(1)
	}
}

// loadDB picks the reader by file extension.
func loadDB(input string) (*convoys.DB, error) {
	if strings.HasSuffix(strings.ToLower(input), ".ctb") {
		return convoys.LoadBinary(input)
	}
	return convoys.LoadCSV(input)
}

func run(out io.Writer, input string, m int, k int64, e float64, algo string, delta float64, lambda int64, workers int, stats bool, format string) error {
	switch strings.ToLower(format) {
	case "text", "json", "json-array":
	default:
		return fmt.Errorf("unknown format %q (want text, json or json-array)", format)
	}
	db, err := loadDB(input)
	if err != nil {
		return err
	}
	p := convoys.Params{M: m, K: k, Eps: e}

	var res convoys.Result
	var st convoys.Stats
	switch strings.ToLower(algo) {
	case "cmc":
		res, err = convoys.CMCWith(db, p, workers)
	case "cuts":
		res, st, err = convoys.DiscoverWith(db, p, convoys.Config{Variant: convoys.CuTSVariant, Delta: delta, Lambda: lambda, Workers: workers})
	case "cuts+":
		res, st, err = convoys.DiscoverWith(db, p, convoys.Config{Variant: convoys.CuTSPlusVariant, Delta: delta, Lambda: lambda, Workers: workers})
	case "cuts*":
		res, st, err = convoys.DiscoverWith(db, p, convoys.Config{Variant: convoys.CuTSStarVariant, Delta: delta, Lambda: lambda, Workers: workers})
	default:
		return fmt.Errorf("unknown algorithm %q (want cmc, cuts, cuts+ or cuts*)", algo)
	}
	if err != nil {
		return err
	}

	switch strings.ToLower(format) {
	case "json":
		// One wire-schema object per line, like a feed's event payloads.
		enc := json.NewEncoder(out)
		for _, c := range res {
			if err := enc.Encode(convoys.ConvoyToJSON(c, db)); err != nil {
				return err
			}
		}
		return nil
	case "json-array":
		// The historical -json shape: one indented array.
		payload := make([]convoys.ConvoyJSON, 0, len(res))
		for _, c := range res {
			payload = append(payload, convoys.ConvoyToJSON(c, db))
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	}

	fmt.Fprintf(out, "%d convoy(s) with m=%d k=%d e=%g in %s (%d objects)\n",
		len(res), m, k, e, input, db.Len())
	for _, c := range res {
		fmt.Fprintf(out, "  {%s} ticks [%d, %d] (%d points)\n",
			strings.Join(convoys.ConvoyToJSON(c, db).Objects, ", "), c.Start, c.End, c.Lifetime())
	}
	if stats && strings.ToLower(algo) != "cmc" {
		fmt.Fprintf(out, "algorithm %v: δ=%.3g λ=%d workers=%d partitions=%d candidates=%d refinement-units=%.0f\n",
			st.Variant, st.Delta, st.Lambda, st.Workers, st.NumPartitions, st.NumCandidates, st.RefineUnits)
		fmt.Fprintf(out, "timings: simplify=%v filter=%v refine=%v total=%v (vertex reduction %.1f%%)\n",
			st.SimplifyTime, st.FilterTime, st.RefineTime, st.TotalTime(), st.VertexReduction()*100)
	}
	return nil
}
