package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	convoys "repro"
)

// runArgs invokes run with the historical positional settings, keeping
// the pre-options tests readable.
func runArgs(out *bytes.Buffer, input string, m int, k int64, e float64, algo string, delta float64, lambda int64, workers int, stats bool, format string) error {
	return run(context.Background(), out, options{
		input: input, m: m, k: k, e: e, algo: algo,
		delta: delta, lambda: lambda, workers: workers,
		stats: stats, format: format,
	})
}

// writeFixture stores a small two-convoy dataset in the given format and
// returns its path.
func writeFixture(t *testing.T, dir, name string) string {
	t.Helper()
	db := convoys.NewDB()
	for i, y := range []float64{0, 0.5, 50, 50.5} {
		var samples []convoys.Sample
		for tick := convoys.Tick(0); tick < 10; tick++ {
			samples = append(samples, convoys.S(tick, float64(tick), y))
		}
		tr, err := convoys.NewTrajectory([]string{"a", "b", "c", "d"}[i], samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	path := filepath.Join(dir, name)
	var err error
	if strings.HasSuffix(name, ".ctb") {
		err = convoys.SaveBinary(path, db)
	} else {
		err = convoys.SaveCSV(path, db)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextOutputAllAlgorithms(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	for _, algo := range []string{"cmc", "cuts", "cuts+", "cuts*", "CUTS*"} {
		var buf bytes.Buffer
		if err := runArgs(&buf, path, 2, 5, 1, algo, 0, 0, 2, true, "text"); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		out := buf.String()
		if !strings.Contains(out, "2 convoy(s)") {
			t.Errorf("%s: expected 2 convoys:\n%s", algo, out)
		}
		if !strings.Contains(out, "{a, b}") || !strings.Contains(out, "{c, d}") {
			t.Errorf("%s: labels missing:\n%s", algo, out)
		}
		if algo != "cmc" && !strings.Contains(out, "timings:") {
			t.Errorf("%s: stats missing:\n%s", algo, out)
		}
	}
}

func TestRunBinaryInput(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.ctb")
	var buf bytes.Buffer
	if err := runArgs(&buf, path, 2, 5, 1, "cuts*", 0, 0, 2, false, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 convoy(s)") {
		t.Errorf("binary input output:\n%s", buf.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	var buf bytes.Buffer
	if err := runArgs(&buf, path, 2, 5, 1, "cuts*", 0, 0, 2, false, "json"); err != nil {
		t.Fatal(err)
	}
	// One wire-schema JSON object per line.
	var payload []convoys.ConvoyJSON
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var c convoys.ConvoyJSON
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		payload = append(payload, c)
	}
	if len(payload) != 2 {
		t.Fatalf("JSON convoys = %d", len(payload))
	}
	for _, c := range payload {
		if c.Lifetime != 10 || len(c.Objects) != 2 {
			t.Errorf("JSON convoy = %+v", c)
		}
	}
}

// TestRunJSONArrayOutput covers the historical -json shape: one indented
// array of wire-schema objects.
func TestRunJSONArrayOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	var buf bytes.Buffer
	if err := runArgs(&buf, path, 2, 5, 1, "cuts*", 0, 0, 2, false, "json-array"); err != nil {
		t.Fatal(err)
	}
	var payload []convoys.ConvoyJSON
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON array: %v\n%s", err, buf.String())
	}
	if len(payload) != 2 {
		t.Fatalf("JSON convoys = %d", len(payload))
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	var buf bytes.Buffer
	if err := runArgs(&buf, path, 2, 5, 1, "cuts*", 0, 0, 2, false, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	var buf bytes.Buffer
	if err := runArgs(&buf, filepath.Join(dir, "missing.csv"), 2, 5, 1, "cuts*", 0, 0, 2, false, "text"); err == nil {
		t.Error("missing input accepted")
	}
	if err := runArgs(&buf, path, 2, 5, 1, "nope", 0, 0, 2, false, "text"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := runArgs(&buf, path, 0, 5, 1, "cmc", 0, 0, 2, false, "text"); err == nil {
		t.Error("invalid m accepted")
	}
	// Corrupt CSV.
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(&buf, bad, 2, 5, 1, "cmc", 0, 0, 2, false, "text"); err == nil {
		t.Error("corrupt CSV accepted")
	}
}

// -format jsonl streams one wire-schema object per line, same payloads as
// -format json.
func TestRunJSONLStreamingOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	var batch, stream bytes.Buffer
	if err := runArgs(&batch, path, 2, 5, 1, "cmc", 0, 0, 2, false, "json"); err != nil {
		t.Fatal(err)
	}
	if err := runArgs(&stream, path, 2, 5, 1, "cmc", 0, 0, 2, false, "jsonl"); err != nil {
		t.Fatal(err)
	}
	decode := func(buf *bytes.Buffer) []convoys.ConvoyJSON {
		var out []convoys.ConvoyJSON
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			var c convoys.ConvoyJSON
			if err := json.Unmarshal([]byte(line), &c); err != nil {
				t.Fatalf("invalid JSONL line %q: %v", line, err)
			}
			out = append(out, c)
		}
		return out
	}
	got, want := decode(&stream), decode(&batch)
	if len(got) != len(want) {
		t.Fatalf("jsonl streamed %d convoys, json printed %d", len(got), len(want))
	}
	for _, g := range got {
		found := false
		for _, w := range want {
			if g.Start == w.Start && g.End == w.End && strings.Join(g.Objects, ",") == strings.Join(w.Objects, ",") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("streamed convoy %+v missing from the batch answer %+v", g, want)
		}
	}
}

// -limit stops the scan after n convoys in every format.
func TestRunLimit(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	for _, format := range []string{"json", "jsonl"} {
		var buf bytes.Buffer
		err := run(context.Background(), &buf, options{
			input: path, m: 2, k: 5, e: 1, algo: "cmc",
			workers: 1, limit: 1, format: format,
		})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 1 {
			t.Fatalf("%s with -limit 1 printed %d convoys", format, len(lines))
		}
	}
}

// A cancelled context aborts the run with the context error, in both the
// batch and streaming paths.
func TestRunCancelled(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir, "two.csv")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, format := range []string{"text", "jsonl"} {
		var buf bytes.Buffer
		err := run(ctx, &buf, options{
			input: path, m: 2, k: 5, e: 1, algo: "cmc",
			workers: 1, format: format,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", format, err)
		}
	}
}

// -clusterer proxgraph reads an "a,b,t,w" contact log and discovers the
// hand-checked convoy {a,b,c}@[1,5]: a–b and b–c in contact over ticks
// 1..5, a weak d–a contact below e, a trailing a–b contact below m.
func TestRunProxgraphContactLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "contacts.csv")
	csv := "a,b,t,w\n"
	for tick := 1; tick <= 5; tick++ {
		csv += fmt.Sprintf("a,b,%d,1\nb,c,%d,1\n", tick, tick)
	}
	csv += "d,a,1,0.5\na,b,6,1\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err := run(context.Background(), &buf, options{
		input: path, m: 3, k: 3, e: 1, algo: "cmc", clusterer: "proxgraph",
		workers: 2, format: "text",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1 convoy(s)") || !strings.Contains(out, "{a, b, c}") ||
		!strings.Contains(out, "ticks [1, 5]") {
		t.Fatalf("proxgraph output:\n%s", out)
	}

	// The CuTS family is rejected under the graph backend; so are unknown
	// backends and trajectory bytes where a contact log is expected.
	err = run(context.Background(), &buf, options{
		input: path, m: 3, k: 3, e: 1, algo: "cuts*", clusterer: "proxgraph",
		workers: 1, format: "text",
	})
	if err == nil || !strings.Contains(err.Error(), "-algo cmc") {
		t.Fatalf("cuts* under proxgraph: err = %v, want -algo cmc guidance", err)
	}
	err = run(context.Background(), &buf, options{
		input: path, m: 3, k: 3, e: 1, algo: "cmc", clusterer: "voronoi",
		workers: 1, format: "text",
	})
	if err == nil {
		t.Fatal("unknown clusterer accepted")
	}
	traj := writeFixture(t, dir, "two.csv")
	err = run(context.Background(), &buf, options{
		input: traj, m: 2, k: 5, e: 1, algo: "cmc", clusterer: "proxgraph",
		workers: 1, format: "text",
	})
	if err == nil {
		t.Fatal("trajectory CSV accepted as a contact log")
	}
}
