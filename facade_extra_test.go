package convoys_test

import (
	"bytes"
	"testing"

	convoys "repro"
)

func TestFacadeStreamer(t *testing.T) {
	s, err := convoys.NewStreamer(convoys.Params{M: 2, K: 3, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	for tick := convoys.Tick(0); tick < 4; tick++ {
		emitted, err := s.Advance(tick,
			[]convoys.ObjectID{0, 1},
			[]convoys.Point{convoys.Pt(float64(tick), 0), convoys.Pt(float64(tick), 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		if len(emitted) != 0 {
			t.Fatalf("premature emission %v", emitted)
		}
	}
	final := s.Close()
	if len(final) != 1 || final[0].Lifetime() != 4 {
		t.Fatalf("Close = %v", final)
	}
}

func TestFacadeStreamerMatchesBatch(t *testing.T) {
	db := smallDB(t)
	p := convoys.Params{M: 2, K: 5, Eps: 1}
	want, err := convoys.CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := convoys.NewStreamer(p)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := db.TimeRange()
	var all []convoys.Convoy
	for tick := lo; tick <= hi; tick++ {
		ids, pts := db.SnapshotAt(tick)
		got, err := s.Advance(tick, ids, pts)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, got...)
	}
	all = append(all, s.Close()...)
	if got := convoys.Canonicalize(all); !got.Equal(want) {
		t.Errorf("stream = %v, batch = %v", got, want)
	}
}

func TestFacadeBinaryRoundTrip(t *testing.T) {
	db := smallDB(t)
	var buf bytes.Buffer
	if err := convoys.WriteBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := convoys.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("binary round trip lost objects: %d vs %d", back.Len(), db.Len())
	}
	for id := 0; id < db.Len(); id++ {
		a, b := db.Traj(id), back.Traj(id)
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("sample changed in round trip")
			}
		}
	}
}

func TestFacadeBinaryFiles(t *testing.T) {
	dir := t.TempDir()
	db := smallDB(t)
	path := dir + "/x.ctb"
	if err := convoys.SaveBinary(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := convoys.LoadBinary(path)
	if err != nil || back.Len() != db.Len() {
		t.Fatalf("LoadBinary: %v %v", back, err)
	}
}
