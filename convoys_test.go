package convoys_test

import (
	"bytes"
	"strings"
	"testing"

	convoys "repro"
)

// smallDB builds a database with one obvious convoy through the façade API.
func smallDB(t *testing.T) *convoys.DB {
	t.Helper()
	db := convoys.NewDB()
	for i, y := range []float64{0, 0.5, 50} {
		var samples []convoys.Sample
		for tick := convoys.Tick(0); tick < 10; tick++ {
			samples = append(samples, convoys.S(tick, float64(tick), y))
		}
		tr, err := convoys.NewTrajectory("", samples)
		if err != nil {
			t.Fatal(err)
		}
		if id := db.Add(tr); id != i {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	return db
}

func TestDiscoverFacade(t *testing.T) {
	db := smallDB(t)
	p := convoys.Params{M: 2, K: 5, Eps: 1}
	res, err := convoys.Discover(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Size() != 2 || res[0].Lifetime() != 10 {
		t.Fatalf("Discover = %v", res)
	}
	// All exposed algorithms agree.
	ref, err := convoys.CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []convoys.Variant{convoys.CuTSVariant, convoys.CuTSPlusVariant, convoys.CuTSStarVariant} {
		got, st, err := convoys.DiscoverWith(db, p, convoys.Config{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Errorf("%v disagrees with CMC: %v vs %v", variant, got, ref)
		}
		if st.TotalTime() <= 0 {
			t.Errorf("%v reported no time", variant)
		}
	}
}

// Parallel facade entry points return exactly the serial answers.
func TestFacadeParallelWorkers(t *testing.T) {
	db := smallDB(t)
	p := convoys.Params{M: 2, K: 5, Eps: 1}
	ref, err := convoys.CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if convoys.DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", convoys.DefaultWorkers())
	}
	for _, workers := range []int{2, convoys.DefaultWorkers()} {
		got, err := convoys.CMCWith(db, p, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Errorf("CMCWith(%d) = %v, want %v", workers, got, ref)
		}
		res, st, err := convoys.DiscoverWith(db, p, convoys.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(ref) {
			t.Errorf("DiscoverWith(workers=%d) = %v, want %v", workers, res, ref)
		}
		if st.Workers != workers {
			t.Errorf("stats workers = %d, want %d", st.Workers, workers)
		}
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	db := smallDB(t)
	var buf bytes.Buffer
	if err := convoys.WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := convoys.ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost objects: %d vs %d", back.Len(), db.Len())
	}
}

func TestFacadeSimplifyAndDelta(t *testing.T) {
	db := smallDB(t)
	st := convoys.Simplify(db.Traj(0), 0.5, convoys.DP)
	if st.Len() < 2 {
		t.Errorf("simplified to %d points", st.Len())
	}
	if d := convoys.ComputeDelta(db, 1); d <= 0 || d >= 1 {
		t.Errorf("ComputeDelta = %g", d)
	}
}

func TestFacadeFlocks(t *testing.T) {
	db := smallDB(t)
	fs, err := convoys.FindFlocks(db, convoys.FlockParams{M: 2, K: 5, R: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("flocks = %v", fs)
	}
}

func TestFacadeDBSCAN(t *testing.T) {
	pts := []convoys.Point{convoys.Pt(0, 0), convoys.Pt(0.5, 0), convoys.Pt(10, 10)}
	labels := convoys.DBSCAN(pts, 1, 2)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != -1 {
		t.Errorf("DBSCAN labels = %v", labels)
	}
}

func TestFacadeProfilesAndMC2(t *testing.T) {
	prof := convoys.TaxiProfile(0.01, 3)
	db := prof.Generate()
	if db.Len() == 0 {
		t.Fatal("profile generated nothing")
	}
	p := convoys.Params{M: prof.M, K: prof.K, Eps: prof.Eps}
	ref, err := convoys.CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := convoys.MC2(db, p, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rep := convoys.CompareAnswers(mc, ref)
	if rep.Reported != len(mc) || rep.Reference != len(ref) {
		t.Errorf("accuracy counts wrong: %+v", rep)
	}
}

func TestFacadeScenario(t *testing.T) {
	sc := convoys.Scenario{
		Seed: 1, T: 30, World: 100, Speed: 2,
		Groups:   []convoys.GroupSpec{{Size: 3, Start: 0, End: 29, Spacing: 1}},
		KeepProb: 1,
	}
	db := sc.Generate()
	if db.Len() != 3 {
		t.Fatalf("scenario objects = %d", db.Len())
	}
	res, err := convoys.Discover(db, convoys.Params{M: 3, K: 20, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Size() != 3 {
		t.Errorf("planted group not found: %v", res)
	}
}

func TestFacadeCanonicalize(t *testing.T) {
	c1 := convoys.Convoy{Objects: []convoys.ObjectID{0, 1}, Start: 0, End: 9}
	c2 := convoys.Convoy{Objects: []convoys.ObjectID{0}, Start: 2, End: 7} // dominated
	res := convoys.Canonicalize([]convoys.Convoy{c1, c2})
	if len(res) != 1 || !res[0].Equal(c1) {
		t.Errorf("Canonicalize = %v", res)
	}
}
