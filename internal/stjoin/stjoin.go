// Package stjoin implements the close-pair spatio-temporal join of the
// paper's Section 2.3: given trajectory sets P1 and P2, a distance bound e
// and a time interval τ, report every object pair (o1, o2) ∈ P1 × P2 whose
// distance D_τ(o1, o2) drops to e or below at some time point in τ.
//
// The paper positions this operation as the pairwise cousin of the convoy
// query — joins return *pairs*, convoys return *sets with lifetimes* — and
// convoy processing is strictly more expensive. The join is implemented as
// a time sweep with a uniform-grid spatial hash per tick (the classic
// plane-sweep evaluation strategy of Arumugam/Jermaine and Zhou et al.),
// with linear interpolation for missing samples so its distance semantics
// match the convoy algorithms exactly.
package stjoin

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/model"
)

// Pair is one join answer: two object IDs and the first tick at which they
// were within the query distance.
type Pair struct {
	A, B  model.ObjectID // A from the left input, B from the right input
	First model.Tick     // earliest tick in the window with D ≤ e
}

// String renders the pair compactly.
func (p Pair) String() string { return fmt.Sprintf("(o%d,o%d)@%d", p.A, p.B, p.First) }

// Window restricts a join to a tick interval. The zero value means "the
// whole common time domain".
type Window struct {
	Lo, Hi model.Tick
	// Limited reports whether Lo/Hi are meaningful.
	Limited bool
}

// Full returns the unrestricted window.
func Full() Window { return Window{} }

// Between returns the window [lo, hi].
func Between(lo, hi model.Tick) Window { return Window{Lo: lo, Hi: hi, Limited: true} }

// ErrBadWindow is returned for windows with Lo > Hi.
var ErrBadWindow = errors.New("stjoin: window lo > hi")

// CloseJoin reports every pair (a ∈ left, b ∈ right) that comes within e at
// some tick of the window, using interpolated positions. When left and
// right are the same database the join is a self-join and mirrored/self
// pairs are suppressed (a < b). Pairs are sorted by (A, B). e must be ≥ 0.
func CloseJoin(left, right *model.DB, e float64, w Window) ([]Pair, error) {
	if e < 0 {
		return nil, fmt.Errorf("stjoin: negative distance %g", e)
	}
	if w.Limited && w.Lo > w.Hi {
		return nil, ErrBadWindow
	}
	lo1, hi1, ok1 := left.TimeRange()
	lo2, hi2, ok2 := right.TimeRange()
	if !ok1 || !ok2 {
		return nil, nil
	}
	lo, hi := maxTick(lo1, lo2), minTick(hi1, hi2)
	if w.Limited {
		lo, hi = maxTick(lo, w.Lo), minTick(hi, w.Hi)
	}
	if lo > hi {
		return nil, nil
	}
	self := left == right

	type key struct{ a, b model.ObjectID }
	found := map[key]model.Tick{}
	cell := e
	if cell <= 0 {
		cell = 1
	}
	for t := lo; t <= hi; t++ {
		ids, pts := left.SnapshotAt(t)
		if len(ids) == 0 {
			continue
		}
		idx := grid.NewPointIndex(pts, cell)
		var buf []int
		probe := func(b model.ObjectID, p geom.Point) {
			buf = idx.Within(p, e, buf[:0])
			for _, i := range buf {
				a := ids[i]
				if self && a >= b {
					continue // unordered pairs once, no self-pairs
				}
				k := key{a, b}
				if _, seen := found[k]; !seen {
					found[k] = t
				}
			}
		}
		if self {
			for i, id := range ids {
				probe(id, pts[i])
			}
		} else {
			for _, tr := range right.Trajectories() {
				if p, ok := tr.LocationAt(t); ok {
					probe(tr.ID, p)
				}
			}
		}
	}
	out := make([]Pair, 0, len(found))
	for k, first := range found {
		out = append(out, Pair{A: k.a, B: k.b, First: first})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// CloseSelfJoin reports every unordered object pair of the database that
// comes within e at some tick of the window.
func CloseSelfJoin(db *model.DB, e float64, w Window) ([]Pair, error) {
	return CloseJoin(db, db, e, w)
}

func maxTick(a, b model.Tick) model.Tick {
	if a > b {
		return a
	}
	return b
}

func minTick(a, b model.Tick) model.Tick {
	if a < b {
		return a
	}
	return b
}
