package stjoin

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func buildDB(t *testing.T, startTick model.Tick, rows ...[]geom.Point) *model.DB {
	t.Helper()
	db := model.NewDB()
	for _, row := range rows {
		var samples []model.Sample
		for j, p := range row {
			if math.IsNaN(p.X) {
				continue
			}
			samples = append(samples, model.Sample{T: startTick + model.Tick(j), P: p})
		}
		tr, err := model.NewTrajectory("", samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	return db
}

func TestCloseSelfJoinBasic(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)},
		[]geom.Point{geom.Pt(0, 5), geom.Pt(1, 0.5), geom.Pt(2, 5)}, // near o0 at t=1 only
		[]geom.Point{geom.Pt(50, 50), geom.Pt(51, 50), geom.Pt(52, 50)},
	)
	pairs, err := CloseSelfJoin(db, 1, Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].A != 0 || pairs[0].B != 1 || pairs[0].First != 1 {
		t.Errorf("pair = %v, want (o0,o1)@1", pairs[0])
	}
}

func TestCloseJoinWindowRestricts(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)},
		[]geom.Point{geom.Pt(0, 9), geom.Pt(1, 9), geom.Pt(2, 0.5), geom.Pt(3, 9)}, // close at t=2
	)
	pairs, err := CloseSelfJoin(db, 1, Between(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("window [0,1] should be empty: %v", pairs)
	}
	pairs, err = CloseSelfJoin(db, 1, Between(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].First != 2 {
		t.Errorf("window [2,2]: %v", pairs)
	}
	if _, err := CloseSelfJoin(db, 1, Between(5, 2)); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := CloseSelfJoin(db, -1, Full()); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestCloseJoinTwoDatabases(t *testing.T) {
	fleetA := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		[]geom.Point{geom.Pt(100, 0), geom.Pt(101, 0)},
	)
	fleetB := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0.5), geom.Pt(1, 0.5)},
		[]geom.Point{geom.Pt(200, 0), geom.Pt(201, 0)},
	)
	pairs, err := CloseJoin(fleetA, fleetB, 1, Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != 0 || pairs[0].B != 0 || pairs[0].First != 0 {
		t.Errorf("cross join = %v", pairs)
	}
}

func TestCloseJoinInterpolatesGaps(t *testing.T) {
	// Object 1 has no sample at t=1 but its interpolated position passes
	// right next to object 0.
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 9), geom.Pt(5, 0.4), geom.Pt(0, -9)},
		[]geom.Point{geom.Pt(5, 10), absentPt, geom.Pt(5, -10)},
	)
	pairs, err := CloseSelfJoin(db, 1, Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].First != 1 {
		t.Errorf("interpolated join = %v", pairs)
	}
}

var absentPt = geom.Pt(math.NaN(), math.NaN())

func TestCloseJoinEmptyInputs(t *testing.T) {
	empty := model.NewDB()
	db := buildDB(t, 0, []geom.Point{geom.Pt(0, 0)})
	if pairs, err := CloseJoin(empty, db, 1, Full()); err != nil || pairs != nil {
		t.Errorf("empty left: %v %v", pairs, err)
	}
	if pairs, err := CloseJoin(db, empty, 1, Full()); err != nil || pairs != nil {
		t.Errorf("empty right: %v %v", pairs, err)
	}
	// Disjoint time ranges.
	late := buildDB(t, 100, []geom.Point{geom.Pt(0, 0)})
	if pairs, err := CloseJoin(db, late, 1, Full()); err != nil || pairs != nil {
		t.Errorf("disjoint times: %v %v", pairs, err)
	}
}

func TestCloseJoinZeroDistance(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(1, 1)},
		[]geom.Point{geom.Pt(1, 1)},
		[]geom.Point{geom.Pt(2, 2)},
	)
	pairs, err := CloseSelfJoin(db, 0, Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != 0 || pairs[0].B != 1 {
		t.Errorf("e=0 join = %v", pairs)
	}
}

// Property: the grid-accelerated sweep equals a brute-force double loop
// over ticks and pairs.
func TestPropJoinMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 40; iter++ {
		nObj, nTicks := 2+r.Intn(6), 4+r.Intn(10)
		rows := make([][]geom.Point, nObj)
		for o := range rows {
			row := make([]geom.Point, nTicks)
			x, y := r.Float64()*15, r.Float64()*15
			for i := range row {
				x += r.Float64()*3 - 1.5
				y += r.Float64()*3 - 1.5
				if r.Float64() < 0.15 && i != 0 && i != nTicks-1 {
					row[i] = absentPt
					continue
				}
				row[i] = geom.Pt(x, y)
			}
			rows[o] = row
		}
		db := buildDB(t, 0, rows...)
		e := 0.5 + r.Float64()*3
		got, err := CloseSelfJoin(db, e, Full())
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type key struct{ a, b model.ObjectID }
		want := map[key]model.Tick{}
		lo, hi, _ := db.TimeRange()
		for tick := lo; tick <= hi; tick++ {
			for a := 0; a < nObj; a++ {
				pa, oka := db.Traj(a).LocationAt(tick)
				if !oka {
					continue
				}
				for b := a + 1; b < nObj; b++ {
					pb, okb := db.Traj(b).LocationAt(tick)
					if !okb || geom.D(pa, pb) > e {
						continue
					}
					k := key{a, b}
					if _, seen := want[k]; !seen {
						want[k] = tick
					}
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("pair count: got %d want %d", len(got), len(want))
		}
		for _, p := range got {
			first, ok := want[key{p.A, p.B}]
			if !ok {
				t.Fatalf("extra pair %v", p)
			}
			if first != p.First {
				t.Fatalf("pair %v first tick %d, want %d", p, p.First, first)
			}
		}
	}
}
