package tsio

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func TestBinaryRoundTrip(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("object count %d vs %d", back.Len(), db.Len())
	}
	for id := 0; id < db.Len(); id++ {
		a, b := db.Traj(id), back.Traj(id)
		if a.Label != b.Label || a.Len() != b.Len() {
			t.Fatalf("object %d metadata mismatch", id)
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("object %d sample %d: %v vs %v", id, i, b.Samples[i], a.Samples[i])
			}
		}
	}
}

func TestBinarySpecialValues(t *testing.T) {
	db := model.NewDB()
	// Finite extremes only: non-finite coordinates are rejected at read
	// time (see TestBinaryRejectsNonFinite).
	tr, err := model.NewTrajectory("weird", []model.Sample{
		{T: -1000, P: geom.Pt(-math.MaxFloat64, -0.0)},
		{T: 0, P: geom.Pt(math.SmallestNonzeroFloat64, math.MaxFloat64)},
		{T: 1 << 40, P: geom.Pt(-12345.6789, 1e-300)},
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Add(tr)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Traj(0)
	for i := range tr.Samples {
		if tr.Samples[i].T != got.Samples[i].T {
			t.Errorf("tick %d: %d vs %d", i, got.Samples[i].T, tr.Samples[i].T)
		}
		// Bit-exact floats (covers -0.0 and denormals).
		if math.Float64bits(tr.Samples[i].P.X) != math.Float64bits(got.Samples[i].P.X) ||
			math.Float64bits(tr.Samples[i].P.Y) != math.Float64bits(got.Samples[i].P.Y) {
			t.Errorf("sample %d not bit-exact: %v vs %v", i, got.Samples[i].P, tr.Samples[i].P)
		}
	}
}

func TestBinaryEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, model.NewDB()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil || back.Len() != 0 {
		t.Errorf("empty round trip: %v %v", back, err)
	}
}

func TestBinaryCorruption(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, full...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Implausible object count.
	huge := append([]byte{}, binaryMagic[:]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Error("implausible object count accepted")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.ctb")
	db := sampleDB(t)
	if err := SaveBinary(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("loaded %d objects", back.Len())
	}
	if _, err := LoadBinary(filepath.Join(dir, "missing.ctb")); err == nil {
		t.Error("missing file accepted")
	}
	if err := SaveBinary(filepath.Join(dir, "no", "dir.ctb"), db); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestBinarySmallerThanCSVOnRegularData(t *testing.T) {
	// Regularly sampled full-precision GPS-like data: tick deltas cost one
	// byte and coordinates 16, while CSV spells every float out (~18 chars
	// each at full precision).
	db := model.NewDB()
	r := rand.New(rand.NewSource(4))
	var samples []model.Sample
	for i := model.Tick(0); i < 2000; i++ {
		samples = append(samples, model.Sample{
			T: i,
			P: geom.Pt(r.Float64()*5000, r.Float64()*5000),
		})
	}
	tr, _ := model.NewTrajectory("o", samples)
	db.Add(tr)
	var csvBuf, binBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&binBuf, db); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= csvBuf.Len() {
		t.Errorf("binary (%d B) not smaller than CSV (%d B)", binBuf.Len(), csvBuf.Len())
	}
}

func TestPropBinaryRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for iter := 0; iter < 40; iter++ {
		db := model.NewDB()
		for o := 0; o < r.Intn(8); o++ {
			var samples []model.Sample
			tick := model.Tick(r.Int63n(1000) - 500)
			n := 1 + r.Intn(50)
			for i := 0; i < n; i++ {
				samples = append(samples, model.Sample{
					T: tick,
					P: geom.Pt(r.NormFloat64()*1e6, r.NormFloat64()*1e-6),
				})
				tick += model.Tick(1 + r.Int63n(1000))
			}
			tr, err := model.NewTrajectory("", samples)
			if err != nil {
				t.Fatal(err)
			}
			db.Add(tr)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, db); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != db.Len() {
			t.Fatal("object count changed")
		}
		for id := 0; id < db.Len(); id++ {
			a, b := db.Traj(id), back.Traj(id)
			if a.Len() != b.Len() {
				t.Fatal("sample count changed")
			}
			for i := range a.Samples {
				if a.Samples[i] != b.Samples[i] {
					t.Fatalf("sample %d changed: %v vs %v", i, b.Samples[i], a.Samples[i])
				}
			}
		}
	}
}
