package tsio

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/model"
)

// Tick-block binary format ("CTK"): the CTB-style encoding of one ingested
// tick batch — the unit the write-ahead log appends per accepted
// POST /v1/feeds/{name}/ticks batch. Unlike CTB (whole trajectories,
// column-ish), a tick block is row-ish: everything one tick carried, both
// object positions and proximity edges, so a log of blocks replays exactly
// the batches a feed accepted, in order. Layout, integers as unsigned
// varints unless noted:
//
//	magic "CTK1" (4 bytes)
//	t (zig-zag varint; ticks may be negative)
//	numPositions
//	per position: labelLen, label bytes, x, y as IEEE-754 bits (8+8 LE)
//	numEdges
//	per edge: aLen, a bytes, bLen, b bytes, w as IEEE-754 bits (8 LE)
//
// Coordinates and weights round-trip bit-exactly. Labels travel as the
// client's strings — dense ObjectIDs are a per-feed artifact that must not
// be persisted (a recovered feed re-interns labels in replay order and
// reproduces the same dense IDs).

// tickBlockMagic identifies the format and its version.
var tickBlockMagic = [4]byte{'C', 'T', 'K', '1'}

// TickPosition is one object's location inside a TickBlock.
type TickPosition struct {
	Label string
	X, Y  float64
}

// TickEdge is one proximity observation inside a TickBlock.
type TickEdge struct {
	A, B string
	W    float64
}

// TickBlock is the persisted form of one tick batch: the snapshot of every
// tracked object at one tick — positions, proximity edges, or both.
type TickBlock struct {
	T         model.Tick
	Positions []TickPosition
	Edges     []TickEdge
}

// AppendTickBlock appends the CTK encoding of the block to dst and returns
// the extended slice.
func AppendTickBlock(dst []byte, b TickBlock) []byte {
	dst = append(dst, tickBlockMagic[:]...)
	dst = binary.AppendVarint(dst, int64(b.T))
	dst = binary.AppendUvarint(dst, uint64(len(b.Positions)))
	for _, p := range b.Positions {
		dst = binary.AppendUvarint(dst, uint64(len(p.Label)))
		dst = append(dst, p.Label...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Edges)))
	for _, e := range b.Edges {
		dst = binary.AppendUvarint(dst, uint64(len(e.A)))
		dst = append(dst, e.A...)
		dst = binary.AppendUvarint(dst, uint64(len(e.B)))
		dst = append(dst, e.B...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.W))
	}
	return dst
}

// tickBlockReader decodes CTK fields off a byte slice with bounds and
// plausibility checks suitable for corrupted or hostile inputs (the WAL
// replay fuzzer feeds this arbitrary bytes).
type tickBlockReader struct {
	data []byte
	off  int
}

func (r *tickBlockReader) remaining() int { return len(r.data) - r.off }

func (r *tickBlockReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("tsio: tick block: truncated %s", what)
	}
	r.off += n
	return v, nil
}

func (r *tickBlockReader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("tsio: tick block: truncated %s", what)
	}
	r.off += n
	return v, nil
}

func (r *tickBlockReader) str(what string) (string, error) {
	n, err := r.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("tsio: tick block: %s length %d exceeds %d remaining bytes", what, n, r.remaining())
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *tickBlockReader) float(what string) (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("tsio: tick block: truncated %s", what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

// DecodeTickBlock parses one CTK-encoded tick block. The data must contain
// exactly one block — trailing bytes are an error, since the WAL frames
// each block as one CRC-checked record. Counts are guarded against the
// remaining input before any allocation, and non-finite coordinates or
// weights are rejected like ReadBinary rejects them: a damaged record must
// fail decoding rather than poison a replayed monitor.
func DecodeTickBlock(data []byte) (TickBlock, error) {
	var b TickBlock
	if len(data) < len(tickBlockMagic) || string(data[:len(tickBlockMagic)]) != string(tickBlockMagic[:]) {
		return b, fmt.Errorf("tsio: tick block: bad magic (want %q)", tickBlockMagic)
	}
	r := &tickBlockReader{data: data, off: len(tickBlockMagic)}
	t, err := r.varint("tick")
	if err != nil {
		return b, err
	}
	b.T = model.Tick(t)
	nPos, err := r.uvarint("position count")
	if err != nil {
		return b, err
	}
	// A position is at least 17 bytes (one-byte label length + two floats),
	// so the count is bounded by the remaining input.
	if nPos > uint64(r.remaining())/17 {
		return b, fmt.Errorf("tsio: tick block: implausible position count %d", nPos)
	}
	if nPos > 0 {
		b.Positions = make([]TickPosition, 0, nPos)
	}
	for i := uint64(0); i < nPos; i++ {
		var p TickPosition
		if p.Label, err = r.str("position label"); err != nil {
			return b, err
		}
		if p.X, err = r.float("position x"); err != nil {
			return b, err
		}
		if p.Y, err = r.float("position y"); err != nil {
			return b, err
		}
		if !finite(p.X) || !finite(p.Y) {
			return b, fmt.Errorf("tsio: tick block: position %d: non-finite coordinates (%g, %g)", i, p.X, p.Y)
		}
		b.Positions = append(b.Positions, p)
	}
	nEdges, err := r.uvarint("edge count")
	if err != nil {
		return b, err
	}
	// An edge is at least 10 bytes (two one-byte label lengths + a float).
	if nEdges > uint64(r.remaining())/10 {
		return b, fmt.Errorf("tsio: tick block: implausible edge count %d", nEdges)
	}
	if nEdges > 0 {
		b.Edges = make([]TickEdge, 0, nEdges)
	}
	for i := uint64(0); i < nEdges; i++ {
		var e TickEdge
		if e.A, err = r.str("edge label"); err != nil {
			return b, err
		}
		if e.B, err = r.str("edge label"); err != nil {
			return b, err
		}
		if e.W, err = r.float("edge weight"); err != nil {
			return b, err
		}
		if !finite(e.W) {
			return b, fmt.Errorf("tsio: tick block: edge %d: non-finite weight", i)
		}
		b.Edges = append(b.Edges, e)
	}
	if r.remaining() != 0 {
		return b, fmt.Errorf("tsio: tick block: %d trailing bytes", r.remaining())
	}
	return b, nil
}
