package tsio

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// benchDB builds a mid-size database (100 objects × 500 samples).
func benchDB() *model.DB {
	r := rand.New(rand.NewSource(1))
	db := model.NewDB()
	for o := 0; o < 100; o++ {
		samples := make([]model.Sample, 0, 500)
		x, y := r.Float64()*1000, r.Float64()*1000
		for i := 0; i < 500; i++ {
			x += r.Float64()*4 - 2
			y += r.Float64()*4 - 2
			samples = append(samples, model.Sample{T: model.Tick(i), P: geom.Pt(x, y)})
		}
		tr, _ := model.NewTrajectory("", samples)
		db.Add(tr)
	}
	return db
}

func BenchmarkWriteCSV(b *testing.B) {
	db := benchDB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, db); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkReadCSV(b *testing.B) {
	db := benchDB()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	db := benchDB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, db); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkReadBinary(b *testing.B) {
	db := benchDB()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
