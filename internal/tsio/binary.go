package tsio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/geom"
	"repro/internal/model"
)

// Binary trajectory format ("CTB"): a compact exact-precision encoding for
// large databases where CSV becomes the bottleneck (the Cattle shape:
// millions of samples). Layout, all integers unsigned varints unless noted:
//
//	magic "CTB1" (4 bytes)
//	numObjects
//	per object:
//	    labelLen, label bytes
//	    numSamples (≥ 1)
//	    firstTick (zig-zag varint; ticks may be negative)
//	    per further sample: tickDelta−1 (ticks are strictly increasing)
//	    per sample: x, y as IEEE-754 bits (8+8 bytes little endian)
//
// Coordinates round-trip bit-exactly; tick deltas make typical regularly
// sampled data one byte per tick.

// binaryMagic identifies the format and its version.
var binaryMagic = [4]byte{'C', 'T', 'B', '1'}

// WriteBinary writes the database in CTB format.
func WriteBinary(w io.Writer, db *model.DB) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("tsio: write magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putFloat := func(f float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		_, err := bw.Write(b[:])
		return err
	}
	if err := putUvarint(uint64(db.Len())); err != nil {
		return fmt.Errorf("tsio: %w", err)
	}
	for _, tr := range db.Trajectories() {
		if err := putUvarint(uint64(len(tr.Label))); err != nil {
			return fmt.Errorf("tsio: %w", err)
		}
		if _, err := bw.WriteString(tr.Label); err != nil {
			return fmt.Errorf("tsio: %w", err)
		}
		if err := putUvarint(uint64(tr.Len())); err != nil {
			return fmt.Errorf("tsio: %w", err)
		}
		prev := model.Tick(0)
		for i, s := range tr.Samples {
			if i == 0 {
				if err := putVarint(int64(s.T)); err != nil {
					return fmt.Errorf("tsio: %w", err)
				}
			} else {
				if err := putUvarint(uint64(s.T-prev) - 1); err != nil {
					return fmt.Errorf("tsio: %w", err)
				}
			}
			prev = s.T
			if err := putFloat(s.P.X); err != nil {
				return fmt.Errorf("tsio: %w", err)
			}
			if err := putFloat(s.P.Y); err != nil {
				return fmt.Errorf("tsio: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tsio: flush: %w", err)
	}
	return nil
}

// maxReasonableCount guards length prefixes against corrupted or hostile
// inputs before any allocation happens.
const maxReasonableCount = 1 << 31

// ReadBinary parses a CTB stream into a database.
func ReadBinary(r io.Reader) (*model.DB, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tsio: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("tsio: bad magic %q (want %q)", magic, binaryMagic)
	}
	readFloat := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	numObjects, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tsio: object count: %w", err)
	}
	if numObjects > maxReasonableCount {
		return nil, fmt.Errorf("tsio: implausible object count %d", numObjects)
	}
	db := model.NewDB()
	for o := uint64(0); o < numObjects; o++ {
		labelLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tsio: object %d label length: %w", o, err)
		}
		if labelLen > maxReasonableCount {
			return nil, fmt.Errorf("tsio: object %d: implausible label length %d", o, labelLen)
		}
		label := make([]byte, labelLen)
		if _, err := io.ReadFull(br, label); err != nil {
			return nil, fmt.Errorf("tsio: object %d label: %w", o, err)
		}
		numSamples, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tsio: object %d sample count: %w", o, err)
		}
		if numSamples == 0 {
			return nil, fmt.Errorf("tsio: object %d has no samples", o)
		}
		if numSamples > maxReasonableCount {
			return nil, fmt.Errorf("tsio: object %d: implausible sample count %d", o, numSamples)
		}
		samples := make([]model.Sample, 0, numSamples)
		var tick model.Tick
		for i := uint64(0); i < numSamples; i++ {
			if i == 0 {
				v, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("tsio: object %d first tick: %w", o, err)
				}
				tick = model.Tick(v)
			} else {
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("tsio: object %d tick delta: %w", o, err)
				}
				tick += model.Tick(d) + 1
			}
			x, err := readFloat()
			if err != nil {
				return nil, fmt.Errorf("tsio: object %d sample %d x: %w", o, i, err)
			}
			y, err := readFloat()
			if err != nil {
				return nil, fmt.Errorf("tsio: object %d sample %d y: %w", o, i, err)
			}
			if !finite(x) || !finite(y) {
				return nil, fmt.Errorf("tsio: object %d sample %d: non-finite coordinates (%g, %g)", o, i, x, y)
			}
			samples = append(samples, model.Sample{T: tick, P: geom.Pt(x, y)})
		}
		tr, err := model.NewTrajectory(string(label), samples)
		if err != nil {
			return nil, fmt.Errorf("tsio: object %d: %w", o, err)
		}
		db.Add(tr)
	}
	return db, nil
}

// SaveBinary writes the database to a CTB file.
func SaveBinary(path string, db *model.DB) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tsio: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("tsio: close %s: %w", path, cerr)
		}
	}()
	return WriteBinary(f, db)
}

// LoadBinary reads a database from a CTB file.
func LoadBinary(path string) (*model.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsio: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}
