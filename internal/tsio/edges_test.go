package tsio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestEdgeCSVRoundTrip(t *testing.T) {
	edges := []EdgeRecord{
		{A: "x", B: "y", T: 3, W: 1.5},
		{A: "y", B: "z", T: 1, W: 0.25},
		{A: "x", B: "z", T: 3, W: 2},
	}
	var buf bytes.Buffer
	if err := WriteEdgeCSV(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, edges) {
		t.Fatalf("round trip = %v, want %v", back, edges)
	}

	path := filepath.Join(t.TempDir(), "edges.csv")
	if err := SaveEdgeCSV(path, edges); err != nil {
		t.Fatal(err)
	}
	back, err = LoadEdgeCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, edges) {
		t.Fatalf("file round trip = %v, want %v", back, edges)
	}
}

func TestReadEdgeCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":    "obj,t,x,y\nx,y,0,1\n",
		"bad tick":      "a,b,t,w\nx,y,zero,1\n",
		"bad weight":    "a,b,t,w\nx,y,0,heavy\n",
		"nan weight":    "a,b,t,w\nx,y,0,nan\n",
		"inf weight":    "a,b,t,w\nx,y,0,1e999\n",
		"missing field": "a,b,t,w\nx,y,0\n",
	}
	for name, csv := range cases {
		if _, err := ReadEdgeCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Empty input and header-only input are empty logs, not errors.
	for _, csv := range []string{"", "a,b,t,w\n"} {
		edges, err := ReadEdgeCSV(strings.NewReader(csv))
		if err != nil || len(edges) != 0 {
			t.Errorf("input %q: edges=%v err=%v, want empty, nil", csv, edges, err)
		}
	}
}
