package tsio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/model"
)

// Proximity-log exchange format: coordinate-free observations "objects a
// and b were in contact at tick t with weight w", one edge per line:
//
//	a,b,t,w
//
// with a mandatory header line. `a` and `b` are arbitrary object labels,
// `t` an integer tick and `w` a floating-point edge weight (contact
// duration, signal strength, …). Edges may appear in any order; the
// reader preserves file order and leaves semantic validation (self-loops,
// duplicate edges, weight sign) to the consumer — see the proxgraph
// package, which builds clusterable logs from these records.

// EdgeRecord is one parsed proximity observation.
type EdgeRecord struct {
	A, B string
	T    model.Tick
	W    float64
}

// edgeHeader is the mandatory first CSV line of an edge list.
var edgeHeader = []string{"a", "b", "t", "w"}

// WriteEdgeCSV writes the edge records in CSV format, in slice order.
func WriteEdgeCSV(w io.Writer, edges []EdgeRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(edgeHeader); err != nil {
		return fmt.Errorf("tsio: write header: %w", err)
	}
	for _, e := range edges {
		rec := []string{
			e.A,
			e.B,
			strconv.FormatInt(int64(e.T), 10),
			strconv.FormatFloat(e.W, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("tsio: write edge: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEdgeCSV parses a CSV proximity-edge file, preserving file order.
// Non-finite weights are rejected at parse time (like coordinates in
// ReadCSV); everything else is the consumer's concern.
func ReadEdgeCSV(r io.Reader) ([]EdgeRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	first, err := cr.Read()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tsio: read header: %w", err)
	}
	for i, want := range edgeHeader {
		if first[i] != want {
			return nil, fmt.Errorf("tsio: bad header %v, want %v", first, edgeHeader)
		}
	}
	var edges []EdgeRecord
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: %w", line, err)
		}
		t, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad tick %q: %w", line, rec[2], err)
		}
		w, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad weight %q: %w", line, rec[3], err)
		}
		if !finite(w) {
			return nil, fmt.Errorf("tsio: line %d: non-finite weight %s", line, rec[3])
		}
		edges = append(edges, EdgeRecord{A: rec[0], B: rec[1], T: model.Tick(t), W: w})
	}
	return edges, nil
}

// SaveEdgeCSV writes the edge records to a file.
func SaveEdgeCSV(path string, edges []EdgeRecord) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tsio: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("tsio: close %s: %w", path, cerr)
		}
	}()
	return WriteEdgeCSV(f, edges)
}

// LoadEdgeCSV reads edge records from a file.
func LoadEdgeCSV(path string) ([]EdgeRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsio: %w", err)
	}
	defer f.Close()
	return ReadEdgeCSV(f)
}
