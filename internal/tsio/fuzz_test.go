package tsio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// Fuzz targets for the two ingestion surfaces: whatever the bytes, the
// readers must either return a database that downstream code can trust
// (finite coordinates, strictly increasing ticks, non-empty trajectories)
// or fail with an error — never panic. The seed corpus bakes in the two
// historical corruption vectors: NaN/Inf coordinates (which used to reach
// the grid index and panic it) and duplicate samples.

func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("obj,t,x,y\n"))
	f.Add([]byte("obj,t,x,y\na,0,1,2\na,1,2,3\nb,0,1,2\n"))
	f.Add([]byte("obj,t,x,y\na,0,nan,0\n"))
	f.Add([]byte("obj,t,x,y\na,0,NaN,NaN\n"))
	f.Add([]byte("obj,t,x,y\na,0,+Inf,0\n"))
	f.Add([]byte("obj,t,x,y\na,0,0,-Infinity\n"))
	f.Add([]byte("obj,t,x,y\na,0,1e999,0\n"))
	f.Add([]byte("obj,t,x,y\na,0,1,1\na,0,2,2\n")) // duplicate tick
	f.Add([]byte("obj,t,x,y\na,9223372036854775807,1,1\n"))
	f.Add([]byte("not,a,header\n"))
	f.Add([]byte("obj,t,x,y\n\"unterminated"))
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDBInvariants(t, db)
	})
}

func FuzzReadEdgeCSV(f *testing.F) {
	f.Add([]byte("a,b,t,w\n"))
	f.Add([]byte("a,b,t,w\nx,y,0,1\ny,z,0,2.5\nx,y,1,0.25\n"))
	f.Add([]byte("a,b,t,w\nx,y,0,nan\n"))
	f.Add([]byte("a,b,t,w\nx,y,0,+Inf\n"))
	f.Add([]byte("a,b,t,w\nx,y,0,1e999\n"))
	f.Add([]byte("a,b,t,w\nx,y,0,-1\n")) // negative weight: reader keeps, Log rejects
	f.Add([]byte("a,b,t,w\nx,x,0,1\n"))  // self loop: reader keeps, Log rejects
	f.Add([]byte("a,b,t,w\nx,y,9223372036854775807,1\n"))
	f.Add([]byte("obj,t,x,y\n")) // trajectory header, not an edge header
	f.Add([]byte("a,b,t,w\n\"unterminated"))
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := ReadEdgeCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, e := range edges {
			if !finite(e.W) {
				t.Fatalf("edge %d: non-finite weight %v accepted", i, e.W)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// A valid stream as the base seed…
	db := model.NewDB()
	tr, err := model.NewTrajectory("a", []model.Sample{
		{T: 0, P: geom.Pt(1, 2)},
		{T: 3, P: geom.Pt(4, 5)},
	})
	if err != nil {
		f.Fatal(err)
	}
	db.Add(tr)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// …plus the corruption vectors: truncations, bad magic, NaN payloads,
	// and implausible counts.
	f.Add(buf.Bytes()[:len(buf.Bytes())-3])
	f.Add([]byte("CTB1"))
	f.Add([]byte("CTB9\x01"))
	f.Add(append(append([]byte(nil), "CTB1\x01\x01a\x01\x00"...),
		0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0)) // x = NaN
	f.Add([]byte("CTB1\xff\xff\xff\xff\xff\xff\xff\xff\x7f")) // huge object count
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDBInvariants(t, db)
	})
}

// checkDBInvariants asserts what every accepted database must satisfy.
func checkDBInvariants(t *testing.T, db *model.DB) {
	t.Helper()
	for _, tr := range db.Trajectories() {
		if tr.Len() == 0 {
			t.Fatalf("object %d: empty trajectory accepted", tr.ID)
		}
		for i, s := range tr.Samples {
			if !finite(s.P.X) || !finite(s.P.Y) {
				t.Fatalf("object %d sample %d: non-finite %v accepted", tr.ID, i, s.P)
			}
			if i > 0 && s.T <= tr.Samples[i-1].T {
				t.Fatalf("object %d: ticks not strictly increasing", tr.ID)
			}
		}
	}
}

// Regression: "nan"/"inf" parse as valid floats, so a crafted CSV used to
// load and later panic the grid index inside a convoyd query.
func TestReadCSVRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"nan", "NaN", "+inf", "-inf", "Inf", "Infinity", "1e999"} {
		csv := "obj,t,x,y\na,0," + bad + ",1\n"
		if _, err := ReadCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("x=%s accepted", bad)
		}
		csv = "obj,t,x,y\na,0,1," + bad + "\n"
		if _, err := ReadCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("y=%s accepted", bad)
		}
	}
}

// Regression: the binary reader round-trips raw IEEE bits, so NaN/Inf
// payloads used to pass straight through into the database.
func TestBinaryRejectsNonFinite(t *testing.T) {
	for _, p := range []geom.Point{
		geom.Pt(math.NaN(), 0),
		geom.Pt(0, math.NaN()),
		geom.Pt(math.Inf(1), 0),
		geom.Pt(0, math.Inf(-1)),
	} {
		db := model.NewDB()
		tr, err := model.NewTrajectory("bad", []model.Sample{{T: 0, P: p}})
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, db); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBinary(&buf); err == nil {
			t.Errorf("non-finite %v accepted", p)
		}
	}
}
