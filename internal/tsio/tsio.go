// Package tsio reads and writes trajectory databases as CSV, the exchange
// format used by the command-line tools and examples. The format is one
// sample per line:
//
//	obj,t,x,y
//
// with a mandatory header line. `obj` is an arbitrary object label, `t` an
// integer tick and `x`, `y` floating-point coordinates. Samples of one
// object may appear in any order; they are sorted by tick at load time.
// Objects are assigned dense IDs in order of first appearance, which makes
// loading deterministic.
package tsio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/geom"
	"repro/internal/model"
)

// finite is the shared coordinate-usability predicate (see geom.Finite);
// both readers reject non-finite coordinates at parse time.
func finite(f float64) bool { return geom.Finite(f) }

// header is the mandatory first CSV line.
var header = []string{"obj", "t", "x", "y"}

// WriteCSV writes the database in CSV format. Objects are emitted in ID
// order, samples in tick order; empty labels fall back to "o<ID>".
func WriteCSV(w io.Writer, db *model.DB) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tsio: write header: %w", err)
	}
	for _, tr := range db.Trajectories() {
		label := tr.Label
		if label == "" {
			label = fmt.Sprintf("o%d", tr.ID)
		}
		for _, s := range tr.Samples {
			rec := []string{
				label,
				strconv.FormatInt(int64(s.T), 10),
				strconv.FormatFloat(s.P.X, 'g', -1, 64),
				strconv.FormatFloat(s.P.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("tsio: write sample: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trajectory file into a database.
func ReadCSV(r io.Reader) (*model.DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	first, err := cr.Read()
	if err == io.EOF {
		return model.NewDB(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("tsio: read header: %w", err)
	}
	for i, want := range header {
		if first[i] != want {
			return nil, fmt.Errorf("tsio: bad header %v, want %v", first, header)
		}
	}
	type obj struct {
		label   string
		samples []model.Sample
	}
	var order []*obj
	byLabel := map[string]*obj{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: %w", line, err)
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad tick %q: %w", line, rec[1], err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad x %q: %w", line, rec[2], err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad y %q: %w", line, rec[3], err)
		}
		if !finite(x) || !finite(y) {
			return nil, fmt.Errorf("tsio: line %d: non-finite coordinates (%s, %s)", line, rec[2], rec[3])
		}
		o := byLabel[rec[0]]
		if o == nil {
			o = &obj{label: rec[0]}
			byLabel[rec[0]] = o
			order = append(order, o)
		}
		o.samples = append(o.samples, model.Sample{T: model.Tick(t), P: geom.Pt(x, y)})
	}
	db := model.NewDB()
	for _, o := range order {
		sort.Slice(o.samples, func(i, j int) bool { return o.samples[i].T < o.samples[j].T })
		for i := 1; i < len(o.samples); i++ {
			if o.samples[i].T == o.samples[i-1].T {
				return nil, fmt.Errorf("tsio: object %q has two samples at tick %d", o.label, o.samples[i].T)
			}
		}
		tr, err := model.NewTrajectory(o.label, o.samples)
		if err != nil {
			return nil, fmt.Errorf("tsio: object %q: %w", o.label, err)
		}
		db.Add(tr)
	}
	return db, nil
}

// SaveCSV writes the database to a file.
func SaveCSV(path string, db *model.DB) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tsio: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("tsio: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, db)
}

// LoadCSV reads a database from a file.
func LoadCSV(path string) (*model.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsio: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}
