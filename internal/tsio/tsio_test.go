package tsio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func sampleDB(t *testing.T) *model.DB {
	t.Helper()
	db := model.NewDB()
	a, err := model.NewTrajectory("truck-1", []model.Sample{
		{T: 0, P: geom.Pt(1.5, -2.25)},
		{T: 3, P: geom.Pt(2, 0)},
		{T: 4, P: geom.Pt(2.125, 0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Add(a)
	b, err := model.NewTrajectory("", []model.Sample{{T: 2, P: geom.Pt(0.1, 0.2)}})
	if err != nil {
		t.Fatal(err)
	}
	db.Add(b)
	return db
}

func TestRoundTrip(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("object count: %d vs %d", back.Len(), db.Len())
	}
	for id := 0; id < db.Len(); id++ {
		want, got := db.Traj(id), back.Traj(id)
		if got.Len() != want.Len() {
			t.Fatalf("object %d samples: %d vs %d", id, got.Len(), want.Len())
		}
		for i := range want.Samples {
			if want.Samples[i] != got.Samples[i] {
				t.Errorf("object %d sample %d: %v vs %v", id, i, got.Samples[i], want.Samples[i])
			}
		}
	}
	// The unlabeled object round-trips with the generated label.
	if _, ok := back.ByLabel("o1"); !ok {
		t.Error("generated label o1 missing")
	}
}

func TestReadUnsortedSamples(t *testing.T) {
	in := "obj,t,x,y\na,5,1,1\na,2,0,0\na,9,2,2\n"
	db, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := db.Traj(0)
	if tr.Start() != 2 || tr.End() != 9 || tr.Len() != 3 {
		t.Errorf("trajectory = %+v", tr)
	}
}

func TestReadObjectOrderDeterministic(t *testing.T) {
	in := "obj,t,x,y\nzulu,0,0,0\nalpha,0,1,1\nzulu,1,0,1\n"
	db, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Traj(0).Label != "zulu" || db.Traj(1).Label != "alpha" {
		t.Errorf("first-appearance order broken: %q, %q", db.Traj(0).Label, db.Traj(1).Label)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad header", "id,t,x,y\na,0,0,0\n"},
		{"bad tick", "obj,t,x,y\na,zz,0,0\n"},
		{"bad x", "obj,t,x,y\na,0,zz,0\n"},
		{"bad y", "obj,t,x,y\na,0,0,zz\n"},
		{"wrong fields", "obj,t,x,y\na,0,0\n"},
		{"duplicate tick", "obj,t,x,y\na,1,0,0\na,1,5,5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	db, err := ReadCSV(strings.NewReader(""))
	if err != nil || db.Len() != 0 {
		t.Errorf("empty input: %v %v", db, err)
	}
	db, err = ReadCSV(strings.NewReader("obj,t,x,y\n"))
	if err != nil || db.Len() != 0 {
		t.Errorf("header-only input: %v %v", db, err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.csv")
	db := sampleDB(t)
	if err := SaveCSV(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("loaded %d objects, want %d", back.Len(), db.Len())
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file: no error")
	}
	if err := SaveCSV(filepath.Join(dir, "nodir", "x.csv"), db); err == nil {
		t.Error("unwritable path: no error")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("saved file missing: %v", err)
	}
}

// Property: random databases survive a write/read round trip bit-exactly
// (float formatting uses shortest-round-trip encoding).
func TestPropRoundTripExact(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for iter := 0; iter < 30; iter++ {
		db := model.NewDB()
		for o := 0; o < 1+r.Intn(6); o++ {
			var samples []model.Sample
			tick := model.Tick(r.Intn(10))
			for i := 0; i < 1+r.Intn(20); i++ {
				samples = append(samples, model.Sample{
					T: tick,
					P: geom.Pt(r.NormFloat64()*1000, r.NormFloat64()*1000),
				})
				tick += model.Tick(1 + r.Intn(4))
			}
			tr, err := model.NewTrajectory("", samples)
			if err != nil {
				t.Fatal(err)
			}
			db.Add(tr)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, db); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < db.Len(); id++ {
			a, b := db.Traj(id), back.Traj(id)
			if a.Len() != b.Len() {
				t.Fatalf("object %d length mismatch", id)
			}
			for i := range a.Samples {
				if a.Samples[i] != b.Samples[i] {
					t.Fatalf("object %d sample %d: %v vs %v", id, i, a.Samples[i], b.Samples[i])
				}
			}
		}
	}
}
