package wire

// ShardRPCVersion is the coordinator↔shard protocol version, carried as
// ?v= on POST /v1/shard/query. A shard rejects other versions with 400 so
// a mixed-version fleet fails loudly instead of merging garbage.
const ShardRPCVersion = 1

// ShardQueryResponse is the body a shard answers on POST /v1/shard/query:
// the exact convoy answer of its assigned time window, in label space
// (object labels, not dense IDs — shards and coordinators parse the
// database independently and must not assume a shared ID assignment).
type ShardQueryResponse struct {
	// V echoes ShardRPCVersion.
	V int `json:"v"`
	// From and To echo the inclusive window this shard mined.
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Convoys is the window's maximal answer set.
	Convoys []ConvoyJSON `json:"convoys"`
	// Digest identifies the database the shard mined (cache key material).
	Digest string `json:"digest"`
	// Algo and Clusterer echo the resolved plan, for sanity checking.
	Algo      string `json:"algo"`
	Clusterer string `json:"clusterer,omitempty"`
	// Cache reports whether the shard answered from its cache.
	Cache bool `json:"cache"`
	// ElapsedMS is the shard-side wall time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
}
