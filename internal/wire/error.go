package wire

import "net/http"

// The uniform error envelope: every non-2xx answer of every /v1/* route
// (and the shard RPC) is
//
//	{"error": {"code": "<stable machine code>", "message": "<human text>"}}
//
// with the HTTP status and the code agreeing per the table below. Clients
// branch on the code; the message is for humans and carries no contract.
const (
	CodeBadRequest   = "bad_request"           // 400: malformed body/parameters
	CodeNotFound     = "not_found"             // 404: no such feed/monitor/database
	CodeConflict     = "conflict"              // 409: feed/monitor already exists
	CodeForbidden    = "forbidden"             // 403: disabled surface (path refs, shard RPC)
	CodeTooMany      = "too_many_requests"     // 429: feed/monitor caps hit; Retry-After is set
	CodeGone         = "gone"                  // 410: feed closed / server shutting down
	CodeClientClosed = "client_closed_request" // 499: caller went away mid-query
	CodeTimeout      = "timeout"               // 504: timeout_ms or the server cap expired
	CodeBadGateway   = "bad_gateway"           // 502: a shard failed during a fan-out
	CodePayloadLarge = "payload_too_large"     // 413: request body over MaxBodyBytes
	CodeInternal     = "internal"              // 500: everything else
)

// ErrorBody is the payload of the error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	Error ErrorBody `json:"error"`
}

// NewError builds an envelope from a status and message, deriving the
// stable code from the status.
func NewError(status int, message string) ErrorJSON {
	return ErrorJSON{Error: ErrorBody{Code: CodeForStatus(status), Message: message}}
}

// CodeForStatus maps an HTTP status to its stable error code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusForbidden:
		return CodeForbidden
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusRequestEntityTooLarge:
		return CodePayloadLarge
	case http.StatusTooManyRequests:
		return CodeTooMany
	case http.StatusGone:
		return CodeGone
	case 499:
		return CodeClientClosed
	case http.StatusBadGateway:
		return CodeBadGateway
	case http.StatusGatewayTimeout:
		return CodeTimeout
	default:
		return CodeInternal
	}
}
