package wire

import (
	"encoding/json"
	"math"
	"net/url"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestSpecDecodeCompat pins every legacy body spelling: flat m/k/e, the
// "eps" alias, and the canonical nested params object — all must decode to
// the same spec, and nested params must win over flat keys when both
// appear.
func TestSpecDecodeCompat(t *testing.T) {
	cases := []struct {
		name string
		body string
		want ParamsJSON
	}{
		{"nested", `{"params":{"m":3,"k":4,"e":1.5}}`, ParamsJSON{M: 3, K: 4, Eps: 1.5}},
		{"flat", `{"m":3,"k":4,"e":1.5}`, ParamsJSON{M: 3, K: 4, Eps: 1.5}},
		{"flat_eps_alias", `{"m":3,"k":4,"eps":1.5}`, ParamsJSON{M: 3, K: 4, Eps: 1.5}},
		{"e_beats_eps", `{"m":3,"k":4,"e":1.5,"eps":9}`, ParamsJSON{M: 3, K: 4, Eps: 1.5}},
		{"nested_beats_flat", `{"params":{"m":3,"k":4,"e":1.5},"m":9,"k":9,"e":9}`, ParamsJSON{M: 3, K: 4, Eps: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s QuerySpec
			if err := json.Unmarshal([]byte(tc.body), &s); err != nil {
				t.Fatalf("decode %s: %v", tc.body, err)
			}
			if s.Params != tc.want {
				t.Fatalf("decoded params %+v, want %+v", s.Params, tc.want)
			}
		})
	}
}

func TestSpecDecodeFull(t *testing.T) {
	body := `{
		"v": 1,
		"params": {"m": 2, "k": 3, "e": 4},
		"algo": "cuts+",
		"clusterer": "dbscan",
		"delta": 0.5,
		"lambda": 7,
		"workers": 4,
		"partitions": 3,
		"from": 10,
		"to": 20,
		"timeout_ms": 1500,
		"explain": true,
		"incremental": false
	}`
	var s QuerySpec
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatal(err)
	}
	if s.V != 1 || s.Algo != "cuts+" || s.Clusterer != "dbscan" || s.Delta != 0.5 ||
		s.Lambda != 7 || s.Workers != 4 || s.Partitions != 3 || s.TimeoutMS != 1500 || !s.Explain {
		t.Fatalf("decoded spec %+v", s)
	}
	if s.From == nil || *s.From != 10 || s.To == nil || *s.To != 20 {
		t.Fatalf("window not decoded: from=%v to=%v", s.From, s.To)
	}
	if s.Incremental == nil || *s.Incremental {
		t.Fatalf("incremental not decoded: %v", s.Incremental)
	}
}

// TestSpecURLRoundTrip pins URLValues as the inverse of SpecFromURL for a
// fully-populated spec — the coordinator depends on this to address shards.
func TestSpecURLRoundTrip(t *testing.T) {
	from, to := model.Tick(5), model.Tick(42)
	inc := true
	in := QuerySpec{
		Params:      ParamsJSON{M: 2, K: 3, Eps: 4.25},
		Algo:        "cuts*",
		Clusterer:   "dbscan",
		Delta:       0.75,
		Lambda:      9,
		Workers:     4,
		Partitions:  2,
		From:        &from,
		To:          &to,
		TimeoutMS:   250,
		Explain:     true,
		Incremental: &inc,
	}
	out, err := SpecFromURL(in.URLValues())
	if err != nil {
		t.Fatal(err)
	}
	in.V = SpecVersion // URLValues always stamps the version
	if out.Params != in.Params || out.Algo != in.Algo || out.Clusterer != in.Clusterer ||
		out.Delta != in.Delta || out.Lambda != in.Lambda || out.Workers != in.Workers ||
		out.Partitions != in.Partitions || out.TimeoutMS != in.TimeoutMS ||
		out.Explain != in.Explain || out.V != in.V {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	if out.From == nil || *out.From != from || out.To == nil || *out.To != to {
		t.Fatalf("window lost: from=%v to=%v", out.From, out.To)
	}
	if out.Incremental == nil || *out.Incremental != inc {
		t.Fatalf("incremental lost: %v", out.Incremental)
	}
}

func TestSpecFromURLLegacyEps(t *testing.T) {
	s, err := SpecFromURL(url.Values{"m": {"2"}, "k": {"3"}, "eps": {"1.5"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Params.Eps != 1.5 {
		t.Fatalf("eps alias not honored: %+v", s.Params)
	}
	if _, err := SpecFromURL(url.Values{"m": {"2"}, "k": {"3"}}); err == nil {
		t.Fatal("missing e accepted")
	}
	if _, err := SpecFromURL(url.Values{"m": {"2.5"}, "k": {"3"}, "e": {"1"}}); err == nil {
		t.Fatal("fractional m accepted")
	}
}

func TestNormalize(t *testing.T) {
	base := QuerySpec{Params: ParamsJSON{M: 2, K: 3, Eps: 4}}

	t.Run("defaults", func(t *testing.T) {
		r, err := base.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if r.IsCMC || r.Algo != AlgoCuTSStar || r.Clusterer != "" {
			t.Fatalf("defaults wrong: %+v", r)
		}
		if r.Windowed || r.From != model.MinTick || r.To != model.MaxTick {
			t.Fatalf("unbounded window wrong: %+v", r)
		}
		if r.Spec.V != SpecVersion {
			t.Fatalf("normalized spec not stamped v%d: %+v", SpecVersion, r.Spec)
		}
	})

	t.Run("proxgraph_defaults_to_cmc", func(t *testing.T) {
		s := base
		s.Clusterer = "proxgraph"
		r, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if !r.IsCMC || r.Algo != AlgoCMC || r.Clusterer != "proxgraph" {
			t.Fatalf("proxgraph default wrong: %+v", r)
		}
	})

	t.Run("cmc_zeroes_cuts_knobs", func(t *testing.T) {
		s := base
		s.Algo, s.Delta, s.Lambda = "CMC", 0.5, 7
		r, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if r.Spec.Delta != 0 || r.Spec.Lambda != 0 || r.Spec.Algo != AlgoCMC {
			t.Fatalf("cmc spec not normalized: %+v", r.Spec)
		}
	})

	rejects := []struct {
		name   string
		mutate func(*QuerySpec)
		want   string
	}{
		{"bad_version", func(s *QuerySpec) { s.V = 2 }, "schema version"},
		{"bad_algo", func(s *QuerySpec) { s.Algo = "bfs" }, "unknown algorithm"},
		{"bad_clusterer", func(s *QuerySpec) { s.Clusterer = "kmeans" }, "unknown clusterer"},
		{"proxgraph_cuts", func(s *QuerySpec) { s.Clusterer = "proxgraph"; s.Algo = "cuts" }, "requires algo=cmc"},
		{"bad_params", func(s *QuerySpec) { s.Params.M = 0 }, "m"},
		{"neg_workers", func(s *QuerySpec) { s.Workers = -1 }, "workers"},
		{"neg_partitions", func(s *QuerySpec) { s.Partitions = -2 }, "partitions"},
		{"nan_timeout", func(s *QuerySpec) { s.TimeoutMS = math.NaN() }, "timeout_ms"},
		{"inf_timeout", func(s *QuerySpec) { s.TimeoutMS = math.Inf(1) }, "timeout_ms"},
		{"neg_timeout", func(s *QuerySpec) { s.TimeoutMS = -1 }, "timeout_ms"},
		{"inverted_window", func(s *QuerySpec) {
			lo, hi := model.Tick(5), model.Tick(2)
			s.From, s.To = &lo, &hi
		}, "inverted"},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mutate(&s)
			_, err := s.Normalize()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestErrorEnvelope(t *testing.T) {
	e := NewError(404, "no such feed")
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"not_found","message":"no such feed"}}`
	if string(b) != want {
		t.Fatalf("envelope %s, want %s", b, want)
	}
	codes := map[int]string{
		400: CodeBadRequest, 403: CodeForbidden, 404: CodeNotFound, 409: CodeConflict,
		410: CodeGone, 413: CodePayloadLarge, 429: CodeTooMany, 499: CodeClientClosed,
		502: CodeBadGateway, 504: CodeTimeout, 500: CodeInternal, 418: CodeInternal,
	}
	for status, code := range codes {
		if got := CodeForStatus(status); got != code {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, code)
		}
	}
}
