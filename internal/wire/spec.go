package wire

import (
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// SpecVersion is the current query schema version. A QuerySpec with V 0
// (absent) or SpecVersion decodes; anything else is rejected up front so
// an old server never silently misreads a newer client's query.
const SpecVersion = 1

// QuerySpec is the canonical query parameter set — the one vocabulary
// shared by POST /v1/query (JSON body and URL query string alike), POST
// /v1/feeds/{name}/query, monitor specs and the coordinator↔shard RPC.
// Normalize is the single validator/defaulter behind all of them.
//
// Decoding is compatible with every legacy spelling: the nested
// {"params":{"m","k","e"}} object and flat top-level m/k/e both work (the
// nested form wins when both are present), and the URL form accepts "eps"
// as an alias of "e".
type QuerySpec struct {
	// V is the schema version (0 means SpecVersion).
	V int `json:"v,omitempty"`
	// Params are the convoy query parameters (m, k, e).
	Params ParamsJSON `json:"params"`
	// Algo selects the algorithm: cmc, cuts, cuts+ or cuts* (default; with
	// clusterer "proxgraph" the default becomes cmc and the CuTS family is
	// rejected).
	Algo string `json:"algo,omitempty"`
	// Clusterer selects the clustering backend: "dbscan" (default) or
	// "proxgraph" (per-tick proximity edges; the database is then an edge
	// CSV "a,b,t,w" contact log).
	Clusterer string `json:"clusterer,omitempty"`
	// Delta and Lambda override the automatic CuTS guidelines when > 0.
	Delta  float64 `json:"delta,omitempty"`
	Lambda int64   `json:"lambda,omitempty"`
	// Workers requests a parallel discovery run with that many goroutines
	// per pipeline stage; 0/absent runs serially. Servers clamp the value
	// to their MaxWorkersPerQuery. The answer set is identical for every
	// worker count, so workers never enters a cache key.
	Workers int `json:"workers,omitempty"`
	// Partitions > 1 runs the query as overlapping temporal partitions
	// mined in parallel and merged exactly (core.WithPartitions). Like
	// workers it cannot change the answer set, so it stays out of cache
	// keys. A coordinator ignores it (the shard count decides).
	Partitions int `json:"partitions,omitempty"`
	// From and To restrict the query to the inclusive tick window; absent
	// means unbounded on that side. A windowed answer is the query over the
	// database sliced to the window (interpolation-aware), which is exactly
	// the sub-problem one shard of a distributed run answers.
	From *model.Tick `json:"from,omitempty"`
	To   *model.Tick `json:"to,omitempty"`
	// TimeoutMS aborts the query after this many milliseconds — queueing
	// and discovery both count — answering 504. 0/absent means no
	// client-side deadline; the server's QueryTimeout cap applies either
	// way.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
	// Explain asks for a per-stage timing profile of this query's
	// discovery run.
	Explain bool `json:"explain,omitempty"`
	// Incremental, when false, forces the run's clustering onto the
	// from-scratch path (a performance knob; the answer is identical).
	Incremental *bool `json:"incremental,omitempty"`
}

// querySpecAlias avoids recursing into QuerySpec.UnmarshalJSON.
type querySpecAlias QuerySpec

// querySpecCompat is the decode shadow carrying every accepted spelling.
// RawParams shadows the alias's "params" tag (the shallower field wins), so
// the nested object is decoded explicitly below.
type querySpecCompat struct {
	querySpecAlias
	RawParams json.RawMessage `json:"params"`
	// Flat legacy spellings of m/k/e ("eps" as an e alias).
	M   *int     `json:"m"`
	K   *int64   `json:"k"`
	E   *float64 `json:"e"`
	Eps *float64 `json:"eps"`
}

// UnmarshalJSON decodes the canonical form plus the legacy flat spellings.
func (s *QuerySpec) UnmarshalJSON(data []byte) error {
	var c querySpecCompat
	if err := json.Unmarshal(data, &c); err != nil {
		return err
	}
	*s = QuerySpec(c.querySpecAlias)
	if len(c.RawParams) != 0 && string(c.RawParams) != "null" {
		if err := json.Unmarshal(c.RawParams, &s.Params); err != nil {
			return err
		}
		return nil
	}
	// No nested params: the flat spellings fill in.
	if c.M != nil {
		s.Params.M = *c.M
	}
	if c.K != nil {
		s.Params.K = *c.K
	}
	if c.E != nil {
		s.Params.Eps = *c.E
	} else if c.Eps != nil {
		s.Params.Eps = *c.Eps
	}
	return nil
}

// SpecFromURL decodes a QuerySpec from URL query parameters — the upload
// form of POST /v1/query and the shard RPC. m, k and e are required; m and
// k are rejected (not truncated) when fractional; "eps" is accepted as an
// alias of "e".
func SpecFromURL(q url.Values) (QuerySpec, error) {
	var s QuerySpec
	integer := func(key string, required bool) (int64, bool, error) {
		raw := q.Get(key)
		if raw == "" {
			if required {
				return 0, false, fmt.Errorf("decode query: missing parameter %q", key)
			}
			return 0, false, nil
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("decode query: bad %s=%q (want an integer)", key, raw)
		}
		return v, true, nil
	}
	if raw := q.Get("v"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 32)
		if err != nil {
			return s, fmt.Errorf("decode query: bad v=%q (want an integer)", raw)
		}
		s.V = int(v)
	}
	m, _, err := integer("m", true)
	if err != nil {
		return s, err
	}
	k, _, err := integer("k", true)
	if err != nil {
		return s, err
	}
	ekey, raw := "e", q.Get("e")
	if raw == "" && q.Get("eps") != "" {
		ekey, raw = "eps", q.Get("eps")
	}
	if raw == "" {
		return s, fmt.Errorf("decode query: missing parameter %q", "e")
	}
	e, perr := strconv.ParseFloat(raw, 64)
	if perr != nil {
		return s, fmt.Errorf("decode query: bad %s=%q", ekey, raw)
	}
	s.Params = ParamsJSON{M: int(m), K: k, Eps: e}
	s.Algo = q.Get("algo")
	s.Clusterer = q.Get("clusterer")
	if raw := q.Get("delta"); raw != "" {
		if s.Delta, err = strconv.ParseFloat(raw, 64); err != nil {
			return s, fmt.Errorf("decode query: bad delta=%q", raw)
		}
	}
	if lam, ok, err := integer("lambda", false); err != nil {
		return s, err
	} else if ok {
		s.Lambda = lam
	}
	if w, ok, err := integer("workers", false); err != nil {
		return s, err
	} else if ok {
		s.Workers = int(w)
	}
	if n, ok, err := integer("partitions", false); err != nil {
		return s, err
	} else if ok {
		s.Partitions = int(n)
	}
	if from, ok, err := integer("from", false); err != nil {
		return s, err
	} else if ok {
		t := model.Tick(from)
		s.From = &t
	}
	if to, ok, err := integer("to", false); err != nil {
		return s, err
	} else if ok {
		t := model.Tick(to)
		s.To = &t
	}
	if raw := q.Get("timeout_ms"); raw != "" {
		if s.TimeoutMS, err = strconv.ParseFloat(raw, 64); err != nil {
			return s, fmt.Errorf("decode query: bad timeout_ms=%q", raw)
		}
	}
	if raw := q.Get("explain"); raw != "" {
		if s.Explain, err = strconv.ParseBool(raw); err != nil {
			return s, fmt.Errorf("decode query: bad explain=%q (want a boolean)", raw)
		}
	}
	if raw := q.Get("incremental"); raw != "" {
		v, perr := strconv.ParseBool(raw)
		if perr != nil {
			return s, fmt.Errorf("decode query: bad incremental=%q (want a boolean)", raw)
		}
		s.Incremental = &v
	}
	return s, nil
}

// URLValues encodes the spec as URL query parameters — the inverse of
// SpecFromURL, used by the coordinator to address a shard and by clients
// uploading a database body. Zero-valued knobs are omitted.
func (s QuerySpec) URLValues() url.Values {
	q := url.Values{}
	q.Set("v", strconv.Itoa(SpecVersion))
	q.Set("m", strconv.Itoa(s.Params.M))
	q.Set("k", strconv.FormatInt(s.Params.K, 10))
	q.Set("e", strconv.FormatFloat(s.Params.Eps, 'g', -1, 64))
	if s.Algo != "" {
		q.Set("algo", s.Algo)
	}
	if s.Clusterer != "" {
		q.Set("clusterer", s.Clusterer)
	}
	if s.Delta > 0 {
		q.Set("delta", strconv.FormatFloat(s.Delta, 'g', -1, 64))
	}
	if s.Lambda > 0 {
		q.Set("lambda", strconv.FormatInt(s.Lambda, 10))
	}
	if s.Workers > 0 {
		q.Set("workers", strconv.Itoa(s.Workers))
	}
	if s.Partitions > 0 {
		q.Set("partitions", strconv.Itoa(s.Partitions))
	}
	if s.From != nil {
		q.Set("from", strconv.FormatInt(int64(*s.From), 10))
	}
	if s.To != nil {
		q.Set("to", strconv.FormatInt(int64(*s.To), 10))
	}
	if s.TimeoutMS > 0 {
		q.Set("timeout_ms", strconv.FormatFloat(s.TimeoutMS, 'g', -1, 64))
	}
	if s.Explain {
		q.Set("explain", "true")
	}
	if s.Incremental != nil {
		q.Set("incremental", strconv.FormatBool(*s.Incremental))
	}
	return q
}

// Resolved is the validated, defaulted form of a QuerySpec — what
// Normalize returns and every execution layer consumes.
type Resolved struct {
	// Spec is the normalized spec: algorithm lowercased and defaulted,
	// clusterer canonical ("" for the default backend), V set.
	Spec QuerySpec
	// P are the validated core parameters.
	P core.Params
	// IsCMC and Variant resolve the algorithm; Algo is its canonical name.
	IsCMC   bool
	Variant core.Variant
	Algo    string
	// Clusterer is the normalized backend name, "" for the default (so
	// legacy cache keys are unchanged).
	Clusterer string
	// From and To are the window bounds with sentinels substituted for the
	// unbounded sides. Windowed reports whether any bound was given.
	From, To model.Tick
	Windowed bool
}

// Normalize validates the spec and resolves every default — the single
// validator behind every query surface. The returned error is a client
// mistake by construction (servers answer 400).
func (s QuerySpec) Normalize() (Resolved, error) {
	var r Resolved
	if s.V != 0 && s.V != SpecVersion {
		return r, fmt.Errorf("unsupported query schema version %d (this server speaks v%d)", s.V, SpecVersion)
	}
	cl, err := ParseClusterer(s.Clusterer)
	if err != nil {
		return r, err
	}
	if cl.Name() != core.DefaultBackend {
		r.Clusterer = cl.Name()
		// The CuTS family's filter step depends on Euclidean DBSCAN bounds,
		// so a graph backend only runs under CMC — which is therefore the
		// default algorithm for proxgraph queries rather than cuts*.
		if s.Algo == "" {
			s.Algo = AlgoCMC
		}
	}
	r.IsCMC, r.Variant, err = ParseAlgo(s.Algo)
	if err != nil {
		return r, err
	}
	if r.Clusterer != "" && !r.IsCMC {
		return r, fmt.Errorf("clusterer %q requires algo=cmc (the CuTS filter bounds are DBSCAN-specific; got algo=%q)",
			r.Clusterer, s.Algo)
	}
	r.P = s.Params.Params()
	if err := r.P.Validate(); err != nil {
		return r, err
	}
	if s.Workers < 0 {
		return r, fmt.Errorf("workers must be ≥ 0 (got %d)", s.Workers)
	}
	if s.Partitions < 0 {
		return r, fmt.Errorf("partitions must be ≥ 0 (got %d)", s.Partitions)
	}
	// timeout_ms must be a usable duration: finite, non-negative and small
	// enough that the milliseconds→Duration conversion cannot overflow
	// (NaN/Inf pass a plain "< 0" check and would silently mean "no
	// deadline").
	if s.TimeoutMS < 0 || math.IsNaN(s.TimeoutMS) || math.IsInf(s.TimeoutMS, 0) ||
		s.TimeoutMS > float64(math.MaxInt64)/float64(time.Millisecond) {
		return r, fmt.Errorf("timeout_ms must be a finite duration in milliseconds ≥ 0 (got %g)", s.TimeoutMS)
	}
	r.From, r.To = model.MinTick, model.MaxTick
	if s.From != nil {
		r.From, r.Windowed = *s.From, true
	}
	if s.To != nil {
		r.To, r.Windowed = *s.To, true
	}
	if r.From > r.To {
		return r, fmt.Errorf("query window inverted (from %d > to %d)", r.From, r.To)
	}
	if r.IsCMC {
		// CMC ignores δ/λ entirely; normalize them out so equivalent CMC
		// queries share cache keys.
		s.Delta, s.Lambda = 0, 0
	}
	algo := s.Algo
	if algo == "" {
		algo = AlgoCuTSStar
	}
	r.Algo = strings.ToLower(algo)
	s.V = SpecVersion
	s.Algo = r.Algo
	s.Clusterer = r.Clusterer
	r.Spec = s
	return r, nil
}
