// Package wire is the canonical JSON schema of the convoy query API: the
// one place the parameter vocabulary, validation rules and error envelope
// live. The HTTP server (internal/serve), the CLIs (convoyfind -format
// json, convoyload) and the coordinator↔shard RPC (internal/dist) all
// speak these types, so a query means the same thing on every surface.
//
// Ticks travel as plain int64 and object identities as string labels —
// dense ObjectIDs are a per-database implementation detail that must not
// leak to clients.
package wire

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proxgraph"
)

// ParamsJSON is the wire form of the convoy query parameters (m, k, e).
type ParamsJSON struct {
	M   int     `json:"m"`
	K   int64   `json:"k"`
	Eps float64 `json:"e"`
}

// Params converts to the core parameter struct.
func (p ParamsJSON) Params() core.Params { return core.Params{M: p.M, K: p.K, Eps: p.Eps} }

// ParamsToJSON converts core parameters to their wire form.
func ParamsToJSON(p core.Params) ParamsJSON { return ParamsJSON{M: p.M, K: p.K, Eps: p.Eps} }

// ConvoyJSON is the wire form of one convoy answer.
type ConvoyJSON struct {
	// Objects are the member labels, ascending in the underlying IDs.
	Objects []string `json:"objects"`
	// Start and End delimit the inclusive tick interval.
	Start model.Tick `json:"start"`
	End   model.Tick `json:"end"`
	// Lifetime is End−Start+1, precomputed for consumers.
	Lifetime int64 `json:"lifetime"`
}

// ConvoyToJSON renders a convoy with the given label lookup; a lookup
// returning "" falls back to "o<ID>".
func ConvoyToJSON(c core.Convoy, label func(model.ObjectID) string) ConvoyJSON {
	out := ConvoyJSON{
		Objects:  make([]string, len(c.Objects)),
		Start:    c.Start,
		End:      c.End,
		Lifetime: c.Lifetime(),
	}
	for i, id := range c.Objects {
		name := ""
		if label != nil {
			name = label(id)
		}
		if name == "" {
			name = fmt.Sprintf("o%d", id)
		}
		out.Objects[i] = name
	}
	return out
}

// DBLabels returns a label lookup backed by a database's trajectory labels.
func DBLabels(db *model.DB) func(model.ObjectID) string {
	return func(id model.ObjectID) string {
		if id < 0 || id >= db.Len() {
			return ""
		}
		return db.Traj(id).Label
	}
}

// Position is one object's location in a tick batch.
type Position struct {
	ID string  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// EdgeJSON is one proximity observation in a tick batch: objects a and b
// were in contact at the batch's tick with weight w. Edges feed
// graph-connectivity monitors (clusterer "proxgraph"); geometric monitors
// ignore them.
type EdgeJSON struct {
	A string  `json:"a"`
	B string  `json:"b"`
	W float64 `json:"w"`
}

// TickBatch is the ingestion unit of POST /v1/feeds/{name}/ticks: the
// snapshot of every tracked object at one tick — positions, proximity
// edges, or both (a coordinate-free contact feed sends only edges).
type TickBatch struct {
	T         model.Tick `json:"t"`
	Positions []Position `json:"positions"`
	Edges     []EdgeJSON `json:"edges,omitempty"`
}

// TicksRequest is the body of POST /v1/feeds/{name}/ticks. Either a single
// batch or a "ticks" array is accepted.
type TicksRequest struct {
	Ticks []TickBatch `json:"ticks"`
}

// StatsJSON is the wire form of the discovery run statistics.
type StatsJSON struct {
	Variant       string  `json:"variant"`
	Delta         float64 `json:"delta"`
	Lambda        int64   `json:"lambda"`
	Workers       int     `json:"workers"`
	NumPartitions int     `json:"partitions"`
	NumCandidates int     `json:"candidates"`
	RefineUnits   float64 `json:"refine_units"`
	ClusterPasses int64   `json:"cluster_passes"`
	// ClusterPassesFull / Incremental split the pass count by clustering
	// mode; ObjectsReclustered meters the incremental path's object-level
	// work (see core.Stats).
	ClusterPassesFull        int64   `json:"cluster_passes_full"`
	ClusterPassesIncremental int64   `json:"cluster_passes_incremental"`
	ObjectsReclustered       int64   `json:"objects_reclustered"`
	SimplifyMS               float64 `json:"simplify_ms"`
	FilterMS                 float64 `json:"filter_ms"`
	RefineMS                 float64 `json:"refine_ms"`
	TotalMS                  float64 `json:"total_ms"`
}

// StatsToJSON converts run statistics to their wire form.
func StatsToJSON(st core.Stats) StatsJSON {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return StatsJSON{
		Variant:                  st.Variant.String(),
		Delta:                    st.Delta,
		Lambda:                   st.Lambda,
		Workers:                  st.Workers,
		NumPartitions:            st.NumPartitions,
		NumCandidates:            st.NumCandidates,
		RefineUnits:              st.RefineUnits,
		ClusterPasses:            st.ClusterPasses,
		ClusterPassesFull:        st.ClusterPassesFull,
		ClusterPassesIncremental: st.ClusterPassesIncremental,
		ObjectsReclustered:       st.ObjectsReclustered,
		SimplifyMS:               ms(st.SimplifyTime),
		FilterMS:                 ms(st.FilterTime),
		RefineMS:                 ms(st.RefineTime),
		TotalMS:                  ms(st.TotalTime()),
	}
}

// Algo names accepted by the query engine and convoyfind.
const (
	AlgoCMC      = "cmc"
	AlgoCuTS     = "cuts"
	AlgoCuTSPlus = "cuts+"
	AlgoCuTSStar = "cuts*"
)

// ParseAlgo resolves an algorithm name ("" defaults to cuts*). cmc reports
// true in the first return; otherwise the variant is valid.
func ParseAlgo(name string) (isCMC bool, v core.Variant, err error) {
	switch strings.ToLower(name) {
	case AlgoCMC:
		return true, 0, nil
	case AlgoCuTS:
		return false, core.VariantCuTS, nil
	case AlgoCuTSPlus:
		return false, core.VariantCuTSPlus, nil
	case AlgoCuTSStar, "":
		return false, core.VariantCuTSStar, nil
	default:
		return false, 0, fmt.Errorf("unknown algorithm %q (want cmc, cuts, cuts+ or cuts*)", name)
	}
}

// ParseClusterer resolves a clustering backend name from the wire ("" and
// "dbscan" are the built-in default; "proxgraph" is the graph-connectivity
// backend clustering each tick's proximity edges).
func ParseClusterer(name string) (core.Clusterer, error) {
	switch strings.ToLower(name) {
	case "", core.DefaultBackend:
		return core.DefaultClusterer, nil
	case proxgraph.Backend:
		return proxgraph.Clusterer{}, nil
	default:
		return nil, fmt.Errorf("unknown clusterer %q (want %s or %s)", name, core.DefaultBackend, proxgraph.Backend)
	}
}
