package simplify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func s(t model.Tick, x, y float64) model.Sample { return model.Sample{T: t, P: geom.Pt(x, y)} }

func mustTraj(t *testing.T, samples ...model.Sample) *model.Trajectory {
	t.Helper()
	tr, err := model.NewTrajectory("t", samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// synchronousDeviation is the DP* error of sample idx against the covering
// simplified segment: distance to the segment position at the same tick.
func synchronousDeviation(st *Trajectory, idx int) float64 {
	sm := st.Orig.Samples[idx]
	si := st.SegmentCovering(sm.T)
	if si < 0 {
		return math.Inf(1)
	}
	return geom.D(sm.P, st.Segments[si].PosAt(float64(sm.T)))
}

// segmentDeviation is the DP/DP+ error: DPL to the covering segment.
func segmentDeviation(st *Trajectory, idx int) float64 {
	sm := st.Orig.Samples[idx]
	si := st.SegmentCovering(sm.T)
	if si < 0 {
		return math.Inf(1)
	}
	return geom.DPL(sm.P, st.Segments[si].Segment)
}

func TestSimplifyKeepsEndpoints(t *testing.T) {
	tr := mustTraj(t, s(0, 0, 0), s(1, 1, 5), s(2, 2, -5), s(3, 3, 0))
	for _, m := range []Method{DP, DPPlus, DPStar} {
		st := Simplify(tr, 100, m)
		if st.Keep[0] != 0 || st.Keep[len(st.Keep)-1] != tr.Len()-1 {
			t.Errorf("%v: endpoints not kept: %v", m, st.Keep)
		}
		if st.Len() != 2 {
			t.Errorf("%v: huge delta should keep exactly endpoints, got %v", m, st.Keep)
		}
		if len(st.Segments) != st.Len()-1 {
			t.Errorf("%v: segments/keep mismatch", m)
		}
	}
}

func TestSimplifyZeroDeltaKeepsNonCollinear(t *testing.T) {
	// A zig-zag: no interior point is collinear, so δ=0 keeps everything.
	tr := mustTraj(t, s(0, 0, 0), s(1, 1, 1), s(2, 2, 0), s(3, 3, 1), s(4, 4, 0))
	for _, m := range []Method{DP, DPPlus, DPStar} {
		st := Simplify(tr, 0, m)
		if st.Len() != 5 {
			t.Errorf("%v: δ=0 kept %d of 5 points (%v)", m, st.Len(), st.Keep)
		}
		if st.Tolerance != 0 {
			t.Errorf("%v: δ=0 tolerance = %g", m, st.Tolerance)
		}
	}
}

func TestSimplifyCollinearCollapses(t *testing.T) {
	// Perfectly collinear and uniformly timed: everything collapses even at
	// δ=0, for all three methods (DP* included, because the time ratio
	// matches the spatial ratio here).
	tr := mustTraj(t, s(0, 0, 0), s(1, 1, 1), s(2, 2, 2), s(3, 3, 3))
	for _, m := range []Method{DP, DPPlus, DPStar} {
		st := Simplify(tr, 0, m)
		if st.Len() != 2 {
			t.Errorf("%v: collinear kept %v", m, st.Keep)
		}
	}
}

func TestDPStarKeepsTimeSkewedPoint(t *testing.T) {
	// Figure 3's scenario: p2 is spatially on the chord (DP drops it) but at
	// its tick the chord position is far away (DP* keeps it).
	tr := mustTraj(t, s(1, 0, 0), s(2, 1, 0), s(3, 10, 0))
	dp := Simplify(tr, 1, DP)
	if dp.Len() != 2 {
		t.Errorf("DP should drop the collinear point, kept %v", dp.Keep)
	}
	dpstar := Simplify(tr, 1, DPStar)
	if dpstar.Len() != 3 {
		t.Errorf("DP* should keep the time-skewed point, kept %v", dpstar.Keep)
	}
	// With a tolerance above the synchronous error (4), DP* drops it too.
	loose := Simplify(tr, 5, DPStar)
	if loose.Len() != 2 {
		t.Errorf("DP* with δ=5 kept %v", loose.Keep)
	}
}

func TestFigure10DPVersusDPPlus(t *testing.T) {
	// Figure 10: seven points; p4 (index 3) and p6 (index 5) exceed δ=1.
	// DP splits at the farthest (p6) and ends with {p1,p6,p7}; DP+ splits at
	// the one closest to the middle (p4) and ends with {p1,p4,p6,p7}.
	tr := mustTraj(t,
		s(0, 0, 0),
		s(1, 1, 0.3),
		s(2, 2, 0.6),
		s(3, 3, 1.2), // p4
		s(4, 4, 0.5),
		s(5, 5, 1.5), // p6
		s(6, 6, 0),
	)
	dp := Simplify(tr, 1, DP)
	if got, want := dp.Keep, []int{0, 5, 6}; !equalInts(got, want) {
		t.Errorf("DP keep = %v, want %v", got, want)
	}
	dpp := Simplify(tr, 1, DPPlus)
	if got, want := dpp.Keep, []int{0, 3, 5, 6}; !equalInts(got, want) {
		t.Errorf("DP+ keep = %v, want %v", got, want)
	}
	// The paper's Section 6.1 claim is about the chosen split point's
	// deviation at each division step: DP+ picks δ4 (=1.2) where DP picks
	// δ6 (=1.5), i.e., the split deviation of DP+ is ≤ DP's.
	devDP := deviation(tr.Samples, 0, 6, 5, DP)      // p6 against p1p7
	devDPP := deviation(tr.Samples, 0, 6, 3, DPPlus) // p4 against p1p7
	if devDPP > devDP {
		t.Errorf("DP+ split deviation %g > DP split deviation %g", devDPP, devDP)
	}
	// And DP's reduction is at least as strong as DP+'s (Figure 15(a)).
	if dp.Len() > dpp.Len() {
		t.Errorf("DP kept %d points, DP+ kept %d; DP should reduce at least as much",
			dp.Len(), dpp.Len())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSingleSampleTrajectory(t *testing.T) {
	tr := mustTraj(t, s(7, 3, 4))
	st := Simplify(tr, 1, DP)
	if st.Len() != 1 || len(st.Segments) != 1 {
		t.Fatalf("single-sample: keep=%v segments=%d", st.Keep, len(st.Segments))
	}
	sg := st.Segments[0]
	if sg.T0 != 7 || sg.T1 != 7 || sg.A != geom.Pt(3, 4) {
		t.Errorf("degenerate segment = %+v", sg)
	}
	if st.SegmentCovering(7) != 0 {
		t.Error("SegmentCovering(7) failed on degenerate segment")
	}
	if st.SegmentCovering(8) != -1 {
		t.Error("SegmentCovering(8) should miss")
	}
}

func TestTwoSampleTrajectory(t *testing.T) {
	tr := mustTraj(t, s(0, 0, 0), s(9, 3, 4))
	st := Simplify(tr, 0, DPStar)
	if st.Len() != 2 || len(st.Segments) != 1 || st.Segments[0].Tolerance != 0 {
		t.Fatalf("two-sample: %+v", st)
	}
}

func TestSegmentCoveringAndOverlap(t *testing.T) {
	// Force three segments by using δ=0 on a zig-zag with 4 points.
	tr := mustTraj(t, s(0, 0, 0), s(3, 1, 2), s(7, 2, 0), s(12, 3, 2))
	st := Simplify(tr, 0, DP)
	if len(st.Segments) != 3 {
		t.Fatalf("want 3 segments, got %d", len(st.Segments))
	}
	cases := []struct {
		t    model.Tick
		want int
	}{
		{0, 0}, {2, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {12, 2}, {13, -1}, {-1, -1},
	}
	for _, c := range cases {
		if got := st.SegmentCovering(c.t); got != c.want {
			t.Errorf("SegmentCovering(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	lo, hi := st.SegmentsOverlapping(2, 8)
	if lo != 0 || hi != 3 {
		t.Errorf("SegmentsOverlapping(2,8) = [%d,%d)", lo, hi)
	}
	lo, hi = st.SegmentsOverlapping(4, 6)
	if lo != 1 || hi != 2 {
		t.Errorf("SegmentsOverlapping(4,6) = [%d,%d)", lo, hi)
	}
	lo, hi = st.SegmentsOverlapping(13, 20)
	if lo != hi {
		t.Errorf("SegmentsOverlapping outside = [%d,%d), want empty", lo, hi)
	}
}

// randomTraj builds a random trajectory with occasional sampling gaps.
func randomTraj(r *rand.Rand, n int) *model.Trajectory {
	samples := make([]model.Sample, 0, n)
	tick := model.Tick(0)
	x, y := 0.0, 0.0
	for i := 0; i < n; i++ {
		x += r.Float64()*4 - 2
		y += r.Float64()*4 - 2
		samples = append(samples, model.Sample{T: tick, P: geom.Pt(x, y)})
		tick += model.Tick(1 + r.Intn(3))
	}
	tr, err := model.NewTrajectory("r", samples)
	if err != nil {
		panic(err)
	}
	return tr
}

// The central correctness property (Definition 4 / Section 5.1): every
// original sample deviates from its covering simplified segment by at most
// the requested δ, at most the segment's recorded actual tolerance, and the
// recorded tolerance never exceeds δ.
func TestPropToleranceGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		tr := randomTraj(r, 2+r.Intn(60))
		delta := r.Float64() * 6
		for _, m := range []Method{DP, DPPlus, DPStar} {
			st := Simplify(tr, delta, m)
			if st.Tolerance > delta+1e-9 {
				t.Fatalf("%v: trajectory tolerance %g exceeds δ=%g", m, st.Tolerance, delta)
			}
			for _, sg := range st.Segments {
				if sg.Tolerance > delta+1e-9 {
					t.Fatalf("%v: segment tolerance %g exceeds δ=%g", m, sg.Tolerance, delta)
				}
			}
			for idx := range tr.Samples {
				var dev float64
				if m == DPStar {
					dev = synchronousDeviation(st, idx)
				} else {
					dev = segmentDeviation(st, idx)
				}
				if dev > delta+1e-9 {
					t.Fatalf("%v: sample %d deviates %g > δ=%g", m, idx, dev, delta)
				}
				si := st.SegmentCovering(tr.Samples[idx].T)
				if dev > st.Segments[si].Tolerance+1e-9 {
					t.Fatalf("%v: sample %d deviates %g > recorded segment tolerance %g",
						m, idx, dev, st.Segments[si].Tolerance)
				}
			}
		}
	}
}

// Property: the recorded actual tolerance is exactly the max deviation of
// the samples inside each segment (not just an upper bound).
func TestPropActualToleranceIsTight(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for iter := 0; iter < 80; iter++ {
		tr := randomTraj(r, 3+r.Intn(40))
		delta := r.Float64() * 5
		for _, m := range []Method{DP, DPPlus, DPStar} {
			st := Simplify(tr, delta, m)
			for _, sg := range st.Segments {
				maxDev := 0.0
				for idx := sg.StartIdx + 1; idx < sg.EndIdx; idx++ {
					var dev float64
					if m == DPStar {
						dev = geom.D(tr.Samples[idx].P, sg.PosAt(float64(tr.Samples[idx].T)))
					} else {
						dev = geom.DPL(tr.Samples[idx].P, sg.Segment)
					}
					if dev > maxDev {
						maxDev = dev
					}
				}
				if math.Abs(maxDev-sg.Tolerance) > 1e-9 {
					t.Fatalf("%v: recorded tolerance %g, recomputed %g", m, sg.Tolerance, maxDev)
				}
			}
		}
	}
}

// Property: kept indices are strictly ascending, start at 0, end at n−1, and
// segments tile the trajectory's sample range.
func TestPropKeepWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 80; iter++ {
		tr := randomTraj(r, 1+r.Intn(50))
		for _, m := range []Method{DP, DPPlus, DPStar} {
			st := Simplify(tr, r.Float64()*8, m)
			if st.Keep[0] != 0 || st.Keep[len(st.Keep)-1] != tr.Len()-1 {
				t.Fatalf("%v: keep endpoints %v", m, st.Keep)
			}
			for i := 1; i < len(st.Keep); i++ {
				if st.Keep[i] <= st.Keep[i-1] {
					t.Fatalf("%v: keep not ascending: %v", m, st.Keep)
				}
			}
			if tr.Len() > 1 {
				for i, sg := range st.Segments {
					if sg.StartIdx != st.Keep[i] || sg.EndIdx != st.Keep[i+1] {
						t.Fatalf("%v: segment %d range [%d,%d] vs keep %v",
							m, i, sg.StartIdx, sg.EndIdx, st.Keep)
					}
				}
			}
		}
	}
}

// Property: larger δ never keeps more points (monotone reduction) for DP and
// DP*. (DP+'s middle-biased split is not strictly monotone in theory, so it
// is exempted.)
func TestPropMonotoneReduction(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for iter := 0; iter < 60; iter++ {
		tr := randomTraj(r, 5+r.Intn(50))
		for _, m := range []Method{DP, DPStar} {
			prev := -1
			for _, delta := range []float64{0.1, 0.5, 1, 2, 4, 8, 16} {
				n := Simplify(tr, delta, m).Len()
				if prev >= 0 && n > prev {
					// Farthest-point DP is not formally monotone either, but
					// violations are vanishingly rare on random walks; treat
					// a big jump as a bug, tolerate ±1 wobble.
					if n > prev+1 {
						t.Fatalf("%v: reduction regressed: δ=%g kept %d, previous %d", m, delta, n, prev)
					}
				}
				prev = n
			}
		}
	}
}

func TestSimplifyAll(t *testing.T) {
	db := model.NewDB()
	db.Add(mustTraj(t, s(0, 0, 0), s(1, 1, 1), s(2, 2, 0)))
	db.Add(mustTraj(t, s(0, 5, 5), s(1, 6, 6)))
	sts := SimplifyAll(db, 0.5, DP)
	if len(sts) != 2 {
		t.Fatalf("SimplifyAll returned %d", len(sts))
	}
	for id, st := range sts {
		if st.Object != id {
			t.Errorf("object id mismatch: %d vs %d", st.Object, id)
		}
	}
}

func TestSplitDistances(t *testing.T) {
	// Zig-zag with distinct amplitudes: δ=0 DP visits every interior point.
	tr := mustTraj(t, s(0, 0, 0), s(1, 1, 3), s(2, 2, 0), s(3, 3, 1), s(4, 4, 0))
	dists := SplitDistances(tr, DP)
	if len(dists) == 0 {
		t.Fatal("no split distances recorded")
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatalf("distances not ascending: %v", dists)
		}
	}
	// Short trajectories yield nothing.
	if got := SplitDistances(mustTraj(t, s(0, 0, 0), s(1, 1, 1)), DP); got != nil {
		t.Errorf("2-point trajectory: %v", got)
	}
	// Collinear: every split distance is 0… in fact no split happens at all.
	col := mustTraj(t, s(0, 0, 0), s(1, 1, 1), s(2, 2, 2))
	if got := SplitDistances(col, DP); len(got) != 0 {
		t.Errorf("collinear split distances: %v", got)
	}
}

func TestMethodString(t *testing.T) {
	if DP.String() != "DP" || DPPlus.String() != "DP+" || DPStar.String() != "DP*" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still stringify")
	}
}

func TestReductionRatio(t *testing.T) {
	tr := mustTraj(t, s(0, 0, 0), s(1, 1, 0.01), s(2, 2, 0), s(3, 3, 0.01), s(4, 4, 0))
	st := Simplify(tr, 1, DP)
	if st.Len() != 2 {
		t.Fatalf("expected full collapse, kept %v", st.Keep)
	}
	if got := st.ReductionRatio(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("ReductionRatio = %g, want 0.6", got)
	}
}
