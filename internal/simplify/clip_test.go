package simplify

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func TestClipTimeBasics(t *testing.T) {
	tr := mustTraj(t, s(0, 0, 0), s(10, 10, 0))
	st := Simplify(tr, 0, DPStar)
	sg := st.Segments[0]

	c := sg.ClipTime(2, 7)
	if c.T0 != 2 || c.T1 != 7 {
		t.Fatalf("clipped interval [%g,%g]", c.T0, c.T1)
	}
	if c.A != geom.Pt(2, 0) || c.B != geom.Pt(7, 0) {
		t.Errorf("clipped endpoints %v %v", c.A, c.B)
	}
	if c.Tolerance != sg.Tolerance {
		t.Error("clip must not change the tolerance")
	}
	// Clipping beyond the segment leaves it unchanged.
	full := sg.ClipTime(-5, 100)
	if full.T0 != 0 || full.T1 != 10 || full.A != sg.A || full.B != sg.B {
		t.Errorf("over-wide clip changed the segment: %+v", full)
	}
	// Single-instant clip degenerates to a point.
	instant := sg.ClipTime(4, 4)
	if instant.T0 != 4 || instant.T1 != 4 || instant.A != geom.Pt(4, 0) || instant.A != instant.B {
		t.Errorf("instant clip: %+v", instant)
	}
}

// The soundness property behind CuTS*'s clipping: for every tick inside the
// clipped window, the original (or interpolated) position stays within the
// segment's DP* tolerance of the clipped segment's synchronous position.
func TestPropClipPreservesDPStarTolerance(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	for iter := 0; iter < 80; iter++ {
		tr := randomTraj(r, 4+r.Intn(40))
		delta := r.Float64() * 4
		st := Simplify(tr, delta, DPStar)
		for _, sg := range st.Segments {
			if sg.EndTick() <= sg.StartTick() {
				continue
			}
			// Random clip window intersecting the segment.
			span := sg.EndTick() - sg.StartTick()
			lo := sg.StartTick() + model.Tick(r.Int63n(int64(span)+1))
			hi := lo + model.Tick(r.Int63n(int64(sg.EndTick()-lo)+1))
			c := sg.ClipTime(lo, hi)
			for tick := lo; tick <= hi; tick++ {
				p, ok := tr.LocationAt(tick)
				if !ok {
					t.Fatalf("position missing inside segment at %d", tick)
				}
				if d := geom.D(p, c.PosAt(float64(tick))); d > sg.Tolerance+1e-9 {
					t.Fatalf("clip broke the synchronous tolerance: dev %g > δ(l')=%g at tick %d",
						d, sg.Tolerance, tick)
				}
			}
		}
	}
}

// SplitDistances must behave for the middle-biased and synchronous variants
// too (ComputeDelta uses DP, but the profile is exposed for all methods).
func TestSplitDistancesAllMethods(t *testing.T) {
	tr := mustTraj(t,
		s(0, 0, 0), s(1, 1, 2), s(2, 2, -1), s(3, 3, 3), s(4, 4, 0), s(5, 5, 1),
	)
	for _, m := range []Method{DP, DPPlus, DPStar} {
		dists := SplitDistances(tr, m)
		if len(dists) == 0 {
			t.Errorf("%v: empty profile", m)
			continue
		}
		for i := 1; i < len(dists); i++ {
			if dists[i] < dists[i-1] {
				t.Errorf("%v: profile not ascending: %v", m, dists)
			}
		}
		for _, d := range dists {
			if d < 0 {
				t.Errorf("%v: negative deviation %g", m, d)
			}
		}
	}
}
