// Package simplify implements the three trajectory line-simplification
// methods used by the CuTS family (Sections 2.2, 5.1 and 6):
//
//   - DP:     the classic Douglas–Peucker algorithm — split at the point
//     farthest (in segment distance) from the chord.
//   - DPPlus: the paper's DP+ — among the points whose deviation exceeds
//     the tolerance, split at the one closest to the middle of the range,
//     balancing the divide-and-conquer recursion (Section 6.1).
//   - DPStar: the Meratnia/de By time-ratio variant DP* — deviation of a
//     point is measured against the chord position at the *same time*
//     (synchronous error), enabling the tighter D* filter bound
//     (Section 6.2).
//
// Every produced segment carries its **actual tolerance** δ(l')
// (Definition 4): the maximum deviation of the original trajectory from the
// segment over the segment's time interval. For DP/DP+ the deviation is the
// segment distance DPL; for DP* it is the synchronous time-ratio distance,
// which is what Lemma 3 requires. Actual tolerances are never larger than
// the requested δ and tighten the filter's range-search bounds (Figure 14).
//
// All implementations are iterative (explicit stack) so multi-hundred-
// thousand-point trajectories (the Cattle dataset's shape) cannot overflow
// the goroutine stack.
package simplify

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/par"
)

// Method selects a simplification algorithm.
type Method int

const (
	// DP is the classic Douglas–Peucker farthest-point split.
	DP Method = iota
	// DPPlus splits at the tolerance-exceeding point closest to the middle.
	DPPlus
	// DPStar measures deviation synchronously (time-ratio) à la Meratnia.
	DPStar
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case DP:
		return "DP"
	case DPPlus:
		return "DP+"
	case DPStar:
		return "DP*"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Segment is one line segment l' of a simplified trajectory: a timed segment
// (endpoints are original samples, so they carry timestamps) plus its actual
// tolerance δ(l').
type Segment struct {
	geom.TimedSegment
	// StartIdx and EndIdx are the indices of the segment's endpoints in the
	// original trajectory's sample slice.
	StartIdx, EndIdx int
	// Tolerance is the actual tolerance δ(l') of Definition 4.
	Tolerance float64
}

// StartTick returns the first tick of the segment's time interval l'.τ.
func (sg Segment) StartTick() model.Tick { return model.Tick(sg.T0) }

// EndTick returns the last tick of the segment's time interval l'.τ.
func (sg Segment) EndTick() model.Tick { return model.Tick(sg.T1) }

// ClipTime returns the segment restricted to the time window [lo, hi],
// with endpoints moved to the segment's interpolated positions at the
// clipped instants. The window must intersect the segment's interval.
//
// Clipping preserves the DP* tolerance guarantee — the synchronous error
// D(o(t), l'(t)) ≤ δ(l') holds pointwise, so it holds on any sub-interval —
// and therefore the Lemma 3 (D*) bound stays sound on clipped segments.
// It is NOT sound for DP/DP+ tolerances: their δ(l') bounds the distance to
// the segment as a whole, and the witness point may lie outside the clipped
// span (Section 6.2's motivation for CuTS*).
func (sg Segment) ClipTime(lo, hi model.Tick) Segment {
	t0, t1 := float64(lo), float64(hi)
	if t0 < sg.T0 {
		t0 = sg.T0
	}
	if t1 > sg.T1 {
		t1 = sg.T1
	}
	out := sg
	out.TimedSegment = geom.TimedSeg(sg.PosAt(t0), sg.PosAt(t1), t0, t1)
	return out
}

// Trajectory is a simplified trajectory o': the subsequence of kept samples
// and the segments between them.
type Trajectory struct {
	// Object is the source object's ID.
	Object model.ObjectID
	// Orig points to the original trajectory (used by the refinement step).
	Orig *model.Trajectory
	// Keep holds the indices of the kept samples, ascending, always
	// including the first and last sample.
	Keep []int
	// Segments has len(Keep)−1 entries; a single-sample trajectory gets one
	// degenerate zero-duration segment so that downstream clustering can
	// still reason about the object.
	Segments []Segment
	// Tolerance is δ(o'): the maximum segment tolerance.
	Tolerance float64
	// Method records how the trajectory was simplified.
	Method Method
}

// Len returns |o'|: the number of kept points.
func (st *Trajectory) Len() int { return len(st.Keep) }

// ReductionRatio returns the vertex reduction 1 − |o'|/|o| in [0, 1), the
// quantity plotted in Figure 15(a).
func (st *Trajectory) ReductionRatio() float64 {
	n := st.Orig.Len()
	if n == 0 {
		return 0
	}
	return 1 - float64(len(st.Keep))/float64(n)
}

// TimeInterval returns the simplified trajectory's time interval o'.τ, which
// equals the original trajectory's interval.
func (st *Trajectory) TimeInterval() (lo, hi model.Tick) {
	return st.Orig.Start(), st.Orig.End()
}

// SegmentCovering returns the index of a segment whose time interval covers
// tick t, or -1. Boundary ticks belong to the earlier segment.
func (st *Trajectory) SegmentCovering(t model.Tick) int {
	i := sort.Search(len(st.Segments), func(i int) bool {
		return st.Segments[i].EndTick() >= t
	})
	if i < len(st.Segments) && st.Segments[i].StartTick() <= t {
		return i
	}
	return -1
}

// SegmentsOverlapping returns the half-open index range [lo, hi) of segments
// whose time intervals intersect [from, to].
func (st *Trajectory) SegmentsOverlapping(from, to model.Tick) (lo, hi int) {
	lo = sort.Search(len(st.Segments), func(i int) bool {
		return st.Segments[i].EndTick() >= from
	})
	hi = sort.Search(len(st.Segments), func(i int) bool {
		return st.Segments[i].StartTick() > to
	})
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// deviation returns the deviation of sample idx from the chord between
// samples i and j under the given method: segment distance for DP/DP+,
// synchronous time-ratio distance for DP*.
func deviation(samples []model.Sample, i, j, idx int, m Method) float64 {
	chord := geom.Seg(samples[i].P, samples[j].P)
	if m != DPStar {
		return geom.DPL(samples[idx].P, chord)
	}
	ti, tj, t := samples[i].T, samples[j].T, samples[idx].T
	var ref geom.Point
	if tj == ti {
		ref = samples[i].P
	} else {
		f := float64(t-ti) / float64(tj-ti)
		ref = samples[i].P.Lerp(samples[j].P, f)
	}
	return geom.D(samples[idx].P, ref)
}

// splitPoint scans the interior of [i, j] and returns
//
//	maxDist — the maximum deviation of any interior sample, and
//	split   — the index to split at (-1 when maxDist ≤ delta, i.e., the
//	          range becomes a final segment).
//
// DP and DP* split at the farthest point; DP+ splits at the point closest to
// the middle among those exceeding delta (Section 6.1).
func splitPoint(samples []model.Sample, i, j int, delta float64, m Method) (maxDist float64, split int) {
	split = -1
	if m == DPPlus {
		mid := (i + j) / 2
		bestMidDist := j - i // larger than any |idx−mid| in range
		for idx := i + 1; idx < j; idx++ {
			d := deviation(samples, i, j, idx, m)
			if d > maxDist {
				maxDist = d
			}
			if d > delta {
				md := idx - mid
				if md < 0 {
					md = -md
				}
				if md < bestMidDist {
					bestMidDist = md
					split = idx
				}
			}
		}
		return maxDist, split
	}
	for idx := i + 1; idx < j; idx++ {
		d := deviation(samples, i, j, idx, m)
		if d > maxDist {
			maxDist = d
			if d > delta {
				split = idx
			}
		}
	}
	if maxDist <= delta {
		split = -1
	}
	return maxDist, split
}

// Simplify reduces tr to a simplified trajectory with tolerance delta using
// the chosen method. delta must be ≥ 0; the output always keeps the first
// and last sample, and each produced segment records its actual tolerance.
func Simplify(tr *model.Trajectory, delta float64, m Method) *Trajectory {
	st := &Trajectory{Object: tr.ID, Orig: tr, Method: m}
	n := tr.Len()
	if n == 1 {
		// Degenerate but representable: a stationary zero-duration segment.
		s := tr.Samples[0]
		st.Keep = []int{0}
		st.Segments = []Segment{{
			TimedSegment: geom.TimedSeg(s.P, s.P, float64(s.T), float64(s.T)),
			StartIdx:     0,
			EndIdx:       0,
		}}
		return st
	}

	samples := tr.Samples
	type frame struct{ i, j int }
	// Process ranges in order so kept indices come out sorted: a stack where
	// we always push the right half first.
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{0, n - 1})
	keep := []int{0}
	segTol := make(map[[2]int]float64)
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.j <= fr.i+1 {
			keep = append(keep, fr.j)
			segTol[[2]int{fr.i, fr.j}] = 0
			continue
		}
		maxDist, split := splitPoint(samples, fr.i, fr.j, delta, m)
		if split < 0 {
			keep = append(keep, fr.j)
			segTol[[2]int{fr.i, fr.j}] = maxDist
			continue
		}
		stack = append(stack, frame{split, fr.j})
		stack = append(stack, frame{fr.i, split})
	}

	st.Keep = keep
	st.Segments = make([]Segment, 0, len(keep)-1)
	for s := 0; s+1 < len(keep); s++ {
		i, j := keep[s], keep[s+1]
		tol := segTol[[2]int{i, j}]
		a, b := samples[i], samples[j]
		st.Segments = append(st.Segments, Segment{
			TimedSegment: geom.TimedSeg(a.P, b.P, float64(a.T), float64(b.T)),
			StartIdx:     i,
			EndIdx:       j,
			Tolerance:    tol,
		})
		if tol > st.Tolerance {
			st.Tolerance = tol
		}
	}
	return st
}

// SimplifyAll simplifies every trajectory of the database with the same
// tolerance and method, in ID order.
func SimplifyAll(db *model.DB, delta float64, m Method) []*Trajectory {
	out, _ := SimplifyAllWorkers(context.Background(), db, delta, m, 1)
	return out
}

// SimplifyAllWorkers is SimplifyAll on a bounded worker pool: trajectories
// are independent, and each worker writes only its own ID slot, so the
// result is identical (and identically ordered) for every worker count.
// workers ≤ 1 runs serially. Cancelling ctx aborts between trajectories
// and returns ctx.Err() with a nil slice.
func SimplifyAllWorkers(ctx context.Context, db *model.DB, delta float64, m Method, workers int) ([]*Trajectory, error) {
	trajs := db.Trajectories()
	out := make([]*Trajectory, len(trajs))
	if err := par.For(ctx, len(trajs), workers, func(id int) {
		out[id] = Simplify(trajs[id], delta, m)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SplitDistances runs the division process with δ = 0 and returns the split
// deviation recorded at every division step, sorted ascending. This is the
// tolerance profile the δ-selection guideline of Section 7.4 inspects for
// its largest-gap heuristic. Collinear interior points terminate ranges
// early (their deviation is 0), exactly as a δ = 0 run of the real
// algorithm would.
func SplitDistances(tr *model.Trajectory, m Method) []float64 {
	n := tr.Len()
	if n < 3 {
		return nil
	}
	samples := tr.Samples
	var dists []float64
	type frame struct{ i, j int }
	stack := []frame{{0, n - 1}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.j <= fr.i+1 {
			continue
		}
		maxDist, split := splitPoint(samples, fr.i, fr.j, 0, m)
		if split < 0 {
			continue
		}
		dists = append(dists, maxDist)
		stack = append(stack, frame{split, fr.j})
		stack = append(stack, frame{fr.i, split})
	}
	sort.Float64s(dists)
	return dists
}
