// Package dist distributes one convoy query across several convoyd
// shards: the coordinator splits the database's time range into
// overlapping windows (core.PartitionWindows), posts the same database
// bytes to every shard with one window each over the versioned shard RPC
// (POST /v1/shard/query), and merges the label-space partial answers back
// into the exact global answer with core.MergePartials.
//
// The merge happens in label space on purpose: shards and coordinators
// parse the database independently, so dense ObjectIDs are not comparable
// across processes — object labels are the only shared identity. Windows
// overlap by k−1 ticks, which makes the partition → local-mine → merge
// pipeline exact (see internal/core/partition.go for the argument), so a
// coordinator's answer equals a single node's over the same database.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/wire"
)

// ShardError reports one shard's failure during a fan-out. The serving
// layer maps it to 502 bad_gateway: the client's query was fine, a
// backend was not.
type ShardError struct {
	// Shard is the failing shard's base URL.
	Shard string
	// Status is the shard's HTTP status (0 when the request never
	// completed).
	Status int
	// Code is the shard's stable error code, when it answered an envelope.
	Code string
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("dist: shard %s answered %d (%s): %v", e.Shard, e.Status, e.Code, e.Err)
	}
	return fmt.Sprintf("dist: shard %s unreachable: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Client speaks the shard RPC to one convoyd running in -shard mode.
type Client struct {
	// Base is the shard's base URL (scheme://host:port, no trailing slash).
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Query posts the database bytes with the spec (whose From/To carry the
// shard's assigned window) and returns the shard's partial answer. Any
// failure — transport, non-200, malformed body — comes back as a
// *ShardError.
func (c *Client) Query(ctx context.Context, data []byte, spec wire.QuerySpec) (wire.ShardQueryResponse, error) {
	u := c.Base + "/v1/shard/query?" + spec.URLValues().Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return wire.ShardQueryResponse{}, &ShardError{Shard: c.Base, Err: err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return wire.ShardQueryResponse{}, &ShardError{Shard: c.Base, Err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return wire.ShardQueryResponse{}, &ShardError{Shard: c.Base, Status: resp.StatusCode, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		se := &ShardError{Shard: c.Base, Status: resp.StatusCode}
		var env wire.ErrorJSON
		if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
			se.Code = env.Error.Code
			se.Err = fmt.Errorf("%s", env.Error.Message)
		} else {
			se.Err = fmt.Errorf("%s", bytes.TrimSpace(body))
		}
		return wire.ShardQueryResponse{}, se
	}
	var out wire.ShardQueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return wire.ShardQueryResponse{}, &ShardError{Shard: c.Base, Status: resp.StatusCode, Err: fmt.Errorf("decode shard response: %w", err)}
	}
	if out.V != wire.ShardRPCVersion {
		return wire.ShardQueryResponse{}, &ShardError{Shard: c.Base, Status: resp.StatusCode,
			Err: fmt.Errorf("shard answered RPC v%d, want v%d", out.V, wire.ShardRPCVersion)}
	}
	return out, nil
}

// Coordinator fans one query out over a fixed shard set.
type Coordinator struct {
	// Shards are the shard base URLs; the time range is split into
	// len(Shards) overlapping windows, one per shard.
	Shards []string
	// HTTP is the transport shared by the per-shard clients; nil means
	// http.DefaultClient.
	HTTP *http.Client
}

// Query runs the spec over the database bytes distributed across the
// coordinator's shards: the window [lo, hi] (the database's time range,
// intersected with any client from/to) is partitioned with overlap k−1,
// every shard mines its window concurrently, and the partials merge into
// the exact global answer. The returned responses are the raw per-shard
// answers, window-ordered, for observability.
func (c *Coordinator) Query(ctx context.Context, data []byte, spec wire.QuerySpec, lo, hi model.Tick) ([]wire.ShardQueryResponse, []core.Window, error) {
	if len(c.Shards) == 0 {
		return nil, nil, fmt.Errorf("dist: no shards configured")
	}
	windows := core.PartitionWindows(lo, hi, spec.Params.K, len(c.Shards))
	resps := make([]wire.ShardQueryResponse, len(windows))
	errs := make([]error, len(windows))
	perr := par.For(ctx, len(windows), len(windows), func(i int) {
		s := spec
		from, to := windows[i].Lo, windows[i].Hi
		s.From, s.To = &from, &to
		// The shard mines its window locally; partitioning again inside the
		// shard is its own choice, not the coordinator's.
		s.Partitions = 0
		cl := Client{Base: c.Shards[i%len(c.Shards)], HTTP: c.HTTP}
		resps[i], errs[i] = cl.Query(ctx, data, s)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	if perr != nil {
		return nil, nil, perr
	}
	return resps, windows, nil
}

// Merge stitches per-window label-space partial answers into the exact
// global answer. id resolves a label to the coordinator's dense ID and
// label renders it back — both sides of the same database parse — so the
// merged output is ordered exactly like a single-node answer over that
// parse. A label no id can resolve is a protocol violation (the shard
// answered about objects the coordinator's database does not contain).
func Merge(windows []core.Window, parts [][]wire.ConvoyJSON, p core.Params,
	id func(string) (model.ObjectID, bool), label func(model.ObjectID) string) ([]wire.ConvoyJSON, error) {
	if len(parts) != len(windows) {
		return nil, fmt.Errorf("dist: %d partial answers for %d windows", len(parts), len(windows))
	}
	local := make([][]core.Convoy, len(parts))
	for i, part := range parts {
		local[i] = make([]core.Convoy, len(part))
		for j, cj := range part {
			ids := make([]model.ObjectID, len(cj.Objects))
			for n, lb := range cj.Objects {
				oid, ok := id(lb)
				if !ok {
					return nil, fmt.Errorf("dist: shard convoy references unknown object %q", lb)
				}
				ids[n] = oid
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			local[i][j] = core.Convoy{Objects: ids, Start: cj.Start, End: cj.End}
		}
	}
	merged := core.MergePartials(windows, local, p)
	out := make([]wire.ConvoyJSON, len(merged))
	for i, c := range merged {
		out[i] = wire.ConvoyToJSON(c, label)
	}
	return out, nil
}

// SortedLabelIndex builds id/label lookups over the union of labels in
// the partial answers, assigning dense IDs in lexicographic label order.
// It is the database-free fallback for callers that have no parse of
// their own to anchor ordering to.
func SortedLabelIndex(parts [][]wire.ConvoyJSON) (func(string) (model.ObjectID, bool), func(model.ObjectID) string) {
	set := map[string]struct{}{}
	for _, part := range parts {
		for _, c := range part {
			for _, lb := range c.Objects {
				set[lb] = struct{}{}
			}
		}
	}
	labels := make([]string, 0, len(set))
	for lb := range set {
		labels = append(labels, lb)
	}
	sort.Strings(labels)
	ids := make(map[string]model.ObjectID, len(labels))
	for i, lb := range labels {
		ids[lb] = model.ObjectID(i)
	}
	id := func(lb string) (model.ObjectID, bool) { oid, ok := ids[lb]; return oid, ok }
	label := func(oid model.ObjectID) string {
		if int(oid) < 0 || int(oid) >= len(labels) {
			return ""
		}
		return labels[oid]
	}
	return id, label
}
