package dist

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

func convoy(start, end int64, objects ...string) wire.ConvoyJSON {
	return wire.ConvoyJSON{Objects: objects, Start: start, End: end, Lifetime: end - start + 1}
}

// TestMergeBoundarySpan stitches a convoy that crosses the window boundary
// in label space: each shard reports its half, the merge glues them.
func TestMergeBoundarySpan(t *testing.T) {
	windows := []core.Window{{Lo: 0, Hi: 6}, {Lo: 4, Hi: 9}}
	parts := [][]wire.ConvoyJSON{
		{convoy(0, 6, "bus7", "bus9")},
		{convoy(4, 9, "bus7", "bus9")},
	}
	id, label := SortedLabelIndex(parts)
	got, err := Merge(windows, parts, core.Params{M: 2, K: 4, Eps: 1}, id, label)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("merged %d convoys, want 1: %+v", len(got), got)
	}
	want := convoy(0, 9, "bus7", "bus9")
	if got[0].Start != want.Start || got[0].End != want.End || got[0].Lifetime != want.Lifetime ||
		strings.Join(got[0].Objects, ",") != strings.Join(want.Objects, ",") {
		t.Fatalf("merged %+v, want %+v", got[0], want)
	}
}

// TestMergeUnknownLabel pins the protocol violation: a shard answering
// about an object the id lookup cannot resolve is an error, not a silent
// drop.
func TestMergeUnknownLabel(t *testing.T) {
	windows := []core.Window{{Lo: 0, Hi: 9}}
	parts := [][]wire.ConvoyJSON{{convoy(0, 9, "ghost", "bus9")}}
	id := func(string) (int, bool) { return 0, false }
	label := func(int) string { return "" }
	_, err := Merge(windows, parts, core.Params{M: 2, K: 4, Eps: 1}, id, label)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want unknown-object error naming the label", err)
	}
}

// TestMergeShapeMismatch rejects a partial count that does not match the
// window count.
func TestMergeShapeMismatch(t *testing.T) {
	id, label := SortedLabelIndex(nil)
	_, err := Merge([]core.Window{{Lo: 0, Hi: 9}}, nil, core.Params{M: 2, K: 2, Eps: 1}, id, label)
	if err == nil {
		t.Fatal("mismatched windows/parts accepted")
	}
}
