package model

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func mustTraj(t *testing.T, label string, samples ...Sample) *Trajectory {
	t.Helper()
	tr, err := NewTrajectory(label, samples)
	if err != nil {
		t.Fatalf("NewTrajectory(%q): %v", label, err)
	}
	return tr
}

func s(t Tick, x, y float64) Sample { return Sample{T: t, P: geom.Pt(x, y)} }

func TestNewTrajectoryValidation(t *testing.T) {
	if _, err := NewTrajectory("empty", nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: err = %v, want ErrEmpty", err)
	}
	if _, err := NewTrajectory("dup", []Sample{s(1, 0, 0), s(1, 1, 1)}); !errors.Is(err, ErrUnsorted) {
		t.Errorf("duplicate tick: err = %v, want ErrUnsorted", err)
	}
	if _, err := NewTrajectory("desc", []Sample{s(2, 0, 0), s(1, 1, 1)}); !errors.Is(err, ErrUnsorted) {
		t.Errorf("descending: err = %v, want ErrUnsorted", err)
	}
	if _, err := NewTrajectory("ok", []Sample{s(1, 0, 0), s(5, 1, 1)}); err != nil {
		t.Errorf("valid: err = %v", err)
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	tr := mustTraj(t, "o1", s(2, 0, 0), s(4, 4, 0), s(8, 4, 8))
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Start() != 2 || tr.End() != 8 {
		t.Errorf("Start/End = %d/%d", tr.Start(), tr.End())
	}
	if tr.Duration() != 7 {
		t.Errorf("Duration = %d", tr.Duration())
	}
	if !tr.Covers(2) || !tr.Covers(5) || !tr.Covers(8) || tr.Covers(1) || tr.Covers(9) {
		t.Error("Covers misbehaves")
	}
	if p, ok := tr.At(4); !ok || p != geom.Pt(4, 0) {
		t.Errorf("At(4) = %v,%v", p, ok)
	}
	if _, ok := tr.At(3); ok {
		t.Error("At(3) should report no sample")
	}
	if _, ok := tr.At(1); ok {
		t.Error("At before start should report no sample")
	}
	if got := tr.Bounds(); got != (geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 8}) {
		t.Errorf("Bounds = %v", got)
	}
	pts := tr.Points()
	if len(pts) != 3 || pts[1] != geom.Pt(4, 0) {
		t.Errorf("Points = %v", pts)
	}
}

func TestLocationAtInterpolation(t *testing.T) {
	tr := mustTraj(t, "o1", s(0, 0, 0), s(4, 8, 4), s(6, 8, 8))
	cases := []struct {
		t    Tick
		want geom.Point
		ok   bool
	}{
		{0, geom.Pt(0, 0), true},
		{4, geom.Pt(8, 4), true},
		{6, geom.Pt(8, 8), true},
		{2, geom.Pt(4, 2), true},  // halfway through first gap
		{1, geom.Pt(2, 1), true},  // quarter
		{5, geom.Pt(8, 6), true},  // halfway through second gap
		{-1, geom.Point{}, false}, // before span
		{7, geom.Point{}, false},  // after span
	}
	for _, c := range cases {
		got, ok := tr.LocationAt(c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("LocationAt(%d) = %v,%v want %v,%v", c.t, got, ok, c.want, c.ok)
		}
	}
}

func TestLocationAtSingleSample(t *testing.T) {
	tr := mustTraj(t, "dot", s(5, 1, 2))
	if p, ok := tr.LocationAt(5); !ok || p != geom.Pt(1, 2) {
		t.Errorf("LocationAt(5) = %v,%v", p, ok)
	}
	if _, ok := tr.LocationAt(4); ok {
		t.Error("LocationAt outside single-sample span should fail")
	}
	if tr.Duration() != 1 {
		t.Errorf("Duration = %d, want 1", tr.Duration())
	}
}

func TestClip(t *testing.T) {
	tr := mustTraj(t, "o", s(0, 0, 0), s(2, 2, 0), s(4, 4, 0), s(6, 6, 0))
	c := tr.Clip(1, 5)
	if c == nil || c.Len() != 2 || c.Start() != 2 || c.End() != 4 {
		t.Fatalf("Clip(1,5) = %+v", c)
	}
	if got := tr.Clip(7, 9); got != nil {
		t.Errorf("Clip outside = %+v, want nil", got)
	}
	if got := tr.Clip(0, 6); got == nil || got.Len() != 4 {
		t.Errorf("Clip full = %+v", got)
	}
	if got := tr.Clip(2, 2); got == nil || got.Len() != 1 {
		t.Errorf("Clip single = %+v", got)
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	if db.Len() != 0 {
		t.Error("new DB not empty")
	}
	if _, _, ok := db.TimeRange(); ok {
		t.Error("empty DB reported a time range")
	}
	a := mustTraj(t, "a", s(0, 0, 0), s(10, 1, 1))
	b := mustTraj(t, "b", s(5, 2, 2), s(20, 3, 3))
	ida := db.Add(a)
	idb := db.Add(b)
	if ida != 0 || idb != 1 {
		t.Errorf("ids = %d,%d", ida, idb)
	}
	if db.Traj(ida) != a || db.Traj(idb) != b {
		t.Error("Traj lookup broken")
	}
	if got, ok := db.ByLabel("b"); !ok || got != b {
		t.Error("ByLabel broken")
	}
	if _, ok := db.ByLabel("zzz"); ok {
		t.Error("ByLabel found a ghost")
	}
	lo, hi, ok := db.TimeRange()
	if !ok || lo != 0 || hi != 20 {
		t.Errorf("TimeRange = %d,%d,%v", lo, hi, ok)
	}
}

func TestDBStats(t *testing.T) {
	db := NewDB()
	// Object a: 11 ticks span, 11 samples (dense).
	var aa []Sample
	for i := Tick(0); i <= 10; i++ {
		aa = append(aa, s(i, float64(i), 0))
	}
	db.Add(mustTraj(t, "a", aa...))
	// Object b: span 0..20 (21 ticks), only 3 samples (sparse).
	db.Add(mustTraj(t, "b", s(0, 0, 1), s(10, 5, 1), s(20, 9, 1)))
	st := db.Stats()
	if st.NumObjects != 2 {
		t.Errorf("NumObjects = %d", st.NumObjects)
	}
	if st.TimeDomainLength != 21 {
		t.Errorf("TimeDomainLength = %d", st.TimeDomainLength)
	}
	if st.TotalPoints != 14 {
		t.Errorf("TotalPoints = %d", st.TotalPoints)
	}
	if st.AvgTrajLen != 7 {
		t.Errorf("AvgTrajLen = %g", st.AvgTrajLen)
	}
	if st.AvgDuration != 16 {
		t.Errorf("AvgDuration = %g", st.AvgDuration)
	}
	wantMissing := 1 - 14.0/32.0
	if diff := st.MissingFraction - wantMissing; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("MissingFraction = %g, want %g", st.MissingFraction, wantMissing)
	}
	if empty := NewDB().Stats(); empty.NumObjects != 0 || empty.TotalPoints != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestSnapshotAt(t *testing.T) {
	db := NewDB()
	db.Add(mustTraj(t, "a", s(0, 0, 0), s(10, 10, 0)))
	db.Add(mustTraj(t, "b", s(5, 0, 5), s(8, 3, 5)))
	db.Add(mustTraj(t, "c", s(20, 0, 0)))

	ids, pts := db.SnapshotAt(5)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("SnapshotAt(5) ids = %v", ids)
	}
	if pts[0] != geom.Pt(5, 0) { // interpolated midpoint
		t.Errorf("interpolated a at t=5: %v", pts[0])
	}
	if pts[1] != geom.Pt(0, 5) {
		t.Errorf("b at t=5: %v", pts[1])
	}
	ids, _ = db.SnapshotAt(15)
	if len(ids) != 0 {
		t.Errorf("SnapshotAt(15) ids = %v, want none", ids)
	}
	ids, _ = db.SnapshotAt(20)
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("SnapshotAt(20) ids = %v", ids)
	}
}

func TestVerifyWithin(t *testing.T) {
	db := NewDB()
	db.Add(mustTraj(t, "a", s(0, 0, 0), s(10, 10, 0)))
	db.Add(mustTraj(t, "b", s(0, 1, 0), s(10, 11, 0)))
	db.Add(mustTraj(t, "c", s(0, 50, 50)))
	if !db.VerifyWithin([]ObjectID{0, 1}, 5, 1.5) {
		t.Error("a,b should be within 1.5 at t=5")
	}
	if db.VerifyWithin([]ObjectID{0, 1}, 5, 0.5) {
		t.Error("a,b should not be within 0.5")
	}
	if db.VerifyWithin([]ObjectID{0, 2}, 5, 1000) {
		t.Error("c is not alive at t=5; check must fail")
	}
}

// Property: interpolation stays within the bounding box of the surrounding
// samples and is exact at sample ticks.
func TestPropInterpolationBounded(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	gen := func() *Trajectory {
		n := 2 + r.Intn(20)
		samples := make([]Sample, 0, n)
		tick := Tick(r.Intn(5))
		for i := 0; i < n; i++ {
			samples = append(samples, Sample{T: tick, P: geom.Pt(r.Float64()*100, r.Float64()*100)})
			tick += Tick(1 + r.Intn(5))
		}
		tr, err := NewTrajectory("p", samples)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	for i := 0; i < 200; i++ {
		tr := gen()
		for tick := tr.Start(); tick <= tr.End(); tick++ {
			p, ok := tr.LocationAt(tick)
			if !ok {
				t.Fatalf("LocationAt(%d) failed inside span", tick)
			}
			if !tr.Bounds().Contains(p) {
				t.Fatalf("interpolated point %v outside bounds %v", p, tr.Bounds())
			}
		}
		for _, sm := range tr.Samples {
			if p, ok := tr.LocationAt(sm.T); !ok || p != sm.P {
				t.Fatalf("LocationAt at sample tick %d = %v,%v want %v", sm.T, p, ok, sm.P)
			}
		}
	}
}

// Property: Clip returns exactly the samples inside the window.
func TestPropClipWindow(t *testing.T) {
	f := func(loRaw, hiRaw uint8) bool {
		lo, hi := Tick(loRaw%40), Tick(hiRaw%40)
		if lo > hi {
			lo, hi = hi, lo
		}
		samples := []Sample{s(0, 0, 0), s(7, 1, 1), s(13, 2, 2), s(21, 3, 3), s(34, 4, 4)}
		tr, err := NewTrajectory("x", samples)
		if err != nil {
			return false
		}
		c := tr.Clip(lo, hi)
		want := 0
		for _, sm := range samples {
			if sm.T >= lo && sm.T <= hi {
				want++
			}
		}
		if want == 0 {
			return c == nil
		}
		if c == nil || c.Len() != want {
			return false
		}
		for _, sm := range c.Samples {
			if sm.T < lo || sm.T > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
