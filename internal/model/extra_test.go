package model

import (
	"testing"

	"repro/internal/geom"
)

func TestDBBounds(t *testing.T) {
	db := NewDB()
	if !db.Bounds().IsEmpty() {
		t.Error("empty DB bounds should be empty")
	}
	db.Add(mustTraj(t, "a", s(0, 1, 2), s(1, 5, -3)))
	db.Add(mustTraj(t, "b", s(0, -4, 8)))
	want := geom.Rect{MinX: -4, MinY: -3, MaxX: 5, MaxY: 8}
	if got := db.Bounds(); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
}

func TestSumTrajLen(t *testing.T) {
	db := NewDB()
	if db.SumTrajLen() != 0 {
		t.Error("empty SumTrajLen != 0")
	}
	db.Add(mustTraj(t, "a", s(0, 0, 0), s(1, 1, 1)))
	db.Add(mustTraj(t, "b", s(0, 0, 0), s(2, 1, 1), s(4, 2, 2)))
	if got := db.SumTrajLen(); got != 5 {
		t.Errorf("SumTrajLen = %d, want 5", got)
	}
}

func TestTickSentinels(t *testing.T) {
	if MaxTick <= 0 || MinTick >= 0 || MaxTick <= MinTick {
		t.Error("tick sentinels wrong")
	}
}

func TestDuplicateLabelKeepsFirst(t *testing.T) {
	db := NewDB()
	a := mustTraj(t, "dup", s(0, 0, 0))
	b := mustTraj(t, "dup", s(0, 9, 9))
	db.Add(a)
	db.Add(b)
	got, ok := db.ByLabel("dup")
	if !ok || got != a {
		t.Error("duplicate label should resolve to the first trajectory")
	}
}

func TestTrajectoryCloneSemantics(t *testing.T) {
	// Clip shares storage with the source; mutating the clip's view is
	// visible through the parent — documented slice semantics.
	tr := mustTraj(t, "x", s(0, 0, 0), s(1, 1, 1), s(2, 2, 2))
	c := tr.Clip(1, 2)
	if c.Samples[0].T != 1 {
		t.Fatalf("clip = %+v", c.Samples)
	}
	if &c.Samples[0] != &tr.Samples[1] {
		t.Error("Clip should share backing storage")
	}
}
