// Package model defines the trajectory database model of the paper's
// Section 3: a discrete time domain {t1, …, tT}, trajectories as sequences
// of timestamped locations with per-object lifespans, possibly irregular
// sampling (missing ticks), and a DB container that exposes the global
// statistics used to drive the experiments (Table 3).
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Tick is a discrete time point in the ordered time domain {t1, …, tT}.
type Tick = int64

// ObjectID identifies a moving object within a DB. IDs are small dense
// integers assigned by the DB so that algorithms can use them as slice
// indices and set members cheaply.
type ObjectID = int

// Sample is a timestamped location (x, y, t): the location of an object at
// time T.
type Sample struct {
	T Tick
	P geom.Point
}

// Trajectory is the recorded movement of one object: a time-ordered sequence
// of samples. Sampling may be irregular — ticks may be missing between the
// first and last sample — and different trajectories may cover different
// time intervals (objects appear and disappear at arbitrary times).
type Trajectory struct {
	// ID is the dense object identifier assigned by the DB (index order).
	ID ObjectID
	// Label is an optional external name (e.g., the source file's object
	// key). It plays no role in the algorithms.
	Label string
	// Samples is strictly increasing in T.
	Samples []Sample
}

// ErrUnsorted is returned when constructing a trajectory from samples that
// are not strictly increasing in time.
var ErrUnsorted = errors.New("model: samples not strictly increasing in time")

// ErrEmpty is returned when constructing a trajectory with no samples.
var ErrEmpty = errors.New("model: trajectory has no samples")

// NewTrajectory validates the samples (non-empty, strictly increasing time)
// and returns a trajectory with the given label. The ID is assigned when the
// trajectory is added to a DB.
func NewTrajectory(label string, samples []Sample) (*Trajectory, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			return nil, fmt.Errorf("%w: t[%d]=%d after t[%d]=%d (label %q)",
				ErrUnsorted, i, samples[i].T, i-1, samples[i-1].T, label)
		}
	}
	return &Trajectory{Label: label, Samples: samples}, nil
}

// Len returns the number of recorded samples (the |o| of Section 7.4).
func (tr *Trajectory) Len() int { return len(tr.Samples) }

// Start returns the first sample time t_a.
func (tr *Trajectory) Start() Tick { return tr.Samples[0].T }

// End returns the last sample time t_b.
func (tr *Trajectory) End() Tick { return tr.Samples[len(tr.Samples)-1].T }

// Duration returns the trajectory's time-interval length o.τ = t_b − t_a + 1
// in ticks (a single-sample trajectory has duration 1).
func (tr *Trajectory) Duration() int64 { return int64(tr.End()-tr.Start()) + 1 }

// Covers reports whether t lies in the trajectory's time interval
// [Start, End], i.e., t ∈ o.τ.
func (tr *Trajectory) Covers(t Tick) bool { return t >= tr.Start() && t <= tr.End() }

// sampleIndex returns the index of the last sample with time ≤ t, or -1 if
// t precedes the first sample.
func (tr *Trajectory) sampleIndex(t Tick) int {
	return sort.Search(len(tr.Samples), func(i int) bool {
		return tr.Samples[i].T > t
	}) - 1
}

// At returns the recorded location at exactly tick t, if a sample exists.
func (tr *Trajectory) At(t Tick) (geom.Point, bool) {
	i := tr.sampleIndex(t)
	if i >= 0 && tr.Samples[i].T == t {
		return tr.Samples[i].P, true
	}
	return geom.Point{}, false
}

// LocationAt returns the object's location at tick t, interpolating a
// virtual point linearly between the surrounding samples when t falls in a
// sampling gap (the virtual-location rule of Section 4). It reports false
// when t lies outside the trajectory's time interval.
func (tr *Trajectory) LocationAt(t Tick) (geom.Point, bool) {
	if !tr.Covers(t) {
		return geom.Point{}, false
	}
	i := tr.sampleIndex(t)
	s := tr.Samples[i]
	if s.T == t {
		return s.P, true
	}
	// t is strictly between samples i and i+1 (Covers guarantees i+1 exists).
	next := tr.Samples[i+1]
	f := float64(t-s.T) / float64(next.T-s.T)
	return s.P.Lerp(next.P, f), true
}

// Bounds returns the spatial bounding box of all samples.
func (tr *Trajectory) Bounds() geom.Rect {
	r := geom.EmptyRect()
	for _, s := range tr.Samples {
		r = r.ExtendPoint(s.P)
	}
	return r
}

// Clip returns a new trajectory containing only the samples with
// lo ≤ t ≤ hi (sharing the underlying sample storage). It returns nil when
// no sample falls in the range.
func (tr *Trajectory) Clip(lo, hi Tick) *Trajectory {
	i := sort.Search(len(tr.Samples), func(i int) bool { return tr.Samples[i].T >= lo })
	j := sort.Search(len(tr.Samples), func(i int) bool { return tr.Samples[i].T > hi })
	if i >= j {
		return nil
	}
	return &Trajectory{ID: tr.ID, Label: tr.Label, Samples: tr.Samples[i:j]}
}

// Points returns the sample locations in time order.
func (tr *Trajectory) Points() []geom.Point {
	pts := make([]geom.Point, len(tr.Samples))
	for i, s := range tr.Samples {
		pts[i] = s.P
	}
	return pts
}

// DB is a trajectory database: a set of trajectories with dense ObjectIDs.
type DB struct {
	trajs   []*Trajectory
	byLabel map[string]ObjectID
}

// NewDB returns an empty trajectory database.
func NewDB() *DB {
	return &DB{byLabel: make(map[string]ObjectID)}
}

// Add assigns the next dense ObjectID to the trajectory, registers its label
// (when non-empty and unique), and returns the assigned ID.
func (db *DB) Add(tr *Trajectory) ObjectID {
	id := len(db.trajs)
	tr.ID = id
	db.trajs = append(db.trajs, tr)
	if tr.Label != "" {
		if _, dup := db.byLabel[tr.Label]; !dup {
			db.byLabel[tr.Label] = id
		}
	}
	return id
}

// Len returns the number of trajectories N.
func (db *DB) Len() int { return len(db.trajs) }

// Traj returns the trajectory with the given ID; it panics on an invalid ID,
// matching slice-index semantics.
func (db *DB) Traj(id ObjectID) *Trajectory { return db.trajs[id] }

// Trajectories returns the backing slice of trajectories in ID order.
// Callers must not reorder it.
func (db *DB) Trajectories() []*Trajectory { return db.trajs }

// ByLabel returns the trajectory with the given label, if registered.
func (db *DB) ByLabel(label string) (*Trajectory, bool) {
	id, ok := db.byLabel[label]
	if !ok {
		return nil, false
	}
	return db.trajs[id], true
}

// TimeRange returns the global time domain [lo, hi] covered by the database
// and false when the database is empty.
func (db *DB) TimeRange() (lo, hi Tick, ok bool) {
	if len(db.trajs) == 0 {
		return 0, 0, false
	}
	lo, hi = db.trajs[0].Start(), db.trajs[0].End()
	for _, tr := range db.trajs[1:] {
		if s := tr.Start(); s < lo {
			lo = s
		}
		if e := tr.End(); e > hi {
			hi = e
		}
	}
	return lo, hi, true
}

// Bounds returns the spatial bounding box of the whole database.
func (db *DB) Bounds() geom.Rect {
	r := geom.EmptyRect()
	for _, tr := range db.trajs {
		r = r.Union(tr.Bounds())
	}
	return r
}

// Stats summarises the database with the quantities reported in Table 3.
type Stats struct {
	NumObjects       int     // N
	TimeDomainLength int64   // T = hi − lo + 1
	AvgTrajLen       float64 // average number of recorded points per trajectory
	TotalPoints      int     // data size (points)
	AvgDuration      float64 // average o.τ in ticks
	MissingFraction  float64 // fraction of in-span ticks without a sample
}

// Stats computes the database statistics in a single pass.
func (db *DB) Stats() Stats {
	s := Stats{NumObjects: len(db.trajs)}
	if len(db.trajs) == 0 {
		return s
	}
	lo, hi, _ := db.TimeRange()
	s.TimeDomainLength = int64(hi-lo) + 1
	var dur, inSpan int64
	for _, tr := range db.trajs {
		s.TotalPoints += tr.Len()
		dur += tr.Duration()
		inSpan += tr.Duration()
	}
	s.AvgTrajLen = float64(s.TotalPoints) / float64(len(db.trajs))
	s.AvgDuration = float64(dur) / float64(len(db.trajs))
	if inSpan > 0 {
		s.MissingFraction = 1 - float64(s.TotalPoints)/float64(inSpan)
	}
	if s.MissingFraction < 0 {
		s.MissingFraction = 0
	}
	return s
}

// SnapshotAt collects the (interpolated) locations of every object alive at
// tick t — the Ot of Algorithm 1. The returned slices are parallel: ids[i]
// is the object whose location is pts[i].
func (db *DB) SnapshotAt(t Tick) (ids []ObjectID, pts []geom.Point) {
	for _, tr := range db.trajs {
		if p, ok := tr.LocationAt(t); ok {
			ids = append(ids, tr.ID)
			pts = append(pts, p)
		}
	}
	return ids, pts
}

// VerifyWithin reports whether every pair of objects drawn from group is
// within the given distance at tick t, using interpolated locations. Objects
// not alive at t make the check fail. Used by tests and the flock baseline.
func (db *DB) VerifyWithin(group []ObjectID, t Tick, dist float64) bool {
	pts := make([]geom.Point, len(group))
	for i, id := range group {
		p, ok := db.Traj(id).LocationAt(t)
		if !ok {
			return false
		}
		pts[i] = p
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if geom.D(pts[i], pts[j]) > dist {
				return false
			}
		}
	}
	return true
}

// SumTrajLen returns Σ|oi|, the total number of recorded points.
func (db *DB) SumTrajLen() int {
	n := 0
	for _, tr := range db.trajs {
		n += tr.Len()
	}
	return n
}

// MaxTick is a sentinel larger than any valid tick.
const MaxTick = Tick(math.MaxInt64)

// MinTick is a sentinel smaller than any valid tick.
const MinTick = Tick(math.MinInt64)
