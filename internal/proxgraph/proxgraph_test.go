package proxgraph

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/tsio"
)

func TestComponents(t *testing.T) {
	edges := []core.ProxEdge{
		{A: 1, B: 2, W: 1},
		{A: 2, B: 3, W: 1},
		{A: 7, B: 8, W: 0.5}, // below threshold
		{A: 5, B: 6, W: 2},
		{A: 9, B: 9, W: 1}, // degenerate self edge: a 1-member component
	}
	got := Components(edges, 1, 2)
	want := [][]model.ObjectID{{1, 2, 3}, {5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Components = %v, want %v", got, want)
	}
	if got := Components(edges, 1, 4); len(got) != 0 {
		t.Fatalf("Components(m=4) = %v, want none", got)
	}
	if got := Components(nil, 1, 2); len(got) != 0 {
		t.Fatalf("Components(no edges) = %v, want none", got)
	}
	// Threshold 0.25 admits the (7,8) edge too.
	got = Components(edges, 0.25, 2)
	want = [][]model.ObjectID{{1, 2, 3}, {5, 6}, {7, 8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Components(minW=0.25) = %v, want %v", got, want)
	}
}

func TestClustererSnapshotEdges(t *testing.T) {
	// The stateless Clusterer (the streaming path) clusters pushed edges.
	key := core.ClusterKey{Eps: 1, M: 2, Backend: Backend}
	snap := core.TickSnapshot{T: 3, Edges: []core.ProxEdge{{A: 0, B: 1, W: 1}}}
	got := Clusterer{}.Clusters(key, snap)
	if want := [][]model.ObjectID{{0, 1}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters = %v, want %v", got, want)
	}
	// With a Log attached but edges pushed, the pushed edges win.
	l := NewLog()
	if err := l.Add("x", "y", 3, 5); err != nil {
		t.Fatal(err)
	}
	got = Clusterer{Log: l}.Clusters(key, snap)
	if want := [][]model.ObjectID{{0, 1}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters (edges precedence) = %v, want %v", got, want)
	}
	// No pushed edges: the tick's edges come from the log.
	got = Clusterer{Log: l}.Clusters(key, core.TickSnapshot{T: 3})
	if want := [][]model.ObjectID{{0, 1}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Clusters (log lookup) = %v, want %v", got, want)
	}
}

func TestLogValidation(t *testing.T) {
	l := NewLog()
	if err := l.Add("", "b", 1, 1); err == nil {
		t.Error("empty label accepted")
	}
	if err := l.Add("a", "a", 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := l.Add("a", "b", 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := l.Add("a", "b", 1, nan()); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := l.Add("a", "b", 1, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

// TestHandCheckedConvoy is the fixture of the acceptance criteria: a
// coordinate-free contact log whose only (m=3, k=3) convoy is {a, b, c}
// over ticks [1, 5], hand-checked. The d–a contact at tick 1 is filtered
// by the weight threshold; at tick 6 the b–c contact stops and the
// remaining component {a, b} is below m.
func TestHandCheckedConvoy(t *testing.T) {
	l := NewLog()
	for tick := model.Tick(1); tick <= 5; tick++ {
		if err := l.Add("a", "b", tick, 1); err != nil {
			t.Fatal(err)
		}
		if err := l.Add("b", "c", tick, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Add("d", "a", 1, 0.5); err != nil { // below Eps=1
		t.Fatal(err)
	}
	if err := l.Add("a", "b", 6, 1); err != nil { // component of 2 < m
		t.Fatal(err)
	}

	db, err := l.DB()
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{M: 3, K: 3, Eps: 1}
	res, err := core.NewQuery(core.WithParams(p), core.WithCMC(), core.WithClusterer(l.Clusterer())).
		Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d convoys (%v), want 1", len(res), res)
	}
	c := res[0]
	var labels []string
	for _, id := range c.Objects {
		labels = append(labels, l.Label(id))
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(labels, want) {
		t.Errorf("convoy objects = %v, want %v", labels, want)
	}
	if c.Start != 1 || c.End != 5 {
		t.Errorf("convoy interval = [%d, %d], want [1, 5]", c.Start, c.End)
	}
}

// labeledConvoys projects a result onto object labels so answers from
// databases with different dense-ID assignments compare.
func labeledConvoys(res core.Result, label func(model.ObjectID) string) []string {
	out := make([]string, 0, len(res))
	for _, c := range res {
		ls := make([]string, len(c.Objects))
		for i, id := range c.Objects {
			ls[i] = label(id)
		}
		sort.Strings(ls)
		out = append(out, fmt.Sprintf("%v@[%d,%d]", ls, c.Start, c.End))
	}
	sort.Strings(out)
	return out
}

// TestDBSCANEquivalenceM2 pins the m=2 coincidence of the two density
// notions: a DBSCAN cluster at minPts=2 is exactly a connected component
// of the ≤-eps distance graph, so CMC over a trajectory database and CMC
// over its derived contact log (threshold 1, weight-1 edges) find the
// same convoys. Only m=2 — at larger m DBSCAN's core-point requirement
// deliberately diverges from plain connectivity.
func TestDBSCANEquivalenceM2(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		db := randomWalkDB(t, rand.New(rand.NewSource(int64(100+trial))))
		p := core.Params{M: 2, K: 2, Eps: 1.5}
		want, err := core.CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		l, err := FromDB(db, p.Eps)
		if err != nil {
			t.Fatal(err)
		}
		ldb, err := l.DB()
		if err != nil {
			t.Fatal(err)
		}
		pg := core.Params{M: 2, K: 2, Eps: 1} // Eps thresholds weight-1 edges
		got, err := core.NewQuery(core.WithParams(pg), core.WithCMC(), core.WithClusterer(l.Clusterer())).
			Run(context.Background(), ldb)
		if err != nil {
			t.Fatal(err)
		}
		dbLabel := func(id model.ObjectID) string { return db.Traj(id).Label }
		wantL := labeledConvoys(want, dbLabel)
		gotL := labeledConvoys(got, l.Label)
		if !reflect.DeepEqual(wantL, gotL) {
			t.Fatalf("trial %d: proxgraph convoys %v != dbscan convoys %v", trial, gotL, wantL)
		}
	}
}

// randomWalkDB builds a small random-walk trajectory database with labels
// o0..oN and occasional gaps at the span edges.
func randomWalkDB(t *testing.T, rng *rand.Rand) *model.DB {
	t.Helper()
	db := model.NewDB()
	n := 4 + rng.Intn(4)
	T := 6 + rng.Intn(5)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*6, rng.Float64()*6
		lo := rng.Intn(2)
		hi := T - rng.Intn(2)
		var samples []model.Sample
		for tick := lo; tick < hi; tick++ {
			x += rng.Float64()*2 - 1
			y += rng.Float64()*2 - 1
			samples = append(samples, model.Sample{T: model.Tick(tick), P: geom.Pt(x, y)})
		}
		if len(samples) == 0 {
			samples = []model.Sample{{T: 0, P: geom.Pt(x, y)}}
		}
		tr, err := model.NewTrajectory(fmt.Sprintf("o%d", i), samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	l := NewLog()
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(l.Add("badger", "fox", 3, 1.5))
	check(l.Add("fox", "owl", 1, 0.25))
	check(l.Add("badger", "owl", 3, 2))
	buf := &bytes.Buffer{}
	check(tsio.WriteEdgeCSV(buf, l.Records()))
	back, err := ReadLog(buf)
	check(err)
	if !reflect.DeepEqual(back.Records(), l.Records()) {
		t.Fatalf("round trip records = %v, want %v", back.Records(), l.Records())
	}
	if lo, hi, ok := back.TimeRange(); !ok || lo != 1 || hi != 3 {
		t.Fatalf("TimeRange = %d,%d,%v", lo, hi, ok)
	}
	if back.Objects() != 3 {
		t.Fatalf("Objects = %d, want 3", back.Objects())
	}
}

// TestSynthesizedDB checks the Log→DB bridge invariants: IDs and labels
// match the log, every object is alive over exactly its contact span.
func TestSynthesizedDB(t *testing.T) {
	l := NewLog()
	if err := l.Add("a", "b", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("b", "c", 5, 1); err != nil {
		t.Fatal(err)
	}
	db, err := l.DB()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("db.Len = %d, want 3", db.Len())
	}
	for id := 0; id < 3; id++ {
		if got, want := db.Traj(id).Label, l.Label(id); got != want {
			t.Errorf("traj %d label = %q, want %q", id, got, want)
		}
	}
	// b spans ticks 2..5; a only tick 2; c only tick 5.
	ids, _ := db.SnapshotAt(3)
	if want := []model.ObjectID{1}; !reflect.DeepEqual(ids, want) {
		t.Errorf("alive at tick 3 = %v, want %v", ids, want)
	}
	// Memoization: same pointer until the next Add.
	db2, _ := l.DB()
	if db2 != db {
		t.Error("DB() not memoized")
	}
	if err := l.Add("c", "d", 6, 1); err != nil {
		t.Fatal(err)
	}
	db3, _ := l.DB()
	if db3 == db {
		t.Error("DB() not invalidated by Add")
	}
	if db3.Len() != 4 {
		t.Fatalf("db3.Len = %d, want 4", db3.Len())
	}
}
