// Package proxgraph clusters proximity logs: coordinate-free records of
// the form "objects a and b were in contact at tick t with weight w",
// the setting of network/indoor convoy discovery (Bluetooth sightings,
// access-point co-presence, contact tracing) where no positions exist.
//
// Density here is graph connectivity instead of Euclidean DBSCAN: at each
// tick, the edges whose weight reaches the clustering key's Eps form a
// graph, and every connected component with at least M members is a
// cluster. Chained across ticks by the unchanged CMC machinery this
// yields convoys "≥ m objects pairwise-connected through contacts for ≥ k
// consecutive ticks". For m = 2 the two density notions coincide exactly
// (a DBSCAN cluster at minPts 2 is a connected component of the
// ≤-eps-distance graph), which the cross-backend property tests exploit;
// for larger m they deliberately differ — components have no core-point
// requirement.
//
// The package provides Clusterer (a core.Clusterer with Name
// "proxgraph"), Log (an edge store that can synthesize a minimal
// model.DB so the batch Query engine can drive it), and FromDB (derive a
// contact log from a trajectory database — the bridge the benchmarks
// use).
package proxgraph

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/tsio"
)

// Backend is the clusterer name, the value of ClusterKey.Backend and the
// wire/flag spelling selecting this backend.
const Backend = "proxgraph"

// Components returns the connected components of the proximity graph
// formed by the edges with W ≥ minW, keeping components with at least m
// members. Members are ascending object IDs; components are ordered by
// their smallest member. Objects appear only as edge endpoints — an
// isolated object is in no component.
func Components(edges []core.ProxEdge, minW float64, m int) [][]model.ObjectID {
	parent := make(map[model.ObjectID]model.ObjectID)
	var find func(x model.ObjectID) model.ObjectID
	find = func(x model.ObjectID) model.ObjectID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, e := range edges {
		if e.W < minW {
			continue
		}
		ra, rb := find(e.A), find(e.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := make(map[model.ObjectID][]model.ObjectID)
	for x := range parent {
		r := find(x)
		groups[r] = append(groups[r], x)
	}
	var out [][]model.ObjectID
	for _, g := range groups {
		if len(g) < m {
			continue
		}
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Clusterer is the graph-connectivity core.Clusterer. It clusters the
// snapshot's Edges; when a snapshot carries none and Log is set, the
// tick's edges are looked up there (the batch path, where the Query
// engine replays a synthesized position database that has no edges). The
// zero value clusters pushed edges only — the streaming path, where the
// serve feed supplies each tick's edges in the snapshot.
type Clusterer struct {
	Log *Log
}

// Name returns Backend.
func (Clusterer) Name() string { return Backend }

// Clusters returns the connected components of the tick's proximity graph
// at weight threshold key.Eps with at least key.M members.
func (c Clusterer) Clusters(key core.ClusterKey, snap core.TickSnapshot) [][]model.ObjectID {
	edges := snap.Edges
	if edges == nil && c.Log != nil {
		edges = c.Log.EdgesAt(snap.T)
	}
	return Components(edges, key.Eps, key.M)
}

// Log is an in-memory proximity log: interned object labels (dense IDs in
// order of first appearance, like tsio trajectory loading) and per-tick
// edge lists. Not safe for concurrent mutation.
type Log struct {
	labels  []string
	byLabel map[string]model.ObjectID
	ticks   map[model.Tick][]core.ProxEdge
	span    map[model.ObjectID][2]model.Tick // first/last contact tick
	lo, hi  model.Tick
	some    bool
	db      *model.DB // memoized DB(); reset by Add
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{
		byLabel: make(map[string]model.ObjectID),
		ticks:   make(map[model.Tick][]core.ProxEdge),
		span:    make(map[model.ObjectID][2]model.Tick),
	}
}

// intern returns the dense ID for a label, assigning the next one on
// first appearance.
func (l *Log) intern(label string) model.ObjectID {
	if id, ok := l.byLabel[label]; ok {
		return id
	}
	id := model.ObjectID(len(l.labels))
	l.byLabel[label] = id
	l.labels = append(l.labels, label)
	return id
}

// Add records one contact edge. Labels must be non-empty and distinct
// (no self-loops); the weight must be finite and ≥ 0. Repeated (a, b)
// contacts at one tick are kept as separate edges — each is thresholded
// independently, and connectivity is idempotent.
func (l *Log) Add(a, b string, t model.Tick, w float64) error {
	if a == "" || b == "" {
		return fmt.Errorf("proxgraph: empty object label in edge (%q, %q) at tick %d", a, b, t)
	}
	if a == b {
		return fmt.Errorf("proxgraph: self-loop on %q at tick %d", a, t)
	}
	if !geom.Finite(w) || w < 0 {
		return fmt.Errorf("proxgraph: bad weight %g for (%q, %q) at tick %d (want finite ≥ 0)", w, a, b, t)
	}
	ia, ib := l.intern(a), l.intern(b)
	l.ticks[t] = append(l.ticks[t], core.ProxEdge{A: ia, B: ib, W: w})
	for _, id := range []model.ObjectID{ia, ib} {
		if sp, ok := l.span[id]; ok {
			if t < sp[0] {
				sp[0] = t
			}
			if t > sp[1] {
				sp[1] = t
			}
			l.span[id] = sp
		} else {
			l.span[id] = [2]model.Tick{t, t}
		}
	}
	if !l.some || t < l.lo {
		l.lo = t
	}
	if !l.some || t > l.hi {
		l.hi = t
	}
	l.some = true
	l.db = nil
	return nil
}

// AddRecord adds one parsed tsio edge record.
func (l *Log) AddRecord(r tsio.EdgeRecord) error { return l.Add(r.A, r.B, r.T, r.W) }

// Objects returns the number of distinct interned objects.
func (l *Log) Objects() int { return len(l.labels) }

// Label returns the label of a dense object ID ("" when out of range).
func (l *Log) Label(id model.ObjectID) string {
	if id < 0 || int(id) >= len(l.labels) {
		return ""
	}
	return l.labels[id]
}

// ID returns the dense ID of a label.
func (l *Log) ID(label string) (model.ObjectID, bool) {
	id, ok := l.byLabel[label]
	return id, ok
}

// TimeRange returns the first and last tick with an edge.
func (l *Log) TimeRange() (lo, hi model.Tick, ok bool) { return l.lo, l.hi, l.some }

// EdgesAt returns the edges recorded at tick t, in insertion order. The
// slice is the log's own storage — callers must not mutate it.
func (l *Log) EdgesAt(t model.Tick) []core.ProxEdge { return l.ticks[t] }

// Records returns every edge as tsio records (labels restored), ordered
// by tick and, within a tick, by insertion — a WriteEdgeCSV round trip
// reproduces the log.
func (l *Log) Records() []tsio.EdgeRecord {
	ts := make([]model.Tick, 0, len(l.ticks))
	for t := range l.ticks {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var out []tsio.EdgeRecord
	for _, t := range ts {
		for _, e := range l.ticks[t] {
			out = append(out, tsio.EdgeRecord{A: l.labels[e.A], B: l.labels[e.B], T: t, W: e.W})
		}
	}
	return out
}

// Clusterer returns the log's graph-connectivity backend: a Clusterer
// that resolves each tick's edges from this log, for batch queries over
// DB() (core.WithClusterer(log.Clusterer())).
func (l *Log) Clusterer() core.Clusterer { return Clusterer{Log: l} }

// DB synthesizes the minimal trajectory database that keeps every logged
// object alive over its contact span: one placeholder sample at the first
// contact tick and one at the last (positions are synthetic — x is the
// dense ID — and never inspected by the proxgraph backend). Dense IDs and
// labels match the log's exactly, so convoys discovered over this DB name
// the log's objects. The result is memoized until the next Add; treat it
// as read-only.
func (l *Log) DB() (*model.DB, error) {
	if l.db != nil {
		return l.db, nil
	}
	db := model.NewDB()
	for id, label := range l.labels {
		sp := l.span[model.ObjectID(id)]
		samples := []model.Sample{{T: sp[0], P: geom.Pt(float64(id), 0)}}
		if sp[1] > sp[0] {
			samples = append(samples, model.Sample{T: sp[1], P: geom.Pt(float64(id), 0)})
		}
		tr, err := model.NewTrajectory(label, samples)
		if err != nil {
			return nil, fmt.Errorf("proxgraph: object %q: %w", label, err)
		}
		db.Add(tr)
	}
	l.db = db
	return db, nil
}

// ReadLog parses a CSV edge list (header "a,b,t,w", see tsio.ReadEdgeCSV)
// into a log.
func ReadLog(r io.Reader) (*Log, error) {
	recs, err := tsio.ReadEdgeCSV(r)
	if err != nil {
		return nil, err
	}
	l := NewLog()
	for _, rec := range recs {
		if err := l.AddRecord(rec); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// LoadLog reads a CSV edge list from a file.
func LoadLog(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("proxgraph: %w", err)
	}
	defer f.Close()
	return ReadLog(f)
}

// FromDB derives a contact log from a trajectory database: at every tick,
// each pair of alive objects within distance r contributes a weight-1
// edge. Labels carry over (empty ones as "o<ID>"); interning follows
// first contact, so dense IDs need not match the source database's. This
// is the benchmark bridge — with threshold Eps ≤ 1 it turns a geometric
// dataset into the proximity-graph view of the same movement.
func FromDB(db *model.DB, r float64) (*Log, error) {
	l := NewLog()
	lo, hi, ok := db.TimeRange()
	if !ok {
		return l, nil
	}
	label := func(id model.ObjectID) string {
		if s := db.Traj(id).Label; s != "" {
			return s
		}
		return fmt.Sprintf("o%d", id)
	}
	for t := lo; t <= hi; t++ {
		ids, pts := db.SnapshotAt(t)
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				if geom.D(pts[i], pts[j]) <= r {
					if err := l.Add(label(ids[i]), label(ids[j]), t, 1); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return l, nil
}
