package grid

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestPointIndexSmall(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 0.5), geom.Pt(10, 10), geom.Pt(-3, 0),
	}
	idx := NewPointIndex(pts, 1.0)
	if idx.Len() != 5 {
		t.Fatalf("Len = %d", idx.Len())
	}
	got := idx.Within(geom.Pt(0, 0), 1.0, nil)
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v", got, want)
		}
	}
	if got := idx.Within(geom.Pt(100, 100), 5, nil); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
}

func TestPointIndexBoundaryInclusive(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	idx := NewPointIndex(pts, 2.5)
	got := idx.Within(geom.Pt(0, 0), 5, nil) // distance exactly 5
	if len(got) != 2 {
		t.Errorf("boundary distance should be inclusive, got %v", got)
	}
	got = idx.Within(geom.Pt(0, 0), 4.999, nil)
	if len(got) != 1 {
		t.Errorf("just-under distance should exclude, got %v", got)
	}
}

func TestPointIndexNegativeCoords(t *testing.T) {
	pts := []geom.Point{geom.Pt(-0.5, -0.5), geom.Pt(-1.5, -1.5), geom.Pt(0.5, 0.5)}
	idx := NewPointIndex(pts, 1.0)
	got := idx.Within(geom.Pt(-1, -1), 1.0, nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("negative-coordinate query = %v", got)
	}
}

func TestPointIndexMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		n := 1 + r.Intn(300)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*100-50, r.Float64()*100-50)
		}
		cell := 0.5 + r.Float64()*10
		idx := NewPointIndex(pts, cell)
		for q := 0; q < 10; q++ {
			p := geom.Pt(r.Float64()*120-60, r.Float64()*120-60)
			radius := r.Float64() * 15
			got := idx.Within(p, radius, nil)
			sort.Ints(got)
			var want []int
			for i, pt := range pts {
				if geom.D(p, pt) <= radius {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("Within mismatch: got %d, want %d (cell=%g r=%g)", len(got), len(want), cell, radius)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Within mismatch at %d: %v vs %v", i, got, want)
				}
			}
		}
	}
}

func TestRectIndexSmall(t *testing.T) {
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2},
		{MinX: 5, MinY: 5, MaxX: 7, MaxY: 7},
		{MinX: 1, MinY: 1, MaxX: 6, MaxY: 6}, // spans several cells
		geom.EmptyRect(),                     // must never be returned
	}
	idx := NewRectIndex(rects, 2.0)
	got := idx.Intersecting(geom.Rect{MinX: 1.5, MinY: 1.5, MaxX: 1.6, MaxY: 1.6}, nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Intersecting = %v, want [0 2]", got)
	}
	// Dedup: rect 2 overlaps many cells but must appear once.
	got = idx.Intersecting(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, nil)
	sort.Ints(got)
	if len(got) != 3 {
		t.Errorf("dedup failed: %v", got)
	}
	if got := idx.Intersecting(geom.EmptyRect(), nil); len(got) != 0 {
		t.Errorf("empty query returned %v", got)
	}
}

func TestRectIndexMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 50; iter++ {
		n := 1 + r.Intn(200)
		rects := make([]geom.Rect, n)
		for i := range rects {
			x, y := r.Float64()*100-50, r.Float64()*100-50
			rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + r.Float64()*10, MaxY: y + r.Float64()*10}
		}
		idx := NewRectIndex(rects, 1+r.Float64()*8)
		for q := 0; q < 10; q++ {
			x, y := r.Float64()*120-60, r.Float64()*120-60
			query := geom.Rect{MinX: x, MinY: y, MaxX: x + r.Float64()*20, MaxY: y + r.Float64()*20}
			got := idx.Intersecting(query, nil)
			sort.Ints(got)
			var want []int
			for i, rc := range rects {
				if rc.Intersects(query) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("Intersecting count: got %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Intersecting mismatch: %v vs %v", got, want)
				}
			}
		}
	}
}

func TestRectIndexRepeatedQueriesIndependent(t *testing.T) {
	rects := []geom.Rect{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}
	idx := NewRectIndex(rects, 1)
	q := geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}
	for i := 0; i < 3; i++ {
		if got := idx.Intersecting(q, nil); len(got) != 1 {
			t.Fatalf("query %d returned %v", i, got)
		}
	}
}

func TestNewIndexPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive cell size")
		}
	}()
	NewPointIndex(nil, 0)
}

// Regression: a single NaN (or Inf) coordinate used to drive the grid
// extent non-finite and panic the cell allocation with "makeslice: len out
// of range". The constructors now fall back to a single cell; queries stay
// correct for the finite geometry and non-finite entries simply never
// match.
func TestPointIndexNonFiniteDefensive(t *testing.T) {
	nan := math.NaN()
	for _, poison := range []geom.Point{
		geom.Pt(nan, 0), geom.Pt(0, nan), geom.Pt(math.Inf(1), 0), geom.Pt(0, math.Inf(-1)),
	} {
		pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), poison, geom.Pt(10, 10)}
		idx := NewPointIndex(pts, 1.0) // must not panic
		got := idx.Within(geom.Pt(0, 0), 1, nil)
		sort.Ints(got)
		if len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Errorf("poison %v: Within = %v, want [0 1]", poison, got)
		}
		// Querying at the poison point must not panic either.
		if hits := idx.Within(poison, 1, nil); len(hits) != 0 {
			t.Errorf("poison %v: query at poison = %v", poison, hits)
		}
	}
}

func TestRectIndexNonFiniteDefensive(t *testing.T) {
	nan := math.NaN()
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: nan, MinY: 0, MaxX: math.Inf(1), MaxY: 1},
		{MinX: 3, MinY: 3, MaxX: 4, MaxY: 4},
	}
	idx := NewRectIndex(rects, 1.0) // must not panic
	got := idx.Intersecting(geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 3.5, MaxY: 3.5}, nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Intersecting = %v, want [0 2]", got)
	}
}

// Regression: huge-but-finite extents used to wrap nx*ny around the int
// range — 2^33 × 2^31 cells is exactly 2^64 ≡ 0, which passed the old cap
// check, allocated a zero-length cell slice, and panicked the insertion
// loop. The cap is now checked by division.
func TestPointIndexHugeFiniteExtent(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(8589934591, 2147483647)}
	idx := NewPointIndex(pts, 1.0) // must not panic
	if got := idx.Within(geom.Pt(0, 0), 1, nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("Within = %v, want [0]", got)
	}
	if got := idx.Within(geom.Pt(8589934591, 2147483647), 1, nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("Within far = %v, want [1]", got)
	}
}

func TestRectIndexHugeFiniteExtent(t *testing.T) {
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 8589934590, MinY: 2147483646, MaxX: 8589934591, MaxY: 2147483647},
	}
	idx := NewRectIndex(rects, 1.0) // must not panic
	got := idx.Intersecting(geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 2, MaxY: 2}, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Intersecting = %v, want [0]", got)
	}
}

// TestPointIndexResetEquivalence pins Reset's contract: after Reset(pts)
// the index answers every query exactly as a freshly constructed index
// would, across point sets of different sizes, extents and degeneracy
// (including the non-finite single-cell fallback and the empty set).
func TestPointIndexResetEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	sets := [][]geom.Point{}
	for _, n := range []int{40, 7, 0, 120, 40} {
		pts := make([]geom.Point, n)
		extent := 10 + r.Float64()*90
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*extent-extent/2, r.Float64()*extent)
		}
		sets = append(sets, pts)
	}
	sets = append(sets, []geom.Point{geom.Pt(math.NaN(), 0), geom.Pt(1, 1)}) // fallback path
	sets = append(sets, sets[0])                                             // recover from fallback

	reused := NewPointIndex(nil, 2.0)
	for si, pts := range sets {
		reused.Reset(pts)
		fresh := NewPointIndex(pts, 2.0)
		for q := 0; q < 50; q++ {
			p := geom.Pt(r.Float64()*120-60, r.Float64()*120-60)
			rad := r.Float64() * 10
			got := reused.Within(p, rad, nil)
			want := fresh.Within(p, rad, nil)
			if len(got) != len(want) {
				t.Fatalf("set %d: Within(%v, %g) = %v, fresh index says %v", si, p, rad, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("set %d: Within(%v, %g) = %v, fresh index says %v", si, p, rad, got, want)
				}
			}
		}
		if reused.Len() != fresh.Len() {
			t.Fatalf("set %d: Len = %d, want %d", si, reused.Len(), fresh.Len())
		}
	}
}

// TestPointIndexResetNoAllocSteadyState pins the reuse promise: repeated
// Resets over same-shaped point sets must settle into zero allocations per
// call (the reason the incremental clustering engine can afford a grid
// rebuild every tick).
func TestPointIndexResetNoAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	pts := make([]geom.Point, 500)
	perturb := func() {
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
		}
	}
	perturb()
	idx := NewPointIndex(pts, 5.0)
	for i := 0; i < 10; i++ { // warm the buckets across varied layouts
		perturb()
		idx.Reset(pts)
	}
	allocs := testing.AllocsPerRun(20, func() { idx.Reset(pts) })
	if allocs > 0 {
		t.Fatalf("steady-state Reset allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkPointIndexRebuild contrasts the per-tick grid rebuild idioms:
// constructing a fresh index versus Reset on a reused one.
func BenchmarkPointIndexRebuild(b *testing.B) {
	r := rand.New(rand.NewSource(37))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*200, r.Float64()*200)
	}
	b.Run("new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewPointIndex(pts, 5.0)
		}
	})
	b.Run("reset", func(b *testing.B) {
		idx := NewPointIndex(pts, 5.0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Reset(pts)
		}
	})
}
