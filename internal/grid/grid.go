// Package grid provides uniform hash-grid spatial indexes used to accelerate
// the ε-neighborhood searches at the heart of DBSCAN (snapshot clustering)
// and of the CuTS filter step (range search over simplified sub-polylines).
//
// Two indexes are provided: PointIndex for point sets and RectIndex for
// rectangle (bounding-box) sets. Both bucket geometry into square cells of a
// caller-chosen size — for DBSCAN the natural cell size is the query radius
// e, which confines every radius-e search to a 3×3 cell block.
//
// Candidate enumeration is deterministic: cells are scanned in row-major
// order and entries within a cell preserve insertion order, so identical
// inputs yield identical candidate orders (which keeps the clustering — and
// therefore the whole discovery pipeline — reproducible).
package grid

import (
	"math"

	"repro/internal/geom"
)

// maxPointCells caps the dense point-grid resolution; when the data extent
// divided by the requested cell size would exceed it, the cell size is
// grown.
const maxPointCells = 1 << 20

// PointIndex is a uniform grid over points, stored as a dense array sized
// to the points' bounding box (hash-map grids dominated the clustering
// profile). The zero value is not usable; construct with NewPointIndex.
// The index is reusable across point sets via Reset, which keeps the cell
// buckets' backing arrays — the per-tick rebuild in snapshot clustering
// would otherwise churn the allocator.
type PointIndex struct {
	baseCell float64 // requested cell size; Reset re-derives cell from it
	cell     float64
	origin   geom.Point
	nx, ny   int
	cells    [][]int
	used     []int // non-empty cell indices, for O(points) clearing
	pts      []geom.Point
}

// NewPointIndex builds an index over pts with the given cell size (possibly
// grown to respect the resolution cap). The caller keeps ownership of pts;
// the index stores a copy of the slice header only. cell must be > 0.
//
// The constructor is defensive against degenerate geometry: when any
// coordinate is NaN or ±Inf the grid would compute a non-finite extent (and
// a bogus cell count could panic the allocation), so the index falls back
// to a single cell holding every point. Queries stay correct — the radius
// test still runs per point — just unaccelerated.
func NewPointIndex(pts []geom.Point, cell float64) *PointIndex {
	if cell <= 0 {
		panic("grid: cell size must be positive")
	}
	idx := &PointIndex{baseCell: cell}
	idx.Reset(pts)
	return idx
}

// Reset re-indexes the given points in place, exactly as if the index had
// been rebuilt with NewPointIndex at the original cell size, but reusing
// the cell buckets' backing arrays. Only the buckets that were populated
// are cleared (O(points), not O(cells)), so repeated Resets over similar
// point sets settle into a steady state with no per-call allocation.
func (idx *PointIndex) Reset(pts []geom.Point) {
	for _, c := range idx.used {
		idx.cells[c] = idx.cells[c][:0]
	}
	idx.used = idx.used[:0]
	idx.cell = idx.baseCell
	idx.pts = pts
	if len(pts) == 0 {
		idx.nx, idx.ny = 0, 0
		return
	}
	bounds := geom.RectOf(pts...)
	idx.origin = geom.Pt(bounds.MinX, bounds.MinY)
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	if !finiteExtent(w, h) {
		idx.origin = geom.Pt(0, 0)
		idx.nx, idx.ny = 1, 1
	} else {
		for {
			nx := int(w/idx.cell) + 1
			ny := int(h/idx.cell) + 1
			// Division-based cap: nx*ny can wrap the int range on huge
			// (finite) extents, so never form the product.
			if nx > 0 && ny > 0 && nx <= maxPointCells && ny <= maxPointCells/nx {
				idx.nx, idx.ny = nx, ny
				break
			}
			idx.cell *= 2
		}
	}
	// Reslicing within capacity keeps the hidden buckets' backing arrays;
	// the clear loop above already emptied every populated bucket, so a
	// resurrected bucket is always empty.
	n := idx.nx * idx.ny
	if n <= cap(idx.cells) {
		idx.cells = idx.cells[:n]
	} else {
		idx.cells = append(idx.cells[:cap(idx.cells)], make([][]int, n-cap(idx.cells))...)
	}
	for i, p := range pts {
		c := idx.cellOf(p)
		if len(idx.cells[c]) == 0 {
			idx.used = append(idx.used, c)
		}
		idx.cells[c] = append(idx.cells[c], i)
	}
}

// finiteExtent reports whether a grid extent is usable: non-finite widths
// arise from NaN/Inf input coordinates and would corrupt the cell math
// (the shared predicate is geom.Finite).
func finiteExtent(w, h float64) bool {
	return geom.Finite(w) && geom.Finite(h)
}

func (idx *PointIndex) cellOf(p geom.Point) int {
	cx := clampCell(int(math.Floor((p.X-idx.origin.X)/idx.cell)), idx.nx)
	cy := clampCell(int(math.Floor((p.Y-idx.origin.Y)/idx.cell)), idx.ny)
	return cx*idx.ny + cy
}

// Within appends to dst the indices of all points within distance r of p
// (inclusive) and returns the extended slice. Results appear in cell
// row-major order, insertion order within a cell.
func (idx *PointIndex) Within(p geom.Point, r float64, dst []int) []int {
	if len(idx.pts) == 0 {
		return dst
	}
	lox := clampCell(int(math.Floor((p.X-r-idx.origin.X)/idx.cell)), idx.nx)
	hix := clampCell(int(math.Floor((p.X+r-idx.origin.X)/idx.cell)), idx.nx)
	loy := clampCell(int(math.Floor((p.Y-r-idx.origin.Y)/idx.cell)), idx.ny)
	hiy := clampCell(int(math.Floor((p.Y+r-idx.origin.Y)/idx.cell)), idx.ny)
	r2 := r * r
	for cx := lox; cx <= hix; cx++ {
		row := cx * idx.ny
		for cy := loy; cy <= hiy; cy++ {
			for _, i := range idx.cells[row+cy] {
				if geom.D2(p, idx.pts[i]) <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// Len returns the number of indexed points.
func (idx *PointIndex) Len() int { return len(idx.pts) }

// maxRectCells caps the dense rect-grid resolution; when the data extent
// divided by the requested cell size would exceed it, the cell size is
// grown. 1<<20 cells ≈ 8 MB of slice headers at most.
const maxRectCells = 1 << 20

// RectIndex is a uniform grid over rectangles; each rectangle is registered
// in every cell it overlaps. The grid is a dense array sized to the bounding
// box of the indexed rectangles (hash maps proved to dominate the filter
// step's profile), so construction cost is O(rects + cells) and queries
// touch only slice memory. Construct with NewRectIndex.
type RectIndex struct {
	cell       float64
	origin     geom.Point
	nx, ny     int
	cells      [][]int
	rects      []geom.Rect
	visited    []int // query generation stamps for deduplication
	gen        int
	everything geom.Rect
}

// NewRectIndex builds an index over rects with the given cell size. The
// effective cell size may be larger when the data extent is huge relative
// to it (resolution cap). Empty rectangles are skipped (they can never
// match a query).
func NewRectIndex(rects []geom.Rect, cell float64) *RectIndex {
	if cell <= 0 {
		panic("grid: cell size must be positive")
	}
	bounds := geom.EmptyRect()
	for _, r := range rects {
		bounds = bounds.Union(r)
	}
	idx := &RectIndex{
		cell:       cell,
		rects:      rects,
		visited:    make([]int, len(rects)),
		everything: bounds,
	}
	if bounds.IsEmpty() {
		return idx
	}
	idx.origin = geom.Pt(bounds.MinX, bounds.MinY)
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	if !finiteExtent(w, h) {
		// Defensive single-cell fallback, like NewPointIndex: NaN/Inf
		// rectangle bounds must not panic the allocation below. The
		// everything-box becomes the whole plane — a poisoned union would
		// fail every Intersects pre-check and hide the finite rectangles.
		idx.origin = geom.Pt(0, 0)
		idx.nx, idx.ny = 1, 1
		idx.everything = geom.Rect{
			MinX: math.Inf(-1), MinY: math.Inf(-1),
			MaxX: math.Inf(1), MaxY: math.Inf(1),
		}
	} else {
		// Grow the cell until the grid fits the resolution cap. The cap is
		// checked by division — nx*ny can wrap the int range on huge
		// (finite) extents.
		for {
			nx := int(w/idx.cell) + 1
			ny := int(h/idx.cell) + 1
			if nx > 0 && ny > 0 && nx <= maxRectCells && ny <= maxRectCells/nx {
				idx.nx, idx.ny = nx, ny
				break
			}
			idx.cell *= 2
		}
	}
	idx.cells = make([][]int, idx.nx*idx.ny)
	for i, r := range rects {
		if r.IsEmpty() {
			continue
		}
		lox, loy, hix, hiy := idx.cellRange(r)
		for cx := lox; cx <= hix; cx++ {
			row := cx * idx.ny
			for cy := loy; cy <= hiy; cy++ {
				idx.cells[row+cy] = append(idx.cells[row+cy], i)
			}
		}
	}
	return idx
}

// cellRange returns the clamped cell-coordinate range covered by r. Queries
// extending beyond the data bounds clamp to the border cells, which is
// correct because no rectangle lives outside the bounds.
func (idx *RectIndex) cellRange(r geom.Rect) (lox, loy, hix, hiy int) {
	lox = clampCell(int(math.Floor((r.MinX-idx.origin.X)/idx.cell)), idx.nx)
	hix = clampCell(int(math.Floor((r.MaxX-idx.origin.X)/idx.cell)), idx.nx)
	loy = clampCell(int(math.Floor((r.MinY-idx.origin.Y)/idx.cell)), idx.ny)
	hiy = clampCell(int(math.Floor((r.MaxY-idx.origin.Y)/idx.cell)), idx.ny)
	return lox, loy, hix, hiy
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// Intersecting appends to dst the indices of all rectangles that intersect
// query, deduplicated, and returns the extended slice. Not safe for
// concurrent use (the dedup stamps are shared state).
func (idx *RectIndex) Intersecting(query geom.Rect, dst []int) []int {
	if query.IsEmpty() || idx.cells == nil || !query.Intersects(idx.everything) {
		return dst
	}
	idx.gen++
	g := idx.gen
	lox, loy, hix, hiy := idx.cellRange(query)
	for cx := lox; cx <= hix; cx++ {
		row := cx * idx.ny
		for cy := loy; cy <= hiy; cy++ {
			for _, i := range idx.cells[row+cy] {
				if idx.visited[i] == g {
					continue
				}
				idx.visited[i] = g
				if idx.rects[i].Intersects(query) {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// Len returns the number of indexed rectangles (including empty ones, which
// are never returned by queries).
func (idx *RectIndex) Len() int { return len(idx.rects) }
