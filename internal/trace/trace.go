// Package trace is a minimal, stdlib-only tracing kernel for the convoy
// pipeline: spans with IDs, parents, attributes and durations; a
// context-carried active span; head sampling that is a zero-allocation
// no-op when a trace is not sampled; and a bounded ring buffer of recent
// completed traces for /debug/traces.
//
// The design center is the unsampled hot path. StartSpan on a context
// without an active span returns (ctx, nil) without touching the heap,
// and every *Span method is nil-safe, so instrumented code never branches
// on "tracing on?" — it just calls through:
//
//	ctx, sp := trace.StartSpan(ctx, "filter")
//	sp.Int("lambda", lambda)
//	defer sp.End()
//
// Traces begin only at Tracer.Start (the root): the server middleware and
// the query engine decide sampling there, optionally continuing a remote
// W3C traceparent. Once a root exists in the context, StartSpan children
// attach unconditionally — a sampled trace is recorded whole.
//
// When the root span ends, the trace's spans are assembled into a
// TraceJSON tree and pushed into the tracer's ring, where Recent and
// Handler (GET /debug/traces?min_ms=) expose them. Any ended span can
// also be collected individually (Span.Collect) — that is what powers
// ?explain=true stage breakdowns and the slow-query log.
package trace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one trace: 16 random bytes, rendered as 32 hex
// digits (the W3C trace-id field).
type TraceID [16]byte

// SpanID identifies one span within a trace: 8 random bytes, rendered as
// 16 hex digits (the W3C parent-id field).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// Attr is one key/value annotation on a span. Values are stored
// pre-rendered as strings: spans are for humans and JSON, not for math.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation inside a trace. The zero of usefulness is
// nil: every method is safe to call on a nil *Span and does nothing, so
// instrumented code needs no sampling branches.
type Span struct {
	td     *traceData
	name   string
	id     SpanID
	parent SpanID
	root   bool
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// TraceID returns the hex trace ID, or "" on a nil span. This is the
// join key across logs, metric exemplars and /debug/traces.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.td.id.String()
}

// SpanID returns the span's own hex ID, or "" on a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// IDs returns the raw trace and span IDs (zero values on nil), for
// building an outgoing traceparent header.
func (s *Span) IDs() (TraceID, SpanID) {
	if s == nil {
		return TraceID{}, SpanID{}
	}
	return s.td.id, s.id
}

// setAttr records an attribute, replacing an existing value for the key.
func (s *Span) setAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return s
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// Str sets a string attribute on the span (no-op on nil).
func (s *Span) Str(key, value string) *Span { return s.setAttr(key, value) }

// Int sets an integer attribute on the span (no-op on nil).
func (s *Span) Int(key string, value int64) *Span {
	if s == nil {
		return nil
	}
	return s.setAttr(key, formatInt(value))
}

// Float sets a float attribute on the span (no-op on nil).
func (s *Span) Float(key string, value float64) *Span {
	if s == nil {
		return nil
	}
	return s.setAttr(key, formatFloat(value))
}

// AddFloat accumulates into a float attribute: the new value is the old
// value (0 if unset) plus delta. Parallel stages use it to fold
// cross-worker timings into one number without synthetic spans.
func (s *Span) AddFloat(key string, delta float64) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = formatFloat(parseFloatOr(s.attrs[i].Value, 0) + delta)
			return s
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: formatFloat(delta)})
	return s
}

// End closes the span, recording its duration and attributes into the
// trace. Ending the root span completes the trace: the span tree is
// assembled and pushed into the tracer's ring. End is idempotent and a
// no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.td.record(spanData{
		name:   s.name,
		id:     s.id,
		parent: s.parent,
		start:  s.start,
		end:    end,
		attrs:  attrs,
	})
	if s.root {
		s.td.finish(end)
	}
}

// Collect assembles the completed subtree rooted at s as a TraceJSON
// (Root is s itself; offsets are relative to s's start). It reports
// false until s has ended. Collect is how a caller extracts one span's
// breakdown — the explain profile, the slow-query log — without waiting
// for, or depending on, the ring.
func (s *Span) Collect() (TraceJSON, bool) {
	if s == nil {
		return TraceJSON{}, false
	}
	s.mu.Lock()
	ended := s.ended
	s.mu.Unlock()
	if !ended {
		return TraceJSON{}, false
	}
	return s.td.assembleFrom(s.id, s.start), true
}

// spanKey carries the active *Span in a context. An empty-struct key
// boxes without allocating, keeping FromContext free on the cold path.
type spanKey struct{}

// FromContext returns the active span, or nil when the context carries
// none (the unsampled case). The nil result is directly usable: all
// Span methods accept it.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithSpan returns ctx with sp as the active span. A nil sp
// returns ctx unchanged, preserving the zero-alloc unsampled path.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// StartSpan starts a child of the context's active span. With no active
// span (the trace is unsampled or tracing is off) it returns (ctx, nil)
// without allocating — the universal instrumentation entry point for
// pipeline stages.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		td:     parent.td,
		name:   name,
		id:     newSpanID(),
		parent: parent.id,
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// spanData is one completed span as recorded into its trace.
type spanData struct {
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// traceData collects the completed spans of one live trace. Spans beyond
// the tracer's per-trace cap are counted as dropped rather than stored,
// bounding memory under adversarial fan-out.
type traceData struct {
	tracer   *Tracer
	id       TraceID
	rootSpan SpanID
	start    time.Time

	mu      sync.Mutex
	spans   []spanData
	dropped int
	done    bool
}

func (td *traceData) record(sd spanData) {
	td.mu.Lock()
	defer td.mu.Unlock()
	if td.done {
		return
	}
	if len(td.spans) >= td.tracer.maxSpans {
		td.dropped++
		return
	}
	td.spans = append(td.spans, sd)
}

// finish seals the trace and pushes the assembled tree into the ring.
func (td *traceData) finish(end time.Time) {
	td.mu.Lock()
	if td.done {
		td.mu.Unlock()
		return
	}
	td.done = true
	td.mu.Unlock()
	tj := td.assembleFrom(SpanID{}, td.start)
	tj.DurationMS = durMS(end.Sub(td.start))
	td.tracer.push(tj)
}

// assembleFrom builds the JSON span tree rooted at root (the zero SpanID
// selects the trace's registered root span). When assembling the full
// trace, spans whose parents were never recorded are reported under
// Orphans: a non-empty Orphans list means a child span outlived its
// parent, which the well-formedness tests treat as a bug. When
// assembling a mid-trace subtree (Span.Collect on a non-root span),
// only the subtree is returned — spans outside it are simply elsewhere
// in the still-live trace, not orphans.
func (td *traceData) assembleFrom(root SpanID, base time.Time) TraceJSON {
	subtree := !root.IsZero() && root != td.rootSpan
	if root.IsZero() {
		root = td.rootSpan
	}
	td.mu.Lock()
	spans := make([]spanData, len(td.spans))
	copy(spans, td.spans)
	dropped := td.dropped
	td.mu.Unlock()

	nodes := make(map[SpanID]*SpanJSON, len(spans))
	for _, sd := range spans {
		nodes[sd.id] = spanToJSON(sd, base)
	}
	var rootNode *SpanJSON
	var orphans []SpanJSON
	// Attach children in recording order (End order), which sorts
	// siblings by completion; stage order within a pipeline span follows
	// execution order because stages end in sequence.
	for _, sd := range spans {
		n := nodes[sd.id]
		if sd.id == root {
			rootNode = n
			continue
		}
		if p, ok := nodes[sd.parent]; ok && sd.parent != sd.id {
			p.Children = append(p.Children, n)
			continue
		}
		if !subtree {
			orphans = append(orphans, *n)
		}
	}
	tj := TraceJSON{
		TraceID:      td.id.String(),
		Start:        base,
		SpanCount:    len(spans),
		DroppedSpans: dropped,
	}
	if rootNode != nil {
		tj.Root = rootNode
		tj.DurationMS = rootNode.DurationMS
	}
	if subtree {
		tj.SpanCount = countSpans(rootNode)
	}
	for i := range orphans {
		o := orphans[i]
		o.Children = nil
		tj.Orphans = append(tj.Orphans, o)
	}
	return tj
}

// countSpans counts the spans in a subtree.
func countSpans(n *SpanJSON) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countSpans(c)
	}
	return total
}

func spanToJSON(sd spanData, base time.Time) *SpanJSON {
	n := &SpanJSON{
		Name:       sd.name,
		SpanID:     sd.id.String(),
		OffsetMS:   durMS(sd.start.Sub(base)),
		DurationMS: durMS(sd.end.Sub(sd.start)),
	}
	if len(sd.attrs) > 0 {
		n.Attrs = make(map[string]string, len(sd.attrs))
		for _, a := range sd.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	return n
}

// SpanJSON is the wire form of one span in a collected trace.
type SpanJSON struct {
	// Name is the span's operation name ("run", "simplify", ...).
	Name string `json:"name"`
	// SpanID is the span's 16-hex-digit ID.
	SpanID string `json:"span_id"`
	// OffsetMS is the span's start relative to the tree root, in ms.
	OffsetMS float64 `json:"offset_ms"`
	// DurationMS is the span's wall time in ms.
	DurationMS float64 `json:"duration_ms"`
	// Attrs are the span's annotations (worker counts, stage sizes, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are the span's sub-spans, in completion order.
	Children []*SpanJSON `json:"children,omitempty"`
}

// Attr returns the named attribute, or "" when unset.
func (s *SpanJSON) Attr(key string) string {
	if s == nil {
		return ""
	}
	return s.Attrs[key]
}

// Find returns the first descendant (including s itself) with the given
// name, depth-first, or nil.
func (s *SpanJSON) Find(name string) *SpanJSON {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// TraceJSON is the wire form of one completed trace (or collected
// subtree): what GET /debug/traces serves and the slow-query log embeds.
type TraceJSON struct {
	// TraceID is the trace's 32-hex-digit ID.
	TraceID string `json:"trace_id"`
	// Start is the wall-clock start of the tree root.
	Start time.Time `json:"start"`
	// DurationMS is the tree root's wall time in ms.
	DurationMS float64 `json:"duration_ms"`
	// SpanCount is the number of spans recorded (excludes dropped).
	SpanCount int `json:"span_count"`
	// DroppedSpans counts spans discarded past the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// Root is the span tree; nil only if the root span was dropped.
	Root *SpanJSON `json:"root,omitempty"`
	// Orphans are spans whose parents were never recorded — evidence of
	// a span leak. Always empty for a healthy pipeline.
	Orphans []SpanJSON `json:"orphans,omitempty"`
}

func durMS(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d) / float64(time.Millisecond)
}
