package trace

import "encoding/hex"

// W3C Trace Context (https://www.w3.org/TR/trace-context/), the subset
// convoyd speaks: the traceparent header
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00   -    32 hex   -   16 hex    -    2 hex
//
// The serve middleware parses an incoming header to continue a caller's
// trace and emits one on every response so callers can join their logs
// to convoyd's. tracestate is intentionally not implemented.

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// ParseTraceparent parses a traceparent header value. ok reports whether
// the header is well-formed with non-zero IDs; sampled is bit 0 of the
// trace-flags. Unknown future versions are accepted if they keep the
// version-00 field layout, per the spec's forward-compatibility rule;
// the reserved version "ff" is rejected.
func ParseTraceparent(h string) (tid TraceID, sid SpanID, sampled, ok bool) {
	if len(h) < 55 {
		return TraceID{}, SpanID{}, false, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	ver := h[0:2]
	if !isHex(ver) || ver == "ff" {
		return TraceID{}, SpanID{}, false, false
	}
	// Version 00 is exactly 55 bytes; future versions may append fields
	// after a dash.
	if len(h) > 55 && (ver == "00" || h[55] != '-') {
		return TraceID{}, SpanID{}, false, false
	}
	if !isHex(h[3:35]) || !isHex(h[36:52]) {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	flags := h[53:55]
	if !isHex(flags) {
		return TraceID{}, SpanID{}, false, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	var f byte
	fb, _ := hex.DecodeString(flags)
	f = fb[0]
	return tid, sid, f&0x01 != 0, true
}

// isHex reports whether s is entirely lowercase hex digits (the spec
// requires lowercase).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
