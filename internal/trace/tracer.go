package trace

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Tracer decides which operations become traces and retains the most
// recent completed ones in a bounded ring. A nil *Tracer is valid and
// never samples. Tracers are safe for concurrent use.
type Tracer struct {
	ratio    float64
	ringSize int
	maxSpans int

	mu    sync.Mutex
	ring  []TraceJSON // newest at (next-1+len)%len once full
	next  int
	total uint64
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSampleRatio sets the head-sampling probability in [0, 1] for
// Start calls that are neither forced nor continuing a sampled remote
// trace. The default 0 records only forced traces (explain requests,
// slow-query capture), making tracing free in steady state.
func WithSampleRatio(r float64) Option {
	return func(t *Tracer) {
		switch {
		case r < 0:
			t.ratio = 0
		case r > 1:
			t.ratio = 1
		default:
			t.ratio = r
		}
	}
}

// WithRingSize sets how many completed traces the ring retains
// (default 256).
func WithRingSize(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.ringSize = n
		}
	}
}

// WithMaxSpans caps the spans recorded per trace (default 512); spans
// past the cap are counted as dropped.
func WithMaxSpans(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.maxSpans = n
		}
	}
}

// NewTracer builds a tracer. With no options it samples nothing except
// forced traces and keeps the default ring.
func NewTracer(opts ...Option) *Tracer {
	t := &Tracer{ringSize: 256, maxSpans: 512}
	for _, o := range opts {
		o(t)
	}
	return t
}

// startCfg carries per-Start options.
type startCfg struct {
	forced        bool
	remote        bool
	remoteTrace   TraceID
	remoteSpan    SpanID
	remoteSampled bool
}

// StartOption configures one Tracer.Start call.
type StartOption func(*startCfg)

// Forced samples the trace regardless of the tracer's ratio. Explain
// requests and slow-query capture use it: the caller has already decided
// the trace is wanted.
func Forced() StartOption {
	return func(c *startCfg) { c.forced = true }
}

// WithRemote continues an incoming trace (a parsed traceparent header):
// the new root adopts the remote trace ID and parents itself under the
// remote span. The remote sampled flag joins the local sampling
// decision — a remote-sampled trace is always recorded locally.
func WithRemote(tid TraceID, sid SpanID, sampled bool) StartOption {
	return func(c *startCfg) {
		if tid.IsZero() {
			return
		}
		c.remote = true
		c.remoteTrace = tid
		c.remoteSpan = sid
		c.remoteSampled = sampled
	}
}

// Start begins a new trace rooted at a span with the given name, if the
// sampling decision says yes; otherwise it returns (ctx, nil) without
// allocating. The returned context carries the root span, so StartSpan
// below it attaches children. The caller must End the root span to
// complete the trace and publish it to the ring.
func (t *Tracer) Start(ctx context.Context, name string, opts ...StartOption) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	// Zero-option fast path: with no Forced/WithRemote in play the
	// sampling decision needs no config struct, keeping an unsampled
	// Start allocation-free (the escaping &c below would cost one).
	if len(opts) == 0 && (t.ratio <= 0 || rand.Float64() >= t.ratio) {
		return ctx, nil
	}
	var c startCfg
	for _, o := range opts {
		o(&c)
	}
	sampled := len(opts) == 0 || c.forced || (c.remote && c.remoteSampled)
	if !sampled && t.ratio > 0 {
		sampled = rand.Float64() < t.ratio
	}
	if !sampled {
		return ctx, nil
	}
	now := time.Now()
	td := &traceData{tracer: t, start: now}
	if c.remote {
		td.id = c.remoteTrace
	} else {
		td.id = newTraceID()
	}
	s := &Span{
		td:     td,
		name:   name,
		id:     newSpanID(),
		parent: c.remoteSpan,
		root:   true,
		start:  now,
	}
	td.rootSpan = s.id
	return context.WithValue(ctx, spanKey{}, s), s
}

// push retires a completed trace into the ring.
func (t *Tracer) push(tj TraceJSON) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if t.ringSize <= 0 {
		return
	}
	if len(t.ring) < t.ringSize {
		t.ring = append(t.ring, tj)
		t.next = len(t.ring) % t.ringSize
		return
	}
	t.ring[t.next] = tj
	t.next = (t.next + 1) % t.ringSize
}

// Recent returns the retained traces, newest first, keeping only traces
// at least minDur long (0 keeps all).
func (t *Tracer) Recent(minDur time.Duration) []TraceJSON {
	if t == nil {
		return nil
	}
	minMS := durMS(minDur)
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	out := make([]TraceJSON, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest slot.
		tj := t.ring[((t.next-1-i)%n+n)%n]
		if tj.DurationMS >= minMS {
			out = append(out, tj)
		}
	}
	return out
}

// Completed returns the number of traces completed since construction
// (including traces since evicted from the ring).
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Handler serves the recent-trace ring as a JSON array, newest first:
// GET /debug/traces?min_ms=N keeps only traces at least N ms long.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var minDur time.Duration
		if v := r.URL.Query().Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				http.Error(w, "min_ms: want a non-negative number", http.StatusBadRequest)
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Recent(minDur)) //nolint:errcheck // best-effort write to client
	})
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func parseFloatOr(s string, def float64) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return v
}
