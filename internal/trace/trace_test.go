package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUnsampledIsNoop(t *testing.T) {
	tr := NewTracer() // ratio 0: nothing samples without Forced
	ctx, root := tr.Start(context.Background(), "root")
	if root != nil {
		t.Fatalf("ratio-0 tracer sampled a trace")
	}
	if ctx != context.Background() {
		t.Fatalf("unsampled Start changed the context")
	}
	cctx, child := StartSpan(ctx, "child")
	if child != nil || cctx != ctx {
		t.Fatalf("StartSpan without active span must be identity")
	}
	// All span methods must be nil-safe.
	child.Str("k", "v").Int("n", 1).Float("f", 2).AddFloat("a", 3)
	child.End()
	if _, ok := child.Collect(); ok {
		t.Fatalf("nil span collected")
	}
	if got := child.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
}

func TestUnsampledZeroAllocs(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := tr.Start(ctx, "root")
		_, sp2 := StartSpan(c, "child")
		sp2.Int("n", 1)
		sp2.End()
		sp.Str("k", "v")
		sp.End()
		if FromContext(c) != nil {
			t.Fatal("unexpected span")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled tracing path allocates: %v allocs/op", allocs)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "root", Forced())
	if sp != nil || ctx != context.Background() {
		t.Fatalf("nil tracer must not sample")
	}
	if got := tr.Recent(0); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	if tr.Completed() != 0 {
		t.Fatalf("nil tracer Completed != 0")
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.Start(context.Background(), "req", Forced())
	if root == nil {
		t.Fatal("forced trace not sampled")
	}
	root.Str("route", "/v1/query")

	cctx, run := StartSpan(ctx, "run")
	run.Int("m", 3)
	_, s1 := StartSpan(cctx, "simplify")
	s1.End()
	_, s2 := StartSpan(cctx, "filter")
	s2.AddFloat("cluster_ms", 1.5)
	s2.AddFloat("cluster_ms", 0.5)
	s2.End()
	run.End()

	// Collect the mid-trace subtree before the trace completes.
	sub, ok := run.Collect()
	if !ok {
		t.Fatal("ended span did not collect")
	}
	if sub.Root == nil || sub.Root.Name != "run" || len(sub.Root.Children) != 2 {
		t.Fatalf("subtree = %+v", sub.Root)
	}
	if sub.SpanCount != 3 {
		t.Fatalf("subtree span count = %d, want 3", sub.SpanCount)
	}
	if got := sub.Root.Find("filter").Attr("cluster_ms"); got != "2" {
		t.Fatalf("AddFloat accumulated %q, want 2", got)
	}
	if len(sub.Orphans) != 0 {
		t.Fatalf("mid-trace collect invented orphans: %+v", sub.Orphans)
	}

	root.End()
	root.End() // idempotent

	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(recent))
	}
	tj := recent[0]
	if tj.Root == nil || tj.Root.Name != "req" {
		t.Fatalf("trace root = %+v", tj.Root)
	}
	if tj.SpanCount != 4 || len(tj.Orphans) != 0 {
		t.Fatalf("spans=%d orphans=%v", tj.SpanCount, tj.Orphans)
	}
	if tj.TraceID != root.TraceID() || len(tj.TraceID) != 32 {
		t.Fatalf("trace id %q vs %q", tj.TraceID, root.TraceID())
	}
	runNode := tj.Root.Find("run")
	if runNode == nil || len(runNode.Children) != 2 {
		t.Fatalf("run node = %+v", runNode)
	}
	if runNode.Children[0].Name != "simplify" || runNode.Children[1].Name != "filter" {
		t.Fatalf("stage order = %v, %v", runNode.Children[0].Name, runNode.Children[1].Name)
	}
	if tr.Completed() != 1 {
		t.Fatalf("Completed = %d", tr.Completed())
	}
}

func TestAttrReplaceAndTypes(t *testing.T) {
	tr := NewTracer()
	_, sp := tr.Start(context.Background(), "s", Forced())
	sp.Str("k", "a").Str("k", "b").Int("n", 7).Float("f", 1.25)
	sp.End()
	tj, _ := sp.Collect()
	if got := tj.Root.Attr("k"); got != "b" {
		t.Fatalf("replace: got %q", got)
	}
	if tj.Root.Attr("n") != "7" || tj.Root.Attr("f") != "1.25" {
		t.Fatalf("attrs = %v", tj.Root.Attrs)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(WithRingSize(3))
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), "t", Forced())
		sp.Int("i", int64(i))
		sp.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring kept %d, want 3", len(recent))
	}
	// Newest first: 4, 3, 2.
	for i, want := range []string{"4", "3", "2"} {
		if got := recent[i].Root.Attr("i"); got != want {
			t.Fatalf("recent[%d] = %s, want %s", i, got, want)
		}
	}
	if tr.Completed() != 5 {
		t.Fatalf("Completed = %d, want 5", tr.Completed())
	}
}

func TestMaxSpansDropped(t *testing.T) {
	tr := NewTracer(WithMaxSpans(2))
	ctx, root := tr.Start(context.Background(), "root", Forced())
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	tj := tr.Recent(0)[0]
	if tj.SpanCount != 2 || tj.DroppedSpans != 4 {
		t.Fatalf("spans=%d dropped=%d, want 2/4", tj.SpanCount, tj.DroppedSpans)
	}
}

func TestRecentMinDuration(t *testing.T) {
	tr := NewTracer()
	_, fast := tr.Start(context.Background(), "fast", Forced())
	fast.End()
	_, slow := tr.Start(context.Background(), "slow", Forced())
	time.Sleep(5 * time.Millisecond)
	slow.End()
	got := tr.Recent(2 * time.Millisecond)
	if len(got) != 1 || got[0].Root.Name != "slow" {
		t.Fatalf("min-duration filter kept %+v", got)
	}
}

func TestHandler(t *testing.T) {
	tr := NewTracer()
	_, sp := tr.Start(context.Background(), "op", Forced())
	time.Sleep(2 * time.Millisecond)
	sp.End()

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 || !strings.Contains(rr.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("status=%d ct=%s", rr.Code, rr.Header().Get("Content-Type"))
	}
	var traces []TraceJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &traces); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Root.Name != "op" {
		t.Fatalf("traces = %+v", traces)
	}

	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?min_ms=100000", nil))
	var none []TraceJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &none); err != nil || len(none) != 0 {
		t.Fatalf("min_ms filter: %s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?min_ms=nope", nil))
	if rr.Code != 400 {
		t.Fatalf("bad min_ms: status %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/debug/traces", nil))
	if rr.Code != 405 {
		t.Fatalf("POST: status %d", rr.Code)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer()
	_, sp := tr.Start(context.Background(), "client", Forced())
	tid, sid := sp.IDs()
	h := FormatTraceparent(tid, sid, true)
	gtid, gsid, sampled, ok := ParseTraceparent(h)
	if !ok || gtid != tid || gsid != sid || !sampled {
		t.Fatalf("round trip failed: %q -> %v %v %v %v", h, gtid, gsid, sampled, ok)
	}
	h0 := FormatTraceparent(tid, sid, false)
	if _, _, sampled, ok = ParseTraceparent(h0); !ok || sampled {
		t.Fatalf("unsampled flag round trip: %q", h0)
	}
	sp.End()
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// A future version with appended fields keeps the 00 layout.
	tid, sid, sampled, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future")
	if !ok || tid.IsZero() || sid.IsZero() || !sampled {
		t.Fatalf("future version rejected")
	}
}

func TestContinueRemote(t *testing.T) {
	tid, sid, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("parse failed")
	}
	tr := NewTracer()
	_, sp := tr.Start(context.Background(), "server", WithRemote(tid, sid, sampled))
	if sp == nil {
		t.Fatal("remote-sampled trace not continued")
	}
	if sp.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not adopted: %s", sp.TraceID())
	}
	sp.End()
	tj := tr.Recent(0)[0]
	if tj.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ring trace id = %s", tj.TraceID)
	}
	if len(tj.Orphans) != 0 || tj.Root == nil {
		t.Fatalf("remote-parented root misassembled: %+v", tj)
	}

	// Remote present but unsampled, local ratio 0: not recorded.
	_, sp2 := tr.Start(context.Background(), "server", WithRemote(tid, sid, false))
	if sp2 != nil {
		t.Fatal("unsampled remote trace recorded")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(WithMaxSpans(2048))
	ctx, root := tr.Start(context.Background(), "root", Forced())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := StartSpan(ctx, "work")
				sp.Int("g", int64(g))
				_, inner := StartSpan(c, "inner")
				inner.AddFloat("ms", 0.1)
				inner.End()
				sp.End()
			}
			root.AddFloat("total", 1)
		}(g)
	}
	wg.Wait()
	root.End()
	tj := tr.Recent(0)[0]
	if len(tj.Orphans) != 0 {
		t.Fatalf("concurrent spans orphaned: %d", len(tj.Orphans))
	}
	if tj.SpanCount != 1+8*50*2 {
		t.Fatalf("span count = %d", tj.SpanCount)
	}
	if got := tj.Root.Attr("total"); got != "8" {
		t.Fatalf("AddFloat under concurrency = %q", got)
	}
}

func TestSampleRatio(t *testing.T) {
	always := NewTracer(WithSampleRatio(1))
	_, sp := always.Start(context.Background(), "t")
	if sp == nil {
		t.Fatal("ratio-1 tracer did not sample")
	}
	sp.End()
	never := NewTracer(WithSampleRatio(0))
	if _, sp := never.Start(context.Background(), "t"); sp != nil {
		t.Fatal("ratio-0 tracer sampled")
	}
	clamped := NewTracer(WithSampleRatio(7))
	if _, sp := clamped.Start(context.Background(), "t"); sp == nil {
		t.Fatal("ratio clamps to 1")
	} else {
		sp.End()
	}
}
