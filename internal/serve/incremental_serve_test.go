package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// staticBatch is a frozen two-object snapshot: the best case for the
// incremental fast path (after the first tick every pass is a no-op).
func staticBatch(t model.Tick) TickBatch {
	return TickBatch{T: t, Positions: []Position{
		{ID: "a", X: 0, Y: 0}, {ID: "b", X: 0.5, Y: 0}}}
}

// A feed on the default backend takes the incremental path by default, and
// the pass split plus reuse ratio surface in the feed status and /v1/stats.
func TestFeedIncrementalCountersAndReuseRatio(t *testing.T) {
	if core.IncrementalDisabled() {
		t.Skipf("%s is set", core.NoIncrementalEnv)
	}
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "inc", ParamsJSON{M: 2, K: 3, Eps: 1})
	const ticks = 10
	for tick := model.Tick(0); tick < ticks; tick++ {
		pushTick(t, ts.URL, "inc", staticBatch(tick))
	}

	var fs FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/inc", nil, http.StatusOK, &fs)
	if fs.ClusterPasses != ticks {
		t.Fatalf("cluster passes = %d, want %d", fs.ClusterPasses, ticks)
	}
	if fs.ClusterPassesFull != 1 || fs.ClusterPassesIncremental != ticks-1 {
		t.Fatalf("pass split = %d full / %d incremental, want 1 / %d",
			fs.ClusterPassesFull, fs.ClusterPassesIncremental, ticks-1)
	}
	// Only the first (full) pass touched the two objects; every later
	// frozen tick reused the carried state wholesale.
	if fs.ObjectsReclustered != 2 {
		t.Fatalf("objects reclustered = %d, want 2 (first full pass only)", fs.ObjectsReclustered)
	}
	if fs.ReuseRatio < 0.5 {
		t.Fatalf("reuse ratio = %g, want ≥ 0.5 on a frozen feed", fs.ReuseRatio)
	}

	var st ServerStats
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.ClusterPassesFull != fs.ClusterPassesFull ||
		st.ClusterPassesIncremental != fs.ClusterPassesIncremental ||
		st.ObjectsReclustered != fs.ObjectsReclustered {
		t.Fatalf("server stats split = %d/%d/%d, want feed's %d/%d/%d",
			st.ClusterPassesFull, st.ClusterPassesIncremental, st.ObjectsReclustered,
			fs.ClusterPassesFull, fs.ClusterPassesIncremental, fs.ObjectsReclustered)
	}
	if st.ObjectsSeen != 2*ticks {
		t.Fatalf("objects seen = %d, want %d", st.ObjectsSeen, 2*ticks)
	}
	if st.ReuseRatio < 0.5 {
		t.Fatalf("server reuse ratio = %g, want ≥ 0.5", st.ReuseRatio)
	}
}

// "incremental": false in the feed spec pins the feed to from-scratch
// passes; Config.DisableIncremental does the same server-wide even when
// the spec asks for the fast path.
func TestFeedIncrementalKnobOff(t *testing.T) {
	off := false
	on := true
	cases := []struct {
		name string
		cfg  Config
		spec *bool
	}{
		{"spec-false", Config{}, &off},
		{"server-disabled", Config{DisableIncremental: true}, &on},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			var st FeedStatus
			doJSON(t, "POST", ts.URL+"/v1/feeds",
				FeedSpec{Name: "f", Params: ParamsJSON{M: 2, K: 3, Eps: 1}, Incremental: tc.spec},
				http.StatusCreated, &st)
			for tick := model.Tick(0); tick < 5; tick++ {
				pushTick(t, ts.URL, "f", staticBatch(tick))
			}
			var fs FeedStatus
			doJSON(t, "GET", ts.URL+"/v1/feeds/f", nil, http.StatusOK, &fs)
			if fs.ClusterPasses != 5 || fs.ClusterPassesIncremental != 0 || fs.ClusterPassesFull != 5 {
				t.Fatalf("passes = %d (%d full, %d incremental), want 5 full from-scratch passes",
					fs.ClusterPasses, fs.ClusterPassesFull, fs.ClusterPassesIncremental)
			}
			if fs.ReuseRatio != 0 {
				t.Fatalf("reuse ratio = %g on a from-scratch feed, want 0", fs.ReuseRatio)
			}
		})
	}
}

// Removing the last monitor on a clustering key releases its source —
// including the incremental engine's carried state. A re-added monitor
// with the same key starts from a full pass, never from a stranger's
// (possibly stale) snapshot diff.
func TestMonitorRemovalDropsIncrementalState(t *testing.T) {
	if core.IncrementalDisabled() {
		t.Skipf("%s is set", core.NoIncrementalEnv)
	}
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "life", ParamsJSON{M: 2, K: 3, Eps: 1})
	side := MonitorSpec{ID: "side", Params: ParamsJSON{M: 2, K: 3, Eps: 2}}
	addMonitor(t, ts.URL, "life", side)

	// Two sources (e=1 and e=2). Tick 0 is full for both; tick 1 is
	// incremental for both.
	pushTick(t, ts.URL, "life", staticBatch(0))
	pushTick(t, ts.URL, "life", staticBatch(1))
	var fs FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/life", nil, http.StatusOK, &fs)
	if fs.ClusterPassesFull != 2 || fs.ClusterPassesIncremental != 2 {
		t.Fatalf("pass split = %d full / %d incremental, want 2 / 2",
			fs.ClusterPassesFull, fs.ClusterPassesIncremental)
	}

	// Drop and re-add the e=2 monitor. Its source was released with it, so
	// tick 2 must be a full pass for the fresh source while the surviving
	// e=1 source stays incremental.
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/life/monitors/side", nil, http.StatusOK, nil)
	addMonitor(t, ts.URL, "life", side)
	pushTick(t, ts.URL, "life", staticBatch(2))
	doJSON(t, "GET", ts.URL+"/v1/feeds/life", nil, http.StatusOK, &fs)
	if fs.ClusterPassesFull != 3 || fs.ClusterPassesIncremental != 3 {
		t.Fatalf("after re-add: pass split = %d full / %d incremental, want 3 / 3 (state dropped with the monitor)",
			fs.ClusterPassesFull, fs.ClusterPassesIncremental)
	}
}

// The per-query incremental knob changes work, never answers — so it is
// deliberately absent from the cache key, and a ?incremental=false repeat
// of a cached query is a hit.
func TestQueryIncrementalKnobOutsideCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const db = "obj,t,x,y\n" +
		"0,0,0,0\n1,0,0.5,0\n" +
		"0,1,1,0\n1,1,1.5,0\n" +
		"0,2,2,0\n1,2,2.5,0\n"

	post := func(url string) QueryResponse {
		t.Helper()
		resp, err := http.Post(url, "text/csv", strings.NewReader(db))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}

	first := post(ts.URL + "/v1/query?m=2&k=3&e=1&algo=cmc")
	if first.Cache != "miss" || len(first.Convoys) != 1 {
		t.Fatalf("first query: cache=%q convoys=%+v, want miss with one convoy", first.Cache, first.Convoys)
	}
	repeat := post(ts.URL + "/v1/query?m=2&k=3&e=1&algo=cmc&incremental=false")
	if repeat.Cache != "hit" {
		t.Fatalf("incremental=false repeat: cache=%q, want hit (knob is not part of the key)", repeat.Cache)
	}
	if len(repeat.Convoys) != 1 || repeat.Convoys[0].Start != first.Convoys[0].Start ||
		repeat.Convoys[0].End != first.Convoys[0].End {
		t.Fatalf("answers differ across the knob: %+v vs %+v", first.Convoys, repeat.Convoys)
	}

	// A malformed flag is the client's mistake.
	resp, err := http.Post(ts.URL+"/v1/query?m=2&k=3&e=1&algo=cmc&incremental=maybe",
		"text/csv", strings.NewReader(db))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incremental=maybe: status %d, want 400", resp.StatusCode)
	}
}
