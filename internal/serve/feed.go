package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
)

// A feed is one live position stream behind a dedicated worker goroutine
// with a bounded command mailbox. It hosts a *table of monitors* — standing
// convoy queries, each a core.Monitor with its own (m, k, e), added and
// removed at runtime — over the single ingested stream. Per tick the worker
// runs one clustering pass per *distinct* ClusterKey (e, m, backend) among
// the live monitors and fans the clusters out to every monitor in the
// group, so N monitors sharing a key cost one clustering pass, not N —
// while monitors with equal (e, m) but different backends (DBSCAN over
// positions vs proxgraph over contact edges) never share.
//
// All feed state — the monitor table, the label→ID mapping, the event
// history, the subscriber set — is owned by the worker and touched by no
// one else, so the feed is race-free by construction; the mailbox depth is
// the ingestion backpressure point (senders block once it fills).

// DefaultMonitorID names the monitor created implicitly from the feed's
// creation parameters.
const DefaultMonitorID = "default"

// errFeedClosed reports an operation on a feed that has been deleted,
// evicted or shut down.
var errFeedClosed = errors.New("serve: feed closed")

// feedCmd is one mailbox message: an operation the worker runs with
// exclusive access to the feed state. The worker sends the outcome on
// reply (buffered, never blocks).
type feedCmd struct {
	op    func(*feed) (any, error)
	reply chan feedReply
}

type feedReply struct {
	val any
	err error
}

// feedMonitor is one entry of the monitor table: a standing convoy query
// over the feed's stream.
type feedMonitor struct {
	id string
	p  core.Params
	// key is the monitor's canonical clustering key — (e, m) plus the
	// backend — the identity it shares a ClusterSource under. Monitors with
	// equal (e, m) but different backends never share a pass.
	key    core.ClusterKey
	mon    *core.Monitor
	closed uint64 // events this monitor has emitted
}

type feed struct {
	name    string
	p       core.Params // creation params (the default monitor's)
	backend string      // creation clusterer name (the default monitor's)
	cfg     Config

	cmds chan feedCmd
	// done is closed after the worker drains; senders select on it so a
	// request can never deadlock against a dying feed.
	done chan struct{}
	// lastActive is the unix-nano time of the last request, read by the
	// idle-eviction janitor.
	lastActive atomic.Int64

	// Worker-owned state below; only the worker goroutine touches it.
	monitors map[string]*feedMonitor
	// order holds the live monitors sorted by ID — maintained on
	// add/remove so the per-tick fan-out and the status/drain paths walk a
	// deterministic order without re-sorting in the ingestion hot path.
	order []*feedMonitor
	// sources holds one ClusterSource per distinct ClusterKey among the
	// live monitors; entries are dropped when their last monitor goes.
	sources map[core.ClusterKey]*core.ClusterSource
	// clusterPasses counts snapshot clustering passes over the feed's whole
	// life (sources come and go with their monitors; this does not). The
	// three meters after it split that work: full vs incremental passes,
	// and the objects actually re-clustered (objectsSeen is the
	// denominator of the feed's reuse ratio).
	clusterPasses int64
	passesFull    int64
	passesInc     int64
	reclustered   int64
	objectsSeen   int64
	// incremental is the feed-level knob (FeedSpec.Incremental): nil means
	// the default (incremental clustering on where it applies), false
	// forces every source onto the from-scratch path. Applies to sources
	// created later too.
	incremental *bool
	lastTick    model.Tick
	started     bool
	ids         map[string]model.ObjectID // label → dense ID
	labels      []string                  // dense ID → label
	ticks       int64                     // ingested tick batches

	history  []Event // ring of the last cfg.HistoryLimit events
	nextSeq  uint64  // seq of the next event to emit
	subs     map[chan Event]struct{}
	draining bool

	// w is the feed's write-ahead log bundle; nil for in-memory feeds
	// (Config.WALDir unset). recovering is true only during the pre-worker
	// replay, when applyBatch must not re-log what it reads from the log.
	w          *feedWAL
	recovering bool
}

// buildFeed assembles a feed with its default monitor but does not start
// the worker — recovery replays into the quiescent feed first; newFeed
// starts it immediately.
func buildFeed(name string, p core.Params, clusterer string, cfg Config, w *feedWAL) (*feed, error) {
	cl, err := ParseClusterer(clusterer)
	if err != nil {
		return nil, badRequest(err)
	}
	f := &feed{
		name:     name,
		p:        p,
		backend:  cl.Name(),
		cfg:      cfg,
		cmds:     make(chan feedCmd, cfg.FeedBuffer),
		done:     make(chan struct{}),
		monitors: make(map[string]*feedMonitor),
		sources:  make(map[core.ClusterKey]*core.ClusterSource),
		ids:      make(map[string]model.ObjectID),
		subs:     make(map[chan Event]struct{}),
		w:        w,
	}
	// The worker goroutine doesn't run yet, so the table is safe to touch.
	if err := f.insertMonitor(DefaultMonitorID, p, clusterer); err != nil {
		return nil, err
	}
	f.lastActive.Store(time.Now().UnixNano())
	return f, nil
}

func newFeed(name string, p core.Params, clusterer string, cfg Config, w *feedWAL) (*feed, error) {
	f, err := buildFeed(name, p, clusterer, cfg, w)
	if err != nil {
		return nil, err
	}
	go f.run()
	return f, nil
}

// insertMonitor adds a monitor to the table and ensures a cluster source
// for its key — (e, m) plus the clustering backend — exists (worker only,
// or before the worker starts).
func (f *feed) insertMonitor(id string, p core.Params, clusterer string) error {
	if _, ok := f.monitors[id]; ok {
		return fmt.Errorf("%w: %q", errMonitorExists, id)
	}
	if len(f.monitors) >= f.cfg.MaxMonitorsPerFeed {
		return fmt.Errorf("%w (%d)", errTooManyMonitors, f.cfg.MaxMonitorsPerFeed)
	}
	cl, err := ParseClusterer(clusterer)
	if err != nil {
		return badRequest(err)
	}
	mon, err := core.NewMonitor(p)
	if err != nil {
		return badRequest(err)
	}
	key := p.ClusterKey()
	key.Backend = cl.Name()
	key = key.Canonical()
	if _, ok := f.sources[key]; !ok {
		src, err := core.NewClusterSourceWith(key, cl)
		if err != nil {
			return badRequest(err)
		}
		if f.cfg.DisableIncremental || (f.incremental != nil && !*f.incremental) {
			src.SetIncremental(0)
		}
		f.sources[key] = src
	}
	fm := &feedMonitor{id: id, p: p, key: key, mon: mon}
	f.monitors[id] = fm
	f.cfg.metrics.monitors.Inc()
	at := sort.Search(len(f.order), func(i int) bool { return f.order[i].id >= id })
	f.order = append(f.order, nil)
	copy(f.order[at+1:], f.order[at:])
	f.order[at] = fm
	return nil
}

// run is the worker loop: execute commands until a close command flips
// draining, then fail whatever is still queued.
func (f *feed) run() {
	for cmd := range f.cmds {
		val, err := cmd.op(f)
		cmd.reply <- feedReply{val, err}
		if f.draining {
			break
		}
	}
	close(f.done)
	for {
		select {
		case cmd := <-f.cmds:
			cmd.reply <- feedReply{nil, errFeedClosed}
		default:
			return
		}
	}
}

// touch marks the feed active for the idle-eviction janitor. Ingestion
// and event consumption touch; pure status reads do not, so monitoring
// dashboards polling statuses cannot keep an abandoned feed alive.
func (f *feed) touch() { f.lastActive.Store(time.Now().UnixNano()) }

// do submits an operation and waits for its outcome. Blocking on a full
// mailbox is the backpressure contract; the context and the feed's own
// death both release the caller.
func (f *feed) do(ctx context.Context, op func(*feed) (any, error)) (any, error) {
	cmd := feedCmd{op: op, reply: make(chan feedReply, 1)}
	select {
	case f.cmds <- cmd:
	case <-f.done:
		return nil, errFeedClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-cmd.reply:
		return r.val, r.err
	case <-f.done:
		// The worker may have replied in the instant before it died;
		// prefer the real outcome when it is there.
		select {
		case r := <-cmd.reply:
			return r.val, r.err
		default:
			return nil, errFeedClosed
		}
	}
}

// emit appends one closed convoy to the history ring, tagged with the
// monitor that closed it, and fans it out to subscribers. A subscriber
// whose buffer is full is cut off (its channel closed); it can reconnect
// and replay with ?since=.
func (f *feed) emit(monitorID string, c core.Convoy) {
	ev := Event{
		Seq:     f.nextSeq,
		Feed:    f.name,
		Monitor: monitorID,
		Convoy: ConvoyToJSON(c, func(id model.ObjectID) string {
			if id >= 0 && int(id) < len(f.labels) {
				return f.labels[id]
			}
			return ""
		}),
	}
	f.nextSeq++
	f.cfg.metrics.feedEvents.Inc()
	if len(f.history) >= f.cfg.HistoryLimit {
		n := copy(f.history, f.history[1:])
		f.history = f.history[:n]
	}
	f.history = append(f.history, ev)
	for ch := range f.subs {
		select {
		case ch <- ev:
		default:
			delete(f.subs, ch)
			close(ch)
		}
	}
}

// drainMonitor closes one monitor, emits its still-open convoys as tagged
// events, and returns their wire forms (worker only).
func (f *feed) drainMonitor(fm *feedMonitor) []ConvoyJSON {
	out := []ConvoyJSON{}
	for _, c := range fm.mon.Close() {
		f.emit(fm.id, c)
		fm.closed++
		out = append(out, f.history[len(f.history)-1].Convoy)
	}
	return out
}

// ingest applies tick batches in order and returns the closed convoys.
// The first bad tick aborts the batch; everything before it sticks (the
// response reports how many were accepted). Per batch, each distinct
// clustering key among the live monitors runs exactly one DBSCAN pass; the
// clusters fan out to every monitor in that key's group.
func (f *feed) ingest(ctx context.Context, batches []TickBatch) (TicksResponse, error) {
	f.touch()
	// Wall time includes the mailbox wait: the histogram is the feed's
	// backpressure lag as a client experiences it.
	t0 := time.Now()
	defer func() { f.cfg.metrics.feedIngestSeconds.Observe(time.Since(t0).Seconds()) }()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		resp := TicksResponse{Closed: []ConvoyJSON{}}
		for _, b := range batches {
			closed, err := f.applyBatch(b)
			resp.Closed = append(resp.Closed, closed...)
			if err != nil {
				return resp, err
			}
			resp.Accepted++
		}
		return resp, nil
	})
	resp, _ := v.(TicksResponse)
	return resp, err
}

// applyBatch validates and applies one tick batch (worker only, or during
// the pre-worker recovery replay). On a durable feed the batch is logged
// to the WAL after validation and *before* any monitor advances — the
// write-ahead contract: an acknowledged batch is re-applied by recovery,
// a rejected one leaves no trace on disk or in memory. Returns the
// convoys the batch closed.
func (f *feed) applyBatch(b TickBatch) ([]ConvoyJSON, error) {
	ids := make([]model.ObjectID, len(b.Positions))
	pts := make([]geom.Point, len(b.Positions))
	// Labels interned for this batch are rolled back if any validation
	// below rejects it, so rejected batches never grow the feed's label
	// table.
	base := len(f.labels)
	rollback := func() {
		for _, label := range f.labels[base:] {
			delete(f.ids, label)
		}
		f.labels = f.labels[:base]
	}
	reject := func(err error) error {
		rollback()
		return badRequest(err)
	}
	for i, pos := range b.Positions {
		if pos.ID == "" {
			return nil, reject(fmt.Errorf("tick %d: position %d has empty id", b.T, i))
		}
		if !geom.Finite(pos.X) || !geom.Finite(pos.Y) {
			// NaN/Inf poisons distance math and could panic the
			// clustering grid; the wire must never hand a monitor
			// non-finite geometry.
			return nil, reject(fmt.Errorf("tick %d: position %q has non-finite coordinates (%g, %g)", b.T, pos.ID, pos.X, pos.Y))
		}
		id, ok := f.ids[pos.ID]
		if !ok {
			id = len(f.labels)
			f.ids[pos.ID] = id
			f.labels = append(f.labels, pos.ID)
		}
		ids[i] = id
		pts[i] = geom.Pt(pos.X, pos.Y)
	}
	if dup, ok := core.FirstDuplicateID(ids); ok {
		// A repeated ID would cluster with itself and fake a convoy
		// out of one real object (the same shared check the core
		// Streamer runs).
		label := f.labels[dup]
		return nil, reject(fmt.Errorf("tick %d: duplicate id %q", b.T, label))
	}
	// Proximity edges are validated like positions: non-finite or
	// negative weights, self-loops and empty labels poison the
	// contact graph the same way NaN poisons distance math. Unknown
	// endpoint labels are interned (an edge can mention an object
	// with no position this tick) and roll back with the batch.
	if len(b.Edges) > f.cfg.MaxEdgesPerTick {
		return nil, reject(fmt.Errorf("tick %d: %d edges exceed the per-tick limit %d", b.T, len(b.Edges), f.cfg.MaxEdgesPerTick))
	}
	var edges []core.ProxEdge
	if len(b.Edges) > 0 {
		edges = make([]core.ProxEdge, len(b.Edges))
		for i, e := range b.Edges {
			if e.A == "" || e.B == "" {
				return nil, reject(fmt.Errorf("tick %d: edge %d has an empty object label", b.T, i))
			}
			if e.A == e.B {
				return nil, reject(fmt.Errorf("tick %d: edge %d is a self-loop on %q", b.T, i, e.A))
			}
			if !geom.Finite(e.W) || e.W < 0 {
				return nil, reject(fmt.Errorf("tick %d: edge %d (%q, %q) has bad weight %g (want finite ≥ 0)", b.T, i, e.A, e.B, e.W))
			}
			intern := func(label string) model.ObjectID {
				id, ok := f.ids[label]
				if !ok {
					id = len(f.labels)
					f.ids[label] = id
					f.labels = append(f.labels, label)
				}
				return id
			}
			edges[i] = core.ProxEdge{A: intern(e.A), B: intern(e.B), W: e.W}
		}
	}
	if f.started && b.T <= f.lastTick {
		// Tick monotonicity is a feed-level invariant: it must fail
		// before any monitor advances, or the table would desync.
		return nil, reject(fmt.Errorf("tick %d not after %d", b.T, f.lastTick))
	}
	if f.w != nil && !f.recovering {
		// Log-before-apply. A batch the log refuses is rolled back whole —
		// the feed must never hold state its recovery cannot reproduce.
		if err := f.w.log.Append(tickBlock(b)); err != nil {
			rollback()
			return nil, fmt.Errorf("serve: wal append: %w", err)
		}
	}
	// One clustering pass per distinct (e, m, backend) among live
	// monitors.
	snap := core.TickSnapshot{T: b.T, IDs: ids, Pts: pts, Edges: edges}
	clusters := make(map[core.ClusterKey][][]model.ObjectID, len(f.sources))
	var tickFull, tickInc, tickRecl int64
	for key, src := range f.sources {
		clusters[key] = src.Cluster(snap)
		f.clusterPasses++
		if inc, recl := src.LastPass(); inc {
			tickInc++
			tickRecl += int64(recl)
		} else {
			tickFull++
			tickRecl += int64(recl)
		}
	}
	f.passesFull += tickFull
	f.passesInc += tickInc
	f.reclustered += tickRecl
	f.objectsSeen += int64(len(ids)) * int64(len(f.sources))
	// Meter the sharing: len(sources) passes actually ran where a
	// per-monitor engine would have run len(order).
	f.cfg.metrics.feedPasses.Add(float64(len(f.sources)))
	f.cfg.metrics.feedPassesNaive.Add(float64(len(f.order)))
	f.cfg.metrics.feedPassesFull.Add(float64(tickFull))
	f.cfg.metrics.feedPassesInc.Add(float64(tickInc))
	f.cfg.metrics.feedReclustered.Add(float64(tickRecl))
	f.cfg.metrics.feedObjectsSeen.Add(float64(len(ids) * len(f.sources)))
	var out []ConvoyJSON
	for _, fm := range f.order {
		closed, err := fm.mon.AdvanceClusters(b.T, clusters[fm.key])
		if err != nil {
			// Unreachable after the feed-level tick check; surface
			// as an internal error rather than corrupting the table.
			return out, fmt.Errorf("serve: monitor %q: %w", fm.id, err)
		}
		for _, c := range closed {
			f.emit(fm.id, c)
			fm.closed++
			out = append(out, f.history[len(f.history)-1].Convoy)
		}
	}
	f.lastTick, f.started = b.T, true
	f.ticks++
	f.cfg.metrics.feedTicks.Inc()
	f.cfg.metrics.feedPositions.Add(float64(len(b.Positions)))
	return out, nil
}

// monitorStatus snapshots one monitor's counters (worker only).
func (f *feed) monitorStatus(fm *feedMonitor) MonitorStatus {
	st := MonitorStatus{
		ID:        fm.id,
		Feed:      f.name,
		Params:    ParamsToJSON(fm.p),
		Clusterer: fm.key.BackendName(),
		Live:      fm.mon.Live(),
		Closed:    fm.closed,
	}
	if t, ok := fm.mon.LastTick(); ok {
		st.LastTick = &t
	}
	return st
}

// status snapshots the feed counters, including the monitor table.
func (f *feed) status(ctx context.Context) (FeedStatus, error) {
	v, err := f.do(ctx, func(f *feed) (any, error) {
		st := FeedStatus{
			Name:                     f.name,
			Params:                   ParamsToJSON(f.p),
			Clusterer:                f.backend,
			Ticks:                    f.ticks,
			Objects:                  len(f.labels),
			Closed:                   f.nextSeq,
			NextSeq:                  f.nextSeq,
			Monitors:                 make([]MonitorStatus, 0, len(f.monitors)),
			ClusterGroups:            len(f.sources),
			ClusterPasses:            f.clusterPasses,
			ClusterPassesFull:        f.passesFull,
			ClusterPassesIncremental: f.passesInc,
			ObjectsReclustered:       f.reclustered,
		}
		if f.objectsSeen > 0 {
			st.ReuseRatio = 1 - float64(f.reclustered)/float64(f.objectsSeen)
		}
		for _, fm := range f.order {
			st.Live += fm.mon.Live()
			st.Monitors = append(st.Monitors, f.monitorStatus(fm))
		}
		if f.started {
			t := f.lastTick
			st.LastTick = &t
		}
		return st, nil
	})
	st, _ := v.(FeedStatus)
	return st, err
}

// applyIncremental applies the feed-level incremental-clustering knob to
// every current cluster source and records it for sources created later
// (worker only, or during recovery replay). nil is a no-op.
func (f *feed) applyIncremental(on *bool) {
	if on == nil {
		return
	}
	f.incremental = on
	for _, src := range f.sources {
		if *on && !f.cfg.DisableIncremental {
			src.SetIncremental(core.DefaultChurnThreshold)
		} else {
			src.SetIncremental(0)
		}
	}
}

// setIncremental is the client-facing incremental knob. nil leaves the
// default (incremental on where it applies); false forces the from-scratch
// path; true restores the default threshold. The server-wide
// DisableIncremental config and the process kill switch both override a
// true. On a durable feed the flip is journaled before it applies.
func (f *feed) setIncremental(ctx context.Context, on *bool) error {
	if on == nil {
		return nil
	}
	_, err := f.do(ctx, func(f *feed) (any, error) {
		if f.w != nil {
			if err := f.appendSpecOp(specOp{Op: opIncremental, On: on}); err != nil {
				return nil, fmt.Errorf("serve: journal incremental flip: %w", err)
			}
		}
		f.applyIncremental(on)
		return nil, nil
	})
	return err
}

// addMonitor registers a standing query on the feed at runtime. A monitor
// added mid-stream starts chaining at the next ingested tick. On a durable
// feed the registration is journaled after it validates; a journal failure
// unwinds the insert so memory and disk cannot disagree.
func (f *feed) addMonitor(ctx context.Context, id string, p core.Params, clusterer string) (MonitorStatus, error) {
	f.touch()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		if err := f.insertMonitor(id, p, clusterer); err != nil {
			return MonitorStatus{}, err
		}
		if f.w != nil {
			pj := ParamsToJSON(p)
			op := specOp{Op: opMonitorAdd, ID: id, Params: &pj, Clusterer: f.monitors[id].key.BackendName()}
			if err := f.appendSpecOp(op); err != nil {
				// A just-inserted monitor has no live candidates, so the
				// unwind drains nothing and emits no events.
				_, _ = f.dropMonitor(id)
				return MonitorStatus{}, fmt.Errorf("serve: journal monitor add: %w", err)
			}
		}
		return f.monitorStatus(f.monitors[id]), nil
	})
	st, _ := v.(MonitorStatus)
	return st, err
}

// getMonitor snapshots one monitor's status.
func (f *feed) getMonitor(ctx context.Context, id string) (MonitorStatus, error) {
	v, err := f.do(ctx, func(f *feed) (any, error) {
		fm, ok := f.monitors[id]
		if !ok {
			return MonitorStatus{}, fmt.Errorf("%w: %q", errNoMonitor, id)
		}
		return f.monitorStatus(fm), nil
	})
	st, _ := v.(MonitorStatus)
	return st, err
}

// listMonitors snapshots the monitor table, ID-sorted.
func (f *feed) listMonitors(ctx context.Context) ([]MonitorStatus, error) {
	v, err := f.do(ctx, func(f *feed) (any, error) {
		out := make([]MonitorStatus, 0, len(f.order))
		for _, fm := range f.order {
			out = append(out, f.monitorStatus(fm))
		}
		return out, nil
	})
	sts, _ := v.([]MonitorStatus)
	return sts, err
}

// dropMonitor drains one monitor — its open candidates with sufficient
// lifetime become tagged events — and drops it from the table, releasing
// its cluster source when no other monitor shares the key (worker only,
// or during recovery replay).
func (f *feed) dropMonitor(id string) ([]ConvoyJSON, error) {
	fm, ok := f.monitors[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errNoMonitor, id)
	}
	drained := f.drainMonitor(fm)
	delete(f.monitors, id)
	f.cfg.metrics.monitors.Dec()
	for i, other := range f.order {
		if other == fm {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	shared := false
	for _, other := range f.monitors {
		if other.key == fm.key {
			shared = true
			break
		}
	}
	if !shared {
		delete(f.sources, fm.key)
	}
	return drained, nil
}

// removeMonitor is the client-facing monitor removal. On a durable feed
// the removal is journaled before the monitor drains, so a crash between
// the two replays the removal rather than resurrecting the monitor.
func (f *feed) removeMonitor(ctx context.Context, id string) (MonitorCloseResponse, error) {
	f.touch()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		if _, ok := f.monitors[id]; !ok {
			return MonitorCloseResponse{}, fmt.Errorf("%w: %q", errNoMonitor, id)
		}
		if f.w != nil {
			if err := f.appendSpecOp(specOp{Op: opMonitorRemove, ID: id}); err != nil {
				return MonitorCloseResponse{}, fmt.Errorf("serve: journal monitor remove: %w", err)
			}
		}
		drained, err := f.dropMonitor(id)
		if err != nil {
			return MonitorCloseResponse{}, err
		}
		return MonitorCloseResponse{ID: id, Drained: drained}, nil
	})
	resp, _ := v.(MonitorCloseResponse)
	return resp, err
}

// eventsSince returns the retained events with seq ≥ since.
func (f *feed) eventsSince(ctx context.Context, since uint64) (EventsResponse, error) {
	f.touch()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		return EventsResponse{Events: f.replay(since), NextSeq: f.nextSeq}, nil
	})
	resp, _ := v.(EventsResponse)
	return resp, err
}

// replay copies the retained events with seq ≥ since (worker only).
func (f *feed) replay(since uint64) []Event {
	out := []Event{}
	for _, ev := range f.history {
		if ev.Seq >= since {
			out = append(out, ev)
		}
	}
	return out
}

// subscribe atomically replays history since the given seq and registers a
// live event channel, so no event between replay and registration is lost.
// The returned channel is closed when the feed dies or the subscriber lags
// beyond its buffer; cancel unregisters it.
func (f *feed) subscribe(ctx context.Context, since uint64) (replayed []Event, ch chan Event, cancel func(), err error) {
	f.touch()
	ch = make(chan Event, f.cfg.EventBuffer)
	v, err := f.do(ctx, func(f *feed) (any, error) {
		f.subs[ch] = struct{}{}
		return f.replay(since), nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	cancel = func() {
		// Best-effort: the feed may already be gone, which also closes ch.
		_, _ = f.do(context.Background(), func(f *feed) (any, error) {
			if _, ok := f.subs[ch]; ok {
				delete(f.subs, ch)
				close(ch)
			}
			return nil, nil
		})
	}
	return v.([]Event), ch, cancel, nil
}

// close drains every monitor in the table — open candidates with
// sufficient lifetime become final tagged events — closes every
// subscriber, and stops the worker. Subsequent operations fail with
// errFeedClosed.
func (f *feed) close(ctx context.Context) (FeedCloseResponse, error) {
	v, err := f.do(ctx, func(f *feed) (any, error) {
		resp := FeedCloseResponse{Drained: []ConvoyJSON{}}
		for _, fm := range f.order {
			resp.Drained = append(resp.Drained, f.drainMonitor(fm)...)
		}
		for ch := range f.subs {
			delete(f.subs, ch)
			close(ch)
		}
		// The table dies with the feed: its monitors leave the gauge even
		// though the map itself is not cleared.
		f.cfg.metrics.monitors.Add(-float64(len(f.order)))
		if f.w != nil {
			// Release the file handles with the feed; the files stay on
			// disk (the registry removes the directory on DELETE, keeps it
			// on idle eviction so a restart resurrects the feed).
			if err := f.w.close(); err != nil {
				f.cfg.Logger.Error("wal close failed", "feed", f.name, "error", err.Error())
			}
		}
		f.draining = true
		return resp, nil
	})
	resp, _ := v.(FeedCloseResponse)
	return resp, err
}

// idleSince reports the time of the feed's last request.
func (f *feed) idleSince() time.Time { return time.Unix(0, f.lastActive.Load()) }
