package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
)

// A feed wraps one core.Streamer behind a dedicated worker goroutine with a
// bounded command mailbox. All streamer state — the label→ID mapping, the
// event history, the subscriber set — is owned by the worker and touched by
// no one else, so the feed is race-free by construction; the mailbox depth
// is the ingestion backpressure point (senders block once it fills).

// errFeedClosed reports an operation on a feed that has been deleted,
// evicted or shut down.
var errFeedClosed = errors.New("serve: feed closed")

// feedCmd is one mailbox message: an operation the worker runs with
// exclusive access to the feed state. The worker sends the outcome on
// reply (buffered, never blocks).
type feedCmd struct {
	op    func(*feed) (any, error)
	reply chan feedReply
}

type feedReply struct {
	val any
	err error
}

type feed struct {
	name string
	p    core.Params
	cfg  Config

	cmds chan feedCmd
	// done is closed after the worker drains; senders select on it so a
	// request can never deadlock against a dying feed.
	done chan struct{}
	// lastActive is the unix-nano time of the last request, read by the
	// idle-eviction janitor.
	lastActive atomic.Int64

	// Worker-owned state below; only the worker goroutine touches it.
	s      *core.Streamer
	ids    map[string]model.ObjectID // label → dense ID
	labels []string                  // dense ID → label
	ticks  int64                     // ingested tick batches

	history  []Event // ring of the last cfg.HistoryLimit events
	nextSeq  uint64  // seq of the next event to emit
	subs     map[chan Event]struct{}
	draining bool
}

func newFeed(name string, p core.Params, cfg Config) (*feed, error) {
	s, err := core.NewStreamer(p)
	if err != nil {
		return nil, err
	}
	f := &feed{
		name: name,
		p:    p,
		cfg:  cfg,
		cmds: make(chan feedCmd, cfg.FeedBuffer),
		done: make(chan struct{}),
		s:    s,
		ids:  make(map[string]model.ObjectID),
		subs: make(map[chan Event]struct{}),
	}
	f.lastActive.Store(time.Now().UnixNano())
	go f.run()
	return f, nil
}

// run is the worker loop: execute commands until a close command flips
// draining, then fail whatever is still queued.
func (f *feed) run() {
	for cmd := range f.cmds {
		val, err := cmd.op(f)
		cmd.reply <- feedReply{val, err}
		if f.draining {
			break
		}
	}
	close(f.done)
	for {
		select {
		case cmd := <-f.cmds:
			cmd.reply <- feedReply{nil, errFeedClosed}
		default:
			return
		}
	}
}

// touch marks the feed active for the idle-eviction janitor. Ingestion
// and event consumption touch; pure status reads do not, so monitoring
// dashboards polling statuses cannot keep an abandoned feed alive.
func (f *feed) touch() { f.lastActive.Store(time.Now().UnixNano()) }

// do submits an operation and waits for its outcome. Blocking on a full
// mailbox is the backpressure contract; the context and the feed's own
// death both release the caller.
func (f *feed) do(ctx context.Context, op func(*feed) (any, error)) (any, error) {
	cmd := feedCmd{op: op, reply: make(chan feedReply, 1)}
	select {
	case f.cmds <- cmd:
	case <-f.done:
		return nil, errFeedClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-cmd.reply:
		return r.val, r.err
	case <-f.done:
		// The worker may have replied in the instant before it died;
		// prefer the real outcome when it is there.
		select {
		case r := <-cmd.reply:
			return r.val, r.err
		default:
			return nil, errFeedClosed
		}
	}
}

// emit appends one closed convoy to the history ring and fans it out to
// subscribers. A subscriber whose buffer is full is cut off (its channel
// closed); it can reconnect and replay with ?since=.
func (f *feed) emit(c core.Convoy) {
	ev := Event{
		Seq:  f.nextSeq,
		Feed: f.name,
		Convoy: ConvoyToJSON(c, func(id model.ObjectID) string {
			if id >= 0 && int(id) < len(f.labels) {
				return f.labels[id]
			}
			return ""
		}),
	}
	f.nextSeq++
	if len(f.history) >= f.cfg.HistoryLimit {
		n := copy(f.history, f.history[1:])
		f.history = f.history[:n]
	}
	f.history = append(f.history, ev)
	for ch := range f.subs {
		select {
		case ch <- ev:
		default:
			delete(f.subs, ch)
			close(ch)
		}
	}
}

// ingest applies tick batches in order and returns the closed convoys.
// The first bad tick aborts the batch; everything before it sticks (the
// response reports how many were accepted).
func (f *feed) ingest(ctx context.Context, batches []TickBatch) (TicksResponse, error) {
	f.touch()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		resp := TicksResponse{Closed: []ConvoyJSON{}}
		for _, b := range batches {
			ids := make([]model.ObjectID, len(b.Positions))
			pts := make([]geom.Point, len(b.Positions))
			seen := make(map[string]struct{}, len(b.Positions))
			for i, pos := range b.Positions {
				if pos.ID == "" {
					return resp, badRequest(fmt.Errorf("tick %d: position %d has empty id", b.T, i))
				}
				if _, dup := seen[pos.ID]; dup {
					// A repeated ID would cluster with itself and fake a
					// convoy out of one real object.
					return resp, badRequest(fmt.Errorf("tick %d: duplicate id %q", b.T, pos.ID))
				}
				if math.IsNaN(pos.X) || math.IsInf(pos.X, 0) || math.IsNaN(pos.Y) || math.IsInf(pos.Y, 0) {
					// NaN/Inf poisons distance math and could panic the
					// clustering grid; the wire must never hand the
					// streamer non-finite geometry.
					return resp, badRequest(fmt.Errorf("tick %d: position %q has non-finite coordinates (%g, %g)", b.T, pos.ID, pos.X, pos.Y))
				}
				seen[pos.ID] = struct{}{}
				id, ok := f.ids[pos.ID]
				if !ok {
					id = len(f.labels)
					f.ids[pos.ID] = id
					f.labels = append(f.labels, pos.ID)
				}
				ids[i] = id
				pts[i] = geom.Pt(pos.X, pos.Y)
			}
			closed, err := f.s.Advance(b.T, ids, pts)
			if err != nil {
				return resp, badRequest(err) // non-monotonic or malformed tick
			}
			f.ticks++
			for _, c := range closed {
				f.emit(c)
				resp.Closed = append(resp.Closed, f.history[len(f.history)-1].Convoy)
			}
			resp.Accepted++
		}
		return resp, nil
	})
	resp, _ := v.(TicksResponse)
	return resp, err
}

// status snapshots the feed counters.
func (f *feed) status(ctx context.Context) (FeedStatus, error) {
	v, err := f.do(ctx, func(f *feed) (any, error) {
		st := FeedStatus{
			Name:    f.name,
			Params:  ParamsToJSON(f.p),
			Ticks:   f.ticks,
			Objects: len(f.labels),
			Live:    f.s.Live(),
			Closed:  f.nextSeq,
			NextSeq: f.nextSeq,
		}
		if t, ok := f.s.LastTick(); ok {
			st.LastTick = &t
		}
		return st, nil
	})
	st, _ := v.(FeedStatus)
	return st, err
}

// eventsSince returns the retained events with seq ≥ since.
func (f *feed) eventsSince(ctx context.Context, since uint64) (EventsResponse, error) {
	f.touch()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		return EventsResponse{Events: f.replay(since), NextSeq: f.nextSeq}, nil
	})
	resp, _ := v.(EventsResponse)
	return resp, err
}

// replay copies the retained events with seq ≥ since (worker only).
func (f *feed) replay(since uint64) []Event {
	out := []Event{}
	for _, ev := range f.history {
		if ev.Seq >= since {
			out = append(out, ev)
		}
	}
	return out
}

// subscribe atomically replays history since the given seq and registers a
// live event channel, so no event between replay and registration is lost.
// The returned channel is closed when the feed dies or the subscriber lags
// beyond its buffer; cancel unregisters it.
func (f *feed) subscribe(ctx context.Context, since uint64) (replayed []Event, ch chan Event, cancel func(), err error) {
	f.touch()
	ch = make(chan Event, f.cfg.EventBuffer)
	v, err := f.do(ctx, func(f *feed) (any, error) {
		f.subs[ch] = struct{}{}
		return f.replay(since), nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	cancel = func() {
		// Best-effort: the feed may already be gone, which also closes ch.
		f.do(context.Background(), func(f *feed) (any, error) {
			if _, ok := f.subs[ch]; ok {
				delete(f.subs, ch)
				close(ch)
			}
			return nil, nil
		})
	}
	return v.([]Event), ch, cancel, nil
}

// close drains the streamer — open candidates with sufficient lifetime
// become final events — closes every subscriber, and stops the worker.
// Subsequent operations fail with errFeedClosed.
func (f *feed) close(ctx context.Context) (FeedCloseResponse, error) {
	v, err := f.do(ctx, func(f *feed) (any, error) {
		resp := FeedCloseResponse{Drained: []ConvoyJSON{}}
		for _, c := range f.s.Close() {
			f.emit(c)
			resp.Drained = append(resp.Drained, f.history[len(f.history)-1].Convoy)
		}
		for ch := range f.subs {
			delete(f.subs, ch)
			close(ch)
		}
		f.draining = true
		return resp, nil
	})
	resp, _ := v.(FeedCloseResponse)
	return resp, err
}

// idleSince reports the time of the feed's last request.
func (f *feed) idleSince() time.Time { return time.Unix(0, f.lastActive.Load()) }
