package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// Monitors that share (e, m) but name different clustering backends must
// never share a clustering pass: a DBSCAN monitor reads positions, a
// proxgraph monitor reads the contact graph, and the same tick stream can
// hold a convoy for one and not the other.
func TestFeedBackendIsolationHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "iso", ParamsJSON{M: 2, K: 3, Eps: 1})
	st := addMonitor(t, ts.URL, "iso", MonitorSpec{
		ID: "graph", Params: ParamsJSON{M: 2, K: 3, Eps: 1}, Clusterer: "proxgraph"})
	if st.Clusterer != "proxgraph" {
		t.Fatalf("monitor clusterer = %q, want proxgraph", st.Clusterer)
	}

	// Same (e, m), different backend → two cluster groups.
	var fs FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/iso", nil, http.StatusOK, &fs)
	if fs.ClusterGroups != 2 {
		t.Fatalf("cluster groups = %d, want 2 (backend is part of the key)", fs.ClusterGroups)
	}
	if fs.Clusterer != "dbscan" {
		t.Fatalf("feed clusterer = %q, want dbscan", fs.Clusterer)
	}

	// Ticks 0..3: a and b are far apart geometrically (no DBSCAN cluster at
	// e=1) but in contact on the proximity graph. Tick 4 breaks the contact.
	ticks := int64(0)
	for tick := model.Tick(0); tick < 4; tick++ {
		pushTick(t, ts.URL, "iso", TickBatch{T: tick,
			Positions: []Position{{ID: "a", X: 0, Y: 0}, {ID: "b", X: 50, Y: 50}},
			Edges:     []EdgeJSON{{A: "a", B: "b", W: 1}}})
		ticks++
	}
	pushTick(t, ts.URL, "iso", TickBatch{T: 4,
		Positions: []Position{{ID: "a", X: 0, Y: 0}, {ID: "b", X: 50, Y: 50}}})
	ticks++

	// One pass per distinct key per tick: 2 groups × ticks.
	doJSON(t, "GET", ts.URL+"/v1/feeds/iso", nil, http.StatusOK, &fs)
	if want := ticks * 2; fs.ClusterPasses != want {
		t.Fatalf("cluster passes = %d over %d ticks, want %d", fs.ClusterPasses, ticks, want)
	}

	// Only the proxgraph monitor saw a convoy: {a, b} over ticks 0..3.
	var poll EventsResponse
	doJSON(t, "GET", ts.URL+"/v1/feeds/iso/convoys", nil, http.StatusOK, &poll)
	if len(poll.Events) != 1 {
		t.Fatalf("events = %+v, want exactly one (proxgraph only)", poll.Events)
	}
	ev := poll.Events[0]
	c := ev.Convoy
	if ev.Monitor != "graph" || len(c.Objects) != 2 || c.Objects[0] != "a" || c.Objects[1] != "b" ||
		c.Start != 0 || c.End != 3 {
		t.Fatalf("event = %+v, want monitor graph convoy [a b]@[0,3]", ev)
	}
}

// A feed created with clusterer "proxgraph" discovers convoys from a
// coordinate-free contact stream (edge-only tick batches).
func TestFeedEdgeOnlyStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st FeedStatus
	doJSON(t, "POST", ts.URL+"/v1/feeds",
		FeedSpec{Name: "contacts", Params: ParamsJSON{M: 2, K: 2, Eps: 0.5}, Clusterer: "proxgraph"},
		http.StatusCreated, &st)
	if st.Clusterer != "proxgraph" {
		t.Fatalf("feed clusterer = %q, want proxgraph", st.Clusterer)
	}

	// A bare edge-only batch (no "ticks" wrapper, no positions) is a valid
	// ingestion body.
	body := `{"t":0,"edges":[{"a":"x","b":"y","w":1}]}`
	resp, err := http.Post(ts.URL+"/v1/feeds/contacts/ticks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare edge-only batch: status %d, want 200", resp.StatusCode)
	}

	pushTick(t, ts.URL, "contacts", TickBatch{T: 1, Edges: []EdgeJSON{{A: "x", B: "y", W: 1}}})
	got := pushTick(t, ts.URL, "contacts", TickBatch{T: 2}) // contact lost
	if len(got.Closed) != 1 || got.Closed[0].Objects[0] != "x" || got.Closed[0].Objects[1] != "y" ||
		got.Closed[0].Start != 0 || got.Closed[0].End != 1 {
		t.Fatalf("closed = %+v, want [x y]@[0,1]", got.Closed)
	}

	// An unknown backend is the client's mistake.
	doJSON(t, "POST", ts.URL+"/v1/feeds",
		FeedSpec{Name: "bogus", Params: ParamsJSON{M: 2, K: 2, Eps: 1}, Clusterer: "voronoi"},
		http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/contacts/monitors",
		MonitorSpec{ID: "bad", Params: ParamsJSON{M: 2, K: 2, Eps: 1}, Clusterer: "voronoi"},
		http.StatusBadRequest, nil)
}

// Malformed proximity edges are rejected at the wire, the offending batch
// is not applied (its tick stays available), and labels interned while
// validating it roll back.
func TestTickEdgeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxEdgesPerTick: 2})
	createFeed(t, ts.URL, "edgy", ParamsJSON{M: 2, K: 2, Eps: 1})

	bad := []TickBatch{
		{T: 0, Edges: []EdgeJSON{{A: "", B: "b", W: 1}}},                                                  // empty label
		{T: 0, Edges: []EdgeJSON{{A: "a", B: "a", W: 1}}},                                                 // self-loop
		{T: 0, Edges: []EdgeJSON{{A: "a", B: "b", W: -1}}},                                                // negative weight
		{T: 0, Edges: []EdgeJSON{{A: "a", B: "b", W: 1}, {A: "b", B: "c", W: 1}, {A: "c", B: "d", W: 1}}}, // over the cap
	}
	for i, batch := range bad {
		doJSON(t, "POST", ts.URL+"/v1/feeds/edgy/ticks",
			TicksRequest{Ticks: []TickBatch{batch}}, http.StatusBadRequest, nil)
		var st FeedStatus
		doJSON(t, "GET", ts.URL+"/v1/feeds/edgy", nil, http.StatusOK, &st)
		if st.Ticks != 0 || st.Objects != 0 {
			t.Fatalf("batch %d: ticks=%d objects=%d after rejection, want 0/0 (rolled back)", i, st.Ticks, st.Objects)
		}
	}

	// Tick 0 was never consumed by the rejected batches.
	pushTick(t, ts.URL, "edgy", TickBatch{T: 0, Edges: []EdgeJSON{{A: "a", B: "b", W: 1}}})
	var st FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/edgy", nil, http.StatusOK, &st)
	if st.Ticks != 1 || st.Objects != 2 {
		t.Fatalf("after valid batch: ticks=%d objects=%d, want 1/2", st.Ticks, st.Objects)
	}
}

// contactLogCSV is the hand-checked fixture: a–b and b–c in contact over
// ticks 1..5 (a convoy {a,b,c} under m=3, k=3, e=1 by transitivity), a weak
// d–a contact below the threshold, and an undersized trailing a–b contact.
const contactLogCSV = `a,b,t,w
a,b,1,1
b,c,1,1
d,a,1,0.5
a,b,2,1
b,c,2,1
a,b,3,1
b,c,3,1
a,b,4,1
b,c,4,1
a,b,5,1
b,c,5,1
a,b,6,1
`

// POST /v1/query?clusterer=proxgraph uploads an edge CSV instead of a
// trajectory database and answers with graph-connectivity convoys; the
// algorithm defaults to cmc and the CuTS family is rejected.
func TestQueryClustererProxgraphE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(url, "text/csv", strings.NewReader(contactLogCSV))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	resp, data := post(ts.URL + "/v1/query?m=3&k=3&e=1&clusterer=proxgraph")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Algo != AlgoCMC || qr.Clusterer != "proxgraph" || qr.Cache != "miss" {
		t.Fatalf("algo=%q clusterer=%q cache=%q, want cmc/proxgraph/miss", qr.Algo, qr.Clusterer, qr.Cache)
	}
	if len(qr.Convoys) != 1 {
		t.Fatalf("convoys = %+v, want exactly one", qr.Convoys)
	}
	c := qr.Convoys[0]
	if len(c.Objects) != 3 || c.Objects[0] != "a" || c.Objects[1] != "b" || c.Objects[2] != "c" ||
		c.Start != 1 || c.End != 5 {
		t.Fatalf("convoy = %+v, want [a b c]@[1,5]", c)
	}

	// The identical query is a cache hit; the same parameters under the
	// default backend are a *different* key — the same bytes parse as a
	// different kind of input, so they must never share an answer (here
	// the bytes are not a trajectory CSV at all, so dbscan rejects them).
	resp, data = post(ts.URL + "/v1/query?m=3&k=3&e=1&clusterer=proxgraph")
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || qr.Cache != "hit" {
		t.Fatalf("repeat: status %d cache %q, want 200 hit", resp.StatusCode, qr.Cache)
	}
	resp, data = post(ts.URL + "/v1/query?m=3&k=3&e=1&algo=cmc")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("default-backend query over edge bytes: status %d (%s), want 400", resp.StatusCode, data)
	}

	// Explicit algo=cmc is fine; the CuTS family and unknown backends 400.
	resp, data = post(ts.URL + "/v1/query?m=3&k=3&e=1&clusterer=proxgraph&algo=cmc")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit cmc: status %d: %s", resp.StatusCode, data)
	}
	resp, data = post(ts.URL + "/v1/query?m=3&k=3&e=1&clusterer=proxgraph&algo=cuts*")
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte("algo=cmc")) {
		t.Fatalf("cuts* with proxgraph: status %d (%s), want 400 naming algo=cmc", resp.StatusCode, data)
	}
	resp, data = post(ts.URL + "/v1/query?m=3&k=3&e=1&clusterer=voronoi")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown clusterer: status %d (%s), want 400", resp.StatusCode, data)
	}

	// A malformed edge CSV under proxgraph is the client's fault, not a 500.
	resp, err := http.Post(ts.URL+"/v1/query?m=3&k=3&e=1&clusterer=proxgraph",
		"text/csv", strings.NewReader("obj,t,x,y\n0,0,1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trajectory bytes under proxgraph: status %d, want 400", resp.StatusCode)
	}
}

// The cache key separates backends even for byte-identical uploads and
// otherwise equal parameters.
func TestQueryCacheKeyIncludesClusterer(t *testing.T) {
	base := QueryRequest{QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 2, Eps: 1}, Algo: AlgoCMC}}
	plain, err := plan(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	base.Clusterer = "proxgraph"
	graph, err := plan(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.key("digest") == graph.key("digest") {
		t.Fatalf("cache key %q shared across backends", plain.key("digest"))
	}
	// The default backend's canonical spellings share a key (and keep the
	// legacy key shape, so existing cache entries stay addressable).
	base.Clusterer = "dbscan"
	named, err := plan(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if named.key("digest") != plain.key("digest") {
		t.Fatalf("dbscan key %q != default key %q", named.key("digest"), plain.key("digest"))
	}
}
