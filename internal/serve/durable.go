package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/tsio"
	"repro/internal/wal"
)

// Durable feeds: the glue between the serve layer and internal/wal.
//
// A durable feed (Config.WALDir set) owns WALDir/feeds/<escaped-name>: a
// manifest recording its creation spec, CRC-framed tick segments holding
// every accepted batch, and a spec journal holding the dynamic operations
// (monitor add/remove, incremental flips) tagged with the stream position
// they happened at. Recovery rebuilds a feed by replaying exactly what a
// client did: the manifest re-creates it, the tick blocks re-ingest
// through the same applyBatch path live traffic uses, and the journal ops
// interleave at their recorded positions — so the monitor table, the
// dense label interning, the event history and every counter come back
// identical to a process that never died.
//
// Deliberately NOT the core.ReplayTicks path: that bridge walks a stored
// database over its whole time domain, interpolating positions for every
// tick in range, which is the right semantics for driving a feed from a
// trajectory file but the wrong one for recovery — a live feed only
// advanced on the ticks clients actually POSTed, and recovery must
// reproduce those ticks verbatim, gaps included.

// feedWALDirName is the per-feed subdirectory under Config.WALDir.
const feedWALDirName = "feeds"

// feedWALDir is the directory of one feed's log. The name is URL-escaped:
// feed names may hold any non-path byte, file systems are pickier.
func feedWALDir(walRoot, name string) string {
	return filepath.Join(walRoot, feedWALDirName, url.PathEscape(name))
}

// walOptions maps the server config onto one feed's log options.
func walOptions(cfg Config) wal.Options {
	return wal.Options{
		SegmentBytes:  cfg.WALSegmentBytes,
		SegmentAge:    cfg.WALSegmentAge,
		Fsync:         cfg.WALFsync,
		FsyncInterval: cfg.WALFsyncInterval,
		RetainTicks:   cfg.WALRetainTicks,
		Observer:      cfg.metrics,
	}
}

// feedManifest is the creation record stored in a feed's WAL manifest:
// the normalized creation spec. Incremental is deliberately absent — it
// flows through the spec journal like every other dynamic change.
type feedManifest struct {
	Name      string     `json:"name"`
	Params    ParamsJSON `json:"params"`
	Clusterer string     `json:"clusterer"`
}

// specOp is one spec-journal entry: a dynamic feed-specification change,
// tagged with the stream position it happened at so recovery interleaves
// it exactly (a monitor added after tick 7 starts chaining at the first
// replayed tick after 7, just like it did live).
type specOp struct {
	// Op is "monitor-add", "monitor-remove" or "incremental".
	Op string `json:"op"`
	// ID names the monitor for the monitor ops.
	ID string `json:"id,omitempty"`
	// Params and Clusterer carry a monitor-add's spec.
	Params    *ParamsJSON `json:"params,omitempty"`
	Clusterer string      `json:"clusterer,omitempty"`
	// On carries an incremental flip.
	On *bool `json:"on,omitempty"`
	// AfterTick/Started record the feed's stream position at the time of
	// the op: Started=false means before any tick.
	AfterTick int64 `json:"after_tick"`
	Started   bool  `json:"started"`
}

const (
	opMonitorAdd    = "monitor-add"
	opMonitorRemove = "monitor-remove"
	opIncremental   = "incremental"
)

// feedWAL bundles one durable feed's persistence handles. The feed worker
// owns it like the rest of the feed state (the wal package's own locks
// only serialize against the interval-fsync goroutine).
type feedWAL struct {
	log *wal.Log
	jnl *wal.Journal
	// recovery describes the replay that resurrected this feed; zero for a
	// freshly created one.
	recovery RecoveryInfo
}

// RecoveryInfo summarizes one feed's crash recovery (the recovery block
// of GET /v1/feeds/{name}/wal).
type RecoveryInfo struct {
	// Recovered is true when this feed was rebuilt from its WAL at server
	// start (false for feeds created over HTTP since).
	Recovered bool
	// ReplayedTicks counts the tick batches re-applied; SkippedTicks the
	// batches dropped as already-applied duplicates (batch-level
	// idempotence: at-least-once ingestion may log a batch the previous
	// process also logged).
	ReplayedTicks int64
	SkippedTicks  int64
	// ReplayedOps counts the spec-journal operations re-applied.
	ReplayedOps int64
	// TruncatedBytes is the torn tail dropped from the segments and the
	// journal — > 0 means the previous process died mid-append.
	TruncatedBytes int64
	// Duration is the replay's wall time.
	Duration time.Duration
}

// close releases the file handles; the files stay on disk.
func (w *feedWAL) close() error {
	err := w.log.Close()
	if jerr := w.jnl.Close(); err == nil {
		err = jerr
	}
	return err
}

// appendSpecOp stamps the feed's current stream position onto the op and
// journals it durably.
func (f *feed) appendSpecOp(op specOp) error {
	op.AfterTick = int64(f.lastTick)
	op.Started = f.started
	data, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("serve: encode spec op: %w", err)
	}
	return f.w.jnl.Append(data)
}

// tickBlock converts a validated wire batch to its persisted form.
func tickBlock(b TickBatch) tsio.TickBlock {
	blk := tsio.TickBlock{T: b.T}
	if len(b.Positions) > 0 {
		blk.Positions = make([]tsio.TickPosition, len(b.Positions))
		for i, p := range b.Positions {
			blk.Positions[i] = tsio.TickPosition{Label: p.ID, X: p.X, Y: p.Y}
		}
	}
	if len(b.Edges) > 0 {
		blk.Edges = make([]tsio.TickEdge, len(b.Edges))
		for i, e := range b.Edges {
			blk.Edges[i] = tsio.TickEdge{A: e.A, B: e.B, W: e.W}
		}
	}
	return blk
}

// tickBatch converts a persisted block back to the wire form applyBatch
// consumes.
func tickBatch(blk tsio.TickBlock) TickBatch {
	b := TickBatch{T: blk.T}
	if len(blk.Positions) > 0 {
		b.Positions = make([]Position, len(blk.Positions))
		for i, p := range blk.Positions {
			b.Positions[i] = Position{ID: p.Label, X: p.X, Y: p.Y}
		}
	}
	if len(blk.Edges) > 0 {
		b.Edges = make([]EdgeJSON, len(blk.Edges))
		for i, e := range blk.Edges {
			b.Edges[i] = EdgeJSON{A: e.A, B: e.B, W: e.W}
		}
	}
	return b
}

// createFeedWAL initialises a fresh log for a feed being created; the
// caller has already checked no log exists under the name.
func createFeedWAL(cfg Config, name string, p ParamsJSON, clusterer string) (*feedWAL, error) {
	meta, err := json.Marshal(feedManifest{Name: name, Params: p, Clusterer: clusterer})
	if err != nil {
		return nil, fmt.Errorf("serve: encode feed manifest: %w", err)
	}
	dir := feedWALDir(cfg.WALDir, name)
	log, err := wal.Create(dir, meta, walOptions(cfg))
	if err != nil {
		return nil, fmt.Errorf("serve: create feed wal: %w", err)
	}
	jnl, _, _, err := wal.OpenJournal(dir)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("serve: open spec journal: %w", err)
	}
	return &feedWAL{log: log, jnl: jnl}, nil
}

// recoverFeed rebuilds one feed from its WAL directory: manifest →
// creation, tick segments + spec journal → replay, then the worker
// starts. The returned feed is registered by the caller.
func recoverFeed(cfg Config, dir string) (*feed, error) {
	t0 := time.Now()
	log, meta, err := wal.Open(dir, walOptions(cfg))
	if err != nil {
		return nil, err
	}
	var mf feedManifest
	if err := json.Unmarshal(meta, &mf); err != nil {
		log.Close()
		return nil, fmt.Errorf("decode feed manifest: %w", err)
	}
	jnl, rawOps, jnlTruncated, err := wal.OpenJournal(dir)
	if err != nil {
		log.Close()
		return nil, err
	}
	w := &feedWAL{log: log, jnl: jnl}
	f, err := buildFeed(mf.Name, mf.Params.Params(), mf.Clusterer, cfg, w)
	if err != nil {
		w.close()
		return nil, err
	}
	ops := make([]specOp, 0, len(rawOps))
	for i, raw := range rawOps {
		var op specOp
		if err := json.Unmarshal(raw, &op); err != nil {
			w.close()
			return nil, fmt.Errorf("decode spec op %d: %w", i, err)
		}
		ops = append(ops, op)
	}

	// Replay: the worker is not running yet, so the feed state is safe to
	// touch directly. Journal ops recorded at stream position (started,
	// afterTick) apply once the replayed stream reaches that position —
	// before the first batch whose tick is past it.
	f.recovering = true
	opIdx := 0
	applyOps := func(nextTick model.Tick, haveNext bool) error {
		for opIdx < len(ops) {
			op := ops[opIdx]
			due := !op.Started || !haveNext || op.AfterTick < int64(nextTick)
			if !due {
				return nil
			}
			if err := f.applySpecOp(op); err != nil {
				return fmt.Errorf("replay spec op %d (%s %q): %w", opIdx, op.Op, op.ID, err)
			}
			f.w.recovery.ReplayedOps++
			opIdx++
		}
		return nil
	}
	err = log.Replay(func(blk tsio.TickBlock) error {
		if f.started && blk.T <= f.lastTick {
			// Batch-level idempotence: at-least-once ingestion can log a
			// batch twice across a crash; the replayed copy is a no-op.
			f.w.recovery.SkippedTicks++
			return nil
		}
		if err := applyOps(blk.T, true); err != nil {
			return err
		}
		if _, err := f.applyBatch(tickBatch(blk)); err != nil {
			return fmt.Errorf("replay tick %d: %w", blk.T, err)
		}
		f.w.recovery.ReplayedTicks++
		return nil
	})
	if err == nil {
		// Ops recorded after the last durable tick (or on a feed that never
		// ticked) apply at the end.
		err = applyOps(0, false)
	}
	if err != nil {
		w.close()
		return nil, err
	}
	f.recovering = false
	f.w.recovery.Recovered = true
	f.w.recovery.TruncatedBytes = log.Status().TruncatedBytes + jnlTruncated
	f.w.recovery.Duration = time.Since(t0)
	f.lastActive.Store(time.Now().UnixNano())
	go f.run()
	return f, nil
}

// applySpecOp re-applies one journaled operation during replay (worker
// not yet running).
func (f *feed) applySpecOp(op specOp) error {
	switch op.Op {
	case opMonitorAdd:
		var p ParamsJSON
		if op.Params != nil {
			p = *op.Params
		}
		return f.insertMonitor(op.ID, p.Params(), op.Clusterer)
	case opMonitorRemove:
		_, err := f.dropMonitor(op.ID)
		return err
	case opIncremental:
		f.applyIncremental(op.On)
		return nil
	default:
		return fmt.Errorf("unknown spec op %q", op.Op)
	}
}

// recoverFeeds scans cfg.WALDir for feed logs and resurrects each into
// the registry — the recovery-on-start path, run by New before the server
// takes traffic. A feed whose log is damaged beyond the torn tail is
// logged and skipped; its directory stays on disk for inspection and does
// not block the rest.
func (r *registry) recoverFeeds(cfg Config) {
	root := filepath.Join(cfg.WALDir, feedWALDirName)
	entries, err := os.ReadDir(root)
	if err != nil {
		if !os.IsNotExist(err) {
			cfg.Logger.Error("wal recovery: scan failed", "dir", root, "error", err.Error())
		}
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	t0 := time.Now()
	var recovered, failed int
	for _, name := range names {
		dir := filepath.Join(root, name)
		if !wal.Exists(dir) {
			continue // not a feed log (no manifest); leave it alone
		}
		f, err := recoverFeed(cfg, dir)
		if err != nil {
			failed++
			cfg.Logger.Error("wal recovery: feed skipped", "dir", dir, "error", err.Error())
			continue
		}
		r.mu.Lock()
		r.feeds[f.name] = f
		r.mu.Unlock()
		recovered++
		cfg.metrics.walRecoveredFeeds.Inc()
		cfg.metrics.walReplayedTicks.Add(float64(f.w.recovery.ReplayedTicks))
		cfg.metrics.walTruncatedBytes.Add(float64(f.w.recovery.TruncatedBytes))
		cfg.Logger.Info("feed recovered from wal",
			"feed", f.name,
			"ticks", f.w.recovery.ReplayedTicks,
			"ops", f.w.recovery.ReplayedOps,
			"skipped", f.w.recovery.SkippedTicks,
			"truncated_bytes", f.w.recovery.TruncatedBytes,
			"duration_ms", msFloat(f.w.recovery.Duration))
	}
	cfg.metrics.walRecoverySeconds.Set(time.Since(t0).Seconds())
	if recovered > 0 || failed > 0 {
		cfg.Logger.Info("wal recovery finished",
			"recovered", recovered, "failed", failed,
			"duration_ms", msFloat(time.Since(t0)))
	}
}

// walStatus snapshots the feed's log and recovery stats through the
// mailbox, so the counters are coherent with the stream position.
func (f *feed) walStatus(ctx context.Context) (wal.Status, RecoveryInfo, error) {
	type walSnap struct {
		st  wal.Status
		rec RecoveryInfo
	}
	v, err := f.do(ctx, func(f *feed) (any, error) {
		if f.w == nil {
			return nil, errNoWAL
		}
		return walSnap{f.w.log.Status(), f.w.recovery}, nil
	})
	if err != nil {
		return wal.Status{}, RecoveryInfo{}, err
	}
	s := v.(walSnap)
	return s.st, s.rec, nil
}

// walStatusJSON renders a log snapshot for GET /v1/feeds/{name}/wal.
func walStatusJSON(feed string, fsync wal.FsyncPolicy, st wal.Status, rec RecoveryInfo) WALStatusJSON {
	out := WALStatusJSON{
		Feed:              feed,
		Fsync:             fsync.String(),
		Segments:          st.Segments,
		Bytes:             st.Bytes,
		Records:           st.Records,
		AppendedRecords:   st.AppendedRecords,
		AppendedBytes:     st.AppendedBytes,
		CompactedSegments: st.CompactedSegments,
	}
	if st.HasTicks {
		first, last := model.Tick(st.FirstTick), model.Tick(st.LastTick)
		out.FirstTick, out.LastTick = &first, &last
	}
	if !st.LastSync.IsZero() {
		t := st.LastSync
		out.LastSync = &t
	}
	if rec.Recovered {
		out.Recovery = &WALRecoveryJSON{
			ReplayedTicks:  rec.ReplayedTicks,
			SkippedTicks:   rec.SkippedTicks,
			ReplayedOps:    rec.ReplayedOps,
			TruncatedBytes: rec.TruncatedBytes,
			DurationMS:     msFloat(rec.Duration),
		}
	}
	return out
}

// window reads the feed's logged batches with from ≤ t ≤ to through the
// mailbox, serialized against appends.
func (f *feed) window(ctx context.Context, from, to model.Tick) ([]TickBatch, error) {
	f.touch()
	v, err := f.do(ctx, func(f *feed) (any, error) {
		if f.w == nil {
			return nil, errNoWAL
		}
		return f.readWindow(from, to)
	})
	if err != nil {
		return nil, err
	}
	batches, _ := v.([]TickBatch)
	return batches, nil
}

// readWindow snapshots the feed's logged batches with from ≤ t ≤ to, in
// append order — the historical-query read path (worker only).
func (f *feed) readWindow(from, to model.Tick) ([]TickBatch, error) {
	var out []TickBatch
	err := f.w.log.ReadRange(from, to, true, func(blk tsio.TickBlock) error {
		out = append(out, tickBatch(blk))
		return nil
	})
	return out, err
}

// windowDB assembles a trajectory database from logged batches — the
// historical query's bridge into core.Query. Labels intern in replay
// order; per-object samples are appended in tick order because batches
// replay in ingestion order and ticks advance strictly.
func windowDB(batches []TickBatch) (*model.DB, error) {
	ids := map[string]int{}
	var samples [][]model.Sample
	var labels []string
	for _, b := range batches {
		for _, pos := range b.Positions {
			id, ok := ids[pos.ID]
			if !ok {
				id = len(labels)
				ids[pos.ID] = id
				labels = append(labels, pos.ID)
				samples = append(samples, nil)
			}
			samples[id] = append(samples[id], model.Sample{T: b.T, P: geom.Pt(pos.X, pos.Y)})
		}
	}
	db := model.NewDB()
	for i, label := range labels {
		tr, err := model.NewTrajectory(label, samples[i])
		if err != nil {
			return nil, fmt.Errorf("serve: window database: %w", err)
		}
		db.Add(tr)
	}
	return db, nil
}
