package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// serveMetrics bundles every instrument the server updates. One bundle is
// built per Server (by Config.withDefaults) over the configured registry —
// or a private one when none is given — and threaded to the registry, the
// feeds and the query engine through the config.
//
// Metric catalogue (all families prefixed convoyd_):
//
//	http_requests_total{route,code}   every API request, by mux route
//	http_request_seconds{route}       API latency, by mux route
//	queries_total{algo,cache,outcome} batch queries; cache = hit|miss|dedup|none,
//	                                  outcome = ok|canceled|timeout|bad_request|error
//	query_seconds{algo,outcome}       batch query latency (queueing + discovery)
//	query_inflight                    worker-pool occupancy (slots held)
//	query_workers                     worker-pool capacity (constant)
//	query_computes_total              discovery runs actually started
//	query_stats_total{stat,algo}      core run stats folded per algorithm
//	                                  (cluster_passes, candidates, refine_units, …)
//	cache_entries                     LRU result-cache size
//	feeds                             live feeds
//	feeds_created_total               feeds created
//	feeds_deleted_total               feeds deleted over HTTP
//	feeds_evicted_total               feeds evicted by the idle janitor
//	monitors                          standing queries across all feeds
//	feed_ticks_total                  tick batches ingested (rate() = tick rate)
//	feed_positions_total              positions ingested
//	feed_ingest_seconds               ingestion latency incl. mailbox wait
//	                                  (the feed's backpressure lag)
//	feed_events_total                 closed-convoy events emitted
//	feed_cluster_passes_total         snapshot DBSCAN passes actually run
//	feed_cluster_passes_naive_total   passes a per-monitor engine would have
//	                                  run (ticks × monitors); the difference
//	                                  is the work shared clustering saved
//	feed_cluster_passes_full_total    passes that clustered from scratch
//	feed_cluster_passes_incremental_total
//	                                  passes answered by the incremental
//	                                  engine (previous-tick structure
//	                                  patched; full + incremental = passes)
//	feed_objects_reclustered_total    objects whose neighborhoods were
//	                                  recomputed; against objects_seen this
//	                                  yields the feed's reuse ratio
//	feed_objects_seen_total           objects pushed through clustering
//	wal_appended_records_total        WAL records appended (one per batch)
//	wal_appended_bytes_total          framed WAL bytes appended
//	wal_fsyncs_total                  active-segment fsyncs
//	wal_fsync_seconds                 fsync latency (the durability tax a
//	                                  -wal-fsync=always ingest pays per batch)
//	wal_segments                      open WAL segments across durable feeds
//	wal_recovered_feeds_total         feeds rebuilt from their WAL at start
//	wal_replayed_ticks_total          tick batches re-applied by recovery
//	wal_truncated_bytes_total         torn-tail bytes dropped by recovery
//	wal_recovery_seconds              wall time of the last recovery-on-start
//
// serveMetrics also implements wal.Observer (OnAppend/OnFsync/OnSegments),
// the wal package's metrics-free hook; callbacks may arrive from each
// log's interval-fsync goroutine, which the atomic instruments tolerate.
type serveMetrics struct {
	reg *metrics.Registry

	httpRequests *metrics.CounterVec
	httpSeconds  *metrics.HistogramVec

	queries       *metrics.CounterVec
	querySeconds  *metrics.HistogramVec
	queryInflight *metrics.Gauge
	queryComputes *metrics.Counter
	queryStats    *metrics.CounterVec

	feedTicks         *metrics.Counter
	feedPositions     *metrics.Counter
	feedEvents        *metrics.Counter
	feedIngestSeconds *metrics.Histogram
	feedPasses        *metrics.Counter
	feedPassesNaive   *metrics.Counter
	feedPassesFull    *metrics.Counter
	feedPassesInc     *metrics.Counter
	feedReclustered   *metrics.Counter
	feedObjectsSeen   *metrics.Counter
	feedsCreated      *metrics.Counter
	feedsDeleted      *metrics.Counter
	feedsEvicted      *metrics.Counter
	monitors          *metrics.Gauge

	walAppendedRecords *metrics.Counter
	walAppendedBytes   *metrics.Counter
	walFsyncs          *metrics.Counter
	walFsyncSeconds    *metrics.Histogram
	walSegments        *metrics.Gauge
	walRecoveredFeeds  *metrics.Counter
	walReplayedTicks   *metrics.Counter
	walTruncatedBytes  *metrics.Counter
	walRecoverySeconds *metrics.Gauge

	// Unregistered side counters backing the ServerStats snapshot: the
	// labeled families above cannot be summed per label value without
	// iterating series, so the snapshot-relevant slices are counted twice —
	// once in the vec for /metrics, once here for Snapshot.
	queriesTotal, cacheHits, cacheMisses, cacheDedups metrics.Counter
	queriesCanceled, queriesTimedOut, queriesRejected metrics.Counter
}

// newServeMetrics registers the server's instrument families on reg.
// Registering the same family twice on one registry panics, so a registry
// must not be shared by two servers.
func newServeMetrics(reg *metrics.Registry) *serveMetrics {
	m := &serveMetrics{reg: reg}
	metrics.RegisterRuntime(reg)
	m.httpRequests = reg.CounterVec("convoyd_http_requests_total",
		"API requests served, by mux route and status code.", "route", "code")
	m.httpSeconds = reg.HistogramVec("convoyd_http_request_seconds",
		"API request latency in seconds, by mux route.", nil, "route")
	m.queries = reg.CounterVec("convoyd_queries_total",
		"Batch queries, by algorithm, cache state (hit|miss|dedup|none) and outcome (ok|canceled|timeout|bad_request|error).",
		"algo", "cache", "outcome")
	m.querySeconds = reg.HistogramVec("convoyd_query_seconds",
		"Batch query latency in seconds (queueing plus discovery), by algorithm and outcome.",
		nil, "algo", "outcome")
	m.queryInflight = reg.Gauge("convoyd_query_inflight",
		"Worker-pool slots currently held by executing batch queries.")
	m.queryComputes = reg.Counter("convoyd_query_computes_total",
		"Discovery runs actually started (cache misses that reached the core).")
	m.queryStats = reg.CounterVec("convoyd_query_stats_total",
		"Core discovery-run statistics accumulated per algorithm (see core.Stats.Each).",
		"stat", "algo")
	m.feedTicks = reg.Counter("convoyd_feed_ticks_total",
		"Tick batches ingested across all feeds; rate() of this is the tick rate.")
	m.feedPositions = reg.Counter("convoyd_feed_positions_total",
		"Object positions ingested across all feeds.")
	m.feedEvents = reg.Counter("convoyd_feed_events_total",
		"Closed-convoy events emitted across all feeds.")
	m.feedIngestSeconds = reg.Histogram("convoyd_feed_ingest_seconds",
		"Tick-ingestion latency in seconds, mailbox wait included — the feed's backpressure lag.", nil)
	m.feedPasses = reg.Counter("convoyd_feed_cluster_passes_total",
		"Snapshot clustering passes actually run (one per distinct key per tick).")
	m.feedPassesNaive = reg.Counter("convoyd_feed_cluster_passes_naive_total",
		"Clustering passes a per-monitor engine would have run (ticks times monitors); the gap to the actual counter is the shared-clustering saving.")
	m.feedPassesFull = reg.Counter("convoyd_feed_cluster_passes_full_total",
		"Clustering passes that ran from scratch (first ticks, high churn, degenerate input, or incremental clustering off).")
	m.feedPassesInc = reg.Counter("convoyd_feed_cluster_passes_incremental_total",
		"Clustering passes answered by the incremental engine patching the previous tick's structure; full plus incremental equals the pass total.")
	m.feedReclustered = reg.Counter("convoyd_feed_objects_reclustered_total",
		"Objects whose neighborhoods were recomputed during feed clustering; compare with objects_seen for the reuse ratio.")
	m.feedObjectsSeen = reg.Counter("convoyd_feed_objects_seen_total",
		"Objects pushed through feed clustering (positions times sharing keys); the denominator of the reuse ratio.")
	m.feedsCreated = reg.Counter("convoyd_feeds_created_total", "Feeds created.")
	m.feedsDeleted = reg.Counter("convoyd_feeds_deleted_total", "Feeds deleted over HTTP.")
	m.feedsEvicted = reg.Counter("convoyd_feeds_evicted_total", "Feeds evicted by the idle janitor.")
	m.monitors = reg.Gauge("convoyd_monitors",
		"Standing queries (monitors) registered across all feeds.")
	m.walAppendedRecords = reg.Counter("convoyd_wal_appended_records_total",
		"Write-ahead-log records appended across all durable feeds (one per accepted tick batch).")
	m.walAppendedBytes = reg.Counter("convoyd_wal_appended_bytes_total",
		"Framed write-ahead-log bytes appended across all durable feeds.")
	m.walFsyncs = reg.Counter("convoyd_wal_fsyncs_total",
		"Fsyncs of active WAL segments.")
	m.walFsyncSeconds = reg.Histogram("convoyd_wal_fsync_seconds",
		"WAL fsync latency in seconds — the durability tax each batch pays under -wal-fsync=always.", nil)
	m.walSegments = reg.Gauge("convoyd_wal_segments",
		"Open WAL segments across all durable feeds.")
	m.walRecoveredFeeds = reg.Counter("convoyd_wal_recovered_feeds_total",
		"Feeds rebuilt from their write-ahead logs at server start.")
	m.walReplayedTicks = reg.Counter("convoyd_wal_replayed_ticks_total",
		"Tick batches re-applied by WAL recovery.")
	m.walTruncatedBytes = reg.Counter("convoyd_wal_truncated_bytes_total",
		"Torn-tail bytes dropped by WAL recovery (segments and spec journals).")
	m.walRecoverySeconds = reg.Gauge("convoyd_wal_recovery_seconds",
		"Wall time of the last recovery-on-start replay.")
	return m
}

// OnAppend implements wal.Observer: one record appended to some feed's log.
func (m *serveMetrics) OnAppend(records, bytes int) {
	m.walAppendedRecords.Add(float64(records))
	m.walAppendedBytes.Add(float64(bytes))
}

// OnFsync implements wal.Observer: one fsync of an active segment.
func (m *serveMetrics) OnFsync(d time.Duration) {
	m.walFsyncs.Inc()
	m.walFsyncSeconds.Observe(d.Seconds())
}

// OnSegments implements wal.Observer: open-segment count change.
func (m *serveMetrics) OnSegments(delta int) { m.walSegments.Add(float64(delta)) }

// bindServer registers the exposition-time gauges that read live server
// structures; called once per Server, after those structures exist.
func (m *serveMetrics) bindServer(s *Server) {
	m.reg.GaugeFunc("convoyd_feeds", "Live feeds.", func() float64 {
		return float64(s.reg.count())
	})
	m.reg.GaugeFunc("convoyd_query_workers", "Worker-pool capacity for batch queries.", func() float64 {
		return float64(s.cfg.QueryWorkers)
	})
	m.reg.GaugeFunc("convoyd_cache_entries", "Batch-query LRU cache entries.", func() float64 {
		if s.q.lru == nil {
			return 0
		}
		return float64(s.q.lru.len())
	})
}

// algoLabel normalizes a client-supplied algorithm name into a bounded
// label set — arbitrary strings must not mint new metric series.
func algoLabel(name string) string {
	if _, _, err := ParseAlgo(name); err != nil {
		return "invalid"
	}
	if name == "" {
		return AlgoCuTSStar
	}
	return strings.ToLower(name)
}

// outcomeOf classifies a query error for the outcome label.
func outcomeOf(err error) string {
	var bre *badRequestError
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.As(err, &bre):
		return "bad_request"
	default:
		return "error"
	}
}

// observeQuery records one finished batch query. traceID, when non-empty
// (the request was traced), lands as an OpenMetrics exemplar on the
// latency bucket the query fell into, joining the histogram to
// /debug/traces.
func (m *serveMetrics) observeQuery(algo, cache string, err error, d time.Duration, traceID string) {
	if cache == "" {
		cache = "none"
	}
	outcome := outcomeOf(err)
	m.queries.With(algo, cache, outcome).Inc()
	m.querySeconds.With(algo, outcome).ObserveExemplar(d.Seconds(), traceID, unixNow())

	m.queriesTotal.Inc()
	switch cache {
	case "hit":
		m.cacheHits.Inc()
	case "miss":
		m.cacheMisses.Inc()
	case "dedup":
		m.cacheDedups.Inc()
	}
	switch outcome {
	case "canceled":
		m.queriesCanceled.Inc()
	case "timeout":
		m.queriesTimedOut.Inc()
	case "bad_request":
		m.queriesRejected.Inc()
	}
}

// observeRunStats folds one discovery run's core statistics into the
// per-algorithm stat counters.
func (m *serveMetrics) observeRunStats(algo string, st core.Stats) {
	st.Each(func(name string, v float64) {
		m.queryStats.With(name, algo).Add(v)
	})
}

// statusWriter captures the response status for the HTTP middleware while
// preserving the Flusher the NDJSON tail handler needs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it can flush (the NDJSON
// tail path type-asserts for this).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// observeHTTP records one finished API request; a non-empty traceID
// becomes the latency bucket's exemplar.
func (m *serveMetrics) observeHTTP(route string, code int, d time.Duration, traceID string) {
	if route == "" {
		route = "unmatched"
	}
	m.httpRequests.With(route, strconv.Itoa(code)).Inc()
	m.httpSeconds.With(route).ObserveExemplar(d.Seconds(), traceID, unixNow())
}

// ServerStats is a read-only snapshot of the server's counters — the
// registry janitor's evictions, the feed engine's ingestion and shared
// clustering meters, and the query engine's cache and outcome counts.
// Server.Snapshot assembles it from the same instruments /metrics
// exposes; GET /v1/stats serves it as JSON.
type ServerStats struct {
	// Feeds is the number of currently registered feeds.
	Feeds int `json:"feeds"`
	// FeedsCreated / FeedsDeleted / FeedsEvicted count feed lifecycle
	// events; Evicted is the idle janitor's work.
	FeedsCreated int64 `json:"feeds_created"`
	FeedsDeleted int64 `json:"feeds_deleted"`
	FeedsEvicted int64 `json:"feeds_evicted"`
	// Monitors is the number of standing queries across all feeds.
	Monitors int64 `json:"monitors"`
	// Ticks / Positions / Events count ingestion and emission across all
	// feeds, dead ones included.
	Ticks     int64 `json:"ticks"`
	Positions int64 `json:"positions"`
	Events    int64 `json:"events"`
	// ClusterPasses counts snapshot clustering passes actually run by the
	// feed engine; ClusterPassesNaive what ticks × monitors would have
	// cost. Naive minus actual is the shared-clustering saving.
	ClusterPasses      int64 `json:"cluster_passes"`
	ClusterPassesNaive int64 `json:"cluster_passes_naive"`
	// ClusterPassesFull / ClusterPassesIncremental split ClusterPasses by
	// how the pass was answered: from scratch versus the incremental
	// engine patching the previous tick's structure. ObjectsReclustered
	// and ObjectsSeen meter the object-level work: ReuseRatio is the
	// fraction of object appearances whose neighborhoods were reused
	// (1 − reclustered/seen; 0 before any clustering).
	ClusterPassesFull        int64   `json:"cluster_passes_full"`
	ClusterPassesIncremental int64   `json:"cluster_passes_incremental"`
	ObjectsReclustered       int64   `json:"objects_reclustered"`
	ObjectsSeen              int64   `json:"objects_seen"`
	ReuseRatio               float64 `json:"reuse_ratio"`
	// Queries counts finished batch queries; Computes the discovery runs
	// actually started (misses that reached the core). CacheHits, Misses
	// and Dedups partition the successful queries by how they were
	// answered.
	Queries       int64 `json:"queries"`
	QueryComputes int64 `json:"query_computes"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheDedups   int64 `json:"cache_dedups"`
	// QueriesCanceled / TimedOut / Rejected count the failure outcomes
	// (client disconnects, deadline expiries, bad requests).
	QueriesCanceled int64 `json:"queries_canceled"`
	QueriesTimedOut int64 `json:"queries_timed_out"`
	QueriesRejected int64 `json:"queries_rejected"`
	// QueryInflight is the worker-pool occupancy right now; CacheEntries
	// the LRU result-cache size.
	QueryInflight int64 `json:"query_inflight"`
	CacheEntries  int   `json:"cache_entries"`
	// WALAppendedRecords / WALAppendedBytes / WALFsyncs count write-ahead
	// logging across all durable feeds; WALSegments is the open-segment
	// count right now. All zero on an in-memory server.
	WALAppendedRecords int64 `json:"wal_appended_records"`
	WALAppendedBytes   int64 `json:"wal_appended_bytes"`
	WALFsyncs          int64 `json:"wal_fsyncs"`
	WALSegments        int64 `json:"wal_segments"`
	// WALRecoveredFeeds / WALReplayedTicks / WALTruncatedBytes describe the
	// recovery-on-start replay; WALRecoverySeconds its wall time.
	WALRecoveredFeeds  int64   `json:"wal_recovered_feeds"`
	WALReplayedTicks   int64   `json:"wal_replayed_ticks"`
	WALTruncatedBytes  int64   `json:"wal_truncated_bytes"`
	WALRecoverySeconds float64 `json:"wal_recovery_seconds"`
}

// Snapshot returns the server's counters at this instant. It is safe to
// call concurrently with any traffic; the snapshot is not atomic across
// fields (each field is individually consistent).
func (s *Server) Snapshot() ServerStats {
	m := s.cfg.metrics
	st := ServerStats{
		Feeds:                    s.reg.count(),
		FeedsCreated:             int64(m.feedsCreated.Value()),
		FeedsDeleted:             int64(m.feedsDeleted.Value()),
		FeedsEvicted:             int64(m.feedsEvicted.Value()),
		Monitors:                 int64(m.monitors.Value()),
		Ticks:                    int64(m.feedTicks.Value()),
		Positions:                int64(m.feedPositions.Value()),
		Events:                   int64(m.feedEvents.Value()),
		ClusterPasses:            int64(m.feedPasses.Value()),
		ClusterPassesNaive:       int64(m.feedPassesNaive.Value()),
		ClusterPassesFull:        int64(m.feedPassesFull.Value()),
		ClusterPassesIncremental: int64(m.feedPassesInc.Value()),
		ObjectsReclustered:       int64(m.feedReclustered.Value()),
		ObjectsSeen:              int64(m.feedObjectsSeen.Value()),
		Queries:                  int64(m.queriesTotal.Value()),
		QueryComputes:            int64(m.queryComputes.Value()),
		CacheHits:                int64(m.cacheHits.Value()),
		CacheMisses:              int64(m.cacheMisses.Value()),
		CacheDedups:              int64(m.cacheDedups.Value()),
		QueriesCanceled:          int64(m.queriesCanceled.Value()),
		QueriesTimedOut:          int64(m.queriesTimedOut.Value()),
		QueriesRejected:          int64(m.queriesRejected.Value()),
		QueryInflight:            int64(m.queryInflight.Value()),
		WALAppendedRecords:       int64(m.walAppendedRecords.Value()),
		WALAppendedBytes:         int64(m.walAppendedBytes.Value()),
		WALFsyncs:                int64(m.walFsyncs.Value()),
		WALSegments:              int64(m.walSegments.Value()),
		WALRecoveredFeeds:        int64(m.walRecoveredFeeds.Value()),
		WALReplayedTicks:         int64(m.walReplayedTicks.Value()),
		WALTruncatedBytes:        int64(m.walTruncatedBytes.Value()),
		WALRecoverySeconds:       m.walRecoverySeconds.Value(),
	}
	if st.ObjectsSeen > 0 {
		st.ReuseRatio = 1 - float64(st.ObjectsReclustered)/float64(st.ObjectsSeen)
	}
	if s.q.lru != nil {
		st.CacheEntries = s.q.lru.len()
	}
	return st
}

// MetricsRegistry returns the registry holding the server's instruments —
// the configured one, or the private registry a zero config gets. Mount
// its Handler to expose /metrics.
func (s *Server) MetricsRegistry() *metrics.Registry { return s.cfg.metrics.reg }
