package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"testing"
	"time"

	"repro/internal/core"
)

// Unit coverage of the registry paths behind the HTTP handlers: the
// MaxFeeds cap, the shutdown gate, and the idle-eviction janitor's
// touch-vs-read semantics.

func testParams() core.Params { return core.Params{M: 2, K: 2, Eps: 1} }

func TestRegistryMaxFeedsSentinel(t *testing.T) {
	r := newRegistry(Config{MaxFeeds: 2}.withDefaults())
	defer r.closeAll()
	for _, name := range []string{"a", "b"} {
		if _, err := r.create(name, testParams(), ""); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.create("c", testParams(), "")
	if !errors.Is(err, errTooManyFeeds) {
		t.Fatalf("create over cap = %v, want errTooManyFeeds", err)
	}
	// Duplicate names and invalid params report their own sentinels.
	if _, err := r.create("a", testParams(), ""); !errors.Is(err, errFeedExists) {
		t.Fatalf("duplicate create = %v, want errFeedExists", err)
	}
	var bre *badRequestError
	if _, err := r.create("c", core.Params{}, ""); !errors.As(err, &bre) {
		t.Fatalf("invalid params = %v, want badRequestError", err)
	}
	// Removing frees the slot.
	if _, err := r.remove(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.create("c", testParams(), ""); err != nil {
		t.Fatalf("create after remove: %v", err)
	}
	if _, err := r.remove(context.Background(), "nope"); !errors.Is(err, errNoFeed) {
		t.Fatalf("remove missing = %v, want errNoFeed", err)
	}
}

func TestRegistryCreateAfterCloseAll(t *testing.T) {
	r := newRegistry(Config{}.withDefaults())
	f, err := r.create("a", testParams(), "")
	if err != nil {
		t.Fatal(err)
	}
	r.closeAll()
	if _, err := r.create("b", testParams(), ""); !errors.Is(err, errServerClosing) {
		t.Fatalf("create after closeAll = %v, want errServerClosing", err)
	}
	// The drained feed's worker is gone: operations fail with errFeedClosed.
	if _, err := f.status(context.Background()); !errors.Is(err, errFeedClosed) {
		t.Fatalf("status on closed feed = %v, want errFeedClosed", err)
	}
	if got := r.list(); len(got) != 0 {
		t.Fatalf("list after closeAll = %d feeds", len(got))
	}
}

func TestRegistryEvictIdle(t *testing.T) {
	r := newRegistry(Config{}.withDefaults())
	defer r.closeAll()
	stale, err := r.create("stale", testParams(), "")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := r.create("fresh", testParams(), "")
	if err != nil {
		t.Fatal(err)
	}
	// Age the stale feed past the cutoff; the fresh one just touched.
	stale.lastActive.Store(time.Now().Add(-time.Hour).UnixNano())
	if n := r.evictIdle(time.Now().Add(-time.Minute)); n != 1 {
		t.Fatalf("evicted %d feeds, want 1", n)
	}
	if _, err := r.get("stale"); !errors.Is(err, errNoFeed) {
		t.Fatalf("stale feed still registered: %v", err)
	}
	if _, err := fresh.status(context.Background()); err != nil {
		t.Fatalf("fresh feed drained: %v", err)
	}
	// Eviction drained the victim like a DELETE.
	if _, err := stale.ingest(context.Background(), []TickBatch{{T: 0}}); !errors.Is(err, errFeedClosed) {
		t.Fatalf("ingest on evicted feed = %v, want errFeedClosed", err)
	}
}

// Status reads do not refresh the idle clock (dashboards polling statuses
// must not keep an abandoned feed alive), while ingestion does.
func TestIdleClockTouchSemantics(t *testing.T) {
	cfg := Config{}.withDefaults()
	f, err := newFeed("clock", testParams(), "", cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close(context.Background())
	past := time.Now().Add(-time.Hour)
	f.lastActive.Store(past.UnixNano())
	if _, err := f.status(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := f.idleSince(); !got.Equal(past) {
		t.Fatalf("status read touched the idle clock: %v", got)
	}
	if _, err := f.ingest(context.Background(), []TickBatch{
		{T: 0, Positions: []Position{{ID: "a", X: 0, Y: 0}}}}); err != nil {
		t.Fatal(err)
	}
	if got := f.idleSince(); !got.After(past) {
		t.Fatal("ingestion did not touch the idle clock")
	}
}

// The janitor evicts a feed with a full monitor table and drains every
// monitor on the way out (no open convoy is lost to eviction).
func TestJanitorEvictsAndDrainsMonitorTable(t *testing.T) {
	srv := New(Config{IdleTimeout: 40 * time.Millisecond})
	defer srv.Close()
	f, err := srv.reg.create("sleepy", testParams(), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.addMonitor(context.Background(), "second", core.Params{M: 2, K: 1, Eps: 1}, ""); err != nil {
		t.Fatal(err)
	}
	for tick := int64(0); tick < 3; tick++ {
		if _, err := f.ingest(context.Background(), []TickBatch{{T: tick, Positions: []Position{
			{ID: "a", X: float64(tick), Y: 0}, {ID: "b", X: float64(tick), Y: 0.5}}}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.reg.get("sleepy"); errors.Is(err, errNoFeed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the feed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Both monitors' open convoys were drained into the history before the
	// subscribers were cut; the worker saw them as tagged events.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := f.status(context.Background()); errors.Is(err, errFeedClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted feed never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	byMonitor := map[string]int{}
	for _, ev := range f.history {
		byMonitor[ev.Monitor]++
	}
	if byMonitor[DefaultMonitorID] != 1 || byMonitor["second"] != 1 {
		t.Fatalf("drained events by monitor = %v, want one each", byMonitor)
	}
}

// The path→digest memo is LRU-bounded: referencing ever-new paths evicts
// the coldest entry instead of growing without limit, and recently used
// paths survive.
func TestPathDigestMemoBounded(t *testing.T) {
	e := newQueryEngine(Config{}.withDefaults())
	stat := fakeStat{mtime: time.Now(), size: 7}
	for i := 0; i < maxPathDigests+50; i++ {
		path := fmt.Sprintf("/data/db-%d.csv", i)
		e.storePathDigest(path, stat, fmt.Sprintf("digest-%d", i))
		// Keep path 0 hot so eviction hits colder entries instead.
		if i < maxPathDigests-1 {
			if _, ok := e.pathDigest("/data/db-0.csv", stat); !ok {
				t.Fatalf("hot path evicted after %d inserts", i)
			}
		}
	}
	if n := e.digests.len(); n != maxPathDigests {
		t.Fatalf("memo size = %d, want cap %d", n, maxPathDigests)
	}
	if _, ok := e.pathDigest("/data/db-1.csv", stat); ok {
		t.Fatal("cold entry survived past the cap")
	}
	if d, ok := e.pathDigest("/data/db-0.csv", stat); !ok || d != "digest-0" {
		t.Fatalf("hot entry evicted (ok=%v d=%q)", ok, d)
	}
	// A stat change invalidates the memo entry without removing it.
	if _, ok := e.pathDigest("/data/db-0.csv", fakeStat{mtime: stat.mtime.Add(time.Second), size: 7}); ok {
		t.Fatal("stale digest served after mtime change")
	}
}

// fakeStat is a minimal os.FileInfo for memo tests.
type fakeStat struct {
	mtime time.Time
	size  int64
}

func (f fakeStat) Name() string       { return "fake" }
func (f fakeStat) Size() int64        { return f.size }
func (f fakeStat) Mode() fs.FileMode  { return 0 }
func (f fakeStat) ModTime() time.Time { return f.mtime }
func (f fakeStat) IsDir() bool        { return false }
func (f fakeStat) Sys() any           { return nil }
