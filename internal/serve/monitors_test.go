package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
)

// addMonitor registers a monitor on a feed and asserts success.
func addMonitor(t *testing.T, base, feed string, spec MonitorSpec) MonitorStatus {
	t.Helper()
	var st MonitorStatus
	doJSON(t, "POST", base+"/v1/feeds/"+feed+"/monitors", spec, http.StatusCreated, &st)
	if st.ID != spec.ID || st.Feed != feed {
		t.Fatalf("created monitor %+v, want id %q on %q", st, spec.ID, feed)
	}
	return st
}

func TestMonitorTableCRUD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})

	// The creation params became the default monitor.
	var monitors []MonitorStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet/monitors", nil, http.StatusOK, &monitors)
	if len(monitors) != 1 || monitors[0].ID != DefaultMonitorID {
		t.Fatalf("initial monitors = %+v", monitors)
	}

	addMonitor(t, ts.URL, "fleet", MonitorSpec{ID: "patient", Params: ParamsJSON{M: 2, K: 10, Eps: 1}})
	addMonitor(t, ts.URL, "fleet", MonitorSpec{ID: "wide", Params: ParamsJSON{M: 2, K: 5, Eps: 3}})

	// Duplicates conflict; bad IDs and params are client mistakes.
	doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/monitors",
		MonitorSpec{ID: "patient", Params: ParamsJSON{M: 2, K: 2, Eps: 1}}, http.StatusConflict, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/monitors",
		MonitorSpec{ID: "a/b", Params: ParamsJSON{M: 2, K: 2, Eps: 1}}, http.StatusBadRequest, nil)
	// "." and ".." would be path-cleaned out of the monitor's own routes,
	// leaving a resource that can be created but never queried or deleted.
	doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/monitors",
		MonitorSpec{ID: ".", Params: ParamsJSON{M: 2, K: 2, Eps: 1}}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/monitors",
		MonitorSpec{ID: "..", Params: ParamsJSON{M: 2, K: 2, Eps: 1}}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds",
		FeedSpec{Name: "..", Params: ParamsJSON{M: 2, K: 2, Eps: 1}}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/monitors",
		MonitorSpec{ID: "bad", Params: ParamsJSON{M: 0, K: 0, Eps: -1}}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/nope/monitors",
		MonitorSpec{ID: "x", Params: ParamsJSON{M: 2, K: 2, Eps: 1}}, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet/monitors/nope", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/fleet/monitors/nope", nil, http.StatusNotFound, nil)

	// The feed status reflects the table: default and patient share the
	// clustering key (e=1, m=2); wide has its own.
	var st FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet", nil, http.StatusOK, &st)
	if len(st.Monitors) != 3 || st.ClusterGroups != 2 {
		t.Fatalf("status = %+v", st)
	}

	var mst MonitorStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet/monitors/patient", nil, http.StatusOK, &mst)
	if mst.Params.K != 10 {
		t.Fatalf("patient status = %+v", mst)
	}

	// Removing a key's last monitor drops its cluster group.
	var del MonitorCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/fleet/monitors/wide", nil, http.StatusOK, &del)
	if del.ID != "wide" {
		t.Fatalf("delete = %+v", del)
	}
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet", nil, http.StatusOK, &st)
	if len(st.Monitors) != 2 || st.ClusterGroups != 1 {
		t.Fatalf("after delete: %+v", st)
	}
}

func TestMonitorLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMonitorsPerFeed: 2})
	createFeed(t, ts.URL, "small", ParamsJSON{M: 2, K: 2, Eps: 1}) // default = 1 of 2
	addMonitor(t, ts.URL, "small", MonitorSpec{ID: "second", Params: ParamsJSON{M: 2, K: 3, Eps: 1}})
	doJSON(t, "POST", ts.URL+"/v1/feeds/small/monitors",
		MonitorSpec{ID: "third", Params: ParamsJSON{M: 2, K: 4, Eps: 1}},
		http.StatusTooManyRequests, nil)
	// Removing one frees a slot.
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/small/monitors/second", nil, http.StatusOK, nil)
	addMonitor(t, ts.URL, "small", MonitorSpec{ID: "third", Params: ParamsJSON{M: 2, K: 4, Eps: 1}})
}

// The acceptance property: each of N monitors registered on one feed emits
// (after canonicalization) exactly what a standalone Streamer with the same
// (m, k, e) emits over the same tick sequence — and the feed's
// clustering-pass counter proves monitors sharing (e, m) triggered exactly
// one DBSCAN pass per tick.
func TestPropFeedMonitorsEqualStreamers(t *testing.T) {
	specs := []MonitorSpec{
		// "default" is created with the feed below (m=3, k=4, e=1.5).
		{ID: "quick", Params: ParamsJSON{M: 3, K: 2, Eps: 1.5}},   // shares (e, m) with default
		{ID: "patient", Params: ParamsJSON{M: 3, K: 8, Eps: 1.5}}, // shares (e, m) with default
		{ID: "wide", Params: ParamsJSON{M: 3, K: 4, Eps: 2.5}},    // own key (different e)
		{ID: "pairs", Params: ParamsJSON{M: 2, K: 4, Eps: 1.5}},   // own key (different m)
	}
	const distinctKeys = 3
	for seed := int64(1); seed <= 3; seed++ {
		db := randomDB(t, seed)

		_, ts := newTestServer(t, Config{})
		createFeed(t, ts.URL, "multi", ParamsJSON{M: 3, K: 4, Eps: 1.5})
		for _, spec := range specs {
			addMonitor(t, ts.URL, "multi", spec)
		}

		emitted := map[string][]core.Convoy{}
		collect := func(monitor string, cs []ConvoyJSON) {
			for _, c := range cs {
				objs := make([]model.ObjectID, len(c.Objects))
				for i, label := range c.Objects {
					id, err := strconv.Atoi(label)
					if err != nil {
						t.Fatalf("label %q: %v", label, err)
					}
					objs[i] = id
				}
				sort.Ints(objs)
				emitted[monitor] = append(emitted[monitor], core.Convoy{Objects: objs, Start: c.Start, End: c.End})
			}
		}

		ticks := int64(0)
		err := core.ReplayTicks(db, func(tick model.Tick, ids []model.ObjectID, pts []geom.Point) error {
			ticks++
			batch := TickBatch{T: tick, Positions: make([]Position, len(ids))}
			for i, id := range ids {
				batch.Positions[i] = Position{ID: strconv.Itoa(id), X: pts[i].X, Y: pts[i].Y}
			}
			pushTick(t, ts.URL, "multi", batch)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		// One DBSCAN pass per distinct (e, m) per tick — not per monitor.
		var st FeedStatus
		doJSON(t, "GET", ts.URL+"/v1/feeds/multi", nil, http.StatusOK, &st)
		if st.ClusterGroups != distinctKeys {
			t.Fatalf("cluster groups = %d, want %d", st.ClusterGroups, distinctKeys)
		}
		if want := ticks * distinctKeys; st.ClusterPasses != want {
			t.Fatalf("cluster passes = %d over %d ticks, want %d (one per key per tick)",
				st.ClusterPasses, ticks, want)
		}

		// Collect each monitor's events from the shared log, then drain
		// each monitor individually for attribution of still-open convoys.
		var poll EventsResponse
		doJSON(t, "GET", ts.URL+"/v1/feeds/multi/convoys", nil, http.StatusOK, &poll)
		for _, ev := range poll.Events {
			collect(ev.Monitor, []ConvoyJSON{ev.Convoy})
		}
		all := append([]MonitorSpec{{ID: DefaultMonitorID, Params: ParamsJSON{M: 3, K: 4, Eps: 1.5}}}, specs...)
		for _, spec := range all {
			var del MonitorCloseResponse
			doJSON(t, "DELETE", ts.URL+"/v1/feeds/multi/monitors/"+spec.ID, nil, http.StatusOK, &del)
			collect(spec.ID, del.Drained)
		}

		for _, spec := range all {
			want, err := core.StreamDB(db, spec.Params.Params())
			if err != nil {
				t.Fatal(err)
			}
			got := core.Canonicalize(emitted[spec.ID])
			if !got.Equal(want) {
				t.Fatalf("seed %d monitor %q (m=%d k=%d e=%g): feed answer differs from standalone Streamer\ngot:\n%v\nwant:\n%v",
					seed, spec.ID, spec.Params.M, spec.Params.K, spec.Params.Eps, got, want)
			}
		}
	}
}

// Events are tagged with their monitor and ?monitor= filters both the poll
// and the NDJSON tail without disturbing the feed-level cursor.
func TestMonitorTaggedEventsAndFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "tagged", ParamsJSON{M: 2, K: 3, Eps: 1})
	addMonitor(t, ts.URL, "tagged", MonitorSpec{ID: "quick", Params: ParamsJSON{M: 2, K: 1, Eps: 1}})

	// Tail only the quick monitor's events, from the start.
	resp, err := http.Get(ts.URL + "/v1/feeds/tagged/events?monitor=quick")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan Event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				lines <- ev
			}
		}
		close(lines)
	}()

	// Two objects together for ticks 0..3, apart at 4: the default (k=3)
	// and quick (k=1) monitors both close a convoy at the split.
	for tick := model.Tick(0); tick < 4; tick++ {
		pushTick(t, ts.URL, "tagged", TickBatch{T: tick, Positions: []Position{
			{ID: "a", X: float64(tick), Y: 0}, {ID: "b", X: float64(tick), Y: 0.5}}})
	}
	pushTick(t, ts.URL, "tagged", TickBatch{T: 4, Positions: []Position{
		{ID: "a", X: 0, Y: 0}, {ID: "b", X: 70, Y: 70}}})

	var poll EventsResponse
	doJSON(t, "GET", ts.URL+"/v1/feeds/tagged/convoys", nil, http.StatusOK, &poll)
	byMonitor := map[string]int{}
	for _, ev := range poll.Events {
		byMonitor[ev.Monitor]++
	}
	if byMonitor[DefaultMonitorID] == 0 || byMonitor["quick"] == 0 {
		t.Fatalf("events by monitor = %v, want both monitors tagged", byMonitor)
	}

	var filtered EventsResponse
	doJSON(t, "GET", ts.URL+"/v1/feeds/tagged/convoys?monitor=quick", nil, http.StatusOK, &filtered)
	if len(filtered.Events) != byMonitor["quick"] || filtered.NextSeq != poll.NextSeq {
		t.Fatalf("filtered poll = %d events (next %d), want %d (next %d)",
			len(filtered.Events), filtered.NextSeq, byMonitor["quick"], poll.NextSeq)
	}
	for _, ev := range filtered.Events {
		if ev.Monitor != "quick" {
			t.Fatalf("filtered poll leaked %+v", ev)
		}
	}

	// The filtered tail saw quick's events and nothing else.
	deadline := time.After(5 * time.Second)
	for n := 0; n < byMonitor["quick"]; n++ {
		select {
		case ev, ok := <-lines:
			if !ok {
				t.Fatal("stream ended early")
			}
			if ev.Monitor != "quick" {
				t.Fatalf("filtered tail leaked %+v", ev)
			}
		case <-deadline:
			t.Fatal("timed out waiting for filtered events")
		}
	}
}

// A rejected tick batch must not leave its labels behind: validation
// failures roll the label table back, so clients hammering the feed with
// bad batches of ever-new IDs cannot grow its memory.
func TestRejectedBatchRollsBackLabels(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "clean", ParamsJSON{M: 2, K: 2, Eps: 1})
	pushTick(t, ts.URL, "clean", TickBatch{T: 0, Positions: []Position{
		{ID: "a", X: 0, Y: 0}, {ID: "b", X: 0.5, Y: 0}}})

	// Fresh labels + a duplicate: rejected, and the fresh labels roll back.
	doJSON(t, "POST", ts.URL+"/v1/feeds/clean/ticks",
		TicksRequest{Ticks: []TickBatch{{T: 1, Positions: []Position{
			{ID: "new1", X: 0, Y: 0}, {ID: "new2", X: 1, Y: 1}, {ID: "new1", X: 2, Y: 2}}}}},
		http.StatusBadRequest, nil)
	// Fresh labels + a stale tick: same.
	doJSON(t, "POST", ts.URL+"/v1/feeds/clean/ticks",
		TicksRequest{Ticks: []TickBatch{{T: 0, Positions: []Position{
			{ID: "new3", X: 0, Y: 0}, {ID: "new4", X: 1, Y: 1}}}}},
		http.StatusBadRequest, nil)

	var st FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/clean", nil, http.StatusOK, &st)
	if st.Objects != 2 {
		t.Fatalf("objects = %d after rejected batches, want 2 (a, b)", st.Objects)
	}
	// The feed still works, and a label from a rejected batch is re-usable.
	resp := pushTick(t, ts.URL, "clean", TickBatch{T: 1, Positions: []Position{
		{ID: "a", X: 1, Y: 0}, {ID: "new1", X: 1.5, Y: 0}}})
	if resp.Accepted != 1 {
		t.Fatalf("clean tick after rejections: %+v", resp)
	}
}

// Filtering by a monitor that does not exist is a 404, not a silently
// empty result (a typo'd dispatcher must hear about it).
func TestMonitorFilterUnknownIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "typo", ParamsJSON{M: 2, K: 2, Eps: 1})
	doJSON(t, "GET", ts.URL+"/v1/feeds/typo/convoys?monitor=defualt", nil, http.StatusNotFound, nil)
	resp, err := http.Get(ts.URL + "/v1/feeds/typo/events?monitor=defualt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("filtered tail with unknown monitor: status %d, want 404", resp.StatusCode)
	}
	// The real monitor still filters fine.
	doJSON(t, "GET", ts.URL+"/v1/feeds/typo/convoys?monitor="+DefaultMonitorID, nil, http.StatusOK, nil)
}

// Deleting a feed (and closing the server) drains every monitor in the
// table, so no monitor's open convoys are lost on shutdown.
func TestFeedShutdownDrainsAllMonitors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "gone", ParamsJSON{M: 2, K: 3, Eps: 1})
	addMonitor(t, ts.URL, "gone", MonitorSpec{ID: "second", Params: ParamsJSON{M: 2, K: 2, Eps: 1}})
	for tick := model.Tick(0); tick < 5; tick++ {
		pushTick(t, ts.URL, "gone", TickBatch{T: tick, Positions: []Position{
			{ID: "x", X: float64(tick), Y: 0}, {ID: "y", X: float64(tick), Y: 0.5}}})
	}
	var del FeedCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/gone", nil, http.StatusOK, &del)
	if len(del.Drained) != 2 {
		t.Fatalf("drained = %+v, want one open convoy per monitor", del.Drained)
	}
	for _, c := range del.Drained {
		if c.Lifetime != 5 || len(c.Objects) != 2 {
			t.Errorf("drained convoy = %+v", c)
		}
	}
}

// A monitor added mid-stream starts chaining at the next tick: it answers
// its query over the suffix it saw, not the feed's full history.
func TestMonitorAddedMidStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "late", ParamsJSON{M: 2, K: 2, Eps: 1})
	pair := func(tick model.Tick) TickBatch {
		return TickBatch{T: tick, Positions: []Position{
			{ID: "a", X: float64(tick), Y: 0}, {ID: "b", X: float64(tick), Y: 0.5}}}
	}
	for tick := model.Tick(0); tick < 3; tick++ {
		pushTick(t, ts.URL, "late", pair(tick))
	}
	addMonitor(t, ts.URL, "late", MonitorSpec{ID: "late-joiner", Params: ParamsJSON{M: 2, K: 2, Eps: 1}})
	for tick := model.Tick(3); tick < 6; tick++ {
		pushTick(t, ts.URL, "late", pair(tick))
	}
	var del MonitorCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/late/monitors/late-joiner", nil, http.StatusOK, &del)
	if len(del.Drained) != 1 || del.Drained[0].Start != 3 || del.Drained[0].End != 5 {
		t.Fatalf("late joiner drained = %+v, want [3,5]", del.Drained)
	}
	// The default monitor saw the whole stream.
	var del2 MonitorCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/late/monitors/"+DefaultMonitorID, nil, http.StatusOK, &del2)
	if len(del2.Drained) != 1 || del2.Drained[0].Start != 0 || del2.Drained[0].End != 5 {
		t.Fatalf("default drained = %+v, want [0,5]", del2.Drained)
	}
}
