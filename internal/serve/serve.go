// Package serve is the convoy-monitoring server behind the convoyd binary:
// a long-running, concurrent HTTP layer over the core algorithms.
//
// It hosts two engines:
//
//   - Feeds — named live position streams, each behind its own goroutine
//     and bounded mailbox. A feed hosts a *monitor table*: standing convoy
//     queries (core.Monitor, one per (m, k, e)) added and removed at
//     runtime over HTTP. Clients push per-tick position batches once and
//     observe, per monitor, convoys the moment they close — by polling or
//     by tailing an NDJSON event stream (events are tagged with the
//     monitor ID; ?monitor= filters). Per tick the feed worker runs one
//     clustering pass per *distinct* clustering key (e, m, backend) among
//     the live monitors and fans the clusters out to every monitor in the
//     group, so the per-tick cost is O(distinct keys), not O(monitors).
//     Monitors choose their clustering backend at creation ("clusterer":
//     "dbscan" over positions, or "proxgraph" over per-tick proximity
//     edges carried in the tick batch). Deleting a
//     monitor or a feed (or shutting the server down) drains open
//     candidates, so no convoy that satisfied the lifetime bound is ever
//     lost.
//
//   - Batch queries — POST a CSV/CTB database (or reference one under the
//     server's data directory) plus (m, k, e) and an algorithm, and get the
//     canonical answer with run statistics. Queries run on a bounded worker
//     pool and land in an LRU cache keyed by (db digest, params, variant).
//     The engine is context-first: a client that disconnects or exceeds its
//     timeout_ms (or the server's -request-timeout cap) aborts its
//     discovery run mid-clustering and frees the worker slot, and identical
//     concurrent queries collapse into one shared run (Cache: "dedup").
//
// When configured with a WAL directory (convoyd -data-dir), feeds are
// durable: every accepted tick batch is written ahead to a per-feed log
// (internal/wal) before any monitor advances, monitor registrations are
// journaled, and a restarting server replays the logs so its feeds come
// back state-identical to a process that never stopped — including after
// a crash mid-append. The retained window also serves historical queries.
//
// # HTTP API (all under /v1)
//
//	GET    /v1/healthz                      liveness + feed count
//	GET    /v1/stats                        read-only counter snapshot (ServerStats)
//	GET    /v1/feeds                        list feed statuses
//	POST   /v1/feeds                        create a feed     {name, params:{m,k,e}, clusterer?}
//	GET    /v1/feeds/{name}                 one feed's status (incl. monitor table)
//	DELETE /v1/feeds/{name}                 drain + delete    → {drained:[...]}
//	POST   /v1/feeds/{name}/ticks           ingest            {ticks:[{t, positions:[{id,x,y}], edges:[{a,b,w}]}]}
//	GET    /v1/feeds/{name}/convoys         poll closed convoys (?since=seq&monitor=id)
//	GET    /v1/feeds/{name}/events          NDJSON tail of closed convoys (?since=seq&monitor=id)
//	GET    /v1/feeds/{name}/monitors        list the feed's standing queries
//	POST   /v1/feeds/{name}/monitors        add a monitor     {id, params:{m,k,e}, clusterer?}
//	GET    /v1/feeds/{name}/monitors/{id}   one monitor's status
//	DELETE /v1/feeds/{name}/monitors/{id}   drain + remove    → {id, drained:[...]}
//	POST   /v1/feeds/{name}/query           historical query over the feed's WAL window
//	                                        {params, from?, to?, algo?, clusterer?}
//	GET    /v1/feeds/{name}/wal             WAL status: segments, bytes, fsync, recovery
//	POST   /v1/query                        batch query (body = CSV/CTB upload, params
//	                                        in the query string; or JSON {path,...})
//	POST   /v1/shard/query                  shard RPC (?v=1): one window of a
//	                                        distributed query (403 unless -shard)
//
// Every query surface decodes the same canonical parameter schema
// (wire.QuerySpec — legacy flat spellings included) and every non-2xx
// answer is the uniform envelope {"error":{"code","message"}}; see
// internal/wire. With Config.Shards set, POST /v1/query becomes a
// coordinator that fans the query out over a shard fleet and merges the
// exact answer (see shard.go).
//
// Replaying a database tick-by-tick through a feed and canonicalizing the
// emitted convoys equals the batch CMC answer on the same database — the
// property the end-to-end tests enforce.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Server is the convoyd HTTP handler plus the state behind it. Create it
// with New, mount it anywhere (it implements http.Handler), and Close it
// to drain every feed on the way out.
type Server struct {
	cfg Config
	mux *http.ServeMux
	reg *registry
	q   *queryEngine

	janitorStop chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
}

// New builds a server from the config (zero value = defaults) and starts
// its idle-feed janitor when an IdleTimeout is set.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		reg:         newRegistry(cfg),
		q:           newQueryEngine(cfg),
		janitorStop: make(chan struct{}),
	}
	s.routes()
	if cfg.WALDir != "" {
		// Recovery-on-start: resurrect every durable feed before the
		// handler takes traffic, so the restarted server is state-identical
		// to one that never stopped.
		s.reg.recoverFeeds(cfg)
	}
	cfg.metrics.bindServer(s)
	if cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s
}

// ServeHTTP implements http.Handler. Every request is metered: route and
// status into convoyd_http_requests_total, wall time into
// convoyd_http_request_seconds (a streaming tail counts when it ends).
//
// The middleware also owns the request's observability identity: it mints
// a request ID, continues an incoming W3C traceparent (or starts a fresh
// trace when sampled, forced for ?explain=true and whenever slow-request
// logging is armed), answers with a traceparent header so callers can
// join their logs to the server's, and stores a request-scoped logger
// carrying both IDs in the context for the handlers. Requests that fail
// server-side or exceed the SlowQuery threshold emit one structured
// record — the slow record with the full span tree attached.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	t0 := time.Now()
	sw := &statusWriter{ResponseWriter: w}

	reqID := newRequestID()
	var opts []trace.StartOption
	if tid, sid, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		opts = append(opts, trace.WithRemote(tid, sid, sampled))
	}
	if s.cfg.SlowQuery > 0 || explainParam(r) {
		opts = append(opts, trace.Forced())
	}
	ctx, sp := s.cfg.Tracer.Start(r.Context(), "http", opts...)
	logger := s.cfg.Logger.With("request_id", reqID)
	traceID := ""
	if sp != nil {
		tid, sid := sp.IDs()
		w.Header().Set("traceparent", trace.FormatTraceparent(tid, sid, true))
		sp.Str("request_id", reqID).Str("method", r.Method).Str("path", r.URL.Path)
		traceID = sp.TraceID()
		logger = logger.With("trace_id", traceID)
	}
	r = r.WithContext(withLogger(ctx, logger))

	s.mux.ServeHTTP(sw, r)

	code := sw.code
	if code == 0 {
		code = http.StatusOK // handler wrote nothing at all
	}
	d := time.Since(t0)
	if sp != nil {
		// r.Pattern holds the mux route that matched (empty on 404),
		// keeping the route label's cardinality bounded by the route table.
		sp.Str("route", r.Pattern).Int("status", int64(code))
		sp.End()
	}
	s.cfg.metrics.observeHTTP(r.Pattern, code, d, traceID)
	if code >= http.StatusInternalServerError {
		logger.Error("request failed",
			"method", r.Method, "route", r.Pattern, "path", r.URL.Path,
			"status", code, "duration_ms", msFloat(d))
	}
	if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
		args := []any{
			"method", r.Method, "route", r.Pattern, "path", r.URL.Path,
			"status", code, "duration_ms", msFloat(d),
		}
		if tj, ok := sp.Collect(); ok {
			args = append(args, slog.Any("trace", tj))
		}
		logger.Warn("slow request", args...)
	}
}

// Close drains every feed (flushing open candidates through the streamers)
// and stops the janitor. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.janitorStop)
		s.reg.closeAll()
	})
	s.wg.Wait()
	return nil
}

// janitor evicts idle feeds on a fraction of the idle timeout.
func (s *Server) janitor() {
	defer s.wg.Done()
	period := s.cfg.IdleTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			if n := s.reg.evictIdle(now.Add(-s.cfg.IdleTimeout)); n > 0 {
				s.cfg.Logger.Info("idle feeds evicted",
					"count", n, "idle_timeout", s.cfg.IdleTimeout.String())
			}
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/feeds", s.handleListFeeds)
	s.mux.HandleFunc("POST /v1/feeds", s.handleCreateFeed)
	s.mux.HandleFunc("GET /v1/feeds/{name}", s.handleFeedStatus)
	s.mux.HandleFunc("DELETE /v1/feeds/{name}", s.handleDeleteFeed)
	s.mux.HandleFunc("POST /v1/feeds/{name}/ticks", s.handleTicks)
	s.mux.HandleFunc("GET /v1/feeds/{name}/convoys", s.handlePoll)
	s.mux.HandleFunc("GET /v1/feeds/{name}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/feeds/{name}/monitors", s.handleListMonitors)
	s.mux.HandleFunc("POST /v1/feeds/{name}/monitors", s.handleAddMonitor)
	s.mux.HandleFunc("GET /v1/feeds/{name}/monitors/{id}", s.handleMonitorStatus)
	s.mux.HandleFunc("DELETE /v1/feeds/{name}/monitors/{id}", s.handleDeleteMonitor)
	s.mux.HandleFunc("POST /v1/feeds/{name}/query", s.handleHistoryQuery)
	s.mux.HandleFunc("GET /v1/feeds/{name}/wal", s.handleWALStatus)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/shard/query", s.handleShardQuery)
}

// handleHistoryQuery answers a batch convoy query over the tick window a
// durable feed's WAL retains (404 on in-memory feeds).
func (s *Server) handleHistoryQuery(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req HistoryQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, badRequest(fmt.Errorf("decode history query: %w", err)))
		return
	}
	resp, err := s.historyQuery(r.Context(), f, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWALStatus reports a durable feed's log shape, append/fsync
// counters and recovery stats (404 on in-memory feeds).
func (s *Server) handleWALStatus(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	st, rec, err := f.walStatus(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, walStatusJSON(f.name, s.cfg.WALFsync, st, rec))
}

// validPathName reports whether a client-chosen name (feed name, monitor
// ID) is usable as a URL path segment. "." and ".." are rejected because
// ServeMux path-cleans them away, which would leave the resource's own
// routes unreachable (created but impossible to query or delete).
func validPathName(s string) bool {
	return s != "" && s != "." && s != ".." && !strings.ContainsAny(s, "/ \t\n")
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // a peer gone mid-write is its own problem
}

// writeErr maps an error to its HTTP status and the uniform envelope
// {"error":{"code","message"}} every /v1/* route answers with. Overload
// rejections (429) carry a Retry-After hint.
func writeErr(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, wire.NewError(status, err.Error()))
}

// statusFor resolves an error's HTTP status from its type: client
// mistakes are wrapped in badRequestError at the point where they are
// classified, so no message sniffing happens here.
func statusFor(err error) int {
	var (
		bre *badRequestError
		mbe *http.MaxBytesError
		she *dist.ShardError
	)
	switch {
	case errors.Is(err, errNoFeed), errors.Is(err, errNoMonitor),
		errors.Is(err, errDBNotFound), errors.Is(err, errNoWAL):
		return http.StatusNotFound
	case errors.Is(err, errFeedExists), errors.Is(err, errMonitorExists):
		return http.StatusConflict
	case errors.Is(err, errTooManyFeeds), errors.Is(err, errTooManyMonitors):
		// The feed/monitor caps are overload backpressure, not a storage
		// condition: clients should retry after draining or deleting.
		return http.StatusTooManyRequests
	case errors.Is(err, errFeedClosed), errors.Is(err, errServerClosing):
		return http.StatusGone
	case errors.Is(err, errPathRefDisabled), errors.Is(err, errShardDisabled):
		return http.StatusForbidden
	case errors.As(err, &she):
		// The client's query was fine; a shard behind this coordinator was
		// not.
		return http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded):
		// The query's timeout_ms (or the server's -request-timeout cap)
		// expired; the discovery run was aborted and its slot freed.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away mid-query; nobody reads this response, but
		// the nginx-convention 499 keeps access logs honest.
		return 499
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &bre):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "feeds": len(s.reg.list())})
}

// handleStats serves the read-only counter snapshot — the JSON twin of
// the /metrics exposition, for clients that want one struct instead of a
// Prometheus scrape.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleListFeeds(w http.ResponseWriter, r *http.Request) {
	out := []FeedStatus{}
	for _, f := range s.reg.list() {
		st, err := f.status(r.Context())
		if err != nil {
			continue // closed between list and status; skip
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateFeed(w http.ResponseWriter, r *http.Request) {
	var spec FeedSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, badRequest(fmt.Errorf("decode feed spec: %w", err)))
		return
	}
	if !validPathName(spec.Name) {
		writeErr(w, badRequest(fmt.Errorf("decode feed spec: invalid feed name %q", spec.Name)))
		return
	}
	f, err := s.reg.create(spec.Name, spec.Params.Params(), spec.Clusterer)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := f.setIncremental(r.Context(), spec.Incremental); err != nil {
		writeErr(w, err)
		return
	}
	loggerFrom(r.Context(), s.cfg.Logger).Info("feed created",
		"feed", spec.Name, "m", spec.Params.M, "k", spec.Params.K, "e", spec.Params.Eps)
	st, err := f.status(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleFeedStatus(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := f.status(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteFeed(w http.ResponseWriter, r *http.Request) {
	resp, err := s.reg.remove(r.Context(), r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	loggerFrom(r.Context(), s.cfg.Logger).Info("feed deleted",
		"feed", r.PathValue("name"), "drained", len(resp.Drained))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListMonitors(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	out, err := f.listMonitors(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAddMonitor(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var spec MonitorSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, badRequest(fmt.Errorf("decode monitor spec: %w", err)))
		return
	}
	if !validPathName(spec.ID) {
		writeErr(w, badRequest(fmt.Errorf("decode monitor spec: invalid monitor id %q", spec.ID)))
		return
	}
	st, err := f.addMonitor(r.Context(), spec.ID, spec.Params.Params(), spec.Clusterer)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleMonitorStatus(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := f.getMonitor(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteMonitor(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := f.removeMonitor(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeTicks accepts either {"ticks":[...]} or a single bare tick batch
// {"t":..., "positions":[...]} (or {"t":..., "edges":[...]} for a
// proximity-only batch).
func decodeTicks(r io.Reader) ([]TickBatch, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, badRequest(fmt.Errorf("decode ticks: %w", err))
	}
	var req TicksRequest
	if err := json.Unmarshal(data, &req); err == nil && req.Ticks != nil {
		return req.Ticks, nil
	}
	var one TickBatch
	if err := json.Unmarshal(data, &one); err == nil && (one.Positions != nil || one.Edges != nil) {
		return []TickBatch{one}, nil
	}
	return nil, badRequest(errors.New(`decode ticks: want {"ticks":[{"t":0,"positions":[...]}]} or one bare batch`))
}

func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	batches, err := decodeTicks(r.Body)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := f.ingest(r.Context(), batches)
	if err != nil {
		// The accepted prefix is permanently applied; the client needs
		// to know how far the batch got to resume past it, so the uniform
		// envelope's error object rides next to the resume cursor.
		status := statusFor(err)
		writeJSON(w, status, TicksError{
			Error:    ErrorBody{Code: wire.CodeForStatus(status), Message: err.Error()},
			Accepted: resp.Accepted,
			Closed:   resp.Closed,
		})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// sinceParam parses the ?since= cursor (default 0).
func sinceParam(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, badRequest(fmt.Errorf("decode since=%q: %w", raw, err))
	}
	return v, nil
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	monitor, err := monitorParam(r, f)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := f.eventsSince(r.Context(), since)
	if err != nil {
		writeErr(w, err)
		return
	}
	if monitor != "" {
		// NextSeq stays the feed-level cursor: a filtered poll resumed with
		// ?since=NextSeq never re-reads or skips events.
		kept := []Event{}
		for _, ev := range resp.Events {
			if ev.Monitor == monitor {
				kept = append(kept, ev)
			}
		}
		resp.Events = kept
	}
	writeJSON(w, http.StatusOK, resp)
}

// monitorParam resolves the optional ?monitor= filter against the feed's
// table: a filter naming a monitor that does not exist is a 404, not a
// silently empty stream (a typo'd dispatcher must hear about it). History
// of deleted monitors stays reachable unfiltered.
func monitorParam(r *http.Request, f *feed) (string, error) {
	monitor := r.URL.Query().Get("monitor")
	if monitor == "" {
		return "", nil
	}
	if _, err := f.getMonitor(r.Context(), monitor); err != nil {
		return "", err
	}
	return monitor, nil
}

// handleEvents tails a feed as NDJSON: replayed history first, then live
// events as they close, one JSON object per line, flushed per event. The
// stream ends when the client goes away, the feed dies, or the subscriber
// falls too far behind.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	monitor, err := monitorParam(r, f)
	if err != nil {
		writeErr(w, err)
		return
	}
	replayed, ch, cancel, err := f.subscribe(r.Context(), since)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: a subscriber must learn the stream is
		// live before the first event closes, or a client that subscribes
		// first and pushes ticks second deadlocks against itself.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	send := func(ev Event) bool {
		if monitor != "" && ev.Monitor != monitor {
			return true // tail only the requested monitor's events
		}
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range replayed {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !send(ev) {
				return
			}
		}
	}
}

// handleQuery answers a batch query. A JSON body references a file under
// the data dir; any other content type is treated as an uploaded CSV/CTB
// database with parameters in the URL query string (m, k, e, algo, delta,
// lambda, workers).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var (
		resp QueryResponse
		err  error
	)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		var req QueryRequest
		if err = json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, badRequest(fmt.Errorf("decode query: %w", err)))
			return
		}
		// ?explain=true works uniformly: JSON clients may set it in the
		// body or on the URL like upload clients.
		req.Explain = req.Explain || explainParam(r)
		resp, err = s.q.runPath(r.Context(), req)
	} else {
		req, uerr := queryFromURL(r)
		if uerr != nil {
			writeErr(w, uerr)
			return
		}
		data, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			writeErr(w, fmt.Errorf("read upload: %w", rerr))
			return
		}
		if len(data) == 0 {
			writeErr(w, badRequest(errors.New("decode query: empty database upload")))
			return
		}
		resp, err = s.q.run(r.Context(), data, req)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryFromURL decodes upload-style query parameters through the
// canonical decoder (wire.SpecFromURL): m and k are integers and rejected
// (not truncated) when fractional, "eps" is accepted as an alias of "e",
// and from/to/partitions/v ride along with the legacy knobs.
func queryFromURL(r *http.Request) (QueryRequest, error) {
	spec, err := wire.SpecFromURL(r.URL.Query())
	if err != nil {
		return QueryRequest{}, badRequest(err)
	}
	return QueryRequest{QuerySpec: spec}, nil
}
