package serve

import (
	"context"
	"encoding/hex"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// Request-scoped observability plumbing: every request gets an ID, a
// logger carrying that ID (and the trace ID when the request is sampled)
// and — sampling permitting — a trace rooted at the middleware. Handlers
// pull the logger back out of the context with loggerFrom, so any record
// they emit joins the request's IDs without further threading.

// newRequestID mints a 16-hex-digit request correlation ID. Randomness
// (not a counter) keeps IDs meaningful across restarts and replicas.
func newRequestID() string {
	var b [8]byte
	u := rand.Uint64()
	for i := range b {
		b[i] = byte(u >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// loggerKey carries the request-scoped *slog.Logger in a context.
type loggerKey struct{}

func withLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// loggerFrom returns the request-scoped logger, or fallback outside a
// request (feed workers, the janitor).
func loggerFrom(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return fallback
}

// explainParam reports whether the URL asks for a query profile
// (?explain=true). Unparseable values read as false here and are
// rejected later by queryFromURL's strict parse.
func explainParam(r *http.Request) bool {
	raw := r.URL.Query().Get("explain")
	if raw == "" {
		return false
	}
	v, err := strconv.ParseBool(raw)
	return err == nil && v
}

// msFloat renders a duration as float milliseconds for log records,
// matching the wire types' *_ms convention.
func msFloat(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// unixNow is the exemplar timestamp: seconds since the epoch.
func unixNow() float64 { return float64(time.Now().UnixMilli()) / 1000 }
