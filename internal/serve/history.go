package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proxgraph"
)

// Historical queries: POST /v1/feeds/{name}/query runs a batch convoy
// query over the tick window a durable feed's WAL retains. The window
// streams out of the log exactly as clients ingested it — verbatim ticks,
// gaps included — and feeds the same core.Query engine batch queries use,
// so a historical answer over [from, to] equals a batch query over the
// same stream slice. Unlike /v1/query the answer is never cached: the log
// grows with every tick, so a window's contents are a moving target.

// historyQuery validates (through the canonical wire.QuerySpec validator),
// reads the window and runs the discovery. The run holds a query-pool slot
// like a batch query, so a burst of historical queries cannot starve the
// engine.
func (s *Server) historyQuery(ctx context.Context, f *feed, req HistoryQueryRequest) (HistoryQueryResponse, error) {
	if req.Algo == "" {
		// A historical query replays a live stream's ticks, where CMC is
		// the canonical semantics; the CuTS family stays opt-in.
		req.Algo = AlgoCMC
	}
	pl, err := plan(QueryRequest{QuerySpec: req}, s.cfg.MaxWorkersPerQuery)
	if err != nil {
		return HistoryQueryResponse{}, err
	}
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	t0 := time.Now()
	batches, err := f.window(ctx, pl.res.From, pl.res.To)
	if err != nil {
		return HistoryQueryResponse{}, err
	}
	resp := HistoryQueryResponse{
		Convoys:   []ConvoyJSON{},
		Params:    pl.res.Spec.Params,
		Algo:      pl.res.Algo,
		Clusterer: pl.res.Clusterer,
		From:      req.From,
		To:        req.To,
		Ticks:     len(batches),
	}
	opts := []core.Option{core.WithParams(pl.res.P), core.WithWorkers(pl.workers)}
	if s.cfg.DisableIncremental || (pl.req.Incremental != nil && !*pl.req.Incremental) {
		opts = append(opts, core.WithIncremental(-1))
	}
	var db *model.DB
	if pl.res.Clusterer == proxgraph.Backend {
		// Cluster the logged contact edges: rebuild the window's edge log
		// and let the graph backend read it tick by tick, exactly like an
		// uploaded a,b,t,w contact log.
		log := proxgraph.NewLog()
		edges := 0
		for _, b := range batches {
			for _, e := range b.Edges {
				if err := log.Add(e.A, e.B, b.T, e.W); err != nil {
					return HistoryQueryResponse{}, fmt.Errorf("serve: history window edges: %w", err)
				}
				edges++
			}
		}
		if edges == 0 {
			return resp, nil // no contacts in the window: no convoys
		}
		if db, err = log.DB(); err != nil {
			return HistoryQueryResponse{}, fmt.Errorf("serve: history window edges: %w", err)
		}
		opts = append(opts, core.WithClusterer(log.Clusterer()))
	} else {
		if db, err = windowDB(batches); err != nil {
			return HistoryQueryResponse{}, err
		}
		if db.Len() == 0 {
			return resp, nil // no positions in the window: no convoys
		}
	}
	resp.Objects = db.Len()
	if pl.res.IsCMC {
		opts = append(opts, core.WithCMC())
	} else {
		opts = append(opts,
			core.WithVariant(pl.res.Variant),
			core.WithDelta(pl.res.Spec.Delta),
			core.WithLambda(pl.res.Spec.Lambda))
	}
	var st core.Stats
	opts = append(opts, core.WithStats(&st))
	release, err := s.q.acquire(ctx)
	if err != nil {
		return HistoryQueryResponse{}, err
	}
	defer release()
	res, err := core.NewQuery(opts...).Run(ctx, db)
	if err != nil {
		return HistoryQueryResponse{}, err
	}
	if !pl.res.IsCMC {
		js := StatsToJSON(st)
		resp.Stats = &js
	}
	labels := DBLabels(db)
	for _, c := range res {
		resp.Convoys = append(resp.Convoys, ConvoyToJSON(c, labels))
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	return resp, nil
}
