package serve

import (
	"log/slog"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config tunes the server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxFeeds caps the number of concurrently registered feeds; feed
	// creation beyond the cap fails with 429. Default 1024.
	MaxFeeds int
	// MaxMonitorsPerFeed caps the standing convoy queries registered on
	// one feed (the implicit default monitor counts). Monitors sharing a
	// clustering key (e, m) cost one DBSCAN pass per tick together, but
	// each still chains its own candidates. Default 64.
	MaxMonitorsPerFeed int
	// FeedBuffer is the depth of each feed's command mailbox — the number
	// of in-flight ingest/poll requests a feed absorbs before further
	// senders block (the ingestion backpressure point). Default 64.
	FeedBuffer int
	// EventBuffer is the per-subscriber event channel depth for the NDJSON
	// tail endpoint. A subscriber that falls this many events behind is
	// disconnected (it can reconnect with ?since=). Default 256.
	EventBuffer int
	// HistoryLimit is the number of closed-convoy events each feed retains
	// for polling and replay; older events are dropped. Default 1024.
	HistoryLimit int
	// IdleTimeout evicts feeds that have received no request for this
	// long, draining them like a DELETE. 0 disables eviction.
	IdleTimeout time.Duration
	// QueryWorkers bounds the number of batch queries executing
	// concurrently; excess queries wait. Default GOMAXPROCS.
	QueryWorkers int
	// MaxWorkersPerQuery caps the per-query "workers" request field — the
	// number of goroutines one discovery run may use per pipeline stage.
	// Clients asking for more are clamped, not rejected. Default
	// GOMAXPROCS; negative forces every query serial.
	MaxWorkersPerQuery int
	// QueryTimeout caps the wall time of one batch query — queueing plus
	// discovery. A query past the cap aborts its clustering pipeline,
	// frees its worker slot and answers 504. Clients may request tighter
	// deadlines per query via the timeout_ms field; this is the server's
	// upper bound on both. 0 disables the cap.
	QueryTimeout time.Duration
	// CacheEntries is the capacity of the batch-query LRU cache, keyed by
	// (database digest, params, algorithm). 0 means the default 64;
	// negative disables caching.
	CacheEntries int
	// DataDir, when non-empty, allows POST /v1/query to reference
	// databases by file path relative to this directory. Empty disables
	// path references (uploads only).
	DataDir string
	// WALDir, when non-empty, makes feeds durable: every feed owns a
	// write-ahead log under WALDir/feeds/<name>, every accepted tick batch
	// is logged before it is applied, monitor registrations are journaled,
	// and New replays the logs so a restarted server is state-identical to
	// one that never stopped. Empty (the default, and convoyd without
	// -data-dir or with -no-wal) keeps feeds purely in-memory.
	WALDir string
	// WALFsync is the tick-record durability policy (wal.FsyncAlways,
	// the zero value and safest; FsyncInterval; FsyncNever). convoyd maps
	// -wal-fsync here.
	WALFsync wal.FsyncPolicy
	// WALFsyncInterval is the timer period under wal.FsyncInterval.
	// Default 100ms.
	WALFsyncInterval time.Duration
	// WALSegmentBytes rotates a feed's active WAL segment beyond this
	// size. Default 4 MiB.
	WALSegmentBytes int64
	// WALSegmentAge rotates a feed's active WAL segment after this long
	// regardless of size. 0 disables age rotation.
	WALSegmentAge time.Duration
	// WALRetainTicks, when > 0, compacts WAL segments wholly older than
	// lastTick−WALRetainTicks after each rotation. Bounds disk and the
	// historical-query window; convoys longer than the horizon recover
	// truncated. 0 retains everything.
	WALRetainTicks int64
	// MaxBodyBytes caps request bodies (tick batches and uploaded
	// databases). Default 64 MiB.
	MaxBodyBytes int64
	// MaxEdgesPerTick caps the proximity edges one tick batch may carry
	// (the contact graph a proxgraph monitor clusters is quadratic in the
	// worst case, so the wire bounds it). Default 65536.
	MaxEdgesPerTick int
	// DisableIncremental forces every clustering pass — feed ingestion and
	// batch queries — onto the from-scratch path (convoyd -no-incremental).
	// Answers are identical either way; this is the server-wide escape
	// hatch for the incremental-clustering fast path, overriding per-feed
	// and per-query requests to enable it. The CONVOY_NO_INCREMENTAL
	// environment variable does the same process-wide.
	DisableIncremental bool
	// Metrics receives the server's instrument families (the convoyd_*
	// catalogue; see serveMetrics). Nil means a private registry: the
	// instruments still update and Server.Snapshot/GET /v1/stats still
	// work, but nothing is exposed until MetricsRegistry().Handler() is
	// mounted. A registry must not be shared between two servers —
	// family names would collide.
	Metrics *metrics.Registry
	// Logger receives the server's structured records: request logs for
	// failures and slow requests, feed lifecycle events, janitor evictions.
	// Every record carries the request and trace IDs of the request that
	// produced it. Nil discards everything (the test-quiet default);
	// convoyd wires a text or JSON handler here per its -log-format flag.
	Logger *slog.Logger
	// Tracer samples request traces. Incoming W3C traceparent headers
	// continue the remote trace; sampled (or ?explain=true, or slower than
	// SlowQuery) requests record a span tree retained in the tracer's ring
	// and served by its Handler (convoyd mounts it at /debug/traces). Nil
	// means a private tracer with the default 0 sample ratio — explain and
	// slow-query forcing still work, background sampling is off.
	Tracer *trace.Tracer
	// SlowQuery, when > 0, forces every request to be traced and logs one
	// structured record (with the full span tree) for each request whose
	// wall time exceeds it. 0 disables slow-request logging.
	SlowQuery time.Duration
	// Shards, when non-empty, turns this server into a distributed-query
	// coordinator (convoyd -shards): every batch query's time range is
	// split into len(Shards) overlapping windows, fanned out over these
	// shard base URLs via POST /v1/shard/query, and the partial answers
	// are merged into the exact global answer. The fan-out runs under the
	// same worker pool, LRU cache and in-flight dedup as local queries.
	// Mutually exclusive with ShardMode.
	Shards []string
	// ShardMode enables POST /v1/shard/query (convoyd -shard): the
	// versioned RPC a coordinator uses to assign this server one window of
	// a distributed query. Off (the default), the route answers 403.
	ShardMode bool

	// metrics is the instrument bundle built over Metrics (or a private
	// registry) by withDefaults and threaded through the registry, feeds
	// and query engine.
	metrics *serveMetrics
}

// withDefaults returns the config with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.MaxFeeds <= 0 {
		c.MaxFeeds = 1024
	}
	if c.MaxMonitorsPerFeed <= 0 {
		c.MaxMonitorsPerFeed = 64
	}
	if c.FeedBuffer <= 0 {
		c.FeedBuffer = 64
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 1024
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkersPerQuery == 0 {
		c.MaxWorkersPerQuery = runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkersPerQuery < 0 {
		c.MaxWorkersPerQuery = 1
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxEdgesPerTick <= 0 {
		c.MaxEdgesPerTick = 65536
	}
	if c.WALFsyncInterval <= 0 {
		c.WALFsyncInterval = 100 * time.Millisecond
	}
	if c.WALSegmentBytes <= 0 {
		c.WALSegmentBytes = 4 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.Tracer == nil {
		c.Tracer = trace.NewTracer()
	}
	if c.metrics == nil {
		reg := c.Metrics
		if reg == nil {
			reg = metrics.NewRegistry()
		}
		c.metrics = newServeMetrics(reg)
	}
	return c
}
