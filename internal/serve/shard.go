package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/proxgraph"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Distributed queries. A convoyd fleet splits one batch query two ways:
//
//   - Coordinator (convoyd -shards host:port,...): POST /v1/query arrives
//     here as usual; computeSharded splits the database's time range into
//     len(Shards) overlapping windows and fans them out over the shard RPC,
//     merging the label-space partials into the exact global answer. The
//     fan-out lives inside the query engine's compute step, so sharded
//     queries share the LRU cache, the in-flight dedup of identical
//     concurrent queries and the worker-slot bound with local ones — a
//     stampede of identical queries costs one fan-out, not N.
//
//   - Shard (convoyd -shard): POST /v1/shard/query?v=1 accepts the same
//     database bytes with an explicit from/to window in the URL and answers
//     the window's exact partial (wire.ShardQueryResponse). The shard runs
//     the full local engine — its own cache, dedup and worker pool — keyed
//     by (digest, spec, window).

// errShardDisabled answers 403 on /v1/shard/query when the server was not
// started in shard mode.
var errShardDisabled = errors.New("serve: shard RPC disabled (start convoyd with -shard)")

// handleShardQuery answers one window of a distributed query: the body is
// the full database upload, the URL carries the canonical spec with the
// assigned from/to window, and ?v= pins the RPC version.
func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.ShardMode {
		writeErr(w, errShardDisabled)
		return
	}
	q := r.URL.Query()
	if v := q.Get("v"); v != strconv.Itoa(wire.ShardRPCVersion) {
		writeErr(w, badRequest(fmt.Errorf("serve: shard RPC version %q unsupported (want v=%d)", v, wire.ShardRPCVersion)))
		return
	}
	spec, err := wire.SpecFromURL(q)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	if spec.From == nil || spec.To == nil {
		writeErr(w, badRequest(errors.New("serve: shard query requires an explicit from/to window")))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, fmt.Errorf("read upload: %w", err))
		return
	}
	if len(data) == 0 {
		writeErr(w, badRequest(errors.New("serve: empty database upload")))
		return
	}
	resp, err := s.q.run(r.Context(), data, QueryRequest{QuerySpec: spec})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.ShardQueryResponse{
		V:         wire.ShardRPCVersion,
		From:      *spec.From,
		To:        *spec.To,
		Convoys:   resp.Convoys,
		Digest:    resp.Digest,
		Algo:      resp.Algo,
		Clusterer: resp.Clusterer,
		Cache:     resp.Cache == "hit" || resp.Cache == "dedup",
		ElapsedMS: resp.ElapsedMS,
	})
}

// computeSharded is the coordinator's compute step: parse the database
// only to anchor the time range and the label↔ID mapping, fan the query
// out over the shard fleet (one overlapping window each), and merge the
// partial answers into the exact global answer. The caller holds a worker
// slot and the flight for this cache key, exactly like a local compute.
func (e *queryEngine) computeSharded(ctx context.Context, qsp *trace.Span, t0 time.Time, digest string, data []byte, pl queryPlan) (QueryResponse, error) {
	var db *model.DB
	var err error
	if pl.res.Clusterer == proxgraph.Backend {
		log, lerr := proxgraph.ReadLog(bytes.NewReader(data))
		if lerr != nil {
			return QueryResponse{}, badRequest(lerr)
		}
		if db, err = log.DB(); err != nil {
			return QueryResponse{}, badRequest(err)
		}
	} else {
		if db, err = parseDB(data); err != nil {
			return QueryResponse{}, badRequest(err)
		}
	}
	resp := QueryResponse{
		Convoys:   []ConvoyJSON{},
		Params:    pl.res.Spec.Params,
		Algo:      pl.res.Algo,
		Clusterer: pl.res.Clusterer,
		From:      pl.req.From,
		To:        pl.req.To,
		Digest:    digest,
		Cache:     "miss",
	}
	done := func() (QueryResponse, error) {
		resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
		if e.lru != nil {
			e.lru.put(pl.key(digest), resp)
		}
		return resp, nil
	}
	lo, hi, ok := db.TimeRange()
	if !ok {
		return done() // empty database: empty answer
	}
	// A client from/to intersects with the data's own range; an empty
	// intersection is an empty answer, not an error.
	if pl.res.From > lo {
		lo = pl.res.From
	}
	if pl.res.To < hi {
		hi = pl.res.To
	}
	if lo > hi {
		return done()
	}
	spec := pl.res.Spec
	spec.Explain = false // profiles describe local runs; shards answer data only
	co := dist.Coordinator{Shards: e.cfg.Shards}
	shardResps, windows, err := co.Query(ctx, data, spec, lo, hi)
	if err != nil {
		return QueryResponse{}, err
	}
	qsp.Int("shards", int64(len(windows)))
	parts := make([][]ConvoyJSON, len(shardResps))
	for i, sr := range shardResps {
		parts[i] = sr.Convoys
	}
	// Anchor the label↔ID mapping to this coordinator's own parse, so the
	// merged output is ordered exactly like a single-node answer. Unlabeled
	// objects use the same "o<ID>" naming ConvoyToJSON emits.
	labels := DBLabels(db)
	named := func(id model.ObjectID) string {
		if n := labels(id); n != "" {
			return n
		}
		return fmt.Sprintf("o%d", id)
	}
	index := make(map[string]model.ObjectID, db.Len())
	for i := db.Len() - 1; i >= 0; i-- { // first occurrence wins on duplicates
		id := model.ObjectID(i)
		index[named(id)] = id
	}
	merged, err := dist.Merge(windows, parts, pl.res.P,
		func(lb string) (model.ObjectID, bool) { id, ok := index[lb]; return id, ok },
		named)
	if err != nil {
		return QueryResponse{}, err
	}
	resp.Convoys = merged
	resp.Shards = len(windows)
	return done()
}
