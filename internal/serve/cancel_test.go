package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// Cancellation and deduplication behavior of the batch query engine: the
// request context flows into the discovery run itself, so disconnected or
// timed-out clients free their worker slot instead of burning it, and
// identical concurrent queries collapse into one shared run.

// cmcQuery is the standard request the tests below issue.
func cmcQuery() QueryRequest {
	return QueryRequest{QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 5, Eps: 1}, Algo: "cmc"}}
}

// gatedEngine builds an engine whose compute blocks on the returned gate
// channel after signalling `started` — the synchronization the tests use
// to cancel a client at a known point of the run.
func gatedEngine(t *testing.T, cfg Config) (*queryEngine, chan struct{}, chan struct{}) {
	t.Helper()
	e := newQueryEngine(cfg.withDefaults())
	started := make(chan struct{}, 16)
	gate := make(chan struct{})
	e.onComputeStart = func() {
		started <- struct{}{}
		<-gate
	}
	return e, started, gate
}

// A client that gives up while *queued* in acquire releases immediately,
// never starts a discovery run, and leaves the worker slot usable.
func TestQueuedCancelReleasesSlotWithoutRunning(t *testing.T) {
	e := newQueryEngine(Config{QueryWorkers: 1}.withDefaults())
	data := fixtureCSV(t)

	// Occupy the engine's only worker slot.
	release, err := e.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.run(ctx, data, cmcQuery())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query reach the queue
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued query returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query did not abort after cancellation")
	}
	if got := e.computes(); got != 0 {
		t.Fatalf("cancelled queued query started %d compute(s)", got)
	}

	// The slot the cancelled client was waiting for is still usable.
	release()
	resp, err := e.run(context.Background(), data, cmcQuery())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "miss" || e.computes() != 1 {
		t.Fatalf("follow-up query: cache=%q computes=%d, want a fresh miss", resp.Cache, e.computes())
	}
}

// A client that disconnects mid-discovery aborts the underlying core run
// (the flight's context is cancelled when its last waiter leaves), frees
// the worker slot, and never populates the cache.
func TestCancelMidRunAbortsFreesSlotAndSkipsCache(t *testing.T) {
	e, started, gate := gatedEngine(t, Config{QueryWorkers: 1})
	data := fixtureCSV(t)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.run(ctx, data, cmcQuery())
		errc <- err
	}()
	<-started // the run holds the only slot now
	cancel()  // client disconnects mid-run
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("disconnected client got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected client's request did not return")
	}

	// Release the gate: the orphaned run resumes with an already-cancelled
	// context, so the core pipeline aborts instead of finishing, freeing
	// the engine's only slot promptly.
	close(gate)
	slotCtx, slotCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer slotCancel()
	release, err := e.acquire(slotCtx)
	if err != nil {
		t.Fatalf("worker slot never freed after aborted run: %v", err)
	}
	release()

	// The cancelled run must not have cached a (nonexistent) answer.
	e.onComputeStart = nil
	resp, err := e.run(context.Background(), data, cmcQuery())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "miss" {
		t.Fatalf("query after cancelled run: cache=%q, want miss (cancelled runs must not cache)", resp.Cache)
	}
}

// Identical concurrent queries collapse into one discovery run: one
// "miss" does the work, every other waiter shares the answer as "dedup".
func TestDedupStampedeSharesOneRun(t *testing.T) {
	e, started, gate := gatedEngine(t, Config{})
	data := fixtureCSV(t)

	const clients = 8
	responses := make([]QueryResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = e.run(context.Background(), data, cmcQuery())
		}(i)
	}
	<-started // the leader is inside compute; everyone else must join it
	for {
		e.fmu.Lock()
		var waiting int
		for _, f := range e.flights {
			waiting = f.refs
		}
		e.fmu.Unlock()
		if waiting == clients {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := e.computes(); got != 1 {
		t.Fatalf("stampede of %d identical queries ran %d computes, want 1", clients, got)
	}
	miss, dedup := 0, 0
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		switch responses[i].Cache {
		case "miss":
			miss++
		case "dedup":
			dedup++
		default:
			t.Fatalf("client %d: cache=%q", i, responses[i].Cache)
		}
		if len(responses[i].Convoys) != len(responses[0].Convoys) {
			t.Fatalf("client %d got a different answer", i)
		}
	}
	if miss != 1 || dedup != clients-1 {
		t.Fatalf("got %d miss / %d dedup, want 1 / %d", miss, dedup, clients-1)
	}
}

// A waiter that joined an in-flight run and then cancels gets its own
// context error while the run continues for the remaining waiter.
func TestJoinerCancelLeavesFlightRunning(t *testing.T) {
	e, started, gate := gatedEngine(t, Config{})
	data := fixtureCSV(t)

	leaderErr := make(chan error, 1)
	var leaderResp QueryResponse
	go func() {
		var err error
		leaderResp, err = e.run(context.Background(), data, cmcQuery())
		leaderErr <- err
	}()
	<-started

	jctx, jcancel := context.WithCancel(context.Background())
	joinerErr := make(chan error, 1)
	go func() {
		_, err := e.run(jctx, data, cmcQuery())
		joinerErr <- err
	}()
	for { // wait until the joiner is attached to the flight
		e.fmu.Lock()
		var refs int
		for _, f := range e.flights {
			refs = f.refs
		}
		e.fmu.Unlock()
		if refs == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	jcancel()
	if err := <-joinerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner got %v, want its own context.Canceled", err)
	}

	close(gate)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader failed after joiner left: %v", err)
	}
	if leaderResp.Cache != "miss" || len(leaderResp.Convoys) == 0 {
		t.Fatalf("leader answer: cache=%q convoys=%d", leaderResp.Cache, len(leaderResp.Convoys))
	}
	if got := e.computes(); got != 1 {
		t.Fatalf("ran %d computes, want 1", got)
	}
}

// The HTTP layer end to end: a request whose client disconnects
// mid-discovery aborts the run (no cache entry appears) and the worker
// slot is free for the next query.
func TestHTTPClientDisconnectMidQuery(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueryWorkers: 1})
	started := make(chan struct{}, 16)
	gate := make(chan struct{})
	srv.q.onComputeStart = func() {
		started <- struct{}{}
		<-gate
	}
	data := fixtureCSV(t)
	url := ts.URL + "/v1/query?m=2&k=5&e=1&algo=cmc"

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = errors.New("request unexpectedly succeeded")
		}
		errc <- err
	}()
	<-started
	cancel() // client disconnects while discovery is in progress
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected request never returned")
	}
	// The client has given up, but the *server* notices the broken
	// connection asynchronously; only then does the handler leave the
	// flight and cancel the run. Wait for that observation before letting
	// the compute proceed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.q.fmu.Lock()
		refs := -1
		for _, f := range srv.q.flights {
			refs = f.refs
		}
		srv.q.fmu.Unlock()
		if refs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never observed the client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	srv.q.onComputeStart = nil

	// The next identical query recomputes (nothing was cached) and can
	// take the — single — worker slot, proving the aborted run freed it.
	resp := postQuery(t, url, data, http.StatusOK)
	if resp.Cache != "miss" {
		t.Fatalf("query after disconnect: cache=%q, want miss", resp.Cache)
	}
	if len(resp.Convoys) != 2 {
		t.Fatalf("query after disconnect: %d convoys, want 2", len(resp.Convoys))
	}
}

// A client-requested timeout_ms aborts a too-slow query with 504.
func TestHTTPQueryTimeoutMS(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	gate := make(chan struct{})
	srv.q.onComputeStart = func() { <-gate }
	defer close(gate)
	data := fixtureCSV(t)

	resp, err := http.Post(ts.URL+"/v1/query?m=2&k=5&e=1&algo=cmc&timeout_ms=25", "text/csv", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// The server-side -request-timeout cap bounds every query, even without a
// client deadline.
func TestHTTPServerQueryTimeoutCap(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueryTimeout: 25 * time.Millisecond})
	gate := make(chan struct{})
	srv.q.onComputeStart = func() { <-gate }
	defer close(gate)
	data := fixtureCSV(t)

	resp, err := http.Post(ts.URL+"/v1/query?m=2&k=5&e=1&algo=cmc", "text/csv", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// Invalid timeout_ms values — negative, non-finite (ParseFloat accepts
// "nan"/"+inf"), or Duration-overflowing — are rejected up front instead
// of silently meaning "no deadline".
func TestQueryTimeoutValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := fixtureCSV(t)
	for _, bad := range []string{"-3", "nan", "+inf", "-inf", "1e300"} {
		resp, err := http.Post(ts.URL+"/v1/query?m=2&k=5&e=1&timeout_ms="+bad, "text/csv", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout_ms=%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// A path-referencing query whose file changed behind a still-valid stat
// memo must cache its answer under the *actual* content's digest — never
// under the stale memoized one, which would poison the cache for clients
// querying the old content directly.
func TestPathQueryStaleMemoNeverPoisonsCache(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{DataDir: dir})
	contentA := fixtureCSV(t) // two convoys: {a,b} and {c,d}
	// Same byte length, but object b rides far from a: one convoy only.
	contentB := bytes.Replace(contentA, []byte(",0.5\n"), []byte(",5.5\n"), -1)
	if len(contentB) != len(contentA) || bytes.Equal(contentA, contentB) {
		t.Fatal("fixture mutation must change content but not length")
	}
	path := filepath.Join(dir, "db.csv")
	if err := os.WriteFile(path, contentA, 0o644); err != nil {
		t.Fatal(err)
	}

	// Prime the path→digest memo with content A.
	var first QueryResponse
	doJSON(t, "POST", ts.URL+"/v1/query", QueryRequest{
		Path: "db.csv", QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 5, Eps: 1}, Algo: "cmc"},
	}, http.StatusOK, &first)
	if len(first.Convoys) != 2 {
		t.Fatalf("content A yields %d convoys, want 2", len(first.Convoys))
	}

	// Swap in content B while keeping the stat (size + mtime) identical,
	// simulating a file change racing the memo.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, contentB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, st.ModTime(), st.ModTime()); err != nil {
		t.Fatal(err)
	}

	// New params → memo hit (stale digest) but cache miss → the engine
	// reads B and must report/cache B's digest, not the memoized one.
	var second QueryResponse
	doJSON(t, "POST", ts.URL+"/v1/query", QueryRequest{
		Path: "db.csv", QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 4, Eps: 1}, Algo: "cmc"},
	}, http.StatusOK, &second)
	if second.Digest == first.Digest {
		t.Fatalf("changed file served under the stale digest %s", first.Digest)
	}
	if len(second.Convoys) != 1 {
		t.Fatalf("content B yields %d convoys, want 1", len(second.Convoys))
	}

	// Uploading content A at the same params must be a fresh miss with
	// A's answer — a poisoned cache would return B's single convoy here.
	resp := postQuery(t, ts.URL+"/v1/query?m=2&k=4&e=1&algo=cmc", contentA, http.StatusOK)
	if resp.Cache != "miss" {
		t.Fatalf("upload of old content: cache=%q, want miss (stale-memo poisoning)", resp.Cache)
	}
	if len(resp.Convoys) != 2 {
		t.Fatalf("upload of old content answered %d convoys, want 2", len(resp.Convoys))
	}
}
