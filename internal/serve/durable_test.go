package serve

import (
	"context"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/wal"
)

// copyTree snapshots a directory tree — the crash image of a running
// server's WAL root. Under FsyncAlways every acknowledged batch is fully
// written before the ack, so a copy taken between requests is exactly what
// a SIGKILL at that moment would leave behind.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s: %v", src, err)
	}
}

// feedSnapshot is the externally observable feed state the recovery
// equivalence is asserted over: the full status (counters, monitor table)
// plus the complete event history.
type feedSnapshot struct {
	status FeedStatus
	events []Event
}

func snapshotFeed(t *testing.T, base, name string) feedSnapshot {
	t.Helper()
	var snap feedSnapshot
	doJSON(t, "GET", base+"/v1/feeds/"+name, nil, http.StatusOK, &snap.status)
	var poll EventsResponse
	doJSON(t, "GET", base+"/v1/feeds/"+name+"/convoys", nil, http.StatusOK, &poll)
	snap.events = poll.Events
	return snap
}

// durableConfig is the crash-recovery test config: always-fsync and tiny
// segments, so images are crash-exact and rotation is exercised.
func durableConfig(dir string) Config {
	return Config{WALDir: dir, WALFsync: wal.FsyncAlways, WALSegmentBytes: 512}
}

// TestDurableFeedCrashRecovery is the recovery property test: run a feed
// through a scripted life — ticks interleaved with monitor adds/removes —
// snapshotting the observable state and a crash image after every step,
// then for several crash points restart a server on the image and demand
// state identical to the one that never crashed. One crash point also
// finishes the remaining script and must land on the same final state.
func TestDurableFeedCrashRecovery(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	_, ts := newTestServer(t, durableConfig(walRoot))
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})

	// The scripted life, replayable against any server.
	steps := []func(t *testing.T, base string){}
	tickStep := func(tick model.Tick) func(*testing.T, string) {
		return func(t *testing.T, base string) { pushTick(t, base, "fleet", vanBatch(tick)) }
	}
	for tick := model.Tick(0); tick < 5; tick++ {
		steps = append(steps, tickStep(tick))
	}
	steps = append(steps, func(t *testing.T, base string) {
		var st MonitorStatus
		doJSON(t, "POST", base+"/v1/feeds/fleet/monitors",
			MonitorSpec{ID: "wide", Params: ParamsJSON{M: 2, K: 3, Eps: 2}}, http.StatusCreated, &st)
	})
	for tick := model.Tick(5); tick < 12; tick++ {
		steps = append(steps, tickStep(tick))
	}
	steps = append(steps, func(t *testing.T, base string) {
		doJSON(t, "DELETE", base+"/v1/feeds/fleet/monitors/wide", nil, http.StatusOK, nil)
	})
	for tick := model.Tick(12); tick < 20; tick++ {
		steps = append(steps, tickStep(tick))
	}

	// Reference run: execute every step, keeping the never-crashed state
	// and the crash image after each one.
	images := t.TempDir()
	refs := make([]feedSnapshot, len(steps))
	for i, step := range steps {
		step(t, ts.URL)
		refs[i] = snapshotFeed(t, ts.URL, "fleet")
		copyTree(t, walRoot, filepath.Join(images, "crash", string(rune('a'+i))))
	}

	// Crash points: early, right after the monitor add (step 5), right
	// after its removal (step 13), and at the very end.
	for _, crash := range []int{2, 5, 13, len(steps) - 1} {
		img := filepath.Join(t.TempDir(), "restart")
		copyTree(t, filepath.Join(images, "crash", string(rune('a'+crash))), img)
		_, tsB := newTestServer(t, durableConfig(img))
		got := snapshotFeed(t, tsB.URL, "fleet")
		if !reflect.DeepEqual(got.status, refs[crash].status) {
			t.Errorf("crash after step %d: recovered status diverged\n got: %+v\nwant: %+v",
				crash, got.status, refs[crash].status)
		}
		if !reflect.DeepEqual(got.events, refs[crash].events) {
			t.Errorf("crash after step %d: recovered events diverged\n got: %+v\nwant: %+v",
				crash, got.events, refs[crash].events)
		}
		var ws WALStatusJSON
		doJSON(t, "GET", tsB.URL+"/v1/feeds/fleet/wal", nil, http.StatusOK, &ws)
		if ws.Recovery == nil {
			t.Fatalf("crash after step %d: recovered feed reports no recovery block", crash)
		}
		if want := refs[crash].status.Ticks; ws.Recovery.ReplayedTicks != want {
			t.Errorf("crash after step %d: replayed %d ticks, want %d", crash, ws.Recovery.ReplayedTicks, want)
		}

		if crash == 5 {
			// Finish the script on the restarted server: a crash mid-life
			// must not change where the feed ends up.
			for _, step := range steps[crash+1:] {
				step(t, tsB.URL)
			}
			final := snapshotFeed(t, tsB.URL, "fleet")
			if !reflect.DeepEqual(final, refs[len(refs)-1]) {
				t.Errorf("crash after step %d + replayed script: final state diverged\n got: %+v\nwant: %+v",
					crash, final, refs[len(refs)-1])
			}
		}
	}
}

// TestDurableFeedTornTailRecovery crashes a feed mid-append: the crash
// image's newest segment gains a partial record, and recovery must drop
// exactly that tail and come back at the last complete batch.
func TestDurableFeedTornTailRecovery(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	_, ts := newTestServer(t, durableConfig(walRoot))
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	var want feedSnapshot
	for tick := model.Tick(0); tick < 8; tick++ {
		pushTick(t, ts.URL, "fleet", vanBatch(tick))
		if tick == 6 {
			want = snapshotFeed(t, ts.URL, "fleet")
		}
	}

	img := filepath.Join(t.TempDir(), "restart")
	copyTree(t, walRoot, img)
	feedDir := feedWALDir(img, "fleet")
	segs, err := filepath.Glob(filepath.Join(feedDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", feedDir, err)
	}
	// Cut a few bytes off the newest segment: its final record — the last
	// batch, tick 7 — ends mid-payload, exactly like a crash mid-append.
	newest := segs[len(segs)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, tsB := newTestServer(t, durableConfig(img))
	got := snapshotFeed(t, tsB.URL, "fleet")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("torn-tail recovery: state diverged from the tick-6 snapshot\n got: %+v\nwant: %+v", got, want)
	}
	var ws WALStatusJSON
	doJSON(t, "GET", tsB.URL+"/v1/feeds/fleet/wal", nil, http.StatusOK, &ws)
	if ws.Recovery == nil || ws.Recovery.TruncatedBytes == 0 {
		t.Fatalf("wal status after torn-tail recovery = %+v; want a recovery block with truncated bytes", ws)
	}
	if ws.LastTick == nil || *ws.LastTick != 6 {
		t.Errorf("wal status last tick = %v, want 6", ws.LastTick)
	}
	// The feed is live again: re-ingesting the lost batch appends past the
	// repaired tail.
	pushTick(t, tsB.URL, "fleet", vanBatch(7))
}

// TestRecoverySkipsDuplicateBatch models at-least-once ingestion across a
// crash: the log holds the last batch twice, and replay applies it once.
func TestRecoverySkipsDuplicateBatch(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	srv := New(durableConfig(walRoot))
	ts := httptest.NewServer(srv)
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	for tick := model.Tick(0); tick < 6; tick++ {
		pushTick(t, ts.URL, "fleet", vanBatch(tick))
	}
	want := snapshotFeed(t, ts.URL, "fleet")
	ts.Close()
	srv.Close()

	log, _, err := wal.Open(feedWALDir(walRoot, "fleet"), wal.Options{})
	if err != nil {
		t.Fatalf("reopen feed log: %v", err)
	}
	if err := log.Append(tickBlock(vanBatch(5))); err != nil {
		t.Fatalf("append duplicate: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	_, tsB := newTestServer(t, durableConfig(walRoot))
	got := snapshotFeed(t, tsB.URL, "fleet")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovery over a duplicated batch diverged\n got: %+v\nwant: %+v", got, want)
	}
	var ws WALStatusJSON
	doJSON(t, "GET", tsB.URL+"/v1/feeds/fleet/wal", nil, http.StatusOK, &ws)
	if ws.Recovery == nil || ws.Recovery.SkippedTicks != 1 {
		t.Fatalf("wal status = %+v; want recovery with exactly 1 skipped tick", ws)
	}
}

// sortConvoys orders a convoy list for set comparison.
func sortConvoys(cs []ConvoyJSON) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return len(a.Objects) < len(b.Objects)
	})
}

// TestHistoryQueryMatchesBatch is the acceptance check for historical
// replay: a from/to query against the WAL answers exactly like a batch
// core.Query over a database built from the same window of the stream.
func TestHistoryQueryMatchesBatch(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	_, ts := newTestServer(t, durableConfig(walRoot))
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	for tick := model.Tick(0); tick < 20; tick++ {
		pushTick(t, ts.URL, "fleet", vanBatch(tick))
	}

	for _, tc := range []struct {
		name     string
		from, to *model.Tick
		loTick   model.Tick // the window the batches actually span
		hiTick   model.Tick
	}{
		{"bounded", ptrTick(3), ptrTick(16), 3, 16},
		{"unbounded", nil, nil, 0, 19},
		{"suffix", ptrTick(10), nil, 10, 19},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var resp HistoryQueryResponse
			doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/query", HistoryQueryRequest{
				Params: ParamsJSON{M: 2, K: 5, Eps: 1}, From: tc.from, To: tc.to,
			}, http.StatusOK, &resp)
			// Like /v1/query, the default backend reports as the empty
			// clusterer and the historical default algorithm is CMC.
			if resp.Algo != AlgoCMC || resp.Clusterer != "" {
				t.Fatalf("algo=%q clusterer=%q, want cmc and the default backend", resp.Algo, resp.Clusterer)
			}
			if want := int(tc.hiTick-tc.loTick) + 1; resp.Ticks != want {
				t.Fatalf("ticks = %d, want %d", resp.Ticks, want)
			}

			// The oracle: the same window, assembled into a trajectory
			// database by hand, through the same batch engine.
			db := model.NewDB()
			for _, id := range []string{"a", "b", "c"} {
				var samples []model.Sample
				for tick := tc.loTick; tick <= tc.hiTick; tick++ {
					for _, p := range vanBatch(tick).Positions {
						if p.ID == id {
							samples = append(samples, model.Sample{T: tick, P: geom.Pt(p.X, p.Y)})
						}
					}
				}
				tr, err := model.NewTrajectory(id, samples)
				if err != nil {
					t.Fatal(err)
				}
				db.Add(tr)
			}
			res, err := core.NewQuery(
				core.WithParams(core.Params{M: 2, K: 5, Eps: 1}),
				core.WithCMC(),
			).Run(context.Background(), db)
			if err != nil {
				t.Fatal(err)
			}
			want := []ConvoyJSON{}
			for _, c := range res {
				want = append(want, ConvoyToJSON(c, DBLabels(db)))
			}
			sortConvoys(want)
			got := append([]ConvoyJSON{}, resp.Convoys...)
			sortConvoys(got)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("historical query diverged from the batch oracle\n got: %+v\nwant: %+v", got, want)
			}
		})
	}

	// An inverted window is the client's mistake.
	doJSON(t, "POST", ts.URL+"/v1/feeds/fleet/query", HistoryQueryRequest{
		Params: ParamsJSON{M: 2, K: 5, Eps: 1}, From: ptrTick(9), To: ptrTick(3),
	}, http.StatusBadRequest, nil)
}

func ptrTick(t model.Tick) *model.Tick { return &t }

// TestHistoryQueryProxgraph replays logged contact edges through the
// graph-connectivity backend.
func TestHistoryQueryProxgraph(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	_, ts := newTestServer(t, durableConfig(walRoot))
	var st FeedStatus
	doJSON(t, "POST", ts.URL+"/v1/feeds",
		FeedSpec{Name: "contacts", Params: ParamsJSON{M: 2, K: 3, Eps: 0.5}, Clusterer: "proxgraph"},
		http.StatusCreated, &st)
	for tick := model.Tick(0); tick < 6; tick++ {
		pushTick(t, ts.URL, "contacts", TickBatch{T: tick, Edges: []EdgeJSON{{A: "x", B: "y", W: 1}}})
	}
	var resp HistoryQueryResponse
	doJSON(t, "POST", ts.URL+"/v1/feeds/contacts/query", HistoryQueryRequest{
		Params: ParamsJSON{M: 2, K: 3, Eps: 0.5}, Clusterer: "proxgraph",
		From: ptrTick(1), To: ptrTick(4),
	}, http.StatusOK, &resp)
	if len(resp.Convoys) != 1 {
		t.Fatalf("convoys = %+v, want exactly one", resp.Convoys)
	}
	c := resp.Convoys[0]
	if c.Start != 1 || c.End != 4 || !reflect.DeepEqual(c.Objects, []string{"x", "y"}) {
		t.Errorf("convoy = %+v, want {x,y} over [1,4]", c)
	}
}

// TestWALStatusEndpoint covers GET /v1/feeds/{name}/wal on a fresh feed
// and the 404 of both durable endpoints on an in-memory server.
func TestWALStatusEndpoint(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	_, ts := newTestServer(t, durableConfig(walRoot))
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})

	var ws WALStatusJSON
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet/wal", nil, http.StatusOK, &ws)
	if ws.Feed != "fleet" || ws.Fsync != "always" || ws.Records != 0 || ws.FirstTick != nil || ws.Recovery != nil {
		t.Fatalf("fresh wal status = %+v", ws)
	}
	for tick := model.Tick(0); tick < 3; tick++ {
		pushTick(t, ts.URL, "fleet", vanBatch(tick))
	}
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet/wal", nil, http.StatusOK, &ws)
	if ws.Records != 3 || ws.AppendedRecords != 3 || ws.Segments == 0 || ws.Bytes == 0 {
		t.Errorf("wal status after 3 ticks = %+v", ws)
	}
	if ws.FirstTick == nil || *ws.FirstTick != 0 || ws.LastTick == nil || *ws.LastTick != 2 {
		t.Errorf("wal tick range = [%v,%v], want [0,2]", ws.FirstTick, ws.LastTick)
	}
	if ws.LastSync == nil {
		t.Error("no last_sync under fsync=always")
	}

	// The server's aggregate meters follow the same appends.
	var stats ServerStats
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.WALAppendedRecords != 3 || stats.WALAppendedBytes == 0 || stats.WALSegments == 0 {
		t.Errorf("server stats wal meters = %+v", stats)
	}

	// Without a data dir the durable endpoints do not exist for the feed.
	_, tsMem := newTestServer(t, Config{})
	createFeed(t, tsMem.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	doJSON(t, "GET", tsMem.URL+"/v1/feeds/fleet/wal", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", tsMem.URL+"/v1/feeds/fleet/query",
		HistoryQueryRequest{Params: ParamsJSON{M: 2, K: 5, Eps: 1}}, http.StatusNotFound, nil)
}

// TestDurableFeedLifecycle covers the registry's custody of the WAL
// directory: eviction closes the handles but keeps the files, DELETE
// removes them (including for an already-evicted feed), and a leftover
// directory blocks re-creation with a 409.
func TestDurableFeedLifecycle(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	srv, ts := newTestServer(t, durableConfig(walRoot))
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	pushTick(t, ts.URL, "fleet", vanBatch(0))
	dir := feedWALDir(walRoot, "fleet")

	f, err := srv.reg.get("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.reg.evictIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("evicted %d feeds, want 1", n)
	}
	// The evicted feed's handles are closed — a write through the old log
	// must fail rather than touch the files a future recovery owns.
	if err := f.w.log.Append(tickBlock(vanBatch(1))); err == nil {
		t.Fatal("append on an evicted feed's log succeeded; handle leaked")
	}
	if !wal.Exists(dir) {
		t.Fatal("eviction removed the WAL directory; it must only close handles")
	}

	// The name is taken by the on-disk history until a DELETE or restart.
	doJSON(t, "POST", ts.URL+"/v1/feeds",
		FeedSpec{Name: "fleet", Params: ParamsJSON{M: 2, K: 5, Eps: 1}}, http.StatusConflict, nil)

	// DELETE of the evicted feed forgets the history with nothing to drain.
	var closed FeedCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/fleet", nil, http.StatusOK, &closed)
	if len(closed.Drained) != 0 {
		t.Errorf("evicted DELETE drained %+v, want nothing", closed.Drained)
	}
	if wal.Exists(dir) {
		t.Fatal("DELETE left the WAL directory behind")
	}

	// The name is free again; a live feed's DELETE also removes its log.
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	pushTick(t, ts.URL, "fleet", vanBatch(0))
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/fleet", nil, http.StatusOK, &closed)
	if wal.Exists(dir) {
		t.Fatal("DELETE of a live feed left the WAL directory behind")
	}
}

// TestEvictedDurableFeedResurrects closes the loop on eviction: the files
// an evicted feed leaves behind bring it back on the next server start.
func TestEvictedDurableFeedResurrects(t *testing.T) {
	walRoot := filepath.Join(t.TempDir(), "data")
	srv, ts := newTestServer(t, durableConfig(walRoot))
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})
	for tick := model.Tick(0); tick < 4; tick++ {
		pushTick(t, ts.URL, "fleet", vanBatch(tick))
	}
	want := snapshotFeed(t, ts.URL, "fleet")
	if n := srv.reg.evictIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("evicted %d feeds, want 1", n)
	}
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet", nil, http.StatusNotFound, nil)

	_, tsB := newTestServer(t, durableConfig(walRoot))
	got := snapshotFeed(t, tsB.URL, "fleet")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resurrected feed diverged\n got: %+v\nwant: %+v", got, want)
	}
}
