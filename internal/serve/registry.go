package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// registry is the named-feed table. It guards only the map — every
// per-feed operation goes through the feed's own mailbox — so registry
// critical sections are tiny and never wait on streamer work.
type registry struct {
	cfg Config

	mu     sync.Mutex
	feeds  map[string]*feed
	closed bool
}

// Registry and monitor-table errors, mapped to HTTP statuses by the
// handlers.
var (
	errNoFeed          = errors.New("serve: no such feed")
	errFeedExists      = errors.New("serve: feed already exists")
	errTooManyFeeds    = errors.New("serve: feed limit reached")
	errNoMonitor       = errors.New("serve: no such monitor")
	errMonitorExists   = errors.New("serve: monitor already exists")
	errTooManyMonitors = errors.New("serve: monitor limit reached")
	errServerClosing   = errors.New("serve: server shutting down")
	errNoWAL           = errors.New("serve: feed is not durable (server started without a data dir)")
)

// badRequestError marks an error as the client's fault (400). Wrap with
// badRequest at the point where the mistake is recognized; the message is
// passed through untouched.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return &badRequestError{err} }

func newRegistry(cfg Config) *registry {
	return &registry{cfg: cfg, feeds: make(map[string]*feed)}
}

// create registers a new feed under the name, with the given clustering
// backend for its default monitor ("" = dbscan). On a durable server the
// feed's WAL directory is initialised first, so a feed that exists in
// memory always has a manifest on disk.
func (r *registry) create(name string, p core.Params, clusterer string) (*feed, error) {
	if err := p.Validate(); err != nil {
		return nil, badRequest(err)
	}
	cl, err := ParseClusterer(clusterer)
	if err != nil {
		return nil, badRequest(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errServerClosing
	}
	if _, ok := r.feeds[name]; ok {
		return nil, fmt.Errorf("%w: %q", errFeedExists, name)
	}
	if len(r.feeds) >= r.cfg.MaxFeeds {
		return nil, fmt.Errorf("%w (%d)", errTooManyFeeds, r.cfg.MaxFeeds)
	}
	var w *feedWAL
	if r.cfg.WALDir != "" {
		dir := feedWALDir(r.cfg.WALDir, name)
		if wal.Exists(dir) {
			// An idle-evicted durable feed left its log behind. Re-creating
			// the name would fork its history; the client DELETEs the feed
			// (removing the log) or restarts the server (resurrecting it).
			return nil, fmt.Errorf("%w: %q (log on disk from an evicted feed; DELETE it or restart to recover)", errFeedExists, name)
		}
		if w, err = createFeedWAL(r.cfg, name, ParamsToJSON(p), cl.Name()); err != nil {
			return nil, err
		}
	}
	f, err := newFeed(name, p, clusterer, r.cfg, w)
	if err != nil {
		if w != nil {
			_ = w.close()
			_ = os.RemoveAll(feedWALDir(r.cfg.WALDir, name))
		}
		return nil, err
	}
	r.feeds[name] = f
	r.cfg.metrics.feedsCreated.Inc()
	return f, nil
}

// count reports the number of registered feeds (read by the feeds gauge
// and the stats snapshot).
func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.feeds)
}

// get looks a feed up by name.
func (r *registry) get(name string) (*feed, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.feeds[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errNoFeed, name)
	}
	return f, nil
}

// remove unregisters and drains a feed; the close happens outside the
// lock. The drain deliberately ignores the request context: once the
// feed is out of the map nobody else can close it, so a client that
// disconnects mid-DELETE must not orphan an undrained worker (which
// would also leave the monitor gauge counting its table forever).
func (r *registry) remove(_ context.Context, name string) (FeedCloseResponse, error) {
	r.mu.Lock()
	f, ok := r.feeds[name]
	if ok {
		delete(r.feeds, name)
	}
	r.mu.Unlock()
	if !ok {
		if r.cfg.WALDir != "" {
			if dir := feedWALDir(r.cfg.WALDir, name); wal.Exists(dir) {
				// An idle-evicted durable feed: its worker is gone but its
				// log is not. DELETE still means "forget the feed", so the
				// directory goes; there is nothing left to drain.
				if err := os.RemoveAll(dir); err != nil {
					return FeedCloseResponse{}, fmt.Errorf("serve: remove feed wal: %w", err)
				}
				r.cfg.metrics.feedsDeleted.Inc()
				return FeedCloseResponse{Drained: []ConvoyJSON{}}, nil
			}
		}
		return FeedCloseResponse{}, fmt.Errorf("%w: %q", errNoFeed, name)
	}
	r.cfg.metrics.feedsDeleted.Inc()
	resp, err := f.close(context.Background())
	if f.w != nil {
		// The drain released the file handles; DELETE also forgets the
		// history (idle eviction keeps it, so a restart resurrects the feed).
		if rerr := os.RemoveAll(feedWALDir(r.cfg.WALDir, name)); rerr != nil && err == nil {
			err = fmt.Errorf("serve: remove feed wal: %w", rerr)
		}
	}
	return resp, err
}

// list snapshots the registered feeds, name-sorted.
func (r *registry) list() []*feed {
	r.mu.Lock()
	out := make([]*feed, 0, len(r.feeds))
	for _, f := range r.feeds {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// evictIdle drains every feed idle since before the cutoff and returns how
// many were evicted.
func (r *registry) evictIdle(cutoff time.Time) int {
	r.mu.Lock()
	var victims []*feed
	for name, f := range r.feeds {
		if f.idleSince().Before(cutoff) {
			victims = append(victims, f)
			delete(r.feeds, name)
		}
	}
	r.mu.Unlock()
	for _, f := range victims {
		_, _ = f.close(context.Background()) // eviction drain is best-effort
	}
	r.cfg.metrics.feedsEvicted.Add(float64(len(victims)))
	return len(victims)
}

// closeAll marks the registry closed and drains every feed — the graceful
// shutdown path, flushing open candidates through Streamer.Close.
func (r *registry) closeAll() {
	r.mu.Lock()
	r.closed = true
	victims := make([]*feed, 0, len(r.feeds))
	for name, f := range r.feeds {
		victims = append(victims, f)
		delete(r.feeds, name)
	}
	r.mu.Unlock()
	for _, f := range victims {
		_, _ = f.close(context.Background()) // shutdown drain is best-effort
	}
}
