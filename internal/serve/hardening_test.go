package serve

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

// Regression: the cache key used to include δ/λ even for algo=cmc, which
// ignores both — equivalent CMC queries with different values missed the
// cache and recomputed. The plan key now normalizes them out for CMC while
// keeping them for the CuTS family (where they do change the run).
func TestQueryCMCCacheKeyNormalized(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := fixtureCSV(t)
	base := ts.URL + "/v1/query?m=2&k=5&e=1&algo=cmc"

	first := postQuery(t, base+"&delta=1&lambda=2", csv, http.StatusOK)
	if first.Cache != "miss" {
		t.Fatalf("first cmc query cache = %q", first.Cache)
	}
	second := postQuery(t, base+"&delta=9&lambda=7", csv, http.StatusOK)
	if second.Cache != "hit" {
		t.Fatalf("equivalent cmc query with different delta/lambda: cache = %q, want hit", second.Cache)
	}

	// CuTS* queries still key on δ/λ — different values really do run
	// differently and must not share an entry.
	cutsBase := ts.URL + "/v1/query?m=2&k=5&e=1&algo=cuts*"
	if got := postQuery(t, cutsBase+"&lambda=2", csv, http.StatusOK); got.Cache != "miss" {
		t.Fatalf("first cuts* query cache = %q", got.Cache)
	}
	if got := postQuery(t, cutsBase+"&lambda=4", csv, http.StatusOK); got.Cache != "miss" {
		t.Fatalf("cuts* with different lambda: cache = %q, want miss", got.Cache)
	}
}

// The workers request field: accepted on both query styles, clamped to the
// server's MaxWorkersPerQuery, excluded from the cache key (parallel ≡
// serial), and rejected when negative.
func TestQueryWorkersCappedAndCacheNeutral(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorkersPerQuery: 2})
	csv := fixtureCSV(t)

	serial := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&workers=1", csv, http.StatusOK)
	if serial.Stats == nil || serial.Stats.Workers != 1 {
		t.Fatalf("serial stats = %+v", serial.Stats)
	}

	// workers=64 is clamped to the configured cap of 2 — but the cache
	// already holds the serial answer under the same key, so this is a hit
	// (worker count must not fragment the cache).
	cached := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&workers=64", csv, http.StatusOK)
	if cached.Cache != "hit" {
		t.Fatalf("workers=64 after workers=1: cache = %q, want hit", cached.Cache)
	}

	// On a fresh server (cold cache) the clamp is observable in the stats.
	_, ts2 := newTestServer(t, Config{MaxWorkersPerQuery: 2})
	capped := postQuery(t, ts2.URL+"/v1/query?m=2&k=5&e=1&workers=64", csv, http.StatusOK)
	if capped.Stats == nil || capped.Stats.Workers != 2 {
		t.Fatalf("capped stats = %+v, want workers=2", capped.Stats)
	}
	if len(capped.Convoys) != len(serial.Convoys) {
		t.Fatalf("parallel answer differs: %d vs %d convoys", len(capped.Convoys), len(serial.Convoys))
	}

	// Negative workers is a client mistake.
	resp, err := http.Post(ts2.URL+"/v1/query?m=2&k=5&e=1&workers=-3", "text/csv", strings.NewReader(string(csv)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("workers=-3 status = %d, want 400", resp.StatusCode)
	}
}

// Regression: a CSV upload containing "nan" coordinates used to parse
// cleanly and then panic the grid index inside the query engine; now it is
// rejected as a 400 at parse time.
func TestQueryUploadRejectsNonFiniteCSV(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := "obj,t,x,y\na,0,nan,0\na,1,1,1\nb,0,0,0\nb,1,1,1\n"
	resp, err := http.Post(ts.URL+"/v1/query?m=2&k=2&e=1", "text/csv", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nan CSV upload status = %d, want 400", resp.StatusCode)
	}
}

// Non-finite positions must never reach a feed's streamer. The check lives
// in feed.ingest (standard JSON cannot carry NaN, but the feed API is also
// reachable from embedding Go code via serve.New + custom handlers, and
// defense in depth is cheap), so it is exercised at that level.
func TestFeedIngestRejectsNonFinitePositions(t *testing.T) {
	f, err := newFeed("poison", mustParams(t), "", Config{}.withDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.close(context.Background())

	for _, bad := range [][2]float64{
		{math.NaN(), 0}, {0, math.NaN()}, {math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		resp, err := f.ingest(context.Background(), []TickBatch{{
			T: 0,
			Positions: []Position{
				{ID: "ok", X: 1, Y: 1},
				{ID: "bad", X: bad[0], Y: bad[1]},
			},
		}})
		if err == nil {
			t.Fatalf("non-finite position (%g, %g) accepted", bad[0], bad[1])
		}
		if resp.Accepted != 0 {
			t.Fatalf("poisoned batch partially accepted: %d", resp.Accepted)
		}
	}
	// The feed survives and still accepts clean ticks.
	resp, err := f.ingest(context.Background(), []TickBatch{{
		T:         0,
		Positions: []Position{{ID: "a", X: 0, Y: 0}, {ID: "b", X: 0.5, Y: 0}},
	}})
	if err != nil || resp.Accepted != 1 {
		t.Fatalf("clean tick after rejection: %v, accepted=%d", err, resp.Accepted)
	}
}

func mustParams(t *testing.T) core.Params {
	t.Helper()
	return ParamsJSON{M: 2, K: 2, Eps: 1}.Params()
}
