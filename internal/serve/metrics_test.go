package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tsio"
)

// scrape reads the server's registry through its HTTP handler, the way a
// Prometheus scraper (or convoyload) would.
func scrape(t *testing.T, s *Server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	s.MetricsRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples, err := metrics.ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestSnapshotQueryCounters drives the query engine through every cache
// state and checks both the exported snapshot and the /metrics view — the
// previously package-private counters the issue asked to surface.
func TestSnapshotQueryCounters(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueryWorkers: 4})
	url := ts.URL + "/v1/query?m=2&k=5&e=1"
	body := fixtureCSV(t)

	postQuery(t, url, body, http.StatusOK)             // miss
	postQuery(t, url, body, http.StatusOK)             // hit
	postQuery(t, url+"&algo=cmc", body, http.StatusOK) // second miss
	postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&algo=nope", body, http.StatusBadRequest)

	st := srv.Snapshot()
	if st.Queries != 4 {
		t.Errorf("Queries = %d, want 4", st.Queries)
	}
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Errorf("misses/hits = %d/%d, want 2/1", st.CacheMisses, st.CacheHits)
	}
	if st.QueryComputes != 2 {
		t.Errorf("QueryComputes = %d, want 2", st.QueryComputes)
	}
	if st.QueriesRejected != 1 {
		t.Errorf("QueriesRejected = %d, want 1", st.QueriesRejected)
	}
	if st.QueryInflight != 0 {
		t.Errorf("QueryInflight = %d, want 0 at rest", st.QueryInflight)
	}
	if st.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2", st.CacheEntries)
	}

	samples := scrape(t, srv)
	if got := metrics.Sum(samples, "convoyd_queries_total"); got != 4 {
		t.Errorf("convoyd_queries_total = %g, want 4", got)
	}
	if got := samples[`convoyd_queries_total{algo="cuts*",cache="hit",outcome="ok"}`]; got != 1 {
		t.Errorf("hit series = %g, want 1 (samples: %v)", got, samples)
	}
	if got := samples[`convoyd_queries_total{algo="invalid",cache="none",outcome="bad_request"}`]; got != 1 {
		t.Errorf("bad_request series = %g, want 1", got)
	}
	if got := samples["convoyd_query_computes_total"]; got != 2 {
		t.Errorf("convoyd_query_computes_total = %g, want 2", got)
	}
	if got := samples["convoyd_cache_entries"]; got != 2 {
		t.Errorf("convoyd_cache_entries = %g, want 2", got)
	}
	// The stats bridge folded at least one clustering pass per compute.
	if got := metrics.Sum(samples, "convoyd_query_stats_total"); got <= 0 {
		t.Errorf("convoyd_query_stats_total sum = %g, want > 0", got)
	}
	if got := samples[`convoyd_query_stats_total{stat="cluster_passes",algo="cmc"}`]; got <= 0 {
		t.Errorf("cmc cluster_passes = %g, want > 0", got)
	}
}

// TestSnapshotFeedCounters checks the feed-side meters: ticks, events,
// monitor gauge, and shared clustering passes actual vs naive.
func TestSnapshotFeedCounters(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "vans", ParamsJSON{M: 2, K: 3, Eps: 2})
	// A second monitor sharing (e, m) with the default one: two monitors,
	// one clustering pass per tick.
	doJSON(t, "POST", ts.URL+"/v1/feeds/vans/monitors",
		MonitorSpec{ID: "long", Params: ParamsJSON{M: 2, K: 5, Eps: 2}}, http.StatusCreated, nil)

	for tick := 0; tick < 16; tick++ {
		pushTick(t, ts.URL, "vans", vanBatch(model.Tick(tick)))
	}

	st := srv.Snapshot()
	if st.Feeds != 1 || st.FeedsCreated != 1 {
		t.Errorf("Feeds/FeedsCreated = %d/%d, want 1/1", st.Feeds, st.FeedsCreated)
	}
	if st.Monitors != 2 {
		t.Errorf("Monitors = %d, want 2", st.Monitors)
	}
	if st.Ticks != 16 {
		t.Errorf("Ticks = %d, want 16", st.Ticks)
	}
	if st.Positions != 48 {
		t.Errorf("Positions = %d, want 48", st.Positions)
	}
	if st.Events == 0 {
		t.Error("Events = 0, want closed convoys")
	}
	// Shared key: one pass per tick where naive would run one per monitor.
	if st.ClusterPasses != 16 {
		t.Errorf("ClusterPasses = %d, want 16", st.ClusterPasses)
	}
	if st.ClusterPassesNaive != 32 {
		t.Errorf("ClusterPassesNaive = %d, want 32", st.ClusterPassesNaive)
	}

	// Deleting the monitor then the feed returns the gauge to zero.
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/vans/monitors/long", nil, http.StatusOK, nil)
	if got := srv.Snapshot().Monitors; got != 1 {
		t.Errorf("Monitors after monitor delete = %d, want 1", got)
	}
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/vans", nil, http.StatusOK, nil)
	st = srv.Snapshot()
	if st.Monitors != 0 || st.Feeds != 0 || st.FeedsDeleted != 1 {
		t.Errorf("after feed delete: monitors=%d feeds=%d deleted=%d, want 0/0/1",
			st.Monitors, st.Feeds, st.FeedsDeleted)
	}

	samples := scrape(t, srv)
	if got := samples["convoyd_feed_cluster_passes_total"]; got != 16 {
		t.Errorf("feed_cluster_passes_total = %g, want 16", got)
	}
	if got := samples["convoyd_feed_cluster_passes_naive_total"]; got != 32 {
		t.Errorf("feed_cluster_passes_naive_total = %g, want 32", got)
	}
	if got := samples["convoyd_feed_ingest_seconds_count"]; got != 16 {
		t.Errorf("feed_ingest_seconds_count = %g, want 16", got)
	}
}

// TestDeleteWithDeadClientStillDrains pins the registry fix: a DELETE
// whose client context is already gone must still drain the unregistered
// feed — otherwise its worker leaks and the monitor gauge counts its
// table forever.
func TestDeleteWithDeadClientStillDrains(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "doomed", ParamsJSON{M: 2, K: 3, Eps: 2})
	if got := srv.Snapshot().Monitors; got != 1 {
		t.Fatalf("Monitors = %d, want 1", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the drain starts
	if _, err := srv.reg.remove(ctx, "doomed"); err != nil {
		t.Fatalf("remove with dead client: %v", err)
	}
	st := srv.Snapshot()
	if st.Monitors != 0 || st.Feeds != 0 || st.FeedsDeleted != 1 {
		t.Errorf("after dead-client delete: monitors=%d feeds=%d deleted=%d, want 0/0/1",
			st.Monitors, st.Feeds, st.FeedsDeleted)
	}
}

// TestSnapshotJanitorEvictions pins the previously untestable janitor
// counter: idle feeds evicted by the background janitor show up in the
// snapshot and on /metrics.
func TestSnapshotJanitorEvictions(t *testing.T) {
	srv, ts := newTestServer(t, Config{IdleTimeout: 30 * time.Millisecond})
	createFeed(t, ts.URL, "idle1", ParamsJSON{M: 2, K: 3, Eps: 2})
	createFeed(t, ts.URL, "idle2", ParamsJSON{M: 2, K: 3, Eps: 2})

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Snapshot()
		if st.FeedsEvicted == 2 && st.Feeds == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never evicted both feeds: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := scrape(t, srv)["convoyd_feeds_evicted_total"]; got != 2 {
		t.Errorf("convoyd_feeds_evicted_total = %g, want 2", got)
	}
}

// TestHTTPRequestMetering checks the middleware: every API request lands
// in convoyd_http_requests_total under its mux route, 404s included, and
// GET /v1/stats serves the snapshot.
func TestHTTPRequestMetering(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "f", ParamsJSON{M: 2, K: 3, Eps: 2})
	if resp, err := http.Get(ts.URL + "/v1/feeds/f"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/nowhere"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	var st ServerStats
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.FeedsCreated != 1 {
		t.Errorf("/v1/stats FeedsCreated = %d, want 1", st.FeedsCreated)
	}

	samples := scrape(t, srv)
	if got := samples[`convoyd_http_requests_total{route="POST /v1/feeds",code="201"}`]; got != 1 {
		t.Errorf("create-feed series = %g, want 1", got)
	}
	if got := samples[`convoyd_http_requests_total{route="GET /v1/feeds/{name}",code="200"}`]; got != 1 {
		t.Errorf("feed-status series = %g, want 1", got)
	}
	if got := samples[`convoyd_http_requests_total{route="unmatched",code="404"}`]; got != 1 {
		t.Errorf("unmatched series = %g, want 1", got)
	}
	// 4 requests total: create, status, 404, stats (the scrape itself is
	// not served by the API mux).
	if got := metrics.Sum(samples, "convoyd_http_requests_total"); got != 4 {
		t.Errorf("http_requests_total = %g, want 4", got)
	}
	if got := metrics.Sum(samples, "convoyd_http_request_seconds_count"); got != 4 {
		t.Errorf("http_request_seconds_count = %g, want 4", got)
	}
}

// TestQueryOutcomeTimeout pins the timeout outcome label end to end.
func TestQueryOutcomeTimeout(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueryWorkers: 1})
	body := seedCSVLarge(t)
	resp, err := http.Post(ts.URL+"/v1/query?m=2&k=2&e=1&timeout_ms=0.001", "text/csv",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := srv.Snapshot().QueriesTimedOut; got != 1 {
		t.Errorf("QueriesTimedOut = %d, want 1", got)
	}
	samples := scrape(t, srv)
	if got := samples[`convoyd_queries_total{algo="cuts*",cache="none",outcome="timeout"}`]; got != 1 {
		t.Errorf("timeout series = %g, want 1", got)
	}
}

// TestSharedRegistryRejected documents the one-registry-per-server rule:
// a second server on the same registry panics at construction instead of
// silently cross-wiring instruments.
func TestSharedRegistryRejected(t *testing.T) {
	reg := metrics.NewRegistry()
	s1 := New(Config{Metrics: reg})
	defer s1.Close()
	defer func() {
		if recover() == nil {
			t.Error("second server on the same registry did not panic")
		}
	}()
	s2 := New(Config{Metrics: reg})
	s2.Close()
}

// seedCSVLarge builds a CSV big enough that discovery cannot finish
// within a microsecond deadline.
func seedCSVLarge(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tsio.WriteCSV(&buf, randomDB(t, 7)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
