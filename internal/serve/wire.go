package serve

import (
	"encoding/json"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wire"
)

// The JSON schema of the convoyd HTTP API lives in internal/wire — the
// canonical vocabulary shared with the CLIs (convoyfind -format json,
// convoyload) and the coordinator↔shard RPC (internal/dist). This file
// aliases the shared types into the serve namespace and adds the
// server-only request/response shapes (feed lifecycle, statuses, events).

// Shared wire vocabulary (see internal/wire).
type (
	ParamsJSON   = wire.ParamsJSON
	ConvoyJSON   = wire.ConvoyJSON
	Position     = wire.Position
	EdgeJSON     = wire.EdgeJSON
	TickBatch    = wire.TickBatch
	TicksRequest = wire.TicksRequest
	StatsJSON    = wire.StatsJSON
	ErrorJSON    = wire.ErrorJSON
	ErrorBody    = wire.ErrorBody
)

// Algo names accepted by the query engine and convoyfind.
const (
	AlgoCMC      = wire.AlgoCMC
	AlgoCuTS     = wire.AlgoCuTS
	AlgoCuTSPlus = wire.AlgoCuTSPlus
	AlgoCuTSStar = wire.AlgoCuTSStar
)

// ParamsToJSON converts core parameters to their wire form.
func ParamsToJSON(p core.Params) ParamsJSON { return wire.ParamsToJSON(p) }

// ConvoyToJSON renders a convoy with the given label lookup; a lookup
// returning "" falls back to "o<ID>".
func ConvoyToJSON(c core.Convoy, label func(model.ObjectID) string) ConvoyJSON {
	return wire.ConvoyToJSON(c, label)
}

// DBLabels returns a label lookup backed by a database's trajectory labels.
func DBLabels(db *model.DB) func(model.ObjectID) string { return wire.DBLabels(db) }

// StatsToJSON converts run statistics to their wire form.
func StatsToJSON(st core.Stats) StatsJSON { return wire.StatsToJSON(st) }

// ParseAlgo resolves an algorithm name ("" defaults to cuts*). cmc reports
// true in the first return; otherwise the variant is valid.
func ParseAlgo(name string) (isCMC bool, v core.Variant, err error) { return wire.ParseAlgo(name) }

// ParseClusterer resolves a clustering backend name from the wire ("" and
// "dbscan" are the built-in default; "proxgraph" is the graph-connectivity
// backend clustering each tick's proximity edges).
func ParseClusterer(name string) (core.Clusterer, error) { return wire.ParseClusterer(name) }

// TicksResponse reports the outcome of a tick ingestion.
type TicksResponse struct {
	// Accepted counts the ticks applied (all of them on success).
	Accepted int `json:"accepted"`
	// Closed lists the convoys that closed during these ticks.
	Closed []ConvoyJSON `json:"closed"`
}

// TicksError is the error body of a failed tick ingestion: the uniform
// envelope's error object plus the resume cursor. The accepted prefix of
// the batch is permanently applied to the feed, so the client needs
// Accepted (and any Closed convoys it produced) to know where to resume.
type TicksError struct {
	Error    ErrorBody    `json:"error"`
	Accepted int          `json:"accepted"`
	Closed   []ConvoyJSON `json:"closed"`
}

// FeedSpec is the body of POST /v1/feeds. The params become the feed's
// "default" monitor; further monitors are added under
// /v1/feeds/{name}/monitors.
type FeedSpec struct {
	Name   string     `json:"name"`
	Params ParamsJSON `json:"params"`
	// Clusterer selects the default monitor's clustering backend: "dbscan"
	// (default) or "proxgraph" (per-tick proximity edges, see
	// TickBatch.Edges).
	Clusterer string `json:"clusterer,omitempty"`
	// Incremental, when false, forces every clustering pass of this feed
	// onto the from-scratch path; absent/true keeps the default
	// (incremental clustering for dbscan monitors, reusing the previous
	// tick's structure when few objects moved). The answers are identical
	// either way — this is a performance knob, also forced off server-wide
	// by Config.DisableIncremental (convoyd -no-incremental) or the
	// CONVOY_NO_INCREMENTAL environment variable.
	Incremental *bool `json:"incremental,omitempty"`
}

// MonitorSpec is the body of POST /v1/feeds/{name}/monitors: one standing
// convoy query to register on the feed.
type MonitorSpec struct {
	ID     string     `json:"id"`
	Params ParamsJSON `json:"params"`
	// Clusterer selects the monitor's clustering backend ("" = dbscan).
	// Monitors share a clustering pass only when (e, m) AND the backend
	// match.
	Clusterer string `json:"clusterer,omitempty"`
}

// MonitorStatus describes one monitor of a feed (GET
// /v1/feeds/{name}/monitors and .../monitors/{id}; embedded in FeedStatus).
type MonitorStatus struct {
	ID     string     `json:"id"`
	Feed   string     `json:"feed"`
	Params ParamsJSON `json:"params"`
	// Clusterer is the monitor's clustering backend name.
	Clusterer string `json:"clusterer"`
	// LastTick is the most recent tick this monitor advanced over; null
	// before its first (monitors added mid-stream start at the next tick).
	LastTick *model.Tick `json:"last_tick,omitempty"`
	// Live counts the monitor's open convoy candidates.
	Live int `json:"live"`
	// Closed counts the events this monitor has emitted.
	Closed uint64 `json:"closed"`
}

// MonitorCloseResponse is the answer of DELETE /v1/feeds/{name}/monitors/{id}:
// the monitor's still-open convoys that satisfied the lifetime bound (also
// appended to the feed's event log, tagged with the monitor ID).
type MonitorCloseResponse struct {
	ID      string       `json:"id"`
	Drained []ConvoyJSON `json:"drained"`
}

// FeedStatus describes one feed (GET /v1/feeds and GET /v1/feeds/{name}).
type FeedStatus struct {
	Name string `json:"name"`
	// Params are the feed's creation parameters (the default monitor's).
	Params ParamsJSON `json:"params"`
	// Clusterer is the feed's creation backend (the default monitor's).
	Clusterer string `json:"clusterer"`
	// LastTick is the most recently ingested tick; null before the first.
	LastTick *model.Tick `json:"last_tick,omitempty"`
	// Ticks counts ingested tick batches.
	Ticks int64 `json:"ticks"`
	// Objects counts distinct object labels seen.
	Objects int `json:"objects"`
	// Live counts open convoy candidates across all monitors.
	Live int `json:"live"`
	// Closed counts convoys emitted so far (all monitors).
	Closed uint64 `json:"closed"`
	// NextSeq is the sequence number the next closed convoy will get;
	// pass it as ?since= to poll only new events.
	NextSeq uint64 `json:"next_seq"`
	// Monitors lists the feed's standing queries, ID-sorted.
	Monitors []MonitorStatus `json:"monitors"`
	// ClusterGroups counts the distinct clustering keys (e, m, backend)
	// among the live monitors — the number of clustering passes each tick
	// costs.
	ClusterGroups int `json:"cluster_groups"`
	// ClusterPasses counts snapshot clustering passes over the feed's
	// life: ticks × distinct keys, not ticks × monitors.
	ClusterPasses int64 `json:"cluster_passes"`
	// ClusterPassesFull / ClusterPassesIncremental split ClusterPasses by
	// how each pass was answered: from-scratch DBSCAN versus the
	// incremental engine patching the previous tick's structure.
	ClusterPassesFull        int64 `json:"cluster_passes_full"`
	ClusterPassesIncremental int64 `json:"cluster_passes_incremental"`
	// ObjectsReclustered counts the objects whose neighborhoods were
	// recomputed across all passes; ReuseRatio is the fraction of object
	// appearances that were reused instead (1 − reclustered/seen, 0
	// before any clustering). A low-churn feed sits near 1.
	ObjectsReclustered int64   `json:"objects_reclustered"`
	ReuseRatio         float64 `json:"reuse_ratio"`
}

// Event is one closed convoy on a feed's event log, as served by
// GET /v1/feeds/{name}/convoys and streamed by GET /v1/feeds/{name}/events.
type Event struct {
	// Seq numbers events per feed from 0 upward.
	Seq uint64 `json:"seq"`
	// Feed is the emitting feed's name.
	Feed string `json:"feed"`
	// Monitor is the ID of the monitor whose query closed this convoy.
	Monitor string `json:"monitor,omitempty"`
	// Convoy is the closed convoy.
	Convoy ConvoyJSON `json:"convoy"`
}

// EventsResponse is the poll answer of GET /v1/feeds/{name}/convoys.
type EventsResponse struct {
	Events []Event `json:"events"`
	// NextSeq is the ?since= value that continues after these events.
	NextSeq uint64 `json:"next_seq"`
}

// FeedCloseResponse is the answer of DELETE /v1/feeds/{name}: the convoys
// still open at deletion time that satisfied the lifetime bound.
type FeedCloseResponse struct {
	Drained []ConvoyJSON `json:"drained"`
}

// QueryRequest is the JSON body form of POST /v1/query: the canonical
// wire.QuerySpec (m/k/e, algorithm, clusterer, window, execution knobs —
// every field promoted here) plus a Path referencing a database file under
// the server's data directory. Uploads instead send the raw CSV/CTB bytes
// with the same spec in the URL query string.
type QueryRequest struct {
	wire.QuerySpec
	// Path locates the database file under the server's data directory.
	Path string `json:"path"`
}

// UnmarshalJSON decodes the embedded spec (with every legacy spelling the
// canonical decoder accepts) plus the path. Without this, the embedded
// spec's own UnmarshalJSON would be promoted and the path silently
// dropped.
func (r *QueryRequest) UnmarshalJSON(data []byte) error {
	if err := json.Unmarshal(data, &r.QuerySpec); err != nil {
		return err
	}
	var p struct {
		Path string `json:"path"`
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	r.Path = p.Path
	return nil
}

// MarshalJSON inlines the spec's fields and the path into one object —
// the inverse of UnmarshalJSON.
func (r QueryRequest) MarshalJSON() ([]byte, error) {
	b, err := json.Marshal(r.QuerySpec)
	if err != nil {
		return nil, err
	}
	if r.Path == "" {
		return b, nil
	}
	p, err := json.Marshal(struct {
		Path string `json:"path"`
	}{r.Path})
	if err != nil {
		return nil, err
	}
	if len(b) <= 2 { // "{}"
		return p, nil
	}
	// {...spec} + {"path":...} → {...spec,"path":...}
	out := append(b[:len(b)-1], ',')
	return append(out, p[1:]...), nil
}

// QueryResponse is the answer of POST /v1/query.
type QueryResponse struct {
	Convoys []ConvoyJSON `json:"convoys"`
	Params  ParamsJSON   `json:"params"`
	Algo    string       `json:"algo"`
	// Clusterer is the clustering backend the run used; present only for
	// non-default backends (a plain DBSCAN answer omits it).
	Clusterer string `json:"clusterer,omitempty"`
	// From and To echo the request's window bounds when it was windowed.
	From *model.Tick `json:"from,omitempty"`
	To   *model.Tick `json:"to,omitempty"`
	// Stats carries the CuTS run statistics (absent for CMC).
	Stats *StatsJSON `json:"stats,omitempty"`
	// Digest identifies the database contents (sha256, hex).
	Digest string `json:"digest"`
	// Cache is "hit" (served from the LRU), "miss" (computed by this
	// request) or "dedup" (this request joined an identical concurrent
	// query's in-flight run and shares its answer).
	Cache string `json:"cache"`
	// Shards counts the shard partials a coordinator merged for this
	// answer (absent on single-node runs).
	Shards int `json:"shards,omitempty"`
	// ElapsedMS is the wall time of this request's engine work (0 on a
	// cache hit).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Explain is the per-stage timing profile of this request's discovery
	// run; present only when the request asked explain=true.
	Explain *ExplainJSON `json:"explain,omitempty"`
}

// ExplainJSON is a query's timing profile: the discovery run's wall time
// broken down into its pipeline stages, derived from the run's span tree.
// TraceID correlates the profile with /debug/traces, the slow-query log
// and the latency histogram exemplars on /metrics.
type ExplainJSON struct {
	TraceID string `json:"trace_id"`
	// TotalMS is the discovery run's wall time (the run span's duration).
	// Stage durations are nested inside it, so their sum never exceeds it.
	TotalMS float64 `json:"total_ms"`
	// Stages lists the run's pipeline stages in execution order — scan for
	// CMC; simplify, filter, refine for the CuTS family — with each
	// stage's wall time and annotations (fan-out, candidate counts,
	// accumulated cluster/chain milliseconds, …).
	Stages []ExplainStageJSON `json:"stages"`
}

// ExplainStageJSON is one pipeline stage of a query profile.
type ExplainStageJSON struct {
	Name       string            `json:"name"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// ExplainFromTrace derives a query profile from a completed trace: the
// first span named "run" (the core entry point) provides the total, its
// direct children the stages. ok is false when the trace has no run span —
// a trace that never reached the core (e.g. an unparseable database).
func ExplainFromTrace(tj trace.TraceJSON) (ExplainJSON, bool) {
	if tj.Root == nil {
		return ExplainJSON{}, false
	}
	run := tj.Root.Find("run")
	if run == nil {
		return ExplainJSON{}, false
	}
	out := ExplainJSON{
		TraceID: tj.TraceID,
		TotalMS: run.DurationMS,
		Stages:  make([]ExplainStageJSON, len(run.Children)),
	}
	for i, c := range run.Children {
		out.Stages[i] = ExplainStageJSON{Name: c.Name, DurationMS: c.DurationMS, Attrs: c.Attrs}
	}
	return out, true
}

// HistoryQueryRequest is the body of POST /v1/feeds/{name}/query: the
// canonical query spec applied to the tick window a durable feed's WAL
// retains (From/To delimit the window; ticks compacted past the retention
// horizon are gone and silently excluded). The default algorithm is cmc —
// the canonical semantics for a replayed live stream; the CuTS family is
// opt-in and dbscan-only.
type HistoryQueryRequest = wire.QuerySpec

// HistoryQueryResponse is the answer of POST /v1/feeds/{name}/query.
type HistoryQueryResponse struct {
	Convoys []ConvoyJSON `json:"convoys"`
	Params  ParamsJSON   `json:"params"`
	Algo    string       `json:"algo"`
	// Clusterer is present only for non-default backends.
	Clusterer string `json:"clusterer,omitempty"`
	// From and To echo the request's window bounds.
	From *model.Tick `json:"from,omitempty"`
	To   *model.Tick `json:"to,omitempty"`
	// Ticks counts the logged batches the window covered; Objects the
	// distinct labels among them.
	Ticks   int `json:"ticks"`
	Objects int `json:"objects"`
	// Stats carries the CuTS run statistics (absent for CMC).
	Stats *StatsJSON `json:"stats,omitempty"`
	// ElapsedMS is the wall time of the window read plus the discovery run.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WALStatusJSON is the answer of GET /v1/feeds/{name}/wal: one durable
// feed's log shape, append/fsync counters and recovery stats.
type WALStatusJSON struct {
	Feed string `json:"feed"`
	// Fsync is the tick-record durability policy name (always, interval,
	// never).
	Fsync string `json:"fsync"`
	// Segments, Bytes and Records describe the retained log (compacted
	// segments excluded).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	Records  int64 `json:"records"`
	// FirstTick and LastTick delimit the retained tick range; null while
	// the log holds no ticks.
	FirstTick *model.Tick `json:"first_tick,omitempty"`
	LastTick  *model.Tick `json:"last_tick,omitempty"`
	// AppendedRecords and AppendedBytes count appends since this process
	// opened the log; CompactedSegments the segments dropped past the
	// retention horizon.
	AppendedRecords   int64 `json:"appended_records"`
	AppendedBytes     int64 `json:"appended_bytes"`
	CompactedSegments int64 `json:"compacted_segments"`
	// LastSync is the RFC 3339 time of the last fsync of the active
	// segment; absent before the first.
	LastSync *time.Time `json:"last_sync,omitempty"`
	// Recovery is present when this feed was rebuilt from its WAL at server
	// start.
	Recovery *WALRecoveryJSON `json:"recovery,omitempty"`
}

// WALRecoveryJSON summarizes the replay that resurrected a feed.
type WALRecoveryJSON struct {
	ReplayedTicks int64 `json:"replayed_ticks"`
	// SkippedTicks counts logged batches dropped as already-applied
	// duplicates (at-least-once ingestion across a crash).
	SkippedTicks int64 `json:"skipped_ticks"`
	ReplayedOps  int64 `json:"replayed_ops"`
	// TruncatedBytes is the torn tail dropped from the segments and the
	// spec journal — > 0 means the previous process died mid-append.
	TruncatedBytes int64   `json:"truncated_bytes"`
	DurationMS     float64 `json:"duration_ms"`
}
