package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proxgraph"
	"repro/internal/trace"
)

// Wire types: the JSON schema of the convoyd HTTP API, shared with the
// CLIs so that `convoyfind -format json` and the server speak the same
// language. Ticks travel as plain int64 and object identities as string
// labels — dense ObjectIDs are a per-feed (or per-database) implementation
// detail that must not leak to clients.

// ParamsJSON is the wire form of the convoy query parameters (m, k, e).
type ParamsJSON struct {
	M   int     `json:"m"`
	K   int64   `json:"k"`
	Eps float64 `json:"e"`
}

// Params converts to the core parameter struct.
func (p ParamsJSON) Params() core.Params { return core.Params{M: p.M, K: p.K, Eps: p.Eps} }

// ParamsToJSON converts core parameters to their wire form.
func ParamsToJSON(p core.Params) ParamsJSON { return ParamsJSON{M: p.M, K: p.K, Eps: p.Eps} }

// ConvoyJSON is the wire form of one convoy answer.
type ConvoyJSON struct {
	// Objects are the member labels, ascending in the underlying IDs.
	Objects []string `json:"objects"`
	// Start and End delimit the inclusive tick interval.
	Start model.Tick `json:"start"`
	End   model.Tick `json:"end"`
	// Lifetime is End−Start+1, precomputed for consumers.
	Lifetime int64 `json:"lifetime"`
}

// ConvoyToJSON renders a convoy with the given label lookup; a lookup
// returning "" falls back to "o<ID>".
func ConvoyToJSON(c core.Convoy, label func(model.ObjectID) string) ConvoyJSON {
	out := ConvoyJSON{
		Objects:  make([]string, len(c.Objects)),
		Start:    c.Start,
		End:      c.End,
		Lifetime: c.Lifetime(),
	}
	for i, id := range c.Objects {
		name := ""
		if label != nil {
			name = label(id)
		}
		if name == "" {
			name = fmt.Sprintf("o%d", id)
		}
		out.Objects[i] = name
	}
	return out
}

// DBLabels returns a label lookup backed by a database's trajectory labels.
func DBLabels(db *model.DB) func(model.ObjectID) string {
	return func(id model.ObjectID) string {
		if id < 0 || id >= db.Len() {
			return ""
		}
		return db.Traj(id).Label
	}
}

// Position is one object's location in a tick batch.
type Position struct {
	ID string  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// EdgeJSON is one proximity observation in a tick batch: objects a and b
// were in contact at the batch's tick with weight w. Edges feed
// graph-connectivity monitors (clusterer "proxgraph"); geometric monitors
// ignore them.
type EdgeJSON struct {
	A string  `json:"a"`
	B string  `json:"b"`
	W float64 `json:"w"`
}

// TickBatch is the ingestion unit of POST /v1/feeds/{name}/ticks: the
// snapshot of every tracked object at one tick — positions, proximity
// edges, or both (a coordinate-free contact feed sends only edges).
type TickBatch struct {
	T         model.Tick `json:"t"`
	Positions []Position `json:"positions"`
	Edges     []EdgeJSON `json:"edges,omitempty"`
}

// TicksRequest is the body of POST /v1/feeds/{name}/ticks. Either a single
// batch or a "ticks" array is accepted; see decodeTicks.
type TicksRequest struct {
	Ticks []TickBatch `json:"ticks"`
}

// TicksResponse reports the outcome of a tick ingestion.
type TicksResponse struct {
	// Accepted counts the ticks applied (all of them on success).
	Accepted int `json:"accepted"`
	// Closed lists the convoys that closed during these ticks.
	Closed []ConvoyJSON `json:"closed"`
}

// TicksError is the error body of a failed tick ingestion. The accepted
// prefix of the batch is permanently applied to the feed, so the client
// needs Accepted (and any Closed convoys it produced) to know where to
// resume.
type TicksError struct {
	Error    string       `json:"error"`
	Accepted int          `json:"accepted"`
	Closed   []ConvoyJSON `json:"closed"`
}

// FeedSpec is the body of POST /v1/feeds. The params become the feed's
// "default" monitor; further monitors are added under
// /v1/feeds/{name}/monitors.
type FeedSpec struct {
	Name   string     `json:"name"`
	Params ParamsJSON `json:"params"`
	// Clusterer selects the default monitor's clustering backend: "dbscan"
	// (default) or "proxgraph" (per-tick proximity edges, see
	// TickBatch.Edges).
	Clusterer string `json:"clusterer,omitempty"`
	// Incremental, when false, forces every clustering pass of this feed
	// onto the from-scratch path; absent/true keeps the default
	// (incremental clustering for dbscan monitors, reusing the previous
	// tick's structure when few objects moved). The answers are identical
	// either way — this is a performance knob, also forced off server-wide
	// by Config.DisableIncremental (convoyd -no-incremental) or the
	// CONVOY_NO_INCREMENTAL environment variable.
	Incremental *bool `json:"incremental,omitempty"`
}

// MonitorSpec is the body of POST /v1/feeds/{name}/monitors: one standing
// convoy query to register on the feed.
type MonitorSpec struct {
	ID     string     `json:"id"`
	Params ParamsJSON `json:"params"`
	// Clusterer selects the monitor's clustering backend ("" = dbscan).
	// Monitors share a clustering pass only when (e, m) AND the backend
	// match.
	Clusterer string `json:"clusterer,omitempty"`
}

// MonitorStatus describes one monitor of a feed (GET
// /v1/feeds/{name}/monitors and .../monitors/{id}; embedded in FeedStatus).
type MonitorStatus struct {
	ID     string     `json:"id"`
	Feed   string     `json:"feed"`
	Params ParamsJSON `json:"params"`
	// Clusterer is the monitor's clustering backend name.
	Clusterer string `json:"clusterer"`
	// LastTick is the most recent tick this monitor advanced over; null
	// before its first (monitors added mid-stream start at the next tick).
	LastTick *model.Tick `json:"last_tick,omitempty"`
	// Live counts the monitor's open convoy candidates.
	Live int `json:"live"`
	// Closed counts the events this monitor has emitted.
	Closed uint64 `json:"closed"`
}

// MonitorCloseResponse is the answer of DELETE /v1/feeds/{name}/monitors/{id}:
// the monitor's still-open convoys that satisfied the lifetime bound (also
// appended to the feed's event log, tagged with the monitor ID).
type MonitorCloseResponse struct {
	ID      string       `json:"id"`
	Drained []ConvoyJSON `json:"drained"`
}

// FeedStatus describes one feed (GET /v1/feeds and GET /v1/feeds/{name}).
type FeedStatus struct {
	Name string `json:"name"`
	// Params are the feed's creation parameters (the default monitor's).
	Params ParamsJSON `json:"params"`
	// Clusterer is the feed's creation backend (the default monitor's).
	Clusterer string `json:"clusterer"`
	// LastTick is the most recently ingested tick; null before the first.
	LastTick *model.Tick `json:"last_tick,omitempty"`
	// Ticks counts ingested tick batches.
	Ticks int64 `json:"ticks"`
	// Objects counts distinct object labels seen.
	Objects int `json:"objects"`
	// Live counts open convoy candidates across all monitors.
	Live int `json:"live"`
	// Closed counts convoys emitted so far (all monitors).
	Closed uint64 `json:"closed"`
	// NextSeq is the sequence number the next closed convoy will get;
	// pass it as ?since= to poll only new events.
	NextSeq uint64 `json:"next_seq"`
	// Monitors lists the feed's standing queries, ID-sorted.
	Monitors []MonitorStatus `json:"monitors"`
	// ClusterGroups counts the distinct clustering keys (e, m, backend)
	// among the live monitors — the number of clustering passes each tick
	// costs.
	ClusterGroups int `json:"cluster_groups"`
	// ClusterPasses counts snapshot clustering passes over the feed's
	// life: ticks × distinct keys, not ticks × monitors.
	ClusterPasses int64 `json:"cluster_passes"`
	// ClusterPassesFull / ClusterPassesIncremental split ClusterPasses by
	// how each pass was answered: from-scratch DBSCAN versus the
	// incremental engine patching the previous tick's structure.
	ClusterPassesFull        int64 `json:"cluster_passes_full"`
	ClusterPassesIncremental int64 `json:"cluster_passes_incremental"`
	// ObjectsReclustered counts the objects whose neighborhoods were
	// recomputed across all passes; ReuseRatio is the fraction of object
	// appearances that were reused instead (1 − reclustered/seen, 0
	// before any clustering). A low-churn feed sits near 1.
	ObjectsReclustered int64   `json:"objects_reclustered"`
	ReuseRatio         float64 `json:"reuse_ratio"`
}

// Event is one closed convoy on a feed's event log, as served by
// GET /v1/feeds/{name}/convoys and streamed by GET /v1/feeds/{name}/events.
type Event struct {
	// Seq numbers events per feed from 0 upward.
	Seq uint64 `json:"seq"`
	// Feed is the emitting feed's name.
	Feed string `json:"feed"`
	// Monitor is the ID of the monitor whose query closed this convoy.
	Monitor string `json:"monitor,omitempty"`
	// Convoy is the closed convoy.
	Convoy ConvoyJSON `json:"convoy"`
}

// EventsResponse is the poll answer of GET /v1/feeds/{name}/convoys.
type EventsResponse struct {
	Events []Event `json:"events"`
	// NextSeq is the ?since= value that continues after these events.
	NextSeq uint64 `json:"next_seq"`
}

// FeedCloseResponse is the answer of DELETE /v1/feeds/{name}: the convoys
// still open at deletion time that satisfied the lifetime bound.
type FeedCloseResponse struct {
	Drained []ConvoyJSON `json:"drained"`
}

// QueryRequest is the JSON body form of POST /v1/query, referencing a
// server-local database file. Uploads instead send the raw CSV/CTB bytes
// with parameters in the URL query string.
type QueryRequest struct {
	// Path locates the database file under the server's data directory.
	Path   string     `json:"path"`
	Params ParamsJSON `json:"params"`
	// Algo selects the algorithm: cmc, cuts, cuts+ or cuts* (default; with
	// clusterer "proxgraph" the default becomes cmc and the CuTS family is
	// rejected).
	Algo string `json:"algo,omitempty"`
	// Clusterer selects the clustering backend: "dbscan" (default) over a
	// trajectory database, or "proxgraph" over a proximity-edge CSV
	// ("a,b,t,w" header) — the Path (or upload body) is then parsed as an
	// edge list and convoys are chains of connected contact components.
	Clusterer string `json:"clusterer,omitempty"`
	// Delta and Lambda override the automatic guidelines when > 0.
	Delta  float64 `json:"delta,omitempty"`
	Lambda int64   `json:"lambda,omitempty"`
	// Workers requests a parallel discovery run with that many goroutines
	// per pipeline stage; 0/absent runs serially. The server caps the
	// value at its MaxWorkersPerQuery config. The answer set is identical
	// for every worker count, so workers is not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS aborts the query after this many milliseconds — queueing
	// and discovery both count — answering 504. 0/absent means no
	// client-side deadline; the server's QueryTimeout cap (convoyd
	// -request-timeout) applies either way. Aborted runs free their worker
	// slot immediately and are never cached.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
	// Explain asks for a per-stage timing profile of this query's
	// discovery run (the Explain field of the response). An explain query
	// always runs the discovery — the cache is bypassed on the way in, so
	// the profile describes this request, not a months-old cached run —
	// but its answer is cached like any other, Explain stripped.
	Explain bool `json:"explain,omitempty"`
	// Incremental, when false, forces this query's CMC scan onto the
	// from-scratch clustering path; absent/true keeps the default
	// (incremental clustering where it applies). Like workers, it cannot
	// change the answer set — only the work — so it is not part of the
	// cache key.
	Incremental *bool `json:"incremental,omitempty"`
}

// StatsJSON is the wire form of the CuTS run statistics.
type StatsJSON struct {
	Variant       string  `json:"variant"`
	Delta         float64 `json:"delta"`
	Lambda        int64   `json:"lambda"`
	Workers       int     `json:"workers"`
	NumPartitions int     `json:"partitions"`
	NumCandidates int     `json:"candidates"`
	RefineUnits   float64 `json:"refine_units"`
	ClusterPasses int64   `json:"cluster_passes"`
	// ClusterPassesFull / Incremental split the pass count by clustering
	// mode; ObjectsReclustered meters the incremental path's object-level
	// work (see core.Stats).
	ClusterPassesFull        int64   `json:"cluster_passes_full"`
	ClusterPassesIncremental int64   `json:"cluster_passes_incremental"`
	ObjectsReclustered       int64   `json:"objects_reclustered"`
	SimplifyMS               float64 `json:"simplify_ms"`
	FilterMS                 float64 `json:"filter_ms"`
	RefineMS                 float64 `json:"refine_ms"`
	TotalMS                  float64 `json:"total_ms"`
}

// StatsToJSON converts run statistics to their wire form.
func StatsToJSON(st core.Stats) StatsJSON {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return StatsJSON{
		Variant:                  st.Variant.String(),
		Delta:                    st.Delta,
		Lambda:                   st.Lambda,
		Workers:                  st.Workers,
		NumPartitions:            st.NumPartitions,
		NumCandidates:            st.NumCandidates,
		RefineUnits:              st.RefineUnits,
		ClusterPasses:            st.ClusterPasses,
		ClusterPassesFull:        st.ClusterPassesFull,
		ClusterPassesIncremental: st.ClusterPassesIncremental,
		ObjectsReclustered:       st.ObjectsReclustered,
		SimplifyMS:               ms(st.SimplifyTime),
		FilterMS:                 ms(st.FilterTime),
		RefineMS:                 ms(st.RefineTime),
		TotalMS:                  ms(st.TotalTime()),
	}
}

// QueryResponse is the answer of POST /v1/query.
type QueryResponse struct {
	Convoys []ConvoyJSON `json:"convoys"`
	Params  ParamsJSON   `json:"params"`
	Algo    string       `json:"algo"`
	// Clusterer is the clustering backend the run used; present only for
	// non-default backends (a plain DBSCAN answer omits it).
	Clusterer string `json:"clusterer,omitempty"`
	// Stats carries the CuTS run statistics (absent for CMC).
	Stats *StatsJSON `json:"stats,omitempty"`
	// Digest identifies the database contents (sha256, hex).
	Digest string `json:"digest"`
	// Cache is "hit" (served from the LRU), "miss" (computed by this
	// request) or "dedup" (this request joined an identical concurrent
	// query's in-flight run and shares its answer).
	Cache string `json:"cache"`
	// ElapsedMS is the wall time of this request's engine work (0 on a
	// cache hit).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Explain is the per-stage timing profile of this request's discovery
	// run; present only when the request asked explain=true.
	Explain *ExplainJSON `json:"explain,omitempty"`
}

// ExplainJSON is a query's timing profile: the discovery run's wall time
// broken down into its pipeline stages, derived from the run's span tree.
// TraceID correlates the profile with /debug/traces, the slow-query log
// and the latency histogram exemplars on /metrics.
type ExplainJSON struct {
	TraceID string `json:"trace_id"`
	// TotalMS is the discovery run's wall time (the run span's duration).
	// Stage durations are nested inside it, so their sum never exceeds it.
	TotalMS float64 `json:"total_ms"`
	// Stages lists the run's pipeline stages in execution order — scan for
	// CMC; simplify, filter, refine for the CuTS family — with each
	// stage's wall time and annotations (fan-out, candidate counts,
	// accumulated cluster/chain milliseconds, …).
	Stages []ExplainStageJSON `json:"stages"`
}

// ExplainStageJSON is one pipeline stage of a query profile.
type ExplainStageJSON struct {
	Name       string            `json:"name"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// ExplainFromTrace derives a query profile from a completed trace: the
// first span named "run" (the core entry point) provides the total, its
// direct children the stages. ok is false when the trace has no run span —
// a trace that never reached the core (e.g. an unparseable database).
func ExplainFromTrace(tj trace.TraceJSON) (ExplainJSON, bool) {
	if tj.Root == nil {
		return ExplainJSON{}, false
	}
	run := tj.Root.Find("run")
	if run == nil {
		return ExplainJSON{}, false
	}
	out := ExplainJSON{
		TraceID: tj.TraceID,
		TotalMS: run.DurationMS,
		Stages:  make([]ExplainStageJSON, len(run.Children)),
	}
	for i, c := range run.Children {
		out.Stages[i] = ExplainStageJSON{Name: c.Name, DurationMS: c.DurationMS, Attrs: c.Attrs}
	}
	return out, true
}

// HistoryQueryRequest is the body of POST /v1/feeds/{name}/query: a batch
// convoy query over the tick window a durable feed's WAL retains. The
// window replays the ticks clients actually ingested — verbatim, gaps
// included — so the answer matches a batch query over the same stream.
type HistoryQueryRequest struct {
	Params ParamsJSON `json:"params"`
	// From and To delimit the inclusive tick window; absent means unbounded
	// on that side (the whole retained log when both are absent). Ticks
	// compacted past the retention horizon are gone and silently excluded.
	From *model.Tick `json:"from,omitempty"`
	To   *model.Tick `json:"to,omitempty"`
	// Algo selects the algorithm (default cmc — the canonical semantics for
	// a replayed live stream; the CuTS family is opt-in and dbscan-only).
	Algo string `json:"algo,omitempty"`
	// Clusterer selects which logged signal the window is clustered on:
	// "dbscan" (default) over the logged positions, "proxgraph" over the
	// logged proximity edges.
	Clusterer string `json:"clusterer,omitempty"`
	// Delta and Lambda override the CuTS guidelines when > 0.
	Delta  float64 `json:"delta,omitempty"`
	Lambda int64   `json:"lambda,omitempty"`
	// Workers requests a parallel discovery run, clamped to the server's
	// MaxWorkersPerQuery like a batch query.
	Workers int `json:"workers,omitempty"`
	// Incremental, when false, forces the run's clustering onto the
	// from-scratch path (a performance knob; the answer is identical).
	Incremental *bool `json:"incremental,omitempty"`
}

// HistoryQueryResponse is the answer of POST /v1/feeds/{name}/query.
type HistoryQueryResponse struct {
	Convoys []ConvoyJSON `json:"convoys"`
	Params  ParamsJSON   `json:"params"`
	Algo    string       `json:"algo"`
	// Clusterer is present only for non-default backends.
	Clusterer string `json:"clusterer,omitempty"`
	// From and To echo the request's window bounds.
	From *model.Tick `json:"from,omitempty"`
	To   *model.Tick `json:"to,omitempty"`
	// Ticks counts the logged batches the window covered; Objects the
	// distinct labels among them.
	Ticks   int `json:"ticks"`
	Objects int `json:"objects"`
	// Stats carries the CuTS run statistics (absent for CMC).
	Stats *StatsJSON `json:"stats,omitempty"`
	// ElapsedMS is the wall time of the window read plus the discovery run.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WALStatusJSON is the answer of GET /v1/feeds/{name}/wal: one durable
// feed's log shape, append/fsync counters and recovery stats.
type WALStatusJSON struct {
	Feed string `json:"feed"`
	// Fsync is the tick-record durability policy name (always, interval,
	// never).
	Fsync string `json:"fsync"`
	// Segments, Bytes and Records describe the retained log (compacted
	// segments excluded).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	Records  int64 `json:"records"`
	// FirstTick and LastTick delimit the retained tick range; null while
	// the log holds no ticks.
	FirstTick *model.Tick `json:"first_tick,omitempty"`
	LastTick  *model.Tick `json:"last_tick,omitempty"`
	// AppendedRecords and AppendedBytes count appends since this process
	// opened the log; CompactedSegments the segments dropped past the
	// retention horizon.
	AppendedRecords   int64 `json:"appended_records"`
	AppendedBytes     int64 `json:"appended_bytes"`
	CompactedSegments int64 `json:"compacted_segments"`
	// LastSync is the RFC 3339 time of the last fsync of the active
	// segment; absent before the first.
	LastSync *time.Time `json:"last_sync,omitempty"`
	// Recovery is present when this feed was rebuilt from its WAL at server
	// start.
	Recovery *WALRecoveryJSON `json:"recovery,omitempty"`
}

// WALRecoveryJSON summarizes the replay that resurrected a feed.
type WALRecoveryJSON struct {
	ReplayedTicks int64 `json:"replayed_ticks"`
	// SkippedTicks counts logged batches dropped as already-applied
	// duplicates (at-least-once ingestion across a crash).
	SkippedTicks int64 `json:"skipped_ticks"`
	ReplayedOps  int64 `json:"replayed_ops"`
	// TruncatedBytes is the torn tail dropped from the segments and the
	// spec journal — > 0 means the previous process died mid-append.
	TruncatedBytes int64   `json:"truncated_bytes"`
	DurationMS     float64 `json:"duration_ms"`
}

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	Error string `json:"error"`
}

// Algo names accepted by the query engine and convoyfind.
const (
	AlgoCMC      = "cmc"
	AlgoCuTS     = "cuts"
	AlgoCuTSPlus = "cuts+"
	AlgoCuTSStar = "cuts*"
)

// ParseAlgo resolves an algorithm name ("" defaults to cuts*). cmc reports
// true in the first return; otherwise the variant is valid.
func ParseAlgo(name string) (isCMC bool, v core.Variant, err error) {
	switch strings.ToLower(name) {
	case AlgoCMC:
		return true, 0, nil
	case AlgoCuTS:
		return false, core.VariantCuTS, nil
	case AlgoCuTSPlus:
		return false, core.VariantCuTSPlus, nil
	case AlgoCuTSStar, "":
		return false, core.VariantCuTSStar, nil
	default:
		return false, 0, fmt.Errorf("unknown algorithm %q (want cmc, cuts, cuts+ or cuts*)", name)
	}
}

// ParseClusterer resolves a clustering backend name from the wire ("" and
// "dbscan" are the built-in default; "proxgraph" is the graph-connectivity
// backend clustering each tick's proximity edges).
func ParseClusterer(name string) (core.Clusterer, error) {
	switch strings.ToLower(name) {
	case "", core.DefaultBackend:
		return core.DefaultClusterer, nil
	case proxgraph.Backend:
		return proxgraph.Clusterer{}, nil
	default:
		return nil, fmt.Errorf("unknown clusterer %q (want %s or %s)", name, core.DefaultBackend, proxgraph.Backend)
	}
}
