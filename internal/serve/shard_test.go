package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/wire"
)

// newShardFleet starts n shard servers behind request-counting proxies and
// a coordinator fanning out to them. The counter tallies shard RPCs across
// the whole fleet.
func newShardFleet(t *testing.T, n int, cfg Config) (coord string, hits *atomic.Int64) {
	t.Helper()
	hits = new(atomic.Int64)
	shards := make([]string, n)
	for i := range shards {
		srv, ts := newTestServer(t, Config{ShardMode: true})
		_ = srv
		proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			u := *r.URL
			req, err := http.NewRequestWithContext(r.Context(), r.Method, ts.URL+u.Path+"?"+u.RawQuery, r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			req.Header = r.Header
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
		}))
		t.Cleanup(proxy.Close)
		shards[i] = proxy.URL
	}
	cfg.Shards = shards
	_, ts := newTestServer(t, cfg)
	return ts.URL, hits
}

func TestShardedEqualsSingleNode(t *testing.T) {
	csv := fixtureCSV(t)
	_, plain := newTestServer(t, Config{})
	want := postQuery(t, plain.URL+"/v1/query?m=2&k=5&e=1", csv, http.StatusOK)

	for _, n := range []int{1, 2, 3} {
		coord, _ := newShardFleet(t, n, Config{})
		for _, algo := range []string{"", "&algo=cmc", "&algo=cuts"} {
			got := postQuery(t, coord+"/v1/query?m=2&k=5&e=1"+algo, csv, http.StatusOK)
			if !reflect.DeepEqual(got.Convoys, want.Convoys) {
				t.Fatalf("%d shards%s: convoys = %+v, single-node = %+v", n, algo, got.Convoys, want.Convoys)
			}
			if got.Shards != n {
				t.Errorf("%d shards%s: resp.Shards = %d", n, algo, got.Shards)
			}
		}
	}

	// Local multi-partition mining (no fleet) is the same exact answer.
	part := postQuery(t, plain.URL+"/v1/query?m=2&k=5&e=1&partitions=3", csv, http.StatusOK)
	if !reflect.DeepEqual(part.Convoys, want.Convoys) {
		t.Fatalf("partitions=3 convoys = %+v, want %+v", part.Convoys, want.Convoys)
	}
}

// TestShardedStampede proves a burst of identical coordinator queries is
// deduplicated before the fan-out: N concurrent clients cost one shard RPC
// per shard, not N.
func TestShardedStampede(t *testing.T) {
	csv := fixtureCSV(t)
	coord, hits := newShardFleet(t, 2, Config{})

	const clients = 8
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
		resps []QueryResponse
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(coord+"/v1/query?m=2&k=5&e=1", "text/csv", bytes.NewReader(csv))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var out QueryResponse
			if err := unmarshalStrict(data, &out); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			resps = append(resps, out)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if n := hits.Load(); n != 2 {
		t.Fatalf("shard RPCs = %d, want 2 (one per shard: in-flight dedup + cache must absorb the stampede)", n)
	}
	if len(resps) != clients {
		t.Fatalf("completed = %d/%d", len(resps), clients)
	}
	for _, r := range resps {
		if !reflect.DeepEqual(r.Convoys, resps[0].Convoys) || r.Digest != resps[0].Digest {
			t.Fatalf("diverging answers: %+v vs %+v", r, resps[0])
		}
		if r.Cache != "miss" && r.Cache != "dedup" && r.Cache != "hit" {
			t.Fatalf("cache disposition %q", r.Cache)
		}
	}
}

func TestShardRPCGates(t *testing.T) {
	csv := fixtureCSV(t)

	// Not started with -shard: the route answers 403 in the envelope.
	_, plain := newTestServer(t, Config{})
	var ej ErrorJSON
	doJSON(t, "POST", plain.URL+"/v1/shard/query?v=1&m=2&k=5&e=1&from=0&to=9", nil, http.StatusForbidden, &ej)
	if ej.Error.Code != wire.CodeForbidden {
		t.Fatalf("disabled shard code = %q", ej.Error.Code)
	}

	_, shard := newTestServer(t, Config{ShardMode: true})
	for name, url := range map[string]string{
		"wrong version": "/v1/shard/query?v=9&m=2&k=5&e=1&from=0&to=9",
		"no version":    "/v1/shard/query?m=2&k=5&e=1&from=0&to=9",
		"no window":     "/v1/shard/query?v=1&m=2&k=5&e=1",
	} {
		resp, err := http.Post(shard.URL+url, "text/csv", bytes.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, data)
		}
		var ej ErrorJSON
		if err := unmarshalStrict(data, &ej); err != nil || ej.Error.Code != wire.CodeBadRequest {
			t.Fatalf("%s: envelope %s (err %v)", name, data, err)
		}
	}

	// Empty body on an otherwise valid shard RPC.
	doJSON(t, "POST", shard.URL+"/v1/shard/query?v=1&m=2&k=5&e=1&from=0&to=9", nil, http.StatusBadRequest, nil)

	// A well-formed shard RPC answers the window's partial.
	resp, err := http.Post(shard.URL+"/v1/shard/query?v=1&m=2&k=5&e=1&from=0&to=9", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard query: status %d: %s", resp.StatusCode, data)
	}
	var sr wire.ShardQueryResponse
	if err := unmarshalStrict(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.V != wire.ShardRPCVersion || sr.From != 0 || sr.To != 9 || len(sr.Convoys) != 2 {
		t.Fatalf("shard response = %+v", sr)
	}
}

func TestQueryWindowed(t *testing.T) {
	csv := fixtureCSV(t) // ticks 0..9, two convoys of lifetime 10
	_, ts := newTestServer(t, Config{})

	full := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1", csv, http.StatusOK)
	win := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&from=2&to=7", csv, http.StatusOK)
	if len(win.Convoys) != len(full.Convoys) {
		t.Fatalf("windowed convoys = %d, want %d", len(win.Convoys), len(full.Convoys))
	}
	for _, c := range win.Convoys {
		if c.Start != 2 || c.End != 7 || c.Lifetime != 6 {
			t.Fatalf("windowed convoy = %+v, want span [2,7]", c)
		}
	}
	if win.From == nil || win.To == nil || *win.From != 2 || *win.To != 7 {
		t.Fatalf("windowed response echoes From=%v To=%v", win.From, win.To)
	}

	// The window is part of the cache key: the full answer stays cached
	// beside the windowed one, and repeats of each are hits.
	if again := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1", csv, http.StatusOK); again.Cache != "hit" {
		t.Fatalf("full repeat cache = %q", again.Cache)
	}
	if again := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&from=2&to=7", csv, http.StatusOK); again.Cache != "hit" {
		t.Fatalf("windowed repeat cache = %q", again.Cache)
	}

	// An empty intersection with the data is an empty answer, not an error.
	empty := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&from=100&to=200", csv, http.StatusOK)
	if len(empty.Convoys) != 0 {
		t.Fatalf("out-of-range window convoys = %+v", empty.Convoys)
	}
}

// TestQueryLegacyDecodeCompat pins the legacy spellings every /v1 entry
// point must keep accepting now that decoding is centralised: flat m/k/e
// JSON bodies, nested params objects, and the "eps" URL alias.
func TestQueryLegacyDecodeCompat(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "two.csv"), fixtureCSV(t), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{DataDir: dir})

	var nested QueryResponse
	doJSON(t, "POST", ts.URL+"/v1/query",
		map[string]any{"path": "two.csv", "params": map[string]any{"m": 2, "k": 5, "e": 1}},
		http.StatusOK, &nested)
	if len(nested.Convoys) != 2 {
		t.Fatalf("nested params query = %+v", nested)
	}

	for name, body := range map[string]map[string]any{
		"flat e":            {"path": "two.csv", "m": 2, "k": 5, "e": 1},
		"flat eps":          {"path": "two.csv", "m": 2, "k": 5, "eps": 1},
		"flat e beats eps":  {"path": "two.csv", "m": 2, "k": 5, "e": 1, "eps": 99},
		"nested beats flat": {"path": "two.csv", "params": map[string]any{"m": 2, "k": 5, "e": 1}, "m": 99},
	} {
		var got QueryResponse
		doJSON(t, "POST", ts.URL+"/v1/query", body, http.StatusOK, &got)
		if !reflect.DeepEqual(got.Convoys, nested.Convoys) {
			t.Fatalf("%s: convoys = %+v, want %+v", name, got.Convoys, nested.Convoys)
		}
	}

	// URL spelling: eps= is an alias of e=.
	eps := postQuery(t, ts.URL+"/v1/query?m=2&k=5&eps=1", fixtureCSV(t), http.StatusOK)
	if !reflect.DeepEqual(eps.Convoys, nested.Convoys) {
		t.Fatalf("eps alias convoys = %+v", eps.Convoys)
	}
}

// TestErrorEnvelopeSweep drives one representative failure through every
// error class the API can answer and asserts the uniform envelope: the
// right status, {"error":{"code","message"}} with the code matching the
// status, and Retry-After on overload.
func TestErrorEnvelopeSweep(t *testing.T) {
	csv := fixtureCSV(t)
	_, ts := newTestServer(t, Config{MaxFeeds: 1, MaxBodyBytes: 256})
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})

	cases := []struct {
		name   string
		method string
		url    string
		body   any
		raw    []byte
		status int
	}{
		{name: "bad params", method: "POST", url: "/v1/query?m=0&k=5&e=1", raw: []byte("x"), status: http.StatusBadRequest},
		{name: "inverted window", method: "POST", url: "/v1/query?m=2&k=5&e=1&from=9&to=2", raw: []byte("x"), status: http.StatusBadRequest},
		{name: "empty upload", method: "POST", url: "/v1/query?m=2&k=5&e=1", status: http.StatusBadRequest},
		{name: "path refs disabled", method: "POST", url: "/v1/query",
			body: map[string]any{"path": "two.csv", "m": 2, "k": 5, "e": 1}, status: http.StatusForbidden},
		{name: "shard rpc disabled", method: "POST", url: "/v1/shard/query?v=1&m=2&k=5&e=1&from=0&to=9",
			raw: []byte("x"), status: http.StatusForbidden},
		{name: "unknown feed", method: "GET", url: "/v1/feeds/nope", status: http.StatusNotFound},
		{name: "unknown monitor", method: "GET", url: "/v1/feeds/fleet/monitors/999", status: http.StatusNotFound},
		{name: "duplicate feed", method: "POST", url: "/v1/feeds",
			body: FeedSpec{Name: "fleet", Params: ParamsJSON{M: 2, K: 5, Eps: 1}}, status: http.StatusConflict},
		{name: "feed limit", method: "POST", url: "/v1/feeds",
			body: FeedSpec{Name: "overflow", Params: ParamsJSON{M: 2, K: 5, Eps: 1}}, status: http.StatusTooManyRequests},
		{name: "history inverted window", method: "POST", url: "/v1/feeds/fleet/query",
			body: map[string]any{"m": 2, "k": 5, "e": 1, "from": 9, "to": 2}, status: http.StatusBadRequest},
		{name: "oversized upload", method: "POST", url: "/v1/query?m=2&k=5&e=1", raw: csv,
			status: http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			ct := "text/csv"
			if tc.body != nil {
				data, err := json.Marshal(tc.body)
				if err != nil {
					t.Fatal(err)
				}
				rd, ct = bytes.NewReader(data), "application/json"
			} else if tc.raw != nil {
				rd = bytes.NewReader(tc.raw)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.url, rd)
			if err != nil {
				t.Fatal(err)
			}
			if rd != nil {
				req.Header.Set("Content-Type", ct)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (want %d): %s", resp.StatusCode, tc.status, data)
			}
			var ej ErrorJSON
			if err := unmarshalStrict(data, &ej); err != nil {
				t.Fatalf("not the envelope: %s (%v)", data, err)
			}
			if want := wire.CodeForStatus(tc.status); ej.Error.Code != want {
				t.Fatalf("code = %q, want %q (%s)", ej.Error.Code, want, data)
			}
			if strings.TrimSpace(ej.Error.Message) == "" {
				t.Fatalf("empty message: %s", data)
			}
			if tc.status == http.StatusTooManyRequests && resp.Header.Get("Retry-After") != "1" {
				t.Fatalf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
			}
		})
	}
}

func unmarshalStrict(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decode %q: %w", data, err)
	}
	return nil
}
