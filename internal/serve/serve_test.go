package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/tsio"
	"repro/internal/wire"
)

// newTestServer starts the handler on an httptest server and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON runs one request with an optional JSON body and decodes the
// response into out (when non-nil), checking the status code.
func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
}

// createFeed registers a feed and asserts success.
func createFeed(t *testing.T, base, name string, p ParamsJSON) {
	t.Helper()
	var st FeedStatus
	doJSON(t, "POST", base+"/v1/feeds", FeedSpec{Name: name, Params: p}, http.StatusCreated, &st)
	if st.Name != name {
		t.Fatalf("created feed %q, want %q", st.Name, name)
	}
}

// pushTick ingests one tick batch and returns the closed convoys.
func pushTick(t *testing.T, base, name string, batch TickBatch) TicksResponse {
	t.Helper()
	var resp TicksResponse
	doJSON(t, "POST", base+"/v1/feeds/"+name+"/ticks",
		TicksRequest{Ticks: []TickBatch{batch}}, http.StatusOK, &resp)
	return resp
}

// vanBatch builds the livemonitor scenario's snapshot at tick t: vans a
// and b together throughout, c joining from tick 6 and everyone splitting
// at tick 14.
func vanBatch(t model.Tick) TickBatch {
	x := float64(t) * 2
	switch {
	case t < 6:
		return TickBatch{T: t, Positions: []Position{
			{ID: "a", X: x, Y: 0}, {ID: "b", X: x, Y: 0.8}, {ID: "c", X: x - 40, Y: 30}}}
	case t < 14:
		return TickBatch{T: t, Positions: []Position{
			{ID: "a", X: x, Y: 0}, {ID: "b", X: x, Y: 0.8}, {ID: "c", X: x, Y: 1.6}}}
	default:
		return TickBatch{T: t, Positions: []Position{
			{ID: "a", X: x, Y: 0}, {ID: "b", X: x, Y: 40}, {ID: "c", X: x, Y: 80}}}
	}
}

func TestFeedLifecycleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "fleet", ParamsJSON{M: 2, K: 5, Eps: 1})

	var closed []ConvoyJSON
	for tick := model.Tick(0); tick < 20; tick++ {
		resp := pushTick(t, ts.URL, "fleet", vanBatch(tick))
		if resp.Accepted != 1 {
			t.Fatalf("tick %d: accepted = %d", tick, resp.Accepted)
		}
		closed = append(closed, resp.Closed...)
	}
	// The three-van convoy [6,13] and the two-van convoy [0,13] close at
	// the split; exact grouping is the streamer's raw emission.
	if len(closed) == 0 {
		t.Fatal("no convoys closed during the split")
	}
	for _, c := range closed {
		if c.End != 13 {
			t.Errorf("closed convoy ends at %d, want 13: %+v", c.End, c)
		}
	}

	// The poll endpoint replays the same events, and since= pages them.
	var poll EventsResponse
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet/convoys", nil, http.StatusOK, &poll)
	if len(poll.Events) != len(closed) {
		t.Fatalf("poll = %d events, want %d", len(poll.Events), len(closed))
	}
	var page EventsResponse
	doJSON(t, "GET", fmt.Sprintf("%s/v1/feeds/fleet/convoys?since=%d", ts.URL, poll.NextSeq), nil, http.StatusOK, &page)
	if len(page.Events) != 0 {
		t.Fatalf("since=%d returned %d events", poll.NextSeq, len(page.Events))
	}

	// Status reflects the ingestion.
	var st FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet", nil, http.StatusOK, &st)
	if st.Ticks != 20 || st.Objects != 3 || st.LastTick == nil || *st.LastTick != 19 {
		t.Errorf("status = %+v", st)
	}

	// Deleting drains nothing here (the split already closed everything
	// long-lived; the post-split candidates lived < k).
	var del FeedCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/fleet", nil, http.StatusOK, &del)
	if len(del.Drained) != 0 {
		t.Errorf("drained = %+v", del.Drained)
	}
	doJSON(t, "GET", ts.URL+"/v1/feeds/fleet", nil, http.StatusNotFound, nil)
}

func TestDeleteDrainsOpenConvoys(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "open", ParamsJSON{M: 2, K: 3, Eps: 1})
	for tick := model.Tick(0); tick < 5; tick++ {
		pushTick(t, ts.URL, "open", TickBatch{T: tick, Positions: []Position{
			{ID: "x", X: float64(tick), Y: 0}, {ID: "y", X: float64(tick), Y: 0.5}}})
	}
	var del FeedCloseResponse
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/open", nil, http.StatusOK, &del)
	if len(del.Drained) != 1 || del.Drained[0].Lifetime != 5 {
		t.Fatalf("drained = %+v, want one convoy of lifetime 5", del.Drained)
	}
	if got := del.Drained[0].Objects; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("drained objects = %v", got)
	}
}

// randomDB builds a database with planted groups, wanderers, gaps and
// staggered lifespans — enough structure for CMC to find convoys and
// enough noise to stress the equivalence.
func randomDB(t *testing.T, seed int64) *model.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := model.NewDB()
	addTraj := func(samples []model.Sample) {
		tr, err := model.NewTrajectory("", samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	const T = 40
	// Two groups of three whose members drift near a shared center; the
	// groups cross halfway through.
	for g := 0; g < 2; g++ {
		for i := 0; i < 3; i++ {
			var samples []model.Sample
			for tick := model.Tick(0); tick < T; tick++ {
				if rng.Float64() < 0.1 {
					continue // sampling gap → interpolation
				}
				cx := float64(tick) * (1 + float64(g))
				cy := 10 * float64(g)
				samples = append(samples, model.Sample{T: tick, P: geom.Pt(
					cx+rng.Float64()*0.4, cy+float64(i)*0.3+rng.Float64()*0.2)})
			}
			if len(samples) == 0 {
				samples = []model.Sample{{T: 0, P: geom.Pt(0, 0)}}
			}
			addTraj(samples)
		}
	}
	// Four wanderers with staggered lifespans.
	for i := 0; i < 4; i++ {
		var samples []model.Sample
		start := model.Tick(rng.Intn(10))
		end := model.Tick(T - rng.Intn(10))
		for tick := start; tick < end; tick++ {
			samples = append(samples, model.Sample{T: tick, P: geom.Pt(
				rng.Float64()*60-10, rng.Float64()*60-10)})
		}
		addTraj(samples)
	}
	return db
}

// TestReplayEqualsCMC enforces the acceptance property: replaying any
// database tick-by-tick through a convoyd feed and canonicalizing the
// emitted convoys equals the batch CMC answer on the same database.
func TestReplayEqualsCMC(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		db := randomDB(t, seed)
		p := core.Params{M: 3, K: 4, Eps: 1.5}
		want, err := core.CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}

		_, ts := newTestServer(t, Config{})
		createFeed(t, ts.URL, "replay", ParamsToJSON(p))
		var emitted []core.Convoy
		collect := func(cs []ConvoyJSON) {
			for _, c := range cs {
				objs := make([]model.ObjectID, len(c.Objects))
				for i, label := range c.Objects {
					id, err := strconv.Atoi(label)
					if err != nil {
						t.Fatalf("label %q: %v", label, err)
					}
					objs[i] = id
				}
				// Wire order follows the feed's first-seen label order,
				// not the original IDs; restore the canonical order.
				sort.Ints(objs)
				emitted = append(emitted, core.Convoy{Objects: objs, Start: c.Start, End: c.End})
			}
		}
		err = core.ReplayTicks(db, func(tick model.Tick, ids []model.ObjectID, pts []geom.Point) error {
			batch := TickBatch{T: tick, Positions: make([]Position, len(ids))}
			for i, id := range ids {
				batch.Positions[i] = Position{ID: strconv.Itoa(id), X: pts[i].X, Y: pts[i].Y}
			}
			collect(pushTick(t, ts.URL, "replay", batch).Closed)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var del FeedCloseResponse
		doJSON(t, "DELETE", ts.URL+"/v1/feeds/replay", nil, http.StatusOK, &del)
		collect(del.Drained)

		got := core.Canonicalize(emitted)
		if !got.Equal(want) {
			t.Fatalf("seed %d: replayed answer differs from CMC\ngot:\n%v\nwant:\n%v", seed, got, want)
		}
	}
}

// TestConcurrentFeeds drives ≥ 8 feeds ingesting simultaneously (the
// acceptance criterion's -race workload) plus listing traffic.
func TestConcurrentFeeds(t *testing.T) {
	_, ts := newTestServer(t, Config{FeedBuffer: 4})
	const feeds = 10
	var wg sync.WaitGroup
	for i := 0; i < feeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("feed-%d", i)
			createFeed(t, ts.URL, name, ParamsJSON{M: 2, K: 3, Eps: 1})
			for tick := model.Tick(0); tick < 25; tick++ {
				pushTick(t, ts.URL, name, TickBatch{T: tick, Positions: []Position{
					{ID: "p", X: float64(tick), Y: 0},
					{ID: "q", X: float64(tick), Y: 0.5},
					{ID: "lone", X: float64(tick) * 3, Y: 40},
				}})
			}
			var del FeedCloseResponse
			doJSON(t, "DELETE", ts.URL+"/v1/feeds/"+name, nil, http.StatusOK, &del)
			if len(del.Drained) != 1 || del.Drained[0].Lifetime != 25 {
				t.Errorf("%s: drained = %+v", name, del.Drained)
			}
		}(i)
	}
	// Listing and health traffic interleaved with the ingestion.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var statuses []FeedStatus
			doJSON(t, "GET", ts.URL+"/v1/feeds", nil, http.StatusOK, &statuses)
			doJSON(t, "GET", ts.URL+"/v1/healthz", nil, http.StatusOK, nil)
		}
	}()
	wg.Wait()
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Unknown feed: every per-feed route 404s.
	doJSON(t, "GET", ts.URL+"/v1/feeds/nope", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/nope", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/v1/feeds/nope/convoys", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/v1/feeds/nope/events", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/nope/ticks", TickBatch{T: 0}, http.StatusNotFound, nil)

	// Bad creations: invalid params, bad names, duplicates.
	doJSON(t, "POST", ts.URL+"/v1/feeds", FeedSpec{Name: "bad", Params: ParamsJSON{M: 0, K: 0, Eps: -1}},
		http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds", FeedSpec{Name: "a/b", Params: ParamsJSON{M: 2, K: 2, Eps: 1}},
		http.StatusBadRequest, nil)
	createFeed(t, ts.URL, "dup", ParamsJSON{M: 2, K: 2, Eps: 1})
	doJSON(t, "POST", ts.URL+"/v1/feeds", FeedSpec{Name: "dup", Params: ParamsJSON{M: 2, K: 2, Eps: 1}},
		http.StatusConflict, nil)

	// Non-monotonic ticks are rejected, earlier ticks stick, and the
	// error body reports how much of the batch was applied.
	pushTick(t, ts.URL, "dup", TickBatch{T: 5, Positions: []Position{{ID: "a", X: 0, Y: 0}}})
	var te TicksError
	doJSON(t, "POST", ts.URL+"/v1/feeds/dup/ticks",
		TicksRequest{Ticks: []TickBatch{
			{T: 6, Positions: []Position{{ID: "a", X: 0, Y: 0}}},
			{T: 3, Positions: []Position{{ID: "a", X: 0, Y: 0}}},
		}},
		http.StatusBadRequest, &te)
	if te.Accepted != 1 || te.Error.Message == "" {
		t.Errorf("partial-batch error = %+v, want accepted=1", te)
	}
	var st FeedStatus
	doJSON(t, "GET", ts.URL+"/v1/feeds/dup", nil, http.StatusOK, &st)
	if st.Ticks != 2 || *st.LastTick != 6 {
		t.Errorf("after rejected tick: %+v", st)
	}

	// Positions must carry ids, and one object can't appear twice in a
	// tick (a repeated ID would fake a convoy out of one real object).
	doJSON(t, "POST", ts.URL+"/v1/feeds/dup/ticks",
		TicksRequest{Ticks: []TickBatch{{T: 9, Positions: []Position{{X: 1, Y: 1}}}}},
		http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds/dup/ticks",
		TicksRequest{Ticks: []TickBatch{{T: 9, Positions: []Position{
			{ID: "a", X: 1, Y: 1}, {ID: "a", X: 1, Y: 1}}}}},
		http.StatusBadRequest, nil)
	resp, err := http.Post(ts.URL+"/v1/feeds/dup/ticks", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	doJSON(t, "GET", ts.URL+"/v1/feeds/dup/convoys?since=x", nil, http.StatusBadRequest, nil)

	// Query errors: missing params, unknown algorithm, empty upload,
	// path references disabled.
	for _, url := range []string{
		"/v1/query",
		"/v1/query?m=2&k=2&e=1&algo=nope",
	} {
		resp, err := http.Post(ts.URL+url, "text/csv", strings.NewReader("obj,t,x,y\na,0,0,0\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", url, resp.StatusCode)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/query?m=2&k=2&e=1", "text/csv", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty upload: status %d", resp.StatusCode)
	}
	doJSON(t, "POST", ts.URL+"/v1/query",
		QueryRequest{Path: "x.csv", QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 2, Eps: 1}}},
		http.StatusForbidden, nil)
}

// fixtureCSV renders the convoyfind test fixture: two pairs traveling
// together for ticks 0..9.
func fixtureCSV(t *testing.T) []byte {
	t.Helper()
	db := model.NewDB()
	for i, y := range []float64{0, 0.5, 50, 50.5} {
		var samples []model.Sample
		for tick := model.Tick(0); tick < 10; tick++ {
			samples = append(samples, model.Sample{T: tick, P: geom.Pt(float64(tick), y)})
		}
		tr, err := model.NewTrajectory(string(rune('a'+i)), samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	var buf bytes.Buffer
	if err := tsio.WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postQuery(t *testing.T, url string, body []byte, wantStatus int) QueryResponse {
	t.Helper()
	resp, err := http.Post(url, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, data)
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return out
}

func TestQueryUploadCacheAndAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := fixtureCSV(t)
	url := ts.URL + "/v1/query?m=2&k=5&e=1"

	first := postQuery(t, url, csv, http.StatusOK)
	if len(first.Convoys) != 2 || first.Cache != "miss" || first.Algo != AlgoCuTSStar {
		t.Fatalf("first query = %+v", first)
	}
	if first.Stats == nil || first.Stats.Variant != "CuTS*" {
		t.Fatalf("stats = %+v", first.Stats)
	}
	for _, c := range first.Convoys {
		if c.Lifetime != 10 || len(c.Objects) != 2 {
			t.Errorf("convoy = %+v", c)
		}
	}

	second := postQuery(t, url, csv, http.StatusOK)
	if second.Cache != "hit" || len(second.Convoys) != 2 {
		t.Fatalf("second query = cache %q, %d convoys", second.Cache, len(second.Convoys))
	}
	if second.Digest != first.Digest {
		t.Errorf("digest changed: %s vs %s", second.Digest, first.Digest)
	}

	// A different algorithm is a different cache key but the same answer.
	cmc := postQuery(t, url+"&algo=cmc", csv, http.StatusOK)
	if cmc.Cache != "miss" || cmc.Stats != nil || len(cmc.Convoys) != 2 {
		t.Fatalf("cmc query = %+v", cmc)
	}
	for i := range cmc.Convoys {
		a, b := cmc.Convoys[i], first.Convoys[i]
		if a.Start != b.Start || a.End != b.End || strings.Join(a.Objects, ",") != strings.Join(b.Objects, ",") {
			t.Errorf("cmc convoy %d = %+v, cuts* = %+v", i, a, b)
		}
	}
}

func TestQueryPathReferenceAndCTB(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "two.csv"), fixtureCSV(t), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{DataDir: dir})

	var resp QueryResponse
	doJSON(t, "POST", ts.URL+"/v1/query",
		QueryRequest{Path: "two.csv", QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 5, Eps: 1}}},
		http.StatusOK, &resp)
	if len(resp.Convoys) != 2 {
		t.Fatalf("path query = %+v", resp)
	}

	// Path traversal stays confined to the data dir: the ".." collapses
	// inside it, the file isn't there, and the error echoes only the
	// client's own path (no server-side layout).
	var ej ErrorJSON
	doJSON(t, "POST", ts.URL+"/v1/query",
		QueryRequest{Path: "../../../etc/passwd", QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 5, Eps: 1}}},
		http.StatusNotFound, &ej)
	if strings.Contains(ej.Error.Message, dir) {
		t.Errorf("error leaks data dir: %q", ej.Error.Message)
	}

	// CTB uploads are sniffed by magic.
	db, err := tsio.ReadCSV(bytes.NewReader(fixtureCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	var ctb bytes.Buffer
	if err := tsio.WriteBinary(&ctb, db); err != nil {
		t.Fatal(err)
	}
	got := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1", ctb.Bytes(), http.StatusOK)
	if len(got.Convoys) != 2 {
		t.Fatalf("ctb upload = %d convoys", len(got.Convoys))
	}
}

func TestEventsStreamTailsLiveConvoys(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "tail", ParamsJSON{M: 2, K: 3, Eps: 1})

	// Close one convoy before subscribing (replay) and one after (live).
	for tick := model.Tick(0); tick < 4; tick++ {
		pushTick(t, ts.URL, "tail", TickBatch{T: tick, Positions: []Position{
			{ID: "r1", X: float64(tick), Y: 0}, {ID: "r2", X: float64(tick), Y: 0.5}}})
	}
	pushTick(t, ts.URL, "tail", TickBatch{T: 4, Positions: []Position{
		{ID: "r1", X: 0, Y: 0}, {ID: "r2", X: 50, Y: 50}}})

	resp, err := http.Get(ts.URL + "/v1/feeds/tail/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := make(chan Event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				lines <- ev
			}
		}
		close(lines)
	}()

	waitEvent := func(what string) Event {
		select {
		case ev, ok := <-lines:
			if !ok {
				t.Fatalf("%s: stream ended", what)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: timed out", what)
		}
		panic("unreachable")
	}
	replayed := waitEvent("replayed event")
	if replayed.Seq != 0 || replayed.Feed != "tail" || replayed.Convoy.Lifetime != 4 {
		t.Fatalf("replayed = %+v", replayed)
	}

	// A second convoy closes while the stream is attached.
	for tick := model.Tick(5); tick < 9; tick++ {
		pushTick(t, ts.URL, "tail", TickBatch{T: tick, Positions: []Position{
			{ID: "r1", X: float64(tick), Y: 0}, {ID: "r2", X: float64(tick), Y: 0.5}}})
	}
	pushTick(t, ts.URL, "tail", TickBatch{T: 9, Positions: []Position{
		{ID: "r1", X: 0, Y: 0}, {ID: "r2", X: 50, Y: 50}}})
	live := waitEvent("live event")
	if live.Seq != 1 || live.Convoy.Start != 5 || live.Convoy.End != 8 {
		t.Fatalf("live = %+v", live)
	}
}

// TestEventsStreamSubscribeFirst subscribes before any event exists: the
// response headers must arrive immediately (regression: an unflushed
// header deadlocks a client that subscribes first and pushes second).
func TestEventsStreamSubscribeFirst(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createFeed(t, ts.URL, "fresh", ParamsJSON{M: 2, K: 2, Eps: 1})

	type getResult struct {
		resp *http.Response
		err  error
	}
	got := make(chan getResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/feeds/fresh/events")
		got <- getResult{resp, err}
	}()
	var stream *http.Response
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		stream = r.resp
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe blocked with no events to replay")
	}
	defer stream.Body.Close()

	for tick := model.Tick(0); tick < 3; tick++ {
		pushTick(t, ts.URL, "fresh", TickBatch{T: tick, Positions: []Position{
			{ID: "a", X: 0, Y: 0}, {ID: "b", X: 0.5, Y: 0}}})
	}
	pushTick(t, ts.URL, "fresh", TickBatch{T: 3, Positions: []Position{
		{ID: "a", X: 0, Y: 0}, {ID: "b", X: 90, Y: 90}}})

	line := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		if sc.Scan() {
			line <- sc.Text()
		}
	}()
	select {
	case l := <-line:
		var ev Event
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", l, err)
		}
		if ev.Convoy.Lifetime != 3 {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event streamed")
	}
}

func TestIdleEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	createFeed(t, ts.URL, "sleepy", ParamsJSON{M: 2, K: 2, Eps: 1})
	deadline := time.Now().Add(5 * time.Second)
	for {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/feeds/sleepy", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("feed never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServerCloseDrainsFeeds(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	createFeed(t, ts.URL, "f", ParamsJSON{M: 2, K: 2, Eps: 1})
	for tick := model.Tick(0); tick < 3; tick++ {
		pushTick(t, ts.URL, "f", TickBatch{T: tick, Positions: []Position{
			{ID: "a", X: 0, Y: 0}, {ID: "b", X: 0.5, Y: 0}}})
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The feed is gone and creation is refused after shutdown.
	doJSON(t, "GET", ts.URL+"/v1/feeds/f", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/v1/feeds", FeedSpec{Name: "g", Params: ParamsJSON{M: 2, K: 2, Eps: 1}},
		http.StatusGone, nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	c.put("a", 10) // update moves to front, no growth
	if v, _ := c.get("a"); v != 10 {
		t.Errorf("a = %v", v)
	}
	if c.len() != 2 {
		t.Errorf("len after update = %d", c.len())
	}
}

func TestFeedLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxFeeds: 2})
	createFeed(t, ts.URL, "one", ParamsJSON{M: 2, K: 2, Eps: 1})
	createFeed(t, ts.URL, "two", ParamsJSON{M: 2, K: 2, Eps: 1})
	doJSON(t, "POST", ts.URL+"/v1/feeds", FeedSpec{Name: "three", Params: ParamsJSON{M: 2, K: 2, Eps: 1}},
		http.StatusTooManyRequests, nil)
	// Deleting frees a slot.
	doJSON(t, "DELETE", ts.URL+"/v1/feeds/one", nil, http.StatusOK, nil)
	createFeed(t, ts.URL, "three", ParamsJSON{M: 2, K: 2, Eps: 1})
}
