package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// explainStages returns the stage names of a query profile.
func explainStages(ex *ExplainJSON) []string {
	names := make([]string, len(ex.Stages))
	for i, s := range ex.Stages {
		names[i] = s.Name
	}
	return names
}

func wantStages(t *testing.T, ex *ExplainJSON, want ...string) {
	t.Helper()
	if ex == nil {
		t.Fatal("no explain profile in response")
	}
	got := explainStages(ex)
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
	var sum float64
	for _, s := range ex.Stages {
		sum += s.DurationMS
	}
	if sum > ex.TotalMS+0.5 {
		t.Fatalf("stage sum %.3fms exceeds total %.3fms", sum, ex.TotalMS)
	}
	if len(ex.TraceID) != 32 {
		t.Fatalf("explain trace_id = %q, want 32 hex digits", ex.TraceID)
	}
}

// TestQueryExplainStages pins the ?explain=true contract end to end: the
// stage set matches the algorithm, stage durations nest inside the total,
// and explain queries always run the discovery (cache bypassed on the way
// in, answer cached on the way out).
func TestQueryExplainStages(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := fixtureCSV(t)

	cmc := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&algo=cmc&explain=true", body, http.StatusOK)
	wantStages(t, cmc.Explain, "scan")
	if cmc.Cache != "miss" {
		t.Fatalf("explain query cache = %q, want miss", cmc.Cache)
	}

	star := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&explain=true", body, http.StatusOK)
	wantStages(t, star.Explain, "simplify", "filter", "refine")

	// A plain query has no profile and hits the cache the explain run fed.
	plain := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&algo=cmc", body, http.StatusOK)
	if plain.Explain != nil {
		t.Fatalf("plain query got a profile: %+v", plain.Explain)
	}
	if plain.Cache != "hit" {
		t.Fatalf("plain query after explain: cache = %q, want hit", plain.Cache)
	}

	// Explain bypasses that cache: the profile must describe this run.
	again := postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&algo=cmc&explain=true", body, http.StatusOK)
	if again.Cache != "miss" {
		t.Fatalf("repeat explain query cache = %q, want miss (recomputed)", again.Cache)
	}
	wantStages(t, again.Explain, "scan")

	// A malformed explain value is a 400, not a silent false.
	resp, err := http.Post(ts.URL+"/v1/query?m=2&k=5&e=1&explain=banana", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explain=banana: status %d, want 400", resp.StatusCode)
	}
}

// TestQueryExplainJSONBody covers the path-referencing JSON form: explain
// requested in the body, profile in the answer.
func TestQueryExplainJSONBody(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "db.csv"), fixtureCSV(t), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{DataDir: dir})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{
		Path: "db.csv", QuerySpec: wire.QuerySpec{Params: ParamsJSON{M: 2, K: 5, Eps: 1}, Algo: "cmc", Explain: true},
	})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	wantStages(t, qr.Explain, "scan")
}

// TestTraceparentThroughHTTP pins the W3C round trip: a sampled incoming
// traceparent is continued (same trace ID, the server's own span ID in
// the response header), recorded in the tracer's ring with the request's
// route and status, and stamped as an exemplar on the latency histogram.
func TestTraceparentThroughHTTP(t *testing.T) {
	tr := trace.NewTracer()
	s := New(Config{Tracer: tr})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("traceparent", "00-"+wantTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tid, sid, sampled, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || !sampled {
		t.Fatalf("bad response traceparent %q", resp.Header.Get("traceparent"))
	}
	if tid.String() != wantTrace {
		t.Fatalf("response continues trace %s, want %s", tid, wantTrace)
	}
	if sid.String() == "00f067aa0ba902b7" {
		t.Fatal("response span ID must be the server's own, not the caller's")
	}

	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.TraceID != wantTrace || got.Root == nil || got.Root.Name != "http" {
		t.Fatalf("recorded trace = %+v", got)
	}
	if got.Root.Attr("route") != "GET /v1/healthz" || got.Root.Attr("status") != "200" {
		t.Fatalf("root attrs = %v", got.Root.Attrs)
	}
	if got.Root.SpanID != sid.String() {
		t.Fatalf("response header span %s is not the recorded root %s", sid, got.Root.SpanID)
	}

	// The traced request's ID lands as an exemplar on the latency bucket.
	var om bytes.Buffer
	s.MetricsRegistry().WriteOpenMetrics(&om)
	if !strings.Contains(om.String(), `trace_id="`+wantTrace+`"`) {
		t.Fatal("OpenMetrics exposition missing the request's trace exemplar")
	}

	// An unsampled remote trace with sampling off stays unrecorded: no
	// response header, nothing in the ring.
	req2, _ := http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req2.Header.Set("traceparent", "00-aaaabbbbccccddddeeeeffff00001111-00f067aa0ba902b7-00")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if h := resp2.Header.Get("traceparent"); h != "" {
		t.Fatalf("unsampled request answered with traceparent %q", h)
	}
	if n := len(tr.Recent(0)); n != 1 {
		t.Fatalf("ring has %d traces after unsampled request, want still 1", n)
	}
}

// TestSlowRequestLog pins the slow-query log: with SlowQuery armed, every
// over-threshold request emits one structured record carrying the request
// and trace IDs and the full span tree.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowQuery: time.Nanosecond, // everything is slow
	})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	postQuery(t, ts.URL+"/v1/query?m=2&k=5&e=1&algo=cmc", fixtureCSV(t), http.StatusOK)

	var slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if rec["msg"] == "slow request" {
			slow = rec
			break
		}
	}
	if slow == nil {
		t.Fatalf("no slow-request record in log:\n%s", buf.String())
	}
	for _, key := range []string{"request_id", "trace_id", "duration_ms", "route", "status"} {
		if _, ok := slow[key]; !ok {
			t.Fatalf("slow record missing %q: %v", key, slow)
		}
	}
	tree, ok := slow["trace"].(map[string]any)
	if !ok {
		t.Fatalf("slow record has no span tree: %v", slow)
	}
	root, ok := tree["root"].(map[string]any)
	if !ok || root["name"] != "http" {
		t.Fatalf("span tree root = %v", tree)
	}
	if tree["trace_id"] != slow["trace_id"] {
		t.Fatalf("span tree trace %v does not match record trace %v", tree["trace_id"], slow["trace_id"])
	}
}

// TestRequestLoggerCarriesIDs pins that handler-emitted records (feed
// lifecycle) inherit the middleware's request ID.
func TestRequestLoggerCarriesIDs(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(FeedSpec{Name: "f1", Params: ParamsJSON{M: 2, K: 3, Eps: 1}})
	resp, err := http.Post(ts.URL+"/v1/feeds", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create feed: status %d", resp.StatusCode)
	}

	var created map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if rec["msg"] == "feed created" {
			created = rec
			break
		}
	}
	if created == nil {
		t.Fatalf("no feed-created record in log:\n%s", buf.String())
	}
	id, _ := created["request_id"].(string)
	if len(id) != 16 {
		t.Fatalf("feed-created record request_id = %q, want 16 hex digits", id)
	}
	if created["feed"] != "f1" {
		t.Fatalf("feed-created record = %v", created)
	}
}
