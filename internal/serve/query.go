package serve

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proxgraph"
	"repro/internal/trace"
	"repro/internal/tsio"
	"repro/internal/wire"
)

// queryEngine runs batch convoy queries on a bounded worker pool with an
// LRU result cache. The cache key is (database digest, params, algorithm,
// δ, λ): the digest covers the raw database bytes, so re-uploading the
// same file — or referencing it by path again — is a hit regardless of how
// it arrived.
//
// The engine is context-first end to end: the request context flows
// through queueing (acquire), deduplication (flights) and into the core
// discovery run itself, so a disconnected or timed-out client aborts its
// clustering pipeline and frees its worker slot instead of burning it
// until the algorithm finishes. A cancelled run never populates the
// cache. Identical concurrent queries (same cache key) collapse into one
// in-flight discovery run shared by every waiter.
type queryEngine struct {
	cfg Config
	sem chan struct{}
	lru *lruCache

	// digests memoizes full path → stat-keyed content digest. It is LRU
	// bounded at maxPathDigests: query load referencing ever-new paths
	// evicts the coldest entries instead of growing without limit.
	digests *lruCache

	// flights dedupes identical in-flight queries by cache key.
	fmu     sync.Mutex
	flights map[string]*flight

	// onComputeStart, when non-nil, is called as a compute begins (tests
	// use it to synchronize cancellation with a run in progress).
	onComputeStart func()
}

var (
	errPathRefDisabled = errors.New("serve: path-referencing queries disabled (no data dir configured)")
	errDBNotFound      = errors.New("serve: no such database")
)

func newQueryEngine(cfg Config) *queryEngine {
	e := &queryEngine{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.QueryWorkers),
		digests: newLRUCache(maxPathDigests),
		flights: make(map[string]*flight),
	}
	if cfg.CacheEntries > 0 {
		e.lru = newLRUCache(cfg.CacheEntries)
	}
	return e
}

// computes reports the discovery runs actually started (cache misses
// that reached the core) — the observable the dedup and
// queued-cancellation tests assert on, backed by the metrics counter.
func (e *queryEngine) computes() int64 { return int64(e.cfg.metrics.queryComputes.Value()) }

// resolve confines a client path to the data dir.
func (e *queryEngine) resolve(path string) (string, error) {
	if e.cfg.DataDir == "" {
		return "", errPathRefDisabled
	}
	if path == "" {
		return "", badRequest(errors.New("serve: query path is empty"))
	}
	clean := filepath.Clean("/" + path) // forces any ".." to resolve inside "/"
	return filepath.Join(e.cfg.DataDir, clean), nil
}

// readErr sanitizes a file error: not-found becomes the 404 sentinel and
// other failures report only their class — the server-side path layout
// must not reach clients.
func readErr(path string, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %q", errDBNotFound, path)
	}
	return fmt.Errorf("serve: read database %q: %v", path, errors.Unwrap(err))
}

// parseDB sniffs the format (CTB magic versus CSV) and parses the bytes.
func parseDB(data []byte) (*model.DB, error) {
	if bytes.HasPrefix(data, []byte("CTB1")) {
		return tsio.ReadBinary(bytes.NewReader(data))
	}
	return tsio.ReadCSV(bytes.NewReader(data))
}

// queryPlan is a validated query: the canonical spec resolved by the one
// shared validator (wire.QuerySpec.Normalize) plus the server-side worker
// clamp.
type queryPlan struct {
	req QueryRequest
	// res is the resolved spec: validated params, algorithm, normalized
	// clusterer name ("" for dbscan, so legacy cache keys are unchanged)
	// and window bounds. A non-default clusterer changes how the request
	// body is parsed: proxgraph queries upload an edge CSV (a,b,t,w
	// contact log), not a trajectory database.
	res wire.Resolved
	// workers is the effective per-stage worker count: the request's
	// workers field clamped to the server's MaxWorkersPerQuery (0 = 1 =
	// serial). It never enters the cache key — the answer is identical for
	// every worker count.
	workers int
}

// plan validates the request once, up front — through the schema's single
// validator — clamping the requested worker count to the server's cap.
func plan(req QueryRequest, maxWorkers int) (queryPlan, error) {
	res, err := req.QuerySpec.Normalize()
	if err != nil {
		return queryPlan{}, badRequest(err)
	}
	workers := res.Spec.Workers
	if workers > maxWorkers {
		workers = maxWorkers
	}
	return queryPlan{req: req, res: res, workers: workers}, nil
}

// key is the cache key for this plan over a database with the digest. The
// key holds only answer-determining inputs: δ/λ are already normalized out
// for algo=cmc by the validator (equivalent CMC queries with different δ/λ
// must share an entry), the worker and partition counts never participate
// (parallel and partitioned output equals serial output by construction),
// and a from/to window — which does change the answer — extends the key
// only when present, so unwindowed keys keep their legacy shape.
func (pl queryPlan) key(digest string) string {
	key := fmt.Sprintf("%s|%d|%d|%g|%s|%g|%d|%s",
		digest, pl.res.P.M, pl.res.P.K, pl.res.P.Eps, pl.res.Algo,
		pl.res.Spec.Delta, pl.res.Spec.Lambda, pl.res.Clusterer)
	if pl.res.Windowed {
		key += fmt.Sprintf("|w%d:%d", pl.res.From, pl.res.To)
	}
	return key
}

func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// cached returns the LRU answer for the key, marked as a hit.
func (e *queryEngine) cached(key string) (QueryResponse, bool) {
	if e.lru == nil {
		return QueryResponse{}, false
	}
	v, ok := e.lru.get(key)
	if !ok {
		return QueryResponse{}, false
	}
	resp := v.(QueryResponse)
	resp.Cache = "hit"
	resp.ElapsedMS = 0
	return resp, true
}

// acquire takes a worker-pool slot (or gives up with the context). Held
// slots show up on the convoyd_query_inflight occupancy gauge.
func (e *queryEngine) acquire(ctx context.Context) (release func(), err error) {
	select {
	case e.sem <- struct{}{}:
		e.cfg.metrics.queryInflight.Inc()
		return func() {
			e.cfg.metrics.queryInflight.Dec()
			<-e.sem
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// requestCtx applies the per-request deadline: the client's timeout_ms
// field and the server's QueryTimeout cap, whichever is tighter. The
// returned cancel must always be called.
func (e *queryEngine) requestCtx(ctx context.Context, req QueryRequest) (context.Context, context.CancelFunc) {
	var d time.Duration
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS * float64(time.Millisecond))
	}
	if e.cfg.QueryTimeout > 0 && (d == 0 || e.cfg.QueryTimeout < d) {
		d = e.cfg.QueryTimeout
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// run answers one batch query over uploaded database bytes, metering
// outcome, cache state and latency (with the request's trace ID as the
// latency bucket's exemplar when the request is traced).
func (e *queryEngine) run(ctx context.Context, data []byte, req QueryRequest) (QueryResponse, error) {
	t0 := time.Now()
	resp, err := e.runUpload(ctx, data, req)
	e.cfg.metrics.observeQuery(algoLabel(req.Algo), resp.Cache, err, time.Since(t0), trace.FromContext(ctx).TraceID())
	return resp, err
}

// runPath answers a path-referencing batch query, metering outcome, cache
// state and latency.
func (e *queryEngine) runPath(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	t0 := time.Now()
	resp, err := e.doRunPath(ctx, req)
	e.cfg.metrics.observeQuery(algoLabel(req.Algo), resp.Cache, err, time.Since(t0), trace.FromContext(ctx).TraceID())
	return resp, err
}

// runUpload: cache first, then parse+compute under a worker slot,
// deduplicating identical concurrent queries.
func (e *queryEngine) runUpload(ctx context.Context, data []byte, req QueryRequest) (QueryResponse, error) {
	pl, err := plan(req, e.cfg.MaxWorkersPerQuery)
	if err != nil {
		return QueryResponse{}, err
	}
	ctx, cancel := e.requestCtx(ctx, req)
	defer cancel()
	digest := hashBytes(data)
	key := flightKey(pl, digest)
	if !pl.req.Explain {
		// An explain query bypasses the cache read: the profile must
		// describe a run this request actually performed.
		if resp, ok := e.cached(key); ok {
			return resp, nil
		}
	}
	reqSpan := trace.FromContext(ctx)
	return e.shared(ctx, key, func(fctx context.Context) (QueryResponse, error) {
		release, err := e.acquire(fctx)
		if err != nil {
			return QueryResponse{}, err
		}
		defer release()
		return e.compute(fctx, digest, data, pl, reqSpan)
	})
}

// flightKey is the dedup key for in-flight runs: the cache key, plus an
// explain marker so explain queries (which must always compute) never
// join — and are never joined by — plain queries, whose answer they still
// share through the cache afterwards.
func flightKey(pl queryPlan, digest string) string {
	key := pl.key(digest)
	if pl.req.Explain {
		key += "|explain"
	}
	return key
}

// doRunPath answers a path-referencing query. A memo of path → (stat,
// digest) lets repeat queries against an unchanged file hit the cache
// without touching the disk at all; only a miss (or a changed file) pays
// the read+hash, and every disk read happens under a worker slot so a
// burst of cold-path queries cannot hold more than QueryWorkers database
// files in memory at once.
func (e *queryEngine) doRunPath(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	pl, err := plan(req, e.cfg.MaxWorkersPerQuery)
	if err != nil {
		return QueryResponse{}, err
	}
	ctx, cancel := e.requestCtx(ctx, req)
	defer cancel()
	full, err := e.resolve(req.Path)
	if err != nil {
		return QueryResponse{}, err
	}
	st, err := os.Stat(full)
	if err != nil {
		return QueryResponse{}, readErr(req.Path, err)
	}
	digest, ok := e.pathDigest(full, st)
	if !ok {
		// Cold memo: the digest (the cache and dedup key) requires reading
		// the file. Hash under a briefly-held worker slot and drop the
		// bytes — the flight re-reads below, so cold queries queued for a
		// compute slot never pin file contents in memory while they wait.
		release, aerr := e.acquire(ctx)
		if aerr != nil {
			return QueryResponse{}, aerr
		}
		data, rerr := os.ReadFile(full)
		release()
		if rerr != nil {
			return QueryResponse{}, readErr(req.Path, rerr)
		}
		digest = hashBytes(data)
		e.storePathDigest(full, st, digest)
	}
	if !pl.req.Explain {
		if resp, hit := e.cached(pl.key(digest)); hit {
			return resp, nil
		}
	}
	reqSpan := trace.FromContext(ctx)
	return e.shared(ctx, flightKey(pl, digest), func(fctx context.Context) (QueryResponse, error) {
		release, err := e.acquire(fctx)
		if err != nil {
			return QueryResponse{}, err
		}
		defer release()
		data, rerr := os.ReadFile(full) // under the compute slot
		if rerr != nil {
			return QueryResponse{}, readErr(req.Path, rerr)
		}
		// The file may have changed since the digest was memoized; hash
		// what was actually read, so the answer is always cached under its
		// true content digest and can never poison another content's key.
		return e.compute(fctx, hashBytes(data), data, pl, reqSpan)
	})
}

// flight is one in-flight discovery run shared by every concurrent query
// with the same cache key. The run is detached from any single request's
// context: it lives while at least one waiter is interested and is
// cancelled when the last waiter walks away, so one impatient client's
// disconnect never poisons the answer for the rest.
type flight struct {
	done   chan struct{}
	resp   QueryResponse
	err    error
	refs   int
	cancel context.CancelFunc
}

// shared collapses concurrent identical queries: the first caller starts
// fn on a detached context (capped by the server's QueryTimeout) and
// every caller with the same key joins the run, receiving the shared
// answer — marked Cache "dedup" for joiners — or the shared error. A
// caller whose own ctx expires leaves with its own ctx.Err(); when the
// last caller leaves, the run itself is cancelled, its worker slot freed
// and its (cancelled) result discarded.
func (e *queryEngine) shared(ctx context.Context, key string, fn func(context.Context) (QueryResponse, error)) (QueryResponse, error) {
	e.fmu.Lock()
	if f, ok := e.flights[key]; ok && f.refs > 0 {
		f.refs++
		e.fmu.Unlock()
		return e.await(ctx, f, true)
	}
	// No flight, or only a doomed one (every waiter already left, so its
	// cancellation is in progress): start a fresh run rather than inherit
	// a stranger's ctx error. The doomed flight's map entry is replaced
	// here and its goroutine's delete below is conditional, so the
	// replacement is never clobbered.
	base := context.Background()
	var fctx context.Context
	var cancel context.CancelFunc
	if e.cfg.QueryTimeout > 0 {
		fctx, cancel = context.WithTimeout(base, e.cfg.QueryTimeout)
	} else {
		fctx, cancel = context.WithCancel(base)
	}
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	e.flights[key] = f
	e.fmu.Unlock()
	go func() {
		defer cancel()
		resp, err := fn(fctx)
		e.fmu.Lock()
		if e.flights[key] == f {
			delete(e.flights, key)
		}
		f.resp, f.err = resp, err
		e.fmu.Unlock()
		close(f.done)
	}()
	return e.await(ctx, f, false)
}

// await blocks until the flight completes or the caller's context
// expires, whichever comes first.
func (e *queryEngine) await(ctx context.Context, f *flight, joined bool) (QueryResponse, error) {
	select {
	case <-f.done:
		if err := ctx.Err(); err != nil {
			// The flight finished, but this caller's own deadline had
			// already expired. On a busy box a CPU-bound run can delay
			// timer delivery until the flight's own completion, making
			// both select cases ready at once — and deadline enforcement
			// must not ride on that coin flip. The caller gets its
			// context error; a successful flight's answer is cached for
			// the next query regardless.
			return QueryResponse{}, err
		}
		resp, err := f.resp, f.err
		if err == nil && joined {
			resp.Cache = "dedup"
		}
		return resp, err
	case <-ctx.Done():
		e.fmu.Lock()
		f.refs--
		last := f.refs == 0
		e.fmu.Unlock()
		if last {
			f.cancel() // nobody is listening anymore: abort the run
		}
		return QueryResponse{}, ctx.Err()
	}
}

// pathDigestEntry memoizes a file's content digest keyed by its stat, so
// an unchanged file never needs re-reading for a cache lookup.
type pathDigestEntry struct {
	mtime  time.Time
	size   int64
	digest string
}

func (e *queryEngine) pathDigest(full string, st os.FileInfo) (string, bool) {
	v, ok := e.digests.get(full)
	if !ok {
		return "", false
	}
	d := v.(pathDigestEntry)
	if !d.mtime.Equal(st.ModTime()) || d.size != st.Size() {
		return "", false
	}
	return d.digest, true
}

func (e *queryEngine) storePathDigest(full string, st os.FileInfo, digest string) {
	e.digests.put(full, pathDigestEntry{mtime: st.ModTime(), size: st.Size(), digest: digest})
}

// maxPathDigests bounds the digest memo; the least recently used path is
// evicted when it fills. Small on purpose — a miss only costs one
// read+hash, so the memo needs to cover hot paths, not every path ever
// referenced.
const maxPathDigests = 256

// compute parses the database and runs the planned algorithm under the
// given context; the caller holds a worker slot. Cancelled computations
// return the context error and never touch the cache.
//
// The flight context is detached from any single request, so when the run
// is traced (the initiating request was sampled, or asked for explain) it
// roots its own "query" trace rather than parenting under a span that may
// end — or be shared with other waiters — while the run is still going.
// The http_trace_id attribute joins the two traces in /debug/traces.
func (e *queryEngine) compute(ctx context.Context, digest string, data []byte, pl queryPlan, reqSpan *trace.Span) (QueryResponse, error) {
	e.cfg.metrics.queryComputes.Inc()
	if e.onComputeStart != nil {
		e.onComputeStart()
	}
	var sopts []trace.StartOption
	if pl.req.Explain || reqSpan != nil {
		sopts = append(sopts, trace.Forced())
	}
	ctx, qsp := e.cfg.Tracer.Start(ctx, "query", sopts...)
	qsp.Str("algo", pl.res.Algo).Str("digest", digest)
	if reqSpan != nil {
		qsp.Str("http_trace_id", reqSpan.TraceID())
	}
	defer qsp.End() // idempotent; the success path ends it before Collect
	t0 := time.Now()
	if len(e.cfg.Shards) > 0 {
		// Coordinator mode: fan the query out over the shard fleet and merge
		// the partials. Placed here — under the flight — so sharded queries
		// inherit the cache, the dedup of identical concurrent queries and
		// the worker-slot bound exactly like local ones.
		return e.computeSharded(ctx, qsp, t0, digest, data, pl)
	}
	var db *model.DB
	var err error
	var sliceIDs []model.ObjectID // new dense ID → original, when windowed
	opts := []core.Option{core.WithParams(pl.res.P), core.WithWorkers(pl.workers)}
	// Like workers, the incremental knob cannot change the answer set — only
	// how much clustering work each tick costs — so it stays out of the cache
	// key and is applied here, after the key was computed.
	if e.cfg.DisableIncremental || (pl.req.Incremental != nil && !*pl.req.Incremental) {
		opts = append(opts, core.WithIncremental(-1))
	}
	if n := pl.res.Spec.Partitions; n > 1 {
		opts = append(opts, core.WithPartitions(n))
	}
	if pl.res.Clusterer == proxgraph.Backend {
		// A proxgraph query uploads an edge CSV (a,b,t,w contact log). The
		// log synthesizes a positionless stand-in database — one row per
		// object spanning its first to last contact — and the clusterer
		// reads the contact graph itself, tick by tick, from the log.
		log, lerr := proxgraph.ReadLog(bytes.NewReader(data))
		if lerr != nil {
			return QueryResponse{}, badRequest(lerr)
		}
		if pl.res.Windowed {
			// Window the contact log by keeping only the records inside
			// [from, to] — the per-tick clusters are a pure function of that
			// tick's edges, so the windowed log answers the windowed query.
			if log, lerr = windowLog(log, pl.res.From, pl.res.To); lerr != nil {
				return QueryResponse{}, badRequest(lerr)
			}
		}
		db, err = log.DB()
		if err != nil {
			return QueryResponse{}, badRequest(err)
		}
		qsp.Str("clusterer", pl.res.Clusterer)
		opts = append(opts, core.WithClusterer(log.Clusterer()))
	} else {
		db, err = parseDB(data)
		if err != nil {
			return QueryResponse{}, badRequest(err) // unparseable database
		}
		if pl.res.Windowed {
			// Interpolation-aware slice: real samples inside the window plus
			// virtual boundary samples, so the windowed answer equals the
			// full answer restricted to [from, to].
			db, sliceIDs = core.SliceTime(db, pl.res.From, pl.res.To)
		}
	}
	resp := QueryResponse{
		Params:    pl.res.Spec.Params,
		Algo:      pl.res.Algo,
		Clusterer: pl.res.Clusterer,
		From:      pl.req.From,
		To:        pl.req.To,
		Digest:    digest,
		Cache:     "miss",
	}
	if pl.res.IsCMC {
		opts = append(opts, core.WithCMC())
	} else {
		opts = append(opts,
			core.WithVariant(pl.res.Variant),
			core.WithDelta(pl.res.Spec.Delta),
			core.WithLambda(pl.res.Spec.Lambda))
	}
	var st core.Stats
	opts = append(opts, core.WithStats(&st))
	res, err := core.NewQuery(opts...).Run(ctx, db)
	qsp.End()
	if err != nil {
		return QueryResponse{}, err
	}
	e.cfg.metrics.observeRunStats(pl.res.Algo, st)
	if !pl.res.IsCMC {
		js := StatsToJSON(st)
		resp.Stats = &js
	}
	labels := DBLabels(db)
	if sliceIDs != nil {
		// Unlabeled objects fall back to "o<ID>"; keep that naming anchored
		// to the original database's IDs, not the sliced copy's dense ones.
		orig := labels
		labels = func(id model.ObjectID) string {
			if name := orig(id); name != "" {
				return name
			}
			return fmt.Sprintf("o%d", sliceIDs[id])
		}
	}
	resp.Convoys = make([]ConvoyJSON, len(res))
	for i, c := range res {
		resp.Convoys[i] = ConvoyToJSON(c, labels)
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	// The cache holds the profile-free answer: explain runs share their
	// result with future plain queries, but a profile always describes the
	// request that asked for it, never a stranger's cached run.
	if e.lru != nil {
		e.lru.put(pl.key(digest), resp)
	}
	if pl.req.Explain {
		if tj, ok := qsp.Collect(); ok {
			if ex, ok := ExplainFromTrace(tj); ok {
				resp.Explain = &ex
			}
		}
	}
	return resp, nil
}

// windowLog copies the records inside [lo, hi] into a fresh contact log —
// the proxgraph form of a time slice (per-tick clusters are a pure
// function of that tick's edges, so dropping out-of-window records is
// exact).
func windowLog(log *proxgraph.Log, lo, hi model.Tick) (*proxgraph.Log, error) {
	out := proxgraph.NewLog()
	for _, r := range log.Records() {
		if r.T < lo || r.T > hi {
			continue
		}
		if err := out.AddRecord(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// lruCache is a minimal mutex-guarded LRU over string keys.
type lruCache struct {
	cap   int
	mu    sync.Mutex
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries (for tests).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
