package serve

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tsio"
)

// queryEngine runs batch convoy queries on a bounded worker pool with an
// LRU result cache. The cache key is (database digest, params, algorithm,
// δ, λ): the digest covers the raw database bytes, so re-uploading the
// same file — or referencing it by path again — is a hit regardless of how
// it arrived.
type queryEngine struct {
	cfg Config
	sem chan struct{}
	lru *lruCache

	// digests memoizes full path → stat-keyed content digest. It is LRU
	// bounded at maxPathDigests: query load referencing ever-new paths
	// evicts the coldest entries instead of growing without limit.
	digests *lruCache
}

var (
	errPathRefDisabled = errors.New("serve: path-referencing queries disabled (no data dir configured)")
	errDBNotFound      = errors.New("serve: no such database")
)

func newQueryEngine(cfg Config) *queryEngine {
	e := &queryEngine{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.QueryWorkers),
		digests: newLRUCache(maxPathDigests),
	}
	if cfg.CacheEntries > 0 {
		e.lru = newLRUCache(cfg.CacheEntries)
	}
	return e
}

// resolve confines a client path to the data dir.
func (e *queryEngine) resolve(path string) (string, error) {
	if e.cfg.DataDir == "" {
		return "", errPathRefDisabled
	}
	if path == "" {
		return "", badRequest(errors.New("serve: query path is empty"))
	}
	clean := filepath.Clean("/" + path) // forces any ".." to resolve inside "/"
	return filepath.Join(e.cfg.DataDir, clean), nil
}

// readErr sanitizes a file error: not-found becomes the 404 sentinel and
// other failures report only their class — the server-side path layout
// must not reach clients.
func readErr(path string, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %q", errDBNotFound, path)
	}
	return fmt.Errorf("serve: read database %q: %v", path, errors.Unwrap(err))
}

// parseDB sniffs the format (CTB magic versus CSV) and parses the bytes.
func parseDB(data []byte) (*model.DB, error) {
	if bytes.HasPrefix(data, []byte("CTB1")) {
		return tsio.ReadBinary(bytes.NewReader(data))
	}
	return tsio.ReadCSV(bytes.NewReader(data))
}

// queryPlan is a validated query: resolved algorithm plus parameters.
type queryPlan struct {
	req     QueryRequest
	p       core.Params
	isCMC   bool
	variant core.Variant
	algo    string
	// workers is the effective per-stage worker count: the request's
	// workers field clamped to the server's MaxWorkersPerQuery (0 = 1 =
	// serial). It never enters the cache key — the answer is identical for
	// every worker count.
	workers int
}

// plan validates the request once, up front, clamping the requested worker
// count to the server's cap.
func plan(req QueryRequest, maxWorkers int) (queryPlan, error) {
	isCMC, variant, err := ParseAlgo(req.Algo)
	if err != nil {
		return queryPlan{}, badRequest(err)
	}
	p := req.Params.Params()
	if err := p.Validate(); err != nil {
		return queryPlan{}, badRequest(err)
	}
	if req.Workers < 0 {
		return queryPlan{}, badRequest(fmt.Errorf("serve: workers must be ≥ 0 (got %d)", req.Workers))
	}
	workers := req.Workers
	if workers > maxWorkers {
		workers = maxWorkers
	}
	algo := strings.ToLower(req.Algo)
	if algo == "" {
		algo = AlgoCuTSStar
	}
	return queryPlan{req: req, p: p, isCMC: isCMC, variant: variant, algo: algo, workers: workers}, nil
}

// key is the cache key for this plan over a database with the digest. The
// key holds only answer-determining inputs: CMC ignores δ/λ entirely, so
// they are normalized out for algo=cmc (equivalent CMC queries with
// different δ/λ must share an entry), and the worker count never
// participates (parallel output equals serial output by construction).
func (pl queryPlan) key(digest string) string {
	delta, lambda := pl.req.Delta, pl.req.Lambda
	if pl.isCMC {
		delta, lambda = 0, 0
	}
	return fmt.Sprintf("%s|%d|%d|%g|%s|%g|%d",
		digest, pl.p.M, pl.p.K, pl.p.Eps, pl.algo, delta, lambda)
}

func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// cached returns the LRU answer for the key, marked as a hit.
func (e *queryEngine) cached(key string) (QueryResponse, bool) {
	if e.lru == nil {
		return QueryResponse{}, false
	}
	v, ok := e.lru.get(key)
	if !ok {
		return QueryResponse{}, false
	}
	resp := v.(QueryResponse)
	resp.Cache = "hit"
	resp.ElapsedMS = 0
	return resp, true
}

// acquire takes a worker-pool slot (or gives up with the context).
func (e *queryEngine) acquire(ctx context.Context) (release func(), err error) {
	select {
	case e.sem <- struct{}{}:
		return func() { <-e.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run answers one batch query over uploaded database bytes: cache first,
// then parse+compute under a worker slot.
func (e *queryEngine) run(ctx context.Context, data []byte, req QueryRequest) (QueryResponse, error) {
	pl, err := plan(req, e.cfg.MaxWorkersPerQuery)
	if err != nil {
		return QueryResponse{}, err
	}
	digest := hashBytes(data)
	if resp, ok := e.cached(pl.key(digest)); ok {
		return resp, nil
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return QueryResponse{}, err
	}
	defer release()
	return e.compute(digest, data, pl)
}

// runPath answers a path-referencing query. A memo of path → (stat,
// digest) lets repeat queries against an unchanged file hit the cache
// without touching the disk at all; only a miss (or a changed file) pays
// the read+hash, and it does so holding a worker slot.
func (e *queryEngine) runPath(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	pl, err := plan(req, e.cfg.MaxWorkersPerQuery)
	if err != nil {
		return QueryResponse{}, err
	}
	full, err := e.resolve(req.Path)
	if err != nil {
		return QueryResponse{}, err
	}
	st, err := os.Stat(full)
	if err != nil {
		return QueryResponse{}, readErr(req.Path, err)
	}
	if digest, ok := e.pathDigest(full, st); ok {
		if resp, hit := e.cached(pl.key(digest)); hit {
			return resp, nil
		}
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return QueryResponse{}, err
	}
	defer release()
	data, err := os.ReadFile(full)
	if err != nil {
		return QueryResponse{}, readErr(req.Path, err)
	}
	digest := hashBytes(data)
	e.storePathDigest(full, st, digest)
	if resp, hit := e.cached(pl.key(digest)); hit {
		return resp, nil // raced another worker, or the memo was cold
	}
	return e.compute(digest, data, pl)
}

// pathDigestEntry memoizes a file's content digest keyed by its stat, so
// an unchanged file never needs re-reading for a cache lookup.
type pathDigestEntry struct {
	mtime  time.Time
	size   int64
	digest string
}

func (e *queryEngine) pathDigest(full string, st os.FileInfo) (string, bool) {
	v, ok := e.digests.get(full)
	if !ok {
		return "", false
	}
	d := v.(pathDigestEntry)
	if !d.mtime.Equal(st.ModTime()) || d.size != st.Size() {
		return "", false
	}
	return d.digest, true
}

func (e *queryEngine) storePathDigest(full string, st os.FileInfo, digest string) {
	e.digests.put(full, pathDigestEntry{mtime: st.ModTime(), size: st.Size(), digest: digest})
}

// maxPathDigests bounds the digest memo; the least recently used path is
// evicted when it fills. Small on purpose — a miss only costs one
// read+hash, so the memo needs to cover hot paths, not every path ever
// referenced.
const maxPathDigests = 256

// compute parses the database and runs the planned algorithm; the caller
// holds a worker slot.
func (e *queryEngine) compute(digest string, data []byte, pl queryPlan) (QueryResponse, error) {
	t0 := time.Now()
	db, err := parseDB(data)
	if err != nil {
		return QueryResponse{}, badRequest(err) // unparseable database
	}
	resp := QueryResponse{
		Params: pl.req.Params,
		Algo:   pl.algo,
		Digest: digest,
		Cache:  "miss",
	}
	var res core.Result
	if pl.isCMC {
		res, err = core.CMCParallel(db, pl.p, pl.workers)
	} else {
		var st core.Stats
		res, st, err = core.Run(db, pl.p, core.Config{
			Variant: pl.variant,
			Delta:   pl.req.Delta,
			Lambda:  pl.req.Lambda,
			Workers: pl.workers,
		})
		if err == nil {
			js := StatsToJSON(st)
			resp.Stats = &js
		}
	}
	if err != nil {
		return QueryResponse{}, err
	}
	labels := DBLabels(db)
	resp.Convoys = make([]ConvoyJSON, len(res))
	for i, c := range res {
		resp.Convoys[i] = ConvoyToJSON(c, labels)
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	if e.lru != nil {
		e.lru.put(pl.key(digest), resp)
	}
	return resp, nil
}

// lruCache is a minimal mutex-guarded LRU over string keys.
type lruCache struct {
	cap   int
	mu    sync.Mutex
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries (for tests).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
