// Package par provides the two bounded worker-pool shapes the discovery
// pipeline is built from. Every stage (simplification, per-tick CMC
// clustering, per-partition filter clustering, candidate refinement) is
// embarrassingly parallel in its expensive part while the cheap chaining
// fold is inherently sequential, so two primitives cover everything:
//
//   - For — independent jobs with no ordering requirement beyond writing
//     to distinct result slots (simplification, refinement);
//   - OrderedPipeline — jobs computed concurrently but *consumed strictly
//     in input order* by a single fold (the CMC tick scan and the filter's
//     partition scan, whose candidate chaining must walk time forward).
//
// Both degenerate to plain loops at workers ≤ 1, which is why serial and
// parallel runs of the pipeline are equal by construction: the same pure
// per-job results are folded by the same consumer in the same order.
//
// Both primitives are context-first: cancellation is observed between
// jobs (serial) or between job pickups (parallel), so an aborted run
// returns after at most one in-flight job per worker. OrderedPipeline
// additionally stops early when its consumer declines further results —
// the hook streaming consumers use to abandon a scan mid-way.
package par

import (
	"context"
	"sync"

	"repro/internal/trace"
)

// annotate stamps the context's active trace span (if any) with the
// pool's resolved fan-out, so a stage span shows how parallel its
// expensive part actually ran. A nil span makes this free, keeping the
// untraced pools allocation-clean.
func annotate(ctx context.Context, jobs, workers int) {
	if sp := trace.FromContext(ctx); sp != nil {
		sp.Int("par_workers", int64(workers)).Int("par_jobs", int64(jobs))
	}
}

// norm resolves a requested worker count against the job count: values
// ≤ 0 mean "serial" (1), and more workers than jobs are pointless.
func norm(workers, jobs int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) for i in [0, n) on the given number of worker goroutines.
// fn must only touch state owned by index i (e.g. a distinct result slot).
// With workers ≤ 1 it degenerates to a plain loop. Cancelling ctx stops
// the run between jobs; For then returns ctx.Err() after every in-flight
// job has finished (results for unstarted indices are simply absent).
func For(ctx context.Context, n, workers int, fn func(i int)) error {
	workers = norm(workers, n)
	annotate(ctx, n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without running; the feeder is stopping
				}
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// OrderedPipeline computes produce(i) for i in [0, n) on a bounded worker
// pool and calls consume(i, result) strictly in index order — a pipeline,
// not a barrier: consume(0) can run while produce(5) is still executing.
// produce must be pure with respect to shared state; consume runs on the
// calling goroutine only, so it may fold into unsynchronized state. The
// window of outstanding results is bounded (~2×workers), which bounds
// memory and applies backpressure to the producers when the fold is slow.
//
// consume returns whether the pipeline should continue; returning false
// abandons the remaining jobs (in-flight produce calls finish and their
// results are discarded) and OrderedPipeline returns nil. Cancelling ctx
// has the same draining behavior but returns ctx.Err(). Either way the
// call returns within roughly one produce per worker of the stop signal.
func OrderedPipeline[T any](ctx context.Context, n, workers int, produce func(i int) T, consume func(i int, v T) bool) error {
	workers = norm(workers, n)
	annotate(ctx, n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !consume(i, produce(i)) {
				return nil
			}
		}
		return nil
	}
	// pctx tears the pipeline down on external cancellation or when the
	// consumer declines further results.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type job struct {
		i   int
		out chan T
	}
	jobs := make(chan job)
	order := make(chan chan T, 2*workers) // in-order result slots; caps the window
	go func() {
		defer close(jobs)
		defer close(order)
		for i := 0; i < n; i++ {
			j := job{i: i, out: make(chan T, 1)}
			select {
			case order <- j.out: // blocks when the window is full (backpressure)
			case <-pctx.Done():
				return
			}
			select {
			case jobs <- j:
			case <-pctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if pctx.Err() != nil {
					j.out <- *new(T) // unblock a consumer that already chose this slot
					continue
				}
				j.out <- produce(j.i) // buffered: never blocks
			}
		}()
	}
	var ret error
	live := true
	i := 0
	for out := range order {
		if live {
			select {
			case v := <-out:
				if err := ctx.Err(); err != nil {
					ret, live = err, false
					cancel()
				} else if !consume(i, v) {
					live = false
					cancel()
				}
			case <-ctx.Done():
				ret, live = ctx.Err(), false
				cancel()
			}
			i++
			continue
		}
		select { // tearing down: discard without ever blocking
		case <-out:
		default:
		}
	}
	wg.Wait()
	if ret == nil && live && i < n {
		// The feeder tore down before every job was enqueued (e.g. a
		// pre-cancelled ctx): surface the cancellation. A run whose n
		// results were all consumed returns nil even if ctx expired at the
		// very end — exactly like the serial branch, so worker count never
		// decides whether a completed run counts as cancelled.
		ret = ctx.Err()
	}
	return ret
}

// OrderedChunks is OrderedPipeline for stateful producers: the index space
// [0, n) is cut into contiguous chunks of the given size, each chunk runs
// sequentially on one worker against a fresh state from newState, and the
// results are still consumed strictly in index order on the calling
// goroutine. It exists for producers that exploit coherence between
// consecutive indices (the incremental per-tick clustering engine reuses
// the previous tick's neighborhoods), where per-index scattering would
// destroy exactly the locality being exploited: parallelism degrades to
// per-worker runs of contiguous ranges, with one cold (from-scratch) index
// per chunk instead of per index.
//
// With workers ≤ 1 (or a single chunk) the whole span runs on one state —
// byte-identical to the serial loop. produce must be pure apart from its
// own state; chunk ≤ 0 selects one chunk per worker. The in-flight window
// is bounded (~workers+1 chunks) for backpressure, and teardown mirrors
// OrderedPipeline: consume returning false abandons the rest and returns
// nil, a cancelled ctx returns ctx.Err().
func OrderedChunks[S, T any](ctx context.Context, n, workers, chunk int, newState func() S, produce func(s S, i int) T, consume func(i int, v T) bool) error {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = (n + workers - 1) / workers
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	workers = norm(workers, nchunks)
	annotate(ctx, n, workers)
	if workers <= 1 {
		s := newState()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !consume(i, produce(s, i)) {
				return nil
			}
		}
		return nil
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type job struct {
		lo, hi int
		out    chan T
	}
	jobs := make(chan job)
	order := make(chan job, workers) // in-order chunk slots; caps the window
	go func() {
		defer close(jobs)
		defer close(order)
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			// The result channel buffers the whole chunk, so a producer
			// never blocks on a consumer that is tearing down.
			j := job{lo: lo, hi: hi, out: make(chan T, hi-lo)}
			select {
			case order <- j:
			case <-pctx.Done():
				return
			}
			select {
			case jobs <- j:
			case <-pctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				s := newState()
				for i := j.lo; i < j.hi; i++ {
					if pctx.Err() != nil {
						j.out <- *new(T) // buffered: never blocks
						continue
					}
					j.out <- produce(s, i)
				}
			}
		}()
	}
	var ret error
	live := true
	consumed := 0
	for j := range order {
		for i := j.lo; i < j.hi; i++ {
			if !live {
				select { // tearing down: discard without ever blocking
				case <-j.out:
				default:
				}
				continue
			}
			select {
			case v := <-j.out:
				if err := ctx.Err(); err != nil {
					ret, live = err, false
					cancel()
				} else if !consume(i, v) {
					live = false
					cancel()
				} else {
					consumed++
				}
			case <-ctx.Done():
				ret, live = ctx.Err(), false
				cancel()
			}
		}
	}
	wg.Wait()
	if ret == nil && live && consumed < n {
		// The feeder tore down before every chunk was enqueued (e.g. a
		// pre-cancelled ctx): surface the cancellation, exactly like
		// OrderedPipeline.
		ret = ctx.Err()
	}
	return ret
}
