// Package par provides the two bounded worker-pool shapes the discovery
// pipeline is built from. Every stage (simplification, per-tick CMC
// clustering, per-partition filter clustering, candidate refinement) is
// embarrassingly parallel in its expensive part while the cheap chaining
// fold is inherently sequential, so two primitives cover everything:
//
//   - For — independent jobs with no ordering requirement beyond writing
//     to distinct result slots (simplification, refinement);
//   - OrderedPipeline — jobs computed concurrently but *consumed strictly
//     in input order* by a single fold (the CMC tick scan and the filter's
//     partition scan, whose candidate chaining must walk time forward).
//
// Both degenerate to plain loops at workers ≤ 1, which is why serial and
// parallel runs of the pipeline are equal by construction: the same pure
// per-job results are folded by the same consumer in the same order.
package par

import "sync"

// norm resolves a requested worker count against the job count: values
// ≤ 0 mean "serial" (1), and more workers than jobs are pointless.
func norm(workers, jobs int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) for i in [0, n) on the given number of worker goroutines.
// fn must only touch state owned by index i (e.g. a distinct result slot).
// With workers ≤ 1 it degenerates to a plain loop.
func For(n, workers int, fn func(i int)) {
	workers = norm(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// OrderedPipeline computes produce(i) for i in [0, n) on a bounded worker
// pool and calls consume(i, result) strictly in index order — a pipeline,
// not a barrier: consume(0) can run while produce(5) is still executing.
// produce must be pure with respect to shared state; consume runs on the
// calling goroutine only, so it may fold into unsynchronized state. The
// window of outstanding results is bounded (~2×workers), which bounds
// memory and applies backpressure to the producers when the fold is slow.
func OrderedPipeline[T any](n, workers int, produce func(i int) T, consume func(i int, v T)) {
	workers = norm(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			consume(i, produce(i))
		}
		return
	}
	type job struct {
		i   int
		out chan T
	}
	jobs := make(chan job)
	order := make(chan chan T, 2*workers) // in-order result slots; caps the window
	go func() {
		for i := 0; i < n; i++ {
			j := job{i: i, out: make(chan T, 1)}
			order <- j.out // blocks when the window is full (backpressure)
			jobs <- j
		}
		close(jobs)
		close(order)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				j.out <- produce(j.i)
			}
		}()
	}
	i := 0
	for out := range order {
		consume(i, <-out)
		i++
	}
	wg.Wait()
}
