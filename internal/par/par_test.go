package par

import (
	"sync/atomic"
	"testing"
)

// OrderedPipeline must deliver results to the consumer strictly in index
// order no matter how the workers interleave.
func TestOrderedPipelineOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 500
		var produced atomic.Int64
		next := 0
		OrderedPipeline(n, workers,
			func(i int) int {
				produced.Add(1)
				return i * i
			},
			func(i int, v int) {
				if i != next {
					t.Fatalf("workers=%d: consumed index %d, want %d", workers, i, next)
				}
				if v != i*i {
					t.Fatalf("workers=%d: index %d carried %d", workers, i, v)
				}
				next++
			})
		if next != n || produced.Load() != n {
			t.Fatalf("workers=%d: consumed %d, produced %d (want %d)", workers, next, produced.Load(), n)
		}
	}
}

func TestOrderedPipelineEmpty(t *testing.T) {
	OrderedPipeline(0, 4,
		func(i int) int { t.Fatal("produce called"); return 0 },
		func(i int, v int) { t.Fatal("consume called") })
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 32} {
		const n = 300
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}
