package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// OrderedPipeline must deliver results to the consumer strictly in index
// order no matter how the workers interleave.
func TestOrderedPipelineOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 500
		var produced atomic.Int64
		next := 0
		err := OrderedPipeline(context.Background(), n, workers,
			func(i int) int {
				produced.Add(1)
				return i * i
			},
			func(i int, v int) bool {
				if i != next {
					t.Fatalf("workers=%d: consumed index %d, want %d", workers, i, next)
				}
				if v != i*i {
					t.Fatalf("workers=%d: index %d carried %d", workers, i, v)
				}
				next++
				return true
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if next != n || produced.Load() != n {
			t.Fatalf("workers=%d: consumed %d, produced %d (want %d)", workers, next, produced.Load(), n)
		}
	}
}

func TestOrderedPipelineEmpty(t *testing.T) {
	err := OrderedPipeline(context.Background(), 0, 4,
		func(i int) int { t.Fatal("produce called"); return 0 },
		func(i int, v int) bool { t.Fatal("consume called"); return true })
	if err != nil {
		t.Fatal(err)
	}
}

// A consumer that declines further results stops the pipeline early: no
// index past the stop point is consumed and only a bounded window of extra
// jobs is produced.
func TestOrderedPipelineEarlyStop(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		const n, stopAt = 1000, 10
		var produced atomic.Int64
		consumed := 0
		err := OrderedPipeline(context.Background(), n, workers,
			func(i int) int { produced.Add(1); return i },
			func(i int, v int) bool {
				consumed++
				return consumed < stopAt
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if consumed != stopAt {
			t.Fatalf("workers=%d: consumed %d, want %d", workers, consumed, stopAt)
		}
		// Serial produces exactly stopAt; parallel may overrun by the
		// outstanding window (~2×workers) plus one in-flight per worker.
		if max := int64(stopAt + 3*workers + 1); produced.Load() > max {
			t.Fatalf("workers=%d: produced %d jobs after stopping at %d (cap %d)",
				workers, produced.Load(), stopAt, max)
		}
	}
}

// Cancelling the context mid-scan aborts the pipeline with ctx.Err() and
// stops consuming at the cancellation point.
func TestOrderedPipelineCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n, cancelAt = 1000, 7
		ctx, cancel := context.WithCancel(context.Background())
		consumedAfter := 0
		err := OrderedPipeline(ctx, n, workers,
			func(i int) int { return i },
			func(i int, v int) bool {
				if i == cancelAt {
					cancel()
				}
				if i > cancelAt {
					consumedAfter++
				}
				return true
			})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if consumedAfter != 0 {
			t.Fatalf("workers=%d: consumed %d results after cancellation", workers, consumedAfter)
		}
	}
}

// A pre-cancelled context aborts before any job runs.
func TestOrderedPipelinePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := OrderedPipeline(ctx, 100, workers,
			func(i int) int { return i },
			func(i int, v int) bool { t.Fatal("consume called"); return true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 32} {
		const n = 300
		hits := make([]atomic.Int32, n)
		if err := For(context.Background(), n, workers, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

// Cancelling For stops scheduling new jobs; every job that did run ran to
// completion and the call reports ctx.Err().
func TestForCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 10000
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := For(ctx, n, workers, func(i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: all %d jobs ran despite cancellation", workers, got)
		}
	}
}

// The pipeline must not deadlock when cancellation races a slow producer:
// the consumer abandons the in-flight result instead of waiting for it.
func TestOrderedPipelineCancelWhileProducing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- OrderedPipeline(ctx, 50, 4,
			func(i int) int {
				if i > 0 {
					<-release // jobs past the first hang until released
				}
				return i
			},
			func(i int, v int) bool {
				cancel() // cancel while later produces are still blocked
				return true
			})
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline deadlocked after cancellation")
	}
}

// chunkTag records which state produced which index, for the contiguity
// assertions below.
type chunkTag struct {
	state int64
	index int
}

func TestOrderedChunksOrderingAndContiguity(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{100, 1, 0}, {100, 4, 7}, {100, 4, 0}, {5, 8, 2}, {1, 3, 10}, {64, 3, 64},
	} {
		var nextState int64
		newState := func() *int64 {
			id := atomic.AddInt64(&nextState, 1)
			return &id
		}
		var got []chunkTag
		err := OrderedChunks(context.Background(), tc.n, tc.workers, tc.chunk, newState,
			func(s *int64, i int) chunkTag { return chunkTag{state: *s, index: i} },
			func(i int, v chunkTag) bool {
				got = append(got, v)
				return true
			})
		if err != nil {
			t.Fatalf("%+v: err = %v", tc, err)
		}
		if len(got) != tc.n {
			t.Fatalf("%+v: consumed %d of %d", tc, len(got), tc.n)
		}
		for i, v := range got {
			if v.index != i {
				t.Fatalf("%+v: out-of-order consume: position %d got index %d", tc, i, v.index)
			}
		}
		// Every state must own exactly one contiguous index range: the
		// whole point of chunking is that a stateful producer sees
		// consecutive indices.
		ranges := map[int64][2]int{}
		for _, v := range got {
			r, ok := ranges[v.state]
			if !ok {
				ranges[v.state] = [2]int{v.index, v.index}
				continue
			}
			if v.index != r[1]+1 {
				t.Fatalf("%+v: state %d jumped from %d to %d", tc, v.state, r[1], v.index)
			}
			r[1] = v.index
			ranges[v.state] = r
		}
		if tc.workers <= 1 && len(ranges) != 1 {
			t.Fatalf("%+v: serial run used %d states, want 1", tc, len(ranges))
		}
	}
}

func TestOrderedChunksEarlyStop(t *testing.T) {
	var consumed int
	err := OrderedChunks(context.Background(), 1000, 4, 10,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) int { return i },
		func(i int, v int) bool {
			consumed++
			return i < 25
		})
	if err != nil {
		t.Fatalf("early stop must return nil, got %v", err)
	}
	if consumed != 26 {
		t.Fatalf("consumed %d results, want 26 (stop at index 25)", consumed)
	}
}

func TestOrderedChunksCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var consumed int
	err := OrderedChunks(ctx, 1000, 4, 10,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) int { return i },
		func(i int, v int) bool {
			consumed++
			if consumed == 20 {
				cancel()
			}
			return true
		})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if consumed >= 1000 {
		t.Fatalf("cancellation did not stop the scan (consumed %d)", consumed)
	}
}

func TestOrderedChunksPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := OrderedChunks(ctx, 100, 4, 10,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) int { return i },
		func(i int, v int) bool { return true })
	if err != context.Canceled {
		t.Fatalf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestOrderedChunksEmpty(t *testing.T) {
	called := false
	if err := OrderedChunks(context.Background(), 0, 4, 8,
		func() struct{} { called = true; return struct{}{} },
		func(_ struct{}, i int) int { return i },
		func(i int, v int) bool { return true }); err != nil {
		t.Fatalf("empty span: err = %v", err)
	}
	if called {
		t.Fatalf("empty span must not construct state")
	}
}
