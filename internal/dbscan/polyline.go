package dbscan

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/simplify"
)

// Polyline is one object's simplified sub-trajectory within a time
// partition: the time-ordered run of simplified segments whose intervals
// intersect the partition (the per-object entries of the data structure G in
// Algorithm 2).
type Polyline struct {
	// Object is the owning object's ID.
	Object model.ObjectID
	// Segs are the segments intersecting the partition, in time order.
	Segs []simplify.Segment
	// Bounds is the MBR of all segments (the B(S) of Lemma 2).
	Bounds geom.Rect
	// MaxTol is δmax(S): the maximum actual tolerance over the segments.
	MaxTol float64
	// T0, T1 is the union time span of the segments.
	T0, T1 model.Tick
}

// NewPolyline assembles a Polyline from time-ordered segments, computing its
// bounding box, maximum tolerance and time span. segs must be non-empty.
func NewPolyline(object model.ObjectID, segs []simplify.Segment) Polyline {
	p := Polyline{
		Object: object,
		Segs:   segs,
		Bounds: geom.EmptyRect(),
		T0:     segs[0].StartTick(),
		T1:     segs[len(segs)-1].EndTick(),
	}
	for _, sg := range segs {
		p.Bounds = p.Bounds.Union(sg.Segment.Bounds())
		if sg.Tolerance > p.MaxTol {
			p.MaxTol = sg.Tolerance
		}
	}
	return p
}

// BoundKind selects which segment-pair distance bound the filter step uses.
type BoundKind int

const (
	// BoundDLL is the Lemma 1 bound over the free-space segment distance:
	// prune unless DLL(l'q, l'i) ≤ e + δ(l'q) + δ(l'i). Used by CuTS/CuTS+.
	BoundDLL BoundKind = iota
	// BoundDStar is the Lemma 3 bound over the synchronous CPA distance:
	// prune unless D*(l'q, l'i) ≤ e + δ(l'q) + δ(l'i). Used by CuTS*.
	// It requires DP*-simplified trajectories (time-ratio tolerances).
	BoundDStar
)

// ToleranceMode selects which δ enters the distance bounds.
type ToleranceMode int

const (
	// ActualTolerance uses each segment's recorded actual tolerance
	// (Definition 4) — the tighter choice evaluated in Figure 14.
	ActualTolerance ToleranceMode = iota
	// GlobalTolerance uses the global simplification δ for every segment.
	GlobalTolerance
)

// PolylineDistanceParams configures the filter's neighborhood predicate.
type PolylineDistanceParams struct {
	Eps         float64       // the convoy distance threshold e
	Bound       BoundKind     // DLL (CuTS/CuTS+) or D* (CuTS*)
	Tolerance   ToleranceMode // actual (default) or global δ
	GlobalDelta float64       // δ used when Tolerance == GlobalTolerance
	// NoBoxPrune disables the Lemma 2 box-distance pruning (ablation
	// switch; results are unaffected, only speed).
	NoBoxPrune bool
}

func (p PolylineDistanceParams) tol(sg simplify.Segment) float64 {
	if p.Tolerance == GlobalTolerance {
		return p.GlobalDelta
	}
	return sg.Tolerance
}

// Omega computes ω(o'q, o'i) (Section 5.2): the minimum over time-overlapping
// segment pairs of dist(l'q, l'i) − δ(l'q) − δ(l'i), where dist is DLL or D*
// according to the bound kind. It returns +Inf when no segment pair shares a
// time interval. Two objects can be within e of each other at some shared
// tick only if ω ≤ e.
func Omega(a, b Polyline, p PolylineDistanceParams) float64 {
	best := mathInf
	i, j := 0, 0
	for i < len(a.Segs) && j < len(b.Segs) {
		sa, sb := &a.Segs[i], &b.Segs[j]
		switch {
		case sa.EndTick() < sb.StartTick():
			i++
		case sb.EndTick() < sa.StartTick():
			j++
		default:
			var dist float64
			if p.Bound == BoundDStar {
				dist = geom.DStar(sa.TimedSegment, sb.TimedSegment)
			} else {
				dist = geom.DLL(sa.Segment, sb.Segment)
			}
			if v := dist - p.tol(*sa) - p.tol(*sb); v < best {
				best = v
			}
			if sa.EndTick() <= sb.EndTick() {
				i++
			} else {
				j++
			}
		}
	}
	return best
}

// withinBound reports whether some time-overlapping segment pair of a and b
// passes the distance bound (i.e., ω(a,b) ≤ e), with early exit.
func withinBound(a, b Polyline, p PolylineDistanceParams) bool {
	i, j := 0, 0
	for i < len(a.Segs) && j < len(b.Segs) {
		sa, sb := &a.Segs[i], &b.Segs[j]
		switch {
		case sa.EndTick() < sb.StartTick():
			i++
		case sb.EndTick() < sa.StartTick():
			j++
		default:
			var dist float64
			if p.Bound == BoundDStar {
				dist = geom.DStar(sa.TimedSegment, sb.TimedSegment)
			} else {
				dist = geom.DLL(sa.Segment, sb.Segment)
			}
			if dist <= p.Eps+p.tol(*sa)+p.tol(*sb) {
				return true
			}
			if sa.EndTick() <= sb.EndTick() {
				i++
			} else {
				j++
			}
		}
	}
	return false
}

// maxTol returns δmax under the configured tolerance mode.
func (p PolylineDistanceParams) maxTol(pl Polyline) float64 {
	if p.Tolerance == GlobalTolerance {
		return p.GlobalDelta
	}
	return pl.MaxTol
}

// ClusterPolylines runs TRAJ-DBSCAN (the density clustering of Algorithm 2,
// line 11) over the partition's sub-polylines. Two polylines are neighbors
// when their time spans intersect and some time-overlapping segment pair
// passes the bound dist ≤ e + δ(l'q) + δ(l'i) (Lemma 1 for DLL, Lemma 3 for
// D*). Candidate enumeration goes through a rectangle grid, and Lemma 2
// (box-distance pruning with δmax) rejects far polylines before any segment
// pair is examined.
//
// The returned labels are parallel to polys; Noise marks unclustered
// polylines.
func ClusterPolylines(polys []Polyline, minPts int, p PolylineDistanceParams) []int {
	// Index polyline MBRs. Cell size: the search radius scale, kept ≥ a
	// small floor so degenerate inputs (e = 0, δ = 0) still index.
	maxTolAll := 0.0
	for i := range polys {
		if t := p.maxTol(polys[i]); t > maxTolAll {
			maxTolAll = t
		}
	}
	cell := p.Eps + 2*maxTolAll
	if cell <= 0 {
		cell = 1
	}
	rects := make([]geom.Rect, len(polys))
	for i := range polys {
		rects[i] = polys[i].Bounds
	}
	idx := grid.NewRectIndex(rects, cell)

	var cand []int
	neighbors := func(i int, buf []int) []int {
		q := &polys[i]
		qTol := p.maxTol(*q)
		query := q.Bounds.Inflate(p.Eps + qTol + maxTolAll)
		cand = idx.Intersecting(query, cand[:0])
		for _, j := range cand {
			o := &polys[j]
			if j == i {
				buf = append(buf, j)
				continue
			}
			// Time spans must intersect at all.
			if o.T1 < q.T0 || q.T1 < o.T0 {
				continue
			}
			// Lemma 2: prune by box distance before touching segments.
			if geom.Dmin(q.Bounds, o.Bounds) > p.Eps+qTol+p.maxTol(*o) {
				continue
			}
			if withinBound(*q, *o, p) {
				buf = append(buf, j)
			}
		}
		return buf
	}
	return Generic(len(polys), minPts, neighbors)
}
