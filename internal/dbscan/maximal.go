package dbscan

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
)

// This file provides the two clustering views the convoy pipeline needs on
// top of plain DBSCAN labels:
//
//   - ClusterMaximal: the paper's Definition 2/3 semantics. A cluster is a
//     maximal set of density-connected points: the reach set of one
//     *core component* (cores connected through core–core neighborhood
//     links) plus every border point adjacent to it. Border points adjacent
//     to several core components belong to SEVERAL clusters — maximal sets
//     may overlap on borders. CMC evaluates convoy co-clustering against
//     these maximal sets at every tick.
//
//   - ClusterComponents: the coarsened, disjoint view used by the CuTS
//     filter step. Overlapping maximal sets are merged (connected
//     components of the graph whose edges require at least one core
//     endpoint). Every maximal set lies inside exactly one component, so
//     filtering with components can never dismiss a true convoy, and the
//     disjointness keeps candidate chaining unambiguous.

// Adjacency holds the ε-neighborhood lists and core flags of a point set.
type Adjacency struct {
	// NH[i] lists the in-range items of item i, including i itself,
	// in ascending index order.
	NH [][]int
	// Core[i] reports |NH[i]| ≥ minPts.
	Core []bool
}

// BuildAdjacency materializes the neighborhood graph for n items using the
// neighbors callback (same contract as Generic: include self). Neighbor
// lists are sorted for deterministic downstream iteration.
func BuildAdjacency(n, minPts int, neighbors func(i int, buf []int) []int) Adjacency {
	adj := Adjacency{NH: make([][]int, n), Core: make([]bool, n)}
	for i := 0; i < n; i++ {
		nh := neighbors(i, nil)
		sort.Ints(nh)
		adj.NH[i] = nh
		adj.Core[i] = len(nh) >= minPts
	}
	return adj
}

// ClusterMaximal returns the maximal density-connected sets of the
// neighborhood graph: one cluster per core component, each containing its
// cores and all adjacent borders, members sorted ascending. Border points
// may appear in multiple clusters; pure noise appears in none. Clusters are
// ordered by their smallest core index.
func ClusterMaximal(adj Adjacency) [][]int {
	n := len(adj.NH)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var clusters [][]int
	var queue []int
	for i := 0; i < n; i++ {
		if !adj.Core[i] || comp[i] >= 0 {
			continue
		}
		cid := len(clusters)
		comp[i] = cid
		queue = append(queue[:0], i)
		members := map[int]struct{}{}
		for head := 0; head < len(queue); head++ {
			c := queue[head]
			members[c] = struct{}{}
			for _, q := range adj.NH[c] {
				if adj.Core[q] {
					if comp[q] < 0 {
						comp[q] = cid
						queue = append(queue, q)
					}
					continue
				}
				members[q] = struct{}{} // border: joins, never expands
			}
		}
		cluster := make([]int, 0, len(members))
		for m := range members {
			cluster = append(cluster, m)
		}
		sort.Ints(cluster)
		clusters = append(clusters, cluster)
	}
	return clusters
}

// ClusterComponents returns the merged disjoint components: connected
// components of the graph with an edge p–q whenever q ∈ NH(p) and at least
// one of p, q is core. Overlapping maximal sets (sharing borders) collapse
// into one component. Members sorted ascending; components ordered by their
// smallest core index; noise omitted.
func ClusterComponents(adj Adjacency) [][]int {
	n := len(adj.NH)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	var queue []int
	for i := 0; i < n; i++ {
		if !adj.Core[i] || comp[i] >= 0 {
			continue
		}
		cid := len(comps)
		comp[i] = cid
		queue = append(queue[:0], i)
		var members []int
		for head := 0; head < len(queue); head++ {
			c := queue[head]
			members = append(members, c)
			// c is in the component; expand through its neighborhood. A
			// border expands only toward cores (border–border pairs are not
			// edges), a core expands toward everyone.
			for _, q := range adj.NH[c] {
				if comp[q] >= 0 {
					continue
				}
				if adj.Core[c] || adj.Core[q] {
					comp[q] = cid
					queue = append(queue, q)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// SnapshotAdjacency builds the tick-level neighborhood graph of a point
// snapshot with radius eps (grid-accelerated).
func SnapshotAdjacency(pts []geom.Point, eps float64, minPts int) Adjacency {
	if len(pts) == 0 {
		return Adjacency{}
	}
	cell := eps
	if cell <= 0 {
		cell = 1
	}
	idx := grid.NewPointIndex(pts, cell)
	return BuildAdjacency(len(pts), minPts, func(i int, buf []int) []int {
		return idx.Within(pts[i], eps, buf)
	})
}

// SnapshotClustersMaximal returns the maximal density-connected sets of a
// point snapshot — the per-tick clusters CMC consumes.
func SnapshotClustersMaximal(pts []geom.Point, eps float64, minPts int) [][]int {
	return ClusterMaximal(SnapshotAdjacency(pts, eps, minPts))
}

// PolylineAdjacency builds the segment-level neighborhood graph over the
// partition's sub-polylines under the configured distance bound, with
// Lemma 2 box pruning and grid candidate enumeration.
func PolylineAdjacency(polys []Polyline, minPts int, p PolylineDistanceParams) Adjacency {
	if len(polys) == 0 {
		return Adjacency{}
	}
	maxTolAll := 0.0
	for i := range polys {
		if t := p.maxTol(polys[i]); t > maxTolAll {
			maxTolAll = t
		}
	}
	cell := p.Eps + 2*maxTolAll
	if cell <= 0 {
		cell = 1
	}
	rects := make([]geom.Rect, len(polys))
	for i := range polys {
		rects[i] = polys[i].Bounds
	}
	idx := grid.NewRectIndex(rects, cell)
	var cand []int
	return BuildAdjacency(len(polys), minPts, func(i int, buf []int) []int {
		q := &polys[i]
		qTol := p.maxTol(*q)
		cand = idx.Intersecting(q.Bounds.Inflate(p.Eps+qTol+maxTolAll), cand[:0])
		for _, j := range cand {
			if j == i {
				buf = append(buf, j)
				continue
			}
			o := &polys[j]
			if o.T1 < q.T0 || q.T1 < o.T0 {
				continue
			}
			if !p.NoBoxPrune && geom.Dmin(q.Bounds, o.Bounds) > p.Eps+qTol+p.maxTol(*o) {
				continue
			}
			if withinBound(*q, *o, p) {
				buf = append(buf, j)
			}
		}
		return buf
	})
}

// PolylineComponents returns the merged disjoint segment-level components
// used by the CuTS filter step (Algorithm 2, line 11).
func PolylineComponents(polys []Polyline, minPts int, p PolylineDistanceParams) [][]int {
	return ClusterComponents(PolylineAdjacency(polys, minPts, p))
}
