// Package dbscan implements the density-based clustering substrate of the
// convoy system: classic DBSCAN over point snapshots (Ester et al., used by
// CMC at every tick) and TRAJ-DBSCAN over simplified sub-polylines (used by
// the CuTS filter step, Section 5.2/5.3).
//
// Semantics follow the paper's Section 3 precisely: the ε-neighborhood of a
// point includes the point itself (NH_e(p) ∋ p), and a point is core when
// |NH_e(p)| ≥ minPts, so minPts equals the convoy parameter m and a pair of
// objects within e forms a valid cluster for m = 2.
//
// Labels: cluster ids are dense integers from 0; noise is labeled Noise
// (−1). Given the same neighborhood graph, the labeling is deterministic —
// clusters are numbered by their first member in index order, and a border
// point reachable from several clusters joins the lowest-numbered one.
package dbscan

import (
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

const unvisited = -2

// Generic runs DBSCAN over an abstract set of n items whose ε-neighborhoods
// are produced by the neighbors callback. The callback must append to buf
// the indices of every item within range of item i *including i itself* and
// return the extended slice. It may be called more than once per item.
func Generic(n, minPts int, neighbors func(i int, buf []int) []int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	var queue, buf []int
	cid := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		buf = neighbors(i, buf[:0])
		if len(buf) < minPts {
			labels[i] = Noise
			continue
		}
		labels[i] = cid
		queue = append(queue[:0], buf...)
		for head := 0; head < len(queue); head++ {
			q := queue[head]
			if labels[q] == Noise {
				labels[q] = cid // border point claimed by this cluster
				continue
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = cid
			buf = neighbors(q, buf[:0])
			if len(buf) >= minPts {
				queue = append(queue, buf...)
			}
		}
		cid++
	}
	return labels
}

// Cluster runs DBSCAN over a point snapshot with radius eps and density
// threshold minPts, using a uniform grid for neighbor search (O(N·k) for k
// points per neighborhood). eps must be > 0.
func Cluster(pts []geom.Point, eps float64, minPts int) []int {
	idx := grid.NewPointIndex(pts, eps)
	return Generic(len(pts), minPts, func(i int, buf []int) []int {
		return idx.Within(pts[i], eps, buf)
	})
}

// ClusterBrute is the O(N²) reference implementation of Cluster, used by
// tests and as the cost model behind the paper's refinement-unit metric.
func ClusterBrute(pts []geom.Point, eps float64, minPts int) []int {
	eps2 := eps * eps
	return Generic(len(pts), minPts, func(i int, buf []int) []int {
		for j := range pts {
			if geom.D2(pts[i], pts[j]) <= eps2 {
				buf = append(buf, j)
			}
		}
		return buf
	})
}

// NumClusters returns the number of distinct non-noise labels.
func NumClusters(labels []int) int {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// GroupsByLabel partitions item indices by cluster label, dropping noise.
// The outer slice is indexed by cluster id; inner slices preserve index
// order (ascending).
func GroupsByLabel(labels []int) [][]int {
	n := NumClusters(labels)
	groups := make([][]int, n)
	for i, l := range labels {
		if l == Noise {
			continue
		}
		groups[l] = append(groups[l], i)
	}
	return groups
}

// mathInf is a local shorthand for +Inf used by the polyline clustering.
var mathInf = math.Inf(1)
