package dbscan

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestClusterTwoBlobsAndNoise(t *testing.T) {
	pts := []geom.Point{
		// Blob A around (0,0).
		geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(0, 0.5), geom.Pt(0.4, 0.4),
		// Blob B around (10,10).
		geom.Pt(10, 10), geom.Pt(10.5, 10), geom.Pt(10, 10.5),
		// Lone noise point.
		geom.Pt(50, 50),
	}
	labels := Cluster(pts, 1.0, 3)
	if n := NumClusters(labels); n != 2 {
		t.Fatalf("NumClusters = %d, want 2 (labels %v)", n, labels)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[2] != labels[3] {
		t.Errorf("blob A split: %v", labels)
	}
	if labels[4] != labels[5] || labels[5] != labels[6] {
		t.Errorf("blob B split: %v", labels)
	}
	if labels[0] == labels[4] {
		t.Errorf("blobs merged: %v", labels)
	}
	if labels[7] != Noise {
		t.Errorf("lone point not noise: %v", labels)
	}
}

func TestClusterPairWithMinPtsTwo(t *testing.T) {
	// The paper's semantics: NH includes the point itself, so two objects
	// within e form a cluster at m=2.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	labels := Cluster(pts, 1.0, 2)
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("pair should cluster at minPts=2: %v", labels)
	}
	// And a single point at minPts=1 is its own cluster.
	labels = Cluster(pts[:1], 1.0, 1)
	if labels[0] != 0 {
		t.Errorf("singleton at minPts=1: %v", labels)
	}
	// But at minPts=3 the pair is noise.
	labels = Cluster(pts, 1.0, 3)
	if labels[0] != Noise || labels[1] != Noise {
		t.Errorf("pair at minPts=3 should be noise: %v", labels)
	}
}

func TestClusterChainIsDensityConnected(t *testing.T) {
	// A chain of points each within e of the next but the ends far apart:
	// density connection links them all (the anti-lossy-flock property).
	var pts []geom.Point
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Pt(float64(i)*0.9, 0))
	}
	labels := Cluster(pts, 1.0, 2)
	for i, l := range labels {
		if l != 0 {
			t.Fatalf("chain point %d has label %d; labels %v", i, l, labels)
		}
	}
}

func TestClusterBoundaryDistanceInclusive(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	labels := Cluster(pts, 1.0, 2) // distance exactly e
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("distance == e must count as neighbors: %v", labels)
	}
}

func TestClusterEmptyAndSingle(t *testing.T) {
	if labels := Cluster(nil, 1, 2); len(labels) != 0 {
		t.Errorf("empty input: %v", labels)
	}
	labels := Cluster([]geom.Point{geom.Pt(1, 1)}, 1, 2)
	if labels[0] != Noise {
		t.Errorf("single point below minPts should be noise: %v", labels)
	}
}

func TestClusterDuplicatePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)}
	labels := Cluster(pts, 0.5, 3)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Errorf("coincident points should form a cluster: %v", labels)
	}
}

func TestBorderPointJoinsLowestCluster(t *testing.T) {
	// Two dense cores with a border point reachable from both; it must join
	// the cluster discovered first (lowest id), deterministically.
	pts := []geom.Point{
		// Core A (indices 0-2) around x=0.
		geom.Pt(0, 0), geom.Pt(0.2, 0), geom.Pt(0.4, 0),
		// Core B (indices 3-5) around x=2.4.
		geom.Pt(2.4, 0), geom.Pt(2.6, 0), geom.Pt(2.8, 0),
		// Border point equidistant-ish from both cores (within 1.0 of 0.4
		// and of 2.4, but with fewer than 4 neighbors of its own).
		geom.Pt(1.4, 0),
	}
	labels := Cluster(pts, 1.0, 4)
	if labels[6] != labels[0] {
		t.Errorf("border point should join cluster of index 0: %v", labels)
	}
	if labels[3] == labels[0] {
		t.Errorf("cores merged unexpectedly: %v", labels)
	}
}

func TestGroupsByLabel(t *testing.T) {
	labels := []int{0, Noise, 1, 0, 1, Noise}
	groups := GroupsByLabel(labels)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 3 {
		t.Errorf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 2 || groups[1][1] != 4 {
		t.Errorf("group 1 = %v", groups[1])
	}
	if n := NumClusters([]int{Noise, Noise}); n != 0 {
		t.Errorf("NumClusters all-noise = %d", n)
	}
}

// The equivalence property: grid-accelerated DBSCAN produces exactly the
// same labeling as the brute-force reference on random inputs.
func TestPropGridEqualsBrute(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for iter := 0; iter < 120; iter++ {
		n := r.Intn(250)
		pts := make([]geom.Point, n)
		for i := range pts {
			// Mix of clustered and scattered points.
			if r.Intn(2) == 0 {
				cx, cy := float64(r.Intn(5))*8, float64(r.Intn(5))*8
				pts[i] = geom.Pt(cx+r.Float64()*2, cy+r.Float64()*2)
			} else {
				pts[i] = geom.Pt(r.Float64()*60, r.Float64()*60)
			}
		}
		eps := 0.3 + r.Float64()*3
		minPts := 1 + r.Intn(5)
		a := Cluster(pts, eps, minPts)
		b := ClusterBrute(pts, eps, minPts)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("label mismatch at %d: grid=%v brute=%v (eps=%g minPts=%d, n=%d)",
					i, a[i], b[i], eps, minPts, n)
			}
		}
	}
}
