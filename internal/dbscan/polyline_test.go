package dbscan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/simplify"
)

func lineTraj(t *testing.T, x0, y0, dx, dy float64, t0, n model.Tick, jitter func(i model.Tick) (float64, float64)) *model.Trajectory {
	t.Helper()
	samples := make([]model.Sample, 0, n)
	for i := model.Tick(0); i < n; i++ {
		jx, jy := 0.0, 0.0
		if jitter != nil {
			jx, jy = jitter(i)
		}
		samples = append(samples, model.Sample{
			T: t0 + i,
			P: geom.Pt(x0+dx*float64(i)+jx, y0+dy*float64(i)+jy),
		})
	}
	tr, err := model.NewTrajectory("", samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func polyOf(st *simplify.Trajectory) Polyline {
	return NewPolyline(st.Object, st.Segments)
}

func TestNewPolylineAggregates(t *testing.T) {
	tr := lineTraj(t, 0, 0, 1, 0, 5, 10, func(i model.Tick) (float64, float64) {
		if i == 4 {
			return 0, 3 // a bump that survives simplification bounds
		}
		return 0, 0
	})
	st := simplify.Simplify(tr, 1.0, simplify.DP)
	p := polyOf(st)
	if p.T0 != 5 || p.T1 != 14 {
		t.Errorf("time span = [%d,%d]", p.T0, p.T1)
	}
	if p.MaxTol > 1.0+1e-9 {
		t.Errorf("MaxTol = %g exceeds δ", p.MaxTol)
	}
	if !p.Bounds.Contains(geom.Pt(0, 0)) || !p.Bounds.Contains(geom.Pt(9, 0)) {
		t.Errorf("Bounds = %v", p.Bounds)
	}
}

func TestOmegaDisjointTimeIsInf(t *testing.T) {
	a := polyOf(simplify.Simplify(lineTraj(t, 0, 0, 1, 0, 0, 5, nil), 0.5, simplify.DP))
	b := polyOf(simplify.Simplify(lineTraj(t, 0, 0, 1, 0, 100, 5, nil), 0.5, simplify.DP))
	p := PolylineDistanceParams{Eps: 10, Bound: BoundDLL}
	if w := Omega(a, b, p); !math.IsInf(w, 1) {
		t.Errorf("Omega with disjoint times = %g, want +Inf", w)
	}
	if withinBound(a, b, p) {
		t.Error("withinBound with disjoint times must be false")
	}
}

func TestOmegaParallelTracks(t *testing.T) {
	// Two straight parallel tracks 3 apart, same time span, δ small.
	a := polyOf(simplify.Simplify(lineTraj(t, 0, 0, 1, 0, 0, 10, nil), 0.1, simplify.DP))
	b := polyOf(simplify.Simplify(lineTraj(t, 0, 3, 1, 0, 0, 10, nil), 0.1, simplify.DP))
	p := PolylineDistanceParams{Eps: 1, Bound: BoundDLL}
	w := Omega(a, b, p)
	// Straight lines simplify to single segments with zero tolerance, so
	// ω = DLL = 3 exactly.
	if math.Abs(w-3) > 1e-9 {
		t.Errorf("Omega = %g, want 3", w)
	}
	if withinBound(a, b, p) {
		t.Error("withinBound at gap 3 with e=1 must be false")
	}
	p.Eps = 3
	if !withinBound(a, b, p) {
		t.Error("withinBound at gap 3 with e=3 must be true")
	}
}

func TestDStarBoundTighterThanDLL(t *testing.T) {
	// A follower on the same path two ticks behind: spatial segments overlap
	// (DLL = 0) but the synchronous distance is 2 throughout.
	a := polyOf(simplify.Simplify(lineTraj(t, 0, 0, 1, 0, 0, 20, nil), 0.1, simplify.DPStar))
	b := polyOf(simplify.Simplify(lineTraj(t, -2, 0, 1, 0, 0, 20, nil), 0.1, simplify.DPStar))
	dll := PolylineDistanceParams{Eps: 1, Bound: BoundDLL}
	dstar := PolylineDistanceParams{Eps: 1, Bound: BoundDStar}
	if !withinBound(a, b, dll) {
		t.Error("DLL bound should (loosely) accept the follower pair")
	}
	if withinBound(a, b, dstar) {
		t.Error("D* bound should reject the follower pair at e=1")
	}
	wd := Omega(a, b, dstar)
	if math.Abs(wd-2) > 1e-9 {
		t.Errorf("D* omega = %g, want 2", wd)
	}
}

func TestGlobalToleranceLooserThanActual(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	jitter := func(model.Tick) (float64, float64) { return r.Float64() - 0.5, r.Float64() - 0.5 }
	a := polyOf(simplify.Simplify(lineTraj(t, 0, 0, 1, 0, 0, 30, jitter), 2, simplify.DP))
	b := polyOf(simplify.Simplify(lineTraj(t, 0, 6, 1, 0, 0, 30, jitter), 2, simplify.DP))
	actual := PolylineDistanceParams{Eps: 1, Bound: BoundDLL, Tolerance: ActualTolerance}
	global := PolylineDistanceParams{Eps: 1, Bound: BoundDLL, Tolerance: GlobalTolerance, GlobalDelta: 2}
	// ω under the global δ is smaller by construction (bigger slack).
	if Omega(a, b, global) > Omega(a, b, actual)+1e-12 {
		t.Error("global-tolerance omega should be ≤ actual-tolerance omega")
	}
	if withinBound(a, b, actual) && !withinBound(a, b, global) {
		t.Error("anything accepted under actual tolerance must be accepted under global")
	}
}

func TestClusterPolylinesTwoGroups(t *testing.T) {
	// Objects 0,1 travel together near y=0; objects 2,3 near y=100.
	var polys []Polyline
	for i, y := range []float64{0, 1, 100, 101} {
		tr := lineTraj(t, 0, y, 1, 0, 0, 20, nil)
		tr.ID = i
		st := simplify.Simplify(tr, 0.5, simplify.DP)
		polys = append(polys, polyOf(st))
	}
	labels := ClusterPolylines(polys, 2, PolylineDistanceParams{Eps: 2, Bound: BoundDLL})
	if NumClusters(labels) != 2 {
		t.Fatalf("want 2 clusters, labels = %v", labels)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Errorf("grouping wrong: %v", labels)
	}
}

func TestClusterPolylinesNoise(t *testing.T) {
	var polys []Polyline
	for i, y := range []float64{0, 1, 500} {
		tr := lineTraj(t, 0, y, 1, 0, 0, 10, nil)
		tr.ID = i
		polys = append(polys, polyOf(simplify.Simplify(tr, 0.5, simplify.DP)))
	}
	labels := ClusterPolylines(polys, 2, PolylineDistanceParams{Eps: 2, Bound: BoundDLL})
	if labels[2] != Noise {
		t.Errorf("far polyline should be noise: %v", labels)
	}
}

func TestClusterPolylinesZeroEps(t *testing.T) {
	// e = 0 with δ = 0 must not panic (cell-size floor) and only coincident
	// tracks cluster.
	var polys []Polyline
	for i, y := range []float64{0, 0, 5} {
		tr := lineTraj(t, 0, y, 1, 0, 0, 5, nil)
		tr.ID = i
		polys = append(polys, polyOf(simplify.Simplify(tr, 0, simplify.DP)))
	}
	labels := ClusterPolylines(polys, 2, PolylineDistanceParams{Eps: 0, Bound: BoundDLL})
	if labels[0] != labels[1] || labels[0] == Noise {
		t.Errorf("coincident tracks should cluster at e=0: %v", labels)
	}
	if labels[2] != Noise {
		t.Errorf("separate track should be noise: %v", labels)
	}
}

// randomWalkTraj builds a bounded random walk with occasional sampling gaps.
func randomWalkTraj(r *rand.Rand, id int, n int) *model.Trajectory {
	samples := make([]model.Sample, 0, n)
	x, y := r.Float64()*30, r.Float64()*30
	tick := model.Tick(r.Intn(3))
	for i := 0; i < n; i++ {
		x += r.Float64()*4 - 2
		y += r.Float64()*4 - 2
		samples = append(samples, model.Sample{T: tick, P: geom.Pt(x, y)})
		tick += model.Tick(1 + r.Intn(2))
	}
	tr, _ := model.NewTrajectory("", samples)
	tr.ID = id
	return tr
}

// The no-false-dismissal property behind Lemmas 1 and 3: whenever two
// objects' (interpolated) positions are within e at some shared tick, their
// simplified polylines must pass the filter's neighborhood bound.
func TestPropLemmaBoundsNeverDismiss(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for iter := 0; iter < 80; iter++ {
		a := randomWalkTraj(r, 0, 4+r.Intn(30))
		b := randomWalkTraj(r, 1, 4+r.Intn(30))
		delta := r.Float64() * 3
		e := 0.5 + r.Float64()*4
		configs := []struct {
			method simplify.Method
			bound  BoundKind
		}{
			{simplify.DP, BoundDLL},
			{simplify.DPPlus, BoundDLL},
			{simplify.DPStar, BoundDStar},
		}
		for _, cfg := range configs {
			pa := polyOf(simplify.Simplify(a, delta, cfg.method))
			pb := polyOf(simplify.Simplify(b, delta, cfg.method))
			params := PolylineDistanceParams{Eps: e, Bound: cfg.bound}
			accepted := withinBound(pa, pb, params)
			// Scan every shared tick for a true close encounter.
			lo := a.Start()
			if b.Start() > lo {
				lo = b.Start()
			}
			hi := a.End()
			if b.End() < hi {
				hi = b.End()
			}
			for tick := lo; tick <= hi; tick++ {
				qa, ok1 := a.LocationAt(tick)
				qb, ok2 := b.LocationAt(tick)
				if !ok1 || !ok2 {
					continue
				}
				if geom.D(qa, qb) <= e && !accepted {
					t.Fatalf("%v/%v: objects within e=%g at tick %d but filter bound dismissed the pair (δ=%g)",
						cfg.method, cfg.bound, e, tick, delta)
				}
			}
			// And the global-tolerance variant must accept at least as much.
			if accepted {
				gparams := params
				gparams.Tolerance = GlobalTolerance
				gparams.GlobalDelta = delta
				if !withinBound(pa, pb, gparams) {
					t.Fatalf("%v: global tolerance rejected a pair accepted under actual tolerance", cfg.method)
				}
			}
		}
	}
}

// Property: ClusterPolylines with the Lemma-2 pruning and grid index agrees
// with a brute-force Generic clustering over the same withinBound predicate.
func TestPropClusterPolylinesMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 40; iter++ {
		n := 2 + r.Intn(25)
		polys := make([]Polyline, n)
		for i := 0; i < n; i++ {
			tr := randomWalkTraj(r, i, 3+r.Intn(20))
			polys[i] = polyOf(simplify.Simplify(tr, r.Float64()*2, simplify.DP))
		}
		params := PolylineDistanceParams{Eps: 0.5 + r.Float64()*4, Bound: BoundDLL}
		minPts := 1 + r.Intn(4)
		got := ClusterPolylines(polys, minPts, params)
		want := Generic(n, minPts, func(i int, buf []int) []int {
			for j := 0; j < n; j++ {
				if i == j || withinBound(polys[i], polys[j], params) {
					buf = append(buf, j)
				}
			}
			return buf
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("label mismatch at %d: grid=%v brute=%v", i, got, want)
			}
		}
	}
}
