package dbscan

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func adjOf(pts []geom.Point, eps float64, minPts int) Adjacency {
	return SnapshotAdjacency(pts, eps, minPts)
}

func TestClusterMaximalSharedBorder(t *testing.T) {
	// Two 3-core groups with one border point reachable from both. With
	// minPts=4 the border belongs to BOTH maximal sets, while
	// ClusterComponents merges everything into one component.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0.2, 0), geom.Pt(0.4, 0), // cores of A
		geom.Pt(2.4, 0), geom.Pt(2.6, 0), geom.Pt(2.8, 0), // cores of B
		geom.Pt(1.4, 0), // border of both (within 1.0 of 0.4 and 2.4)
	}
	adj := adjOf(pts, 1.0, 4)
	// Sanity: 6 is not core (neighbors {2,3,6} only).
	if adj.Core[6] {
		t.Fatalf("point 6 should be border, NH=%v", adj.NH[6])
	}
	clusters := ClusterMaximal(adj)
	if len(clusters) != 2 {
		t.Fatalf("maximal clusters = %v, want 2", clusters)
	}
	for i, c := range clusters {
		found := false
		for _, m := range c {
			if m == 6 {
				found = true
			}
		}
		if !found {
			t.Errorf("cluster %d misses the shared border: %v", i, c)
		}
	}
	comps := ClusterComponents(adj)
	if len(comps) != 1 {
		t.Fatalf("components = %v, want single merged component", comps)
	}
	if len(comps[0]) != 7 {
		t.Errorf("merged component = %v, want all 7 points", comps[0])
	}
}

func TestClusterMaximalDisjointGroupsMatchExclusive(t *testing.T) {
	// Without shared borders, maximal sets, components and exclusive DBSCAN
	// all agree.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1, 0),
		geom.Pt(10, 0), geom.Pt(10.5, 0),
		geom.Pt(50, 50), // noise
	}
	adj := adjOf(pts, 1.0, 2)
	maximal := ClusterMaximal(adj)
	comps := ClusterComponents(adj)
	labels := Cluster(pts, 1.0, 2)
	groups := GroupsByLabel(labels)
	if len(maximal) != 2 || len(comps) != 2 || len(groups) != 2 {
		t.Fatalf("cluster counts differ: maximal=%d comps=%d exclusive=%d",
			len(maximal), len(comps), len(groups))
	}
	for i := range maximal {
		if !equalSlices(maximal[i], comps[i]) || !equalSlices(maximal[i], groups[i]) {
			t.Errorf("cluster %d differs: maximal=%v comps=%v exclusive=%v",
				i, maximal[i], comps[i], groups[i])
		}
	}
	// Noise point 5 appears nowhere.
	for _, c := range maximal {
		for _, m := range c {
			if m == 5 {
				t.Error("noise point clustered")
			}
		}
	}
}

func equalSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClusterMaximalMinPtsOne(t *testing.T) {
	// minPts=1: every point is core; clusters are plain distance components.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(10, 0)}
	clusters := SnapshotClustersMaximal(pts, 1, 1)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if !equalSlices(clusters[0], []int{0, 1}) || !equalSlices(clusters[1], []int{2}) {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestClusterMaximalEmpty(t *testing.T) {
	if got := SnapshotClustersMaximal(nil, 1, 2); len(got) != 0 {
		t.Errorf("empty input produced %v", got)
	}
}

// Reference implementation of maximal density-connected sets, straight from
// Definitions 1–2: compute density-reachability closures of each core.
func maximalBrute(adj Adjacency) [][]int {
	n := len(adj.NH)
	inNH := func(p, q int) bool {
		for _, x := range adj.NH[p] {
			if x == q {
				return true
			}
		}
		return false
	}
	// reach[x] = set of points density-reachable from core x.
	seen := map[string]bool{}
	var out [][]int
	for x := 0; x < n; x++ {
		if !adj.Core[x] {
			continue
		}
		reach := map[int]struct{}{x: {}}
		queue := []int{x}
		for head := 0; head < len(queue); head++ {
			c := queue[head]
			if !adj.Core[c] {
				continue // only cores extend chains
			}
			for q := 0; q < n; q++ {
				if _, ok := reach[q]; ok {
					continue
				}
				if inNH(c, q) {
					reach[q] = struct{}{}
					queue = append(queue, q)
				}
			}
		}
		members := make([]int, 0, len(reach))
		for m := range reach {
			members = append(members, m)
		}
		sort.Ints(members)
		key := ""
		for _, m := range members {
			key += string(rune(m)) + ","
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, members)
		}
	}
	return out
}

func TestPropMaximalMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for iter := 0; iter < 120; iter++ {
		n := r.Intn(30)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*12, r.Float64()*12)
		}
		eps := 0.5 + r.Float64()*2.5
		minPts := 1 + r.Intn(4)
		adj := adjOf(pts, eps, minPts)
		got := ClusterMaximal(adj)
		want := maximalBrute(adj)
		if len(got) != len(want) {
			t.Fatalf("cluster count: got %d want %d (n=%d eps=%g minPts=%d)\ngot=%v\nwant=%v",
				len(got), len(want), n, eps, minPts, got, want)
		}
		// Compare as sets of member lists.
		match := func(c []int, list [][]int) bool {
			for _, w := range list {
				if equalSlices(c, w) {
					return true
				}
			}
			return false
		}
		for _, c := range got {
			if !match(c, want) {
				t.Fatalf("cluster %v not in reference %v", c, want)
			}
		}
	}
}

// Property: every maximal set is fully contained in exactly one component.
func TestPropMaximalWithinComponents(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for iter := 0; iter < 100; iter++ {
		n := r.Intn(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(r.Float64()*15, r.Float64()*15)
		}
		adj := adjOf(pts, 1.0+r.Float64(), 1+r.Intn(4))
		maximal := ClusterMaximal(adj)
		comps := ClusterComponents(adj)
		compOf := map[int]int{}
		for ci, c := range comps {
			for _, m := range c {
				if prev, dup := compOf[m]; dup && prev != ci {
					t.Fatalf("point %d in two components", m)
				}
				compOf[m] = ci
			}
		}
		for _, c := range maximal {
			ref, ok := compOf[c[0]]
			if !ok {
				t.Fatalf("cluster member %d not in any component", c[0])
			}
			for _, m := range c[1:] {
				if compOf[m] != ref {
					t.Fatalf("maximal set %v spans components", c)
				}
			}
		}
	}
}
