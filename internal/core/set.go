package core

import (
	"encoding/binary"

	"repro/internal/model"
)

// Sorted object-ID set helpers. Candidate bookkeeping in CMC and the CuTS
// filter manipulates many small sets; representing them as sorted slices
// keeps intersections linear and hash keys cheap.

// intersectSorted returns the intersection of two ascending slices as a new
// ascending slice (nil when empty).
func intersectSorted(a, b []model.ObjectID) []model.ObjectID {
	var out []model.ObjectID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionSorted returns the union of two ascending slices as a new ascending
// slice.
func unionSorted(a, b []model.ObjectID) []model.ObjectID {
	out := make([]model.ObjectID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// equalSorted reports whether two ascending slices hold the same members.
func equalSorted(a, b []model.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetSorted reports whether every member of a is in b (both ascending).
func subsetSorted(a, b []model.ObjectID) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// containsSorted reports whether x is a member of the ascending slice a.
func containsSorted(a []model.ObjectID, x model.ObjectID) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// setKey encodes an ascending slice as a compact string usable as a map key.
func setKey(a []model.ObjectID) string {
	buf := make([]byte, 0, len(a)*3)
	var tmp [binary.MaxVarintLen64]byte
	prev := 0
	for _, x := range a {
		n := binary.PutUvarint(tmp[:], uint64(x-prev)) // delta encoding
		buf = append(buf, tmp[:n]...)
		prev = x
	}
	return string(buf)
}
