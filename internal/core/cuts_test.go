package core

import (
	"math/rand"
	"testing"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/simplify"
)

func TestVariantAccessors(t *testing.T) {
	if VariantCuTS.String() != "CuTS" || VariantCuTSPlus.String() != "CuTS+" || VariantCuTSStar.String() != "CuTS*" {
		t.Error("variant names wrong")
	}
	if VariantCuTS.SimplifyMethod() != simplify.DP ||
		VariantCuTSPlus.SimplifyMethod() != simplify.DPPlus ||
		VariantCuTSStar.SimplifyMethod() != simplify.DPStar {
		t.Error("variant simplification methods wrong")
	}
	if VariantCuTS.Bound() != dbscan.BoundDLL || VariantCuTSStar.Bound() != dbscan.BoundDStar {
		t.Error("variant bounds wrong")
	}
}

func TestCuTSFigure4Example(t *testing.T) {
	db := buildDB(t, 1,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 5), geom.Pt(0, 10), geom.Pt(0, 15)},
		[]geom.Point{geom.Pt(5, 0), geom.Pt(5, 1), geom.Pt(5, 2), geom.Pt(5, 3)},
		[]geom.Point{geom.Pt(5.5, 0), geom.Pt(5.5, 1), geom.Pt(5.5, 2), geom.Pt(20, 20)},
	)
	p := Params{M: 2, K: 3, Eps: 1}
	want := Result{{Objects: ids(1, 2), Start: 1, End: 3}}
	for _, variant := range []Variant{VariantCuTS, VariantCuTSPlus, VariantCuTSStar} {
		res, _, err := Run(db, p, Config{Variant: variant, Delta: 0.5, Lambda: 2})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if !res.Equal(want) {
			t.Errorf("%v = %v, want %v", variant, res, want)
		}
	}
}

func TestCuTSStatsSanity(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0.01), geom.Pt(2, 0), geom.Pt(3, 0.01), geom.Pt(4, 0), geom.Pt(5, 0)},
		[]geom.Point{geom.Pt(0, 0.4), geom.Pt(1, 0.4), geom.Pt(2, 0.4), geom.Pt(3, 0.4), geom.Pt(4, 0.4), geom.Pt(5, 0.4)},
	)
	p := Params{M: 2, K: 4, Eps: 1}
	res, st, err := Run(db, p, Config{Variant: VariantCuTS, Delta: 0.2, Lambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	if st.Delta != 0.2 || st.Lambda != 3 {
		t.Errorf("stats params: %+v", st)
	}
	if st.NumPartitions != 2 {
		t.Errorf("NumPartitions = %d, want 2", st.NumPartitions)
	}
	if st.NumCandidates < 1 {
		t.Errorf("NumCandidates = %d", st.NumCandidates)
	}
	if st.RefineUnits <= 0 {
		t.Errorf("RefineUnits = %g", st.RefineUnits)
	}
	if st.VertexTotal != 12 || st.VertexKept < 4 || st.VertexKept > 12 {
		t.Errorf("vertex accounting: %+v", st)
	}
	if st.VertexReduction() < 0 || st.VertexReduction() >= 1 {
		t.Errorf("VertexReduction = %g", st.VertexReduction())
	}
	if st.TotalTime() < st.SimplifyTime {
		t.Error("TotalTime must include all phases")
	}
}

func TestCandidateRefinementUnits(t *testing.T) {
	// The paper's example: 3 objects, lifetime 2 → 3²·2 = 18.
	c := Candidate{Support: ids(1, 2, 3), Start: 5, End: 6}
	if got := c.RefinementUnits(); got != 18 {
		t.Errorf("RefinementUnits = %g, want 18", got)
	}
	if c.Window() != 2 {
		t.Errorf("Window = %d", c.Window())
	}
}

func TestCuTSInvalidParams(t *testing.T) {
	db := buildDB(t, 0, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)})
	if _, _, err := Run(db, Params{M: 0, K: 1, Eps: 1}, Config{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestCuTSEmptyDB(t *testing.T) {
	res, st, err := Run(model.NewDB(), Params{M: 2, K: 2, Eps: 1}, Config{Variant: VariantCuTSStar})
	if err != nil || len(res) != 0 {
		t.Errorf("empty DB: res=%v err=%v", res, err)
	}
	if st.NumCandidates != 0 {
		t.Errorf("empty DB produced candidates: %+v", st)
	}
}

// TestFilterProducesSuperset: every convoy found by CMC lies within some
// filter candidate (objects within support, interval within window) — the
// filter's no-false-dismissal guarantee in isolation.
func TestFilterProducesSuperset(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for iter := 0; iter < 30; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(12))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 0.8 + r.Float64()*2}
		truth, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Variant{VariantCuTS, VariantCuTSPlus, VariantCuTSStar} {
			delta := r.Float64() * 2
			lambda := int64(1 + r.Intn(6))
			sts := simplify.SimplifyAll(db, delta, variant.SimplifyMethod())
			cands := Filter(db, p, sts, FilterConfig{
				Lambda:    lambda,
				Bound:     variant.Bound(),
				Tolerance: dbscan.ActualTolerance,
				Delta:     delta,
			})
			for _, cv := range truth {
				covered := false
				for _, cand := range cands {
					if cand.Start <= cv.Start && cv.End <= cand.End && subsetSorted(cv.Objects, cand.Support) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("%v (δ=%.2f λ=%d): convoy %v not covered by any candidate %+v",
						variant, delta, lambda, cv, cands)
				}
			}
		}
	}
}

// The paper's central guarantee (Lemmas 1–3 + refinement): the CuTS family
// returns exactly the CMC answer for any δ and λ. This is the
// cross-algorithm equivalence property test.
func TestPropCuTSFamilyEqualsCMC(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	for iter := 0; iter < 30; iter++ {
		db := randomDB(r, 3+r.Intn(5), 8+r.Intn(12))
		p := Params{
			M:   1 + r.Intn(3),
			K:   int64(1 + r.Intn(4)),
			Eps: 0.5 + r.Float64()*2.5,
		}
		want, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Variant{VariantCuTS, VariantCuTSPlus, VariantCuTSStar} {
			cfg := Config{
				Variant: variant,
				Delta:   r.Float64() * 3, // any δ must preserve correctness
				Lambda:  int64(1 + r.Intn(7)),
			}
			if cfg.Delta == 0 {
				cfg.Delta = 0.01
			}
			got, _, err := Run(db, p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("iter %d %v (m=%d k=%d e=%.3f δ=%.3f λ=%d):\ngot  = %v\nwant = %v",
					iter, variant, p.M, p.K, p.Eps, cfg.Delta, cfg.Lambda, got, want)
			}
		}
	}
}

// Same equivalence with the automatic δ/λ guidelines and with global
// tolerances (Figure 14's configuration switch must not affect answers).
func TestPropCuTSGuidelinesAndGlobalTolEqualCMC(t *testing.T) {
	r := rand.New(rand.NewSource(222))
	for iter := 0; iter < 12; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(10))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		want, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Variant{VariantCuTS, VariantCuTSStar} {
			// Automatic guidelines.
			got, st, err := Run(db, p, Config{Variant: variant})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%v auto (δ=%.3f λ=%d):\ngot  = %v\nwant = %v",
					variant, st.Delta, st.Lambda, got, want)
			}
			// Global tolerance mode.
			got, _, err = Run(db, p, Config{
				Variant:   variant,
				Delta:     0.5 + r.Float64(),
				Lambda:    int64(1 + r.Intn(5)),
				Tolerance: dbscan.GlobalTolerance,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%v global-tol:\ngot  = %v\nwant = %v", variant, got, want)
			}
		}
	}
}

// Planted-convoy integration test at a slightly larger scale: three convoys
// of known composition must be recovered exactly by all four algorithms.
func TestPlantedConvoysAllAlgorithms(t *testing.T) {
	const ticks = 60
	r := rand.New(rand.NewSource(7))
	mk := func(n int, y0 float64, start, end int) [][]geom.Point {
		rows := make([][]geom.Point, n)
		for o := range rows {
			row := make([]geom.Point, ticks)
			for i := 0; i < ticks; i++ {
				if i < start || i > end {
					// far away, scattered
					row[i] = geom.Pt(float64(i)*3+200+float64(o)*90, 300+float64(o)*70+r.Float64())
				} else {
					row[i] = geom.Pt(float64(i)*3, y0+float64(o)*0.8)
				}
			}
			rows[o] = row
		}
		return rows
	}
	var rows [][]geom.Point
	rows = append(rows, mk(3, 0, 0, 29)...)    // convoy A: objects 0-2, ticks 0-29
	rows = append(rows, mk(4, 50, 20, 59)...)  // convoy B: objects 3-6, ticks 20-59
	rows = append(rows, mk(2, 100, 10, 49)...) // convoy C: objects 7-8, ticks 10-49
	db := buildDB(t, 0, rows...)
	p := Params{M: 2, K: 10, Eps: 1.5}

	want, err := CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got Result) {
		t.Helper()
		if !got.Equal(want) {
			t.Errorf("%s:\ngot  = %v\nwant = %v", name, got, want)
		}
		for _, expected := range []Convoy{
			{Objects: ids(0, 1, 2), Start: 0, End: 29},
			{Objects: ids(3, 4, 5, 6), Start: 20, End: 59},
			{Objects: ids(7, 8), Start: 10, End: 49},
		} {
			found := false
			for _, c := range got {
				if c.Equal(expected) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: planted convoy %v missing from %v", name, expected, got)
			}
		}
	}
	check("CMC", want)
	for _, variant := range []Variant{VariantCuTS, VariantCuTSPlus, VariantCuTSStar} {
		res, _, err := Run(db, p, Config{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		check(variant.String(), res)
	}
}
