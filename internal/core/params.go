package core

import (
	"math"

	"repro/internal/model"
	"repro/internal/simplify"
)

// Parameter-selection guidelines of Section 7.4. Neither parameter affects
// correctness — only the execution-time balance between the filter and
// refinement phases — so both functions favor robustness over precision.

// deltaSampleDivisor controls how many trajectories the δ guideline
// inspects: max(1, N/deltaSampleDivisor), i.e., the paper's "e.g., 10% of N".
const deltaSampleDivisor = 10

// ComputeDelta derives a simplification tolerance δ from the data following
// the Section 7.4 heuristic: run Douglas–Peucker with δ = 0 over a sample
// of trajectories, record the split deviations in ascending order, keep
// those below e, find the largest gap between adjacent values and select
// the smaller endpoint of that gap; finally average the per-trajectory
// selections. Falls back to e/2 when the data yields no usable profile
// (e.g., everything collinear).
func ComputeDelta(db *model.DB, e float64) float64 {
	n := db.Len()
	if n == 0 {
		return e / 2
	}
	want := n / deltaSampleDivisor
	if want < 1 {
		want = 1
	}
	stride := n / want
	if stride < 1 {
		stride = 1
	}
	var sum float64
	var count int
	for i := 0; i < n; i += stride {
		dists := simplify.SplitDistances(db.Traj(i), simplify.DP)
		// Keep the ascending prefix below e.
		hi := 0
		for hi < len(dists) && dists[hi] < e {
			hi++
		}
		dists = dists[:hi]
		if len(dists) == 0 {
			continue
		}
		sel := dists[0]
		if len(dists) > 1 {
			bestGap := -1.0
			for j := 1; j < len(dists); j++ {
				if gap := dists[j] - dists[j-1]; gap > bestGap {
					bestGap = gap
					sel = dists[j-1]
				}
			}
		}
		sum += sel
		count++
	}
	if count == 0 || sum == 0 {
		return e / 2
	}
	return sum / float64(count)
}

// ComputeLambda derives the time-partition length λ from the simplification
// outcome following Section 7.4. The first-order estimate is
//
//	λ1 = (|o'|/|o|) · o.τ
//
// (one partition per surviving vertex on average — for Cattle this yields
// the paper's λ = 36), discounted toward the minimum useful partition
// length 2 by the probability that the object is missing from a random
// partition:
//
//	λ_o = λ1 − (λ1 − 2) · (1 − o.τ/T)
//
// As printed in the paper the discount factor reads o.τ/T, but that
// contradicts Table 3 on all four datasets (it would force λ = 2 for the
// full-span Cattle trajectories and λ ≈ λ1 for the 2%-span Trucks, the
// opposite of the reported 36 and 4); the complemented form reproduces the
// published settings, so we take the printed formula to have swapped the
// factor. Per-object values are averaged and clamped to [1, k] — a
// partition longer than the convoy lifetime cannot sharpen the filter and
// only coarsens candidate windows.
func ComputeLambda(db *model.DB, sts []*simplify.Trajectory, k int64) int64 {
	lo, hi, ok := db.TimeRange()
	if !ok {
		return 1
	}
	T := float64(hi-lo) + 1
	var sum float64
	var count int
	for _, st := range sts {
		orig := st.Orig
		if orig.Len() == 0 {
			continue
		}
		tau := float64(orig.Duration())
		ratio := float64(st.Len()) / float64(orig.Len())
		lam1 := ratio * tau
		if lam1 < 2 {
			lam1 = 2
		}
		lam := lam1 - (lam1-2)*(1-tau/T)
		sum += lam
		count++
	}
	if count == 0 {
		return 1
	}
	lambda := int64(math.Round(sum / float64(count)))
	if lambda < 1 {
		lambda = 1
	}
	if k >= 1 && lambda > k {
		lambda = k
	}
	return lambda
}
