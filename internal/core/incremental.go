package core

import (
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/increment"
)

// Incremental per-tick clustering: the CMC scan and the streaming
// ClusterSource keep the previous tick's grid and neighborhood structure
// (internal/increment) and re-cluster only the objects that moved,
// appeared or vanished — plus their affected neighborhoods — falling back
// to a from-scratch pass whenever the fraction of dirty objects exceeds a
// churn threshold. The answers are identical either way; only the work
// changes. The fast path applies to the default grid-DBSCAN backend only:
// other backends define their own density notion and always run
// from scratch.

// DefaultChurnThreshold is the dirty-object fraction above which the
// incremental engine abandons patching and rebuilds the tick from scratch
// (see increment.DefaultChurnThreshold).
const DefaultChurnThreshold = increment.DefaultChurnThreshold

// NoIncrementalEnv is the environment kill switch: when set (to any
// non-empty value) incremental clustering is disabled process-wide and
// every tick runs the from-scratch pass, regardless of per-query or
// per-feed settings. It exists so a misbehaving deployment can be forced
// onto the reference path without a rebuild.
const NoIncrementalEnv = "CONVOY_NO_INCREMENTAL"

var incrementalKilled = sync.OnceValue(func() bool {
	return os.Getenv(NoIncrementalEnv) != ""
})

// IncrementalDisabled reports whether the NoIncrementalEnv kill switch is
// set (read once per process).
func IncrementalDisabled() bool { return incrementalKilled() }

// incrementalThreshold resolves the query's effective churn threshold for
// clusterer cl: 0 means incremental clustering is off (from-scratch every
// tick); > 0 is the threshold handed to the engine. Incremental is on by
// default for the CMC algorithm with the grid-DBSCAN backend, off for
// everything else, and forced off by WithIncremental(-1) or the env kill
// switch.
func (q *Query) incrementalThreshold(cl Clusterer) float64 {
	if q.incremental < 0 || !q.useCMC || IncrementalDisabled() {
		return 0
	}
	if _, ok := cl.(DBSCANClusterer); !ok {
		return 0
	}
	if q.incremental > 0 {
		return q.incremental
	}
	return DefaultChurnThreshold
}

// scanMeter aggregates the clustering-work counters of one discovery run.
// All fields are updated atomically: the CMC pipeline increments them from
// worker goroutines.
type scanMeter struct {
	passes      int64 // every snapshot/partition clustering pass
	incremental int64 // CMC passes answered by the incremental engine
	reclustered int64 // objects actually re-clustered on those passes
}

// addPass records one CMC snapshot pass. reclustered is the number of
// objects whose neighborhoods were recomputed (the full population on a
// from-scratch pass).
func (m *scanMeter) addPass(p increment.Pass) {
	if m == nil {
		return
	}
	atomic.AddInt64(&m.passes, 1)
	if !p.Full {
		atomic.AddInt64(&m.incremental, 1)
	}
	atomic.AddInt64(&m.reclustered, int64(p.Reclustered))
}
