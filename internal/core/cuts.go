package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/simplify"
	"repro/internal/trace"
)

// The CuTS family (Sections 5 and 6): filter-refinement convoy discovery
// over simplified trajectories.
//
// Filter (Algorithm 2): simplify every trajectory (DP / DP+ / DP*), divide
// the time domain into λ-length partitions, cluster each partition's
// simplified sub-polylines under the inflated distance bound of Lemma 1
// (or Lemma 3 for CuTS*), and chain the partition clusters into candidates
// exactly like CMC chains snapshot clusters. Overlapping segment-level
// clusters are merged into disjoint components and each candidate carries a
// *support set* (the union of every component it passed through); both
// measures make the refinement provably lossless (see DESIGN.md §6).
//
// Refinement (Algorithm 3): for every candidate, run CMC restricted to the
// candidate's support objects over the candidate's partition-aligned time
// window, then canonicalize the union of all discovered convoys.

// Variant names the member of the CuTS family.
type Variant int

const (
	// VariantCuTS uses DP simplification and the Lemma 1 (DLL) bound.
	VariantCuTS Variant = iota
	// VariantCuTSPlus uses DP+ simplification and the Lemma 1 (DLL) bound.
	VariantCuTSPlus
	// VariantCuTSStar uses DP* simplification and the Lemma 3 (D*) bound.
	VariantCuTSStar
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantCuTS:
		return "CuTS"
	case VariantCuTSPlus:
		return "CuTS+"
	case VariantCuTSStar:
		return "CuTS*"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// SimplifyMethod returns the trajectory-simplification algorithm the
// variant uses (the table at the end of Section 6).
func (v Variant) SimplifyMethod() simplify.Method {
	switch v {
	case VariantCuTSPlus:
		return simplify.DPPlus
	case VariantCuTSStar:
		return simplify.DPStar
	default:
		return simplify.DP
	}
}

// Bound returns the filter distance bound the variant uses.
func (v Variant) Bound() dbscan.BoundKind {
	if v == VariantCuTSStar {
		return dbscan.BoundDStar
	}
	return dbscan.BoundDLL
}

// Config carries the internal parameters of the CuTS family. The zero value
// of Delta/Lambda requests the automatic guidelines of Section 7.4.
type Config struct {
	// Variant selects CuTS, CuTS+ or CuTS*.
	Variant Variant
	// Delta is the simplification tolerance δ; ≤ 0 means "use the
	// ComputeDelta guideline".
	Delta float64
	// Lambda is the time-partition length λ in ticks; ≤ 0 means "use the
	// ComputeLambda guideline".
	Lambda int64
	// Tolerance selects actual (default, tighter — Figure 14) or global
	// per-segment tolerances in the filter bounds.
	Tolerance dbscan.ToleranceMode

	// Ablation switches. None of them affects the answer set (tests
	// enforce this); they exist so benchmarks can isolate the cost/benefit
	// of individual design choices.

	// NoBoxPrune disables the Lemma 2 box-distance pruning.
	NoBoxPrune bool
	// NoClipTime disables the CuTS*-only clipping of segments to the
	// partition window.
	NoClipTime bool
	// NoCandidatePruning disables the dominated-candidate elimination
	// before refinement.
	NoCandidatePruning bool

	// Workers sets the number of goroutines every stage of the pipeline
	// may use: trajectories simplify concurrently, filter partitions
	// cluster concurrently (chaining stays sequential in partition order),
	// and candidates refine concurrently. 0 or 1 runs serially. The answer
	// set is identical for every worker count — the parallel stages
	// compute exactly the serial stages' intermediate results and the
	// sequential folds consume them in the serial order.
	Workers int
}

// FilterConfig bundles the resolved filter-step inputs.
type FilterConfig struct {
	Lambda             int64
	Bound              dbscan.BoundKind
	Tolerance          dbscan.ToleranceMode
	Delta              float64
	NoBoxPrune         bool
	NoClipTime         bool
	NoCandidatePruning bool
	// Workers clusters λ-partitions concurrently (each partition's
	// TRAJ-DBSCAN is independent; candidate chaining stays sequential in
	// partition order, so the candidate set is identical to a serial run).
	// 0 or 1 runs serially.
	Workers int
}

// Candidate is one convoy candidate produced by the filter step.
type Candidate struct {
	// Objects is the candidate's identity: the intersection of the
	// partition clusters it chained through (ascending IDs).
	Objects []model.ObjectID
	// Support is the union of those clusters — the object set the
	// refinement step clusters (ascending IDs).
	Support []model.ObjectID
	// Start and End delimit the candidate's partition-aligned tick window.
	Start, End model.Tick
}

// Window returns the candidate's window length in ticks.
func (c Candidate) Window() int64 { return int64(c.End-c.Start) + 1 }

// RefinementUnits returns the candidate's contribution to the paper's
// refinement-unit metric (Section 7.3): the quadratic clustering cost of
// the objects the refinement must process, times the candidate's lifetime.
func (c Candidate) RefinementUnits() float64 {
	n := float64(len(c.Support))
	return n * n * float64(c.Window())
}

// Stats reports what a CuTS run did, for the experiment harness.
type Stats struct {
	Variant       Variant
	Delta         float64       // the δ actually used
	Lambda        int64         // the λ actually used
	Workers       int           // effective worker count (1 = serial)
	NumPartitions int           // partitions scanned
	NumCandidates int           // candidates handed to refinement
	RefineUnits   float64       // Σ candidate refinement units
	VertexKept    int           // Σ |o'| over all simplified trajectories
	VertexTotal   int           // Σ |o| over all original trajectories
	SimplifyTime  time.Duration // phase timings (Figure 13)
	FilterTime    time.Duration
	RefineTime    time.Duration
	// ClusterPasses counts clustering passes actually run: snapshot DBSCAN
	// passes (CMC scans and refinement windows) plus filter λ-partition
	// TRAJ-DBSCAN passes. It is the work meter behind the cancellation and
	// early-stop guarantees — an aborted or limit-stopped run shows
	// strictly fewer passes than a full one. Filled even when a run is
	// cancelled mid-way.
	ClusterPasses int64
	// ClusterPassesFull and ClusterPassesIncremental split ClusterPasses
	// by how the pass was answered: a from-scratch clustering run versus
	// the incremental engine patching the previous tick's structure (CMC
	// scans only — CuTS filter partitions and refinement windows always
	// count as full). ObjectsReclustered sums, over the CMC scan's passes,
	// the objects whose neighborhoods were actually recomputed; on a
	// low-churn feed it is far below ClusterPasses × population, which is
	// exactly the work the incremental path saves.
	ClusterPassesFull        int64
	ClusterPassesIncremental int64
	ObjectsReclustered       int64
}

// TotalTime returns the end-to-end discovery time.
func (s Stats) TotalTime() time.Duration { return s.SimplifyTime + s.FilterTime + s.RefineTime }

// VertexReduction returns the overall reduction ratio 1 − Σ|o'|/Σ|o|.
func (s Stats) VertexReduction() float64 {
	if s.VertexTotal == 0 {
		return 0
	}
	return 1 - float64(s.VertexKept)/float64(s.VertexTotal)
}

// Filter runs the CuTS filter step over already-simplified trajectories and
// returns the candidate set. Exposed separately so the experiment harness
// can time and instrument the phases; most callers use Query (or the Run
// wrapper).
func Filter(db *model.DB, p Params, sts []*simplify.Trajectory, fc FilterConfig) []Candidate {
	cands, _ := filterScan(context.Background(), db, p, sts, fc, nil)
	return cands
}

// filterScan is Filter with a context and a clustering-pass meter:
// cancelling ctx aborts the partition scan at λ-partition granularity and
// returns ctx.Err() with a nil candidate set; passes, when non-nil, is
// atomically incremented once per partition TRAJ-DBSCAN pass.
func filterScan(ctx context.Context, db *model.DB, p Params, sts []*simplify.Trajectory, fc FilterConfig, passes *int64) ([]Candidate, error) {
	lambda, bound := fc.Lambda, fc.Bound
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil, nil
	}
	distParams := dbscan.PolylineDistanceParams{
		Eps:         p.Eps,
		Bound:       bound,
		Tolerance:   fc.Tolerance,
		GlobalDelta: fc.Delta,
		NoBoxPrune:  fc.NoBoxPrune,
	}
	if lambda < 1 {
		lambda = 1
	}

	var out []Candidate
	collect := func(v *candidate) {
		out = append(out, Candidate{
			Objects: v.objs,
			Support: v.support,
			Start:   v.start,
			End:     v.end,
		})
	}

	// Partition windows, in time order; each partition's clustering is
	// independent, so the expensive TRAJ-DBSCAN runs on a worker pool while
	// the cheap candidate chaining folds the partition clusters strictly in
	// time order (same pipeline shape as the parallel CMC scan).
	type window struct{ w0, w1 model.Tick }
	var wins []window
	for w0 := lo; w0 <= hi; w0 += model.Tick(lambda) {
		w1 := w0 + model.Tick(lambda) - 1
		if w1 > hi {
			w1 = hi
		}
		wins = append(wins, window{w0, w1})
	}

	// partitionClusters assembles the partition's sub-polylines (the
	// structure G of Algorithm 2) — for each object, the run of simplified
	// segments whose time intervals intersect [w0, w1] — and clusters them.
	// Under the D* bound the segments are clipped to the partition window —
	// the synchronous DP* tolerance licenses that (see
	// simplify.Segment.ClipTime), shrinking both the bounding boxes and the
	// CPA distances; the free-space DLL bound must keep whole segments,
	// which is exactly why the paper calls the CuTS* filter tighter
	// (Section 6.2).
	tm := newStageTimer(trace.FromContext(ctx))
	defer tm.flush()
	partitionClusters := func(w window) [][]model.ObjectID {
		if passes != nil {
			atomic.AddInt64(passes, 1)
		}
		var t0 time.Time
		if tm != nil {
			t0 = time.Now()
			defer func() { tm.cluster.Add(int64(time.Since(t0))) }()
		}
		var polys []dbscan.Polyline
		var polyObj []model.ObjectID
		for _, st := range sts {
			sLo, sHi := st.SegmentsOverlapping(w.w0, w.w1)
			if sLo >= sHi {
				continue
			}
			segs := st.Segments[sLo:sHi]
			if bound == dbscan.BoundDStar && !fc.NoClipTime {
				clipped := make([]simplify.Segment, len(segs))
				for i, sg := range segs {
					clipped[i] = sg.ClipTime(w.w0, w.w1)
				}
				segs = clipped
			}
			polys = append(polys, dbscan.NewPolyline(st.Object, segs))
			polyObj = append(polyObj, st.Object)
		}
		if len(polys) < p.M {
			return nil
		}
		comps := dbscan.PolylineComponents(polys, p.M, distParams)
		clusters := make([][]model.ObjectID, len(comps))
		for ci, comp := range comps {
			objs := make([]model.ObjectID, len(comp))
			for i, pi := range comp {
				objs[i] = polyObj[pi] // polyObj ascending ⇒ objs ascending
			}
			clusters[ci] = objs
		}
		return clusters
	}

	var live []*candidate
	if err := orderedPipeline(ctx, len(wins), fc.Workers,
		func(i int) [][]model.ObjectID { return partitionClusters(wins[i]) },
		func(i int, clusters [][]model.ObjectID) bool {
			var t0 time.Time
			if tm != nil {
				t0 = time.Now()
			}
			live = chainStep(live, clusters, p.M, p.K, wins[i].w0, wins[i].w1, true, nil, collect)
			if tm != nil {
				tm.chain.Add(int64(time.Since(t0)))
			}
			return true
		}); err != nil {
		return nil, err
	}
	flushCandidates(live, p.K, nil, collect)
	return dedupCandidates(out, fc.NoCandidatePruning), nil
}

// dedupCandidates drops candidates whose refinement is covered by another
// candidate's refinement: identical (support, window) duplicates and
// candidates dominated in both dimensions (support subset, window inside).
// Domination arises constantly by construction — when a candidate dies, its
// surviving intersection children inherit its start time and a superset
// support, so refining the child subsumes refining the parent. Pruning them
// is what keeps the refinement step cheap (Section 7.3's refinement units).
func dedupCandidates(cands []Candidate, noPruning bool) []Candidate {
	seen := make(map[string]struct{}, len(cands))
	uniq := cands[:0]
	for _, c := range cands {
		key := fmt.Sprintf("%d|%d|%s", c.Start, c.End, setKey(c.Support))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		uniq = append(uniq, c)
	}
	if noPruning {
		return uniq
	}
	// Big supports and wide windows first, so the keep-list check hits the
	// likely dominator early.
	sort.Slice(uniq, func(i, j int) bool {
		if len(uniq[i].Support) != len(uniq[j].Support) {
			return len(uniq[i].Support) > len(uniq[j].Support)
		}
		return uniq[i].Window() > uniq[j].Window()
	})
	var keep []Candidate
	for _, c := range uniq {
		dominated := false
		for _, k := range keep {
			if k.Start <= c.Start && c.End <= k.End && subsetSorted(c.Support, k.Support) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, c)
		}
	}
	return keep
}

// Refine runs the refinement step (Algorithm 3): CMC restricted to each
// candidate's support objects and time window, returning the canonical
// union of the discovered convoys.
func Refine(db *model.DB, p Params, cands []Candidate) Result {
	return RefineParallel(db, p, cands, 1)
}

// RefineParallel is Refine with a worker pool: candidates are independent,
// so their window-restricted CMC runs execute concurrently; the union is
// canonicalized, making the answer identical to the serial run.
func RefineParallel(db *model.DB, p Params, cands []Candidate, workers int) Result {
	var all []Convoy
	refineScan(context.Background(), db, p, cands, workers, nil, func(_ int, raw []Convoy) bool {
		all = append(all, raw...)
		return true
	})
	return Canonicalize(all)
}

// refineScan runs the refinement step one candidate at a time on a worker
// pool, pushing every candidate's raw window convoys into emit strictly in
// candidate order (an ordered pipeline, like the tick and partition
// scans). emit returning false abandons the remaining candidates;
// cancelling ctx aborts with ctx.Err() at candidate granularity. passes
// meters the snapshot clustering passes of the refinement windows.
func refineScan(ctx context.Context, db *model.DB, p Params, cands []Candidate, workers int, passes *int64, emit func(i int, raw []Convoy) bool) error {
	// The window scans get a span-only context: the refine span's timing
	// attributes accumulate across candidates, while the scans stay
	// uncancellable mid-window as documented on cmcWindow.
	wctx := trace.ContextWithSpan(context.Background(), trace.FromContext(ctx))
	return orderedPipeline(ctx, len(cands), workers,
		func(i int) []Convoy {
			c := cands[i]
			return cmcWindow(wctx, db, p, c.Start, c.End, c.Support, passes)
		},
		emit)
}

// Run executes the chosen CuTS variant end to end and returns the canonical
// convoy result plus run statistics. Delta/Lambda ≤ 0 in cfg invoke the
// Section 7.4 guidelines. It is a thin wrapper over Query; use Query
// directly for cancellation, streaming results and result limits.
func Run(db *model.DB, p Params, cfg Config) (Result, Stats, error) {
	var st Stats
	res, err := NewQuery(WithParams(p), WithConfig(cfg), WithStats(&st)).Run(context.Background(), db)
	return res, st, err
}

// CuTS answers the convoy query with the base CuTS algorithm (DP + DLL).
func CuTS(db *model.DB, p Params, delta float64, lambda int64) (Result, error) {
	res, _, err := Run(db, p, Config{Variant: VariantCuTS, Delta: delta, Lambda: lambda})
	return res, err
}

// CuTSPlus answers the convoy query with CuTS+ (DP+ + DLL).
func CuTSPlus(db *model.DB, p Params, delta float64, lambda int64) (Result, error) {
	res, _, err := Run(db, p, Config{Variant: VariantCuTSPlus, Delta: delta, Lambda: lambda})
	return res, err
}

// CuTSStar answers the convoy query with CuTS* (DP* + D*).
func CuTSStar(db *model.DB, p Params, delta float64, lambda int64) (Result, error) {
	res, _, err := Run(db, p, Config{Variant: VariantCuTSStar, Delta: delta, Lambda: lambda})
	return res, err
}
