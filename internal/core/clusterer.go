package core

import (
	"sort"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/model"
)

// The per-tick clustering stage is pluggable: the convoy definition only
// needs *some* notion of density-connected groups per time point — the
// paper instantiates it with Euclidean DBSCAN, but the CMC chaining (and
// the whole streaming engine on top of it) is agnostic to where the
// clusters come from. A Clusterer computes one tick's clusters from a
// snapshot; the built-in DBSCANClusterer reproduces the paper exactly,
// and internal/proxgraph clusters coordinate-free proximity logs
// (co-presence edges) with the same machinery. The CuTS filter step is
// NOT pluggable — its pruning bounds are theorems about Euclidean DBSCAN
// over polylines — so custom clusterers pair with the CMC algorithm.

// DefaultBackend is the name of the built-in grid-DBSCAN backend. A
// ClusterKey whose Backend field is empty means this backend, so keys
// predating pluggable clusterers keep their meaning.
const DefaultBackend = "dbscan"

// ProxEdge is one proximity observation between two objects at a tick:
// the input of graph-connectivity clusterers. W is the edge weight (e.g.
// contact duration or signal strength); a backend thresholds it against
// the clustering key's Eps.
type ProxEdge struct {
	A, B model.ObjectID
	W    float64
}

// TickSnapshot is everything one tick exposes to a Clusterer: the alive
// object IDs with their positions (parallel slices; geometric backends
// use these) and/or the tick's proximity edges (graph backends use
// these). Either part may be empty — a coordinate-free feed carries only
// edges, a trajectory database only positions.
type TickSnapshot struct {
	T     model.Tick
	IDs   []model.ObjectID
	Pts   []geom.Point
	Edges []ProxEdge
}

// Clusterer computes the per-tick density-connected groups the convoy
// pipeline chains across time.
//
// Contract: Clusters returns the tick's clusters at the key — every
// cluster has ≥ key.M members, member lists are ascending object IDs, and
// the output is deterministic in the snapshot. Clusters may overlap (the
// DBSCAN backend's maximal sets share border points); callers never
// mutate the returned slices. Name identifies the backend; two monitors
// share a clustering pass only when their keys — including the backend —
// are equal. Implementations must be safe for concurrent Clusters calls
// (the parallel CMC pipeline clusters many ticks at once).
//
// Clusterers are stateless across ticks by design — Clusters(key, snap)
// is a pure function of its arguments. Stateful acceleration (reusing the
// previous tick's structure) lives one layer up, behind ClusterSource and
// the CMC scan's incremental engine (internal/increment), which reproduce
// the default backend's answers exactly; a custom backend therefore never
// needs cross-tick state for correctness and never gets it.
type Clusterer interface {
	Name() string
	Clusters(key ClusterKey, snap TickSnapshot) [][]model.ObjectID
}

// DBSCANClusterer is the paper's per-tick clustering: maximal
// density-connected sets (grid-accelerated snapshot DBSCAN) over the
// snapshot positions, ignoring edges. The zero value is ready to use.
type DBSCANClusterer struct{}

// Name returns DefaultBackend.
func (DBSCANClusterer) Name() string { return DefaultBackend }

// Clusters returns the maximal density-connected sets of the snapshot
// positions at (key.Eps, key.M).
func (DBSCANClusterer) Clusters(key ClusterKey, snap TickSnapshot) [][]model.ObjectID {
	if len(snap.IDs) < key.M {
		return nil
	}
	idxClusters := dbscan.SnapshotClustersMaximal(snap.Pts, key.Eps, key.M)
	clusters := make([][]model.ObjectID, len(idxClusters))
	for ci, c := range idxClusters {
		objs := make([]model.ObjectID, len(c))
		for i, idx := range c {
			objs[i] = snap.IDs[idx]
		}
		// Index clusters are ascending, so objs is already sorted when the
		// snapshot IDs are (database replays); live feeds push arbitrary
		// orders and pay the sort.
		if !sort.IntsAreSorted(objs) {
			sort.Ints(objs)
		}
		clusters[ci] = objs
	}
	return clusters
}

// DefaultClusterer is the built-in DBSCAN backend, used wherever no
// WithClusterer option (or explicit source clusterer) says otherwise.
var DefaultClusterer Clusterer = DBSCANClusterer{}
