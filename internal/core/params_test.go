package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/simplify"
)

func TestComputeDeltaEmptyDB(t *testing.T) {
	if got := ComputeDelta(model.NewDB(), 10); got != 5 {
		t.Errorf("empty DB δ = %g, want fallback e/2", got)
	}
}

func TestComputeDeltaCollinearFallsBack(t *testing.T) {
	// Perfectly straight trajectories produce no split profile: fall back.
	db := buildDB(t, 0, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)})
	if got := ComputeDelta(db, 8); got != 4 {
		t.Errorf("collinear δ = %g, want 4", got)
	}
}

func TestComputeDeltaBelowEps(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	db := model.NewDB()
	for o := 0; o < 20; o++ {
		var samples []model.Sample
		x, y := r.Float64()*10, r.Float64()*10
		for i := 0; i < 60; i++ {
			x += r.Float64()*4 - 2
			y += r.Float64()*4 - 2
			samples = append(samples, model.Sample{T: model.Tick(i), P: geom.Pt(x, y)})
		}
		tr, _ := model.NewTrajectory("", samples)
		db.Add(tr)
	}
	for _, e := range []float64{0.5, 2, 8} {
		got := ComputeDelta(db, e)
		if got <= 0 || got >= e {
			t.Errorf("δ(e=%g) = %g, want in (0, e)", e, got)
		}
	}
}

func TestComputeDeltaLargestGapSelection(t *testing.T) {
	// A trajectory engineered so the δ=0 DP profile has a clear gap: one
	// large detour (distance ≈ 5) and small wiggles (≈ 0.3). The guideline
	// must pick a value near the small wiggles, not near the detour.
	var pts []geom.Point
	for i := 0; i < 40; i++ {
		y := 0.0
		if i%4 == 1 {
			y = 0.3
		}
		if i == 20 {
			y = 5
		}
		pts = append(pts, geom.Pt(float64(i), y))
	}
	db := buildDB(t, 0, pts)
	got := ComputeDelta(db, 10)
	if got > 1 {
		t.Errorf("δ = %g, want below the big-detour scale (≤ 1)", got)
	}
	if got <= 0 {
		t.Errorf("δ = %g, want positive", got)
	}
}

func TestComputeLambdaBounds(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := model.NewDB()
	for o := 0; o < 10; o++ {
		var samples []model.Sample
		x := 0.0
		for i := 0; i < 100; i++ {
			x += r.Float64()
			samples = append(samples, model.Sample{T: model.Tick(i), P: geom.Pt(x, r.Float64()*0.2)})
		}
		tr, _ := model.NewTrajectory("", samples)
		db.Add(tr)
	}
	sts := simplify.SimplifyAll(db, 1.0, simplify.DP)
	for _, k := range []int64{1, 5, 50, 1000} {
		lam := ComputeLambda(db, sts, k)
		if lam < 1 || lam > k {
			t.Errorf("λ(k=%d) = %d, want in [1, k]", k, lam)
		}
	}
}

func TestComputeLambdaEmpty(t *testing.T) {
	if got := ComputeLambda(model.NewDB(), nil, 10); got != 1 {
		t.Errorf("empty λ = %d, want 1", got)
	}
}

func TestComputeLambdaGrowsWithReduction(t *testing.T) {
	// Heavily reducible trajectories (straight lines) should yield larger λ
	// than barely reducible ones (dense zig-zags), mirroring Section 7.4's
	// |o'|/|o| ... wait: straight lines have SMALL |o'|/|o|. The formula
	// λ ≈ o.τ·ratio means low reduction (ratio→1) gives λ ≈ o.τ, while high
	// reduction gives small λ·… — verify the relative order the formula
	// implies rather than intuition.
	// Lifespans are staggered so o.τ < T; otherwise the (1 − o.τ/T) factor
	// vanishes and λ degenerates to 2 regardless of the reduction ratio.
	mk := func(zigzag bool) *model.DB {
		db := model.NewDB()
		for o := 0; o < 4; o++ {
			var samples []model.Sample
			base := model.Tick(o * 25)
			for i := 0; i < 50; i++ {
				y := 0.0
				if zigzag && i%2 == 1 {
					y = 3
				}
				samples = append(samples, model.Sample{T: base + model.Tick(i), P: geom.Pt(float64(i), y)})
			}
			tr, _ := model.NewTrajectory("", samples)
			db.Add(tr)
		}
		return db
	}
	const k = 1 << 30 // effectively uncapped
	straight := mk(false)
	lamStraight := ComputeLambda(straight, simplify.SimplifyAll(straight, 0.5, simplify.DP), k)
	zig := mk(true)
	lamZig := ComputeLambda(zig, simplify.SimplifyAll(zig, 0.5, simplify.DP), k)
	if lamStraight >= lamZig {
		t.Errorf("λ(straight)=%d should be below λ(zigzag)=%d per the Section 7.4 formula",
			lamStraight, lamZig)
	}
}
