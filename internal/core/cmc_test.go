package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// TestFigure4Example reproduces Section 3's worked example: with m=2, k=3,
// objects o2 and o3 travel together from t1 to t3 and the answer is
// ⟨o2,o3,[t1,t3]⟩.
func TestFigure4Example(t *testing.T) {
	db := buildDB(t, 1,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 5), geom.Pt(0, 10), geom.Pt(0, 15)},       // o0: drifting away alone
		[]geom.Point{geom.Pt(5, 0), geom.Pt(5, 1), geom.Pt(5, 2), geom.Pt(5, 3)},         // o1
		[]geom.Point{geom.Pt(5.5, 0), geom.Pt(5.5, 1), geom.Pt(5.5, 2), geom.Pt(20, 20)}, // o2 leaves at t4
	)
	res, err := CMC(db, Params{M: 2, K: 3, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Result{{Objects: ids(1, 2), Start: 1, End: 3}}
	if !res.Equal(want) {
		t.Errorf("CMC = %v, want %v", res, want)
	}
}

// TestTable2Trace reproduces the CMC execution example of Figure 5/Table 2:
// clusters c11={o0,o1,o2}, c12={o1,o2,o3}, c13={o0,o3}, c23={o1,o2}; with
// m=2, k=3 the only convoy is {o1,o2} over [t1,t3].
func TestTable2Trace(t *testing.T) {
	db := buildDB(t, 1,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(-5, 50), geom.Pt(8, 100)}, // o0
		[]geom.Point{geom.Pt(1, 0), geom.Pt(1, 50), geom.Pt(1, 100)},  // o1
		[]geom.Point{geom.Pt(2, 0), geom.Pt(2, 50), geom.Pt(2, 100)},  // o2
		[]geom.Point{geom.Pt(50, 0), geom.Pt(3, 50), geom.Pt(9, 100)}, // o3
	)
	p := Params{M: 2, K: 3, Eps: 1.5}
	// Sanity-check the snapshot clusters match the scripted trace.
	checkClusters := func(tick model.Tick, want [][]model.ObjectID) {
		got := snapshotClusters(db, DefaultClusterer, p, tick, nil)
		if len(got) != len(want) {
			t.Fatalf("t%d clusters = %v, want %v", tick, got, want)
		}
		for i := range want {
			if !equalSorted(got[i], want[i]) {
				t.Fatalf("t%d clusters = %v, want %v", tick, got, want)
			}
		}
	}
	checkClusters(1, [][]model.ObjectID{{0, 1, 2}})
	checkClusters(2, [][]model.ObjectID{{1, 2, 3}})
	checkClusters(3, [][]model.ObjectID{{0, 3}, {1, 2}})

	res, err := CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	want := Result{{Objects: ids(1, 2), Start: 1, End: 3}}
	if !res.Equal(want) {
		t.Errorf("CMC = %v, want %v", res, want)
	}
}

// TestFigure2aConvoyNotMovingCluster: the convoy {o1,o2,o3} persists for 3
// ticks even though a 4th object shares its cluster at t1 only.
func TestFigure2aConvoyNotMovingCluster(t *testing.T) {
	db := buildDB(t, 1,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 1), geom.Pt(0, 2)},
		[]geom.Point{geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(1, 2)},
		[]geom.Point{geom.Pt(2, 0), geom.Pt(2, 1), geom.Pt(2, 2)},
		[]geom.Point{geom.Pt(3, 0), geom.Pt(30, 1), geom.Pt(30, 2)}, // leaves after t1
	)
	p := Params{M: 3, K: 3, Eps: 1.2}
	res, err := CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	want := Result{{Objects: ids(0, 1, 2), Start: 1, End: 3}}
	if !res.Equal(want) {
		t.Errorf("CMC = %v, want %v", res, want)
	}
}

// TestMissingSamplesInterpolated: an object with a sampling gap still forms
// a convoy thanks to virtual points (Section 4).
func TestMissingSamplesInterpolated(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0)},
		[]geom.Point{geom.Pt(0, 0.5), absent, absent, geom.Pt(3, 0.5), geom.Pt(4, 0.5)},
	)
	res, err := CMC(db, Params{M: 2, K: 5, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Result{{Objects: ids(0, 1), Start: 0, End: 4}}
	if !res.Equal(want) {
		t.Errorf("CMC with gaps = %v, want %v", res, want)
	}
}

// TestLifespanLimitsConvoy: convoys cannot extend beyond an object's
// lifespan even when the other object keeps moving.
func TestLifespanLimitsConvoy(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0), geom.Pt(5, 0)},
		[]geom.Point{geom.Pt(0, 0.5), geom.Pt(1, 0.5), geom.Pt(2, 0.5), absent, absent, absent},
	)
	res, err := CMC(db, Params{M: 2, K: 3, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Result{{Objects: ids(0, 1), Start: 0, End: 2}}
	if !res.Equal(want) {
		t.Errorf("CMC = %v, want %v", res, want)
	}
}

// TestGrowingConvoyTracked: when a larger group forms around an existing
// convoy, both the long small convoy and the shorter big one are reported
// (the bookkeeping fix documented in DESIGN.md).
func TestGrowingConvoyTracked(t *testing.T) {
	row := func(y float64, joinAt int) []geom.Point {
		pts := make([]geom.Point, 8)
		for i := range pts {
			if i < joinAt {
				pts[i] = geom.Pt(float64(i), y+100)
			} else {
				pts[i] = geom.Pt(float64(i), y)
			}
		}
		return pts
	}
	db := buildDB(t, 0,
		row(0, 0),   // o0 present from the start
		row(0.5, 0), // o1 present from the start
		row(1.0, 4), // o2 joins at t4
		row(1.5, 4), // o3 joins at t4
	)
	res, err := CMC(db, Params{M: 2, K: 3, Eps: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	want := Result{
		{Objects: ids(0, 1), Start: 0, End: 7},
		{Objects: ids(2, 3), Start: 0, End: 7},
		{Objects: ids(0, 1, 2, 3), Start: 4, End: 7},
	}
	if !res.Equal(want) {
		t.Errorf("CMC = %v, want %v", res, want)
	}
}

// TestShrinkingConvoyReported: when a large convoy loses members, the big
// group's interval is reported alongside the surviving smaller group.
func TestShrinkingConvoyReported(t *testing.T) {
	row := func(y float64, leaveAt int) []geom.Point {
		pts := make([]geom.Point, 8)
		for i := range pts {
			if leaveAt >= 0 && i >= leaveAt {
				pts[i] = geom.Pt(float64(i), y+100)
			} else {
				pts[i] = geom.Pt(float64(i), y)
			}
		}
		return pts
	}
	db := buildDB(t, 0,
		row(0, -1),   // o0 stays
		row(0.5, -1), // o1 stays
		row(1.0, 4),  // o2 leaves at t4
	)
	res, err := CMC(db, Params{M: 2, K: 3, Eps: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	want := Result{
		{Objects: ids(0, 1, 2), Start: 0, End: 3},
		{Objects: ids(0, 1), Start: 0, End: 7},
	}
	if !res.Equal(want) {
		t.Errorf("CMC = %v, want %v", res, want)
	}
}

func TestCMCEmptyAndDegenerate(t *testing.T) {
	res, err := CMC(model.NewDB(), Params{M: 2, K: 2, Eps: 1})
	if err != nil || len(res) != 0 {
		t.Errorf("empty DB: %v, %v", res, err)
	}
	if _, err := CMC(model.NewDB(), Params{M: 0, K: 2, Eps: 1}); err == nil {
		t.Error("invalid params accepted")
	}
	// One object, m=1, k=1: the object alone is a convoy at every tick.
	db := buildDB(t, 0, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)})
	res, err = CMC(db, Params{M: 1, K: 1, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Result{{Objects: ids(0), Start: 0, End: 1}}
	if !res.Equal(want) {
		t.Errorf("singleton convoy = %v, want %v", res, want)
	}
}

func TestCMCNoConvoyBelowLifetime(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(50, 0)},
		[]geom.Point{geom.Pt(0, 0.5), geom.Pt(1, 0.5), geom.Pt(90, 0)},
	)
	res, err := CMC(db, Params{M: 2, K: 3, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("2-tick togetherness must not satisfy k=3: %v", res)
	}
}

// randomDB builds a random database mixing co-moving groups and independent
// walkers, with gaps and staggered lifespans.
func randomDB(r *rand.Rand, nObjects, nTicks int) *model.DB {
	db := model.NewDB()
	// Pick group anchors: objects follow an anchor walk with small offsets
	// for part of their lifetime, else wander independently.
	anchors := make([][]geom.Point, 3)
	for a := range anchors {
		walk := make([]geom.Point, nTicks)
		x, y := r.Float64()*20, r.Float64()*20
		for i := 0; i < nTicks; i++ {
			x += r.Float64()*2 - 1
			y += r.Float64()*2 - 1
			walk[i] = geom.Pt(x, y)
		}
		anchors[a] = walk
	}
	for o := 0; o < nObjects; o++ {
		anchor := anchors[r.Intn(len(anchors))]
		start := r.Intn(nTicks / 2)
		end := nTicks/2 + r.Intn(nTicks/2)
		var samples []model.Sample
		offx, offy := r.Float64()*1.2, r.Float64()*1.2
		for i := start; i <= end && i < nTicks; i++ {
			if r.Float64() < 0.15 && len(samples) > 0 && i != end {
				continue // sampling gap
			}
			var p geom.Point
			if r.Float64() < 0.8 {
				p = geom.Pt(anchor[i].X+offx, anchor[i].Y+offy)
			} else {
				p = geom.Pt(r.Float64()*40, r.Float64()*40)
			}
			samples = append(samples, model.Sample{T: model.Tick(i), P: p})
		}
		if len(samples) == 0 {
			samples = append(samples, model.Sample{T: model.Tick(start), P: geom.Pt(0, 0)})
		}
		tr, _ := model.NewTrajectory("", samples)
		db.Add(tr)
	}
	return db
}

// The oracle property: CMC equals the exhaustive-subset brute-force answer
// on small random databases.
func TestPropCMCMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for iter := 0; iter < 40; iter++ {
		db := randomDB(r, 3+r.Intn(5), 8+r.Intn(10))
		p := Params{
			M:   1 + r.Intn(3),
			K:   int64(1 + r.Intn(4)),
			Eps: 0.5 + r.Float64()*2.5,
		}
		got, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteConvoys(t, db, p)
		if !got.Equal(want) {
			t.Fatalf("iter %d (m=%d k=%d e=%.3f):\nCMC  = %v\nbrute = %v",
				iter, p.M, p.K, p.Eps, got, want)
		}
	}
}
