package core

import (
	"context"
	"fmt"
	"iter"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/simplify"
	"repro/internal/trace"
)

// Query is the context-first convoy discovery API: one value describing
// what to discover (the (m, k, e) parameters), how (algorithm variant,
// internal knobs, worker count) and how much (an optional result limit),
// built with functional options and executed against any database with
// Run — the batch answer — or Seq — an incremental stream that yields
// convoys as the scan closes them and stops the whole pipeline the moment
// the consumer breaks out.
//
// A Query is immutable after NewQuery and safe for concurrent use by
// multiple goroutines against the same or different databases — except
// when it carries a WithStats target, which is written unsynchronized at
// the end of each run: run such a Query from one goroutine at a time (or
// build one Query per goroutine, each with its own Stats target). Both
// Run and Seq honor their context at tick,
// λ-partition and candidate granularity, so cancelling mid-run returns
// ctx.Err() within roughly one unit of clustering work per worker; a
// cancelled run never returns a partial Result.
//
// The legacy entry points (CMC, CMCParallel, Run, CuTS…) are thin wrappers
// over Query and remain answer-for-answer identical.
type Query struct {
	p         Params
	useCMC    bool
	variant   Variant
	clusterer Clusterer
	delta     float64
	lambda    int64
	tol       dbscan.ToleranceMode
	workers   int
	limit     int
	statsOut  *Stats

	// partitions > 1 selects the partition → local-mine → merge execution
	// plan for Run; see WithPartitions.
	partitions int

	// incremental selects the CMC incremental-clustering mode: 0 is the
	// default (on for the grid-DBSCAN backend at DefaultChurnThreshold),
	// < 0 is off, > 0 is a custom churn threshold. See WithIncremental.
	incremental float64

	// Ablation switches, carried for WithConfig round-trips.
	noBoxPrune    bool
	noClipTime    bool
	noCandPruning bool
}

// Option configures a Query under construction.
type Option func(*Query)

// NewQuery builds a convoy query from options. There are no default
// parameters: set m, k and e (via M, K, Eps or WithParams) or Run/Seq fail
// validation. The algorithm defaults to CuTS* — the paper's fastest — with
// the automatic δ/λ guidelines; the run is serial unless WithWorkers says
// otherwise.
func NewQuery(opts ...Option) *Query {
	q := &Query{variant: VariantCuTSStar}
	for _, o := range opts {
		o(q)
	}
	return q
}

// M sets the minimum number of objects in a convoy.
func M(m int) Option { return func(q *Query) { q.p.M = m } }

// K sets the minimum convoy lifetime in consecutive time points.
func K(k int64) Option { return func(q *Query) { q.p.K = k } }

// Eps sets the density-connection distance threshold e.
func Eps(e float64) Option { return func(q *Query) { q.p.Eps = e } }

// WithParams sets all three convoy query parameters at once.
func WithParams(p Params) Option { return func(q *Query) { q.p = p } }

// WithVariant selects a CuTS family member (the default is CuTS*),
// replacing a previously selected CMC baseline.
func WithVariant(v Variant) Option {
	return func(q *Query) { q.variant, q.useCMC = v, false }
}

// WithCMC selects the Coherent Moving Cluster baseline: a plain per-tick
// scan with no filter step. δ/λ settings are ignored.
func WithCMC() Option { return func(q *Query) { q.useCMC = true } }

// WithClusterer selects the per-tick clustering backend (nil restores
// DefaultClusterer, the paper's grid-DBSCAN). A non-default backend
// requires the CMC algorithm — the CuTS filter's pruning bounds are
// theorems about Euclidean DBSCAN over polylines, so Run/Seq reject the
// combination — and the answers then follow the backend's density notion
// (e.g. proximity-graph connectivity) instead of Euclidean DBSCAN.
func WithClusterer(c Clusterer) Option { return func(q *Query) { q.clusterer = c } }

// WithDelta overrides the automatic simplification-tolerance guideline
// (values ≤ 0 restore it).
func WithDelta(delta float64) Option { return func(q *Query) { q.delta = delta } }

// WithLambda overrides the automatic time-partition-length guideline
// (values ≤ 0 restore it).
func WithLambda(lambda int64) Option { return func(q *Query) { q.lambda = lambda } }

// WithTolerance selects the filter's tolerance mode (actual — the tighter
// default — or global, Figure 14).
func WithTolerance(t dbscan.ToleranceMode) Option { return func(q *Query) { q.tol = t } }

// WithIncremental tunes incremental per-tick clustering on the CMC scan.
// threshold > 0 sets the churn threshold: the fraction of objects that may
// move, appear or vanish in one tick before the engine abandons patching
// the previous tick's structure and rebuilds from scratch. threshold ≤ 0
// disables incremental clustering entirely (every tick runs from-scratch
// DBSCAN — the reference path).
//
// Without this option incremental clustering is on by default at
// DefaultChurnThreshold whenever it applies: the CMC algorithm with the
// default grid-DBSCAN backend. It never applies to the CuTS family (their
// clustering is over simplified polylines) or to non-default backends, and
// the CONVOY_NO_INCREMENTAL environment variable force-disables it
// process-wide. The answer set is identical with and without — only
// Stats.ClusterPassesIncremental / ObjectsReclustered and the run time
// change.
func WithIncremental(threshold float64) Option {
	return func(q *Query) {
		if threshold <= 0 {
			q.incremental = -1
		} else {
			q.incremental = threshold
		}
	}
}

// WithWorkers sets the number of goroutines every pipeline stage may use;
// ≤ 1 runs serially. The answer set is identical for every worker count.
func WithWorkers(n int) Option { return func(q *Query) { q.workers = n } }

// WithLimit stops discovery after n convoys have been delivered: Seq ends
// its iteration and Run returns only those answers, in both cases
// abandoning the remaining clustering work (≤ 0 means unlimited). Limited
// answers are served in stream order — the order convoys close in time —
// which is a prefix of the work, not of the canonically sorted Result.
func WithLimit(n int) Option { return func(q *Query) { q.limit = n } }

// WithStats directs the run's statistics (phase timings, filter counters,
// clustering passes) into st. The target is written once per Run/Seq
// completion — also after a cancelled or limit-stopped run, where
// Stats.ClusterPasses meters how much work the abort saved.
func WithStats(st *Stats) Option { return func(q *Query) { q.statsOut = st } }

// withAblation sets the paper's Section 7 ablation switches (no pruning
// step has a public builder; they exist for WithConfig and the ablation
// benchmarks).
func withAblation(noBoxPrune, noClipTime, noCandPruning bool) Option {
	return func(q *Query) {
		q.noBoxPrune, q.noClipTime, q.noCandPruning = noBoxPrune, noClipTime, noCandPruning
	}
}

// WithConfig applies a legacy Config wholesale — the bridge the old
// Run/DiscoverWith entry points use, composed purely from the public
// option builders (plus the ablation switches) so the two surfaces cannot
// drift. Config.Variant always applies (Query has no "unset" variant), so
// combine WithConfig with WithCMC only after it.
func WithConfig(cfg Config) Option {
	return func(q *Query) {
		for _, o := range []Option{
			WithVariant(cfg.Variant),
			WithDelta(cfg.Delta),
			WithLambda(cfg.Lambda),
			WithTolerance(cfg.Tolerance),
			WithWorkers(cfg.Workers),
			withAblation(cfg.NoBoxPrune, cfg.NoClipTime, cfg.NoCandidatePruning),
		} {
			o(q)
		}
	}
}

// Params returns the query's (m, k, e) parameters.
func (q *Query) Params() Params { return q.p }

// Run answers the query over the whole database and returns the canonical
// result. Cancelling ctx aborts the discovery pipeline at tick/partition/
// candidate granularity and returns ctx.Err(); with WithLimit the run
// stops early and returns the first convoys delivered (canonicalized
// among themselves).
func (q *Query) Run(ctx context.Context, db *model.DB) (Result, error) {
	if q.partitions > 1 && (q.clusterer == nil || q.clusterer.Name() == DefaultBackend) {
		return q.runPartitioned(ctx, db)
	}
	var out []Convoy
	var err error
	if q.limit > 0 {
		// A limited run is a collected stream: the canonical filter in the
		// streaming path guarantees the delivered prefix is maximal.
		err = q.stream(ctx, db, func(c Convoy) bool {
			out = append(out, c)
			return true
		})
	} else {
		err = q.collect(ctx, db, &out)
	}
	if err != nil {
		return nil, err
	}
	return Canonicalize(out), nil
}

// Seq answers the query incrementally: it returns an iterator yielding
// convoys as the scan closes them — CMC candidates the tick their chain
// dies, CuTS candidates as their refinement windows complete — instead of
// materializing the full Result first. Breaking out of the loop stops the
// underlying pipeline (in-flight clustering finishes, nothing new starts),
// so an early exit does strictly less clustering work than a full run;
// WithLimit breaks automatically after n convoys.
//
// Collecting the whole sequence yields exactly the convoys of Run, in
// stream order rather than canonical order: every yielded convoy is an
// exact maximal answer and none is yielded twice. On failure — including
// ctx cancellation — the iterator yields one final (zero Convoy, error)
// pair and stops.
func (q *Query) Seq(ctx context.Context, db *model.DB) iter.Seq2[Convoy, error] {
	return func(yield func(Convoy, error) bool) {
		broke := false
		err := q.stream(ctx, db, func(c Convoy) bool {
			if !yield(c, nil) {
				broke = true
				return false
			}
			return true
		})
		if err != nil && !broke {
			yield(Convoy{}, err)
		}
	}
}

// run is the shared execution core behind Run and Seq. raw selects the
// emission mode: raw emissions (batch collection, canonicalized by the
// caller at the end) versus canonical streaming (each emitted convoy is
// final — see canonFilter). emit receives convoys one at a time and
// returns false to stop the pipeline.
func (q *Query) run(ctx context.Context, db *model.DB, raw bool, emit func(Convoy) bool) error {
	st := Stats{Variant: q.variant, Workers: q.workers}
	if st.Workers < 1 {
		st.Workers = 1
	}
	var meter scanMeter
	defer func() {
		if q.statsOut != nil {
			st.ClusterPasses = atomic.LoadInt64(&meter.passes)
			st.ClusterPassesIncremental = atomic.LoadInt64(&meter.incremental)
			st.ClusterPassesFull = st.ClusterPasses - st.ClusterPassesIncremental
			st.ObjectsReclustered = atomic.LoadInt64(&meter.reclustered)
			*q.statsOut = st
		}
	}()
	if err := q.p.Validate(); err != nil {
		return err
	}
	cl := q.clusterer
	if cl == nil {
		cl = DefaultClusterer
	}
	if !q.useCMC && cl.Name() != DefaultBackend {
		return fmt.Errorf("core: clusterer %q requires the CMC algorithm (the CuTS filter bounds are DBSCAN-specific); add WithCMC", cl.Name())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// The "run" span is the discovery pipeline's root: its children are
	// the stage spans ("scan" for CMC; "simplify"/"filter"/"refine" for
	// the CuTS family), which is exactly the stage set an ?explain=true
	// breakdown reports. With no sampled trace in ctx this is a nil span
	// and every annotation below is a free no-op.
	ctx, sp := trace.StartSpan(ctx, "run")
	algo := "cmc"
	if !q.useCMC {
		algo = q.variant.String()
	}
	sp.Str("algo", algo).
		Int("m", int64(q.p.M)).Int("k", q.p.K).Float("e", q.p.Eps).
		Int("workers", int64(st.Workers))
	if cl.Name() != DefaultBackend {
		sp.Str("clusterer", cl.Name())
	}
	if q.limit > 0 {
		sp.Int("limit", int64(q.limit))
	}
	defer func() {
		sp.Int("cluster_passes", atomic.LoadInt64(&meter.passes))
		sp.End()
	}()
	if q.useCMC {
		return q.runCMC(ctx, db, cl, raw, &meter, emit)
	}
	return q.runCuTS(ctx, db, raw, &st, &meter.passes, emit)
}

// stream executes the query with canonical streaming emissions, applying
// the result limit.
func (q *Query) stream(ctx context.Context, db *model.DB, emit func(Convoy) bool) error {
	delivered := 0
	return q.run(ctx, db, false, func(c Convoy) bool {
		if !emit(c) {
			return false
		}
		delivered++
		return q.limit <= 0 || delivered < q.limit
	})
}

// collect executes the query with raw emissions appended to out — the
// batch path, answer-for-answer identical to the pre-Query algorithms.
func (q *Query) collect(ctx context.Context, db *model.DB, out *[]Convoy) error {
	return q.run(ctx, db, true, func(c Convoy) bool {
		*out = append(*out, c)
		return true
	})
}

// runCMC scans the whole time domain with the CMC algorithm, clustering
// each tick with cl, pushing closed convoys through the chosen emission
// mode.
func (q *Query) runCMC(ctx context.Context, db *model.DB, cl Clusterer, raw bool, meter *scanMeter, emit func(Convoy) bool) error {
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil
	}
	incThreshold := q.incrementalThreshold(cl)
	if incThreshold > 0 && q.workers > 1 && !raw {
		// Streaming emissions promise a bounded pass overrun when the
		// consumer breaks early (the Seq early-stop/cancellation bounds).
		// The per-tick pipeline keeps that bound; the chunked incremental
		// scan cannot — each chunk's worker clusters its whole contiguous
		// range ahead of the consumer. Parallel streaming therefore stays
		// on the from-scratch pipeline; batch collection (which never
		// stops early) takes the chunked incremental path, and serial
		// scans are always incremental.
		incThreshold = 0
	}
	ctx, sp := trace.StartSpan(ctx, "scan")
	sp.Int("ticks", int64(hi-lo)+1)
	if incThreshold > 0 {
		sp.Str("incremental", "true")
	} else {
		sp.Str("incremental", "false")
	}
	defer func() {
		sp.Int("objects_reclustered", atomic.LoadInt64(&meter.reclustered))
		sp.End()
	}()
	sink := emitBatches(raw, emit)
	return cmcScan(ctx, db, cl, q.p, lo, hi, nil, q.workers, incThreshold, meter, sink)
}

// emitBatches adapts a per-convoy emit to cmcScan's per-tick batch
// emissions. In raw mode batches pass through unfiltered; in streaming
// mode each batch is reduced by a canonFilter first, so every convoy
// handed to emit is final (maximal, never repeated).
func emitBatches(raw bool, emit func(Convoy) bool) func([]Convoy) bool {
	var f canonFilter
	return func(batch []Convoy) bool {
		if !raw {
			batch = f.reduce(batch)
		}
		for _, c := range batch {
			if !emit(c) {
				return false
			}
		}
		return true
	}
}

// runCuTS executes the filter-refinement pipeline: simplify (cancellable
// per trajectory), filter (cancellable per λ-partition), then refinement
// (cancellable per candidate). In streaming mode candidates are refined in
// ascending window-start order and discovered convoys are released as soon
// as no unprocessed candidate window could still dominate them — the
// start-watermark argument documented on flushReady.
func (q *Query) runCuTS(ctx context.Context, db *model.DB, raw bool, st *Stats, passes *int64, emit func(Convoy) bool) error {
	delta := q.delta
	if delta <= 0 {
		delta = ComputeDelta(db, q.p.Eps)
	}
	st.Delta = delta

	t0 := time.Now()
	sctx, ssp := trace.StartSpan(ctx, "simplify")
	ssp.Float("delta", delta)
	sts, err := simplify.SimplifyAllWorkers(sctx, db, delta, q.variant.SimplifyMethod(), q.workers)
	st.SimplifyTime = time.Since(t0)
	if err != nil {
		ssp.End()
		return err
	}
	for _, s := range sts {
		st.VertexKept += s.Len()
		st.VertexTotal += s.Orig.Len()
	}
	ssp.Int("vertex_kept", int64(st.VertexKept)).Int("vertex_total", int64(st.VertexTotal))
	ssp.End()

	lambda := q.lambda
	if lambda <= 0 {
		lambda = ComputeLambda(db, sts, q.p.K)
	}
	st.Lambda = lambda
	if lo, hi, ok := db.TimeRange(); ok {
		span := int64(hi-lo) + 1
		st.NumPartitions = int((span + lambda - 1) / lambda)
	}

	t1 := time.Now()
	fctx, fsp := trace.StartSpan(ctx, "filter")
	fsp.Int("lambda", lambda).Int("partitions", int64(st.NumPartitions))
	cands, err := filterScan(fctx, db, q.p, sts, FilterConfig{
		Lambda:             lambda,
		Bound:              q.variant.Bound(),
		Tolerance:          q.tol,
		Delta:              delta,
		NoBoxPrune:         q.noBoxPrune,
		NoClipTime:         q.noClipTime,
		NoCandidatePruning: q.noCandPruning,
		Workers:            q.workers,
	}, passes)
	st.FilterTime = time.Since(t1)
	if err != nil {
		fsp.End()
		return err
	}
	st.NumCandidates = len(cands)
	for _, c := range cands {
		st.RefineUnits += c.RefinementUnits()
	}
	fsp.Int("candidates", int64(st.NumCandidates))
	fsp.End()

	t2 := time.Now()
	rctx, rsp := trace.StartSpan(ctx, "refine")
	rsp.Int("candidates", int64(st.NumCandidates)).Float("refine_units", st.RefineUnits)
	defer rsp.End()
	defer func() { st.RefineTime = time.Since(t2) }()
	if raw {
		return refineScan(rctx, db, q.p, cands, q.workers, passes, func(_ int, raw []Convoy) bool {
			for _, c := range raw {
				if !emit(c) {
					return false
				}
			}
			return true
		})
	}
	return q.refineStreaming(rctx, db, cands, passes, emit)
}

// refineStreaming refines candidates in ascending window-start order and
// streams each discovered convoy the moment it becomes final.
//
// Why this is sound: every convoy discovered by refining candidate c lies
// inside c's window, so its start is ≥ c.Start. A convoy v can therefore
// only be dominated by output of candidates whose Start is ≤ v.Start.
// Processing candidates in ascending Start order, once the next unrefined
// candidate's Start exceeds v.Start, every potential dominator of v has
// already been produced — v is final and safe to release. The canonFilter
// keeps the released set maximal and duplicate-free, so collecting the
// stream equals the canonical batch answer.
func (q *Query) refineStreaming(ctx context.Context, db *model.DB, cands []Candidate, passes *int64, emit func(Convoy) bool) error {
	ordered := make([]Candidate, len(cands))
	copy(ordered, cands)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].End < ordered[j].End
	})

	var f canonFilter
	var pending []Convoy
	flushReady := func(watermark model.Tick, all bool) bool {
		var ready, still []Convoy
		for _, c := range pending {
			if all || c.Start < watermark {
				ready = append(ready, c)
			} else {
				still = append(still, c)
			}
		}
		pending = still
		for _, c := range f.reduce(ready) {
			if !emit(c) {
				return false
			}
		}
		return true
	}

	stopped := false
	err := refineScan(ctx, db, q.p, ordered, q.workers, passes, func(i int, raw []Convoy) bool {
		pending = append(pending, raw...)
		if i+1 < len(ordered) && !flushReady(ordered[i+1].Start, false) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if !stopped {
		flushReady(0, true)
	}
	return nil
}

// canonFilter turns raw convoy emissions into canonical streaming output:
// reduce canonicalizes each batch and drops convoys dominated by an
// already-released answer. Its soundness contract is that the producer
// never emits a convoy that dominates an earlier batch's survivor — true
// for the CMC tick scan (a dominator must outlive its subsets, so it
// closes at the same tick or never) and for the start-ordered refinement
// stream (see refineStreaming); the Seq ≡ Run property tests pin it down.
type canonFilter struct {
	released []Convoy
}

// reduce canonicalizes the batch against itself and the released set, and
// records the survivors as released.
func (f *canonFilter) reduce(batch []Convoy) []Convoy {
	if len(batch) == 0 {
		return nil
	}
	canon := Canonicalize(batch)
	out := canon[:0]
	for _, c := range canon {
		dominated := false
		for _, y := range f.released {
			if c.DominatedBy(y) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	f.released = append(f.released, out...)
	return out
}
