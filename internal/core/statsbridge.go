package core

// Each enumerates the Stats counters under canonical snake_case metric
// names — the bridge between a discovery run's Stats and any metrics
// sink. The serving layer folds these into its per-algorithm counter
// families without hardcoding the field list, so a Stats field added here
// shows up on /metrics without touching the server.
//
// Durations are reported in seconds (the Prometheus base unit); counts
// and unit sums are reported as-is.
func (s Stats) Each(f func(name string, value float64)) {
	f("cluster_passes", float64(s.ClusterPasses))
	f("cluster_passes_full", float64(s.ClusterPassesFull))
	f("cluster_passes_incremental", float64(s.ClusterPassesIncremental))
	f("objects_reclustered", float64(s.ObjectsReclustered))
	f("partitions", float64(s.NumPartitions))
	f("candidates", float64(s.NumCandidates))
	f("refine_units", s.RefineUnits)
	f("vertex_kept", float64(s.VertexKept))
	f("vertex_total", float64(s.VertexTotal))
	f("simplify_seconds", s.SimplifyTime.Seconds())
	f("filter_seconds", s.FilterTime.Seconds())
	f("refine_seconds", s.RefineTime.Seconds())
}
