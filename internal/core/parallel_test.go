package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
)

// workerCounts is the sweep every equivalence property runs: serial, small
// pools, and everything the machine has.
func workerCounts() []int { return []int{1, 2, 4, runtime.NumCPU()} }

// The central contract of the parallel pipeline: for CMC and all three
// CuTS variants, every worker count returns exactly the serial answer.
// Run with -race this also shakes out data races between the clustering
// workers and the sequential chaining fold.
func TestPropParallelPipelineEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(1117))
	for iter := 0; iter < 10; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(10))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}

		serialCMC, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts() {
			got, err := CMCParallel(db, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(serialCMC) {
				t.Fatalf("CMC workers=%d:\nparallel = %v\nserial   = %v", workers, got, serialCMC)
			}
		}

		for _, variant := range []Variant{VariantCuTS, VariantCuTSPlus, VariantCuTSStar} {
			serial, serialStats, err := Run(db, p, Config{Variant: variant, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if serialStats.Workers != 1 {
				t.Fatalf("%v: serial stats workers = %d", variant, serialStats.Workers)
			}
			for _, workers := range workerCounts() {
				par, stats, err := Run(db, p, Config{Variant: variant, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !par.Equal(serial) {
					t.Fatalf("%v workers=%d:\nparallel = %v\nserial   = %v", variant, workers, par, serial)
				}
				if stats.Workers != workers {
					t.Errorf("%v: stats workers = %d, want %d", variant, stats.Workers, workers)
				}
				if stats.NumCandidates != serialStats.NumCandidates {
					t.Errorf("%v workers=%d: candidates = %d, serial = %d",
						variant, workers, stats.NumCandidates, serialStats.NumCandidates)
				}
			}
		}
	}
}

// The pipeline primitives themselves are unit-tested in internal/par; the
// tests here pin the discovery-level contract (parallel ≡ serial).

// Parallel refinement must return exactly the serial answer.
func TestPropParallelRefineEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	for iter := 0; iter < 15; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(10))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		serial, _, err := Run(db, p, Config{Variant: VariantCuTSStar, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			parallel, _, err := Run(db, p, Config{Variant: VariantCuTSStar, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !parallel.Equal(serial) {
				t.Fatalf("workers=%d:\nparallel = %v\nserial   = %v", workers, parallel, serial)
			}
		}
	}
}

func TestRefineParallelEdgeCases(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)},
		[]geom.Point{geom.Pt(0, 0.5), geom.Pt(1, 0.5), geom.Pt(2, 0.5), geom.Pt(3, 0.5)},
	)
	p := Params{M: 2, K: 3, Eps: 1}
	// No candidates.
	if got := RefineParallel(db, p, nil, 8); len(got) != 0 {
		t.Errorf("no candidates produced %v", got)
	}
	// One candidate with more workers than work.
	c := Candidate{Objects: ids(0, 1), Support: ids(0, 1), Start: 0, End: 3}
	got := RefineParallel(db, p, []Candidate{c}, 16)
	if len(got) != 1 || got[0].Lifetime() != 4 {
		t.Errorf("single candidate refine = %v", got)
	}
	// Duplicated candidates across many workers still canonicalize.
	got = RefineParallel(db, p, []Candidate{c, c, c, c, c}, 3)
	if len(got) != 1 {
		t.Errorf("duplicate candidates refine = %v", got)
	}
}
