package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
)

// Parallel refinement must return exactly the serial answer.
func TestPropParallelRefineEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	for iter := 0; iter < 15; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(10))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		serial, _, err := Run(db, p, Config{Variant: VariantCuTSStar, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			parallel, _, err := Run(db, p, Config{Variant: VariantCuTSStar, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !parallel.Equal(serial) {
				t.Fatalf("workers=%d:\nparallel = %v\nserial   = %v", workers, parallel, serial)
			}
		}
	}
}

func TestRefineParallelEdgeCases(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)},
		[]geom.Point{geom.Pt(0, 0.5), geom.Pt(1, 0.5), geom.Pt(2, 0.5), geom.Pt(3, 0.5)},
	)
	p := Params{M: 2, K: 3, Eps: 1}
	// No candidates.
	if got := RefineParallel(db, p, nil, 8); len(got) != 0 {
		t.Errorf("no candidates produced %v", got)
	}
	// One candidate with more workers than work.
	c := Candidate{Objects: ids(0, 1), Support: ids(0, 1), Start: 0, End: 3}
	got := RefineParallel(db, p, []Candidate{c}, 16)
	if len(got) != 1 || got[0].Lifetime() != 4 {
		t.Errorf("single candidate refine = %v", got)
	}
	// Duplicated candidates across many workers still canonicalize.
	got = RefineParallel(db, p, []Candidate{c, c, c, c, c}, 3)
	if len(got) != 1 {
		t.Errorf("duplicate candidates refine = %v", got)
	}
}
