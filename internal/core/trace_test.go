package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// traceQuery runs q under a forced trace and returns the completed trace.
func traceQuery(t *testing.T, q *Query, db *model.DB) trace.TraceJSON {
	t.Helper()
	tr := trace.NewTracer()
	ctx, root := tr.Start(context.Background(), "test", trace.Forced())
	if _, err := q.Run(ctx, db); err != nil {
		t.Fatal(err)
	}
	root.End()
	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(recent))
	}
	return recent[0]
}

// checkNesting asserts every child span starts and ends within its
// parent's interval (within eps ms for clock granularity).
func checkNesting(t *testing.T, n *trace.SpanJSON) {
	t.Helper()
	const eps = 0.5
	for _, c := range n.Children {
		if c.OffsetMS < n.OffsetMS-eps {
			t.Errorf("span %s starts (%.3f) before parent %s (%.3f)", c.Name, c.OffsetMS, n.Name, n.OffsetMS)
		}
		if c.OffsetMS+c.DurationMS > n.OffsetMS+n.DurationMS+eps {
			t.Errorf("span %s ends (%.3f) after parent %s (%.3f)",
				c.Name, c.OffsetMS+c.DurationMS, n.Name, n.OffsetMS+n.DurationMS)
		}
		checkNesting(t, c)
	}
}

// stageNames returns the names of the run span's direct children.
func stageNames(t *testing.T, tj trace.TraceJSON) []string {
	t.Helper()
	run := tj.Root.Find("run")
	if run == nil {
		t.Fatalf("no run span in trace: %+v", tj.Root)
	}
	names := make([]string, 0, len(run.Children))
	for _, c := range run.Children {
		names = append(names, c.Name)
	}
	return names
}

func TestSpanTreeWellFormed(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(7)), 24, 40)
	p := Params{M: 3, K: 3, Eps: 2.5}
	cases := []struct {
		name   string
		opts   []Option
		stages []string
	}{
		{"cmc-serial", []Option{WithCMC()}, []string{"scan"}},
		{"cmc-parallel", []Option{WithCMC(), WithWorkers(4)}, []string{"scan"}},
		{"cuts-serial", []Option{WithVariant(VariantCuTS)}, []string{"simplify", "filter", "refine"}},
		{"cuts-star-parallel", []Option{WithVariant(VariantCuTSStar), WithWorkers(4)}, []string{"simplify", "filter", "refine"}},
		{"cuts-plus-parallel", []Option{WithVariant(VariantCuTSPlus), WithWorkers(4)}, []string{"simplify", "filter", "refine"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQuery(append([]Option{WithParams(p)}, tc.opts...)...)
			tj := traceQuery(t, q, db)
			if len(tj.Orphans) != 0 {
				t.Fatalf("orphan spans: %+v", tj.Orphans)
			}
			checkNesting(t, tj.Root)
			got := stageNames(t, tj)
			if len(got) != len(tc.stages) {
				t.Fatalf("stages = %v, want %v", got, tc.stages)
			}
			for i := range got {
				if got[i] != tc.stages[i] {
					t.Fatalf("stages = %v, want %v", got, tc.stages)
				}
			}
			// Stage durations are wall-clock nested inside the run span,
			// so their sum never exceeds its duration.
			run := tj.Root.Find("run")
			var sum float64
			for _, c := range run.Children {
				sum += c.DurationMS
			}
			if sum > run.DurationMS+0.5 {
				t.Fatalf("stage sum %.3fms exceeds run %.3fms", sum, run.DurationMS)
			}
		})
	}
}

func TestSpanAttrsAnnotated(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(11)), 20, 30)
	q := NewQuery(WithParams(Params{M: 3, K: 3, Eps: 2.5}), WithVariant(VariantCuTSStar), WithWorkers(4))
	tj := traceQuery(t, q, db)
	run := tj.Root.Find("run")
	if run.Attr("algo") != "CuTS*" || run.Attr("m") != "3" || run.Attr("workers") != "4" {
		t.Fatalf("run attrs = %v", run.Attrs)
	}
	if run.Attr("cluster_passes") == "" {
		t.Fatalf("run missing cluster_passes: %v", run.Attrs)
	}
	filter := run.Find("filter")
	if filter.Attr("par_jobs") == "" || filter.Attr("par_workers") == "" {
		t.Fatalf("filter missing par fan-out attrs: %v", filter.Attrs)
	}
	if filter.Attr("lambda") == "" || filter.Attr("candidates") == "" {
		t.Fatalf("filter attrs = %v", filter.Attrs)
	}
	simp := run.Find("simplify")
	if simp.Attr("vertex_kept") == "" || simp.Attr("vertex_total") == "" {
		t.Fatalf("simplify attrs = %v", simp.Attrs)
	}
	refine := run.Find("refine")
	if refine.Attr("candidates") == "" {
		t.Fatalf("refine attrs = %v", refine.Attrs)
	}
}

func TestCMCScanMetersClusterTime(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(3)), 20, 30)
	q := NewQuery(WithParams(Params{M: 3, K: 3, Eps: 2.5}), WithCMC(), WithWorkers(4))
	tj := traceQuery(t, q, db)
	scan := tj.Root.Find("scan")
	if scan == nil {
		t.Fatal("no scan span")
	}
	for _, key := range []string{"cluster_ms", "chain_ms"} {
		if scan.Attr(key) == "" {
			t.Fatalf("scan missing %s: %v", key, scan.Attrs)
		}
	}
}

// TestUnsampledQueryAddsNoAllocs pins the zero-alloc contract of the
// instrumentation: the same query costs exactly as many allocations
// through an unsampled tracer as through a bare context, i.e. the
// tracing hooks on the hot path contribute nothing when sampling is off.
func TestUnsampledQueryAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	db := randomDB(rand.New(rand.NewSource(5)), 10, 12)
	q := NewQuery(WithParams(Params{M: 3, K: 2, Eps: 2.5}), WithCMC())
	bare := context.Background()
	tr := trace.NewTracer() // ratio 0: never samples
	traced, sp := tr.Start(context.Background(), "req")
	if sp != nil {
		t.Fatal("ratio-0 tracer sampled")
	}

	run := func(ctx context.Context) func() {
		return func() {
			if _, err := q.Run(ctx, db); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(20, run(bare))
	withTracer := testing.AllocsPerRun(20, run(traced))
	if math.Abs(withTracer-base) > 0.5 {
		t.Fatalf("unsampled tracing changes allocations: bare %.1f vs traced %.1f allocs/op", base, withTracer)
	}
}

// BenchmarkQueryNoTrace is the cross-commit allocation baseline for the
// unsampled query hot path (compare allocs/op against the pre-tracing
// baseline with benchstat).
func BenchmarkQueryNoTrace(b *testing.B) {
	db := randomDB(rand.New(rand.NewSource(5)), 16, 24)
	q := NewQuery(WithParams(Params{M: 3, K: 2, Eps: 2.5}), WithCMC())
	tr := trace.NewTracer()
	ctx, _ := tr.Start(context.Background(), "req") // unsampled: ctx unchanged
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(ctx, db); err != nil {
			b.Fatal(err)
		}
	}
}
