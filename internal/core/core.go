package core
