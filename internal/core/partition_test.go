package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// TestPartitionWindowsInvariants pins the geometric contract behind the
// merge's exactness: the windows cover the domain, consecutive windows
// overlap by exactly k−1 ticks, and every k consecutive ticks lie entirely
// inside some window.
func TestPartitionWindowsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		lo := model.Tick(rng.Intn(40) - 20)
		span := int64(1 + rng.Intn(60))
		hi := lo + model.Tick(span) - 1
		k := int64(1 + rng.Intn(12))
		n := 1 + rng.Intn(9)
		ws := PartitionWindows(lo, hi, k, n)
		if len(ws) == 0 {
			t.Fatalf("no windows for [%d,%d] k=%d n=%d", lo, hi, k, n)
		}
		if len(ws) > n {
			t.Fatalf("[%d,%d] k=%d n=%d: %d windows > n", lo, hi, k, n, len(ws))
		}
		if ws[0].Lo != lo || ws[len(ws)-1].Hi != hi {
			t.Fatalf("[%d,%d] k=%d n=%d: windows %v do not span the domain", lo, hi, k, n, ws)
		}
		for i, w := range ws {
			if w.Hi < w.Lo {
				t.Fatalf("inverted window %v", w)
			}
			if i > 0 {
				overlap := int64(ws[i-1].Hi-w.Lo) + 1
				if len(ws) > 1 && i < len(ws)-1 && overlap != k-1 {
					t.Fatalf("[%d,%d] k=%d n=%d: windows %d/%d overlap %d, want %d", lo, hi, k, n, i-1, i, overlap, k-1)
				}
				if overlap < k-1 {
					t.Fatalf("[%d,%d] k=%d n=%d: windows %d/%d overlap %d < k-1", lo, hi, k, n, i-1, i, overlap)
				}
			}
		}
		// Every k-tick run of the domain fits inside one window.
		for s := lo; s+model.Tick(k)-1 <= hi; s++ {
			ok := false
			for _, w := range ws {
				if s >= w.Lo && s+model.Tick(k)-1 <= w.Hi {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("[%d,%d] k=%d n=%d: k-run starting at %d not inside any of %v", lo, hi, k, n, s, ws)
			}
		}
	}
}

// TestSliceTimeInterpolates pins the interpolation-aware slicing: a window
// boundary falling inside a sampling gap materializes the virtual location,
// so the sliced trajectory agrees with the original at every in-window tick.
func TestSliceTimeInterpolates(t *testing.T) {
	tr, err := model.NewTrajectory("a", []model.Sample{
		{T: 0, P: geom.Pt(0, 0)},
		{T: 10, P: geom.Pt(10, 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := model.NewDB()
	db.Add(tr)
	sliced, ids := SliceTime(db, 3, 7)
	if sliced.Len() != 1 || len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("slice: %d objects, ids %v", sliced.Len(), ids)
	}
	got := sliced.Traj(0)
	if got.Start() != 3 || got.End() != 7 {
		t.Fatalf("sliced span [%d,%d], want [3,7]", got.Start(), got.End())
	}
	for tk := model.Tick(3); tk <= 7; tk++ {
		want, _ := tr.LocationAt(tk)
		have, ok := got.LocationAt(tk)
		if !ok || have != want {
			t.Fatalf("tick %d: sliced %v (ok=%v), want %v", tk, have, ok, want)
		}
	}
	// An object entirely outside the window is dropped.
	if s, ids := SliceTime(db, 20, 30); s.Len() != 0 || len(ids) != 0 {
		t.Fatalf("out-of-window slice kept %d objects", s.Len())
	}
}

// convoyDB builds a randomized database with engineered convoy structure:
// objects joining and leaving shared anchors, sampling gaps, staggered
// lifespans — the adversarial inputs for the merged ≡ single-pass property.
func convoyDB(t *testing.T, rng *rand.Rand) *model.DB {
	t.Helper()
	const (
		objects = 8
		ticks   = 36
	)
	// Two anchors wander along precomputed paths shared by every follower;
	// each object follows an anchor for random stretches or walks alone.
	paths := make([][2]geom.Point, ticks+1)
	a := [2]geom.Point{geom.Pt(10, 10), geom.Pt(60, 60)}
	for tk := range paths {
		paths[tk] = a
		for i := range a {
			a[i] = geom.Pt(a[i].X+rng.Float64()-0.5, a[i].Y+rng.Float64()-0.5)
		}
	}
	db := model.NewDB()
	for o := 0; o < objects; o++ {
		start := model.Tick(rng.Intn(8))
		end := model.Tick(ticks - rng.Intn(8))
		pos := geom.Pt(rng.Float64()*80, rng.Float64()*80)
		mode := rng.Intn(3) // 0,1: follow anchor; 2: alone
		var samples []model.Sample
		for tk := start; tk <= end; tk++ {
			if rng.Float64() < 0.1 {
				mode = rng.Intn(3)
			}
			switch mode {
			case 0, 1:
				an := paths[tk][mode]
				pos = geom.Pt(an.X+rng.Float64()*2-1, an.Y+rng.Float64()*2-1)
			default:
				pos = geom.Pt(pos.X+rng.Float64()*2-1, pos.Y+rng.Float64()*2-1)
			}
			// Sampling gaps: skip some interior ticks (first and last kept so
			// the lifespan is exact).
			if tk != start && tk != end && rng.Float64() < 0.15 {
				continue
			}
			samples = append(samples, model.Sample{T: tk, P: pos})
		}
		tr, err := model.NewTrajectory(fmt.Sprintf("o%d", o), samples)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(tr)
	}
	return db
}

// TestPartitionedEquivalence is the acceptance property test: the
// partitioned plan returns exactly the single-pass answer for every
// algorithm variant, partition count and worker count. Run under -race it
// also exercises the parallel per-partition mining.
func TestPartitionedEquivalence(t *testing.T) {
	p := Params{M: 2, K: 3, Eps: 4}
	algos := []struct {
		name string
		opt  Option
	}{
		{"cmc", WithCMC()},
		{"cuts", WithVariant(VariantCuTS)},
		{"cuts+", WithVariant(VariantCuTSPlus)},
		{"cuts*", WithVariant(VariantCuTSStar)},
	}
	for seed := int64(1); seed <= 4; seed++ {
		db := convoyDB(t, rand.New(rand.NewSource(seed)))
		for _, algo := range algos {
			want, err := NewQuery(WithParams(p), algo.opt).Run(context.Background(), db)
			if err != nil {
				t.Fatalf("seed %d %s single-pass: %v", seed, algo.name, err)
			}
			for _, parts := range []int{1, 2, 3, 7} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("seed%d/%s/p%d/w%d", seed, algo.name, parts, workers)
					got, err := NewQuery(WithParams(p), algo.opt,
						WithPartitions(parts), WithWorkers(workers)).Run(context.Background(), db)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if !got.Equal(want) {
						t.Fatalf("%s: partitioned ≠ single-pass\npartitioned:\n%v\nsingle-pass:\n%v", name, got, want)
					}
				}
			}
		}
	}
}

// boundaryDB lays out hand-checked scenarios around the window boundary at
// tick 5 (PartitionWindows(0, 9, 2, 2) = [0,5], [4,9]). Objects are glued
// (distance 0) when listed at the same anchor.
func scenarioWindows(t *testing.T, k int64) []Window {
	t.Helper()
	ws := PartitionWindows(0, 9, k, 2)
	if len(ws) != 2 || ws[0].Lo != 0 || ws[1].Hi != 9 {
		t.Fatalf("unexpected windows %v", ws)
	}
	return ws
}

// runBoth runs the query single-pass and partitioned (both via
// WithPartitions and via the explicit SliceTime/MergePartials pipeline)
// and requires all three answers to be identical.
func runBoth(t *testing.T, db *model.DB, p Params, n int) Result {
	t.Helper()
	want, err := NewQuery(WithParams(p), WithCMC()).Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewQuery(WithParams(p), WithCMC(), WithPartitions(n)).Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("WithPartitions(%d) ≠ single-pass\ngot:\n%v\nwant:\n%v", n, got, want)
	}
	// The explicit pipeline: slice, mine, remap, merge.
	lo, hi, _ := db.TimeRange()
	ws := PartitionWindows(lo, hi, p.K, n)
	parts := make([][]Convoy, len(ws))
	for i, w := range ws {
		sliced, ids := SliceTime(db, w.Lo, w.Hi)
		res, err := NewQuery(WithParams(p), WithCMC()).Run(context.Background(), sliced)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = RemapConvoys(res, ids)
	}
	merged := MergePartials(ws, parts, p)
	if !merged.Equal(want) {
		t.Fatalf("MergePartials ≠ single-pass\nmerged:\n%v\nwant:\n%v", merged, want)
	}
	return want
}

// expect asserts that the result contains a convoy with exactly these
// members and interval.
func expect(t *testing.T, res Result, members []model.ObjectID, lo, hi model.Tick) {
	t.Helper()
	want := Convoy{Objects: members, Start: lo, End: hi}
	for _, c := range res {
		if c.Equal(want) {
			return
		}
	}
	t.Fatalf("result missing %v; got:\n%v", want, res)
}

// TestMergeBoundarySpan: a convoy exactly spanning the partition boundary
// is reassembled from its two partials.
func TestMergeBoundarySpan(t *testing.T) {
	p := Params{M: 2, K: 4, Eps: 1}
	scenarioWindows(t, p.K) // sanity: [0,5],[4,9] shape (overlap k−1 = 3 → recompute)
	together := func(tk model.Tick) bool { return tk >= 3 && tk <= 8 }
	rows := make([][]geom.Point, 2)
	for o := range rows {
		row := make([]geom.Point, 10)
		for tk := 0; tk < 10; tk++ {
			if together(model.Tick(tk)) {
				row[tk] = geom.Pt(50, 50)
			} else {
				row[tk] = geom.Pt(float64(o)*100, float64(tk)*10)
			}
		}
		rows[o] = row
	}
	db := buildDB(t, 0, rows...)
	res := runBoth(t, db, p, 2)
	expect(t, res, []model.ObjectID{0, 1}, 3, 8)
}

// TestMergeThreePartitions: a convoy straddling three partitions is
// stitched through the middle window.
func TestMergeThreePartitions(t *testing.T) {
	p := Params{M: 2, K: 3, Eps: 1}
	const ticks = 12
	rows := make([][]geom.Point, 2)
	for o := range rows {
		row := make([]geom.Point, ticks)
		for tk := 0; tk < ticks; tk++ {
			if tk >= 1 && tk <= 10 {
				row[tk] = geom.Pt(5, 5)
			} else {
				row[tk] = geom.Pt(float64(o)*100, 90)
			}
		}
		rows[o] = row
	}
	db := buildDB(t, 0, rows...)
	lo, hi, _ := db.TimeRange()
	if ws := PartitionWindows(lo, hi, p.K, 3); len(ws) != 3 {
		t.Fatalf("want 3 windows, got %v", ws)
	}
	res := runBoth(t, db, p, 3)
	expect(t, res, []model.ObjectID{0, 1}, 1, 10)
}

// TestMergeLifetimeExactlyKInOverlap: convoys of lifetime exactly k that
// end (or start) exactly at the shared boundary tick are each visible in
// full to only one window — the other sees a sub-k fragment it never
// reports — and must come out exactly once.
func TestMergeLifetimeExactlyKInOverlap(t *testing.T) {
	p := Params{M: 2, K: 2, Eps: 1}
	ws := scenarioWindows(t, p.K) // [0,5],[5,9]: the overlap is tick 5 alone
	if ws[0].Hi != 5 || ws[1].Lo != 5 {
		t.Fatalf("unexpected overlap %v", ws)
	}
	rows := make([][]geom.Point, 4)
	for o := range rows {
		row := make([]geom.Point, 10)
		for tk := 0; tk < 10; tk++ {
			switch {
			case o < 2 && (tk == 4 || tk == 5): // ends at the boundary tick
				row[tk] = geom.Pt(7, 7)
			case o >= 2 && (tk == 5 || tk == 6): // starts at the boundary tick
				row[tk] = geom.Pt(30, 30)
			default:
				row[tk] = geom.Pt(float64(o)*100+300, float64(tk)*10)
			}
		}
		rows[o] = row
	}
	db := buildDB(t, 0, rows...)
	res := runBoth(t, db, p, 2)
	expect(t, res, []model.ObjectID{0, 1}, 4, 5)
	expect(t, res, []model.ObjectID{2, 3}, 5, 6)
	if len(res) != 2 {
		t.Fatalf("want exactly two convoys, got:\n%v", res)
	}
}

// TestMergeLeaveAndRejoin: an object that leaves the group exactly at the
// boundary (shrinking the convoy) and one that rejoins later must not be
// stitched across the gap; the shrunken convoy extends exactly.
func TestMergeLeaveAndRejoin(t *testing.T) {
	p := Params{M: 2, K: 2, Eps: 1}
	scenarioWindows(t, p.K) // [0,5],[4,9]
	// o0, o1 together the whole time; o2 with them only on [0,5]; o3 joins
	// the group on [2,4], leaves, and rejoins on [7,9] — two separate
	// answers that must not merge (5 and 7 are not adjacent... 4+1=5 < 7).
	rows := make([][]geom.Point, 4)
	for o := range rows {
		row := make([]geom.Point, 10)
		for tk := 0; tk < 10; tk++ {
			at := func(cond bool) geom.Point {
				if cond {
					return geom.Pt(20, 20)
				}
				return geom.Pt(float64(o)*100+200, float64(tk)*10)
			}
			switch o {
			case 0, 1:
				row[tk] = at(true)
			case 2:
				row[tk] = at(tk <= 5)
			case 3:
				row[tk] = at((tk >= 2 && tk <= 4) || tk >= 7)
			}
		}
		rows[o] = row
	}
	db := buildDB(t, 0, rows...)
	res := runBoth(t, db, p, 2)
	expect(t, res, []model.ObjectID{0, 1}, 0, 9)
	expect(t, res, []model.ObjectID{0, 1, 2}, 0, 5)
	expect(t, res, []model.ObjectID{0, 1, 2, 3}, 2, 4)
	expect(t, res, []model.ObjectID{0, 1, 3}, 7, 9)
}

// TestPartitionedCancellation: a cancelled partitioned run returns the
// context error, not a partial answer.
func TestPartitionedCancellation(t *testing.T) {
	db := convoyDB(t, rand.New(rand.NewSource(9)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewQuery(WithParams(Params{M: 2, K: 3, Eps: 4}), WithCMC(),
		WithPartitions(4), WithWorkers(2)).Run(ctx, db)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestPartitionedStats: the partitioned run aggregates sub-run statistics
// and reports the partition count.
func TestPartitionedStats(t *testing.T) {
	db := convoyDB(t, rand.New(rand.NewSource(3)))
	var st Stats
	_, err := NewQuery(WithParams(Params{M: 2, K: 3, Eps: 4}), WithCMC(),
		WithPartitions(3), WithStats(&st)).Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPartitions != 3 {
		t.Fatalf("NumPartitions = %d, want 3", st.NumPartitions)
	}
	if st.ClusterPasses == 0 {
		t.Fatal("no cluster passes recorded")
	}
}
