package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// churnWalkDB builds a database of n random walkers over [0, ticks) where
// each object moves each tick with probability moveProb (non-movers keep
// bit-identical positions — the situation the incremental engine exploits).
func churnWalkDB(t *testing.T, seed int64, n, ticks int, moveProb float64) *model.DB {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]geom.Point, n)
	for o := range rows {
		rows[o] = make([]geom.Point, ticks)
		p := geom.Pt(r.Float64()*60, r.Float64()*60)
		for i := 0; i < ticks; i++ {
			if i > 0 && r.Float64() < moveProb {
				p = geom.Pt(p.X+r.NormFloat64(), p.Y+r.NormFloat64())
			}
			rows[o][i] = p
		}
	}
	return buildDB(t, 0, rows...)
}

// TestCMCIncrementalMatchesFromScratch pins the batch acceptance property:
// the incremental CMC scan answers exactly the from-scratch scan, across
// churn rates and worker counts, while its counters prove that the
// low-churn runs actually skipped work.
func TestCMCIncrementalMatchesFromScratch(t *testing.T) {
	p := Params{M: 3, K: 5, Eps: 4}
	for _, tc := range []struct {
		name     string
		moveProb float64
	}{
		{"frozen", 0},
		{"low-churn", 0.05},
		{"high-churn", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := churnWalkDB(t, 42, 40, 160, tc.moveProb)
			for _, workers := range []int{1, 4} {
				var on, off Stats
				inc, err := NewQuery(WithParams(p), WithCMC(), WithWorkers(workers), WithStats(&on)).
					Run(context.Background(), db)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := NewQuery(WithParams(p), WithCMC(), WithWorkers(workers), WithStats(&off), WithIncremental(-1)).
					Run(context.Background(), db)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(inc, ref) {
					t.Fatalf("workers=%d: incremental answer diverged\n got %v\nwant %v", workers, inc, ref)
				}
				if off.ClusterPassesIncremental != 0 {
					t.Fatalf("workers=%d: WithIncremental(-1) still made %d incremental passes",
						workers, off.ClusterPassesIncremental)
				}
				if on.ClusterPasses != on.ClusterPassesFull+on.ClusterPassesIncremental {
					t.Fatalf("workers=%d: pass split %d+%d does not sum to %d",
						workers, on.ClusterPassesFull, on.ClusterPassesIncremental, on.ClusterPasses)
				}
				if tc.moveProb <= 0.05 && on.ClusterPassesIncremental == 0 {
					t.Fatalf("workers=%d: low churn but zero incremental passes (full=%d)",
						workers, on.ClusterPassesFull)
				}
				if tc.moveProb <= 0.05 && on.ObjectsReclustered >= off.ObjectsReclustered/2 {
					t.Fatalf("workers=%d: reclustered %d objects, from-scratch %d — no reuse",
						workers, on.ObjectsReclustered, off.ObjectsReclustered)
				}
				if tc.moveProb == 1 && workers == 1 && on.ClusterPassesIncremental != 0 {
					t.Fatalf("100%% churn must always fall back, got %d incremental passes",
						on.ClusterPassesIncremental)
				}
			}
		})
	}
}

// TestStreamerIncrementalMatchesFromScratch pins the streaming acceptance
// property: a ClusterSource with the incremental engine feeds a Monitor the
// same cluster stream as one forced onto the from-scratch path, so the
// discovered convoys are identical; LastPass proves the engine engaged.
func TestStreamerIncrementalMatchesFromScratch(t *testing.T) {
	p := Params{M: 3, K: 4, Eps: 4}
	db := churnWalkDB(t, 7, 35, 120, 0.05)

	run := func(threshold float64) (Result, *ClusterSource) {
		t.Helper()
		src, err := NewClusterSource(p.ClusterKey())
		if err != nil {
			t.Fatal(err)
		}
		if threshold <= 0 {
			src.SetIncremental(0)
		}
		mon, err := NewMonitor(p)
		if err != nil {
			t.Fatal(err)
		}
		var out []Convoy
		lo, hi, _ := db.TimeRange()
		for tk := lo; tk <= hi; tk++ {
			ids, pts := db.SnapshotAt(tk)
			batch, err := mon.AdvanceClusters(tk, src.Snapshot(ids, pts))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, batch...)
		}
		out = append(out, mon.Close()...)
		return Canonicalize(out), src
	}

	got, on := run(DefaultChurnThreshold)
	want, off := run(0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental streaming diverged\n got %v\nwant %v", got, want)
	}
	if IncrementalDisabled() {
		t.Skipf("%s set: incremental path unavailable", NoIncrementalEnv)
	}
	if !on.Incremental() || off.Incremental() {
		t.Fatalf("Incremental() = %v/%v, want true/false", on.Incremental(), off.Incremental())
	}
	if inc, _ := on.LastPass(); !inc {
		t.Fatalf("low-churn stream: last pass should have been incremental")
	}
	if inc, recl := off.LastPass(); inc || recl == 0 {
		t.Fatalf("from-scratch source: LastPass = (%v, %d), want (false, population)", inc, recl)
	}
	// Batch ≡ streaming closes the loop: both incremental paths answer the
	// from-scratch CMC result.
	batch, err := NewQuery(WithParams(p), WithCMC()).Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("streaming and batch answers diverged\n got %v\nwant %v", got, batch)
	}
}

// TestSetIncrementalResetsState pins the knob semantics: toggling drops the
// engine state (next pass is full), and switching on is a no-op for
// non-default backends.
func TestSetIncrementalResetsState(t *testing.T) {
	if IncrementalDisabled() {
		t.Skipf("%s set", NoIncrementalEnv)
	}
	src, err := NewClusterSource(ClusterKey{Eps: 2, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := []model.ObjectID{0, 1, 2}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	src.Snapshot(ids, pts)
	src.Snapshot(ids, pts)
	if inc, recl := src.LastPass(); !inc || recl != 0 {
		t.Fatalf("identical tick: LastPass = (%v, %d), want (true, 0)", inc, recl)
	}
	src.SetIncremental(0.5)
	src.Snapshot(ids, pts)
	if inc, _ := src.LastPass(); inc {
		t.Fatalf("pass right after SetIncremental must be full (fresh engine)")
	}
	src.SetIncremental(0)
	if src.Incremental() {
		t.Fatalf("SetIncremental(0) must disable the engine")
	}
	if got := src.Passes(); got != 3 {
		t.Fatalf("Passes = %d, want 3 (counting both modes)", got)
	}
}
