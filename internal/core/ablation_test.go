package core

import (
	"math/rand"
	"testing"
)

// The ablation switches (box pruning, CuTS* clipping, dominated-candidate
// pruning) are pure performance levers: flipping any combination of them
// must leave the answer set unchanged. Randomized equivalence test.
func TestPropAblationSwitchesPreserveAnswers(t *testing.T) {
	r := rand.New(rand.NewSource(512))
	for iter := 0; iter < 15; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(10))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		want, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		delta := 0.2 + r.Float64()*2
		lambda := int64(1 + r.Intn(5))
		for _, variant := range []Variant{VariantCuTS, VariantCuTSStar} {
			for _, cfg := range []Config{
				{Variant: variant, Delta: delta, Lambda: lambda, NoBoxPrune: true},
				{Variant: variant, Delta: delta, Lambda: lambda, NoClipTime: true},
				{Variant: variant, Delta: delta, Lambda: lambda, NoCandidatePruning: true},
				{Variant: variant, Delta: delta, Lambda: lambda,
					NoBoxPrune: true, NoClipTime: true, NoCandidatePruning: true},
			} {
				got, _, err := Run(db, p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("iter %d %v cfg %+v:\ngot  = %v\nwant = %v",
						iter, variant, cfg, got, want)
				}
			}
		}
	}
}

// Candidate pruning must only ever shrink the candidate set, and the kept
// candidates must cover the dropped ones.
func TestCandidatePruningCoversDropped(t *testing.T) {
	r := rand.New(rand.NewSource(513))
	for iter := 0; iter < 10; iter++ {
		db := randomDB(r, 4+r.Intn(4), 12+r.Intn(8))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		cfgBase := Config{Variant: VariantCuTS, Delta: 0.5, Lambda: 2}

		_, stPruned, err := Run(db, p, cfgBase)
		if err != nil {
			t.Fatal(err)
		}
		cfgOff := cfgBase
		cfgOff.NoCandidatePruning = true
		_, stRaw, err := Run(db, p, cfgOff)
		if err != nil {
			t.Fatal(err)
		}
		if stPruned.NumCandidates > stRaw.NumCandidates {
			t.Fatalf("pruning grew candidates: %d > %d", stPruned.NumCandidates, stRaw.NumCandidates)
		}
		if stPruned.RefineUnits > stRaw.RefineUnits {
			t.Fatalf("pruning grew refinement units: %g > %g", stPruned.RefineUnits, stRaw.RefineUnits)
		}
	}
}
