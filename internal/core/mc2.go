package core

import (
	"fmt"

	"repro/internal/model"
)

// MC2 — the moving-cluster baseline of Kalnis et al. used by the appendix
// accuracy study (Figure 19). A moving cluster is a sequence of snapshot
// clusters at consecutive time points whose pairwise Jaccard overlap
// |c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}| is at least θ. There is no lifetime
// constraint and membership may drift along the chain, which is exactly why
// moving clusters cannot answer convoy queries (Section 2.1): depending on
// θ they report both false positives and false negatives.
//
// To compare against convoy answers, each maximal chain is cast to a
// convoy-shaped result carrying the chain's *common* objects (the
// intersection of all snapshot clusters in the chain) and its time
// interval.

// mcChain tracks one moving cluster under construction.
type mcChain struct {
	common []model.ObjectID // intersection of the chain's clusters
	tail   []model.ObjectID // last snapshot cluster (for the θ test)
	start  model.Tick
	end    model.Tick
}

// jaccard returns |a∩b| / |a∪b| for ascending slices; 0 when both empty.
func jaccard(a, b []model.ObjectID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// MC2 discovers moving clusters with overlap threshold theta over the
// database, using the same snapshot clustering (eps = p.Eps, minPts = p.M)
// as CMC, and returns each maximal chain as a convoy-shaped answer (common
// objects, chain interval). p.K is deliberately ignored — moving clusters
// have no lifetime constraint.
func MC2(db *model.DB, p Params, theta float64) ([]Convoy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("core: MC2 theta must be in [0,1], got %g", theta)
	}
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil, nil
	}
	var out []Convoy
	emit := func(ch *mcChain) {
		if len(ch.common) == 0 {
			return
		}
		out = append(out, Convoy{Objects: ch.common, Start: ch.start, End: ch.end})
	}
	var live []*mcChain
	for t := lo; t <= hi; t++ {
		clusters := snapshotClusters(db, DefaultClusterer, p, t, nil)
		extended := make([]bool, len(clusters))
		next := make([]*mcChain, 0, len(clusters))
		index := make(map[string]int)
		add := func(ch *mcChain) {
			key := fmt.Sprintf("%s|%s", setKey(ch.common), setKey(ch.tail))
			if i, dup := index[key]; dup {
				if ch.start < next[i].start {
					next[i].start = ch.start
				}
				return
			}
			index[key] = len(next)
			next = append(next, ch)
		}
		for _, ch := range live {
			survived := false
			for ci, c := range clusters {
				if jaccard(ch.tail, c) >= theta {
					survived = true
					extended[ci] = true
					add(&mcChain{
						common: intersectSorted(ch.common, c),
						tail:   c,
						start:  ch.start,
						end:    t,
					})
				}
			}
			if !survived {
				emit(ch)
			}
		}
		for ci, c := range clusters {
			if !extended[ci] {
				add(&mcChain{common: c, tail: c, start: t, end: t})
			}
		}
		live = next
	}
	for _, ch := range live {
		emit(ch)
	}
	return out, nil
}

// AccuracyReport quantifies how well a candidate answer set matches a
// reference answer set, using the appendix's definitions:
//
//	false positives % = |Rm − Rc| / |Rm| · 100
//	false negatives % = |Rc − Rm| / |Rc| · 100
//
// where membership is exact convoy equality (objects and interval).
type AccuracyReport struct {
	Reported       int     // |Rm|
	Reference      int     // |Rc|
	FalsePositives float64 // percentage
	FalseNegatives float64 // percentage
}

// CompareAnswers computes the accuracy of the reported set against the
// reference set.
func CompareAnswers(reported []Convoy, reference Result) AccuracyReport {
	rep := AccuracyReport{Reported: len(reported), Reference: len(reference)}
	refKeys := make(map[string]struct{}, len(reference))
	for _, c := range reference {
		refKeys[convoyKey(c)] = struct{}{}
	}
	repKeys := make(map[string]struct{}, len(reported))
	fp := 0
	for _, c := range reported {
		k := convoyKey(c)
		repKeys[k] = struct{}{}
		if _, ok := refKeys[k]; !ok {
			fp++
		}
	}
	fn := 0
	for _, c := range reference {
		if _, ok := repKeys[convoyKey(c)]; !ok {
			fn++
		}
	}
	if rep.Reported > 0 {
		rep.FalsePositives = 100 * float64(fp) / float64(rep.Reported)
	}
	if rep.Reference > 0 {
		rep.FalseNegatives = 100 * float64(fn) / float64(rep.Reference)
	}
	return rep
}

func convoyKey(c Convoy) string {
	return fmt.Sprintf("%d|%d|%s", c.Start, c.End, setKey(c.Objects))
}
