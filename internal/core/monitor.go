package core

import (
	"fmt"
	"sort"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/model"
)

// The streaming engine is split into two composable stages so that many
// standing convoy queries can share one position feed:
//
//   - a ClusterSource computes the per-tick snapshot clusters at one
//     clustering key (e, m) — the DBSCAN pass, the expensive part;
//   - a Monitor consumes cluster lists and maintains the candidate chains
//     for its own (m, k) — the cheap part.
//
// DBSCAN output depends only on (e, m), never on k, so any number of
// monitors whose parameters share a ClusterKey can be fed from a single
// source: per tick, one clustering pass fans out to all of them. Streamer
// is the 1-monitor special case wiring one source to one monitor.

// ClusterKey identifies a clustering configuration: the density-connection
// distance e and the density threshold m. Monitors whose parameters share a
// key can share one ClusterSource (and thus one DBSCAN pass per tick).
type ClusterKey struct {
	Eps float64
	M   int
}

// ClusterKey returns the clustering key of the parameters: the (e, m) part
// that determines the snapshot clusters, independent of the lifetime k.
func (p Params) ClusterKey() ClusterKey { return ClusterKey{Eps: p.Eps, M: p.M} }

// Validate reports whether the key is usable (same bounds as Params).
func (k ClusterKey) Validate() error {
	return Params{M: k.M, K: 1, Eps: k.Eps}.Validate()
}

// ClusterSource computes the maximal density-connected sets of one pushed
// snapshot at a fixed clustering key, counting how many clustering passes
// it has run. It is the per-tick cluster stage of the streaming engine; it
// holds no cross-tick state, so one source can drive any number of
// Monitors. Not safe for concurrent use.
type ClusterSource struct {
	key    ClusterKey
	passes int64
}

// NewClusterSource validates the key and returns a source with a zeroed
// pass counter.
func NewClusterSource(key ClusterKey) (*ClusterSource, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	return &ClusterSource{key: key}, nil
}

// Key returns the source's clustering key.
func (s *ClusterSource) Key() ClusterKey { return s.key }

// Passes returns the number of Snapshot calls so far — the clustering-pass
// counter the multi-monitor sharing tests and the monitors benchmark rely
// on.
func (s *ClusterSource) Passes() int64 { return s.passes }

// Snapshot clusters one pushed tick: the object IDs alive at the tick and
// their positions (parallel slices). IDs need not be sorted; cluster member
// lists come out ascending. The caller is responsible for snapshot
// validation (equal slice lengths, no duplicate IDs — see FirstDuplicateID,
// finite coordinates); Streamer.Advance and the serve feed handler both do
// this before clustering.
func (s *ClusterSource) Snapshot(ids []model.ObjectID, pts []geom.Point) [][]model.ObjectID {
	s.passes++
	if len(ids) < s.key.M {
		return nil
	}
	idxClusters := dbscan.SnapshotClustersMaximal(pts, s.key.Eps, s.key.M)
	clusters := make([][]model.ObjectID, len(idxClusters))
	for ci, c := range idxClusters {
		objs := make([]model.ObjectID, len(c))
		for i, idx := range c {
			objs[i] = ids[idx]
		}
		sort.Ints(objs)
		clusters[ci] = objs
	}
	return clusters
}

// Monitor maintains one standing convoy query over a stream of per-tick
// cluster lists: push the snapshot clusters for each tick with
// AdvanceClusters, receive convoys the moment they close, flush the rest
// with Close. It is the chaining stage of the streaming engine — it never
// clusters anything itself, so feeding N monitors that share a ClusterKey
// from one ClusterSource costs one DBSCAN pass per tick, not N.
//
// The clusters pushed at each tick must be the snapshot clusters of the
// monitored feed computed at the monitor's own ClusterKey (Params.M and
// Params.Eps); feeding clusters from a different key silently answers that
// key's query instead. Emission semantics are exactly the Streamer's: raw
// exact answers that may include non-maximal duplicates across emissions
// (canonicalize the union for the batch-equal answer).
type Monitor struct {
	p        Params
	live     []*candidate
	lastTick model.Tick
	started  bool
	closed   bool
}

// NewMonitor validates the parameters and returns an empty monitor.
func NewMonitor(p Params) (*Monitor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{p: p}, nil
}

// Params returns the monitor's convoy query parameters.
func (m *Monitor) Params() Params { return m.p }

// Live returns the number of open convoy candidates.
func (m *Monitor) Live() int { return len(m.live) }

// LastTick returns the most recently advanced tick; valid after the first
// AdvanceClusters.
func (m *Monitor) LastTick() (model.Tick, bool) { return m.lastTick, m.started }

// AdvanceClusters pushes the snapshot clusters for tick t. Ticks must
// advance strictly; gaps are allowed and break convoy consecutiveness
// (every live candidate dies at the last seen tick, like a tick with no
// clusters). It returns the convoys that closed at this tick: groups whose
// togetherness ended at t−1 (or earlier, for a tick gap) with lifetime ≥ k.
func (m *Monitor) AdvanceClusters(t model.Tick, clusters [][]model.ObjectID) ([]Convoy, error) {
	if m.closed {
		return nil, fmt.Errorf("core: AdvanceClusters on closed Monitor")
	}
	if m.started && t <= m.lastTick {
		return nil, fmt.Errorf("core: AdvanceClusters: tick %d not after %d", t, m.lastTick)
	}
	var out []Convoy
	if m.started && t > m.lastTick+1 {
		// Tick gap: every live candidate dies at lastTick.
		m.live = chainStep(m.live, nil, m.p.M, m.p.K, t, t, false, &out, nil)
	}
	m.lastTick, m.started = t, true
	m.live = chainStep(m.live, clusters, m.p.M, m.p.K, t, t, false, &out, nil)
	sortResult(out)
	return out, nil
}

// Close ends the stream and returns the convoys still open at the last
// advanced tick (lifetime ≥ k). Further AdvanceClusters calls fail.
func (m *Monitor) Close() []Convoy {
	if m.closed {
		return nil
	}
	m.closed = true
	var out []Convoy
	flushCandidates(m.live, m.p.K, &out, nil)
	m.live = nil
	sortResult(out)
	return out
}

// FirstDuplicateID reports a repeated object ID in a pushed snapshot — the
// shared validation used by Streamer.Advance and the serve feed handler
// (a repeated ID would cluster with itself and corrupt candidate sets,
// emitting convoys like ⟨o1,o1,o2⟩). The common case — IDs already
// ascending, as database replays produce — is checked with a linear scan
// and no allocation; unsorted snapshots fall back to a set.
func FirstDuplicateID(ids []model.ObjectID) (model.ObjectID, bool) {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return ids[i], true
		}
		if ids[i] < ids[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return 0, false
	}
	seen := make(map[model.ObjectID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return id, true
		}
		seen[id] = struct{}{}
	}
	return 0, false
}
