package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/increment"
	"repro/internal/model"
)

// The streaming engine is split into two composable stages so that many
// standing convoy queries can share one position feed:
//
//   - a ClusterSource computes the per-tick snapshot clusters at one
//     clustering key (e, m) — the DBSCAN pass, the expensive part;
//   - a Monitor consumes cluster lists and maintains the candidate chains
//     for its own (m, k) — the cheap part.
//
// DBSCAN output depends only on (e, m), never on k, so any number of
// monitors whose parameters share a ClusterKey can be fed from a single
// source: per tick, one clustering pass fans out to all of them. Streamer
// is the 1-monitor special case wiring one source to one monitor.

// ClusterKey identifies a clustering configuration: the density-connection
// distance e, the density threshold m, and the clustering backend. Monitors
// whose parameters share a key can share one ClusterSource (and thus one
// clustering pass per tick); distinct backends never share, even at equal
// (e, m) — their clusters mean different things.
type ClusterKey struct {
	Eps float64
	M   int
	// Backend names the Clusterer computing the clusters; empty means
	// DefaultBackend (grid-DBSCAN), so zero-value keys and keys from before
	// pluggable backends keep their meaning. Compare keys for sharing via
	// Canonical (or with both sides' BackendName) so the two spellings of
	// the default never split a group.
	Backend string
}

// ClusterKey returns the clustering key of the parameters: the (e, m) part
// that determines the snapshot clusters, independent of the lifetime k. The
// backend is left empty (= DefaultBackend).
func (p Params) ClusterKey() ClusterKey { return ClusterKey{Eps: p.Eps, M: p.M} }

// BackendName returns the key's backend with the empty spelling resolved to
// DefaultBackend.
func (k ClusterKey) BackendName() string {
	if k.Backend == "" {
		return DefaultBackend
	}
	return k.Backend
}

// Canonical returns the key with the default backend normalized to the
// empty spelling, so canonical keys are comparable with == (map keys,
// sharing checks) regardless of how the default was written.
func (k ClusterKey) Canonical() ClusterKey {
	if k.Backend == DefaultBackend {
		k.Backend = ""
	}
	return k
}

// Validate reports whether the key is usable (same bounds as Params; any
// backend name is allowed — resolution is the caller's concern).
func (k ClusterKey) Validate() error {
	return Params{M: k.M, K: 1, Eps: k.Eps}.Validate()
}

// ClusterSource computes the per-tick clusters of one pushed snapshot at a
// fixed clustering key with a fixed Clusterer, counting how many clustering
// passes it has run. It is the per-tick cluster stage of the streaming
// engine: its cluster output per tick is a pure function of that tick's
// snapshot, so one source can drive any number of Monitors. Not safe for
// concurrent use.
//
// As an internal acceleration the source may carry an incremental engine
// (on by default for the grid-DBSCAN backend, see SetIncremental) that
// reuses the previous tick's grid and neighborhood structure — cross-tick
// state that changes how fast an answer is computed, never what it is. The
// Clusterer itself stays stateless.
type ClusterSource struct {
	key    ClusterKey
	c      Clusterer
	passes int64

	// eng, when non-nil, answers Cluster calls incrementally; lastInc and
	// lastRecl describe the most recent pass for the feed-level metrics.
	eng      *increment.Engine
	lastInc  bool
	lastRecl int
}

// NewClusterSource validates the key and returns a source with a zeroed
// pass counter, clustering with the backend the key names (only the
// built-in DefaultBackend can be resolved by name here; other backends go
// through NewClusterSourceWith).
func NewClusterSource(key ClusterKey) (*ClusterSource, error) {
	if key.BackendName() != DefaultBackend {
		return nil, fmt.Errorf("core: NewClusterSource: unknown backend %q (pass the Clusterer to NewClusterSourceWith)", key.Backend)
	}
	return NewClusterSourceWith(key, nil)
}

// NewClusterSourceWith validates the key and returns a source clustering
// with c (nil means DefaultClusterer). A key naming a different backend
// than c is rejected — the key is the sharing identity, so it must tell
// the truth about who computes the clusters. The stored key is canonical.
func NewClusterSourceWith(key ClusterKey, c Clusterer) (*ClusterSource, error) {
	if c == nil {
		c = DefaultClusterer
	}
	if err := key.Validate(); err != nil {
		return nil, err
	}
	if key.BackendName() != c.Name() {
		return nil, fmt.Errorf("core: NewClusterSourceWith: key backend %q does not match clusterer %q", key.BackendName(), c.Name())
	}
	key.Backend = c.Name()
	s := &ClusterSource{key: key.Canonical(), c: c}
	if _, ok := c.(DBSCANClusterer); ok && !IncrementalDisabled() {
		s.eng = increment.New(s.key.Eps, s.key.M, DefaultChurnThreshold)
	}
	return s, nil
}

// Key returns the source's clustering key (canonical).
func (s *ClusterSource) Key() ClusterKey { return s.key }

// Clusterer returns the backend computing the source's clusters.
func (s *ClusterSource) Clusterer() Clusterer { return s.c }

// Passes returns the number of clustering passes so far — the counter the
// multi-monitor sharing tests and the monitors benchmark rely on.
func (s *ClusterSource) Passes() int64 { return s.passes }

// Incremental reports whether the source currently clusters through the
// incremental engine.
func (s *ClusterSource) Incremental() bool { return s.eng != nil }

// SetIncremental switches incremental clustering on (threshold > 0, the
// churn threshold above which a tick rebuilds from scratch) or off
// (threshold ≤ 0 — every tick runs the from-scratch pass). Switching on is
// a no-op for non-default backends and under the CONVOY_NO_INCREMENTAL
// kill switch; switching either way drops any accumulated cross-tick
// state, so the next pass is a full one. The cluster answers are identical
// in both modes.
func (s *ClusterSource) SetIncremental(threshold float64) {
	if threshold <= 0 {
		s.eng = nil
		return
	}
	if _, ok := s.c.(DBSCANClusterer); !ok || IncrementalDisabled() {
		return
	}
	s.eng = increment.New(s.key.Eps, s.key.M, threshold)
}

// LastPass describes the source's most recent clustering pass: whether it
// was answered incrementally and how many objects were actually
// re-clustered (the full snapshot on a from-scratch pass). It is the hook
// the serve feed loop uses to split its pass counters.
func (s *ClusterSource) LastPass() (incremental bool, reclustered int) {
	return s.lastInc, s.lastRecl
}

// Cluster runs one clustering pass over a pushed tick snapshot. IDs need
// not be sorted; cluster member lists come out ascending (the Clusterer
// contract). The caller is responsible for snapshot validation (parallel
// IDs/Pts slices, no duplicate IDs — see FirstDuplicateID, finite
// coordinates, valid edges); Streamer.Advance and the serve feed handler
// both do this before clustering.
func (s *ClusterSource) Cluster(snap TickSnapshot) [][]model.ObjectID {
	s.passes++
	if s.eng != nil {
		out, pass := s.eng.Tick(snap.IDs, snap.Pts)
		s.lastInc, s.lastRecl = !pass.Full, pass.Reclustered
		return out
	}
	s.lastInc, s.lastRecl = false, len(snap.IDs)
	return s.c.Clusters(s.key, snap)
}

// Snapshot clusters the object IDs alive at one tick and their positions
// (parallel slices) — the positions-only special case of Cluster, for
// geometric backends.
func (s *ClusterSource) Snapshot(ids []model.ObjectID, pts []geom.Point) [][]model.ObjectID {
	return s.Cluster(TickSnapshot{IDs: ids, Pts: pts})
}

// Monitor maintains one standing convoy query over a stream of per-tick
// cluster lists: push the snapshot clusters for each tick with
// AdvanceClusters, receive convoys the moment they close, flush the rest
// with Close. It is the chaining stage of the streaming engine — it never
// clusters anything itself, so feeding N monitors that share a ClusterKey
// from one ClusterSource costs one DBSCAN pass per tick, not N.
//
// The clusters pushed at each tick must be the snapshot clusters of the
// monitored feed computed at the monitor's own ClusterKey (Params.M and
// Params.Eps); feeding clusters from a different key silently answers that
// key's query instead. Emission semantics are exactly the Streamer's: raw
// exact answers that may include non-maximal duplicates across emissions
// (canonicalize the union for the batch-equal answer).
type Monitor struct {
	p        Params
	live     []*candidate
	lastTick model.Tick
	started  bool
	closed   bool
}

// NewMonitor validates the parameters and returns an empty monitor.
func NewMonitor(p Params) (*Monitor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{p: p}, nil
}

// Params returns the monitor's convoy query parameters.
func (m *Monitor) Params() Params { return m.p }

// Live returns the number of open convoy candidates.
func (m *Monitor) Live() int { return len(m.live) }

// LastTick returns the most recently advanced tick; valid after the first
// AdvanceClusters.
func (m *Monitor) LastTick() (model.Tick, bool) { return m.lastTick, m.started }

// AdvanceClusters pushes the snapshot clusters for tick t. Ticks must
// advance strictly; gaps are allowed and break convoy consecutiveness
// (every live candidate dies at the last seen tick, like a tick with no
// clusters). It returns the convoys that closed at this tick: groups whose
// togetherness ended at t−1 (or earlier, for a tick gap) with lifetime ≥ k.
func (m *Monitor) AdvanceClusters(t model.Tick, clusters [][]model.ObjectID) ([]Convoy, error) {
	if m.closed {
		return nil, fmt.Errorf("core: AdvanceClusters on closed Monitor")
	}
	if m.started && t <= m.lastTick {
		return nil, fmt.Errorf("core: AdvanceClusters: tick %d not after %d", t, m.lastTick)
	}
	var out []Convoy
	if m.started && t > m.lastTick+1 {
		// Tick gap: every live candidate dies at lastTick.
		m.live = chainStep(m.live, nil, m.p.M, m.p.K, t, t, false, &out, nil)
	}
	m.lastTick, m.started = t, true
	m.live = chainStep(m.live, clusters, m.p.M, m.p.K, t, t, false, &out, nil)
	sortResult(out)
	return out, nil
}

// Close ends the stream and returns the convoys still open at the last
// advanced tick (lifetime ≥ k). Further AdvanceClusters calls fail.
func (m *Monitor) Close() []Convoy {
	if m.closed {
		return nil
	}
	m.closed = true
	var out []Convoy
	flushCandidates(m.live, m.p.K, &out, nil)
	m.live = nil
	sortResult(out)
	return out
}

// FirstDuplicateID reports a repeated object ID in a pushed snapshot — the
// shared validation used by Streamer.Advance and the serve feed handler
// (a repeated ID would cluster with itself and corrupt candidate sets,
// emitting convoys like ⟨o1,o1,o2⟩). The common case — IDs already
// ascending, as database replays produce — is checked with a linear scan
// and no allocation; unsorted snapshots fall back to a set.
func FirstDuplicateID(ids []model.ObjectID) (model.ObjectID, bool) {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return ids[i], true
		}
		if ids[i] < ids[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return 0, false
	}
	seen := make(map[model.ObjectID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return id, true
		}
		seen[id] = struct{}{}
	}
	return 0, false
}
