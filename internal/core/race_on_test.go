//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; the
// allocation-exactness tests skip under it (instrumentation perturbs
// allocation counts).
const raceEnabled = true
