package core

import (
	"math/rand"
	"testing"
)

// Every algorithm is a pure function of its inputs: repeated runs produce
// identical answers and identical filter statistics (timings aside). This
// pins the determinism the experiment harness and the cross-algorithm
// equality tests rely on.
func TestPropRunsAreDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for iter := 0; iter < 10; iter++ {
		db := randomDB(r, 4+r.Intn(4), 10+r.Intn(10))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}

		ref, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		again, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Equal(again) {
			t.Fatal("CMC not deterministic")
		}

		for _, variant := range []Variant{VariantCuTS, VariantCuTSStar} {
			cfg := Config{Variant: variant, Delta: 0.7, Lambda: 3}
			res1, st1, err := Run(db, p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res2, st2, err := Run(db, p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res1.Equal(res2) {
				t.Fatalf("%v results not deterministic", variant)
			}
			if st1.NumCandidates != st2.NumCandidates ||
				st1.RefineUnits != st2.RefineUnits ||
				st1.VertexKept != st2.VertexKept ||
				st1.Lambda != st2.Lambda ||
				st1.Delta != st2.Delta {
				t.Fatalf("%v stats not deterministic: %+v vs %+v", variant, st1, st2)
			}
		}

		// MC2 and the flock-free paths too.
		mc1, err := MC2(db, p, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		mc2, err := MC2(db, p, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if len(mc1) != len(mc2) {
			t.Fatal("MC2 not deterministic")
		}
		for i := range mc1 {
			if !mc1[i].Equal(mc2[i]) {
				t.Fatal("MC2 answers not deterministic")
			}
		}
	}
}
