package core

import (
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{M: 2, K: 3, Eps: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{M: 1, K: 1, Eps: 0}).Validate(); err != nil {
		t.Errorf("edge params rejected: %v", err)
	}
	for _, p := range []Params{
		{M: 0, K: 3, Eps: 1},
		{M: 2, K: 0, Eps: 1},
		{M: 2, K: 3, Eps: -1},
		{M: -1, K: -1, Eps: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", p)
		}
	}
	// The error message mentions every problem.
	err := (Params{M: 0, K: 0, Eps: -2}).Validate()
	if err == nil || !strings.Contains(err.Error(), "m must") ||
		!strings.Contains(err.Error(), "k must") || !strings.Contains(err.Error(), "e must") {
		t.Errorf("error message incomplete: %v", err)
	}
}

func TestConvoyBasics(t *testing.T) {
	c := Convoy{Objects: ids(1, 3, 5), Start: 10, End: 19}
	if c.Lifetime() != 10 {
		t.Errorf("Lifetime = %d", c.Lifetime())
	}
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
	if !c.Contains(3) || c.Contains(2) {
		t.Error("Contains misbehaves")
	}
	if got := c.String(); got != "⟨o1,o3,o5,[10,19]⟩" {
		t.Errorf("String = %q", got)
	}
	if !c.Equal(Convoy{Objects: ids(1, 3, 5), Start: 10, End: 19}) {
		t.Error("Equal failed on identical convoys")
	}
	if c.Equal(Convoy{Objects: ids(1, 3), Start: 10, End: 19}) {
		t.Error("Equal accepted different members")
	}
}

func TestConvoyDomination(t *testing.T) {
	big := Convoy{Objects: ids(1, 2, 3), Start: 0, End: 10}
	cases := []struct {
		c    Convoy
		want bool
	}{
		{Convoy{Objects: ids(1, 2), Start: 2, End: 8}, true},     // subset both ways
		{Convoy{Objects: ids(1, 2, 3), Start: 0, End: 10}, true}, // self
		{Convoy{Objects: ids(1, 2), Start: 0, End: 11}, false},   // longer interval
		{Convoy{Objects: ids(1, 4), Start: 2, End: 8}, false},    // extra member
		{Convoy{Objects: ids(1, 2, 3, 4), Start: 2, End: 8}, false},
	}
	for _, tc := range cases {
		if got := tc.c.DominatedBy(big); got != tc.want {
			t.Errorf("%v dominated by %v = %v, want %v", tc.c, big, got, tc.want)
		}
	}
}

func TestCanonicalize(t *testing.T) {
	in := []Convoy{
		{Objects: ids(1, 2), Start: 0, End: 9},
		{Objects: ids(1, 2), Start: 0, End: 9},    // duplicate
		{Objects: ids(1, 2), Start: 2, End: 7},    // dominated (interval)
		{Objects: ids(1), Start: 0, End: 9},       // dominated (subset)
		{Objects: ids(1, 2, 3), Start: 3, End: 6}, // incomparable (superset objects, subinterval)
		{Objects: ids(4, 5), Start: 20, End: 29},  // unrelated
	}
	got := Canonicalize(in)
	want := Result{
		{Objects: ids(1, 2), Start: 0, End: 9},
		{Objects: ids(1, 2, 3), Start: 3, End: 6},
		{Objects: ids(4, 5), Start: 20, End: 29},
	}
	if !got.Equal(want) {
		t.Errorf("Canonicalize =\n%v\nwant\n%v", got, want)
	}
}

func TestCanonicalizeEmpty(t *testing.T) {
	if got := Canonicalize(nil); len(got) != 0 {
		t.Errorf("Canonicalize(nil) = %v", got)
	}
}

func TestResultEqualAndOrder(t *testing.T) {
	a := Canonicalize([]Convoy{
		{Objects: ids(3, 4), Start: 5, End: 9},
		{Objects: ids(1, 2), Start: 0, End: 4},
	})
	// Canonical order: by start tick first.
	if a[0].Start != 0 || a[1].Start != 5 {
		t.Errorf("canonical order wrong: %v", a)
	}
	b := Canonicalize([]Convoy{
		{Objects: ids(1, 2), Start: 0, End: 4},
		{Objects: ids(3, 4), Start: 5, End: 9},
	})
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	c := Canonicalize([]Convoy{{Objects: ids(1, 2), Start: 0, End: 4}})
	if a.Equal(c) {
		t.Error("different results reported equal")
	}
	// Same start/end, different members: ordered lexicographically.
	d := Canonicalize([]Convoy{
		{Objects: ids(2, 9), Start: 0, End: 4},
		{Objects: ids(1, 3), Start: 0, End: 4},
	})
	if d[0].Objects[0] != 1 {
		t.Errorf("lexicographic member order wrong: %v", d)
	}
}
