package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func ids(xs ...int) []model.ObjectID { return xs }

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []model.ObjectID }{
		{ids(1, 2, 3), ids(2, 3, 4), ids(2, 3)},
		{ids(1, 2), ids(3, 4), nil},
		{ids(), ids(1), nil},
		{ids(1, 5, 9), ids(1, 5, 9), ids(1, 5, 9)},
		{ids(1, 3, 5, 7), ids(2, 3, 6, 7), ids(3, 7)},
	}
	for _, c := range cases {
		got := intersectSorted(c.a, c.b)
		if !equalSorted(got, c.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnionSorted(t *testing.T) {
	cases := []struct{ a, b, want []model.ObjectID }{
		{ids(1, 3), ids(2, 4), ids(1, 2, 3, 4)},
		{ids(), ids(1), ids(1)},
		{ids(1, 2), ids(1, 2), ids(1, 2)},
		{ids(5), ids(1, 9), ids(1, 5, 9)},
	}
	for _, c := range cases {
		got := unionSorted(c.a, c.b)
		if !equalSorted(got, c.want) {
			t.Errorf("union(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubsetAndContains(t *testing.T) {
	if !subsetSorted(ids(2, 4), ids(1, 2, 3, 4)) {
		t.Error("subset failed")
	}
	if subsetSorted(ids(2, 5), ids(1, 2, 3, 4)) {
		t.Error("non-subset accepted")
	}
	if !subsetSorted(nil, ids(1)) {
		t.Error("empty set must be subset")
	}
	if subsetSorted(ids(1, 2, 3), ids(1, 2)) {
		t.Error("bigger set accepted as subset")
	}
	if !containsSorted(ids(1, 4, 9), 4) || containsSorted(ids(1, 4, 9), 5) {
		t.Error("containsSorted misbehaves")
	}
	if containsSorted(nil, 1) {
		t.Error("empty contains")
	}
}

func TestSetKeyDistinguishes(t *testing.T) {
	a, b := ids(1, 2, 3), ids(1, 2, 4)
	if setKey(a) == setKey(b) {
		t.Error("different sets share a key")
	}
	if setKey(a) != setKey(ids(1, 2, 3)) {
		t.Error("identical sets have different keys")
	}
	if setKey(nil) != setKey(ids()) {
		t.Error("empty set keys differ")
	}
	// Delta encoding must not confuse {1,2} with {1,12} etc.
	if setKey(ids(1, 2)) == setKey(ids(1, 12)) {
		t.Error("key collision on delta encoding")
	}
	if setKey(ids(3)) == setKey(ids(1, 2)) {
		t.Error("key collision across lengths")
	}
}

func randomSortedSet(r *rand.Rand, maxLen, maxVal int) []model.ObjectID {
	n := r.Intn(maxLen + 1)
	seen := map[int]bool{}
	var out []model.ObjectID
	for len(out) < n {
		v := r.Intn(maxVal)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func TestPropSetAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		a := randomSortedSet(r, 12, 40)
		b := randomSortedSet(r, 12, 40)
		inter := intersectSorted(a, b)
		uni := unionSorted(a, b)
		if !subsetSorted(inter, a) || !subsetSorted(inter, b) {
			t.Fatalf("intersection not subset: %v %v -> %v", a, b, inter)
		}
		if !subsetSorted(a, uni) || !subsetSorted(b, uni) {
			t.Fatalf("union not superset: %v %v -> %v", a, b, uni)
		}
		if len(inter)+len(uni) != len(a)+len(b) {
			t.Fatalf("inclusion-exclusion broken: %v %v", a, b)
		}
		for _, x := range inter {
			if !containsSorted(a, x) || !containsSorted(b, x) {
				t.Fatalf("intersection member %d missing", x)
			}
		}
		// Keys are injective over these sets.
		if setKey(a) == setKey(b) && !equalSorted(a, b) {
			t.Fatalf("key collision: %v %v", a, b)
		}
	}
}

func TestPropSetKeyRoundtrip(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[int]bool{}
		var s []model.ObjectID
		for _, v := range raw {
			if !seen[int(v)] {
				seen[int(v)] = true
				s = append(s, int(v))
			}
		}
		sort.Ints(s)
		return setKey(s) == setKey(append([]model.ObjectID(nil), s...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
