package core

import (
	"sync/atomic"

	"repro/internal/trace"
)

// stageTimer aggregates where a parallel scan's time goes — the
// clustering work (summed across workers, so it can exceed the stage's
// wall time) and the sequential chaining fold — and flushes both totals
// into a span as accumulated attributes (cluster_ms / chain_ms).
// AddFloat accumulation means nested scans (each refinement candidate
// runs one) sum into their shared ancestor span instead of overwriting
// each other.
type stageTimer struct {
	sp      *trace.Span
	cluster atomic.Int64 // ns, summed across workers
	chain   atomic.Int64 // ns
}

// newStageTimer returns a timer bound to sp, or nil when sp is nil —
// the unsampled case, where callers skip all timing work.
func newStageTimer(sp *trace.Span) *stageTimer {
	if sp == nil {
		return nil
	}
	return &stageTimer{sp: sp}
}

// flush folds the accumulated totals into the span. Safe on nil.
func (tm *stageTimer) flush() {
	if tm == nil {
		return
	}
	tm.sp.AddFloat("cluster_ms", float64(tm.cluster.Load())/1e6)
	tm.sp.AddFloat("chain_ms", float64(tm.chain.Load())/1e6)
}
