package core

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/increment"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/trace"
)

// CMC — the Coherent Moving Cluster algorithm (Section 4, Algorithm 1).
//
// At every tick the objects alive at that tick are clustered with DBSCAN
// (missing samples are interpolated into virtual points, Section 4), and
// convoy candidates are carried across consecutive ticks by intersecting
// them with the snapshot clusters. A candidate dies when no snapshot
// cluster fully contains its object set; if it lived at least k ticks it is
// reported.
//
// Two bookkeeping refinements close gaps in the printed pseudocode so that
// the output is exactly the answer set documented in the package comment
// (both are noted in DESIGN.md):
//
//   - every snapshot cluster also opens a fresh candidate (otherwise a
//     larger group forming around an existing convoy is never tracked), and
//   - candidates still alive when the time domain ends are flushed.
//
// Candidates with identical object sets are merged, keeping the earliest
// start time; reported convoys are finally canonicalized (deduplicated and
// reduced to maximal answers).

// candidate tracks one potential convoy during the scan.
type candidate struct {
	objs       []model.ObjectID // ascending; the identity set
	support    []model.ObjectID // ascending; union of contributing clusters
	start, end model.Tick
}

func (c *candidate) lifetime() int64 { return int64(c.end-c.start) + 1 }

// candidateSet accumulates next-generation candidates with object-set
// deduplication (keeping the earliest start and unioned support).
type candidateSet struct {
	index map[string]int
	cands []*candidate
}

func newCandidateSet() *candidateSet {
	return &candidateSet{index: make(map[string]int)}
}

func (s *candidateSet) add(objs, support []model.ObjectID, start, end model.Tick) {
	key := setKey(objs)
	if i, ok := s.index[key]; ok {
		ex := s.cands[i]
		if start < ex.start {
			ex.start = start
		}
		if !equalSorted(support, ex.support) {
			ex.support = unionSorted(ex.support, support)
		}
		return
	}
	s.index[key] = len(s.cands)
	s.cands = append(s.cands, &candidate{objs: objs, support: support, start: start, end: end})
}

// snapshotAt returns the objects alive at tick t and their positions,
// restricted to subset when non-nil (ascending IDs).
func snapshotAt(db *model.DB, t model.Tick, subset []model.ObjectID) ([]model.ObjectID, []geom.Point) {
	if subset == nil {
		return db.SnapshotAt(t)
	}
	var ids []model.ObjectID
	var pts []geom.Point
	for _, id := range subset {
		if pt, ok := db.Traj(id).LocationAt(t); ok {
			ids = append(ids, id)
			pts = append(pts, pt)
		}
	}
	return ids, pts
}

// snapshotClusters clusters the objects alive at tick t with cl, restricted
// to subset when non-nil (ascending IDs). Cluster member lists are
// ascending object IDs (the Clusterer contract).
func snapshotClusters(db *model.DB, cl Clusterer, p Params, t model.Tick, subset []model.ObjectID) [][]model.ObjectID {
	ids, pts := snapshotAt(db, t, subset)
	return cl.Clusters(ClusterKey{Eps: p.Eps, M: p.M}, TickSnapshot{T: t, IDs: ids, Pts: pts})
}

// chainStep advances the candidate generation by one clustering round:
// intersect every live candidate with every cluster, report candidates that
// die with sufficient lifetime, and open fresh candidates for the clusters.
// endTick is the tick (or partition end) the new generation extends to;
// freshStart is the start assigned to brand-new candidates.
func chainStep(
	live []*candidate,
	clusters [][]model.ObjectID,
	m int, k int64,
	freshStart, endTick model.Tick,
	trackSupport bool,
	out *[]Convoy,
	emit func(*candidate),
) []*candidate {
	next := newCandidateSet()
	for _, v := range live {
		survived := false
		for _, c := range clusters {
			inter := intersectSorted(v.objs, c)
			if len(inter) < m {
				continue
			}
			var support []model.ObjectID
			if trackSupport {
				support = unionSorted(v.support, c)
			}
			next.add(inter, support, v.start, endTick)
			if len(inter) == len(v.objs) {
				survived = true
			}
		}
		if !survived && v.lifetime() >= k {
			if out != nil {
				*out = append(*out, Convoy{Objects: v.objs, Start: v.start, End: v.end})
			}
			if emit != nil {
				emit(v)
			}
		}
	}
	for _, c := range clusters {
		var support []model.ObjectID
		if trackSupport {
			support = c
		}
		next.add(c, support, freshStart, endTick)
	}
	return next.cands
}

// flushCandidates reports every remaining live candidate with sufficient
// lifetime at the end of the scan.
func flushCandidates(live []*candidate, k int64, out *[]Convoy, emit func(*candidate)) {
	for _, v := range live {
		if v.lifetime() >= k {
			if out != nil {
				*out = append(*out, Convoy{Objects: v.objs, Start: v.start, End: v.end})
			}
			if emit != nil {
				emit(v)
			}
		}
	}
}

// cmcScan runs the CMC scan over ticks [lo, hi], optionally restricted to
// the given ascending object subset, pushing every batch of raw
// (uncanonicalized) convoys that close at one tick — plus the final flush
// batch — into emit. emit returning false abandons the scan (no error);
// cancelling ctx aborts it with ctx.Err() at tick granularity. meter, when
// non-nil, is atomically bumped once per snapshot clustering pass — the
// work meter behind Stats.ClusterPasses — and further splits passes into
// full versus incremental and counts the objects actually re-clustered.
//
// incThreshold > 0 enables incremental clustering: each producer keeps an
// increment.Engine that diffs consecutive snapshots and patches the
// previous tick's neighborhood structure instead of re-running DBSCAN from
// scratch, falling back to a rebuild when the dirty fraction exceeds the
// threshold. The caller only sets it for the default grid-DBSCAN backend
// (the engine reproduces exactly that backend's answers); cl is still used
// for the non-incremental path.
//
// With workers > 1 the per-tick DBSCAN runs (the quadratic part) execute
// concurrently while the candidate chaining folds the resulting snapshot
// clusters strictly in tick order — a pipeline, not a per-tick barrier.
// Because chainStep consumes exactly the clusters the serial scan would,
// in exactly the same order, the emitted convoys are identical to the
// serial scan by construction. On the incremental path the tick domain is
// split into contiguous per-worker chunks, each owning its own engine
// (ticks must reach an engine in order for diffing to make sense); the
// answers are still identical for every worker count — only the counters
// shift, since every chunk's first tick is a full pass.
func cmcScan(ctx context.Context, db *model.DB, cl Clusterer, p Params, lo, hi model.Tick, subset []model.ObjectID, workers int, incThreshold float64, meter *scanMeter, emit func([]Convoy) bool) error {
	span := int64(hi-lo) + 1
	if span <= 0 {
		return nil
	}
	if span > int64(maxPipelineSpan) {
		// Overflowing or absurd time domains take the plain loop; ticks are
		// still scanned one by one either way.
		workers = 1
	}
	// When a sampled trace is active, meter where the scan's time goes —
	// clustering (parallel, summed across workers) versus chaining
	// (sequential) — and fold the totals into the active span as
	// accumulated attributes. AddFloat (not synthetic spans) keeps the
	// explain invariant "Σ child stage durations ≤ parent wall time"
	// intact under parallelism. tm stays nil on the unsampled path, so
	// the hot loop pays nothing.
	tm := newStageTimer(trace.FromContext(ctx))
	defer tm.flush()
	produce := func(eng *increment.Engine, i int) [][]model.ObjectID {
		t := lo + model.Tick(i)
		var t0 time.Time
		if tm != nil {
			t0 = time.Now()
		}
		ids, pts := snapshotAt(db, t, subset)
		var cs [][]model.ObjectID
		if eng != nil {
			var pass increment.Pass
			cs, pass = eng.Tick(ids, pts)
			meter.addPass(pass)
		} else {
			cs = cl.Clusters(ClusterKey{Eps: p.Eps, M: p.M}, TickSnapshot{T: t, IDs: ids, Pts: pts})
			meter.addPass(increment.Pass{Full: true, Reclustered: len(ids)})
		}
		if tm != nil {
			tm.cluster.Add(int64(time.Since(t0)))
		}
		return cs
	}
	newEngine := func() *increment.Engine {
		if incThreshold <= 0 {
			return nil
		}
		return increment.New(p.Eps, p.M, incThreshold)
	}
	var live []*candidate
	stopped := false
	consume := func(i int, clusters [][]model.ObjectID) bool {
		t := lo + model.Tick(i)
		var batch []Convoy
		var t0 time.Time
		if tm != nil {
			t0 = time.Now()
		}
		live = chainStep(live, clusters, p.M, p.K, t, t, false, &batch, nil)
		if tm != nil {
			tm.chain.Add(int64(time.Since(t0)))
		}
		if len(batch) > 0 && !emit(batch) {
			stopped = true
			return false
		}
		return true
	}
	if workers <= 1 {
		eng := newEngine()
		i := 0
		for t := lo; ; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !consume(i, produce(eng, i)) {
				return nil
			}
			i++
			if t == hi {
				break
			}
		}
	} else if incThreshold > 0 {
		// Incremental + parallel: contiguous per-worker tick chunks, one
		// engine per chunk. The chunk size is capped so cancellation and
		// early-stop keep reasonable granularity on huge domains.
		chunk := int((span + int64(workers) - 1) / int64(workers))
		if chunk > maxIncrementalChunk {
			chunk = maxIncrementalChunk
		}
		if err := par.OrderedChunks(ctx, int(span), workers, chunk, newEngine, produce, consume); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	} else {
		if err := orderedPipeline(ctx, int(span), workers, func(i int) [][]model.ObjectID {
			return produce(nil, i)
		}, consume); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	var batch []Convoy
	flushCandidates(live, p.K, &batch, nil)
	if len(batch) > 0 {
		emit(batch)
	}
	return nil
}

// cmcWindow collects the raw convoys of a serial, uncancellable CMC scan
// over [lo, hi] — the refinement step's per-candidate unit of work (the
// streaming/cancellation granularity is the candidate, so the window scan
// itself runs to completion). ctx carries only the active trace span —
// never a deadline — so sampled runs still meter the window's clustering
// time into the refine span without gaining mid-window cancellation.
func cmcWindow(ctx context.Context, db *model.DB, p Params, lo, hi model.Tick, subset []model.ObjectID, passes *int64) []Convoy {
	var out []Convoy
	var m scanMeter
	cmcScan(ctx, db, DefaultClusterer, p, lo, hi, subset, 1, 0, &m, func(batch []Convoy) bool {
		out = append(out, batch...)
		return true
	})
	if passes != nil {
		atomic.AddInt64(passes, atomic.LoadInt64(&m.passes))
	}
	return out
}

// maxPipelineSpan bounds the tick count handed to the parallel pipeline so
// that the span always fits an int (also on 32-bit platforms); larger —
// degenerate — domains run serially.
const maxPipelineSpan = 1 << 30

// maxIncrementalChunk caps the contiguous tick range one incremental
// engine owns in a parallel scan, so cancellation and early stop keep
// sub-chunk granularity even on huge time domains. Each chunk's first tick
// is a full pass, so larger chunks amortize better; 4096 keeps that
// overhead under 0.03%.
const maxIncrementalChunk = 4096

// CMC answers the convoy query over the whole database with the Coherent
// Moving Cluster algorithm and returns the canonical result.
func CMC(db *model.DB, p Params) (Result, error) {
	return CMCParallel(db, p, 1)
}

// CMCParallel is CMC with a bounded worker pool clustering ticks
// concurrently (see cmcScan); workers ≤ 1 is the serial scan and the
// answer set is identical for every worker count. It is a thin wrapper
// over Query; use Query directly for cancellation and streaming results.
func CMCParallel(db *model.DB, p Params, workers int) (Result, error) {
	return NewQuery(WithParams(p), WithCMC(), WithWorkers(workers)).Run(context.Background(), db)
}
