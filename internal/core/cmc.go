package core

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/trace"
)

// CMC — the Coherent Moving Cluster algorithm (Section 4, Algorithm 1).
//
// At every tick the objects alive at that tick are clustered with DBSCAN
// (missing samples are interpolated into virtual points, Section 4), and
// convoy candidates are carried across consecutive ticks by intersecting
// them with the snapshot clusters. A candidate dies when no snapshot
// cluster fully contains its object set; if it lived at least k ticks it is
// reported.
//
// Two bookkeeping refinements close gaps in the printed pseudocode so that
// the output is exactly the answer set documented in the package comment
// (both are noted in DESIGN.md):
//
//   - every snapshot cluster also opens a fresh candidate (otherwise a
//     larger group forming around an existing convoy is never tracked), and
//   - candidates still alive when the time domain ends are flushed.
//
// Candidates with identical object sets are merged, keeping the earliest
// start time; reported convoys are finally canonicalized (deduplicated and
// reduced to maximal answers).

// candidate tracks one potential convoy during the scan.
type candidate struct {
	objs       []model.ObjectID // ascending; the identity set
	support    []model.ObjectID // ascending; union of contributing clusters
	start, end model.Tick
}

func (c *candidate) lifetime() int64 { return int64(c.end-c.start) + 1 }

// candidateSet accumulates next-generation candidates with object-set
// deduplication (keeping the earliest start and unioned support).
type candidateSet struct {
	index map[string]int
	cands []*candidate
}

func newCandidateSet() *candidateSet {
	return &candidateSet{index: make(map[string]int)}
}

func (s *candidateSet) add(objs, support []model.ObjectID, start, end model.Tick) {
	key := setKey(objs)
	if i, ok := s.index[key]; ok {
		ex := s.cands[i]
		if start < ex.start {
			ex.start = start
		}
		if !equalSorted(support, ex.support) {
			ex.support = unionSorted(ex.support, support)
		}
		return
	}
	s.index[key] = len(s.cands)
	s.cands = append(s.cands, &candidate{objs: objs, support: support, start: start, end: end})
}

// snapshotClusters clusters the objects alive at tick t with cl, restricted
// to subset when non-nil (ascending IDs). Cluster member lists are
// ascending object IDs (the Clusterer contract).
func snapshotClusters(db *model.DB, cl Clusterer, p Params, t model.Tick, subset []model.ObjectID) [][]model.ObjectID {
	var ids []model.ObjectID
	var pts []geom.Point
	if subset == nil {
		ids, pts = db.SnapshotAt(t)
	} else {
		for _, id := range subset {
			if pt, ok := db.Traj(id).LocationAt(t); ok {
				ids = append(ids, id)
				pts = append(pts, pt)
			}
		}
	}
	return cl.Clusters(ClusterKey{Eps: p.Eps, M: p.M}, TickSnapshot{T: t, IDs: ids, Pts: pts})
}

// chainStep advances the candidate generation by one clustering round:
// intersect every live candidate with every cluster, report candidates that
// die with sufficient lifetime, and open fresh candidates for the clusters.
// endTick is the tick (or partition end) the new generation extends to;
// freshStart is the start assigned to brand-new candidates.
func chainStep(
	live []*candidate,
	clusters [][]model.ObjectID,
	m int, k int64,
	freshStart, endTick model.Tick,
	trackSupport bool,
	out *[]Convoy,
	emit func(*candidate),
) []*candidate {
	next := newCandidateSet()
	for _, v := range live {
		survived := false
		for _, c := range clusters {
			inter := intersectSorted(v.objs, c)
			if len(inter) < m {
				continue
			}
			var support []model.ObjectID
			if trackSupport {
				support = unionSorted(v.support, c)
			}
			next.add(inter, support, v.start, endTick)
			if len(inter) == len(v.objs) {
				survived = true
			}
		}
		if !survived && v.lifetime() >= k {
			if out != nil {
				*out = append(*out, Convoy{Objects: v.objs, Start: v.start, End: v.end})
			}
			if emit != nil {
				emit(v)
			}
		}
	}
	for _, c := range clusters {
		var support []model.ObjectID
		if trackSupport {
			support = c
		}
		next.add(c, support, freshStart, endTick)
	}
	return next.cands
}

// flushCandidates reports every remaining live candidate with sufficient
// lifetime at the end of the scan.
func flushCandidates(live []*candidate, k int64, out *[]Convoy, emit func(*candidate)) {
	for _, v := range live {
		if v.lifetime() >= k {
			if out != nil {
				*out = append(*out, Convoy{Objects: v.objs, Start: v.start, End: v.end})
			}
			if emit != nil {
				emit(v)
			}
		}
	}
}

// cmcScan runs the CMC scan over ticks [lo, hi], optionally restricted to
// the given ascending object subset, pushing every batch of raw
// (uncanonicalized) convoys that close at one tick — plus the final flush
// batch — into emit. emit returning false abandons the scan (no error);
// cancelling ctx aborts it with ctx.Err() at tick granularity. passes,
// when non-nil, is atomically incremented once per snapshot clustering
// pass, the work meter behind Stats.ClusterPasses.
//
// With workers > 1 the per-tick DBSCAN runs (the quadratic part) execute
// concurrently while the candidate chaining folds the resulting snapshot
// clusters strictly in tick order — a pipeline, not a per-tick barrier.
// Because chainStep consumes exactly the clusters the serial scan would,
// in exactly the same order, the emitted convoys are identical to the
// serial scan by construction.
func cmcScan(ctx context.Context, db *model.DB, cl Clusterer, p Params, lo, hi model.Tick, subset []model.ObjectID, workers int, passes *int64, emit func([]Convoy) bool) error {
	span := int64(hi-lo) + 1
	if span <= 0 {
		return nil
	}
	if span > int64(maxPipelineSpan) {
		// Overflowing or absurd time domains take the plain loop; ticks are
		// still scanned one by one either way.
		workers = 1
	}
	// When a sampled trace is active, meter where the scan's time goes —
	// clustering (parallel, summed across workers) versus chaining
	// (sequential) — and fold the totals into the active span as
	// accumulated attributes. AddFloat (not synthetic spans) keeps the
	// explain invariant "Σ child stage durations ≤ parent wall time"
	// intact under parallelism. tm stays nil on the unsampled path, so
	// the hot loop pays nothing.
	tm := newStageTimer(trace.FromContext(ctx))
	defer tm.flush()
	produce := func(i int) [][]model.ObjectID {
		if passes != nil {
			atomic.AddInt64(passes, 1)
		}
		if tm == nil {
			return snapshotClusters(db, cl, p, lo+model.Tick(i), subset)
		}
		t0 := time.Now()
		cs := snapshotClusters(db, cl, p, lo+model.Tick(i), subset)
		tm.cluster.Add(int64(time.Since(t0)))
		return cs
	}
	var live []*candidate
	stopped := false
	consume := func(i int, clusters [][]model.ObjectID) bool {
		t := lo + model.Tick(i)
		var batch []Convoy
		var t0 time.Time
		if tm != nil {
			t0 = time.Now()
		}
		live = chainStep(live, clusters, p.M, p.K, t, t, false, &batch, nil)
		if tm != nil {
			tm.chain.Add(int64(time.Since(t0)))
		}
		if len(batch) > 0 && !emit(batch) {
			stopped = true
			return false
		}
		return true
	}
	if workers <= 1 {
		i := 0
		for t := lo; ; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !consume(i, produce(i)) {
				return nil
			}
			i++
			if t == hi {
				break
			}
		}
	} else {
		if err := orderedPipeline(ctx, int(span), workers, produce, consume); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	var batch []Convoy
	flushCandidates(live, p.K, &batch, nil)
	if len(batch) > 0 {
		emit(batch)
	}
	return nil
}

// cmcWindow collects the raw convoys of a serial, uncancellable CMC scan
// over [lo, hi] — the refinement step's per-candidate unit of work (the
// streaming/cancellation granularity is the candidate, so the window scan
// itself runs to completion). ctx carries only the active trace span —
// never a deadline — so sampled runs still meter the window's clustering
// time into the refine span without gaining mid-window cancellation.
func cmcWindow(ctx context.Context, db *model.DB, p Params, lo, hi model.Tick, subset []model.ObjectID, passes *int64) []Convoy {
	var out []Convoy
	cmcScan(ctx, db, DefaultClusterer, p, lo, hi, subset, 1, passes, func(batch []Convoy) bool {
		out = append(out, batch...)
		return true
	})
	return out
}

// maxPipelineSpan bounds the tick count handed to the parallel pipeline so
// that the span always fits an int (also on 32-bit platforms); larger —
// degenerate — domains run serially.
const maxPipelineSpan = 1 << 30

// CMC answers the convoy query over the whole database with the Coherent
// Moving Cluster algorithm and returns the canonical result.
func CMC(db *model.DB, p Params) (Result, error) {
	return CMCParallel(db, p, 1)
}

// CMCParallel is CMC with a bounded worker pool clustering ticks
// concurrently (see cmcScan); workers ≤ 1 is the serial scan and the
// answer set is identical for every worker count. It is a thin wrapper
// over Query; use Query directly for cancellation and streaming results.
func CMCParallel(db *model.DB, p Params, workers int) (Result, error) {
	return NewQuery(WithParams(p), WithCMC(), WithWorkers(workers)).Run(context.Background(), db)
}
