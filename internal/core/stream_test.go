package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func TestStreamerBasicLifecycle(t *testing.T) {
	s, err := NewStreamer(Params{M: 2, K: 3, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LastTick(); ok {
		t.Error("LastTick before first Advance should be invalid")
	}
	// Two objects together for ticks 0..4, apart at 5.
	for tick := model.Tick(0); tick < 5; tick++ {
		got, err := s.Advance(tick,
			[]model.ObjectID{0, 1},
			[]geom.Point{geom.Pt(float64(tick), 0), geom.Pt(float64(tick), 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("tick %d: unexpected emission %v", tick, got)
		}
		if s.Live() == 0 {
			t.Fatalf("tick %d: no live candidates", tick)
		}
	}
	got, err := s.Advance(5,
		[]model.ObjectID{0, 1},
		[]geom.Point{geom.Pt(5, 0), geom.Pt(5, 50)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(Convoy{Objects: ids(0, 1), Start: 0, End: 4}) {
		t.Fatalf("emission = %v, want ⟨o0,o1,[0,4]⟩", got)
	}
	if rest := s.Close(); len(rest) != 0 {
		t.Errorf("Close emitted %v", rest)
	}
	if _, err := s.Advance(6, nil, nil); err == nil {
		t.Error("Advance after Close should fail")
	}
	if again := s.Close(); again != nil {
		t.Errorf("second Close emitted %v", again)
	}
}

func TestStreamerFlushOnClose(t *testing.T) {
	s, _ := NewStreamer(Params{M: 2, K: 2, Eps: 1})
	for tick := model.Tick(10); tick < 13; tick++ {
		if _, err := s.Advance(tick,
			[]model.ObjectID{3, 7},
			[]geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Close()
	if len(got) != 1 || !got[0].Equal(Convoy{Objects: ids(3, 7), Start: 10, End: 12}) {
		t.Fatalf("Close = %v", got)
	}
}

func TestStreamerTickGapBreaksConvoy(t *testing.T) {
	s, _ := NewStreamer(Params{M: 2, K: 2, Eps: 1})
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	objs := []model.ObjectID{0, 1}
	if _, err := s.Advance(0, objs, pts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Advance(1, objs, pts); err != nil {
		t.Fatal(err)
	}
	// Jump to tick 5: the [0,1] convoy must be emitted by the gap.
	got, err := s.Advance(5, objs, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 1 {
		t.Fatalf("gap emission = %v", got)
	}
	// And the post-gap run starts fresh.
	if _, err := s.Advance(6, objs, pts); err != nil {
		t.Fatal(err)
	}
	rest := s.Close()
	if len(rest) != 1 || rest[0].Start != 5 || rest[0].End != 6 {
		t.Fatalf("post-gap convoy = %v", rest)
	}
}

func TestStreamerErrors(t *testing.T) {
	if _, err := NewStreamer(Params{M: 0, K: 1, Eps: 1}); err == nil {
		t.Error("invalid params accepted")
	}
	s, _ := NewStreamer(Params{M: 2, K: 2, Eps: 1})
	if _, err := s.Advance(0, []model.ObjectID{1}, nil); err == nil {
		t.Error("mismatched slices accepted")
	}
	if _, err := s.Advance(3, nil, nil); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
	if _, err := s.Advance(3, nil, nil); err == nil {
		t.Error("non-advancing tick accepted")
	}
	if _, err := s.Advance(2, nil, nil); err == nil {
		t.Error("backwards tick accepted")
	}
}

// Regression: Advance used to accept a snapshot listing the same object
// twice; the repeated point clustered with itself and corrupted candidate
// sets (convoys like ⟨o1,o1,o2⟩). Duplicates are now rejected before any
// state changes — exactly like serve's feed handler.
func TestStreamerRejectsDuplicateIDs(t *testing.T) {
	s, _ := NewStreamer(Params{M: 2, K: 1, Eps: 1})
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0), geom.Pt(0.2, 0)}

	// Sorted duplicates (the ascending fast path).
	if _, err := s.Advance(0, []model.ObjectID{1, 1, 2}, pts); err == nil {
		t.Fatal("sorted duplicate ids accepted")
	}
	// Unsorted duplicates (the set fallback).
	if _, err := s.Advance(0, []model.ObjectID{2, 1, 2}, pts); err == nil {
		t.Fatal("unsorted duplicate ids accepted")
	}
	// The rejected snapshots must not have advanced the stream: tick 0 is
	// still available and a clean snapshot forms the convoy.
	if _, ok := s.LastTick(); ok {
		t.Fatal("rejected Advance moved the tick cursor")
	}
	if _, err := s.Advance(0, []model.ObjectID{1, 2, 3}, pts); err != nil {
		t.Fatalf("clean snapshot after rejection: %v", err)
	}
	got := s.Close()
	if len(got) != 1 || !equalSorted(got[0].Objects, ids(1, 2, 3)) {
		t.Fatalf("Close = %v", got)
	}
}

func TestStreamerUnsortedIDs(t *testing.T) {
	// Pushed IDs need not be sorted; clusters still come out canonical.
	s, _ := NewStreamer(Params{M: 2, K: 1, Eps: 1})
	if _, err := s.Advance(0,
		[]model.ObjectID{9, 2},
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}); err != nil {
		t.Fatal(err)
	}
	got := s.Close()
	if len(got) != 1 || !equalSorted(got[0].Objects, ids(2, 9)) {
		t.Fatalf("Close = %v", got)
	}
}

// The equivalence contract: replaying any database through the Streamer and
// canonicalizing equals the batch CMC answer.
func TestPropStreamEqualsCMC(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	for iter := 0; iter < 25; iter++ {
		db := randomDB(r, 3+r.Intn(5), 8+r.Intn(12))
		p := Params{
			M:   1 + r.Intn(3),
			K:   int64(1 + r.Intn(4)),
			Eps: 0.5 + r.Float64()*2.5,
		}
		want, err := CMC(db, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := StreamDB(db, p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("iter %d (m=%d k=%d e=%.3f):\nstream = %v\nbatch  = %v",
				iter, p.M, p.K, p.Eps, got, want)
		}
	}
}
