package core

import (
	"context"
	"runtime"

	"repro/internal/par"
)

// The parallel-scan plumbing lives in the par package (shared with
// simplify); this file binds it to the discovery stages. See the package
// comment in convoy.go for the serial ≡ parallel argument.

// DefaultWorkers returns the natural worker count for this machine.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// orderedPipeline computes jobs concurrently but folds results strictly in
// index order (the CMC tick scan, the filter's partition scan, candidate
// refinement in streaming order). The consumer stops the pipeline by
// returning false; cancelling ctx aborts it with ctx.Err().
func orderedPipeline[T any](ctx context.Context, n, workers int, produce func(i int) T, consume func(i int, v T) bool) error {
	return par.OrderedPipeline(ctx, n, workers, produce, consume)
}
