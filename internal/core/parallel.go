package core

import (
	"runtime"

	"repro/internal/par"
)

// The parallel-scan plumbing lives in the par package (shared with
// simplify); this file binds it to the discovery stages. See the package
// comment in convoy.go for the serial ≡ parallel argument.

// DefaultWorkers returns the natural worker count for this machine.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelFor runs independent jobs writing to distinct result slots
// (simplification, candidate refinement).
func parallelFor(n, workers int, fn func(i int)) { par.For(n, workers, fn) }

// orderedPipeline computes jobs concurrently but folds results strictly in
// index order (the CMC tick scan, the filter's partition scan).
func orderedPipeline[T any](n, workers int, produce func(i int) T, consume func(i int, v T)) {
	par.OrderedPipeline(n, workers, produce, consume)
}
