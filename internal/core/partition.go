package core

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/trace"
)

// Temporal partitioning: the partition → local-mine → merge scheme of
// "Towards Distributed Convoy Pattern Mining" (arXiv 1512.08150), adapted
// to this codebase's exact answer semantics.
//
// The time domain [lo, hi] is cut into windows that overlap by k−1 ticks.
// The overlap is the whole trick: every k consecutive ticks then lie
// entirely inside at least one window, so no lifetime-k convoy is
// invisible to every local run. Each window is mined independently at the
// full (m, k, e) parameters, and the local maximal answers are stitched
// back together by MergePartials:
//
//   - any global maximal convoy (O, [s, e]) restricted to a window w that
//     it overlaps by ≥ k ticks is dominated by some local maximal answer
//     of w (the restriction is itself a valid local convoy);
//   - walking the covering windows left to right and intersecting the
//     member sets of those dominating local answers reconstructs exactly
//     (O, [s, e]) — each pairwise intersection keeps ≥ m objects and the
//     accumulated interval stays contiguous;
//   - conversely, every merged candidate is a valid convoy: each of its
//     ticks is covered by one of the two merged spans, and its members are
//     a subset of both, so density-connectedness at every tick is
//     inherited. A final lifetime ≥ k filter plus Canonicalize therefore
//     yields the single-pass answer, member for member, tick for tick.
//
// The merged ≡ single-pass property is pinned by race-enabled tests across
// algorithm variants, partition counts and worker counts.

// Window is one temporal partition: an inclusive tick interval.
type Window struct {
	Lo, Hi model.Tick
}

// PartitionWindows splits the time domain [lo, hi] into at most n windows
// of equal stride that overlap by k−1 ticks. It returns a single window
// covering everything when n ≤ 1, when the domain is shorter than k, or
// when the stride would degenerate. Windows are sorted ascending, jointly
// cover [lo, hi], and every k consecutive ticks of the domain lie entirely
// inside at least one window.
func PartitionWindows(lo, hi model.Tick, k int64, n int) []Window {
	if hi < lo {
		return nil
	}
	if k < 1 {
		k = 1
	}
	span := int64(hi-lo) + 1
	overlap := k - 1
	if n <= 1 || span <= k || span <= overlap+1 {
		return []Window{{Lo: lo, Hi: hi}}
	}
	// stride windows of length stride+overlap cover the domain with n cuts:
	// window i starts at lo + i·stride, so consecutive windows share
	// exactly `overlap` ticks.
	stride := (span - overlap + int64(n) - 1) / int64(n)
	if stride < 1 {
		stride = 1
	}
	var out []Window
	for start := lo; ; start += model.Tick(stride) {
		end := start + model.Tick(stride+overlap) - 1
		if end >= hi {
			out = append(out, Window{Lo: start, Hi: hi})
			break
		}
		out = append(out, Window{Lo: start, Hi: end})
	}
	return out
}

// SliceTime restricts the database to the window [lo, hi], returning the
// sliced database and a mapping from its dense IDs back to the source's
// (ids[newID] = oldID). Objects whose lifespan misses the window entirely
// are dropped; labels are preserved.
//
// Slicing is interpolation-aware: when a window boundary falls inside a
// sampling gap, the virtual location at the boundary tick (Section 4's
// linear interpolation) is materialized as a real sample, so the sliced
// trajectory interpolates to the same positions over [lo, hi] as the
// original — a plain sample clip would silently move the object.
func SliceTime(db *model.DB, lo, hi model.Tick) (*model.DB, []model.ObjectID) {
	out := model.NewDB()
	var ids []model.ObjectID
	for _, tr := range db.Trajectories() {
		if tr.End() < lo || tr.Start() > hi {
			continue
		}
		clip := tr.Clip(lo, hi)
		var samples []model.Sample
		if p, ok := tr.LocationAt(lo); ok && (clip == nil || clip.Samples[0].T != lo) {
			samples = append(samples, model.Sample{T: lo, P: p})
		}
		if clip != nil {
			samples = append(samples, clip.Samples...)
		}
		if p, ok := tr.LocationAt(hi); ok && (len(samples) == 0 || samples[len(samples)-1].T != hi) {
			samples = append(samples, model.Sample{T: hi, P: p})
		}
		if len(samples) == 0 {
			// The whole in-window stretch is a sampling gap with neither
			// boundary covered — impossible given Covers math above, but a
			// trajectory must not be added empty.
			continue
		}
		sliced, err := model.NewTrajectory(tr.Label, samples)
		if err != nil {
			continue // unreachable: samples are strictly increasing by construction
		}
		out.Add(sliced)
		ids = append(ids, tr.ID)
	}
	return out, ids
}

// RemapConvoys rewrites convoy members through ids (ids[localID] =
// globalID), translating a sliced database's answers back into the source
// database's ID space. Member lists are re-sorted, since the mapping need
// not be monotone.
func RemapConvoys(convoys []Convoy, ids []model.ObjectID) []Convoy {
	out := make([]Convoy, len(convoys))
	for i, c := range convoys {
		members := make([]model.ObjectID, len(c.Objects))
		for j, id := range c.Objects {
			members[j] = ids[id]
		}
		sortIDs(members)
		out[i] = Convoy{Objects: members, Start: c.Start, End: c.End}
	}
	return out
}

// MergePartials stitches per-window maximal convoys into the exact global
// answer. windows and parts are parallel (parts[i] holds window i's local
// answers, already in the global ID space) and windows must be sorted
// ascending by Lo — the order PartitionWindows produces.
//
// The sweep keeps a frontier of merge candidates. At window i, every
// frontier candidate u whose span still reaches window i is paired with
// every local answer v of window i; when their intervals touch
// (overlapping or adjacent) and they share ≥ m members, the stitched
// candidate (u ∩ v, [min start, max end]) joins the frontier alongside u
// and v. Candidates that can no longer reach the current window retire.
// After the sweep, candidates with lifetime ≥ k survive and Canonicalize
// drops the dominated ones.
func MergePartials(windows []Window, parts [][]Convoy, p Params) Result {
	seen := make(map[string]struct{})
	var frontier, retired []Convoy
	keep := func(c Convoy) bool {
		key := fmt.Sprintf("%d|%d|%s", c.Start, c.End, setKey(c.Objects))
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		return true
	}
	for i, w := range windows {
		// Retire frontier candidates that end before window i starts (minus
		// one tick of adjacency): no later window can extend them, since
		// window Lo values only grow.
		live := frontier[:0]
		for _, u := range frontier {
			if u.End+1 >= w.Lo {
				live = append(live, u)
			} else {
				retired = append(retired, u)
			}
		}
		frontier = live

		var stitched []Convoy
		for _, v := range parts[i] {
			for _, u := range frontier {
				// Intervals must overlap or be adjacent so their union is
				// one contiguous stretch.
				if max64(u.Start, v.Start) > min64(u.End, v.End)+1 {
					continue
				}
				members := intersectSorted(u.Objects, v.Objects)
				if len(members) < p.M {
					continue
				}
				c := Convoy{Objects: members, Start: min64(u.Start, v.Start), End: max64(u.End, v.End)}
				if keep(c) {
					stitched = append(stitched, c)
				}
			}
		}
		for _, v := range parts[i] {
			if keep(v) {
				frontier = append(frontier, v)
			}
		}
		frontier = append(frontier, stitched...)
	}
	all := append(retired, frontier...)
	final := all[:0]
	for _, c := range all {
		if c.Lifetime() >= p.K && len(c.Objects) >= p.M {
			final = append(final, c)
		}
	}
	return Canonicalize(final)
}

func min64(a, b model.Tick) model.Tick {
	if a < b {
		return a
	}
	return b
}

func max64(a, b model.Tick) model.Tick {
	if a > b {
		return a
	}
	return b
}

func sortIDs(ids []model.ObjectID) {
	// Insertion sort: member lists are short and usually nearly sorted
	// (the remap through a monotone-ish mapping preserves most order).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// WithPartitions splits the run into n overlapping temporal partitions
// (overlap k−1), mines each independently — in parallel under WithWorkers
// — and merges the partial convoys into the exact global answer. The
// answer set is identical for every partition count (the merged ≡
// single-pass property tests), so like workers this is a performance
// knob, not a semantic one. n ≤ 1 keeps the ordinary single-pass run.
//
// Partitioned execution applies to Run with the default (grid-DBSCAN)
// backend only: Seq streams from a single-pass scan regardless (partial
// convoys are not final until the merge, so there is nothing to stream
// early), and a non-default clusterer keeps the single-pass plan — a
// backend like proxgraph clusters its own side data in its own ID space,
// which a sliced database cannot re-index. (The serving layer windows
// proxgraph queries by slicing the edge log itself.)
func WithPartitions(n int) Option { return func(q *Query) { q.partitions = n } }

// runPartitioned executes the partition → local-mine → merge plan behind
// WithPartitions: slice the database into overlapping windows, run an
// ordinary sub-query per window on the par pool, remap each window's
// answers into the global ID space and stitch them with MergePartials.
func (q *Query) runPartitioned(ctx context.Context, db *model.DB) (Result, error) {
	st := Stats{Variant: q.variant, Workers: q.workers}
	if st.Workers < 1 {
		st.Workers = 1
	}
	statsOut := q.statsOut
	defer func() {
		if statsOut != nil {
			*statsOut = st
		}
	}()
	if err := q.p.Validate(); err != nil {
		return nil, err
	}
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil, nil
	}
	windows := PartitionWindows(lo, hi, q.p.K, q.partitions)
	if len(windows) == 1 {
		// A degenerate partitioning (short domain, n ≤ 1) is exactly the
		// ordinary single-pass run.
		sub := *q
		sub.partitions = 0
		sub.statsOut = &st
		return sub.Run(ctx, db)
	}
	ctx, sp := trace.StartSpan(ctx, "run")
	sp.Str("algo", q.algoName()).Int("m", int64(q.p.M)).Int("k", q.p.K).Float("e", q.p.Eps).
		Int("partitions", int64(len(windows))).Int("workers", int64(st.Workers))
	defer sp.End()

	st.NumPartitions = len(windows)
	parts := make([][]Convoy, len(windows))
	stats := make([]Stats, len(windows))
	errs := make([]error, len(windows))
	mctx, msp := trace.StartSpan(ctx, "partitions")
	err := par.For(mctx, len(windows), q.workers, func(i int) {
		sliced, ids := SliceTime(db, windows[i].Lo, windows[i].Hi)
		sub := *q
		sub.partitions = 0
		sub.limit = 0
		sub.workers = 1 // parallelism is spent across partitions, not within
		sub.statsOut = &stats[i]
		res, err := sub.Run(mctx, sliced)
		if err != nil {
			errs[i] = err
			return
		}
		parts[i] = RemapConvoys(res, ids)
	})
	msp.End()
	if err == nil {
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	for _, s := range stats {
		st.NumCandidates += s.NumCandidates
		st.RefineUnits += s.RefineUnits
		st.ClusterPasses += s.ClusterPasses
		st.ClusterPassesFull += s.ClusterPassesFull
		st.ClusterPassesIncremental += s.ClusterPassesIncremental
		st.ObjectsReclustered += s.ObjectsReclustered
		st.VertexKept += s.VertexKept
		st.VertexTotal += s.VertexTotal
		st.SimplifyTime += s.SimplifyTime
		st.FilterTime += s.FilterTime
		st.RefineTime += s.RefineTime
		if s.Delta > st.Delta {
			st.Delta = s.Delta
		}
		if s.Lambda > st.Lambda {
			st.Lambda = s.Lambda
		}
	}
	_, gsp := trace.StartSpan(ctx, "merge")
	merged := MergePartials(windows, parts, q.p)
	gsp.Int("partials", int64(countConvoys(parts))).Int("merged", int64(len(merged)))
	gsp.End()
	sp.Int("cluster_passes", st.ClusterPasses)
	if q.limit > 0 && len(merged) > q.limit {
		merged = merged[:q.limit]
	}
	return merged, nil
}

// algoName names the query's algorithm for trace annotations.
func (q *Query) algoName() string {
	if q.useCMC {
		return "cmc"
	}
	return q.variant.String()
}

func countConvoys(parts [][]Convoy) int {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n
}
