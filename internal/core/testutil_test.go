package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// absent marks a missing sample in test position tables.
var absent = geom.Pt(math.NaN(), math.NaN())

// buildDB constructs a database from per-object position rows: rows[i][j] is
// object i's position at tick startTick+j, with `absent` producing a
// sampling gap (no sample recorded). Leading/trailing absents shrink the
// object's lifespan.
func buildDB(t *testing.T, startTick model.Tick, rows ...[]geom.Point) *model.DB {
	t.Helper()
	db := model.NewDB()
	for _, row := range rows {
		var samples []model.Sample
		for j, p := range row {
			if math.IsNaN(p.X) {
				continue
			}
			samples = append(samples, model.Sample{T: startTick + model.Tick(j), P: p})
		}
		tr, err := model.NewTrajectory("", samples)
		if err != nil {
			t.Fatalf("buildDB: %v", err)
		}
		db.Add(tr)
	}
	return db
}

// bruteMaximalSets is an independent implementation of maximal
// density-connected sets straight from Definitions 1-2 (O(n³), fine for
// test sizes). Neighborhoods include the point itself.
func bruteMaximalSets(ids []model.ObjectID, pts []geom.Point, eps float64, minPts int) [][]model.ObjectID {
	n := len(pts)
	within := func(i, j int) bool { return geom.D(pts[i], pts[j]) <= eps }
	nhSize := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if within(i, j) {
				nhSize[i]++
			}
		}
	}
	core := make([]bool, n)
	for i := range core {
		core[i] = nhSize[i] >= minPts
	}
	seen := map[string]bool{}
	var out [][]model.ObjectID
	for x := 0; x < n; x++ {
		if !core[x] {
			continue
		}
		// Density-reachability closure from core x.
		reach := make([]bool, n)
		reach[x] = true
		queue := []int{x}
		for head := 0; head < len(queue); head++ {
			c := queue[head]
			if !core[c] {
				continue
			}
			for q := 0; q < n; q++ {
				if !reach[q] && within(c, q) {
					reach[q] = true
					queue = append(queue, q)
				}
			}
		}
		var members []model.ObjectID
		for i, r := range reach {
			if r {
				members = append(members, ids[i])
			}
		}
		sort.Ints(members)
		key := setKey(members)
		if !seen[key] {
			seen[key] = true
			out = append(out, members)
		}
	}
	return out
}

// bruteConvoys answers the convoy query by exhaustive subset enumeration —
// an independent oracle usable for small N (≤ ~12) and small T. For every
// object subset of size ≥ m it finds the maximal runs of consecutive ticks
// during which the subset is contained in a single maximal
// density-connected set, keeps runs of length ≥ k, and canonicalizes.
func bruteConvoys(t *testing.T, db *model.DB, p Params) Result {
	t.Helper()
	n := db.Len()
	if n > 16 {
		t.Fatalf("bruteConvoys: too many objects (%d)", n)
	}
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil
	}
	// Per tick: list of maximal clusters as object bitmasks.
	clustersAt := make([][]uint32, hi-lo+1)
	for tk := lo; tk <= hi; tk++ {
		var ids []model.ObjectID
		var pts []geom.Point
		for _, tr := range db.Trajectories() {
			if pt, okk := tr.LocationAt(tk); okk {
				ids = append(ids, tr.ID)
				pts = append(pts, pt)
			}
		}
		if len(ids) < p.M {
			continue
		}
		for _, c := range bruteMaximalSets(ids, pts, p.Eps, p.M) {
			var mask uint32
			for _, id := range c {
				mask |= 1 << uint(id)
			}
			clustersAt[tk-lo] = append(clustersAt[tk-lo], mask)
		}
	}
	var raw []Convoy
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		size := 0
		var objs []model.ObjectID
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				size++
				objs = append(objs, i)
			}
		}
		if size < p.M {
			continue
		}
		runStart := model.Tick(-1)
		flush := func(endInclusive model.Tick) {
			if runStart >= 0 && int64(endInclusive-runStart)+1 >= p.K {
				raw = append(raw, Convoy{Objects: objs, Start: runStart, End: endInclusive})
			}
			runStart = -1
		}
		for tk := lo; tk <= hi; tk++ {
			co := false
			for _, cm := range clustersAt[tk-lo] {
				if cm&mask == mask {
					co = true
					break
				}
			}
			if co {
				if runStart < 0 {
					runStart = tk
				}
			} else {
				flush(tk - 1)
			}
		}
		flush(hi)
	}
	return Canonicalize(raw)
}
