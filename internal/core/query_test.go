package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// queryAlgos enumerates the four paper algorithms as Query options.
var queryAlgos = []struct {
	name string
	opt  Option
}{
	{"cmc", WithCMC()},
	{"cuts", WithVariant(VariantCuTS)},
	{"cuts+", WithVariant(VariantCuTSPlus)},
	{"cuts*", WithVariant(VariantCuTSStar)},
}

// collectSeq drains a query's Seq, failing the test on any yielded error.
func collectSeq(t *testing.T, q *Query, ctx context.Context, db *model.DB) []Convoy {
	t.Helper()
	var out []Convoy
	for c, err := range q.Seq(ctx, db) {
		if err != nil {
			t.Fatalf("Seq error: %v", err)
		}
		out = append(out, c)
	}
	return out
}

// Query.Run must equal the legacy entry points answer-for-answer, for all
// four algorithms across worker counts.
func TestPropQueryRunEqualsLegacyAPI(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 6; iter++ {
		db := randomDB(r, 4+r.Intn(5), 12+r.Intn(12))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		refCMC, err := CMCParallel(db, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range queryAlgos {
			for _, workers := range []int{1, 3} {
				q := NewQuery(WithParams(p), algo.opt, WithWorkers(workers))
				got, err := q.Run(context.Background(), db)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", algo.name, workers, err)
				}
				if !got.Equal(refCMC) {
					t.Fatalf("%s workers=%d: Query.Run differs from CMC reference\ngot:  %v\nwant: %v",
						algo.name, workers, got, refCMC)
				}
			}
		}
		// The legacy Config path must round-trip through WithConfig.
		cfg := Config{Variant: VariantCuTSStar, Delta: 0.7, Lambda: 3, Workers: 2}
		legacy, legacySt, err := Run(db, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		viaQuery, err := NewQuery(WithParams(p), WithConfig(cfg), WithStats(&st)).Run(context.Background(), db)
		if err != nil {
			t.Fatal(err)
		}
		if !legacy.Equal(viaQuery) {
			t.Fatal("WithConfig query differs from legacy Run")
		}
		if st.NumCandidates != legacySt.NumCandidates || st.Lambda != legacySt.Lambda || st.Delta != legacySt.Delta {
			t.Fatalf("stats mismatch: %+v vs %+v", st, legacySt)
		}
	}
}

// Collecting Seq must reproduce the batch Result exactly — every yielded
// convoy a maximal answer, none repeated, none missing — for all four
// algorithms across worker counts.
func TestPropSeqCollectEqualsRun(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 6; iter++ {
		db := randomDB(r, 4+r.Intn(5), 12+r.Intn(12))
		p := Params{M: 2, K: int64(2 + r.Intn(3)), Eps: 1 + r.Float64()*2}
		for _, algo := range queryAlgos {
			for _, workers := range []int{1, 4} {
				q := NewQuery(WithParams(p), algo.opt, WithWorkers(workers))
				batch, err := q.Run(context.Background(), db)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", algo.name, workers, err)
				}
				streamed := collectSeq(t, q, context.Background(), db)
				if len(streamed) != len(batch) {
					t.Fatalf("%s workers=%d: Seq yielded %d convoys, batch has %d\nseq:   %v\nbatch: %v",
						algo.name, workers, len(streamed), len(batch), streamed, batch)
				}
				if !Canonicalize(streamed).Equal(batch) {
					t.Fatalf("%s workers=%d: Seq collection differs from batch\nseq:   %v\nbatch: %v",
						algo.name, workers, Canonicalize(streamed), batch)
				}
			}
		}
	}
}

// earlyConvoyDB builds a database whose only convoy closes near the start
// of a long time domain: o0 and o1 ride together for `togetherTicks`
// ticks, then separate while everyone keeps reporting until `total`.
func earlyConvoyDB(t *testing.T, togetherTicks, total int) *model.DB {
	t.Helper()
	rows := make([][]geom.Point, 2)
	for o := range rows {
		rows[o] = make([]geom.Point, total)
		for i := 0; i < total; i++ {
			y := 0.5 * float64(o)
			if i >= togetherTicks && o == 1 {
				y = 1000 // separated: convoy closes at tick togetherTicks
			}
			rows[o][i] = geom.Pt(float64(i), y)
		}
	}
	return buildDB(t, 0, rows...)
}

// Breaking out of Seq after the first convoy must abandon the scan: the
// clustering-pass meter stays near the break point instead of covering the
// whole time domain. This is the early-stop acceptance bound.
func TestSeqEarlyBreakDoesLessClusteringWork(t *testing.T) {
	const together, total = 5, 400
	db := earlyConvoyDB(t, together, total)
	p := Params{M: 2, K: 3, Eps: 1}
	for _, workers := range []int{1, 4} {
		var full, early Stats
		if _, err := NewQuery(WithParams(p), WithCMC(), WithWorkers(workers), WithStats(&full)).Run(context.Background(), db); err != nil {
			t.Fatal(err)
		}
		if full.ClusterPasses != int64(total) {
			t.Fatalf("workers=%d: full run made %d passes, want %d", workers, full.ClusterPasses, total)
		}
		q := NewQuery(WithParams(p), WithCMC(), WithWorkers(workers), WithStats(&early))
		var got []Convoy
		for c, err := range q.Seq(context.Background(), db) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, c)
			break
		}
		if len(got) != 1 || got[0].End != model.Tick(together-1) {
			t.Fatalf("workers=%d: first yield = %v, want the [0,%d] convoy", workers, got, together-1)
		}
		// The convoy closes at tick `together`; the pipeline may overrun by
		// its bounded window (~3 jobs per worker).
		bound := int64(together + 1 + 3*workers + 2)
		if early.ClusterPasses > bound {
			t.Fatalf("workers=%d: early break still made %d passes (bound %d, full %d)",
				workers, early.ClusterPasses, bound, full.ClusterPasses)
		}
		if early.ClusterPasses >= full.ClusterPasses {
			t.Fatalf("workers=%d: early break did no less work: %d vs %d",
				workers, early.ClusterPasses, full.ClusterPasses)
		}
	}
}

// WithLimit must deliver the limited prefix and abandon the remaining
// work, for the streaming CuTS path too: the limited run's pass meter
// stays strictly below the full run's.
func TestWithLimitStopsCuTSRefinementEarly(t *testing.T) {
	// Group A convoys early, group B late; everyone reports over the whole
	// domain so the filter produces (at least) two candidate windows far
	// apart in start time.
	const total = 200
	rows := make([][]geom.Point, 4)
	for o := range rows {
		rows[o] = make([]geom.Point, total)
		for i := 0; i < total; i++ {
			base := 100.0 * float64(o)
			y := base
			switch {
			case o < 2 && i <= 10: // A together on [0,10]
				y = 0.3 * float64(o)
			case o >= 2 && i >= 150 && i <= 160: // B together on [150,160]
				y = 50 + 0.3*float64(o-2)
			}
			rows[o][i] = geom.Pt(float64(i), y)
		}
	}
	db := buildDB(t, 0, rows...)
	p := Params{M: 2, K: 3, Eps: 1}
	for _, algo := range queryAlgos[1:] { // the three CuTS variants
		var full, limited Stats
		fullRes, err := NewQuery(WithParams(p), algo.opt, WithLambda(5), WithStats(&full)).Run(context.Background(), db)
		if err != nil {
			t.Fatal(err)
		}
		if len(fullRes) != 2 {
			t.Fatalf("%s: fixture yields %d convoys, want 2: %v", algo.name, len(fullRes), fullRes)
		}
		if full.NumCandidates < 2 {
			t.Fatalf("%s: fixture produced %d candidates, need ≥ 2 for the early-stop claim", algo.name, full.NumCandidates)
		}
		got, err := NewQuery(WithParams(p), algo.opt, WithLambda(5), WithLimit(1), WithStats(&limited)).Run(context.Background(), db)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("%s: limit=1 returned %d convoys", algo.name, len(got))
		}
		if !got[0].Equal(fullRes[0]) {
			t.Fatalf("%s: limited answer %v is not the earliest convoy %v", algo.name, got[0], fullRes[0])
		}
		if limited.ClusterPasses >= full.ClusterPasses {
			t.Fatalf("%s: limit=1 did no less clustering work: %d vs %d",
				algo.name, limited.ClusterPasses, full.ClusterPasses)
		}
	}
}

// Cancelling mid-run must surface ctx.Err() within about one tick of work
// per worker: the pass meter stops near the cancellation point instead of
// covering the whole domain. This is the cancellation-latency bound.
func TestSeqCancelLatencyBound(t *testing.T) {
	const together, total = 5, 400
	db := earlyConvoyDB(t, together, total)
	p := Params{M: 2, K: 3, Eps: 1}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var st Stats
		q := NewQuery(WithParams(p), WithCMC(), WithWorkers(workers), WithStats(&st))
		var seqErr error
		yields := 0
		for _, err := range q.Seq(ctx, db) {
			if err != nil {
				seqErr = err
				continue
			}
			yields++
			cancel() // cancel the moment the first convoy arrives
		}
		cancel()
		if yields != 1 {
			t.Fatalf("workers=%d: got %d convoys before cancellation", workers, yields)
		}
		if !errors.Is(seqErr, context.Canceled) {
			t.Fatalf("workers=%d: Seq error = %v, want context.Canceled", workers, seqErr)
		}
		bound := int64(together + 1 + 3*workers + 2)
		if st.ClusterPasses > bound {
			t.Fatalf("workers=%d: cancellation still made %d passes (bound %d, domain %d)",
				workers, st.ClusterPasses, bound, total)
		}
	}
}

// A cancelled Run returns the context error and no partial result, on
// every algorithm.
func TestRunPreCancelledReturnsError(t *testing.T) {
	db := earlyConvoyDB(t, 5, 30)
	p := Params{M: 2, K: 3, Eps: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range queryAlgos {
		res, err := NewQuery(WithParams(p), algo.opt).Run(ctx, db)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", algo.name, err)
		}
		if res != nil {
			t.Fatalf("%s: cancelled run returned a partial result: %v", algo.name, res)
		}
	}
}

// Invalid parameters fail Run and Seq up front with the validation error.
func TestQueryValidation(t *testing.T) {
	db := earlyConvoyDB(t, 3, 10)
	if _, err := NewQuery().Run(context.Background(), db); err == nil {
		t.Fatal("Run with unset parameters succeeded")
	}
	seen := false
	for _, err := range NewQuery(M(2)).Seq(context.Background(), db) {
		if err == nil {
			t.Fatal("Seq with unset parameters yielded a convoy")
		}
		seen = true
	}
	if !seen {
		t.Fatal("Seq with unset parameters yielded nothing")
	}
}

// A limited CMC run returns the earliest-closing convoys and they are
// members of the full canonical answer.
func TestWithLimitPrefixIsSubsetOfFullAnswer(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randomDB(r, 8, 30)
	p := Params{M: 2, K: 2, Eps: 2}
	full, err := NewQuery(WithParams(p), WithCMC()).Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Skipf("fixture produced only %d convoys", len(full))
	}
	limited, err := NewQuery(WithParams(p), WithCMC(), WithLimit(2)).Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Fatalf("limit=2 returned %d convoys", len(limited))
	}
	for _, c := range limited {
		found := false
		for _, f := range full {
			if c.Equal(f) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("limited answer %v not in the full result %v", c, full)
		}
	}
}
