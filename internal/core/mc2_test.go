package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// figure2aDB: objects 0-2 travel together for 3 ticks; object 3 shares
// their cluster at t1 only.
func figure2aDB(t *testing.T) *model.DB {
	return buildDB(t, 1,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 1), geom.Pt(0, 2)},
		[]geom.Point{geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(1, 2)},
		[]geom.Point{geom.Pt(2, 0), geom.Pt(2, 1), geom.Pt(2, 2)},
		[]geom.Point{geom.Pt(3, 0), geom.Pt(30, 1), geom.Pt(30, 2)},
	)
}

// TestFigure2aMC2MissesConvoy: with θ = 1, MC2 cannot discover the convoy
// {o0,o1,o2}×[1,3] because the t1→t2 overlap is only 3/4.
func TestFigure2aMC2MissesConvoy(t *testing.T) {
	db := figure2aDB(t)
	p := Params{M: 3, K: 3, Eps: 1.2}
	convoys, err := CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(convoys) != 1 {
		t.Fatalf("CMC = %v", convoys)
	}
	mc, err := MC2(db, p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareAnswers(mc, convoys)
	if rep.FalseNegatives != 100 {
		t.Errorf("θ=1 should miss the convoy entirely: %+v (mc=%v)", rep, mc)
	}
	// With θ = 0.5 the chain survives t1→t2 and the common set matches the
	// convoy — but this is luck, not a guarantee (see Figure 2(b)).
	mc, err = MC2(db, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range mc {
		if c.Equal(convoys[0]) {
			found = true
		}
	}
	if !found {
		t.Errorf("θ=0.5 chain should cover the convoy: %v", mc)
	}
}

// TestFigure2bMC2FalsePositive: membership drifts o0o1o2 → o1o2o3 → o2o3o0;
// with θ = 0.5 MC2 chains them into a "convoy" although no 3-object set
// stays together 3 ticks.
func TestFigure2bMC2FalsePositive(t *testing.T) {
	db := buildDB(t, 1,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, -50), geom.Pt(4, 2)}, // o0: leaves, returns
		[]geom.Point{geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(50, 2)},  // o1: leaves at t3
		[]geom.Point{geom.Pt(2, 0), geom.Pt(2, 1), geom.Pt(2, 2)},   // o2: stays
		[]geom.Point{geom.Pt(40, 0), geom.Pt(3, 1), geom.Pt(3, 2)},  // o3: joins at t2
	)
	p := Params{M: 3, K: 3, Eps: 1.2}
	convoys, err := CMC(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(convoys) != 0 {
		t.Fatalf("no convoy expected, CMC = %v", convoys)
	}
	mc, err := MC2(db, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc) == 0 {
		t.Fatal("MC2 should chain the drifting clusters")
	}
	rep := CompareAnswers(mc, convoys)
	if rep.FalsePositives != 100 {
		t.Errorf("all MC2 answers should be false positives: %+v (mc=%v)", rep, mc)
	}
	// At least one reported chain must span all three ticks (the drift).
	spanned := false
	for _, c := range mc {
		if c.Start == 1 && c.End == 3 {
			spanned = true
		}
	}
	if !spanned {
		t.Errorf("expected a chain spanning [1,3]: %v", mc)
	}
}

func TestMC2ThetaValidation(t *testing.T) {
	db := figure2aDB(t)
	p := Params{M: 2, K: 1, Eps: 1.2}
	if _, err := MC2(db, p, -0.1); err == nil {
		t.Error("negative θ accepted")
	}
	if _, err := MC2(db, p, 1.1); err == nil {
		t.Error("θ > 1 accepted")
	}
	if _, err := MC2(db, p, 0.7); err != nil {
		t.Errorf("valid θ rejected: %v", err)
	}
	if _, err := MC2(db, Params{M: 0, K: 1, Eps: 1}, 0.5); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMC2EmptyDB(t *testing.T) {
	mc, err := MC2(model.NewDB(), Params{M: 2, K: 1, Eps: 1}, 0.5)
	if err != nil || len(mc) != 0 {
		t.Errorf("empty DB: %v, %v", mc, err)
	}
}

// TestMC2NoLifetimeConstraint: a 1-tick cluster is still reported (moving
// clusters ignore k).
func TestMC2NoLifetimeConstraint(t *testing.T) {
	db := buildDB(t, 0,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 50)},
		[]geom.Point{geom.Pt(1, 0), geom.Pt(80, 50)},
	)
	mc, err := MC2(db, Params{M: 2, K: 100, Eps: 1.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc) != 1 || mc[0].Start != 0 || mc[0].End != 0 {
		t.Errorf("MC2 = %v, want the single 1-tick cluster", mc)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []model.ObjectID
		want float64
	}{
		{ids(1, 2, 3), ids(1, 2, 3), 1},
		{ids(1, 2, 3), ids(2, 3, 4), 0.5},
		{ids(1, 2), ids(3, 4), 0},
		{ids(1, 2, 3), ids(2, 3, 4, 5), 2.0 / 5},
		{nil, nil, 0},
		{ids(1), nil, 0},
	}
	for _, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("jaccard(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAnswersArithmetic(t *testing.T) {
	ref := Canonicalize([]Convoy{
		{Objects: ids(1, 2), Start: 0, End: 9},
		{Objects: ids(3, 4), Start: 5, End: 14},
	})
	reported := []Convoy{
		{Objects: ids(1, 2), Start: 0, End: 9},  // true positive
		{Objects: ids(7, 8), Start: 0, End: 3},  // false positive
		{Objects: ids(9, 10), Start: 0, End: 3}, // false positive
	}
	rep := CompareAnswers(reported, ref)
	if rep.Reported != 3 || rep.Reference != 2 {
		t.Errorf("counts: %+v", rep)
	}
	if rep.FalsePositives < 66.6 || rep.FalsePositives > 66.7 {
		t.Errorf("FP = %g, want 2/3", rep.FalsePositives)
	}
	if rep.FalseNegatives != 50 {
		t.Errorf("FN = %g, want 50", rep.FalseNegatives)
	}
	empty := CompareAnswers(nil, nil)
	if empty.FalsePositives != 0 || empty.FalseNegatives != 0 {
		t.Errorf("empty comparison: %+v", empty)
	}
}
