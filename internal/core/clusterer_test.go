package core

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/model"
)

// componentClusterer is a minimal non-default backend for tests: connected
// components of the snapshot edges at weight ≥ key.Eps (the proxgraph
// semantics, reimplemented here because core's internal tests cannot
// import proxgraph without a cycle).
type componentClusterer struct{}

func (componentClusterer) Name() string { return "components" }

func (componentClusterer) Clusters(key ClusterKey, snap TickSnapshot) [][]model.ObjectID {
	parent := map[model.ObjectID]model.ObjectID{}
	var find func(model.ObjectID) model.ObjectID
	find = func(x model.ObjectID) model.ObjectID {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, e := range snap.Edges {
		if e.W >= key.Eps {
			parent[find(e.A)] = find(e.B)
		}
	}
	groups := map[model.ObjectID][]model.ObjectID{}
	for x := range parent {
		groups[find(x)] = append(groups[find(x)], x)
	}
	var out [][]model.ObjectID
	for _, g := range groups {
		if len(g) >= key.M {
			sort.Ints(g)
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TestWithClustererDefaultIsIdentity pins the refactor: routing every
// algorithm through an explicitly passed DBSCANClusterer yields the exact
// pre-refactor answers, for all variants × worker counts, on random
// databases.
func TestWithClustererDefaultIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	p := Params{M: 3, K: 3, Eps: 2.5}
	for trial := 0; trial < 5; trial++ {
		db := randomDB(r, 14, 20)
		for _, algo := range []Option{WithCMC(), WithVariant(VariantCuTS), WithVariant(VariantCuTSPlus), WithVariant(VariantCuTSStar)} {
			for _, workers := range []int{1, 4} {
				want, err := NewQuery(WithParams(p), algo, WithWorkers(workers)).Run(context.Background(), db)
				if err != nil {
					t.Fatal(err)
				}
				got, err := NewQuery(WithParams(p), algo, WithWorkers(workers), WithClusterer(DBSCANClusterer{})).
					Run(context.Background(), db)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d workers %d: WithClusterer(default) answer differs:\n got %v\nwant %v",
						trial, workers, got, want)
				}
			}
		}
	}
}

// TestDBSCANClustererContract checks the backend against the raw dbscan
// mapping and the member-ordering contract on an unsorted live-feed style
// snapshot.
func TestDBSCANClustererContract(t *testing.T) {
	key := ClusterKey{Eps: 1.5, M: 2}
	ids := []model.ObjectID{9, 3, 7, 1}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(10, 0), geom.Pt(10.5, 0)}
	got := DBSCANClusterer{}.Clusters(key, TickSnapshot{IDs: ids, Pts: pts})
	for _, c := range got {
		if !sort.IntsAreSorted(c) {
			t.Fatalf("cluster %v not ascending", c)
		}
		if len(c) < key.M {
			t.Fatalf("cluster %v smaller than m", c)
		}
	}
	idx := dbscan.SnapshotClustersMaximal(pts, key.Eps, key.M)
	if len(got) != len(idx) {
		t.Fatalf("got %d clusters, dbscan has %d", len(got), len(idx))
	}
	// Below m objects: no clustering at all.
	if c := (DBSCANClusterer{}).Clusters(ClusterKey{Eps: 1, M: 5}, TickSnapshot{IDs: ids, Pts: pts}); c != nil {
		t.Fatalf("undersized snapshot clustered: %v", c)
	}
}

// TestWithClustererRequiresCMC: the CuTS filter bounds are theorems about
// Euclidean DBSCAN, so a non-default backend without WithCMC must fail
// validation — for Run and Seq alike.
func TestWithClustererRequiresCMC(t *testing.T) {
	db := buildDB(t, 0, []geom.Point{geom.Pt(0, 0)}, []geom.Point{geom.Pt(1, 0)})
	p := Params{M: 2, K: 1, Eps: 2}
	_, err := NewQuery(WithParams(p), WithClusterer(componentClusterer{})).Run(context.Background(), db)
	if err == nil || !strings.Contains(err.Error(), "requires the CMC algorithm") {
		t.Fatalf("CuTS + custom clusterer: err = %v, want CMC-required error", err)
	}
	for _, serr := range NewQuery(WithParams(p), WithClusterer(componentClusterer{})).Seq(context.Background(), db) {
		if serr == nil || !strings.Contains(serr.Error(), "requires the CMC algorithm") {
			t.Fatalf("Seq err = %v, want CMC-required error", serr)
		}
	}
	// With CMC the combination is legal.
	if _, err := NewQuery(WithParams(p), WithCMC(), WithClusterer(componentClusterer{})).Run(context.Background(), db); err != nil {
		t.Fatalf("CMC + custom clusterer failed: %v", err)
	}
}

// TestClusterSourceBackendKeys covers the sharing identity (satellite:
// monitor-table key isolation at the core level): equal (e, m) with
// different backends are different keys, so two sources never share — and
// a key lying about its backend is rejected.
func TestClusterSourceBackendKeys(t *testing.T) {
	base := ClusterKey{Eps: 2, M: 2}
	def, err := NewClusterSource(base)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewClusterSourceWith(ClusterKey{Eps: 2, M: 2, Backend: "components"}, componentClusterer{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Key() == comp.Key() {
		t.Fatal("distinct backends share a ClusterKey")
	}
	if def.Key() != base.Canonical() || def.Key().BackendName() != DefaultBackend {
		t.Fatalf("default key = %+v", def.Key())
	}

	// Both spellings of the default backend canonicalize to one key.
	spelled, err := NewClusterSourceWith(ClusterKey{Eps: 2, M: 2, Backend: DefaultBackend}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spelled.Key() != def.Key() {
		t.Fatalf("default-backend spellings diverge: %+v vs %+v", spelled.Key(), def.Key())
	}

	// A key naming a backend other than the clusterer's is a lie.
	if _, err := NewClusterSourceWith(base, componentClusterer{}); err == nil {
		t.Error("key backend mismatch accepted")
	}
	// NewClusterSource cannot resolve foreign backends by name.
	if _, err := NewClusterSource(ClusterKey{Eps: 2, M: 2, Backend: "components"}); err == nil {
		t.Error("NewClusterSource resolved a non-default backend")
	}

	// Pass counters are independent per source; Cluster and the Snapshot
	// shorthand both count.
	snap := TickSnapshot{
		IDs:   []model.ObjectID{0, 1},
		Pts:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		Edges: []ProxEdge{{A: 0, B: 1, W: 5}},
	}
	if got := comp.Cluster(snap); len(got) != 1 || got[0][0] != 0 || got[0][1] != 1 {
		t.Fatalf("component cluster = %v", got)
	}
	def.Snapshot(snap.IDs, snap.Pts)
	def.Snapshot(snap.IDs, snap.Pts)
	if def.Passes() != 2 || comp.Passes() != 1 {
		t.Fatalf("passes = %d/%d, want 2/1", def.Passes(), comp.Passes())
	}
	if comp.Clusterer().Name() != "components" || def.Clusterer().Name() != DefaultBackend {
		t.Fatalf("clusterer names = %q/%q", comp.Clusterer().Name(), def.Clusterer().Name())
	}
}

// TestMonitorBackendIsolation runs the same edge-augmented stream through
// a DBSCAN monitor and a component monitor at identical (e, m, k): the
// component backend chains the edge graph (one long convoy), while DBSCAN
// chains positions (none — the points are spread out), proving the
// backends answer different queries and must never share a pass.
func TestMonitorBackendIsolation(t *testing.T) {
	p := Params{M: 2, K: 3, Eps: 1}
	defSrc, err := NewClusterSource(p.ClusterKey())
	if err != nil {
		t.Fatal(err)
	}
	key := p.ClusterKey()
	key.Backend = "components"
	compSrc, err := NewClusterSourceWith(key, componentClusterer{})
	if err != nil {
		t.Fatal(err)
	}
	defMon, err := NewMonitor(p)
	if err != nil {
		t.Fatal(err)
	}
	compMon, err := NewMonitor(p)
	if err != nil {
		t.Fatal(err)
	}
	var defOut, compOut []Convoy
	for tick := model.Tick(1); tick <= 4; tick++ {
		snap := TickSnapshot{
			T:     tick,
			IDs:   []model.ObjectID{0, 1},
			Pts:   []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}, // far apart
			Edges: []ProxEdge{{A: 0, B: 1, W: 1}},               // yet in contact
		}
		d, err := defMon.AdvanceClusters(tick, defSrc.Cluster(snap))
		if err != nil {
			t.Fatal(err)
		}
		c, err := compMon.AdvanceClusters(tick, compSrc.Cluster(snap))
		if err != nil {
			t.Fatal(err)
		}
		defOut = append(defOut, d...)
		compOut = append(compOut, c...)
	}
	defOut = append(defOut, defMon.Close()...)
	compOut = append(compOut, compMon.Close()...)
	if len(defOut) != 0 {
		t.Errorf("dbscan monitor found %v, want none", defOut)
	}
	want := Canonicalize([]Convoy{{Objects: []model.ObjectID{0, 1}, Start: 1, End: 4}})
	if !Canonicalize(compOut).Equal(want) {
		t.Errorf("component monitor found %v, want %v", compOut, want)
	}
	if defSrc.Passes() != 4 || compSrc.Passes() != 4 {
		t.Errorf("passes = %d/%d, want 4/4", defSrc.Passes(), compSrc.Passes())
	}
}
