// Package core implements the paper's convoy-discovery algorithms: the
// convoy query model (Definition 3), the CMC baseline (Algorithm 1), the
// CuTS filter-refinement family — CuTS, CuTS+ and CuTS* (Algorithms 2–3,
// Sections 5–6) — the MC2 moving-cluster baseline used by the appendix
// accuracy study, and the δ/λ parameter guidelines of Section 7.4.
//
// # Answer semantics
//
// A convoy query (m, k, e) over a trajectory database returns every pair
// (O, [s, e']) such that
//
//  1. |O| ≥ m,
//  2. e' − s + 1 ≥ k (at least k consecutive time points),
//  3. at every tick t ∈ [s, e'], O is contained in a single maximal
//     density-connected set (DBSCAN with eps = e, minPts = m, neighborhoods
//     including the point itself) of the objects alive at t, with missing
//     samples interpolated linearly (Section 4), and
//  4. the pair is maximal: no other answer (O2, I2) has O ⊆ O2 and
//     [s, e'] ⊆ I2.
//
// All four algorithms return exactly this set (canonically sorted), which
// the cross-algorithm equivalence tests rely on.
//
// # Context-first execution
//
// Query is the primary execution surface: built from functional options
// (NewQuery(M(3), K(180), Eps(8), WithVariant(...), WithWorkers(n))) and
// run with Run(ctx, db) — the batch answer — or Seq(ctx, db) — an
// incremental iterator yielding convoys as the scan closes them.
// Cancellation is observed at tick, λ-partition and candidate
// granularity; breaking out of Seq (or WithLimit) abandons the remaining
// clustering work. The historical entry points (CMC, CMCParallel, Run,
// CuTS, CuTS+, CuTS*) are thin wrappers over Query.
//
// # Parallel execution
//
// Every stage of the discovery pipeline is parallel on a bounded worker
// pool selected by Config.Workers (CMCParallel for the baseline):
//
//   - simplification runs per trajectory (independent inputs, one result
//     slot each);
//   - the CMC scan clusters ticks concurrently while the candidate
//     chaining folds the snapshot clusters strictly in tick order — a
//     pipeline, not a per-tick barrier (see orderedPipeline);
//   - the CuTS filter clusters λ-partitions concurrently and chains the
//     partition clusters in time order the same way;
//   - refinement runs per candidate and canonicalizes the union.
//
// Serial and parallel runs return identical answers *by construction*, not
// by coincidence: the expensive, parallelized parts (DBSCAN over a tick or
// partition, simplifying one trajectory, refining one candidate) are pure
// functions of their inputs, and the only order-sensitive state — the live
// candidate set advanced by chainStep — is folded by a single consumer
// that receives exactly the same cluster sequences, in exactly the same
// order, as the serial loop produces. chainStep itself is reused unchanged
// between the serial and parallel paths, and property tests pin parallel
// output to the serial answer for CMC and all three CuTS variants across
// worker counts.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Params are the convoy query parameters of Definition 3.
type Params struct {
	// M is the minimum number of objects in a convoy (m ≥ 2 in the paper's
	// experiments; m ≥ 1 is accepted).
	M int
	// K is the minimum lifetime in consecutive time points (k ≥ 1).
	K int64
	// Eps is the density-connection distance threshold e (> 0; 0 allows
	// only coincident objects and is accepted for testing).
	Eps float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	var errs []string
	if p.M < 1 {
		errs = append(errs, fmt.Sprintf("m must be ≥ 1 (got %d)", p.M))
	}
	if p.K < 1 {
		errs = append(errs, fmt.Sprintf("k must be ≥ 1 (got %d)", p.K))
	}
	if p.Eps < 0 {
		errs = append(errs, fmt.Sprintf("e must be ≥ 0 (got %g)", p.Eps))
	}
	if len(errs) > 0 {
		return errors.New("core: invalid convoy parameters: " + strings.Join(errs, "; "))
	}
	return nil
}

// Convoy is one answer of the convoy query: a group of objects together
// with the maximal time interval over which they traveled together.
type Convoy struct {
	// Objects is the ascending list of member object IDs.
	Objects []model.ObjectID
	// Start and End delimit the inclusive tick interval.
	Start, End model.Tick
}

// Lifetime returns the number of time points the convoy spans.
func (c Convoy) Lifetime() int64 { return int64(c.End-c.Start) + 1 }

// Size returns the number of member objects.
func (c Convoy) Size() int { return len(c.Objects) }

// Contains reports whether the convoy includes the object.
func (c Convoy) Contains(id model.ObjectID) bool { return containsSorted(c.Objects, id) }

// Equal reports whether two convoys have identical members and interval.
func (c Convoy) Equal(o Convoy) bool {
	return c.Start == o.Start && c.End == o.End && equalSorted(c.Objects, o.Objects)
}

// DominatedBy reports whether o covers c in both dimensions: c's objects are
// a subset of o's and c's interval lies inside o's. A convoy dominates
// itself.
func (c Convoy) DominatedBy(o Convoy) bool {
	return o.Start <= c.Start && c.End <= o.End && subsetSorted(c.Objects, o.Objects)
}

// String renders the convoy as "⟨o1,o2,[s,e]⟩" using object IDs.
func (c Convoy) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, id := range c.Objects {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "o%d", id)
	}
	fmt.Fprintf(&b, ",[%d,%d]⟩", c.Start, c.End)
	return b.String()
}

// Result is a canonical set of convoys: maximal answers only, sorted by
// (Start, End, member list).
type Result []Convoy

// Canonicalize deduplicates, removes dominated (non-maximal) convoys, and
// sorts the remainder into the canonical order. The input slice is not
// modified.
func Canonicalize(convoys []Convoy) Result {
	// Dedup exact duplicates first (cheap via keys).
	seen := make(map[string]struct{}, len(convoys))
	uniq := make([]Convoy, 0, len(convoys))
	for _, c := range convoys {
		key := fmt.Sprintf("%d|%d|%s", c.Start, c.End, setKey(c.Objects))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		uniq = append(uniq, c)
	}
	// Drop dominated convoys. Sorting by descending size first makes the
	// common subset checks cheap to skip.
	sort.Slice(uniq, func(i, j int) bool {
		if len(uniq[i].Objects) != len(uniq[j].Objects) {
			return len(uniq[i].Objects) > len(uniq[j].Objects)
		}
		return uniq[i].Lifetime() > uniq[j].Lifetime()
	})
	var keep []Convoy
	for _, c := range uniq {
		dominated := false
		for _, k := range keep {
			if c.DominatedBy(k) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, c)
		}
	}
	sortResult(keep)
	return keep
}

// sortResult orders convoys canonically: by start tick, then end tick, then
// lexicographic member comparison.
func sortResult(convoys []Convoy) {
	sort.Slice(convoys, func(i, j int) bool {
		a, b := convoys[i], convoys[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		n := len(a.Objects)
		if len(b.Objects) < n {
			n = len(b.Objects)
		}
		for x := 0; x < n; x++ {
			if a.Objects[x] != b.Objects[x] {
				return a.Objects[x] < b.Objects[x]
			}
		}
		return len(a.Objects) < len(b.Objects)
	})
}

// Equal reports whether two canonical results are identical.
func (r Result) Equal(o Result) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the result one convoy per line.
func (r Result) String() string {
	var b strings.Builder
	for i, c := range r {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(c.String())
	}
	return b.String()
}
