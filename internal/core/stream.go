package core

import (
	"fmt"
	"sort"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/model"
)

// Streamer discovers convoys incrementally over a live position feed — the
// online counterpart of CMC for the monitoring applications the paper's
// introduction motivates (fleet tracking, ride-sharing alerts). Snapshots
// are pushed tick by tick; a convoy is emitted the moment it closes (its
// group stops being density-connected), so downstream consumers learn about
// a dissolved convoy one tick after it ends. Convoys still open when the
// feed stops are emitted by Close.
//
// The stream emission is *raw*: emitted convoys are exact answers but may
// include non-maximal duplicates across emissions (a batch run
// canonicalizes at the end; a stream cannot retract). Feeding every tick of
// a database through a Streamer and canonicalizing the emissions yields
// exactly the CMC batch result — a property the tests enforce.
type Streamer struct {
	p        Params
	live     []*candidate
	lastTick model.Tick
	started  bool
	closed   bool
}

// NewStreamer validates the parameters and returns an empty stream state.
func NewStreamer(p Params) (*Streamer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Streamer{p: p}, nil
}

// Live returns the number of open convoy candidates.
func (s *Streamer) Live() int { return len(s.live) }

// LastTick returns the most recently advanced tick; valid after the first
// Advance.
func (s *Streamer) LastTick() (model.Tick, bool) { return s.lastTick, s.started }

// Advance pushes the snapshot for tick t: the object IDs alive at t and
// their positions (parallel slices). Ticks must advance strictly; gaps are
// allowed and are treated as empty snapshots (they break convoy
// consecutiveness, like a tick with no clusters). It returns the convoys
// that closed at this tick, i.e., groups whose togetherness ended at t−1
// (or earlier, for a tick gap) with lifetime ≥ k.
func (s *Streamer) Advance(t model.Tick, ids []model.ObjectID, pts []geom.Point) ([]Convoy, error) {
	if s.closed {
		return nil, fmt.Errorf("core: Advance on closed Streamer")
	}
	if len(ids) != len(pts) {
		return nil, fmt.Errorf("core: Advance: %d ids vs %d points", len(ids), len(pts))
	}
	if dup, ok := firstDuplicate(ids); ok {
		// A repeated ID would cluster with itself and corrupt the candidate
		// sets (emitting convoys like ⟨o1,o1,o2⟩), so the snapshot is
		// rejected before any state changes — like serve's feed handler.
		return nil, fmt.Errorf("core: Advance: duplicate object id %d at tick %d", dup, t)
	}
	if s.started && t <= s.lastTick {
		return nil, fmt.Errorf("core: Advance: tick %d not after %d", t, s.lastTick)
	}
	var out []Convoy
	if s.started && t > s.lastTick+1 {
		// Tick gap: every live candidate dies at lastTick.
		s.live = chainStep(s.live, nil, s.p.M, s.p.K, t, t, false, &out, nil)
	}
	s.lastTick, s.started = t, true

	clusters := s.snapshot(ids, pts)
	s.live = chainStep(s.live, clusters, s.p.M, s.p.K, t, t, false, &out, nil)
	sortResult(out)
	return out, nil
}

// firstDuplicate reports a repeated object ID in a pushed snapshot. The
// common case — IDs already ascending, as database replays produce — is
// checked with a linear scan and no allocation; unsorted snapshots fall
// back to a set.
func firstDuplicate(ids []model.ObjectID) (model.ObjectID, bool) {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return ids[i], true
		}
		if ids[i] < ids[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return 0, false
	}
	seen := make(map[model.ObjectID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return id, true
		}
		seen[id] = struct{}{}
	}
	return 0, false
}

// snapshot clusters one pushed tick. IDs need not be sorted; cluster member
// lists come out ascending.
func (s *Streamer) snapshot(ids []model.ObjectID, pts []geom.Point) [][]model.ObjectID {
	if len(ids) < s.p.M {
		return nil
	}
	idxClusters := dbscan.SnapshotClustersMaximal(pts, s.p.Eps, s.p.M)
	clusters := make([][]model.ObjectID, len(idxClusters))
	for ci, c := range idxClusters {
		objs := make([]model.ObjectID, len(c))
		for i, idx := range c {
			objs[i] = ids[idx]
		}
		sort.Ints(objs)
		clusters[ci] = objs
	}
	return clusters
}

// Close ends the stream and returns the convoys still open at the last
// advanced tick (lifetime ≥ k). Further Advance calls fail.
func (s *Streamer) Close() []Convoy {
	if s.closed {
		return nil
	}
	s.closed = true
	var out []Convoy
	flushCandidates(s.live, s.p.K, &out, nil)
	s.live = nil
	sortResult(out)
	return out
}

// ReplayTicks walks a stored database tick by tick over its whole time
// domain, calling fn with the snapshot of every tick (the same interpolated
// Ot that CMC clusters, Section 4). It is the bridge between batch storage
// and the online interfaces: the serving layer uses it to drive feeds from
// stored databases, and StreamDB uses it to state the Streamer/CMC
// equivalence. Iteration stops at the first error from fn, which is
// returned. An empty database replays zero ticks.
func ReplayTicks(db *model.DB, fn func(t model.Tick, ids []model.ObjectID, pts []geom.Point) error) error {
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil
	}
	for t := lo; t <= hi; t++ {
		ids, pts := db.SnapshotAt(t)
		if err := fn(t, ids, pts); err != nil {
			return err
		}
	}
	return nil
}

// StreamDB replays a stored database through a Streamer tick by tick
// (interpolating gaps exactly like CMC) and returns the canonicalized
// emissions — by construction equal to CMC(db, p). Exists mostly for tests
// and as executable documentation of the Streamer contract.
func StreamDB(db *model.DB, p Params) (Result, error) {
	s, err := NewStreamer(p)
	if err != nil {
		return nil, err
	}
	var all []Convoy
	err = ReplayTicks(db, func(t model.Tick, ids []model.ObjectID, pts []geom.Point) error {
		got, err := s.Advance(t, ids, pts)
		all = append(all, got...)
		return err
	})
	if err != nil {
		return nil, err
	}
	all = append(all, s.Close()...)
	return Canonicalize(all), nil
}
