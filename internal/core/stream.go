package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/model"
)

// Streamer discovers convoys incrementally over a live position feed — the
// online counterpart of CMC for the monitoring applications the paper's
// introduction motivates (fleet tracking, ride-sharing alerts). Snapshots
// are pushed tick by tick; a convoy is emitted the moment it closes (its
// group stops being density-connected), so downstream consumers learn about
// a dissolved convoy one tick after it ends. Convoys still open when the
// feed stops are emitted by Close.
//
// A Streamer is the 1-monitor special case of the two-stage streaming
// engine: one ClusterSource (the per-tick snapshot DBSCAN at the
// parameters' ClusterKey) wired to one Monitor (the candidate chains for
// (m, k)). Many standing queries over one feed should instead share
// sources directly — see Monitor.
//
// The stream emission is *raw*: emitted convoys are exact answers but may
// include non-maximal duplicates across emissions (a batch run
// canonicalizes at the end; a stream cannot retract). Feeding every tick of
// a database through a Streamer and canonicalizing the emissions yields
// exactly the CMC batch result — a property the tests enforce.
type Streamer struct {
	src *ClusterSource
	mon *Monitor
}

// NewStreamer validates the parameters and returns an empty stream state.
func NewStreamer(p Params) (*Streamer, error) {
	mon, err := NewMonitor(p)
	if err != nil {
		return nil, err
	}
	src, err := NewClusterSource(p.ClusterKey())
	if err != nil {
		return nil, err
	}
	return &Streamer{src: src, mon: mon}, nil
}

// Live returns the number of open convoy candidates.
func (s *Streamer) Live() int { return s.mon.Live() }

// LastTick returns the most recently advanced tick; valid after the first
// Advance.
func (s *Streamer) LastTick() (model.Tick, bool) { return s.mon.LastTick() }

// ClusterPasses returns the number of snapshot clustering passes run so
// far (one per accepted Advance).
func (s *Streamer) ClusterPasses() int64 { return s.src.Passes() }

// Advance pushes the snapshot for tick t: the object IDs alive at t and
// their positions (parallel slices). Ticks must advance strictly; gaps are
// allowed and are treated as empty snapshots (they break convoy
// consecutiveness, like a tick with no clusters). It returns the convoys
// that closed at this tick, i.e., groups whose togetherness ended at t−1
// (or earlier, for a tick gap) with lifetime ≥ k.
func (s *Streamer) Advance(t model.Tick, ids []model.ObjectID, pts []geom.Point) ([]Convoy, error) {
	if s.mon.closed {
		return nil, fmt.Errorf("core: Advance on closed Streamer")
	}
	if len(ids) != len(pts) {
		return nil, fmt.Errorf("core: Advance: %d ids vs %d points", len(ids), len(pts))
	}
	if dup, ok := FirstDuplicateID(ids); ok {
		// A repeated ID would cluster with itself and corrupt the candidate
		// sets (emitting convoys like ⟨o1,o1,o2⟩), so the snapshot is
		// rejected before any state changes — like serve's feed handler.
		return nil, fmt.Errorf("core: Advance: duplicate object id %d at tick %d", dup, t)
	}
	if s.mon.started && t <= s.mon.lastTick {
		// Checked here, not left to the monitor, so a rejected tick never
		// pays for a clustering pass.
		return nil, fmt.Errorf("core: Advance: tick %d not after %d", t, s.mon.lastTick)
	}
	return s.mon.AdvanceClusters(t, s.src.Snapshot(ids, pts))
}

// Close ends the stream and returns the convoys still open at the last
// advanced tick (lifetime ≥ k). Further Advance calls fail.
func (s *Streamer) Close() []Convoy { return s.mon.Close() }

// ReplayTicks walks a stored database tick by tick over its whole time
// domain, calling fn with the snapshot of every tick (the same interpolated
// Ot that CMC clusters, Section 4). It is the bridge between batch storage
// and the online interfaces: the serving layer uses it to drive feeds from
// stored databases, and StreamDB uses it to state the Streamer/CMC
// equivalence. Iteration stops at the first error from fn, which is
// returned. An empty database replays zero ticks.
//
// This is deliberately NOT the serving layer's crash-recovery path.
// ReplayTicks densifies: it visits every tick of the domain and fills
// gaps by interpolating each trajectory — the right semantics for turning
// a trajectory file into a stream. WAL recovery (internal/serve over
// internal/wal) must instead reproduce only the ticks clients actually
// POSTed, verbatim and gaps included, so it replays logged batches
// directly and never interpolates.
func ReplayTicks(db *model.DB, fn func(t model.Tick, ids []model.ObjectID, pts []geom.Point) error) error {
	lo, hi, ok := db.TimeRange()
	if !ok {
		return nil
	}
	for t := lo; t <= hi; t++ {
		ids, pts := db.SnapshotAt(t)
		if err := fn(t, ids, pts); err != nil {
			return err
		}
	}
	return nil
}

// StreamDB replays a stored database through a Streamer tick by tick
// (interpolating gaps exactly like CMC) and returns the canonicalized
// emissions — by construction equal to CMC(db, p). Exists mostly for tests
// and as executable documentation of the Streamer contract.
func StreamDB(db *model.DB, p Params) (Result, error) {
	s, err := NewStreamer(p)
	if err != nil {
		return nil, err
	}
	var all []Convoy
	err = ReplayTicks(db, func(t model.Tick, ids []model.ObjectID, pts []geom.Point) error {
		got, err := s.Advance(t, ids, pts)
		all = append(all, got...)
		return err
	})
	if err != nil {
		return nil, err
	}
	all = append(all, s.Close()...)
	return Canonicalize(all), nil
}
