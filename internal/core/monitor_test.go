package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(Params{M: 0, K: 1, Eps: 1}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewClusterSource(ClusterKey{Eps: -1, M: 2}); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := NewClusterSource(ClusterKey{Eps: 1, M: 0}); err == nil {
		t.Error("m=0 accepted")
	}
	m, err := NewMonitor(Params{M: 2, K: 2, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdvanceClusters(3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AdvanceClusters(3, nil); err == nil {
		t.Error("non-advancing tick accepted")
	}
	if _, err := m.AdvanceClusters(2, nil); err == nil {
		t.Error("backwards tick accepted")
	}
	m.Close()
	if _, err := m.AdvanceClusters(4, nil); err == nil {
		t.Error("AdvanceClusters after Close accepted")
	}
	if again := m.Close(); again != nil {
		t.Errorf("second Close emitted %v", again)
	}
}

func TestMonitorTickGapBreaksConvoy(t *testing.T) {
	src, _ := NewClusterSource(ClusterKey{Eps: 1, M: 2})
	m, _ := NewMonitor(Params{M: 2, K: 2, Eps: 1})
	objs := []model.ObjectID{0, 1}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	for _, tick := range []model.Tick{0, 1} {
		if _, err := m.AdvanceClusters(tick, src.Snapshot(objs, pts)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.AdvanceClusters(5, src.Snapshot(objs, pts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 1 {
		t.Fatalf("gap emission = %v", got)
	}
	if rest := m.Close(); len(rest) != 0 {
		t.Fatalf("post-gap candidate (lifetime 1) flushed: %v", rest)
	}
}

// The tentpole property: each of N monitors fed from shared cluster
// sources emits (after canonicalization) exactly what a standalone
// Streamer with the same (m, k, e) emits over the same tick sequence — and
// the pass counters prove monitors sharing (e, m) trigger exactly one
// clustering pass per tick.
func TestPropMonitorsEqualStreamers(t *testing.T) {
	r := rand.New(rand.NewSource(929))
	for iter := 0; iter < 12; iter++ {
		db := randomDB(r, 3+r.Intn(5), 8+r.Intn(12))
		// Parameter sets engineered to share clustering keys: the first
		// three share one (e, m) with different k, the rest differ in e or m.
		e1 := 0.5 + r.Float64()*2
		e2 := e1 + 0.75
		paramSets := []Params{
			{M: 2, K: 1, Eps: e1},
			{M: 2, K: 2, Eps: e1},
			{M: 2, K: int64(2 + r.Intn(3)), Eps: e1},
			{M: 2, K: 2, Eps: e2},
			{M: 3, K: 1, Eps: e1},
		}

		sources := make(map[ClusterKey]*ClusterSource)
		monitors := make([]*Monitor, len(paramSets))
		for i, p := range paramSets {
			if _, ok := sources[p.ClusterKey()]; !ok {
				src, err := NewClusterSource(p.ClusterKey())
				if err != nil {
					t.Fatal(err)
				}
				sources[p.ClusterKey()] = src
			}
			mon, err := NewMonitor(p)
			if err != nil {
				t.Fatal(err)
			}
			monitors[i] = mon
		}
		if len(sources) != 3 {
			t.Fatalf("distinct keys = %d, want 3", len(sources))
		}

		emitted := make([][]Convoy, len(paramSets))
		ticks := int64(0)
		err := ReplayTicks(db, func(tick model.Tick, ids []model.ObjectID, pts []geom.Point) error {
			ticks++
			clusters := make(map[ClusterKey][][]model.ObjectID, len(sources))
			for key, src := range sources {
				clusters[key] = src.Snapshot(ids, pts) // one pass per key per tick
			}
			for i, mon := range monitors {
				got, err := mon.AdvanceClusters(tick, clusters[paramSets[i].ClusterKey()])
				if err != nil {
					return err
				}
				emitted[i] = append(emitted[i], got...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for key, src := range sources {
			if src.Passes() != ticks {
				t.Fatalf("iter %d: key %+v ran %d clustering passes over %d ticks",
					iter, key, src.Passes(), ticks)
			}
		}
		for i, mon := range monitors {
			emitted[i] = append(emitted[i], mon.Close()...)
			want, err := StreamDB(db, paramSets[i])
			if err != nil {
				t.Fatal(err)
			}
			if got := Canonicalize(emitted[i]); !got.Equal(want) {
				t.Fatalf("iter %d monitor %d (m=%d k=%d e=%.3f):\nmonitor  = %v\nstreamer = %v",
					iter, i, paramSets[i].M, paramSets[i].K, paramSets[i].Eps, got, want)
			}
		}
	}
}

func TestFirstDuplicateID(t *testing.T) {
	cases := []struct {
		in      []model.ObjectID
		wantID  model.ObjectID
		wantDup bool
	}{
		{nil, 0, false},
		{ids(1), 0, false},
		{ids(1, 2, 3), 0, false},
		{ids(1, 1, 2), 1, true},  // sorted fast path
		{ids(2, 1, 2), 2, true},  // unsorted set fallback
		{ids(3, 2, 1), 0, false}, // descending, no dup
	}
	for _, c := range cases {
		id, dup := FirstDuplicateID(c.in)
		if dup != c.wantDup || (dup && id != c.wantID) {
			t.Errorf("FirstDuplicateID(%v) = (%d, %v), want (%d, %v)",
				c.in, id, dup, c.wantID, c.wantDup)
		}
	}
}
