package core

import (
	"testing"
	"time"
)

func TestStatsEach(t *testing.T) {
	st := Stats{
		ClusterPasses:            7,
		ClusterPassesFull:        4,
		ClusterPassesIncremental: 3,
		ObjectsReclustered:       120,
		NumPartitions:            3,
		NumCandidates:            5,
		RefineUnits:              2.5,
		VertexKept:               10,
		VertexTotal:              40,
		SimplifyTime:             250 * time.Millisecond,
		FilterTime:               500 * time.Millisecond,
		RefineTime:               time.Second,
	}
	got := map[string]float64{}
	st.Each(func(name string, v float64) {
		if _, dup := got[name]; dup {
			t.Errorf("Each emitted %q twice", name)
		}
		got[name] = v
	})
	want := map[string]float64{
		"cluster_passes":             7,
		"cluster_passes_full":        4,
		"cluster_passes_incremental": 3,
		"objects_reclustered":        120,
		"partitions":                 3,
		"candidates":                 5,
		"refine_units":               2.5,
		"vertex_kept":                10,
		"vertex_total":               40,
		"simplify_seconds":           0.25,
		"filter_seconds":             0.5,
		"refine_seconds":             1,
	}
	if len(got) != len(want) {
		t.Fatalf("Each emitted %d names, want %d: %v", len(got), len(want), got)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("Each(%q) = %g, want %g", name, got[name], v)
		}
	}
}
