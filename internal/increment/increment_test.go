package increment

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// reference is the from-scratch answer the Engine must match, canonicalized
// into the Engine's cluster-list order (ascending member list).
func reference(ids []model.ObjectID, pts []geom.Point, eps float64, m int) [][]model.ObjectID {
	out := statelessClusters(ids, pts, eps, m)
	sort.Slice(out, func(i, j int) bool { return lessIDs(out[i], out[j]) })
	return out
}

func sortClusters(cs [][]model.ObjectID) [][]model.ObjectID {
	sort.Slice(cs, func(i, j int) bool { return lessIDs(cs[i], cs[j]) })
	return cs
}

// world is a mutable population the tests evolve tick by tick.
type world struct {
	r    *rand.Rand
	ids  []model.ObjectID
	pos  map[model.ObjectID]geom.Point
	next model.ObjectID
}

func newWorld(seed int64, n int, extent float64) *world {
	w := &world{r: rand.New(rand.NewSource(seed)), pos: map[model.ObjectID]geom.Point{}}
	for i := 0; i < n; i++ {
		w.spawn(extent)
	}
	return w
}

func (w *world) spawn(extent float64) {
	id := w.next
	w.next++
	w.ids = append(w.ids, id)
	w.pos[id] = geom.Pt(w.r.Float64()*extent, w.r.Float64()*extent)
}

func (w *world) remove(i int) {
	delete(w.pos, w.ids[i])
	w.ids = append(w.ids[:i], w.ids[i+1:]...)
}

// step moves each object with probability moveProb, and spawns/removes one
// object with probability churnPop.
func (w *world) step(extent, moveProb, churnPop float64) {
	for _, id := range w.ids {
		if w.r.Float64() < moveProb {
			p := w.pos[id]
			w.pos[id] = clampPt(p.X+w.r.NormFloat64()*2, p.Y+w.r.NormFloat64()*2, extent)
		}
	}
	if w.r.Float64() < churnPop {
		w.spawn(extent)
	}
	if len(w.ids) > 1 && w.r.Float64() < churnPop {
		w.remove(w.r.Intn(len(w.ids)))
	}
}

func clampPt(x, y, extent float64) geom.Point {
	return geom.Pt(math.Min(math.Max(x, 0), extent), math.Min(math.Max(y, 0), extent))
}

func (w *world) snapshot() ([]model.ObjectID, []geom.Point) {
	ids := append([]model.ObjectID(nil), w.ids...)
	pts := make([]geom.Point, len(ids))
	for i, id := range ids {
		pts[i] = w.pos[id]
	}
	return ids, pts
}

// checkTick feeds one snapshot and fails on any disagreement with the
// from-scratch reference.
func checkTick(t *testing.T, e *Engine, ids []model.ObjectID, pts []geom.Point, eps float64, m int, tick int) Pass {
	t.Helper()
	got, pass := e.Tick(ids, pts)
	want := reference(ids, pts, eps, m)
	if !reflect.DeepEqual(sortClusters(got), want) {
		t.Fatalf("tick %d (full=%v): clusters diverged\n got %v\nwant %v", tick, pass.Full, got, want)
	}
	return pass
}

// TestEngineMatchesReference pins incremental ≡ from-scratch label-for-label
// across churn rates, including the 100%-churn fallback regime and
// population appearance/disappearance.
func TestEngineMatchesReference(t *testing.T) {
	const eps, m = 6.0, 3
	for _, tc := range []struct {
		name               string
		moveProb, churnPop float64
	}{
		{"frozen", 0, 0},
		{"low-churn", 0.05, 0.02},
		{"medium-churn", 0.3, 0.1},
		{"full-churn", 1, 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorld(1, 60, 50)
			e := New(eps, m, DefaultChurnThreshold)
			var incs, fulls int
			for tick := 0; tick < 120; tick++ {
				ids, pts := w.snapshot()
				if checkTick(t, e, ids, pts, eps, m, tick).Full {
					fulls++
				} else {
					incs++
				}
				w.step(50, tc.moveProb, tc.churnPop)
			}
			if tc.moveProb <= 0.05 && incs == 0 {
				t.Fatalf("low churn but zero incremental passes (%d full)", fulls)
			}
			if tc.moveProb == 1 && incs != 0 {
				t.Fatalf("100%% churn should always fall back, got %d incremental passes", incs)
			}
		})
	}
}

// TestEngineEpsBoundaryDither parks pairs exactly at distance eps and
// dithers one endpoint across the boundary every tick: the ≤-inclusive
// predicate must flip edges identically to the from-scratch pass.
func TestEngineEpsBoundaryDither(t *testing.T) {
	const eps, m = 5.0, 2
	e := New(eps, m, 0.9) // high threshold: keep the dithering incremental
	r := rand.New(rand.NewSource(7))
	base := []geom.Point{
		geom.Pt(0, 0), geom.Pt(eps, 0), // exactly at eps: in
		geom.Pt(100, 0), geom.Pt(100+eps, 0),
		geom.Pt(0, 100), geom.Pt(math.Nextafter(eps, 0), 100),
	}
	ids := make([]model.ObjectID, len(base))
	for i := range ids {
		ids[i] = i
	}
	for tick := 0; tick < 200; tick++ {
		pts := append([]geom.Point(nil), base...)
		// Dither one endpoint of one pair just across the boundary.
		i := 1 + 2*r.Intn(3)
		pts[i].X += (r.Float64() - 0.5) * 1e-9
		checkTick(t, e, ids, pts, eps, m, tick)
	}
}

// TestEngineDegenerateInput pins the stateless fallback: non-finite
// coordinates and duplicate ids answer via the reference path, count as
// full passes, and drop the state (the next clean tick is full too).
func TestEngineDegenerateInput(t *testing.T) {
	const eps, m = 5.0, 2
	e := New(eps, m, DefaultChurnThreshold)
	ids := []model.ObjectID{0, 1, 2}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	checkTick(t, e, ids, pts, eps, m, 0)
	if p := checkTick(t, e, ids, pts, eps, m, 1); p.Full {
		t.Fatalf("clean identical tick should be incremental")
	}

	nan := []geom.Point{geom.Pt(math.NaN(), 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	if p := checkTick(t, e, ids, nan, eps, m, 2); !p.Full {
		t.Fatalf("non-finite input must be a full pass")
	}
	if p := checkTick(t, e, ids, pts, eps, m, 3); !p.Full {
		t.Fatalf("tick after degenerate input must rebuild from scratch")
	}

	dup := []model.ObjectID{0, 1, 1}
	if p := checkTick(t, e, dup, pts, eps, m, 4); !p.Full {
		t.Fatalf("duplicate-id input must be a full pass")
	}
	if got, _ := e.Tick([]model.ObjectID{9}, []geom.Point{geom.Pt(0, 0)}); got != nil && m > 1 {
		t.Fatalf("singleton below m must have no clusters, got %v", got)
	}

	if got, _ := e.Tick(ids[:2], pts); got != nil {
		t.Fatalf("mismatched slice lengths must answer nil, got %v", got)
	}
}

// TestEngineCountersProveReuse pins the acceptance claim behind the bench:
// on a low-churn stream the engine must actually skip work, not merely run.
func TestEngineCountersProveReuse(t *testing.T) {
	const eps, m = 6.0, 3
	w := newWorld(3, 80, 60)
	e := New(eps, m, DefaultChurnThreshold)
	for tick := 0; tick < 100; tick++ {
		ids, pts := w.snapshot()
		checkTick(t, e, ids, pts, eps, m, tick)
		w.step(60, 0.05, 0)
	}
	full, inc, recl, seen := e.Counters()
	if full+inc != 100 {
		t.Fatalf("pass accounting: full=%d inc=%d, want 100 total", full, inc)
	}
	if inc < 90 {
		t.Fatalf("low-churn stream: want ≥90 incremental passes, got %d (full=%d)", inc, full)
	}
	if recl >= seen/2 {
		t.Fatalf("reuse ratio too low: reclustered %d of %d objects", recl, seen)
	}
}

// TestEngineReset drops cross-tick state but keeps counters.
func TestEngineReset(t *testing.T) {
	const eps, m = 5.0, 2
	e := New(eps, m, DefaultChurnThreshold)
	ids := []model.ObjectID{0, 1}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	e.Tick(ids, pts)
	if _, p := e.Tick(ids, pts); p.Full {
		t.Fatalf("second identical tick should be incremental")
	}
	e.Reset()
	if _, p := e.Tick(ids, pts); !p.Full {
		t.Fatalf("tick after Reset must be full")
	}
	if full, inc, _, seen := e.Counters(); full != 2 || inc != 1 || seen != 6 {
		t.Fatalf("counters survive Reset: full=%d inc=%d seen=%d", full, inc, seen)
	}
}

// TestEngineSlotReuse exercises the vanish-then-appear slot recycling path
// heavily: a rotating population where ids retire and fresh ones take
// their place while neighbors stay clean.
func TestEngineSlotReuse(t *testing.T) {
	const eps, m = 4.0, 2
	e := New(eps, m, 0.5)
	r := rand.New(rand.NewSource(11))
	w := newWorld(5, 40, 40)
	for tick := 0; tick < 150; tick++ {
		ids, pts := w.snapshot()
		checkTick(t, e, ids, pts, eps, m, tick)
		// Retire one object and spawn another every tick; move almost
		// nobody, so the patching works against a mostly clean state.
		if len(w.ids) > 1 {
			w.remove(r.Intn(len(w.ids)))
		}
		w.spawn(40)
		w.step(40, 0.02, 0)
	}
	if _, inc, _, _ := e.Counters(); inc == 0 {
		t.Fatalf("rotating population at low move churn should stay incremental")
	}
}
