package increment

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/model"
)

// FuzzIncrementalTicks decodes the fuzz input into a tick-diff script —
// add / remove / nudge / teleport operations over a small id space — and
// asserts after every tick that the Engine's clusters equal the
// from-scratch DBSCAN answer. The id space is kept small (64 ids) so the
// diff machinery sees heavy slot reuse, and the world is byte-scaled
// (coordinates 0..255 at ε=8) so clusters actually form and dissolve.
func FuzzIncrementalTicks(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 10, 10, 0, 1, 12, 10, 0, 2, 14, 10})
	f.Add([]byte{2, 2, 0, 1, 1, 1, 1, 2, 9, 9, 200, 200, 3, 3, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const eps, m = 8.0, 2
		e := New(eps, m, DefaultChurnThreshold)
		pos := map[model.ObjectID]geom.Point{}
		next := func() (byte, bool) {
			if len(data) == 0 {
				return 0, false
			}
			b := data[0]
			data = data[1:]
			return b, true
		}
		for tick := 0; tick < 64; tick++ {
			nops, ok := next()
			if !ok {
				break
			}
			for op := 0; op < int(nops%8); op++ {
				kind, ok := next()
				if !ok {
					break
				}
				idb, _ := next()
				id := model.ObjectID(idb % 64)
				switch kind % 4 {
				case 0: // add / teleport to absolute byte coordinates
					xb, _ := next()
					yb, _ := next()
					pos[id] = geom.Pt(float64(xb), float64(yb))
				case 1: // remove
					delete(pos, id)
				case 2: // nudge: small sub-ε displacement
					db, _ := next()
					if p, live := pos[id]; live {
						pos[id] = geom.Pt(p.X+float64(db%7)-3, p.Y+float64(db/32)-3)
					}
				case 3: // clone-adjacent spawn: densify around an existing object
					if p, live := pos[id]; live {
						pos[model.ObjectID((int(id)+1)%64)] = geom.Pt(p.X+1, p.Y)
					}
				}
			}
			ids := make([]model.ObjectID, 0, len(pos))
			for id := range pos {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			pts := make([]geom.Point, len(ids))
			for i, id := range ids {
				pts[i] = pos[id]
			}
			got, pass := e.Tick(ids, pts)
			want := reference(ids, pts, eps, m)
			if !reflect.DeepEqual(sortClusters(got), want) {
				t.Fatalf("tick %d (full=%v): incremental diverged from reference\n got %v\nwant %v",
					tick, pass.Full, got, want)
			}
		}
	})
}
