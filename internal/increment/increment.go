// Package increment maintains per-tick snapshot DBSCAN incrementally: an
// Engine keeps the previous tick's positions, ε-neighborhoods and core
// flags, diffs each new snapshot against them, and re-clusters only the
// objects whose neighborhoods can have changed — the moved, appeared and
// vanished ones plus their ε-neighbors. Between consecutive ticks of a
// trajectory database most objects barely move (and in low-churn feeds
// most do not move at all), so the expensive part of the per-tick pass —
// the radius queries and neighborhood sorts — is skipped for the clean
// majority. Cluster labels are then recomputed by a cheap flood fill over
// the maintained adjacency, which touches only slice memory.
//
// The Engine's output is exactly the maximal-cluster answer of
// dbscan.SnapshotClustersMaximal over the same snapshot (same ε-predicate,
// D2(p, q) ≤ ε², which is symmetric in IEEE arithmetic — the property the
// symmetric neighborhood patching relies on). Only the order of the
// returned cluster list differs: the Engine orders clusters by ascending
// member list rather than by discovery order. Every consumer in this
// repository sorts or set-dedups cluster lists, so the discovery answers
// are identical; tests compare order-insensitively.
//
// When the diff is not worth it the Engine falls back: a churn fraction
// above the configured threshold, the first tick, and a Reset all trigger
// a full (but still stateful and grid-accelerated) rebuild; degenerate
// input — duplicate IDs, non-finite coordinates, mismatched slice lengths
// — drops all state and takes the stateless reference path, so garbage
// input can never corrupt the incremental state.
//
// An Engine is single-stream state: it is NOT safe for concurrent use.
// Every Tick answers exactly for the snapshot it is given no matter what
// came before — the carried state only determines how much work the pass
// skips — but interleaving unrelated streams destroys the reuse, so the
// parallel CMC scan gives each worker its own Engine over a contiguous
// tick range (see par.OrderedChunks).
package increment

import (
	"sort"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/model"
)

// DefaultChurnThreshold is the churn fraction above which an incremental
// tick is abandoned for a full rebuild. Diffing costs roughly one
// neighborhood recomputation per dirty object plus patching its neighbors,
// so beyond ~a quarter of the population the from-scratch pass (which
// never patches) is at least as cheap.
const DefaultChurnThreshold = 0.25

// Pass describes what one Tick call did.
type Pass struct {
	// Full reports a from-scratch pass: the first tick, churn above the
	// threshold, a degenerate snapshot, or a Reset since the last tick.
	Full bool
	// Reclustered counts the objects whose neighborhoods were recomputed
	// (the whole snapshot on a full pass; moved+appeared+vanished on an
	// incremental one).
	Reclustered int
}

// Engine is the incremental clustering state for one (eps, m) key over one
// tick stream. Construct with New; not safe for concurrent use.
type Engine struct {
	eps   float64
	m     int
	churn float64

	started bool

	// Slot space: each tracked object occupies a slot in the dense arrays
	// below for as long as it stays alive; slots of vanished objects are
	// recycled through free. Working in slots keeps the hot loops on
	// contiguous memory instead of map lookups.
	slotOf map[model.ObjectID]int32
	idOf   []model.ObjectID
	alive  []bool
	pos    []geom.Point
	nh     [][]int32 // ε-neighborhood as ascending slots, self included
	free   []int32

	// Generation stamps replace per-tick clearing of the slot arrays.
	gen      uint64
	seen     []uint64 // slot → gen it was last present in (diff phase)
	dirtyGen []uint64 // slot → gen it was last dirty in (patch phase)

	aliveSlots []int32          // slots alive as of the last tick, snapshot order
	prevIDs    []model.ObjectID // last tick's ids, for the same-order fast path
	snapSlot   []int32          // snapshot index → slot
	dup        map[model.ObjectID]struct{}

	idx  *grid.PointIndex
	cand []int // grid query scratch

	movedIdx    []int32 // scratch: snapshot indices of moved objects
	appearedIdx []int32 // scratch: snapshot indices of appeared objects
	vanishedSl  []int32 // scratch: slots of vanished objects
	newNH       []int32 // scratch: recomputed neighborhood

	// Flood-fill scratch, also stamp-based.
	emitGen   uint64
	visited   []uint64 // slot → emitGen it was labeled a core in
	memberTag uint64
	memberGen []uint64 // slot → memberTag of the component collecting it
	queue     []int32
	members   []int32

	fullPasses  int64
	incPasses   int64
	reclustered int64
	objectsSeen int64
}

// New returns an empty Engine for the given clustering key. m is the
// DBSCAN density threshold (neighborhood size including self);
// churnThreshold is the dirty fraction above which a tick falls back to a
// full rebuild (≤ 0 rebuilds every tick — useful only for tests; callers
// wanting "off" should simply not route through an Engine).
func New(eps float64, m int, churnThreshold float64) *Engine {
	return &Engine{eps: eps, m: m, churn: churnThreshold}
}

// Reset drops all cross-tick state (the next Tick is a full pass). The
// lifetime counters are preserved.
func (e *Engine) Reset() {
	e.started = false
	clear(e.slotOf)
	e.idOf = e.idOf[:0]
	e.alive = e.alive[:0]
	e.pos = e.pos[:0]
	e.nh = e.nh[:0]
	e.seen = e.seen[:0]
	e.dirtyGen = e.dirtyGen[:0]
	e.visited = e.visited[:0]
	e.memberGen = e.memberGen[:0]
	e.free = e.free[:0]
	e.aliveSlots = e.aliveSlots[:0]
	e.prevIDs = e.prevIDs[:0]
}

// Counters returns the lifetime pass accounting: full and incremental
// passes, total objects re-clustered, and total objects seen. The reuse
// ratio is 1 − reclustered/seen.
func (e *Engine) Counters() (full, incremental, reclustered, seen int64) {
	return e.fullPasses, e.incPasses, e.reclustered, e.objectsSeen
}

// Tick advances the engine by one snapshot (parallel ids/pts slices,
// consecutive ticks of one stream) and returns its maximal DBSCAN clusters
// — each an ascending id list, the cluster list ordered by ascending
// member list — plus what the pass did.
func (e *Engine) Tick(ids []model.ObjectID, pts []geom.Point) ([][]model.ObjectID, Pass) {
	n := len(ids)
	e.objectsSeen += int64(n)
	if !e.cleanInput(ids, pts) {
		// Degenerate input: answer with the stateless reference path and
		// drop all state, so the next good tick starts from scratch.
		e.Reset()
		e.fullPasses++
		e.reclustered += int64(n)
		return statelessClusters(ids, pts, e.eps, e.m), Pass{Full: true, Reclustered: n}
	}
	e.gen++
	g := e.gen

	// Diff against the previous tick.
	moved := e.movedIdx[:0]
	appeared := e.appearedIdx[:0]
	vanished := e.vanishedSl[:0]
	fastSame := e.started && len(ids) == len(e.prevIDs)
	if fastSame {
		for i := range ids {
			if ids[i] != e.prevIDs[i] {
				fastSame = false
				break
			}
		}
	}
	e.snapSlot = growTo(e.snapSlot, n)
	switch {
	case fastSame:
		// Identical id sequence: snapSlot is already correct and nothing
		// appeared or vanished — only position compares remain.
		for i := range ids {
			if e.pos[e.snapSlot[i]] != pts[i] {
				moved = append(moved, int32(i))
			}
		}
	case e.started:
		for i, id := range ids {
			s, ok := e.slotOf[id]
			if !ok {
				e.snapSlot[i] = -1
				appeared = append(appeared, int32(i))
				continue
			}
			e.snapSlot[i] = s
			e.seen[s] = g
			if e.pos[s] != pts[i] {
				moved = append(moved, int32(i))
			}
		}
		for _, s := range e.aliveSlots {
			if e.seen[s] != g {
				vanished = append(vanished, s)
			}
		}
	}
	e.movedIdx, e.appearedIdx, e.vanishedSl = moved, appeared, vanished

	dirty := len(moved) + len(appeared) + len(vanished)
	denom := n
	if denom == 0 {
		denom = 1
	}
	if !e.started || float64(dirty) > e.churn*float64(denom) {
		e.rebuild(ids, pts)
		e.fullPasses++
		e.reclustered += int64(n)
		return e.emit(), Pass{Full: true, Reclustered: n}
	}

	// Incremental pass. Phase 1: allocate slots for appeared objects and
	// stamp every dirty slot, so the patch phases can tell clean neighbors
	// (whose lists must be edited in place) from dirty ones (recomputed
	// from the grid anyway).
	for _, i := range appeared {
		s := e.allocSlot(ids[i], pts[i])
		e.snapSlot[i] = s
		e.seen[s] = g
		e.dirtyGen[s] = g
	}
	for _, i := range moved {
		s := e.snapSlot[i]
		e.dirtyGen[s] = g
		e.pos[s] = pts[i]
	}

	// Phase 2: unlink vanished objects from their clean neighbors. Marking
	// all of them dead first keeps vanished↔vanished pairs from patching
	// each other.
	for _, s := range vanished {
		e.alive[s] = false
	}
	for _, s := range vanished {
		for _, q := range e.nh[s] {
			if q == s || !e.alive[q] || e.dirtyGen[q] == g {
				continue
			}
			e.nh[q] = removeSorted(e.nh[q], s)
		}
	}

	// Phase 3: re-bucket the grid over the new snapshot — O(n) inserts
	// with reused buckets, no distance math (see grid.Reset).
	e.resetGrid(pts)

	// Phase 4: recompute each dirty object's neighborhood and patch the
	// symmetric entries of its clean neighbors. Both sides of every edge
	// use the same predicate on the same positions, so the adjacency ends
	// up exactly the from-scratch one.
	for _, i := range appeared {
		e.recompute(i, pts, g)
	}
	for _, i := range moved {
		e.recompute(i, pts, g)
	}

	// Phase 5: retire vanished slots and refresh the tick bookkeeping.
	for _, s := range vanished {
		delete(e.slotOf, e.idOf[s])
		e.nh[s] = e.nh[s][:0]
		e.free = append(e.free, s)
	}
	if !fastSame {
		e.aliveSlots = e.aliveSlots[:0]
		for i := 0; i < n; i++ {
			e.aliveSlots = append(e.aliveSlots, e.snapSlot[i])
		}
		e.prevIDs = append(e.prevIDs[:0], ids...)
	}
	e.incPasses++
	e.reclustered += int64(dirty)
	return e.emit(), Pass{Full: false, Reclustered: dirty}
}

// cleanInput validates one snapshot: parallel slices, finite coordinates,
// no duplicate ids. Ascending id sequences (what database replays produce)
// validate without the set.
func (e *Engine) cleanInput(ids []model.ObjectID, pts []geom.Point) bool {
	if len(ids) != len(pts) {
		return false
	}
	for _, p := range pts {
		if !geom.Finite(p.X) || !geom.Finite(p.Y) {
			return false
		}
	}
	asc := true
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			if ids[i] == ids[i-1] {
				return false
			}
			asc = false
			break
		}
	}
	if asc {
		return true
	}
	if e.dup == nil {
		e.dup = make(map[model.ObjectID]struct{}, len(ids))
	} else {
		clear(e.dup)
	}
	for _, id := range ids {
		if _, ok := e.dup[id]; ok {
			return false
		}
		e.dup[id] = struct{}{}
	}
	return true
}

// rebuild recomputes all state from the snapshot (slots become the
// snapshot indices), reusing every backing array.
func (e *Engine) rebuild(ids []model.ObjectID, pts []geom.Point) {
	n := len(ids)
	e.ensureSlots(n)
	if e.slotOf == nil {
		e.slotOf = make(map[model.ObjectID]int32, n)
	} else {
		clear(e.slotOf)
	}
	e.free = e.free[:0]
	e.aliveSlots = e.aliveSlots[:0]
	e.snapSlot = growTo(e.snapSlot, n)
	g := e.gen
	for i := 0; i < n; i++ {
		s := int32(i)
		e.slotOf[ids[i]] = s
		e.idOf[i] = ids[i]
		e.alive[i] = true
		e.pos[i] = pts[i]
		e.seen[i] = g
		e.dirtyGen[i] = g
		e.snapSlot[i] = s
		e.aliveSlots = append(e.aliveSlots, s)
	}
	e.resetGrid(pts)
	for i := 0; i < n; i++ {
		e.nh[i] = e.neighborhood(pts[i], e.nh[i][:0])
	}
	e.prevIDs = append(e.prevIDs[:0], ids...)
	e.started = true
}

// ensureSlots grows every slot-indexed array to length n, preserving the
// backing arrays (and the per-slot neighborhood capacities) across
// shrink/grow cycles.
func (e *Engine) ensureSlots(n int) {
	e.idOf = growTo(e.idOf, n)
	e.alive = growTo(e.alive, n)
	e.pos = growTo(e.pos, n)
	e.nh = growTo(e.nh, n)
	e.seen = growTo(e.seen, n)
	e.dirtyGen = growTo(e.dirtyGen, n)
	e.visited = growTo(e.visited, n)
	e.memberGen = growTo(e.memberGen, n)
}

// allocSlot assigns a slot to a newly appeared object. The resurrected
// slot may hold stale data from an earlier occupant; every field that
// matters is overwritten here or stamped by the caller.
func (e *Engine) allocSlot(id model.ObjectID, p geom.Point) int32 {
	var s int32
	if k := len(e.free); k > 0 {
		s = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		s = int32(len(e.idOf))
		e.ensureSlots(len(e.idOf) + 1)
	}
	e.idOf[s] = id
	e.alive[s] = true
	e.pos[s] = p
	e.nh[s] = e.nh[s][:0]
	e.slotOf[id] = s
	return s
}

func (e *Engine) resetGrid(pts []geom.Point) {
	if e.idx == nil {
		cell := e.eps
		if cell <= 0 {
			cell = 1 // mirror dbscan.SnapshotAdjacency's degenerate-ε cell
		}
		e.idx = grid.NewPointIndex(pts, cell)
		return
	}
	e.idx.Reset(pts)
}

// neighborhood returns the ascending slot list of the points within eps of
// p (self included), appended to dst.
func (e *Engine) neighborhood(p geom.Point, dst []int32) []int32 {
	e.cand = e.idx.Within(p, e.eps, e.cand[:0])
	for _, i := range e.cand {
		dst = append(dst, e.snapSlot[i])
	}
	sortInt32(dst)
	return dst
}

// recompute rebuilds the neighborhood of the dirty snapshot index i and
// patches the symmetric entries of its clean neighbors: edges only in the
// old list are removed from their other endpoint, edges only in the new
// list are inserted. Dirty endpoints are skipped — they recompute their
// own lists from the same grid.
func (e *Engine) recompute(i int32, pts []geom.Point, g uint64) {
	s := e.snapSlot[i]
	newNH := e.neighborhood(pts[i], e.newNH[:0])
	old := e.nh[s]
	oi, ni := 0, 0
	for oi < len(old) || ni < len(newNH) {
		switch {
		case ni >= len(newNH) || (oi < len(old) && old[oi] < newNH[ni]):
			q := old[oi]
			oi++
			if q != s && e.alive[q] && e.dirtyGen[q] != g {
				e.nh[q] = removeSorted(e.nh[q], s)
			}
		case oi >= len(old) || newNH[ni] < old[oi]:
			q := newNH[ni]
			ni++
			if q != s && e.dirtyGen[q] != g {
				e.nh[q] = insertSorted(e.nh[q], s)
			}
		default:
			oi++
			ni++
		}
	}
	e.nh[s] = append(e.nh[s][:0], newNH...)
	e.newNH = newNH
}

// emit flood-fills the maintained adjacency into maximal clusters: one
// cluster per core component, holding its cores plus every border in a
// core's neighborhood (borders may belong to several clusters, exactly
// like dbscan.ClusterMaximal). Member lists come out as ascending ids; the
// cluster list is ordered by ascending member list.
func (e *Engine) emit() [][]model.ObjectID {
	e.emitGen++
	eg := e.emitGen
	var out [][]model.ObjectID
	for _, s := range e.aliveSlots {
		if len(e.nh[s]) < e.m || e.visited[s] == eg {
			continue
		}
		e.memberTag++
		tag := e.memberTag
		queue := e.queue[:0]
		members := e.members[:0]
		queue = append(queue, s)
		e.visited[s] = eg
		for head := 0; head < len(queue); head++ {
			c := queue[head]
			if e.memberGen[c] != tag {
				e.memberGen[c] = tag
				members = append(members, c)
			}
			for _, q := range e.nh[c] {
				if len(e.nh[q]) >= e.m {
					if e.visited[q] != eg {
						e.visited[q] = eg
						queue = append(queue, q)
					}
					continue
				}
				if e.memberGen[q] != tag {
					e.memberGen[q] = tag
					members = append(members, q)
				}
			}
		}
		ids := make([]model.ObjectID, len(members))
		for i, sl := range members {
			ids[i] = e.idOf[sl]
		}
		sort.Ints(ids)
		out = append(out, ids)
		e.queue = queue
		e.members = members[:0]
	}
	sort.Slice(out, func(i, j int) bool { return lessIDs(out[i], out[j]) })
	return out
}

// statelessClusters is the reference path for degenerate snapshots: map
// dbscan.SnapshotClustersMaximal's index clusters to ids. A length
// mismatch has no meaningful answer and returns nil.
func statelessClusters(ids []model.ObjectID, pts []geom.Point, eps float64, m int) [][]model.ObjectID {
	if len(ids) != len(pts) {
		return nil
	}
	cls := dbscan.SnapshotClustersMaximal(pts, eps, m)
	if len(cls) == 0 {
		return nil
	}
	out := make([][]model.ObjectID, len(cls))
	for ci, c := range cls {
		objs := make([]model.ObjectID, len(c))
		for i, idx := range c {
			objs[i] = ids[idx]
		}
		sort.Ints(objs)
		out[ci] = objs
	}
	return out
}

// growTo reslices s to length n, preserving hidden elements within
// capacity (their stale contents are guarded by generation stamps or
// overwritten on slot allocation).
func growTo[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	return append(s[:cap(s)], make([]T, n-cap(s))...)
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// searchInt32 returns the insertion index of v in ascending s and whether
// v is present.
func searchInt32(s []int32, v int32) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == v
}

func removeSorted(s []int32, v int32) []int32 {
	i, ok := searchInt32(s, v)
	if !ok {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

func insertSorted(s []int32, v int32) []int32 {
	i, ok := searchInt32(s, v)
	if ok {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func lessIDs(a, b []model.ObjectID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
