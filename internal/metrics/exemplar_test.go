package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "request latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736", 1700000000)
	h.ObserveExemplar(0.06, "aaaabbbbccccddddeeeeffff00001111", 1700000001) // same bucket: latest wins
	h.ObserveExemplar(0.5, "", 1700000002)                                  // empty trace ID: count only

	var plain strings.Builder
	if err := reg.WriteProm(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "#  {") || strings.Contains(plain.String(), "trace_id") {
		t.Fatalf("plain exposition leaked exemplars:\n%s", plain.String())
	}

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics output missing # EOF:\n%s", out)
	}
	want := `req_seconds_bucket{le="0.1"} 3 # {trace_id="aaaabbbbccccddddeeeeffff00001111"} 0.06 1700000001.000`
	if !strings.Contains(out, want) {
		t.Fatalf("want exemplar line %q in:\n%s", want, out)
	}
	if strings.Contains(out, "4bf92f") {
		t.Fatalf("overwritten exemplar survived:\n%s", out)
	}
	// The exemplar-free buckets carry no suffix.
	if !strings.Contains(out, "req_seconds_bucket{le=\"0.01\"} 1\n") {
		t.Fatalf("exemplar-free bucket malformed:\n%s", out)
	}

	// The exemplar-bearing exposition still parses, with the same values
	// as the plain one.
	got, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseText on OpenMetrics output: %v", err)
	}
	if got[`req_seconds_bucket{le="0.1"}`] != 3 || got["req_seconds_count"] != 4 {
		t.Fatalf("parsed = %v", got)
	}
}

func TestHandlerNegotiation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "l", []float64{1})
	h.ObserveExemplar(0.5, "deadbeefdeadbeefdeadbeefdeadbeef", 1700000000)

	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rr.Body.String(), "trace_id") {
		t.Fatalf("plain scrape got exemplars")
	}
	if !strings.Contains(rr.Header().Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("plain content type: %s", rr.Header().Get("Content-Type"))
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rr = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, req)
	if !strings.Contains(rr.Body.String(), `trace_id="deadbeefdeadbeefdeadbeefdeadbeef"`) {
		t.Fatalf("OpenMetrics scrape missing exemplar:\n%s", rr.Body.String())
	}
	if !strings.Contains(rr.Header().Get("Content-Type"), "openmetrics-text") {
		t.Fatalf("OpenMetrics content type: %s", rr.Header().Get("Content-Type"))
	}

	rr = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?exemplars=1", nil))
	if !strings.Contains(rr.Body.String(), "trace_id") {
		t.Fatalf("?exemplars=1 missing exemplar")
	}
}

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	snap := reg.Snapshot()
	for _, name := range []string{"go_goroutines", "go_gomaxprocs", "go_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		v, ok := snap[name]
		if !ok {
			t.Fatalf("%s not registered; snapshot: %v", name, snap)
		}
		if name != "go_gc_pause_seconds_total" && v <= 0 {
			t.Fatalf("%s = %v, want > 0", name, v)
		}
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE go_goroutines gauge") {
		t.Fatalf("exposition missing runtime gauges:\n%s", b.String())
	}
}
